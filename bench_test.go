package geoprocmap

// The benchmarks in this file regenerate the paper's evaluation artifacts
// (one benchmark per table and figure, running the same drivers as the
// geobench command at Quick scale) and measure the library's hot paths and
// the ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report the wall time of regenerating each
// artifact; the ablation benchmarks additionally report solution cost via
// b.ReportMetric so the quality impact of each design choice is visible
// next to its time cost.

import (
	"fmt"
	"testing"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/experiments"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/mpi"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/netsim"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/trace"
)

// --- one benchmark per paper artifact -----------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// --- shared fixtures ------------------------------------------------------

func buildProblem(b *testing.B, appName string, n int) *core.Problem {
	b.Helper()
	cloud, err := experiments.PaperCloudForScale(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	a, err := apps.ByName(appName)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := experiments.BuildInstance(cloud, a, n, 1, 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	return inst.Problem
}

// --- algorithm micro-benchmarks ------------------------------------------

func BenchmarkGeoMapper64(b *testing.B) {
	p := buildProblem(b, "LU", 64)
	m := &core.GeoMapper{Kappa: 4, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeoMapper1024(b *testing.B) {
	p := buildProblem(b, "LU", 1024)
	m := &core.GeoMapper{Kappa: 4, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedy64(b *testing.B) {
	p := buildProblem(b, "LU", 64)
	m := &baselines.Greedy{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPIPP64(b *testing.B) {
	p := buildProblem(b, "LU", 64)
	m := &baselines.MPIPP{Seed: 1, Restarts: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostEvaluation256(b *testing.B) {
	p := buildProblem(b, "K-means", 256)
	pl, err := core.RandomPlacement(p, stats.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Cost(pl)
	}
}

// --- simulator benchmarks -------------------------------------------------

func BenchmarkReplayLU256(b *testing.B) {
	cloud, err := experiments.PaperCloudForScale(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := apps.NewLU().Trace(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	mapping := make([]int, 256)
	for i := range mapping {
		mapping[i] = i / 64
	}
	sim, err := netsim.New(cloud, mapping)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ReplayTrace(rec.Events()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFluidPhase64(b *testing.B) {
	cloud, err := experiments.PaperCloudForScale(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := apps.NewKMeans().Trace(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	mapping := make([]int, 64)
	for i := range mapping {
		mapping[i] = i / 16
	}
	sim, err := netsim.New(cloud, mapping)
	if err != nil {
		b.Fatal(err)
	}
	phases := netsim.PhasesFromEvents(rec.Events())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ph := range phases {
			if _, err := sim.SimulatePhase(ph); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTraceCompressLU(b *testing.B) {
	rec, err := apps.NewLU().Trace(64, 50)
	if err != nil {
		b.Fatal(err)
	}
	events := rec.ProcessEvents(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := trace.Compress(events)
		if c.Size() == 0 {
			b.Fatal("empty compression")
		}
	}
}

// --- ablation benchmarks (design choices from DESIGN.md) ------------------

// BenchmarkAblationGrouping compares the full algorithm (κ=3 K-means
// grouping over 6 sites → ≤3! orders) against the ungrouped variant
// (6! = 720 site orders): grouping trades a tiny amount of cost for an
// order-of-magnitude overhead reduction.
func BenchmarkAblationGrouping(b *testing.B) {
	regions := []string{"us-east-1", "us-west-2", "eu-west-1", "eu-central-1", "ap-southeast-1", "ap-northeast-1"}
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", regions, 8, netmodel.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	inst, err := experiments.BuildInstance(cloud, apps.NewKMeans(), 48, 1, 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name   string
		mapper *core.GeoMapper
	}{
		{"grouped-k3", &core.GeoMapper{Kappa: 3, Seed: 1}},
		{"ungrouped-720-orders", &core.GeoMapper{Kappa: 6, Seed: 1, DisableGrouping: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				pl, err := variant.mapper.Map(inst.Problem)
				if err != nil {
					b.Fatal(err)
				}
				cost = inst.Problem.Cost(pl).Float()
			}
			b.ReportMetric(cost, "cost")
		})
	}
}

// BenchmarkAblationOrderSearch compares the κ! group-order search against a
// single (identity) order: the search is where the algorithm's edge over
// plain greedy packing comes from.
func BenchmarkAblationOrderSearch(b *testing.B) {
	p := buildProblem(b, "K-means", 64)
	for _, variant := range []struct {
		name   string
		mapper *core.GeoMapper
	}{
		{"full-order-search", &core.GeoMapper{Kappa: 4, Seed: 1}},
		{"single-order", &core.GeoMapper{Kappa: 4, Seed: 1, SingleOrder: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				pl, err := variant.mapper.Map(p)
				if err != nil {
					b.Fatal(err)
				}
				cost = p.Cost(pl).Float()
			}
			b.ReportMetric(cost, "cost")
		})
	}
}

// BenchmarkOrderSearchParallel measures the parallel κ! group-order
// search against the serial path on the same problems: κ = 6..8 over an
// 8-region cloud at N = 64 and 256, serial (Workers=1) versus
// Workers=GOMAXPROCS. The parallel reduction returns byte-identical
// placements, so the sub-benchmarks differ only in wall-clock. The
// recorded baseline lives in results/BENCH_orders.json (make bench-orders).
func BenchmarkOrderSearchParallel(b *testing.B) {
	regions := []string{"us-east-1", "us-west-1", "us-west-2", "eu-west-1",
		"eu-central-1", "ap-southeast-1", "ap-southeast-2", "ap-northeast-1"}
	for _, n := range []int{64, 256} {
		cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", regions, n/len(regions), netmodel.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		inst, err := experiments.BuildInstance(cloud, apps.NewKMeans(), n, 1, 0.2, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, kappa := range []int{6, 7, 8} {
			for _, workers := range []int{1, 0} { // 1 = serial, 0 = GOMAXPROCS
				name := fmt.Sprintf("kappa=%d/n=%d/serial", kappa, n)
				if workers != 1 {
					name = fmt.Sprintf("kappa=%d/n=%d/parallel", kappa, n)
				}
				m := &core.GeoMapper{Kappa: kappa, Seed: 1, Workers: workers}
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := m.Map(inst.Problem); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkAblationCostModel maps with degenerate cost inputs — latency
// zeroed (bandwidth-only) or bandwidth flattened (latency-only) — and
// evaluates the resulting placements on the true α–β cost, quantifying
// what each half of the model contributes.
func BenchmarkAblationCostModel(b *testing.B) {
	p := buildProblem(b, "K-means", 64)
	variants := []struct {
		name   string
		mutate func(*core.Problem)
	}{
		{"full-alpha-beta", func(*core.Problem) {}},
		{"bandwidth-only", func(q *core.Problem) { q.LT = mat.NewSquare(q.M()) }},
		{"latency-only", func(q *core.Problem) {
			flat := mat.NewSquare(q.M())
			flat.Fill(1e9)
			q.BT = flat
		}},
	}
	for _, variant := range variants {
		b.Run(variant.name, func(b *testing.B) {
			mutated := &core.Problem{
				Comm: p.Comm, LT: p.LT.Clone(), BT: p.BT.Clone(),
				PC: p.PC, Capacity: p.Capacity, Constraint: p.Constraint,
			}
			variant.mutate(mutated)
			m := &core.GeoMapper{Kappa: 4, Seed: 1}
			var cost float64
			for i := 0; i < b.N; i++ {
				pl, err := m.Map(mutated)
				if err != nil {
					b.Fatal(err)
				}
				cost = p.Cost(pl).Float() // evaluate on the TRUE model
			}
			b.ReportMetric(cost, "true-cost")
		})
	}
}

// BenchmarkAblationCalibration measures the site-pair calibration and
// reports its probe-session overhead next to the all-node-pairs cost it
// replaces (the paper's 12 minutes vs 180+ days argument).
func BenchmarkAblationCalibration(b *testing.B) {
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, 128, netmodel.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var res *calib.Result
	for i := 0; i < b.N; i++ {
		res, err = calib.Calibrate(cloud, calib.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OverheadSeconds.Float()/60, "site-pair-min")
	b.ReportMetric(calib.AllPairsOverheadSeconds(cloud.TotalNodes(), 60).Float()/86400, "all-pairs-days")
}

// BenchmarkAblationRefinement quantifies the optional exchange-refinement
// extension: Algorithm 1 as published versus Algorithm 1 plus bounded
// pairwise-exchange polish on the true cost.
func BenchmarkAblationRefinement(b *testing.B) {
	p := buildProblem(b, "DNN", 64)
	for _, variant := range []struct {
		name   string
		mapper *core.GeoMapper
	}{
		{"algorithm1-as-published", &core.GeoMapper{Kappa: 4, Seed: 1}},
		{"with-exchange-refinement", &core.GeoMapper{Kappa: 4, Seed: 1, RefinePasses: 10}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				pl, err := variant.mapper.Map(p)
				if err != nil {
					b.Fatal(err)
				}
				cost = p.Cost(pl).Float()
			}
			b.ReportMetric(cost, "cost")
		})
	}
}

// BenchmarkMPIRuntime measures the virtual-MPI scheduler's throughput on a
// collective-heavy program (64 ranks × allreduce+barrier per iteration).
func BenchmarkMPIRuntime(b *testing.B) {
	cloud, err := experiments.PaperCloudForScale(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	mapping := make([]int, 64)
	for i := range mapping {
		mapping[i] = i / 16
	}
	w, err := mpi.NewWorld(cloud, mapping)
	if err != nil {
		b.Fatal(err)
	}
	prog := func(c *mpi.Comm) error {
		for it := 0; it < 5; it++ {
			if err := c.Compute(0.01); err != nil {
				return err
			}
			if err := c.Allreduce(64<<10, it*4); err != nil {
				return err
			}
			if err := c.Barrier(it*4 + 2); err != nil {
				return err
			}
		}
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}
