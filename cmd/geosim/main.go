// Command geosim simulates a workload's execution on a geo-distributed
// cloud under a chosen mapping algorithm and prints the timing breakdown
// against the random baseline.
//
// Usage:
//
//	geosim -app LU -n 64                       # geo mapper, replay engine
//	geosim -app K-means -n 256 -algo greedy -engine fluid
//	geosim -app LU -n 64 -faults SiteBlackout  # WAN chaos + failure-aware remap
//	geosim -regauge                            # a day of DiurnalDrift, closed loop live
//	geosim -regauge -faults SiteBlackout -day 480
//
// With -faults, the tool additionally replays the workload under the named
// fault preset (or a JSON schedule file), prints the structured fault
// report, and compares the stale placement against the failure-aware
// remapping computed by core.Remap. The cloud then carries capacity
// headroom (ceil(n/3) nodes per region) so a site blackout is survivable.
//
// With -regauge, the tool instead replays a day of the fault preset with
// the closed-loop re-gauging control loop live (internal/regauge, driven
// offline on the schedule clock): the stale initial placement is compared
// window by window against the continuously re-gauged one, and the report
// includes the loop's publication and hysteresis accounting plus the
// deterministic decision digest.
package main

import (
	"flag"
	"fmt"
	"os"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/buildinfo"
	"geoprocmap/internal/core"
	"geoprocmap/internal/experiments"
	"geoprocmap/internal/faults"
)

func main() {
	var (
		appName   = flag.String("app", "LU", "workload: LU, BT, SP, K-means, DNN")
		n         = flag.Int("n", 64, "number of processes (multiple of 4)")
		algo      = flag.String("algo", "geo", "mapper: geo, multilevel, greedy, mpipp, random")
		engine    = flag.String("engine", "replay", "simulation engine: replay, fluid, ps")
		iters     = flag.Int("iters", 0, "iterations (0 = workload default)")
		ratio     = flag.Float64("constraints", 0.2, "data-movement constraint ratio")
		repeats   = flag.Int("repeats", 10, "random baselines averaged")
		seed      = flag.Int64("seed", 1, "random seed")
		faultSpec = flag.String("faults", "", "fault schedule: a preset name ("+fmt.Sprint(faults.PresetNames())+") or a JSON file")

		regaugeMode = flag.Bool("regauge", false, "replay a fault day with the closed-loop re-gauging control loop live and report the SLO comparison")
		day         = flag.Float64("day", 0, "replayed horizon in schedule seconds (with -regauge; 0 = preset default)")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Version("geosim"))
		return
	}
	if *regaugeMode {
		preset := *faultSpec
		if preset == "" {
			preset = "DiurnalDrift"
		}
		// The scenario's own workload default is CG (chosen so a congestion
		// peak moves both the objective and the measured critical path) —
		// honor -app only when the user actually set it.
		app := ""
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "app" {
				app = *appName
			}
		})
		if err := runRegauge(preset, app, *n, *day, *seed); err != nil {
			fatal(err)
		}
		return
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	it := *iters
	if it == 0 {
		it = app.DefaultIters()
	}
	cloud, err := experiments.PaperCloudForScale(*n, *seed)
	if *faultSpec != "" {
		// Faults need capacity headroom: a blackout must leave enough
		// surviving slots to rehost every process.
		cloud, err = experiments.HeadroomCloudForScale(*n, *seed)
	}
	if err != nil {
		fatal(err)
	}
	inst, err := experiments.BuildInstance(cloud, app, *n, it, *ratio, *seed)
	if err != nil {
		fatal(err)
	}

	var mode experiments.SimMode
	switch *engine {
	case "replay":
		mode = experiments.SimReplay
	case "fluid":
		mode = experiments.SimFluid
	case "ps":
		mode = experiments.SimFluidPS
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	var mapper core.Mapper
	switch *algo {
	case "geo":
		mapper = &core.GeoMapper{Kappa: 4, Seed: *seed}
	case "multilevel":
		mapper = &core.MultilevelGeoMapper{Kappa: 4, Seed: *seed}
	case "greedy":
		mapper = &baselines.Greedy{}
	case "mpipp":
		mapper = &baselines.MPIPP{Seed: *seed}
	case "random":
		mapper = &baselines.Random{Seed: *seed}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	base, err := inst.BaselineSim(*repeats, *seed+100, mode)
	if err != nil {
		fatal(err)
	}
	pl, dur, err := inst.MapAndTime(mapper)
	if err != nil {
		fatal(err)
	}
	res, err := inst.Simulate(pl, mode)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload: %s × %d iterations on %d processes (%s engine)\n", app.Name(), it, *n, *engine)
	fmt.Printf("mapper:   %s (optimization overhead %v)\n\n", mapper.Name(), dur.Round(dur/1000+1))
	fmt.Printf("%-22s %12s %12s %12s\n", "", "compute (s)", "comm (s)", "total (s)")
	fmt.Printf("%-22s %12.2f %12.2f %12.2f\n", "Baseline (random ×"+fmt.Sprint(*repeats)+")", base.ComputeSeconds, base.CommSeconds, base.Total())
	fmt.Printf("%-22s %12.2f %12.2f %12.2f\n\n", mapper.Name(), res.ComputeSeconds, res.CommSeconds, res.Total())
	fmt.Printf("communication improvement: %.1f%%\n", experiments.ImprovementPct(base.CommSeconds, res.CommSeconds))
	fmt.Printf("overall improvement:       %.1f%%\n", experiments.ImprovementPct(base.Total(), res.Total()+dur.Seconds()))

	if *faultSpec != "" {
		if err := runFaulty(inst, pl, *faultSpec, *seed); err != nil {
			fatal(err)
		}
	}
}

// runFaulty replays the mapped placement under the fault schedule, prints
// the structured report, and compares against the failure-aware remapping.
func runFaulty(inst *experiments.Instance, stale core.Placement, spec string, seed int64) error {
	sched, err := faults.FromSpec(spec, inst.Cloud.M(), seed)
	if err != nil {
		return err
	}
	staleRes, staleRep, err := inst.SimulateFaultyReplay(stale, sched, experiments.FaultStart)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- fault injection: %s (replay engine, t₀ = %g s) --\n", sched.Name, experiments.FaultStart)
	fmt.Printf("fault report (stale placement): %s\n", staleRep)
	fmt.Printf("stale comm under faults:        %.2f s\n", staleRes.CommSeconds)

	remap, err := core.Remap(inst.Problem, stale, staleRep, core.RemapOptions{})
	if err != nil {
		return err
	}
	if len(remap.Migrated) == 0 {
		fmt.Println("failure-aware remap:            no dead sites — placement unchanged")
		return nil
	}
	repairedRes, repairedRep, err := inst.SimulateFaultyReplay(remap.Placement, sched, experiments.FaultStart)
	if err != nil {
		return err
	}
	fmt.Printf("failure-aware remap:            migrated %d processes in %.1f s\n", len(remap.Migrated), remap.MigrationSeconds)
	fmt.Printf("fault report (remapped):        %s\n", repairedRep)
	fmt.Printf("remapped comm under faults:     %.2f s\n", repairedRes.CommSeconds)
	fmt.Printf("recovery:                       %.1f%% of the stale communication time\n",
		experiments.ImprovementPct(staleRes.CommSeconds, repairedRes.CommSeconds))
	return nil
}

// runRegauge replays a day of the fault preset with the re-gauging loop
// live (offline, on the schedule clock) and prints the stale-vs-regauged
// SLO comparison plus the loop's hysteresis accounting.
func runRegauge(preset, appName string, n int, day float64, seed int64) error {
	if appName == "" {
		appName = "CG" // the scenario default, restated for the header
	}
	out, err := experiments.RunRegauge(experiments.RegaugeScenario{
		Preset:     preset,
		App:        appName,
		N:          n,
		DaySeconds: day,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("closed-loop re-gauging: %s × %g s, %s on %d processes, seed %d\n\n",
		out.Preset, out.Passes[len(out.Passes)-1].At.Float(), appName, n, seed)
	fmt.Printf("gauge passes:        %d (%d windows measured)\n", len(out.Passes), out.Windows)
	fmt.Printf("snapshots published: %d\n", out.Published)
	fmt.Printf("remaps triggered:    %d (%.1f s total migration)\n", out.RemapsTriggered, out.MigrationSeconds)
	fmt.Printf("remaps suppressed:   %d cooldown, %d uneconomic\n\n", out.SuppressedCooldown, out.SuppressedUneconomic)
	fmt.Printf("%-22s %10s %10s %10s\n", "comm time per window", "p50 (s)", "p90 (s)", "p99 (s)")
	fmt.Printf("%-22s %10.2f %10.2f %10.2f\n", "stale placement",
		out.StalePercentile(50), out.StalePercentile(90), out.StalePercentile(99))
	fmt.Printf("%-22s %10.2f %10.2f %10.2f\n\n", "continuously regauged",
		out.RemappedPercentile(50), out.RemappedPercentile(90), out.RemappedPercentile(99))
	fmt.Printf("p99 improvement:     %.1f%%\n", experiments.ImprovementPct(out.StalePercentile(99), out.RemappedPercentile(99)))
	fmt.Printf("placement digest:    %s -> %s\n", out.InitialDigest[:12], out.FinalDigest[:12])
	fmt.Printf("decision digest:     %s\n", out.Digest())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geosim:", err)
	os.Exit(1)
}
