// Command geocalibrate runs the SKaMPI-substitute network calibration on a
// modeled cloud and prints the estimated LT/BT matrices together with the
// paper's overhead comparison (site pairs vs all node pairs).
//
// Usage:
//
//	geocalibrate                               # paper's 4-region EC2 cloud
//	geocalibrate -provider azure -regions east-us,west-europe,japan-east -instance Standard_D2
//	geocalibrate -nodes 128 -days 7
//	geocalibrate -faults FlakyWAN              # probe through WAN chaos
//
// With -faults, the probes run against the named preset (or JSON schedule
// file): dead links time out and are retried with capped exponential
// backoff, outliers are rejected by a trimmed mean, and the output reports
// the degraded site pairs plus the retry-aware overhead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"geoprocmap/internal/buildinfo"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/units"
)

func main() {
	var (
		provider  = flag.String("provider", "ec2", "cloud provider: ec2 or azure")
		regions   = flag.String("regions", strings.Join(netmodel.PaperEC2Regions, ","), "comma-separated regions")
		instance  = flag.String("instance", "m4.xlarge", "instance type")
		nodes     = flag.Int("nodes", 16, "nodes per site (for the overhead comparison)")
		days      = flag.Int("days", 3, "days of repeated measurement")
		samples   = flag.Int("samples", 10, "samples per day per site pair")
		seed      = flag.Int64("seed", 1, "random seed")
		faultSpec = flag.String("faults", "", "fault schedule: a preset name ("+fmt.Sprint(faults.PresetNames())+") or a JSON file")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Version("geocalibrate"))
		return
	}

	var p *netmodel.Provider
	switch *provider {
	case "ec2":
		p = netmodel.AmazonEC2
	case "azure":
		p = netmodel.WindowsAzure
	default:
		fatal(fmt.Errorf("unknown provider %q", *provider))
	}
	cloud, err := netmodel.EvenCloud(p, *instance, strings.Split(*regions, ","), *nodes, netmodel.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	sched, err := faults.FromSpec(*faultSpec, cloud.M(), *seed)
	if err != nil {
		fatal(err)
	}
	res, err := calib.Calibrate(cloud, calib.Options{Days: *days, SamplesPerDay: *samples, Seed: *seed, Faults: sched})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("calibrated %d sites × %d samples/pair\n\n", cloud.M(), res.SamplesPerPair)
	fmt.Println("latency matrix LT (ms):")
	for k := 0; k < cloud.M(); k++ {
		for l := 0; l < cloud.M(); l++ {
			fmt.Printf("%9.2f", res.LT.At(k, l)*1000)
		}
		fmt.Printf("   %s\n", cloud.Sites[k].Region.Name)
	}
	fmt.Println("\nbandwidth matrix BT (MB/s):")
	for k := 0; k < cloud.M(); k++ {
		for l := 0; l < cloud.M(); l++ {
			fmt.Printf("%9.1f", res.BT.At(k, l)/netmodel.MB)
		}
		fmt.Printf("   %s\n", cloud.Sites[k].Region.Name)
	}
	latErr, bwErr := res.RelativeErrors(cloud)
	fmt.Printf("\nmean relative error vs ground truth: latency %.1f%%, bandwidth %.1f%%\n", latErr*100, bwErr*100)

	allPairs := calib.AllPairsOverheadSeconds(cloud.TotalNodes(), units.Seconds(60))
	fmt.Printf("\ncalibration overhead (1 min/session):\n")
	fmt.Printf("  site pairs (this tool):  %.0f minutes (%d sessions)\n", res.OverheadSeconds.Float()/60, res.SitePairSessions)
	fmt.Printf("  all node pairs:          %.1f days (%d nodes)\n", allPairs.Float()/86400, cloud.TotalNodes())

	if sched != nil {
		fmt.Printf("\nfault schedule %q:\n", sched.Name)
		fmt.Printf("  retries: %d, failed samples: %d, retry time: %.1f s (included in overhead)\n",
			res.Retries, res.FailedSamples, res.RetrySeconds)
		pairs := res.DegradedPairs()
		if len(pairs) == 0 {
			fmt.Println("  no site pair lost samples — backoff retries absorbed every fault window")
		} else {
			fmt.Printf("  degraded site pairs (lost samples, estimates less trustworthy):\n")
			for _, pr := range pairs {
				fmt.Printf("    %s → %s\n", cloud.Sites[pr[0]].Region.Name, cloud.Sites[pr[1]].Region.Name)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geocalibrate:", err)
	os.Exit(1)
}
