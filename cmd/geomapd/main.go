// Command geomapd serves process mappings over HTTP: POST a comm
// matrix or a named workload preset to /v1/map and get back a
// placement, its cost split, and the version of the network snapshot it
// was solved against. Solves run on a bounded worker pool, identical
// requests are deduplicated in flight and answered from an LRU result
// cache, and operators feed fresh calibration matrices or fault reports
// through POST /admin/snapshot without restarting the daemon. Each solve
// may itself parallelize the geo mapper's group-order search
// (-solver-workers); the pool size × per-solve product is clamped to
// GOMAXPROCS so the daemon never oversubscribes the machine.
//
// With -regauge the daemon also runs the closed calibration loop
// (internal/regauge): periodic reduced-budget probes of the modeled
// cloud — optionally against a -faults schedule — publish drift-refreshed
// snapshots into the store and re-map cached placements when the
// predicted saving amortizes the migration cost. /healthz reports the
// loop's mode and the snapshot's age, degrading to 503 past
// -max-staleness.
//
// Usage:
//
//	geomapd                                    # paper's 4-region EC2 cloud, :8080
//	geomapd -addr 127.0.0.1:0 -addr-file /tmp/geomapd.addr
//	geomapd -regions us-east,eu-west -nodes 32 -workers 8
//	geomapd -calib -days 3                     # bootstrap snapshot from calibration
//	geomapd -regauge -faults FlakyWAN -regauge-timescale 300
//	geomapd -addr :8081 -self http://127.0.0.1:8081 \
//	        -peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// With -peers the daemon joins a sharded fleet: request routing keys are
// consistent-hashed across the peer list, a shard miss consults the
// owning peer before solving locally, and every snapshot publication —
// admin posts and re-gauging alike — replicates to all peers
// version-ordered, so replays are idempotent.
//
// SIGTERM or SIGINT starts a graceful drain: the listener stops
// accepting, in-flight requests finish, the solve queue empties, and
// then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"geoprocmap/internal/buildinfo"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/regauge"
	"geoprocmap/internal/service"
	"geoprocmap/internal/units"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		provider    = flag.String("provider", "ec2", "cloud provider: ec2 or azure")
		regions     = flag.String("regions", strings.Join(netmodel.PaperEC2Regions, ","), "comma-separated regions")
		instance    = flag.String("instance", "m4.xlarge", "instance type")
		nodes       = flag.Int("nodes", 16, "nodes per site")
		seed        = flag.Int64("seed", 1, "random seed for the modeled cloud")
		useCalib    = flag.Bool("calib", false, "bootstrap the snapshot from a calibration run instead of ground truth")
		days        = flag.Int("days", 1, "calibration days (with -calib)")
		samples     = flag.Int("samples", 5, "calibration samples per day per pair (with -calib)")
		workers     = flag.Int("workers", 4, "solver pool size")
		solverWkrs  = flag.Int("solver-workers", 0, "order-search goroutines per solve (0 = derive from GOMAXPROCS/workers; pool×per-solve is clamped to GOMAXPROCS)")
		queueDepth  = flag.Int("queue", 0, "pending-solve bound before shedding (default 4×workers)")
		cacheSize   = flag.Int("cache", 1024, "result cache entries")
		maxProcs    = flag.Int("max-procs", 4096, "largest accepted process count")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-request solve deadline")
		showVersion = flag.Bool("version", false, "print version and exit")

		peers       = flag.String("peers", "", "comma-separated base URLs of the whole fleet including this daemon (enables cluster mode; every daemon must get the same list)")
		selfURL     = flag.String("self", "", "this daemon's own base URL as it appears in -peers (required with -peers)")
		peerTimeout = flag.Duration("peer-timeout", 10*time.Second, "per-peer HTTP timeout for result fetches and snapshot replication")

		faultSpec   = flag.String("faults", "", "fault schedule the re-gauging probes run against: preset name (FlakyWAN, SiteBlackout, DiurnalDrift) or JSON file")
		maxStale    = flag.Duration("max-staleness", 0, "snapshot age past which /healthz answers 503 (0 = report age only)")
		regaugeOn   = flag.Bool("regauge", false, "run the closed-loop re-gauging control loop")
		rgInterval  = flag.Duration("regauge-interval", 30*time.Second, "schedule time between gauge passes")
		rgTimescale = flag.Float64("regauge-timescale", 1, "schedule seconds per wall second (e.g. 300 ticks a 30 s interval every 100 ms)")
		rgDrift     = flag.Float64("regauge-drift", 0.15, "relative per-pair change that counts as drift")
		rgCooldown  = flag.Duration("regauge-cooldown", 0, "per-placement cooldown after a triggered remap (0 = 3× interval)")
		rgSafety    = flag.Float64("regauge-safety", 2, "remap only when predicted saving > migration time × this factor")
		rgSamples   = flag.Int("regauge-samples", 3, "per-pair probe budget of one gauge pass")
		rgWindow    = flag.Int("regauge-window", 3, "per-pair smoothing window (passes)")
		rgMaxFail   = flag.Int("regauge-max-failures", 3, "consecutive failed passes before publication freezes")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Version("geomapd"))
		return
	}

	var p *netmodel.Provider
	switch *provider {
	case "ec2":
		p = netmodel.AmazonEC2
	case "azure":
		p = netmodel.WindowsAzure
	default:
		fatal(fmt.Errorf("unknown provider %q", *provider))
	}
	cloud, err := netmodel.EvenCloud(p, *instance, strings.Split(*regions, ","), *nodes, netmodel.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}

	snap := service.SnapshotFromCloud(cloud)
	if *useCalib {
		res, err := calib.Calibrate(cloud, calib.Options{Seed: *seed, Days: *days, SamplesPerDay: *samples})
		if err != nil {
			fatal(err)
		}
		if snap, err = service.SnapshotFromCalibration(cloud, res); err != nil {
			fatal(err)
		}
	}
	store, err := service.NewStore(snap)
	if err != nil {
		fatal(err)
	}
	sched, err := faults.FromSpec(*faultSpec, cloud.M(), *seed)
	if err != nil {
		fatal(err)
	}

	logger := log.New(os.Stderr, "geomapd: ", log.LstdFlags)

	// -peers switches on cluster mode: the fleet shares one consistent-hash
	// ring over request routing keys, snapshot publications replicate to
	// every peer, and shard misses consult the owning peer before solving
	// locally. The regauge loop publishes through the replicator so its
	// refreshed models reach the whole fleet.
	var cluster *service.Cluster
	var publisher regauge.SnapshotPublisher = store
	if *peers != "" {
		if *selfURL == "" {
			fatal(fmt.Errorf("-peers requires -self (this daemon's URL as listed in -peers)"))
		}
		cluster, err = service.NewCluster(service.ClusterConfig{
			Self:    *selfURL,
			Peers:   strings.Split(*peers, ","),
			Timeout: *peerTimeout,
			Logf:    logger.Printf,
		})
		if err != nil {
			fatal(err)
		}
		publisher = service.NewReplicator(store, cluster)
		logger.Printf("cluster: %d-node fleet, self %s", cluster.Ring().Size(), cluster.Self())
	}

	srv, err := service.NewServer(service.Config{
		Store:           store,
		Cluster:         cluster,
		Workers:         *workers,
		SolverWorkers:   *solverWkrs,
		QueueDepth:      *queueDepth,
		CacheSize:       *cacheSize,
		MaxProcs:        *maxProcs,
		DefaultDeadline: *deadline,
		MaxStaleness:    *maxStale,
		Logf:            logger.Printf,
	})
	if err != nil {
		fatal(err)
	}

	// The re-gauging loop runs until drain: its context is cancelled after
	// the HTTP listener shuts down, and the final counters are not printed
	// until it has stopped touching the cache.
	gaugeStop := func() {}
	if *regaugeOn {
		g, err := regauge.New(regauge.Config{
			Cloud:          cloud,
			Store:          publisher,
			Source:         regauge.ServerSource{Server: srv},
			Faults:         sched,
			Seed:           *seed,
			Interval:       units.Seconds(rgInterval.Seconds()),
			Samples:        *rgSamples,
			DriftThreshold: *rgDrift,
			Window:         *rgWindow,
			SafetyFactor:   *rgSafety,
			Cooldown:       units.Seconds(rgCooldown.Seconds()),
			SolverWorkers:  *solverWkrs,
			MaxFailures:    *rgMaxFail,
			Timescale:      *rgTimescale,
			Logf:           logger.Printf,
		})
		if err != nil {
			fatal(err)
		}
		srv.RegisterStatus("regauge", g.StatusProbe)
		gctx, gcancel := context.WithCancel(context.Background())
		gdone := make(chan struct{})
		go func() {
			defer close(gdone)
			g.Run(gctx)
		}()
		gaugeStop = func() {
			gcancel()
			<-gdone
			logger.Printf("regauge: stopped")
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		// Written atomically-enough for the smoke harness: the rename
		// makes the file appear only with its full contents.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}
	logger.Printf("listening on %s (%d sites × %d nodes, snapshot v%d from %s)",
		ln.Addr(), cloud.M(), *nodes, store.Current().Version, store.Current().Source)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-stop:
		logger.Printf("received %s, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	// The listener is closed and in-flight handlers have returned; stop
	// the gauging loop and drain whatever the pool still holds before
	// reporting final counters.
	gaugeStop()
	srv.Close()
	v := srv.Metrics().Snapshot(0, 0)
	logger.Printf("drained: %d requests (%d solves, %d cache hits, %d deduped, %d shed)",
		v.Requests, v.Solves, v.CacheHits, v.Deduped, v.Rejected)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geomapd:", err)
	os.Exit(1)
}
