// Command geobench regenerates the paper's evaluation artifacts (Tables
// 1–3, Figures 3–10). Each experiment prints an aligned text table; pass
// -out to also write per-experiment .txt and .csv files.
//
// Usage:
//
//	geobench -exp all              # run everything (paper-scale settings)
//	geobench -exp fig5 -quick     # one experiment at reduced scale
//	geobench -exp fig7 -seed 7 -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"geoprocmap/internal/buildinfo"
	"geoprocmap/internal/experiments"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "comma-separated experiment ids (see -list) or \"all\"")
		seed        = flag.Int64("seed", 1, "random seed for cloud jitter, calibration noise and constraint draws")
		quick       = flag.Bool("quick", false, "reduced scales and sample counts (seconds instead of minutes)")
		ratio       = flag.Float64("constraints", 0.2, "data-movement constraint ratio")
		workers     = flag.Int("workers", 0, "geo mapper order-search goroutines (0 = GOMAXPROCS, 1 = serial)")
		out         = flag.String("out", "", "directory to write per-experiment .txt and .csv files")
		jsonOut     = flag.Bool("json", false, "also write per-experiment .json files (with -out)")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Version("geobench"))
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, ConstraintRatio: *ratio, Workers: *workers}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.IDs()
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep.String())
		if *out != "" {
			if err := os.WriteFile(filepath.Join(*out, id+".txt"), []byte(rep.String()), 0o644); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*out, id+".csv"), []byte(rep.CSV()), 0o644); err != nil {
				fatal(err)
			}
			if *jsonOut {
				doc, err := rep.JSON()
				if err != nil {
					fatal(err)
				}
				if err := os.WriteFile(filepath.Join(*out, id+".json"), []byte(doc), 0o644); err != nil {
					fatal(err)
				}
			}
			if chart, ok, err := experiments.ChartFor(rep); err != nil {
				fatal(err)
			} else if ok {
				svg, err := chart.SVG()
				if err != nil {
					fatal(err)
				}
				if err := os.WriteFile(filepath.Join(*out, id+".svg"), []byte(svg), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geobench:", err)
	os.Exit(1)
}
