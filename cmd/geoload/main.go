// Command geoload is a seeded closed-loop load generator for geomapd.
// Each of -c workers repeatedly draws the next request from a
// deterministic mix of cached (a small pool of repeating requests),
// novel (unique seed per request), and constrained (random pins)
// mapping requests, posts it — retrying 503 pool-shed responses behind
// capped, jittered exponential backoff — and records the latency. The
// run reports throughput, latency percentiles, outcome counts (with
// retries tallied separately from failures), and a placement
// digest folded over every response in request order — two runs with
// the same -seed against equivalent servers must print the same digest,
// which is how the serve-smoke CI target asserts end-to-end
// determinism.
//
// Usage:
//
//	geoload -url http://127.0.0.1:8080 -n 200 -c 8
//	geoload -url http://$(cat /tmp/geomapd.addr) -mix 0.8,0.15,0.05
//	geoload -url http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// -url accepts a comma-separated fleet; -route picks how requests are
// spread over it: "hash" (default) computes the same consistent-hash
// ring a -peers cluster uses server-side, so each request lands on its
// shard owner, while "rr" round-robins and exercises the cluster's
// peer-consult path. Responses are deterministic either way, so the
// digest matches the single-daemon run at any fleet size.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"geoprocmap/internal/buildinfo"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/service"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "geomapd base URL, or a comma-separated fleet of them")
		route       = flag.String("route", "hash", "multi-URL routing policy: hash (ring-route each request to its shard owner, matching the servers' ring) or rr (round-robin)")
		requests    = flag.Int("n", 200, "total requests to issue")
		concurrency = flag.Int("c", 8, "concurrent closed-loop workers")
		mix         = flag.String("mix", "0.70,0.20,0.10", "cached,novel,constrained request fractions")
		app         = flag.String("app", "LU", "workload preset for generated requests")
		procs       = flag.Int("procs", 16, "processes per request")
		sites       = flag.Int("sites", 4, "site count for constrained requests (pins draw from [0,sites))")
		cachedPool  = flag.Int("pool", 4, "distinct requests in the cached pool")
		seed        = flag.Int64("seed", 1, "random seed for the request stream")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request HTTP timeout")
		retries     = flag.Int("retries", 4, "max retries per request after a 503 pool-shed response")
		retryBase   = flag.Duration("retry-base", 50*time.Millisecond, "base retry backoff (doubles per attempt, ±25% jitter, capped at 16×)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Version("geoload"))
		return
	}
	fracs, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	if *requests < 1 || *concurrency < 1 {
		fatal(fmt.Errorf("-n and -c must be positive"))
	}

	// The full request stream is generated up front from one seeded
	// source: worker scheduling cannot perturb which requests exist,
	// only the order they land in, and digests are folded in request
	// order afterwards.
	reqs := make([]service.MapRequest, *requests)
	rng := stats.NewRand(*seed)
	for i := range reqs {
		r := service.MapRequest{Workload: *app, Procs: *procs}
		switch x := rng.Float64(); {
		case x < fracs[0]: // cached: draw from a small pool of seeds
			r.Seed = *seed + int64(rng.Intn(*cachedPool))
		case x < fracs[0]+fracs[1]: // novel: unique seed
			r.Seed = *seed + 1000 + int64(i)
		default: // constrained: unique seed plus random pins
			r.Seed = *seed + 2000 + int64(i)
			r.Constraint = make([]int, *procs)
			for p := range r.Constraint {
				r.Constraint[p] = -1
			}
			for pinned := 0; pinned < 1+rng.Intn(3); pinned++ {
				r.Constraint[rng.Intn(*procs)] = rng.Intn(*sites)
			}
		}
		reqs[i] = r
	}

	// Each request's target daemon is fixed up front — a pure function of
	// the URL list and the request stream, independent of worker timing.
	// hash routing computes the same ring the servers share, so requests
	// land directly on their shard owners; rr exercises the peer-consult
	// path instead. Responses are deterministic either way, so the folded
	// digest is identical at any fleet size and under either policy.
	targets, err := routeTargets(*url, *route, reqs)
	if err != nil {
		fatal(err)
	}

	results := make([]outcome, *requests)
	client := &http.Client{Timeout: *timeout}
	next := make(chan int, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		// Jitter draws come from a per-worker source: retry timing may
		// vary run to run, but the digest folds response bytes in request
		// order, so retried runs stay byte-identical per seed.
		jitter := stats.NewRand(*seed + int64(w))
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = post(client, targets[i], &reqs[i], *retries, *retryBase, jitter)
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	var (
		ok, cached, deduped, failed, retried int
		lats                                 []float64
		combined                             = sha256.New()
	)
	for i, res := range results {
		retried += res.retries
		if res.err != nil || res.status != http.StatusOK {
			failed++
			if failed <= 3 { // show the first few failures, not a flood
				if res.err != nil {
					fmt.Fprintf(os.Stderr, "geoload: request %d: %v\n", i, res.err)
				} else {
					fmt.Fprintf(os.Stderr, "geoload: request %d: HTTP %d\n", i, res.status)
				}
			}
			continue
		}
		ok++
		if res.cached {
			cached++
		}
		if res.deduped {
			deduped++
		}
		lats = append(lats, res.seconds*1e3)
		// Fold digests in request order so worker interleaving cannot
		// change the combined value.
		fmt.Fprintf(combined, "%d:%s\n", i, res.digest) //geolint:ignore errcheck hash.Hash.Write documents a nil error
	}

	fmt.Printf("geoload: %d requests in %.2fs (%.0f req/s), concurrency %d, seed %d\n",
		*requests, elapsed.Seconds(), float64(*requests)/elapsed.Seconds(), *concurrency, *seed)
	fmt.Printf("  ok %d, cached %d, deduped %d, retried %d, failed %d\n", ok, cached, deduped, retried, failed)
	if len(lats) > 0 {
		sort.Float64s(lats)
		fmt.Printf("  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
			stats.Percentile(lats, 50), stats.Percentile(lats, 90), stats.Percentile(lats, 99), stats.Max(lats))
	}
	fmt.Printf("  placement digest: %s\n", hex.EncodeToString(combined.Sum(nil)))
	if failed > 0 {
		os.Exit(1)
	}
}

// outcome is one request's result as the report tallies it.
type outcome struct {
	status  int
	cached  bool
	deduped bool
	retries int
	digest  string
	seconds float64
	err     error
}

// post issues one mapping request and decodes the pieces the report
// needs. A 503 means the daemon shed the request off a full solve queue
// — transient by construction — so post retries it up to maxRetries
// times behind capped exponential backoff with jitter; any other status
// is final. The recorded latency spans all attempts including the waits.
func post(client *http.Client, base string, req *service.MapRequest, maxRetries int, retryBase time.Duration, jitter *rand.Rand) (out outcome) {
	body, err := json.Marshal(req)
	if err != nil {
		out.err = err
		return
	}
	base503 := units.Seconds(retryBase.Seconds())
	t0 := time.Now()
	defer func() { out.seconds = time.Since(t0).Seconds() }()
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/map", "application/json", bytes.NewReader(body))
		if err != nil {
			out.err = err
			return
		}
		out.status = resp.StatusCode
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close() //geolint:ignore errcheck best-effort close of a response body already read to EOF
		if err != nil {
			out.err = err
			return
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < maxRetries {
			out.retries++
			wait := faults.Backoff(attempt, base503, base503.Scale(16), jitter)
			time.Sleep(time.Duration(wait.Float() * float64(time.Second)))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return
		}
		var mr service.MapResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			out.err = err
			return
		}
		out.cached = mr.Cached
		out.deduped = mr.Deduped
		out.digest = mr.Digest
		return
	}
}

// routeTargets resolves each request's target daemon from the -url list
// and the routing policy. A single URL short-circuits; "hash" builds the
// same consistent-hash ring the servers share (so client-side routing
// and server-side ownership agree and shard misses are rare); "rr"
// spreads requests round-robin, deliberately hitting non-owners.
func routeTargets(urlList, policy string, reqs []service.MapRequest) ([]string, error) {
	urls := strings.Split(urlList, ",")
	for i := range urls {
		urls[i] = service.NormalizePeerURL(urls[i])
	}
	targets := make([]string, len(reqs))
	if len(urls) == 1 {
		for i := range targets {
			targets[i] = urls[0]
		}
		return targets, nil
	}
	switch policy {
	case "hash":
		ring, err := service.NewRing(urls)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			targets[i] = ring.Owner(service.RoutingKey(&reqs[i]))
		}
	case "rr":
		for i := range targets {
			targets[i] = urls[i%len(urls)]
		}
	default:
		return nil, fmt.Errorf("-route must be hash or rr, got %q", policy)
	}
	return targets, nil
}

// parseMix parses "a,b,c" fractions summing to ~1.
func parseMix(s string) ([3]float64, error) {
	var fracs [3]float64
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return fracs, fmt.Errorf("-mix needs three comma-separated fractions, got %q", s)
	}
	sum := 0.0
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f < 0 {
			return fracs, fmt.Errorf("-mix fraction %q invalid", p)
		}
		fracs[i] = f
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return fracs, fmt.Errorf("-mix fractions sum to %g, want 1", sum)
	}
	return fracs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geoload:", err)
	os.Exit(1)
}
