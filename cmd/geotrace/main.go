// Command geotrace profiles a workload and inspects its communication
// trace: the CG/AG pattern summary, an ASCII heatmap of the matrix
// (the paper's Figure 3, in the terminal), per-process loop-compression
// statistics, and optionally one process's compressed stream.
//
// Usage:
//
//	geotrace -app LU -n 64
//	geotrace -app K-means -n 32 -proc 5     # show process 5's loop structure
package main

import (
	"flag"
	"fmt"
	"os"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/buildinfo"
	"geoprocmap/internal/experiments"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/trace"
)

func main() {
	var (
		appName = flag.String("app", "LU", "workload: LU, BT, SP, K-means, DNN")
		n       = flag.Int("n", 64, "number of processes")
		iters   = flag.Int("iters", 0, "iterations to trace (0 = workload default)")
		proc    = flag.Int("proc", -1, "print this process's compressed event stream")
		bins    = flag.Int("bins", 16, "heatmap resolution")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Version("geotrace"))
		return
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	it := *iters
	if it == 0 {
		it = app.DefaultIters()
	}
	rec, err := app.Trace(*n, it)
	if err != nil {
		fatal(err)
	}
	g := rec.Graph()

	fmt.Printf("workload:        %s × %d iterations on %d processes\n", app.Name(), it, *n)
	fmt.Printf("messages:        %d (%.2f MB total)\n", rec.Len(), float64(rec.TotalBytes())/netmodel.MB)
	fmt.Printf("pattern edges:   %d directed pairs, max degree %d\n", g.EdgeCount(), g.MaxDegree())
	fmt.Printf("mean message:    %.1f KB\n", g.TotalVolume()/g.TotalMsgs()/1024)

	compressed := trace.CompressAll(rec)
	fmt.Printf("loop compression: mean ratio %.1f× (CYPRESS-style structure recovery)\n\n", trace.MeanRatio(compressed))

	fmt.Println("communication matrix heatmap:")
	fmt.Print(experiments.HeatmapASCII(g, *bins))

	if *proc >= 0 {
		if *proc >= *n {
			fatal(fmt.Errorf("process %d out of range [0,%d)", *proc, *n))
		}
		c := compressed[*proc]
		fmt.Printf("\nprocess %d: %d events → %d items (%.1f×)\n", *proc, c.RawLen, c.Size(), c.Ratio())
		fmt.Println(c.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geotrace:", err)
	os.Exit(1)
}
