// Command geomap computes a process mapping for a workload on a
// geo-distributed cloud and reports the placement, its cost, and its
// improvement over the random baseline.
//
// Usage:
//
//	geomap -app LU -n 64                               # paper's deployment
//	geomap -app K-means -n 128 -regions us-east-1,eu-west-1 -algo greedy
//	geomap -app DNN -n 64 -constraints 0.4 -kappa 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/buildinfo"
	"geoprocmap/internal/core"
	"geoprocmap/internal/experiments"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/stats"
)

func main() {
	var (
		appName  = flag.String("app", "LU", "workload: LU, BT, SP, K-means, DNN")
		n        = flag.Int("n", 64, "number of processes (one per instance)")
		regions  = flag.String("regions", strings.Join(netmodel.PaperEC2Regions, ","), "comma-separated EC2 regions")
		instance = flag.String("instance", "m4.xlarge", "EC2 instance type")
		algo     = flag.String("algo", "geo", "mapper: geo, multilevel, greedy, mpipp, random, montecarlo")
		kappa    = flag.Int("kappa", 4, "number of K-means site groups for the geo mapper")
		workers  = flag.Int("workers", 0, "order-search goroutines for the geo mapper (0 = GOMAXPROCS, 1 = serial)")
		ratio    = flag.Float64("constraints", 0.2, "data-movement constraint ratio")
		seed     = flag.Int64("seed", 1, "random seed")
		verbose  = flag.Bool("v", false, "print the full placement vector")
		expProb  = flag.String("export-problem", "", "write the assembled problem as JSON to this file")
		expPlace = flag.String("export-placement", "", "write the computed placement as JSON to this file")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Version("geomap"))
		return
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	regionList := strings.Split(*regions, ",")
	if *n%len(regionList) != 0 {
		fatal(fmt.Errorf("process count %d not divisible by %d regions", *n, len(regionList)))
	}
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, *instance, regionList, *n/len(regionList), netmodel.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	inst, err := experiments.BuildInstance(cloud, app, *n, app.DefaultIters(), *ratio, *seed)
	if err != nil {
		fatal(err)
	}

	var mapper core.Mapper
	switch *algo {
	case "geo":
		mapper = &core.GeoMapper{Kappa: *kappa, Seed: *seed, Workers: *workers}
	case "multilevel":
		mapper = &core.MultilevelGeoMapper{Kappa: *kappa, Seed: *seed, Workers: *workers}
	case "greedy":
		mapper = &baselines.Greedy{}
	case "mpipp":
		mapper = &baselines.MPIPP{Seed: *seed}
	case "random":
		mapper = &baselines.Random{Seed: *seed}
	case "montecarlo":
		mapper = &baselines.MonteCarlo{Seed: *seed, Samples: 10000}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	pl, dur, err := inst.MapAndTime(mapper)
	if err != nil {
		fatal(err)
	}
	cost := inst.Problem.Cost(pl)

	// Random-baseline reference cost.
	rng := stats.NewRand(*seed + 42)
	var randCost float64
	const refs = 20
	for i := 0; i < refs; i++ {
		rp, err := core.RandomPlacement(inst.Problem, rng)
		if err != nil {
			fatal(err)
		}
		randCost += inst.Problem.Cost(rp).Float()
	}
	randCost /= refs

	fmt.Printf("workload:      %s on %d processes, %d iterations\n", app.Name(), *n, app.DefaultIters())
	fmt.Printf("cloud:         %s × %d nodes in %v\n", *instance, cloud.TotalNodes(), regionList)
	fmt.Printf("algorithm:     %s (overhead %v)\n", mapper.Name(), dur.Round(dur/1000+1))
	fmt.Printf("cost:          %.4f (α–β model, seconds of aggregate transfer)\n", cost)
	fmt.Printf("baseline cost: %.4f (mean of %d random mappings)\n", randCost, refs)
	fmt.Printf("improvement:   %.1f%%\n", experiments.ImprovementPct(randCost, cost.Float()))
	fmt.Println("processes per site:")
	counts := pl.Histogram(cloud.M())
	for j, c := range counts {
		fmt.Printf("  %-18s %d\n", cloud.Sites[j].Region.Name, c)
	}
	if st, err := inst.Problem.Diagnose(pl); err == nil {
		fmt.Printf("cross-WAN traffic: %.1f%% of volume (%.2f MB, %d messages)\n",
			100*st.CrossFraction(), st.CrossVolume.Float()/1e6, int(st.CrossMsgs))
		for _, f := range st.TopWANFlows(3) {
			fmt.Printf("  heaviest WAN flow: %s → %s, %.2f MB\n",
				cloud.Sites[int(f[0])].Region.Name, cloud.Sites[int(f[1])].Region.Name, f[2]/1e6)
		}
	}
	if *verbose {
		fmt.Println("placement:", pl)
	}
	if *expProb != "" {
		f, err := os.Create(*expProb)
		if err != nil {
			fatal(err)
		}
		if err := inst.Problem.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("problem written to", *expProb)
	}
	if *expPlace != "" {
		f, err := os.Create(*expPlace)
		if err != nil {
			fatal(err)
		}
		if err := core.WritePlacementJSON(f, mapper.Name(), cost.Float(), pl); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("placement written to", *expPlace)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geomap:", err)
	os.Exit(1)
}
