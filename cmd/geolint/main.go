// Command geolint runs the repository's static-analysis rules (package
// internal/analysis) over the module and prints findings with file:line
// positions and rule IDs. It exits non-zero when any finding survives the
// //geolint:ignore directives, which is how CI gates merges.
//
// Usage:
//
//	go run ./cmd/geolint ./...                # whole module
//	go run ./cmd/geolint ./internal/...      # one subtree
//	go run ./cmd/geolint -rules              # list the rules
//	go run ./cmd/geolint -json ./...         # machine-readable findings
//	go run ./cmd/geolint -staleignores ./... # also report unused ignores
//	go run ./cmd/geolint -only detcheck,locksafe ./...  # run a subset
//	go run ./cmd/geolint -skip mapiter ./...            # run all but some
//
// The plain-text output ("path:line:col: rule: message") matches the
// GitHub Actions problem matcher in .github/geolint-matcher.json, so CI
// findings surface as PR diff annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"geoprocmap/internal/analysis"
	"geoprocmap/internal/buildinfo"
)

// jsonFinding is the -json wire format, one object per finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	staleIgnores := flag.Bool("staleignores", false, "also report //geolint:ignore directives that suppress nothing")
	only := flag.String("only", "", "comma-separated rule IDs to run exclusively (unknown IDs are an error)")
	skip := flag.String("skip", "", "comma-separated rule IDs to leave out (unknown IDs are an error)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: geolint [-rules] [-json] [-staleignores] [-only ids] [-skip ids] [-version] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Version("geolint"))
		return
	}

	all := analysis.DefaultRules()
	if *listRules {
		for _, r := range all {
			fmt.Printf("%-14s %s\n", r.ID(), r.Doc())
		}
		return
	}
	// Rule selection: ignore directives keep being validated against the
	// full rule set, so a justified ignore for a deselected rule is not
	// misreported as unknown.
	known := map[string]bool{}
	for _, r := range all {
		known[r.ID()] = true
	}
	rules, err := analysis.SelectRules(all, splitIDs(*only), splitIDs(*skip))
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}
	// -staleignores stays authoritative on a scoped run: deselected rules
	// still execute for suppression accounting (their findings are
	// dropped), so an ignore directive that suppresses nothing is
	// reported stale even when -only excludes its rule.
	var usage []analysis.Rule
	if *staleIgnores {
		selected := map[string]bool{}
		for _, r := range rules {
			selected[r.ID()] = true
		}
		for _, r := range all {
			if !selected[r.ID()] {
				usage = append(usage, r)
			}
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	passes, err := analysis.Load(analysis.Config{Root: root, Patterns: patterns})
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}
	if len(passes) == 0 {
		fmt.Fprintf(os.Stderr, "geolint: no packages match %v\n", patterns)
		os.Exit(2)
	}
	// Surface reduced typed-rule coverage, but do not fail on it: go build
	// is the authority on compilability and runs alongside geolint in CI.
	for _, p := range passes {
		if len(p.TypeErrors) > 0 {
			fmt.Fprintf(os.Stderr, "geolint: warning: %s: %d type-check issue(s); typed rules may have reduced coverage (first: %v)\n",
				p.Path, len(p.TypeErrors), p.TypeErrors[0])
		}
	}
	findings := analysis.RunWith(passes, rules, analysis.RunOptions{StaleIgnores: *staleIgnores, KnownRules: known, UsageRules: usage})
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:    relTo(root, f.Pos.Filename),
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Rule:    f.Rule,
				Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "geolint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", relTo(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "geolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// splitIDs parses a comma-separated rule-ID list, dropping empty items.
func splitIDs(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// relTo shortens path relative to root when possible.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return rel
	}
	return path
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
