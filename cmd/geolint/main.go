// Command geolint runs the repository's static-analysis rules (package
// internal/analysis) over the module and prints findings with file:line
// positions and rule IDs. It exits non-zero when any finding survives the
// //geolint:ignore directives, which is how CI gates merges.
//
// Usage:
//
//	go run ./cmd/geolint ./...              # whole module
//	go run ./cmd/geolint ./internal/...    # one subtree
//	go run ./cmd/geolint -rules            # list the rules
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"geoprocmap/internal/analysis"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: geolint [-rules] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	rules := analysis.DefaultRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.ID(), r.Doc())
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	passes, err := analysis.Load(analysis.Config{Root: root, Patterns: patterns})
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}
	if len(passes) == 0 {
		fmt.Fprintf(os.Stderr, "geolint: no packages match %v\n", patterns)
		os.Exit(2)
	}
	// Surface reduced typed-rule coverage, but do not fail on it: go build
	// is the authority on compilability and runs alongside geolint in CI.
	for _, p := range passes {
		if len(p.TypeErrors) > 0 {
			fmt.Fprintf(os.Stderr, "geolint: warning: %s: %d type-check issue(s); typed rules may have reduced coverage (first: %v)\n",
				p.Path, len(p.TypeErrors), p.TypeErrors[0])
		}
	}
	findings := analysis.Run(passes, rules)
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "geolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
