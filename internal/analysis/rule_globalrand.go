package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRandRule forbids package-level math/rand functions in internal
// packages. Those functions draw from the process-global, unseeded
// generator, so any call makes K-means grouping, constraint sampling, and
// experiment setup differ run to run — breaking the reproducibility
// contract of EXPERIMENTS.md. Constructors (New, NewSource, NewZipf) are
// allowed: they are how the injected seeded *rand.Rand is built (see
// stats.NewRand).
type GlobalRandRule struct{}

// globalRandDeny lists the math/rand package-level functions that touch
// the global generator.
var globalRandDeny = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func (*GlobalRandRule) ID() string { return "globalrand" }

func (*GlobalRandRule) Doc() string {
	return "forbid global math/rand functions in internal/...; inject a seeded *rand.Rand instead"
}

func (r *GlobalRandRule) Check(p *Pass) []Finding {
	if !inInternal(p) {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		// The local name math/rand is imported under in this file, if any.
		local := importName(sf.AST, "math/rand")
		if local == "" || local == "_" {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != local || !globalRandDeny[sel.Sel.Name] {
				return true
			}
			// With type information, confirm the identifier really is the
			// package (not a shadowing variable).
			if p.Info != nil {
				if obj, ok := p.Info.Uses[id]; ok {
					if _, isPkg := obj.(*types.PkgName); !isPkg {
						return true
					}
				}
			}
			out = append(out, Finding{
				Rule: "globalrand",
				Pos:  p.position(call.Pos()),
				Message: "call to global math/rand." + sel.Sel.Name +
					": thread a seeded *rand.Rand (stats.NewRand) for run-to-run determinism",
			})
			return true
		})
	}
	return out
}

// importName returns the name path is bound to in file ("" if not
// imported; "." for dot imports is returned verbatim and callers treat it
// as not-trackable).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// inInternal reports whether the package lives in the module's internal/
// tree — the library scope of globalrand and libpanic. cmd/ and examples/
// are exempt by construction.
func inInternal(p *Pass) bool { return strings.Contains(p.Path, "/internal/") }
