package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the module-wide static call graph the interprocedural
// rules (detcheck, locksafe) walk. The engine adds every pass — including
// fact-only passes pulled in as imports — before any rule exports facts,
// so a root annotated in internal/core sees callees declared anywhere in
// the module.
//
// Nodes are declared functions and methods (*types.Func identity; the
// loader type-checks each package exactly once, so an object seen from an
// importing package is the same pointer as in its declaring package).
// Function literals are not nodes: their bodies are attributed to the
// enclosing declaration, which over-approximates in the safe direction
// for taint (the literal is assumed to run).
//
// Edge resolution:
//
//	static   the callee is a declared function or a method of a concrete
//	         receiver type, resolved through types.Info
//	dynamic  a call through a function value; resolved conservatively to
//	         every module function whose address is taken somewhere and
//	         whose signature is identical
//	iface    an interface method call; resolved to the corresponding
//	         method of every module type implementing the interface
//	go       the callee runs on a new goroutine
//	defer    the callee runs at function exit
//	ref      the callee's value is taken without being called (it may be
//	         invoked by code outside the graph, e.g. the standard library)

// CallMode classifies one call-graph edge.
type CallMode int

const (
	CallStatic CallMode = iota
	CallDynamic
	CallIface
	CallGo
	CallDefer
	CallRef
)

func (m CallMode) String() string {
	switch m {
	case CallStatic:
		return "static"
	case CallDynamic:
		return "dynamic"
	case CallIface:
		return "iface"
	case CallGo:
		return "go"
	case CallDefer:
		return "defer"
	case CallRef:
		return "ref"
	}
	return "?"
}

// CGEdge is one resolved call edge.
type CGEdge struct {
	Callee *types.Func
	Mode   CallMode
	Pos    token.Position
}

// CGNode is one declared function with its outgoing edges, in
// deterministic order (source order for static edges, then resolved
// dynamic/interface edges sorted by callee name).
type CGNode struct {
	Fn    *types.Func
	Pos   token.Position
	Edges []CGEdge
}

// CallGraph is the module-wide graph. Only declared module functions are
// nodes; edges may additionally point at functions outside the module
// (standard library), which simply have no node to continue from.
type CallGraph struct {
	nodes  map[*types.Func]*CGNode
	byName map[string]*CGNode
}

// Node returns fn's node, or nil when fn is not a declared module
// function.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// Lookup finds a node by types.Func.FullName, e.g.
// "(*geoprocmap/internal/core.GeoMapper).Map". Tests use it to assert
// exact edge sets.
func (g *CallGraph) Lookup(fullName string) *CGNode {
	if g == nil {
		return nil
	}
	return g.byName[fullName]
}

// Funcs returns every node's function sorted by full name.
func (g *CallGraph) Funcs() []*types.Func {
	names := make([]string, 0, len(g.byName))
	for n := range g.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*types.Func, 0, len(names))
	for _, n := range names {
		out = append(out, g.byName[n].Fn)
	}
	return out
}

// dynSite is an unresolved call through a function value.
type dynSite struct {
	caller *types.Func
	sig    *types.Signature
	mode   CallMode
	pos    token.Position
}

// ifaceSite is an unresolved interface method call.
type ifaceSite struct {
	caller *types.Func
	iface  *types.Interface
	name   string
	mode   CallMode
	pos    token.Position
}

// cgBuilder accumulates graph state across passes inside the FactSet.
type cgBuilder struct {
	graph      *CallGraph
	addrTaken  map[*types.Func]bool
	addrOrder  []*types.Func // deterministic iteration order of addrTaken
	dynSites   []dynSite
	ifaceSites []ifaceSite
	named      []*types.TypeName // module named types, for iface resolution
	namedSeen  map[*types.TypeName]bool
	finalized  bool
}

func newCGBuilder() *cgBuilder {
	return &cgBuilder{
		graph:     &CallGraph{nodes: map[*types.Func]*CGNode{}, byName: map[string]*CGNode{}},
		addrTaken: map[*types.Func]bool{},
		namedSeen: map[*types.TypeName]bool{},
	}
}

// CallGraph returns the module-wide graph. It is complete only after the
// fact phase (RunWith finalizes it before any rule checks).
func (fs *FactSet) CallGraph() *CallGraph {
	if fs == nil || fs.cg == nil {
		return nil
	}
	return fs.cg.graph
}

// AddCallGraphPass feeds one pass's declarations and call sites into the
// graph. The engine calls it for every pass (fact-only included) before
// the rule fact phase; FinalizeCallGraph resolves dynamic and interface
// call sites once all declarations are known.
func (fs *FactSet) AddCallGraphPass(p *Pass) {
	if p.Info == nil {
		return
	}
	b := fs.cg
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		b.addFile(p, sf)
	}
}

func (b *cgBuilder) addFile(p *Pass, sf *SourceFile) {
	for _, decl := range sf.AST.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok == token.TYPE {
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok && !b.namedSeen[tn] {
						b.namedSeen[tn] = true
						b.named = append(b.named, tn)
					}
				}
			}
			// Package-level var initializers can reference functions as
			// values (e.g. a registry map); scan them for address-taken
			// functions with no caller to attribute the edge to.
			if d.Tok == token.VAR {
				b.scanBody(p, nil, nil, d)
			}
		case *ast.FuncDecl:
			fn, ok := p.Info.Defs[d.Name].(*types.Func)
			if !ok || fn == nil {
				continue
			}
			node := &CGNode{Fn: fn, Pos: p.position(d.Pos())}
			b.graph.nodes[fn] = node
			b.graph.byName[fn.FullName()] = node
			if d.Body != nil {
				b.scanBody(p, fn, node, d.Body)
			}
		}
	}
}

// scanBody walks one declaration's subtree recording call edges, dynamic
// and interface call sites, and address-taken functions. caller/node are
// nil for package-level var initializers.
func (b *cgBuilder) scanBody(p *Pass, caller *types.Func, node *CGNode, root ast.Node) {
	// Calls launched with go or defer get their own edge mode.
	mode := map[*ast.CallExpr]CallMode{}
	// The callee position of every call (and the Sel of a selector
	// callee) must not double as an address-taken reference.
	calleeExpr := map[ast.Expr]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			mode[n.Call] = CallGo
		case *ast.DeferStmt:
			mode[n.Call] = CallDefer
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			calleeExpr[fun] = true
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				calleeExpr[sel.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			m, ok := mode[n]
			if !ok {
				m = CallStatic
			}
			b.addCall(p, caller, node, n, m)
		case *ast.Ident:
			if calleeExpr[n] {
				return true
			}
			if fn, ok := p.Info.Uses[n].(*types.Func); ok {
				b.markAddrTaken(fn)
				if node != nil {
					node.Edges = append(node.Edges, CGEdge{Callee: fn, Mode: CallRef, Pos: p.position(n.Pos())})
				}
			}
		}
		return true
	})
}

func (b *cgBuilder) markAddrTaken(fn *types.Func) {
	if !b.addrTaken[fn] {
		b.addrTaken[fn] = true
		b.addrOrder = append(b.addrOrder, fn)
	}
}

// addCall classifies one call site. Conversions and builtins are skipped;
// calls that resolve to a declared function get a static edge; interface
// method calls and function-value calls are recorded for resolution in
// FinalizeCallGraph.
func (b *cgBuilder) addCall(p *Pass, caller *types.Func, node *CGNode, call *ast.CallExpr, m CallMode) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return // conversion
	}
	pos := p.position(call.Lparen)
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[f].(type) {
		case *types.Func:
			if node != nil {
				node.Edges = append(node.Edges, CGEdge{Callee: obj, Mode: m, Pos: pos})
			}
			return
		case *types.Builtin, *types.TypeName:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				if caller != nil {
					b.ifaceSites = append(b.ifaceSites, ifaceSite{caller: caller, iface: iface, name: f.Sel.Name, mode: m, pos: pos})
				}
				return
			}
		}
		if obj, ok := p.Info.Uses[f.Sel].(*types.Func); ok {
			if node != nil {
				node.Edges = append(node.Edges, CGEdge{Callee: obj, Mode: m, Pos: pos})
			}
			return
		}
	}
	// A call through a function value (variable, field, parameter, or the
	// result of another call).
	if caller == nil {
		return
	}
	tv, ok := p.Info.Types[fun]
	if !ok || tv.Type == nil {
		return
	}
	if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
		b.dynSites = append(b.dynSites, dynSite{caller: caller, sig: sig, mode: m, pos: pos})
	}
}

// FinalizeCallGraph resolves the recorded dynamic and interface call
// sites against the full declaration set and deduplicates edges. The
// engine calls it once after every pass has been added.
func (fs *FactSet) FinalizeCallGraph() {
	b := fs.cg
	if b.finalized {
		return
	}
	b.finalized = true
	// Dynamic calls: every address-taken module function with an
	// identical signature may be the callee (go/types ignores receivers
	// when comparing signatures, so method values match too). A site
	// launched with go or defer keeps that mode — locksafe's blocking
	// propagation must not treat a goroutine launch as the caller
	// blocking — while a plain call becomes a dynamic edge.
	for _, site := range b.dynSites {
		node := b.graph.nodes[site.caller]
		if node == nil {
			continue
		}
		mode := site.mode
		if mode == CallStatic {
			mode = CallDynamic
		}
		for _, fn := range b.addrOrder {
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !types.Identical(sig, site.sig) {
				continue
			}
			node.Edges = append(node.Edges, CGEdge{Callee: fn, Mode: mode, Pos: site.pos})
		}
	}
	// Interface calls: the named method of every module type whose
	// pointer type implements the interface. Go/defer launches keep
	// their mode here too.
	for _, site := range b.ifaceSites {
		node := b.graph.nodes[site.caller]
		if node == nil {
			continue
		}
		mode := site.mode
		if mode == CallStatic {
			mode = CallIface
		}
		for _, target := range b.implementers(site.iface, site.name) {
			node.Edges = append(node.Edges, CGEdge{Callee: target, Mode: mode, Pos: site.pos})
		}
	}
	for _, node := range b.graph.nodes {
		node.Edges = dedupeEdges(node.Edges)
	}
}

// implementers returns the concrete method `name` of every module named
// type implementing iface, sorted by full name for determinism.
func (b *cgBuilder) implementers(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, tn := range b.named {
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, tn.Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// dedupeEdges removes duplicate (callee, mode) pairs, keeping first
// occurrence order.
func dedupeEdges(edges []CGEdge) []CGEdge {
	type key struct {
		fn   *types.Func
		mode CallMode
	}
	seen := map[key]bool{}
	out := edges[:0]
	for _, e := range edges {
		k := key{e.Callee, e.Mode}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

// BuildCallGraph constructs and finalizes the call graph of a pass set
// without running any rules — the call-graph golden tests use it.
func BuildCallGraph(passes []*Pass) *CallGraph {
	fs := NewFactSet()
	for _, p := range passes {
		fs.AddCallGraphPass(p)
	}
	fs.FinalizeCallGraph()
	return fs.CallGraph()
}
