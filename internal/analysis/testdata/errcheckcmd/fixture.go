// Command fixture exercises the errcheck rule's cmd/... scope: the
// CLIs must not silently discard error returns either.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func mayFail() error { return nil }

// main drops an error in command wiring — exactly the class of bug the
// cmd scope exists to catch.
func main() {
	mayFail() // want errcheck
}

// encodeDrop loses a JSON encoding failure, truncating output silently.
func encodeDrop(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // want errcheck
}

// deferDrop loses the error of a deferred close.
func deferDrop(f *os.File) {
	defer f.Close() // want errcheck
}

// --- consumed or infallible: the rule must not flag ----------------------

// handled propagates the error.
func handled() error { return mayFail() }

// stderrDiagnostics go to the process's own streams.
func stderrDiagnostics() {
	fmt.Println("progress")
	fmt.Fprintln(os.Stderr, "fixture: something went wrong")
}

// bestEffort documents why the discard is fine.
func bestEffort(f *os.File) {
	f.Sync() //geolint:ignore errcheck best-effort flush before exit; no recovery path in a CLI
}
