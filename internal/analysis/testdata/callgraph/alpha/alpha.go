// Package alpha is the callee side of the call-graph fixture: a plain
// function, a method, an interface implemented in the sibling package,
// and a function that reaches a nondeterminism source.
package alpha

import "time"

// Doer is implemented in package beta; calls through it must resolve to
// every module implementation, wherever declared.
type Doer interface {
	Do()
}

// Leaf is a plain cross-package call target.
func Leaf() {}

// Clock reaches a nondeterminism source directly.
func Clock() time.Time { return time.Now() }

// T carries a method-call target.
type T struct{}

// M is a method edge target.
func (T) M() {}
