// Package beta is the caller side of the call-graph fixture: one
// function per edge mode, a mutual-recursion cycle, and an annotated
// root whose taint walk must terminate on that cycle.
package beta

import "example.com/cg/alpha"

// Static calls a package function and a concrete method directly.
func Static() {
	alpha.Leaf()
	var t alpha.T
	t.M()
}

// Dynamic calls through a function value: one ref edge for taking the
// value, one dynamic edge resolved by signature identity against the
// address-taken set.
func Dynamic() {
	f := alpha.Leaf
	f()
}

// Via calls through an interface; edges go to the matching method of
// every module type implementing it.
func Via(d alpha.Doer) {
	d.Do()
}

// Impl satisfies alpha.Doer.
type Impl struct{}

// Do is the interface-resolved target.
func (Impl) Do() {}

// Ping and Pong are mutually recursive; taint propagation must
// terminate on the cycle instead of revisiting it forever.
func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

// Pong closes the cycle and also reaches the nondeterminism source.
func Pong(n int) {
	alpha.Clock()
	Ping(n)
}

// Spawn exercises the go and defer edge modes.
func Spawn() {
	go alpha.Leaf()
	defer alpha.Leaf()
}

// Root is the annotated entry point: its only path to time.Now runs
// through the Ping/Pong cycle.
//
//geolint:deterministic
func Root() {
	Ping(3)
}

// MethodValue takes a bound method as a function value: one ref edge for
// the reference, then a dynamic call resolved by signature identity —
// which now includes the method itself in the address-taken set.
func MethodValue() {
	var t alpha.T
	f := t.M
	f()
}

// DeferredClosure defers a function literal: the literal's body is
// attributed to the enclosing declaration (a static edge to Leaf), and
// the deferred invocation is a defer-mode dynamic site.
func DeferredClosure() {
	defer func() {
		alpha.Leaf()
	}()
}

// GoInRange launches a goroutine inside a range body; the go mode must
// survive the loop nesting.
func GoInRange(xs []int) {
	for range xs {
		go alpha.Clock()
	}
}
