// Package fixture exercises the lock-discipline rule: mutexes held
// across direct and transitive blocking operations, an unlock missing on
// an early return, by-value mutex copies, and the disciplined patterns
// that must stay silent.
package fixture

import (
	"net/http"
	"sync"
)

// store is the service-tier shape under test.
type store struct {
	mu sync.Mutex
	m  map[string]int
	ch chan int
	wg sync.WaitGroup
}

// SendLocked parks on a channel send while holding the mutex.
func (s *store) SendLocked(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want locksafe
}

// WaitLocked waits on the group while holding the mutex.
func (s *store) WaitLocked() {
	s.mu.Lock()
	s.wg.Wait() // want locksafe
	s.mu.Unlock()
}

// FetchLocked reaches an HTTP round-trip through a helper; the blocking
// fact arrives over the call graph, not from this body.
func (s *store) FetchLocked() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fetch() // want locksafe
}

func fetch() error {
	_, err := http.Get("http://example.com/")
	return err
}

// Get forgets the unlock on the missing-key path.
func (s *store) Get(k string) int {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		return -1 // want locksafe
	}
	s.mu.Unlock()
	return v
}

// Snapshot's value receiver copies the embedded mutex.
func (s store) Snapshot() int { // want locksafe
	return len(s.m)
}

// merge takes the mutex-bearing struct by value as a parameter.
func merge(a store, b int) int { // want locksafe
	return len(a.m) + b
}

// copyGuard copies the mutex into a local, which guards nothing.
func (s *store) copyGuard() {
	mu := s.mu // want locksafe
	mu.Lock()
	mu.Unlock()
}

// TrySend never parks: the select has a default case.
func (s *store) TrySend(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// GetOK unlocks on every path.
func (s *store) GetOK(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// lockForCaller never unlocks — a lock helper whose contract is to
// return with the mutex held; not a missing unlock.
func (s *store) lockForCaller() {
	s.mu.Lock()
}

// WaitIgnored blocks while locked but documents why that is safe here.
func (s *store) WaitIgnored() {
	s.mu.Lock()
	s.wg.Wait() //geolint:ignore locksafe fixture demonstrating justified suppression
	s.mu.Unlock()
}
