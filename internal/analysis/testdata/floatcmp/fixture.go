// Package fixture exercises the floatcmp rule: ==/!= between float
// expressions in cost/mapping code are findings; tolerance comparisons,
// integer equality, constant folding, and justified sentinels are not.
package fixture

import "math"

const eps = 1e-9

// Bad: two computed α–β costs almost never compare bitwise-equal.
func sameCost(a, b float64) bool {
	return a == b // want floatcmp
}

// Bad: inequality has the same hazard.
func costChanged(a, b float64) bool {
	return a != b // want floatcmp
}

// Good: tolerance comparison.
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

// Good: integer (site index) equality is exact.
func sameSite(a, b int) bool {
	return a == b
}

// Good: both operands constant — folded exactly at compile time.
const half = 0.5

var halfIsHalf = half == 0.5

// Good: ordering comparisons are meaningful on floats.
func cheaper(a, b float64) bool {
	return a < b
}

// Good: a justified exact sentinel is honored.
func isZeroDefault(v float64) bool {
	return v == 0 //geolint:ignore floatcmp fixture demonstrates a zero-value default sentinel
}
