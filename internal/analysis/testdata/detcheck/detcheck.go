// Package fixture exercises the interprocedural determinism rule: roots
// reaching every catalog source directly, transitively, through cycles,
// and via go edges, plus the clean patterns that must stay silent.
package fixture

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// DirectClock reads the wall clock in its own body.
//
//geolint:deterministic
func DirectClock() time.Duration { // want detcheck
	start := time.Now()
	return time.Since(start)
}

// Transitive reaches the global rand stream through a helper chain.
//
//geolint:deterministic
func Transitive() int { // want detcheck
	return helperA()
}

func helperA() int { return helperB() }

func helperB() int { return rand.Intn(10) }

// CycleEnv reaches the environment through mutual recursion; the walk
// must terminate on the cycle and still report the chain.
//
//geolint:deterministic
func CycleEnv(n int) string { // want detcheck
	return cycA(n)
}

func cycA(n int) string {
	if n == 0 {
		return os.Getenv("HOME")
	}
	return cycB(n - 1)
}

func cycB(n int) string { return cycA(n) }

// MapOrder lets map iteration order escape through formatted output —
// the mapiter analysis reused as a per-function source fact.
//
//geolint:deterministic
func MapOrder(m map[string]int) { // want detcheck
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// FanIn reduces two worker channels in arrival order.
//
//geolint:deterministic
func FanIn(a, b <-chan int) int { // want detcheck
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// LoopRecv reaches an arrival-order fold through a go edge.
//
//geolint:deterministic
func LoopRecv(ch <-chan int) { // want detcheck
	go drain(ch)
}

func drain(ch <-chan int) {
	total := 0
	for i := 0; i < 3; i++ {
		total += <-ch
	}
	_ = total
}

// CleanSeeded draws from an injected seeded generator — the approved
// pattern; the rand constructors are not sources and methods on the
// injected *rand.Rand are not package-level draws.
//
//geolint:deterministic
func CleanSeeded() int {
	rng := rand.New(rand.NewSource(1))
	return rng.Intn(10)
}

// CleanViaBoundary calls an audited boundary function; taint stops at
// the boundary instead of propagating out of it.
//
//geolint:deterministic
func CleanViaBoundary() int64 {
	return auditedClock()
}

// auditedClock is deliberately nondeterministic and says so.
//
//geolint:detsource metrics timestamp only, never an input to placement
func auditedClock() int64 { return time.Now().UnixNano() }

// CleanViaExcuse excuses one timing line; the rest of the body stays
// under scrutiny.
//
//geolint:deterministic
func CleanViaExcuse() int {
	start := time.Now() //geolint:detsource wall-clock overhead measurement, result never reaches the return value
	_ = start
	return 4
}

// IgnoredRoot reaches a source but carries a justified rule-level
// suppression on the reported line.
//
//geolint:deterministic
func IgnoredRoot() time.Time { //geolint:ignore detcheck fixture demonstrating root-level suppression
	return time.Now()
}
