// Package fixture exercises the errcheck rule: no silently discarded
// error returns in internal/... code.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

// dropsError discards the error as a bare statement.
func dropsError() {
	mayFail() // want errcheck
}

// deferDrop loses the error of a deferred cleanup — the classic
// defer f.Close().
func deferDrop(f *os.File) {
	defer f.Close() // want errcheck
}

// goDrop fires and forgets a fallible call.
func goDrop() {
	go mayFail() // want errcheck
}

// fileWrite can genuinely fail: files are not infallible writers.
func fileWrite(f *os.File) {
	fmt.Fprintf(f, "header\n") // want errcheck
}

// --- consumed or infallible: the rule must not flag ----------------------

// handled propagates the error.
func handled() error { return mayFail() }

// explicit states the discard greppably.
func explicit() {
	_ = mayFail()
}

// builderWrites cannot fail: strings.Builder documents a nil error.
func builderWrites(b *strings.Builder) {
	b.WriteString("ok")
	fmt.Fprintf(b, "%d\n", 1)
}

// stdoutWrites go to the process's own streams.
func stdoutWrites() {
	fmt.Println("ok")
	fmt.Fprintln(os.Stdout, "ok")
	fmt.Fprintln(os.Stderr, "ok")
}

// bestEffort flushes as a shutdown hint; there is nothing the caller
// could do differently on failure.
func bestEffort(f *os.File) {
	f.Sync() //geolint:ignore errcheck best-effort flush on shutdown; the caller has no recovery path
}
