// Package fixture exercises the allocsafe rule: every catalog site
// family as a true positive, plus the negatives the rule must stay quiet
// on — pre-sized appends, non-escaping literals, audited boundaries,
// line-level excuses, and justified ignores.
package fixture

import "fmt"

// EscapeByReturn returns a slice literal through a local.
//
//geolint:allocfree
func EscapeByReturn() []int { // want allocsafe
	buf := []int{1, 2, 3}
	return buf
}

// EscapeByCapture returns a closure that captures a local.
//
//geolint:allocfree
func EscapeByCapture(start int) func() int { // want allocsafe
	n := start
	return func() int { n++; return n }
}

// Boxes boxes a concrete int into an interface twice: once at the var
// declaration, once at the return.
//
//geolint:allocfree
func Boxes(v int) any { // want allocsafe
	var sink any = v
	_ = sink
	return v
}

// AppendGrowth appends to a slice with no reachable capacity proof.
//
//geolint:allocfree
func AppendGrowth(xs []int, v int) []int { // want allocsafe
	xs = append(xs, v)
	return xs
}

// VariadicSlice allocates the backing slice of a variadic call.
//
//geolint:allocfree
func VariadicSlice() int { // want allocsafe
	return sum(1, 2, 3)
}

func sum(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

// Transitive is clean itself but reaches make through a callee.
//
//geolint:allocfree
func Transitive(n int) int { // want allocsafe
	return helper(n)
}

func helper(n int) int {
	buf := make([]int, n)
	return len(buf)
}

// SpawnsGoroutine allocates a goroutine.
//
//geolint:allocfree
func SpawnsGoroutine(done chan<- int) { // want allocsafe
	go func() { done <- 1 }()
}

// DeferredCapture defers a closure that captures its parameter.
//
//geolint:allocfree
func DeferredCapture(k *kernel) { // want allocsafe
	defer func() { k.buf = nil }()
}

// Concat builds a fresh string.
//
//geolint:allocfree
func Concat(a, b string) string { // want allocsafe
	return a + b
}

// Formats routes through fmt, which boxes and builds strings.
//
//geolint:allocfree
func Formats(n int) string { // want allocsafe
	return fmt.Sprintf("n=%d", n)
}

// --- negatives: none of the roots below may produce a finding ---------

type kernel struct{ buf []int }

// PreSizedAppend reuses the high-water scratch: appending after a
// self-reslice reset never grows at steady state.
//
//geolint:allocfree
func (k *kernel) PreSizedAppend(xs []int) {
	k.buf = k.buf[:0]
	for _, v := range xs {
		k.buf = append(k.buf, v)
	}
}

// ResetAppend uses the one-expression reset idiom.
//
//geolint:allocfree
func (k *kernel) ResetAppend(xs []int) {
	k.buf = append(k.buf[:0], xs...)
	for _, v := range xs {
		k.buf = append(k.buf, v)
	}
}

// PreSizedLocal carries a justified line excuse for its one-time make;
// the appends are against the excused slice and provably pre-sized.
//
//geolint:allocfree
func PreSizedLocal() int {
	buf := make([]int, 0, 8) //geolint:allocsite bounded one-time scratch sized by a constant
	for i := 0; i < 8; i++ {
		buf = append(buf, i)
	}
	return len(buf)
}

// NonEscapingLiteral keeps a value-typed literal on the stack.
//
//geolint:allocfree
func NonEscapingLiteral() int {
	w := [4]int{1, 2, 3, 4}
	t := 0
	for _, v := range w {
		t += v
	}
	return t
}

// LocalSliceLiteral never lets its slice literal escape.
//
//geolint:allocfree
func LocalSliceLiteral() int {
	s := []int{1, 2}
	return s[0] + s[1]
}

// grow is the audited cold path that rebuilds scratch storage.
//
//geolint:allocsite cold path: cache rebuild amortized over many queries
func grow(n int) []int {
	return make([]int, n)
}

// CleanViaBoundary calls through an audited boundary; taint stops there.
//
//geolint:allocfree
func CleanViaBoundary(n int) int {
	return len(grow(n))
}

// IgnoredRoot acknowledges its finding with a justified ignore.
//
//geolint:allocfree
func IgnoredRoot() []int { //geolint:ignore allocsafe fixture demonstrates suppression of an acknowledged site
	return make([]int, 4)
}

// CallbackIteration passes a capturing closure as a plain call argument —
// the callback-iteration idiom the compiler keeps on the stack.
//
//geolint:allocfree
func CallbackIteration(xs []int) int {
	t := 0
	each(xs, func(v int) { t += v })
	return t
}

func each(xs []int, fn func(int)) {
	for _, v := range xs {
		fn(v)
	}
}
