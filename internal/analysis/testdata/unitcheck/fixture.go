// Package fixture exercises the unitcheck rule: the unit types are
// declared locally with //geolint:unit directives, mirroring
// internal/units, so the facts phase exports them from this very package.
package fixture

// Seconds is a duration.
//
//geolint:unit
type Seconds float64

// BytesPerSec is a data rate.
//
//geolint:unit
type BytesPerSec float64

// Cost is the α–β objective.
//
//geolint:unit
type Cost float64

// Float returns the raw magnitude of s.
func (s Seconds) Float() float64 { return float64(s) }

// Float returns the raw magnitude of r.
func (r BytesPerSec) Float() float64 { return float64(r) }

// Scale returns s * x for a dimensionless factor x.
func (s Seconds) Scale(x float64) Seconds { return Seconds(float64(s) * x) }

// AsCost is this fixture's one blessed dimension crossing, mirroring the
// named converters of internal/units.
func (s Seconds) AsCost() Cost { return Cost(s) } //geolint:ignore unitcheck the fixture's own crossing helper, mirroring internal/units converters

type opts struct {
	Timeout Seconds
	Rate    BytesPerSec
}

// addMixed adds seconds to bytes/second by laundering both through
// Float(): type-correct, dimensionally corrupt.
func addMixed(lat Seconds, bw BytesPerSec) float64 {
	return lat.Float() + bw.Float() // want unitcheck
}

// compareMixed orders a duration against a rate through float64
// conversions.
func compareMixed(lat Seconds, bw BytesPerSec) bool {
	return float64(lat) < float64(bw) // want unitcheck
}

// square's result is typed Seconds but means seconds².
func square(lat Seconds) Seconds {
	return lat * lat // want unitcheck
}

// crossConvert hops dimensions without a named converter.
func crossConvert(lat Seconds) Cost {
	return Cost(lat) // want unitcheck
}

// bareField adopts Seconds through implicit conversion instead of
// stating the dimension with Seconds(5).
func bareField() opts {
	return opts{Timeout: 5} // want unitcheck
}

// barePad adds a naked literal to a typed duration.
func barePad(s Seconds) Seconds {
	return s + 1 // want unitcheck
}

// --- sound arithmetic the rule must not flag -----------------------------

// defaultTimeout states its dimension with the constructor.
const defaultTimeout = Seconds(30)

// sum of two same-unit values uses the built-in operator.
func sum(a, b Seconds) Seconds { return a + b }

// ratio of two same-unit magnitudes is a sound dimensionless value.
func ratio(a, b Seconds) float64 { return a.Float() / b.Float() }

// zeroGuard compares against zero, which is zero in every unit.
func zeroGuard(s Seconds) bool { return s <= 0 }

// scaled multiplies by a dimensionless factor through the helper.
func scaled(s Seconds) Seconds { return s.Scale(2.5) }

// constructed wraps its literal in the constructor.
func constructed() Seconds { return Seconds(8 << 20) }
