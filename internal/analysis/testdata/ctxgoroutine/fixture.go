// Package fixture exercises the ctxgoroutine rule: goroutines in the
// simulator packages need a visible shutdown path — a done/quit channel
// select or WaitGroup tracking.
package fixture

import "sync"

// Bad: nothing joins or cancels this goroutine.
func leaky(work func()) {
	go func() { // want ctxgoroutine
		work()
	}()
}

// Good: WaitGroup-tracked; the spawner can join it.
func tracked(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Good: cancelable via a done channel.
func cancelable(done chan struct{}, jobs chan int, work func(int)) {
	go func() {
		for {
			select {
			case v := <-jobs:
				work(v)
			case <-done:
				return
			}
		}
	}()
}

// Good: a justified exemption is honored.
func justified(work func()) {
	go func() { //geolint:ignore ctxgoroutine fixture demonstrates a justified exemption
		work()
	}()
}
