// Package fixture exercises the libpanic rule: panics in library
// functions are findings; Must* helpers, returned errors, and justified
// invariant annotations are not.
package fixture

import "fmt"

// Bad: caller-reachable misuse must surface as a returned error.
func Scale(xs []float64, f float64) {
	if f < 0 {
		panic("fixture: negative factor") // want libpanic
	}
	for i := range xs {
		xs[i] *= f
	}
}

// Good: the error-returning shape of the same check.
func ScaleChecked(xs []float64, f float64) error {
	if f < 0 {
		return fmt.Errorf("fixture: negative factor %g", f)
	}
	for i := range xs {
		xs[i] *= f
	}
	return nil
}

// Good: Must* helpers are invariant-violation helpers by convention.
func MustScale(xs []float64, f float64) {
	if err := ScaleChecked(xs, f); err != nil {
		panic(err)
	}
}

// Good: a justified invariant annotation is honored.
func index(xs []float64, i int) float64 {
	if i < 0 || i >= len(xs) {
		panic("fixture: index out of range") //geolint:ignore libpanic fixture demonstrates a justified invariant
	}
	return xs[i]
}
