// Package fixture exercises the mapiter rule: map iteration order must
// not reach returned values, appended slices (unless sorted), formatted
// output, or channel sends.
package fixture

import (
	"fmt"
	"sort"
)

// unsortedKeys returns the keys in map iteration order: two runs with the
// same map differ.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want mapiter
	}
	return keys
}

// printEach emits one line per entry in iteration order.
func printEach(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want mapiter
	}
}

// sendEach publishes values in iteration order.
func sendEach(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want mapiter
	}
}

// concat bakes the iteration order into the returned string.
func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want mapiter
	}
	return s
}

// --- order-insensitive uses the rule must not flag -----------------------

// sortedKeys is the approved collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sumValues is commutative accumulation over the values.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// maxValue is a commutative fold.
func maxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// invert writes into another map; insertion order is invisible.
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// collectForCaller appends for the caller to sort after merging several
// maps — a cross-function flow the per-function analysis cannot see.
func collectForCaller(m map[string]int, keys []string) []string {
	for k := range m {
		keys = append(keys, k) //geolint:ignore mapiter caller sorts the merged slice once after combining several maps
	}
	return keys
}
