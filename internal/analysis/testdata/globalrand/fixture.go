// Package fixture exercises the globalrand rule: package-level math/rand
// calls hit the process-global unseeded generator and are findings;
// injected seeded *rand.Rand use and constructor calls are not.
package fixture

import "math/rand"

// Bad: global generator mutation, nondeterministic run to run.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(a, b int) { xs[a], xs[b] = xs[b], xs[a] }) // want globalrand
}

// Bad: global draw.
func drawGlobal() float64 {
	return rand.Float64() // want globalrand
}

// Good: an injected seeded generator is the reproducibility contract.
func drawSeeded(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Good: constructors are how the seeded generator is built.
func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Good: a justified exemption is honored.
func legacyDraw() float64 {
	return rand.Float64() //geolint:ignore globalrand fixture demonstrates a justified exemption
}
