// Package fixture exercises the sleepretry rule: bare time.Sleep calls in
// retry loops are flagged; waits derived from a backoff helper, sleeps
// outside loops, and justified ignores are not.
package fixture

import "time"

// backoff stands in for faults.Backoff in this self-contained fixture.
func backoff(attempt int) time.Duration {
	return time.Duration(attempt+1) * time.Millisecond
}

func retryBare() {
	for i := 0; i < 3; i++ {
		time.Sleep(100 * time.Millisecond) // want sleepretry
	}
}

func retryRange(items []int) {
	for range items {
		time.Sleep(time.Second) // want sleepretry
	}
}

func retryNested() {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			time.Sleep(time.Millisecond) // want sleepretry
		}
	}
}

func retryWithBackoffCall() {
	for i := 0; i < 3; i++ {
		time.Sleep(backoff(i)) // ok: backoff-derived wait
	}
}

func retryWithBackoffVar() {
	backoffWait := backoff(0)
	for i := 0; i < 3; i++ {
		time.Sleep(backoffWait) // ok: backoff-named duration
	}
}

func sleepOutsideLoop() {
	time.Sleep(time.Millisecond) // ok: not a retry loop
}

func justifiedPoller() {
	for {
		time.Sleep(time.Second) //geolint:ignore sleepretry fixed-cadence poller by design, not a retry
		return
	}
}
