package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Allocation-discipline annotations. On a function declaration's doc
// comment:
//
//	//geolint:allocfree
//	func (h *heuristicState) fill(order []int)
//
// declares an alloc-free root: the function must not transitively reach
// an allocation site over the module call graph — the static contract
// behind the AllocsPerRun==0 benchmarks. And
//
//	//geolint:allocsite <one-line justification>
//
// on a function doc marks a justified boundary — taint propagation stops
// there (the whole function is audited as deliberately allocating, e.g. a
// cold cache-rebuild path). The same directive on or above an individual
// statement excuses just that line's site:
//
//	h.members[s] = append(h.members[s], i) //geolint:allocsite amortized high-water growth
//
// Both forms require a justification; a stale line-level excuse is
// reported so audited crossings cannot rot.
var allocSpec = taintSpec{
	rule:         "allocsafe",
	rootMarker:   "//geolint:allocfree",
	excuseMarker: "//geolint:allocsite",
	staleMsg:     "stale allocsite excuse: no allocation site on this or the next line; delete it",
	reachFmt:     "alloc-free function %s reaches an allocation site: %s at %s:%d",
}

// AllocSafeRule is the interprocedural allocation-discipline rule. The
// fact phase catalogs heap-allocation sites per function:
//
//   - make / new builtin calls
//   - composite literals that escape heuristically: returned, address-
//     taken, stored through a pointer/field/index, sent on a channel, or
//     held in a local that later escapes
//   - append growth on slices not provably pre-sized: appending to a
//     self-reslice (x[:0]) or to a slice made/reset in the same function
//     is amortized-free and not flagged
//   - string concatenation and fmt formatting (Sprintf and friends box
//     their arguments and build fresh strings)
//   - interface boxing of concrete non-pointer values at call, return,
//     and assignment boundaries
//   - variadic calls, which allocate the argument backing slice
//   - go statements and escaping capturing closures (a closure passed as
//     a plain call argument is stack-allocatable and not flagged; a
//     non-capturing literal is a static function and never flagged)
//
// The check phase walks the call graph breadth-first from every
// //geolint:allocfree root and reports the shortest call chain to each
// reachable site, exactly as detcheck does for nondeterminism (taint.go
// holds the shared machinery). The catalog is a heuristic for the
// compiler's escape analysis, deliberately biased toward false positives:
// a site the optimizer provably elides is excused with a justified
// //geolint:allocsite, and the BENCH_alloc benchmarks are the dynamic
// ground truth the static rule approximates.
type AllocSafeRule struct{}

func (*AllocSafeRule) ID() string { return "allocsafe" }

func (*AllocSafeRule) Doc() string {
	return "flag //geolint:allocfree functions that transitively reach an allocation site (make/new, escaping literals, append growth, boxing, variadic, fmt, closures) over the module call graph"
}

// ExportFacts collects annotations and per-function allocation-site facts
// for one pass.
func (r *AllocSafeRule) ExportFacts(p *Pass, fs *FactSet) {
	fs.alloc.exportPass(p, scanAllocSites)
}

// Check emits this pass's malformed annotations, walks the call graph
// from every root declared here, and reports stale line-level excuses.
func (r *AllocSafeRule) Check(p *Pass) []Finding {
	fs := p.Facts
	if fs == nil || p.Info == nil {
		return nil
	}
	return fs.alloc.check(p, fs.CallGraph())
}

// scanAllocSites catalogs the allocation sites in one function body,
// including bodies of nested function literals (the call graph attributes
// those to the enclosing declaration).
func scanAllocSites(p *Pass, fd *ast.FuncDecl) []TaintSource {
	s := &allocScanner{
		p:        p,
		fd:       fd,
		presized: map[string]bool{},
		escLocal: map[types.Object]string{},
	}
	s.prescan()
	s.walk()
	return dedupeSites(s.out)
}

// allocScanner carries one function's scan state.
type allocScanner struct {
	p  *Pass
	fd *ast.FuncDecl
	// presized keys slices that are provably reset or sized in this
	// function (assigned from make or a reslice), so append on them is
	// amortized high-water growth, not steady-state allocation.
	presized map[string]bool
	// escLocal maps locals initialized from a slice literal or a
	// capturing closure to a description; a later escaping use of the
	// local (return, store, send) flags the site.
	escLocal map[types.Object]string
	stack    []ast.Node
	out      []TaintSource
}

func (s *allocScanner) add(pos token.Pos, desc string) {
	s.out = append(s.out, TaintSource{Pos: s.p.position(pos), Desc: desc})
}

// prescan records pre-sized slices and escape-tracked locals before the
// site walk, so the analysis is insensitive to statement order.
func (s *allocScanner) prescan() {
	record := func(lhs, rhs ast.Expr, define bool) {
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
				if b, ok := s.p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						if k := s.key(lhs); k != "" {
							s.presized[k] = true
						}
					case "append":
						// x = append(x[:0], ...) resets x: later appends
						// to x reuse the same high-water backing array.
						if len(r.Args) > 0 {
							if se, ok := ast.Unparen(r.Args[0]).(*ast.SliceExpr); ok {
								if k := s.key(lhs); k != "" && k == s.key(se.X) {
									s.presized[k] = true
								}
							}
						}
					}
				}
			}
		case *ast.SliceExpr:
			if k := s.key(lhs); k != "" {
				s.presized[k] = true
			}
		case *ast.CompositeLit:
			if define && isSliceLit(s.p, r) {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := s.p.Info.Defs[id]; obj != nil {
						s.escLocal[obj] = "composite literal"
					}
				}
			}
		case *ast.FuncLit:
			if define && capturesOuter(s.p, s.fd, r) {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := s.p.Info.Defs[id]; obj != nil {
						s.escLocal[obj] = "capturing closure"
					}
				}
			}
		}
	}
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i], n.Tok == token.DEFINE)
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i], true)
				}
			}
		}
		return true
	})
}

// key canonicalizes a sliceable expression for the presized map: idents
// by object identity, selectors by base+field, index expressions with a
// wildcard index (a reset of h.members[j] covers append to h.members[s]).
func (s *allocScanner) key(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := s.p.Info.ObjectOf(e); obj != nil {
			return fmt.Sprintf("%p", obj)
		}
	case *ast.SelectorExpr:
		if base := s.key(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		if base := s.key(e.X); base != "" {
			return base + "[*]"
		}
	}
	return ""
}

// walk is the main site sweep. A stack of open nodes supplies the parent
// context composite literals and function literals escape through.
func (s *allocScanner) walk() {
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		if n == nil {
			s.stack = s.stack[:len(s.stack)-1]
			return true
		}
		s.stack = append(s.stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			s.call(n)
		case *ast.AssignStmt:
			s.assign(n)
		case *ast.ValueSpec:
			s.valueSpec(n)
		case *ast.ReturnStmt:
			s.ret(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.add(lit.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(s.p.Info.TypeOf(n)) && !isConstExpr(s.p, n) {
				s.add(n.OpPos, "string concatenation allocates")
			}
		case *ast.SendStmt:
			s.send(n)
		case *ast.GoStmt:
			s.add(n.Go, "go statement allocates a new goroutine")
		case *ast.FuncLit:
			s.funcLit(n)
		case *ast.CompositeLit:
			if isMapLit(s.p, n) {
				s.add(n.Pos(), "map literal allocates")
			}
		}
		return true
	})
}

// call classifies one call expression: conversions (interface boxing),
// builtins (make/new/append), fmt formatting, variadic backing slices,
// and per-argument boxing.
func (s *allocScanner) call(n *ast.CallExpr) {
	p := s.p
	fun := ast.Unparen(n.Fun)
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		if len(n.Args) == 1 && boxesInto(p.Info.TypeOf(n.Args[0]), tv.Type) {
			s.add(n.Lparen, "conversion boxes a concrete value into an interface")
		}
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.add(n.Lparen, "make allocates")
			case "new":
				s.add(n.Lparen, "new allocates")
			case "append":
				s.appendCall(n)
			}
			return
		}
	}
	if name := fmtCallName(p, fun); name != "" {
		s.add(n.Lparen, "fmt."+name+" allocates (formatting boxes its arguments)")
		return
	}
	sig := callSignature(p, fun)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	if sig.Variadic() && n.Ellipsis == token.NoPos && len(n.Args) >= np {
		s.add(n.Lparen, "variadic call allocates its argument slice")
	}
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if n.Ellipsis != token.NoPos {
				if i == np-1 {
					pt = sig.Params().At(np - 1).Type()
				}
			} else if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if boxesInto(p.Info.TypeOf(arg), pt) {
			s.add(arg.Pos(), "argument boxes a concrete value into an interface parameter")
		}
	}
}

// appendCall flags append growth unless the appendee is provably
// pre-sized: a self-reslice first argument (x[:0]) or a slice made or
// reset elsewhere in this function.
func (s *allocScanner) appendCall(n *ast.CallExpr) {
	if len(n.Args) == 0 {
		return
	}
	first := ast.Unparen(n.Args[0])
	if _, ok := first.(*ast.SliceExpr); ok {
		return
	}
	if k := s.key(first); k != "" && s.presized[k] {
		return
	}
	s.add(n.Lparen, "append may grow its backing array")
}

func (s *allocScanner) assign(n *ast.AssignStmt) {
	p := s.p
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(p.Info.TypeOf(n.Lhs[0])) {
		s.add(n.TokPos, "string concatenation allocates")
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lhs, rhs := n.Lhs[i], n.Rhs[i]
		if n.Tok == token.ASSIGN && boxesInto(p.Info.TypeOf(rhs), p.Info.TypeOf(lhs)) {
			s.add(rhs.Pos(), "assignment boxes a concrete value into an interface")
		}
		switch ast.Unparen(lhs).(type) {
		case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
			switch r := ast.Unparen(rhs).(type) {
			case *ast.CompositeLit:
				if isSliceLit(p, r) {
					s.add(r.Pos(), "composite literal stored outside the function escapes")
				}
			case *ast.Ident:
				if obj := p.Info.Uses[r]; obj != nil {
					if d, ok := s.escLocal[obj]; ok {
						s.add(r.Pos(), d+" escapes through a store")
					}
				}
			}
		}
	}
}

func (s *allocScanner) valueSpec(n *ast.ValueSpec) {
	if n.Type == nil {
		return
	}
	dst := s.p.Info.TypeOf(n.Type)
	for _, v := range n.Values {
		if boxesInto(s.p.Info.TypeOf(v), dst) {
			s.add(v.Pos(), "assignment boxes a concrete value into an interface")
		}
	}
}

func (s *allocScanner) ret(n *ast.ReturnStmt) {
	p := s.p
	sig := s.enclosingSig()
	for i, res := range n.Results {
		switch e := ast.Unparen(res).(type) {
		case *ast.CompositeLit:
			if isSliceLit(p, e) {
				s.add(e.Pos(), "composite literal escapes via return")
			}
		case *ast.Ident:
			if obj := p.Info.Uses[e]; obj != nil {
				if d, ok := s.escLocal[obj]; ok {
					s.add(e.Pos(), d+" escapes via return")
				}
			}
		}
		if sig != nil && i < sig.Results().Len() {
			if boxesInto(p.Info.TypeOf(res), sig.Results().At(i).Type()) {
				s.add(res.Pos(), "return boxes a concrete value into an interface result")
			}
		}
	}
}

func (s *allocScanner) send(n *ast.SendStmt) {
	switch v := ast.Unparen(n.Value).(type) {
	case *ast.CompositeLit:
		if isSliceLit(s.p, v) {
			s.add(v.Pos(), "composite literal escapes via channel send")
		}
	case *ast.Ident:
		if obj := s.p.Info.Uses[v]; obj != nil {
			if d, ok := s.escLocal[obj]; ok {
				s.add(v.Pos(), d+" escapes via channel send")
			}
		}
	}
}

// funcLit flags a capturing closure whose immediate context makes it
// escape. A literal passed as a plain call argument is stack-allocatable
// (the callback-iteration idiom) and a non-capturing literal compiles to
// a static function; neither is a site. A literal launched with go is
// covered by the GoStmt site.
func (s *allocScanner) funcLit(n *ast.FuncLit) {
	if !capturesOuter(s.p, s.fd, n) {
		return
	}
	j := len(s.stack) - 2
	for j >= 0 {
		if _, ok := s.stack[j].(*ast.ParenExpr); ok {
			j--
			continue
		}
		break
	}
	if j < 0 {
		return
	}
	switch ctx := s.stack[j].(type) {
	case *ast.CallExpr:
		if ast.Unparen(ctx.Fun) == ast.Expr(n) && j > 0 {
			if _, ok := s.stack[j-1].(*ast.DeferStmt); ok {
				s.add(n.Pos(), "deferred capturing closure allocates")
			}
		}
	case *ast.ReturnStmt:
		s.add(n.Pos(), "capturing closure escapes via return")
	case *ast.SendStmt:
		s.add(n.Pos(), "capturing closure escapes via channel send")
	case *ast.AssignStmt:
		for i, rhs := range ctx.Rhs {
			if ast.Unparen(rhs) != ast.Expr(n) || i >= len(ctx.Lhs) {
				continue
			}
			switch ast.Unparen(ctx.Lhs[i]).(type) {
			case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
				s.add(n.Pos(), "capturing closure stored outside the function escapes")
			}
		}
	case *ast.CompositeLit:
		s.add(n.Pos(), "capturing closure stored in a composite literal escapes")
	}
}

// enclosingSig returns the signature governing a return statement: the
// nearest open function literal's, or the declaration's.
func (s *allocScanner) enclosingSig() *types.Signature {
	for j := len(s.stack) - 2; j >= 0; j-- {
		if lit, ok := s.stack[j].(*ast.FuncLit); ok {
			if tv, ok := s.p.Info.Types[lit]; ok && tv.Type != nil {
				if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
					return sig
				}
			}
			return nil
		}
	}
	if fn, ok := s.p.Info.Defs[s.fd.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// capturesOuter reports whether lit references a variable declared in the
// enclosing function outside the literal itself (receiver and parameters
// included) — the condition under which the closure needs a heap object.
func capturesOuter(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captures = true
			return false
		}
		return true
	})
	return captures
}

// callSignature resolves the signature a call expression invokes (method
// signatures come back receiver-stripped, matching the argument list).
func callSignature(p *Pass, fun ast.Expr) *types.Signature {
	tv, ok := p.Info.Types[fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// fmtCallName returns the function name when fun resolves into package
// fmt — every fmt call boxes its variadic arguments and most build fresh
// strings, so the whole package is a site.
func fmtCallName(p *Pass, fun ast.Expr) string {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return ""
	}
	return fn.Name()
}

// boxesInto reports whether assigning a value of type src to a location
// of type dst boxes a concrete value into an interface. Pointer-shaped
// sources (pointers, maps, channels, funcs) fit in the interface word and
// do not allocate; everything else concrete is assumed to.
func boxesInto(src, dst types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if types.IsInterface(src) {
		return false
	}
	if _, ok := src.(*types.Tuple); ok {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.UntypedNil, types.UnsafePointer, types.Invalid:
			return false
		}
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the type checker folded e to a constant
// (constant string concatenation happens at compile time).
func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

func isSliceLit(p *Pass, lit *ast.CompositeLit) bool {
	t := p.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isMapLit(p *Pass, lit *ast.CompositeLit) bool {
	t := p.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// dedupeSites collapses sites that share a position line and description
// (nested string concatenation reports once per line, not per operator).
func dedupeSites(sites []TaintSource) []TaintSource {
	seen := map[string]bool{}
	out := sites[:0]
	for _, s := range sites {
		k := fmt.Sprintf("%s:%d:%s", s.Pos.Filename, s.Pos.Line, s.Desc)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	return out
}
