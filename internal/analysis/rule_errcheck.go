package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckRule flags silently discarded error returns in internal/...
// and cmd/...: a call whose last result is an error, used as a bare
// statement (or the call of a go/defer) without consuming any result. A
// dropped error in the calibration or experiment pipeline turns an I/O
// or validation failure into silently wrong numbers, which is worse
// than a crash; in the CLIs it turns a failed run into a silently
// truncated report.
//
// Consuming the error explicitly with `_ = f()` is allowed — it is
// greppable and states intent. Writers that cannot fail are exempt:
// fmt.Print*/Fprint* to a strings.Builder, bytes.Buffer, or os.Stdout/
// os.Stderr, and the Write*/String methods of strings.Builder and
// bytes.Buffer themselves (their errors are documented nil).
type ErrCheckRule struct{}

func (*ErrCheckRule) ID() string { return "errcheck" }

func (*ErrCheckRule) Doc() string {
	return "flag discarded error returns in internal/... and cmd/... ; handle the error or assign it to _ explicitly"
}

func (r *ErrCheckRule) inScope(path string) bool {
	return strings.Contains(path, "/internal/") || strings.Contains(path, "/cmd/")
}

func (r *ErrCheckRule) Check(p *Pass) []Finding {
	if !r.inScope(p.Path) || p.Info == nil {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				if c, ok := n.X.(*ast.CallExpr); ok {
					call, how = c, "discarded"
				}
			case *ast.GoStmt:
				call, how = n.Call, "discarded by go statement"
			case *ast.DeferStmt:
				call, how = n.Call, "discarded by defer"
			}
			if call == nil || !r.returnsError(p, call) || r.exempt(p, call) {
				return true
			}
			out = append(out, Finding{
				Rule: "errcheck",
				Pos:  p.position(call.Pos()),
				Message: "error returned by " + callName(call) + " is " + how +
					"; handle it or assign it to _ explicitly",
			})
			return true
		})
	}
	return out
}

// returnsError reports whether the call's last result is the error type.
func (r *ErrCheckRule) returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversions return no error
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false // builtins
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// exempt allowlists writers that cannot fail.
func (r *ErrCheckRule) exempt(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
		if strings.HasPrefix(name, "Print") {
			return true // stdout prints in diagnostics
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return infallibleWriter(p, call.Args[0])
		}
		return false
	}
	// Methods of strings.Builder and bytes.Buffer document a nil error.
	return infallibleWriter(p, sel.X)
}

// infallibleWriter reports whether e is a writer whose Write methods
// cannot return a non-nil error: *strings.Builder, *bytes.Buffer, or the
// process's own stdout/stderr.
func infallibleWriter(p *Pass, e ast.Expr) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "os" &&
			(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
			return true
		}
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, typ := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && typ == "Builder") || (pkg == "bytes" && typ == "Buffer")
}

// callName renders the called expression for the finding message.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
