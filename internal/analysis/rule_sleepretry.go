package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SleepRetryRule flags bare time.Sleep calls inside for-loops in internal
// packages. A sleep inside a loop is almost always a retry/poll wait, and a
// hard-coded duration there is how unbounded, un-jittered busy-waits creep
// in. Retry waits must derive their duration from the shared
// capped-exponential helper (faults.Backoff and friends) — the rule accepts
// any sleep whose argument mentions a backoff-named call or identifier.
type SleepRetryRule struct{}

func (*SleepRetryRule) ID() string { return "sleepretry" }

func (*SleepRetryRule) Doc() string {
	return "time.Sleep in a retry loop must take its duration from the shared backoff helper (faults.Backoff)"
}

func (r *SleepRetryRule) Check(p *Pass) []Finding {
	if !inInternal(p) {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		local := importName(sf.AST, "time")
		if local == "" || local == "_" || local == "." {
			continue
		}
		if sf.Test {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					// Reported when the outer walk reaches the nested loop.
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Sleep" {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != local {
					return true
				}
				if p.Info != nil {
					if obj, ok := p.Info.Uses[id]; ok {
						if _, isPkg := obj.(*types.PkgName); !isPkg {
							return true
						}
					}
				}
				if len(call.Args) == 1 && mentionsBackoff(call.Args[0]) {
					return true
				}
				out = append(out, Finding{
					Rule: "sleepretry",
					Pos:  p.position(call.Pos()),
					Message: "bare time.Sleep in a retry loop: derive the wait from the shared " +
						"capped-exponential helper (faults.Backoff) so retries stay bounded and jittered",
				})
				return true
			})
			return true
		})
	}
	return out
}

// mentionsBackoff reports whether the expression references a
// backoff-derived duration: any identifier or selector in it whose name
// contains "backoff" (case-insensitive).
func mentionsBackoff(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "backoff") {
			found = true
		}
		return !found
	})
	return found
}
