package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism annotations. On a function declaration's doc comment:
//
//	//geolint:deterministic
//	func (s *GeoMapper) Map(p *Problem) (Placement, error)
//
// declares a determinism root: the function must not transitively reach a
// nondeterminism source over the module call graph. And
//
//	//geolint:detsource <one-line justification>
//
// on a function doc marks a justified boundary — taint propagation stops
// there (the whole function and everything below it is audited as
// deliberately nondeterministic, e.g. a metrics clock). The same
// directive on or above an individual statement excuses just that line's
// source:
//
//	start := time.Now() //geolint:detsource wall-clock timing only, never placement input
//
// Both forms require a justification when excusing; a stale line-level
// excuse (no source on its line or the next) is reported so audited
// boundaries cannot rot.
const (
	detRootMarker      = "//geolint:deterministic"
	detSourcePrefix    = "//geolint:detsource"
	detSourceDirective = "detsource"
)

// DetSource is one nondeterminism source found in a function body.
type DetSource struct {
	Pos  token.Position
	Desc string
}

// detDirective is one line-level //geolint:detsource excuse. It covers
// sources on its own line and the next; the owning pass reports it when
// it excuses nothing.
type detDirective struct {
	pos    token.Position
	path   string // import path of the pass owning the file
	reason string
	used   bool
}

// DetCheckRule is the interprocedural determinism rule. The fact phase
// collects annotations and scans every function body for sources from the
// catalog:
//
//   - time.Now / time.Since (wall-clock reads)
//   - package-level math/rand calls (process-global, unseeded order);
//     methods on an injected *rand.Rand are fine
//   - map iteration whose order escapes (mapiter's analysis, reused
//     verbatim as a per-function fact)
//   - unordered channel fan-in: a select with two or more
//     non-cancellation communication cases, or a receive folded inside a
//     loop (arrival-order reductions)
//   - os.Getenv / os.LookupEnv / runtime.GOMAXPROCS / runtime.NumCPU
//     feeding values into the computation
//
// The check phase then walks the call graph breadth-first from every
// //geolint:deterministic root; reaching any source produces a finding at
// the root's declaration that prints the full call chain and the source
// position, so the report reads as a proof trace. Traversal follows every
// edge mode — including go, defer, and bare function references — and
// terminates on cycles via a visited set.
type DetCheckRule struct{}

func (*DetCheckRule) ID() string { return "detcheck" }

func (*DetCheckRule) Doc() string {
	return "flag //geolint:deterministic functions that transitively reach a nondeterminism source (time, global rand, escaping map order, channel fan-in, env) over the module call graph"
}

// ExportFacts collects annotations and per-function source facts for one
// pass. Directives are collected before bodies are scanned so an excuse
// works anywhere in its file.
func (r *DetCheckRule) ExportFacts(p *Pass, fs *FactSet) {
	if p.Info == nil {
		return
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		r.collectAnnotations(p, sf, fs)
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		for _, decl := range sf.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if fs.detBoundaries[fn] {
				continue // audited boundary: its sources are deliberate
			}
			srcs := r.scanSources(p, fd)
			for _, f := range mapIterEscapes(p, fd) {
				srcs = append(srcs, DetSource{Pos: f.Pos, Desc: "map iteration order escaping (" + f.Message + ")"})
			}
			kept := srcs[:0]
			for _, s := range srcs {
				if fs.detExcused(s.Pos) {
					continue
				}
				kept = append(kept, s)
			}
			if len(kept) > 0 {
				fs.detSources[fn] = append(fs.detSources[fn], kept...)
			}
		}
	}
}

// collectAnnotations registers roots, boundaries, and line-level excuses
// from one file, recording malformed annotations against the pass path.
func (r *DetCheckRule) collectAnnotations(p *Pass, sf *SourceFile, fs *FactSet) {
	// Comments that are part of a function declaration's doc group carry
	// function-level meaning; everything else is line-level.
	doc := map[*ast.Comment]*ast.FuncDecl{}
	for _, decl := range sf.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			doc[c] = fd
		}
	}
	bad := func(pos token.Position, msg string) {
		fs.detMalformed[p.Path] = append(fs.detMalformed[p.Path], Finding{Rule: "detcheck", Pos: pos, Message: msg})
	}
	for _, cg := range sf.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			pos := p.position(c.Pos())
			switch {
			case text == detRootMarker || strings.HasPrefix(text, detRootMarker+" "):
				fd, onFunc := doc[c]
				if !onFunc {
					bad(pos, "//geolint:deterministic must be the doc comment of a function declaration")
					continue
				}
				if text != detRootMarker {
					bad(pos, "//geolint:deterministic takes no arguments")
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, dup := fs.detRoots[fn]; !dup {
					fs.detRoots[fn] = p.position(fd.Name.Pos())
					fs.detRootOrder = append(fs.detRootOrder, fn)
				}
			case strings.HasPrefix(text, detSourcePrefix):
				reason := strings.TrimSpace(strings.TrimPrefix(text, detSourcePrefix))
				if reason == "" {
					bad(pos, "//geolint:detsource has no justification: want //geolint:detsource <reason>")
					continue
				}
				if fd, onFunc := doc[c]; onFunc {
					if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						fs.detBoundaries[fn] = true
					}
					continue
				}
				fs.addDetDirective(&detDirective{pos: pos, path: p.Path, reason: reason})
			}
		}
	}
}

func (fs *FactSet) addDetDirective(d *detDirective) {
	fs.detDirList = append(fs.detDirList, d)
	byLine := fs.detDirectives[d.pos.Filename]
	if byLine == nil {
		byLine = map[int][]*detDirective{}
		fs.detDirectives[d.pos.Filename] = byLine
	}
	for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
		byLine[line] = append(byLine[line], d)
	}
}

// detExcused reports whether a line-level detsource excuse covers pos,
// marking every covering directive used.
func (fs *FactSet) detExcused(pos token.Position) bool {
	ds := fs.detDirectives[pos.Filename][pos.Line]
	for _, d := range ds {
		d.used = true
	}
	return len(ds) > 0
}

// scanSources finds the catalog sources in one function body. Receives
// that are select communication clauses are attributed to the select's
// fan-in analysis, not double-counted as loop receives.
func (r *DetCheckRule) scanSources(p *Pass, fd *ast.FuncDecl) []DetSource {
	var out []DetSource
	selectRecv := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					selectRecv[u] = true
				}
				return true
			})
		}
		return true
	})
	// Inspect calls f(nil) after a node's children, so a stack of open
	// nodes tells us whether a receive sits inside a loop body.
	var stack []ast.Node
	inLoop := func() bool {
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc := nondetCall(p, n); desc != "" {
				out = append(out, DetSource{Pos: p.position(n.Lparen), Desc: desc})
			}
		case *ast.SelectStmt:
			if c := fanInCases(p, n); c >= 2 {
				out = append(out, DetSource{
					Pos:  p.position(n.Select),
					Desc: fmt.Sprintf("select over %d non-cancellation channels reduces in arrival order", c),
				})
			}
		case *ast.UnaryExpr:
			// A receive folded inside a loop is an arrival-order
			// reduction; a one-shot receive outside a loop is not.
			if n.Op == token.ARROW && inLoop() && !selectRecv[n] && !isCancelChan(n.X) {
				out = append(out, DetSource{
					Pos:  p.position(n.OpPos),
					Desc: "channel receive inside a loop folds values in arrival order",
				})
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !isCancelChan(n.X) {
					out = append(out, DetSource{
						Pos:  p.position(n.For),
						Desc: "range over a channel collects values in arrival order",
					})
				}
			}
		}
		return true
	})
	return out
}

// nondetCall returns a description when call is a catalog source, and ""
// otherwise.
func nondetCall(p *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return ""
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgLevel := sig == nil || sig.Recv() == nil
	switch fn.Pkg().Path() {
	case "time":
		if pkgLevel && (fn.Name() == "Now" || fn.Name() == "Since") {
			return "time." + fn.Name() + " reads the wall clock"
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New, rand.NewSource, rand.NewZipf) build the
		// injected seeded generators this repo standardizes on; only the
		// package-level draw functions touch the shared global stream.
		if pkgLevel && !strings.HasPrefix(fn.Name(), "New") {
			return "global math/rand." + fn.Name() + " draws from the shared process-wide stream"
		}
	case "os":
		if pkgLevel && (fn.Name() == "Getenv" || fn.Name() == "LookupEnv") {
			return "os." + fn.Name() + " reads the environment"
		}
	case "runtime":
		if pkgLevel && (fn.Name() == "GOMAXPROCS" || fn.Name() == "NumCPU") {
			return "runtime." + fn.Name() + " depends on the host"
		}
	}
	return ""
}

// fanInCases counts a select's non-cancellation communication cases.
func fanInCases(p *Pass, sel *ast.SelectStmt) int {
	n := 0
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue // default case
		}
		ch := commChannel(cc.Comm)
		if ch == nil || isCancelChan(ch) {
			continue
		}
		n++
	}
	return n
}

// commChannel extracts the channel expression of a select comm clause.
func commChannel(s ast.Stmt) ast.Expr {
	recvOf := func(e ast.Expr) ast.Expr {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
		return nil
	}
	switch s := s.(type) {
	case *ast.SendStmt:
		return s.Chan
	case *ast.ExprStmt:
		return recvOf(s.X)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			return recvOf(s.Rhs[0])
		}
	}
	return nil
}

// Check emits this pass's malformed annotations, walks the call graph
// from every root declared here, and reports stale line-level excuses in
// this pass's files.
func (r *DetCheckRule) Check(p *Pass) []Finding {
	fs := p.Facts
	if fs == nil || p.Info == nil {
		return nil
	}
	out := append([]Finding(nil), fs.detMalformed[p.Path]...)
	for _, root := range fs.detRootOrder {
		if root.Pkg() != p.Pkg {
			continue
		}
		out = append(out, r.checkRoot(fs, root)...)
	}
	for _, d := range fs.detDirList {
		if d.path == p.Path && !d.used {
			out = append(out, Finding{
				Rule: "detcheck", Pos: d.pos,
				Message: "stale detsource excuse: no nondeterminism source on this or the next line; delete it",
			})
		}
	}
	return out
}

// detNode is one BFS entry with its parent link for chain printing.
type detNode struct {
	fn     *types.Func
	parent *detNode
}

// checkRoot runs the taint walk from one deterministic root. BFS yields
// the shortest call chain to each reached function; the visited set
// guarantees termination on recursion and mutual recursion.
func (r *DetCheckRule) checkRoot(fs *FactSet, root *types.Func) []Finding {
	g := fs.CallGraph()
	rootPos := fs.detRoots[root]
	var out []Finding
	queue := []*detNode{{fn: root}}
	visited := map[*types.Func]bool{root: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, src := range fs.detSources[n.fn] {
			msg := fmt.Sprintf("deterministic function %s reaches a nondeterminism source: %s at %s:%d",
				shortFuncName(root), src.Desc, filepath.Base(src.Pos.Filename), src.Pos.Line)
			if chain := chainString(n); chain != "" {
				msg += " via " + chain
			}
			out = append(out, Finding{Rule: "detcheck", Pos: rootPos, Message: msg})
		}
		node := g.Node(n.fn)
		if node == nil {
			continue
		}
		for _, e := range node.Edges {
			if visited[e.Callee] || fs.detBoundaries[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			queue = append(queue, &detNode{fn: e.Callee, parent: n})
		}
	}
	return out
}

// chainString renders root -> ... -> source-function. Empty when the
// source is in the root itself.
func chainString(n *detNode) string {
	if n.parent == nil {
		return ""
	}
	var names []string
	for m := n; m != nil; m = m.parent {
		names = append(names, shortFuncName(m.fn))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// shortFuncName renders a function with its package basename:
// (*core.GeoMapper).Map, service.fingerprint.
func shortFuncName(fn *types.Func) string {
	full := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil {
		full = strings.ReplaceAll(full, pkg.Path(), pkg.Name())
	}
	return full
}
