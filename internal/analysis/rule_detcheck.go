package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism annotations. On a function declaration's doc comment:
//
//	//geolint:deterministic
//	func (s *GeoMapper) Map(p *Problem) (Placement, error)
//
// declares a determinism root: the function must not transitively reach a
// nondeterminism source over the module call graph. And
//
//	//geolint:detsource <one-line justification>
//
// on a function doc marks a justified boundary — taint propagation stops
// there (the whole function and everything below it is audited as
// deliberately nondeterministic, e.g. a metrics clock). The same
// directive on or above an individual statement excuses just that line's
// source:
//
//	start := time.Now() //geolint:detsource wall-clock timing only, never placement input
//
// Both forms require a justification when excusing; a stale line-level
// excuse (no source on its line or the next) is reported so audited
// boundaries cannot rot.
var detSpec = taintSpec{
	rule:         "detcheck",
	rootMarker:   "//geolint:deterministic",
	excuseMarker: "//geolint:detsource",
	staleMsg:     "stale detsource excuse: no nondeterminism source on this or the next line; delete it",
	reachFmt:     "deterministic function %s reaches a nondeterminism source: %s at %s:%d",
}

// DetCheckRule is the interprocedural determinism rule. The fact phase
// collects annotations and scans every function body for sources from the
// catalog:
//
//   - time.Now / time.Since (wall-clock reads)
//   - package-level math/rand calls (process-global, unseeded order);
//     methods on an injected *rand.Rand are fine
//   - map iteration whose order escapes (mapiter's analysis, reused
//     verbatim as a per-function fact)
//   - unordered channel fan-in: a select with two or more
//     non-cancellation communication cases, or a receive folded inside a
//     loop (arrival-order reductions)
//   - os.Getenv / os.LookupEnv / runtime.GOMAXPROCS / runtime.NumCPU
//     feeding values into the computation
//
// The check phase then walks the call graph breadth-first from every
// //geolint:deterministic root; reaching any source produces a finding at
// the root's declaration that prints the full call chain and the source
// position, so the report reads as a proof trace (taint.go holds the
// shared machinery).
type DetCheckRule struct{}

func (*DetCheckRule) ID() string { return "detcheck" }

func (*DetCheckRule) Doc() string {
	return "flag //geolint:deterministic functions that transitively reach a nondeterminism source (time, global rand, escaping map order, channel fan-in, env) over the module call graph"
}

// ExportFacts collects annotations and per-function source facts for one
// pass. Directives are collected before bodies are scanned so an excuse
// works anywhere in its file.
func (r *DetCheckRule) ExportFacts(p *Pass, fs *FactSet) {
	fs.det.exportPass(p, func(p *Pass, fd *ast.FuncDecl) []TaintSource {
		srcs := r.scanSources(p, fd)
		for _, f := range mapIterEscapes(p, fd) {
			srcs = append(srcs, TaintSource{Pos: f.Pos, Desc: "map iteration order escaping (" + f.Message + ")"})
		}
		return srcs
	})
}

// scanSources finds the catalog sources in one function body. Receives
// that are select communication clauses are attributed to the select's
// fan-in analysis, not double-counted as loop receives.
func (r *DetCheckRule) scanSources(p *Pass, fd *ast.FuncDecl) []TaintSource {
	var out []TaintSource
	selectRecv := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					selectRecv[u] = true
				}
				return true
			})
		}
		return true
	})
	// Inspect calls f(nil) after a node's children, so a stack of open
	// nodes tells us whether a receive sits inside a loop body.
	var stack []ast.Node
	inLoop := func() bool {
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc := nondetCall(p, n); desc != "" {
				out = append(out, TaintSource{Pos: p.position(n.Lparen), Desc: desc})
			}
		case *ast.SelectStmt:
			if c := fanInCases(p, n); c >= 2 {
				out = append(out, TaintSource{
					Pos:  p.position(n.Select),
					Desc: fmt.Sprintf("select over %d non-cancellation channels reduces in arrival order", c),
				})
			}
		case *ast.UnaryExpr:
			// A receive folded inside a loop is an arrival-order
			// reduction; a one-shot receive outside a loop is not.
			if n.Op == token.ARROW && inLoop() && !selectRecv[n] && !isCancelChan(n.X) {
				out = append(out, TaintSource{
					Pos:  p.position(n.OpPos),
					Desc: "channel receive inside a loop folds values in arrival order",
				})
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !isCancelChan(n.X) {
					out = append(out, TaintSource{
						Pos:  p.position(n.For),
						Desc: "range over a channel collects values in arrival order",
					})
				}
			}
		}
		return true
	})
	return out
}

// nondetCall returns a description when call is a catalog source, and ""
// otherwise.
func nondetCall(p *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return ""
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgLevel := sig == nil || sig.Recv() == nil
	switch fn.Pkg().Path() {
	case "time":
		if pkgLevel && (fn.Name() == "Now" || fn.Name() == "Since") {
			return "time." + fn.Name() + " reads the wall clock"
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New, rand.NewSource, rand.NewZipf) build the
		// injected seeded generators this repo standardizes on; only the
		// package-level draw functions touch the shared global stream.
		if pkgLevel && !strings.HasPrefix(fn.Name(), "New") {
			return "global math/rand." + fn.Name() + " draws from the shared process-wide stream"
		}
	case "os":
		if pkgLevel && (fn.Name() == "Getenv" || fn.Name() == "LookupEnv") {
			return "os." + fn.Name() + " reads the environment"
		}
	case "runtime":
		if pkgLevel && (fn.Name() == "GOMAXPROCS" || fn.Name() == "NumCPU") {
			return "runtime." + fn.Name() + " depends on the host"
		}
	}
	return ""
}

// fanInCases counts a select's non-cancellation communication cases.
func fanInCases(p *Pass, sel *ast.SelectStmt) int {
	n := 0
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue // default case
		}
		ch := commChannel(cc.Comm)
		if ch == nil || isCancelChan(ch) {
			continue
		}
		n++
	}
	return n
}

// commChannel extracts the channel expression of a select comm clause.
func commChannel(s ast.Stmt) ast.Expr {
	recvOf := func(e ast.Expr) ast.Expr {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
		return nil
	}
	switch s := s.(type) {
	case *ast.SendStmt:
		return s.Chan
	case *ast.ExprStmt:
		return recvOf(s.X)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			return recvOf(s.Rhs[0])
		}
	}
	return nil
}

// Check emits this pass's malformed annotations, walks the call graph
// from every root declared here, and reports stale line-level excuses in
// this pass's files.
func (r *DetCheckRule) Check(p *Pass) []Finding {
	fs := p.Facts
	if fs == nil || p.Info == nil {
		return nil
	}
	return fs.det.check(p, fs.CallGraph())
}
