// Package analysis is geolint's rule engine: a small, stdlib-only
// (go/ast, go/parser, go/token, go/types) static-analysis framework tuned
// to this repository's correctness contracts. The paper's headline result —
// ~50% average improvement over Greedy and MPIPP — is reproducible only if
// every experiment run is deterministic and every cost comparison is
// numerically sound, so the rules here guard exactly those properties:
//
//	globalrand    no package-level math/rand calls in internal/...
//	              (all randomness flows through injected seeded *rand.Rand)
//	libpanic      no panic in library code outside Must* invariant helpers
//	floatcmp      no ==/!= between float expressions in cost/mapping code
//	ctxgoroutine  goroutines in the simulators must be cancelable (select
//	              on a done/quit channel) or tracked by a sync.WaitGroup
//	unitcheck     dimensional analysis of the α–β model's unit types
//	              (//geolint:unit): no mixed-unit arithmetic laundered
//	              through float64, no bare literals where a unit is wanted,
//	              no unit-to-unit conversions bypassing the helpers
//	mapiter       map iteration order must not reach returned values,
//	              appended slices (unless sorted), formatted output, or
//	              channel sends — the determinism dataflow rule
//	errcheck      no silently discarded error returns in internal/...
//	detcheck      interprocedural determinism taint: functions annotated
//	              //geolint:deterministic must not transitively reach a
//	              nondeterminism source (time.Now, global math/rand,
//	              escaping map iteration, channel fan-in, os.Getenv,
//	              runtime.GOMAXPROCS) over the module call graph; deliberate
//	              crossings carry a justified //geolint:detsource
//	locksafe      service-tier lock discipline over the same call graph:
//	              no mutex held across a blocking operation (directly or
//	              transitively), no missing unlock on early returns, no
//	              lock-by-value copies
//	allocsafe     interprocedural allocation discipline: functions
//	              annotated //geolint:allocfree must not transitively
//	              reach an allocation site (make/new, escaping composite
//	              literals, append growth, string building, interface
//	              boxing, variadic calls, escaping closures) over the
//	              module call graph; deliberate crossings carry a
//	              justified //geolint:allocsite
//
// Rules that need module-wide knowledge implement FactExporter; Run drives
// a fact phase over every package before any rule checks, so (for example)
// the unit types declared in internal/units are recognized from every
// importing package. The engine also builds a module-wide call graph
// (callgraph.go) before the fact phase, and rules implementing
// FactFinalizer get one post-export pass to compute derived closures over
// it.
//
// Findings can be suppressed with a justified ignore directive on the
// offending line or the line above:
//
//	//geolint:ignore <rule> <one-line justification>
//
// A directive without a rule ID or justification is itself reported (rule
// ID "geolint") and suppresses nothing, so every exemption in the tree
// carries its reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic produced by a rule.
type Finding struct {
	Rule    string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// SourceFile is one parsed file of a package.
type SourceFile struct {
	Name string // path as given to the parser
	AST  *ast.File
	Test bool // *_test.go
}

// Pass is the per-package unit of work handed to each rule: the parsed
// files plus best-effort type information. Info and Pkg cover the
// package's non-test files; they may be incomplete when type-checking
// failed (rules degrade to syntactic checks in that case).
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. geoprocmap/internal/core
	Files []*SourceFile
	Info  *types.Info
	Pkg   *types.Package
	// TypeErrors collects type-checker diagnostics for this package.
	// Non-empty TypeErrors means typed rules may have reduced coverage.
	TypeErrors []error
	// Facts is the module-wide fact set, populated by Run before any
	// rule's Check is called. Nil when rules are invoked outside Run.
	Facts *FactSet
	// FactsOnly marks a package loaded solely because a pattern-matched
	// package imports it: it contributes facts (unit-type declarations)
	// but is not checked. Without this, linting a subtree would silently
	// lose the unitcheck rule whenever internal/units fell outside the
	// pattern.
	FactsOnly bool
}

// Rule is one geolint check.
type Rule interface {
	// ID is the short rule name used in output and ignore directives.
	ID() string
	// Doc is a one-line description for -rules output.
	Doc() string
	// Check reports the rule's findings for one package.
	Check(p *Pass) []Finding
}

// DefaultRules returns the repository's rule set.
func DefaultRules() []Rule {
	return []Rule{
		&GlobalRandRule{},
		&LibPanicRule{},
		&FloatCmpRule{},
		&CtxGoroutineRule{},
		&SleepRetryRule{},
		&UnitCheckRule{},
		&MapIterRule{},
		&ErrCheckRule{},
		&DetCheckRule{},
		&LockSafeRule{},
		&AllocSafeRule{},
	}
}

// SelectRules filters the rule set by ID: every ID in only (when
// non-empty) or absent from skip survives. Unknown IDs in either list are
// an error, so a typo'd -only never silently lints nothing.
func SelectRules(rules []Rule, only, skip []string) ([]Rule, error) {
	byID := map[string]Rule{}
	for _, r := range rules {
		byID[r.ID()] = r
	}
	for _, id := range append(append([]string{}, only...), skip...) {
		if byID[id] == nil {
			return nil, fmt.Errorf("unknown rule %q", id)
		}
	}
	skipSet := map[string]bool{}
	for _, id := range skip {
		skipSet[id] = true
	}
	onlySet := map[string]bool{}
	for _, id := range only {
		onlySet[id] = true
	}
	var out []Rule
	for _, r := range rules {
		if len(only) > 0 && !onlySet[r.ID()] {
			continue
		}
		if skipSet[r.ID()] {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// RunOptions tunes Run's behavior beyond the plain rule sweep.
type RunOptions struct {
	// StaleIgnores additionally reports every well-formed ignore
	// directive (per named rule) that suppressed no finding during the
	// run, under the pseudo-rule "geolint".
	StaleIgnores bool
	// KnownRules, when non-nil, is the full rule-ID universe used to
	// validate ignore directives. A scoped run (-only/-skip) passes the
	// default set here so a directive naming an unchecked-but-real rule
	// is neither "unknown" nor "stale".
	KnownRules map[string]bool
	// UsageRules run for suppression accounting only: their findings mark
	// //geolint:ignore directives as used and are then dropped, and their
	// IDs count as checked for StaleIgnores. cmd/geolint passes the rules
	// deselected by -only/-skip here so -staleignores stays authoritative
	// on a scoped run: an ignore for a deselected rule is reported as
	// stale exactly when a full run would report it.
	UsageRules []Rule
}

// Run applies the rules to every package, filters findings through the
// ignore directives, appends diagnostics for malformed directives, and
// returns the surviving findings sorted by position.
func Run(passes []*Pass, rules []Rule) []Finding {
	return RunWith(passes, rules, RunOptions{})
}

// RunWith is Run with options. It proceeds in two phases: first every rule
// implementing FactExporter sees every pass, building the module-wide
// FactSet; then every rule checks every pass with the completed facts
// available on Pass.Facts.
func RunWith(passes []*Pass, rules []Rule, opt RunOptions) []Finding {
	facts := NewFactSet()
	// Usage rules run the full fact/check pipeline alongside the
	// reporting rules; only their findings' fate differs below.
	allRules := append(append([]Rule{}, rules...), opt.UsageRules...)
	// Every pass — fact-only imports included — contributes declarations
	// and call sites to the module call graph before any rule runs, so a
	// deterministic root in internal/core sees callees from anywhere in
	// the loaded closure.
	for _, p := range passes {
		facts.AddCallGraphPass(p)
	}
	for _, r := range allRules {
		if fe, ok := r.(FactExporter); ok {
			for _, p := range passes {
				fe.ExportFacts(p, facts)
			}
		}
	}
	facts.FinalizeCallGraph()
	for _, r := range allRules {
		if ff, ok := r.(FactFinalizer); ok {
			ff.FinalizeFacts(facts)
		}
	}
	checked := map[string]bool{}
	for _, r := range allRules {
		checked[r.ID()] = true
	}
	known := opt.KnownRules
	if known == nil {
		known = checked
	}
	var out []Finding
	for _, p := range passes {
		p.Facts = facts
		if p.FactsOnly {
			continue
		}
		ig, malformed := collectIgnores(p, known)
		out = append(out, malformed...)
		for _, r := range rules {
			for _, f := range r.Check(p) {
				if ig.suppressed(f) {
					continue
				}
				out = append(out, f)
			}
		}
		// Usage rules mark their suppressions used and report nothing:
		// the stale-ignore sweep below then has the full picture.
		for _, r := range opt.UsageRules {
			for _, f := range r.Check(p) {
				ig.suppressed(f)
			}
		}
		if opt.StaleIgnores {
			out = append(out, ig.stale(checked)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		// Interprocedural rules can report several findings at one
		// declaration; order them by message so output is stable.
		return a.Message < b.Message
	})
	return out
}

// --- shared AST helpers ---------------------------------------------------

// enclosingFuncName returns, for each node visited by fn, the name of the
// innermost enclosing named function declaration ("" at file scope or
// inside a function literal assigned at package level). It drives the
// Must* allowlist of libpanic.
func walkFuncs(file *ast.File, fn func(decl *ast.FuncDecl)) {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fn(fd)
		}
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
