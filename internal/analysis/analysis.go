// Package analysis is geolint's rule engine: a small, stdlib-only
// (go/ast, go/parser, go/token, go/types) static-analysis framework tuned
// to this repository's correctness contracts. The paper's headline result —
// ~50% average improvement over Greedy and MPIPP — is reproducible only if
// every experiment run is deterministic and every cost comparison is
// numerically sound, so the rules here guard exactly those properties:
//
//	globalrand    no package-level math/rand calls in internal/...
//	              (all randomness flows through injected seeded *rand.Rand)
//	libpanic      no panic in library code outside Must* invariant helpers
//	floatcmp      no ==/!= between float expressions in cost/mapping code
//	ctxgoroutine  goroutines in the simulators must be cancelable (select
//	              on a done/quit channel) or tracked by a sync.WaitGroup
//
// Findings can be suppressed with a justified ignore directive on the
// offending line or the line above:
//
//	//geolint:ignore <rule> <one-line justification>
//
// A directive without a rule ID or justification is itself reported (rule
// ID "geolint") and suppresses nothing, so every exemption in the tree
// carries its reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic produced by a rule.
type Finding struct {
	Rule    string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// SourceFile is one parsed file of a package.
type SourceFile struct {
	Name string // path as given to the parser
	AST  *ast.File
	Test bool // *_test.go
}

// Pass is the per-package unit of work handed to each rule: the parsed
// files plus best-effort type information. Info and Pkg cover the
// package's non-test files; they may be incomplete when type-checking
// failed (rules degrade to syntactic checks in that case).
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. geoprocmap/internal/core
	Files []*SourceFile
	Info  *types.Info
	Pkg   *types.Package
	// TypeErrors collects type-checker diagnostics for this package.
	// Non-empty TypeErrors means typed rules may have reduced coverage.
	TypeErrors []error
}

// Rule is one geolint check.
type Rule interface {
	// ID is the short rule name used in output and ignore directives.
	ID() string
	// Doc is a one-line description for -rules output.
	Doc() string
	// Check reports the rule's findings for one package.
	Check(p *Pass) []Finding
}

// DefaultRules returns the repository's rule set.
func DefaultRules() []Rule {
	return []Rule{
		&GlobalRandRule{},
		&LibPanicRule{},
		&FloatCmpRule{},
		&CtxGoroutineRule{},
		&SleepRetryRule{},
	}
}

// Run applies the rules to every package, filters findings through the
// ignore directives, appends diagnostics for malformed directives, and
// returns the surviving findings sorted by position.
func Run(passes []*Pass, rules []Rule) []Finding {
	known := map[string]bool{}
	for _, r := range rules {
		known[r.ID()] = true
	}
	var out []Finding
	for _, p := range passes {
		ig, malformed := collectIgnores(p, known)
		out = append(out, malformed...)
		for _, r := range rules {
			for _, f := range r.Check(p) {
				if ig.suppressed(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// --- shared AST helpers ---------------------------------------------------

// enclosingFuncName returns, for each node visited by fn, the name of the
// innermost enclosing named function declaration ("" at file scope or
// inside a function literal assigned at package level). It drives the
// Must* allowlist of libpanic.
func walkFuncs(file *ast.File, fn func(decl *ast.FuncDecl)) {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fn(fd)
		}
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
