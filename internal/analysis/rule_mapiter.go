package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIterRule is the determinism dataflow rule: Go randomizes map
// iteration order, so anything order-sensitive computed inside a
// `for ... range m` over a map can differ between two runs with identical
// seeds — breaking the bit-identical reproducibility the experiment
// pipeline (and TestSeedDeterminism) is built on. The rule flags, inside
// the body of a map range:
//
//   - appends to a slice that is never passed to a sort.* or slices.Sort*
//     call anywhere in the same function (the sorted collect-then-order
//     idiom is the approved fix and is exempt);
//   - formatted output (fmt.Print*/Fprint*/Sprint* and Write* methods),
//     which emits lines in iteration order;
//   - channel sends, which publish values in iteration order;
//   - string concatenation onto an outer variable (s += k), which bakes
//     the order into the value.
//
// Commutative accumulation — numeric sums, max/min folds, counting,
// writes into another map — is order-insensitive and is not flagged.
// Cross-function flows (append here, sort in the caller) are beyond the
// per-function analysis; annotate those with
// //geolint:ignore mapiter <reason>.
type MapIterRule struct{}

func (*MapIterRule) ID() string { return "mapiter" }

func (*MapIterRule) Doc() string {
	return "flag map iteration whose order reaches appended slices (unless sorted), formatted output, channel sends, or string concatenation"
}

func (r *MapIterRule) Check(p *Pass) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		walkFuncs(sf.AST, func(fd *ast.FuncDecl) {
			out = append(out, mapIterEscapes(p, fd)...)
		})
	}
	return out
}

// mapIterEscapes runs the map-range escape analysis over one function
// declaration and returns its findings. MapIterRule reports them
// directly; detcheck re-uses the same positions as per-function
// nondeterminism-source facts, so the two rules can never disagree about
// what an escaping map iteration is.
func mapIterEscapes(p *Pass, fd *ast.FuncDecl) []Finding {
	if fd.Body == nil {
		return nil
	}
	var r MapIterRule
	var out []Finding
	sorted := sortedVars(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !r.isMapRange(p, rs) {
			return true
		}
		r.checkBody(p, rs.Body, sorted, &out)
		return true
	})
	return out
}

// isMapRange reports whether rs ranges over a map-typed expression.
func (r *MapIterRule) isMapRange(p *Pass, rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkBody scans one map-range body for order-sensitive sinks.
func (r *MapIterRule) checkBody(p *Pass, body *ast.BlockStmt, sorted map[string]bool, out *[]Finding) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			r.checkAssign(p, n, sorted, out)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isOrderedOutputCall(call) {
				*out = append(*out, Finding{
					Rule:    "mapiter",
					Pos:     p.position(call.Pos()),
					Message: "formatted output inside a map range emits in iteration order; collect the keys, sort them, and range over the sorted slice",
				})
			}
		case *ast.SendStmt:
			*out = append(*out, Finding{
				Rule:    "mapiter",
				Pos:     p.position(n.Arrow),
				Message: "channel send inside a map range publishes values in iteration order; iterate sorted keys instead",
			})
		}
		return true
	})
}

// checkAssign flags order-sensitive assignments in a map-range body:
// unsorted appends and string concatenation.
func (r *MapIterRule) checkAssign(p *Pass, as *ast.AssignStmt, sorted map[string]bool, out *[]Finding) {
	// s += expr onto a string accumulates in iteration order.
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if t, ok := p.Info.Types[as.Lhs[0]]; ok && isString(t.Type) {
			*out = append(*out, Finding{
				Rule:    "mapiter",
				Pos:     p.position(as.Pos()),
				Message: "string concatenation inside a map range bakes iteration order into the value; iterate sorted keys instead",
			})
			return
		}
	}
	// v = append(v, ...) whose target is never sorted in this function.
	for _, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		target := rootIdent(call.Args[0])
		if target == "" || sorted[target] {
			continue
		}
		*out = append(*out, Finding{
			Rule:    "mapiter",
			Pos:     p.position(call.Pos()),
			Message: "append to " + quote(target) + " inside a map range orders it by map iteration and it is never sorted in this function; sort it afterwards or iterate sorted keys",
		})
	}
}

// sortedVars collects the root identifiers of every argument passed to a
// sort.* or slices.* call anywhere in the function body — the variables
// whose final order is established after the loop.
func sortedVars(body *ast.BlockStmt) map[string]bool {
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if name := rootIdent(arg); name != "" {
				sorted[name] = true
			}
		}
		return true
	})
	return sorted
}

// rootIdent returns the leftmost identifier of an expression chain:
// flows → flows, s.flows → s, byTag[k] → byTag, byX(v) → v (sort.Sort's
// wrapper conversions and constructors forward their argument).
func rootIdent(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return rootIdent(e.X)
	case *ast.IndexExpr:
		return rootIdent(e.X)
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return rootIdent(e.Args[0])
		}
	}
	return ""
}

// isOrderedOutputCall matches fmt.Print*/Fprint*/Sprint* calls and
// Write*/Print* method calls — anything that renders values in call
// order.
func isOrderedOutputCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Sprint")
	}
	return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print")
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
