package analysis

import (
	"go/ast"
	"strings"
)

// LibPanicRule forbids panic in library (internal/...) non-test code. A
// geo-mapping run that panics deep inside a cost evaluation tears down the
// whole experiment harness instead of failing one instance with a
// reportable error, so caller-reachable misuse must surface as returned
// errors. Two escape hatches exist:
//
//   - functions named Must*/must* are invariant-violation helpers by
//     convention (MustFrom, MustSend, MustRegion) and may panic, and
//   - a true internal invariant can be annotated in place:
//     //geolint:ignore libpanic <why this is unreachable from callers>
type LibPanicRule struct{}

func (*LibPanicRule) ID() string { return "libpanic" }

func (*LibPanicRule) Doc() string {
	return "forbid panic in internal/... library code outside Must* helpers; return errors instead"
}

func (r *LibPanicRule) Check(p *Pass) []Finding {
	if !inInternal(p) {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		walkFuncs(sf.AST, func(fd *ast.FuncDecl) {
			name := fd.Name.Name
			if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
				return
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// Confirm it is the builtin, not a shadowing function, when
				// type information is available.
				if p.Info != nil {
					if obj, ok := p.Info.Uses[id]; ok && obj.Pkg() != nil {
						return true // locally defined panic(), not the builtin
					}
				}
				out = append(out, Finding{
					Rule: "libpanic",
					Pos:  p.position(call.Pos()),
					Message: "panic in library function " + name +
						": return an error, rename the helper Must*, or annotate the invariant with //geolint:ignore libpanic <reason>",
				})
				return true
			})
		})
	}
	return out
}
