package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// BlockFact records why calling a function may block: a direct blocking
// operation in its body, or a transitive call to one (computed by the
// finalizer over the call graph).
type BlockFact struct {
	Desc string
	Pos  token.Position
}

// LockSafeRule is the service-tier lock-discipline rule. The fact phase
// marks every function whose body performs a blocking operation — a
// channel send or receive (outside a select with a default case), a
// select without a default, sync.WaitGroup.Wait / sync.Cond.Wait,
// time.Sleep, or an HTTP round-trip — and the finalizer closes that set
// transitively over static, dynamic, and interface call edges (goroutine
// launches don't block their caller).
//
// The check phase then abstractly interprets each function with a held-
// mutex set and a needs-unlock set:
//
//   - a blocking operation, or a call to a (transitively) blocking
//     function, while any mutex is held → finding. A throughput hazard in
//     the service tier: Pool.Submit parking on a full queue while holding
//     p.mu would freeze Close and every other submitter.
//   - a return while a mutex still needs unlocking, in a function that
//     does unlock that mutex on some other path → missing unlock on an
//     early return. Functions that never unlock (lock helpers) are not
//     flagged.
//   - a sync.Mutex/RWMutex copied by value: value receivers or value
//     parameters of mutex-bearing structs, and direct assignments of a
//     mutex value.
//
// Branches are merged conservatively (a mutex held on any surviving path
// counts as held); defer mu.Unlock() satisfies the unlock obligation while
// keeping the mutex held for the remainder. Function literals are
// analyzed with fresh state — they run in their own context.
type LockSafeRule struct{}

func (*LockSafeRule) ID() string { return "locksafe" }

func (*LockSafeRule) Doc() string {
	return "flag mutexes held across (transitively) blocking operations, missing unlocks on early returns, and locks copied by value"
}

func (r *LockSafeRule) inScope(path string) bool {
	return strings.Contains(path, "/internal/") || strings.Contains(path, "/cmd/")
}

// ExportFacts records which functions block directly.
func (r *LockSafeRule) ExportFacts(p *Pass, fs *FactSet) {
	if p.Info == nil {
		return
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		walkFuncs(sf.AST, func(fd *ast.FuncDecl) {
			if fd.Body == nil {
				return
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			if bf, ok := directBlock(p, fd.Body); ok {
				fs.blockDirect[fn] = bf
			}
		})
	}
}

// FinalizeFacts computes the transitive blocking closure over the call
// graph: a function blocks if it directly blocks or calls (statically,
// dynamically, or through an interface) a blocking function. Goroutine
// launches and bare references don't block the caller; deferred calls run
// after the body, where flagging would be more noise than signal.
func (r *LockSafeRule) FinalizeFacts(fs *FactSet) {
	for fn, bf := range fs.blockDirect {
		fs.blocking[fn] = bf
	}
	g := fs.CallGraph()
	if g == nil {
		return
	}
	funcs := g.Funcs() // sorted, so the fixpoint (and its messages) is deterministic
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if _, done := fs.blocking[fn]; done {
				continue
			}
			for _, e := range g.Node(fn).Edges {
				if e.Mode != CallStatic && e.Mode != CallDynamic && e.Mode != CallIface {
					continue
				}
				cb, ok := fs.blocking[e.Callee]
				if !ok {
					continue
				}
				fs.blocking[fn] = BlockFact{
					Desc: "calls " + shortFuncName(e.Callee) + ", which blocks (" + cb.Desc + ")",
					Pos:  e.Pos,
				}
				changed = true
				break
			}
		}
	}
}

// Blocking returns why fn may block, if it does.
func (fs *FactSet) Blocking(fn *types.Func) (BlockFact, bool) {
	bf, ok := fs.blocking[fn]
	return bf, ok
}

// directBlock finds the first blocking operation in a body, skipping
// goroutine-launch literals (they block their own goroutine, not the
// caller) and non-blocking selects.
func directBlock(p *Pass, body *ast.BlockStmt) (BlockFact, bool) {
	var out BlockFact
	found := false
	skip := goLiterals(body)
	nb := nonBlockingComm(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if found || skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !nb[n] {
				out, found = BlockFact{Desc: "channel send at " + shortPos(p.position(n.Arrow)), Pos: p.position(n.Arrow)}, true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nb[n] {
				out, found = BlockFact{Desc: "channel receive at " + shortPos(p.position(n.OpPos)), Pos: p.position(n.OpPos)}, true
			}
		case *ast.SelectStmt:
			if selectBlocks(n) {
				out, found = BlockFact{Desc: "select at " + shortPos(p.position(n.Select)), Pos: p.position(n.Select)}, true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					out, found = BlockFact{Desc: "range over a channel at " + shortPos(p.position(n.For)), Pos: p.position(n.For)}, true
				}
			}
		case *ast.CallExpr:
			if desc := blockingStdCall(p, n); desc != "" {
				out, found = BlockFact{Desc: desc + " at " + shortPos(p.position(n.Lparen)), Pos: p.position(n.Lparen)}, true
			}
		}
		return !found
	})
	return out, found
}

// goLiterals collects function literals launched directly with go; their
// bodies run on another goroutine.
func goLiterals(body ast.Node) map[ast.Node]bool {
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				skip[lit.Body] = true
			}
		}
		return true
	})
	return skip
}

// nonBlockingComm collects the communication operations of selects that
// have a default case — those sends/receives never park.
func nonBlockingComm(body ast.Node) map[ast.Node]bool {
	nb := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || selectBlocks(sel) {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				markComm(cc.Comm, nb)
			}
		}
		return true
	})
	return nb
}

// markComm marks the comm statement's channel operations (the clause
// head only — its body executes normally).
func markComm(s ast.Stmt, nb map[ast.Node]bool) {
	nb[s] = true
	ast.Inspect(s, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			nb[u] = true
		}
		return true
	})
}

// selectBlocks reports whether a select can park: no default case.
func selectBlocks(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// blockingStdCall matches standard-library calls that park the caller.
func blockingStdCall(p *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return ""
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "sync":
		if fn.Name() == "Wait" {
			return "sync." + recvTypeName(fn) + ".Wait"
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
			return "HTTP round-trip (net/http." + fn.Name() + ")"
		}
	}
	return ""
}

// recvTypeName names a method's receiver type ("WaitGroup", "Cond").
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func shortPos(pos token.Position) string {
	return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
}

// Check runs the lock-copy scan and the abstract held/needs-unlock walk
// over every function of an in-scope pass.
func (r *LockSafeRule) Check(p *Pass) []Finding {
	if !r.inScope(p.Path) || p.Info == nil || p.Facts == nil {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		walkFuncs(sf.AST, func(fd *ast.FuncDecl) {
			out = append(out, r.checkCopies(p, fd)...)
			if fd.Body == nil {
				return
			}
			w := &lockWalker{p: p, fs: p.Facts}
			w.unlockedSomewhere = unlockedMutexes(fd.Body)
			w.walkStmts(fd.Body.List, newLockState())
			out = append(out, w.findings...)
		})
	}
	return out
}

// checkCopies flags mutexes (or mutex-bearing structs) passed or received
// by value, and direct assignments copying a mutex.
func (r *LockSafeRule) checkCopies(p *Pass, fd *ast.FuncDecl) []Finding {
	var out []Finding
	flagField := func(fl *ast.Field, what string) {
		if len(fl.Names) == 0 && fl.Type == nil {
			return
		}
		t := p.Info.TypeOf(fl.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if mutexBearing(t) {
			out = append(out, Finding{
				Rule: "locksafe", Pos: p.position(fl.Pos()),
				Message: what + " copies a sync.Mutex by value; use a pointer so every caller locks the same mutex",
			})
		}
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			flagField(fl, "value receiver of "+quote(fd.Name.Name))
		}
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			flagField(fl, "value parameter of "+quote(fd.Name.Name))
		}
	}
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, rhs := range as.Rhs {
				e := ast.Unparen(rhs)
				// Constructing a fresh value (composite literal, call
				// result) is fine; copying an existing variable is not.
				switch e.(type) {
				case *ast.CompositeLit, *ast.CallExpr:
					continue
				}
				t := p.Info.TypeOf(e)
				if t == nil || !isMutexType(t) {
					continue
				}
				out = append(out, Finding{
					Rule: "locksafe", Pos: p.position(rhs.Pos()),
					Message: "assignment copies a sync.Mutex by value; the copy guards nothing",
				})
			}
			return true
		})
	}
	return out
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// mutexBearing reports whether t is a mutex or a struct containing one
// (directly or through embedded structs).
func mutexBearing(t types.Type) bool {
	return mutexBearingDepth(t, 0)
}

func mutexBearingDepth(t types.Type, depth int) bool {
	if depth > 10 || t == nil {
		return false
	}
	if isMutexType(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if mutexBearingDepth(st.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}

// unlockedMutexes collects the keys of every mutex a body unlocks
// non-deferred — only those can have a "missing unlock" path.
func unlockedMutexes(body *ast.BlockStmt) map[string]bool {
	keys := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op := mutexOp(call); op == "Unlock" || op == "RUnlock" {
			keys[key] = true
		}
		return true
	})
	return keys
}

// mutexOp decodes mu.Lock()/Unlock()/RLock()/RUnlock() into the mutex
// key (the receiver expression's source form) and the operation name.
func mutexOp(call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return types.ExprString(sel.X), sel.Sel.Name
	}
	return "", ""
}

// lockState is the abstract state of the walk: which mutexes are held,
// and which still owe an unlock on this path (a deferred unlock clears
// the debt but keeps the mutex held).
type lockState struct {
	held       map[string]token.Pos
	need       map[string]token.Pos
	terminated bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, need: map[string]token.Pos{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.need {
		c.need[k] = v
	}
	return c
}

// merge unions another branch's surviving state into s (held/need on any
// path count), keeping s terminated only if every branch terminated.
func (s *lockState) merge(o *lockState) {
	if o.terminated {
		return
	}
	for k, v := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = v
		}
	}
	for k, v := range o.need {
		if _, ok := s.need[k]; !ok {
			s.need[k] = v
		}
	}
	s.terminated = false
}

// heldKeys returns the held mutex keys sorted, for stable messages.
func (s *lockState) heldKeys() []string {
	var keys []string
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockWalker drives the abstract interpretation of one function body.
type lockWalker struct {
	p                 *Pass
	fs                *FactSet
	unlockedSomewhere map[string]bool
	findings          []Finding
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, s *lockState) {
	for _, st := range stmts {
		if s.terminated {
			return
		}
		w.walkStmt(st, s)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, s *lockState) {
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		w.walkStmts(st.List, s)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, s)
	case *ast.ExprStmt:
		w.scanExpr(st.X, s)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.scanExpr(e, s)
		}
		for _, e := range st.Lhs {
			w.scanExpr(e, s)
		}
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanExpr(e, s)
				return false
			}
			return true
		})
	case *ast.SendStmt:
		w.scanExpr(st.Chan, s)
		w.scanExpr(st.Value, s)
		w.blockingOp(s, st.Arrow, "channel send")
	case *ast.IncDecStmt:
		w.scanExpr(st.X, s)
	case *ast.DeferStmt:
		if call := st.Call; call != nil {
			if key, op := mutexOp(call); op == "Unlock" || op == "RUnlock" {
				delete(s.need, key)
				return
			}
			// A deferred call runs at exit; its blocking behavior is out
			// of scope, but literals passed to it still get fresh-state
			// analysis.
			w.scanLits(call, s)
		}
	case *ast.GoStmt:
		// Runs concurrently — never blocks the caller; analyze any
		// literal body with fresh state.
		w.scanLits(st.Call, s)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scanExpr(e, s)
		}
		w.checkReturn(s, st.Return)
		s.terminated = true
	case *ast.BranchStmt:
		s.terminated = true
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, s)
		}
		w.scanExpr(st.Cond, s)
		thenS := s.clone()
		w.walkStmt(st.Body, thenS)
		elseS := s.clone()
		if st.Else != nil {
			w.walkStmt(st.Else, elseS)
		}
		*s = *elseS
		s.merge(thenS)
		if thenS.terminated && st.Else != nil && elseS.terminated {
			s.terminated = true
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		w.walkCases(stmt, s)
	case *ast.SelectStmt:
		if selectBlocks(st) {
			w.blockingOp(s, st.Select, "select")
		}
		base := s.clone()
		first := true
		for _, cl := range st.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			caseS := base.clone()
			if cc.Comm != nil {
				// The comm op itself is accounted at the select level.
				if as, ok := cc.Comm.(*ast.AssignStmt); ok {
					for _, e := range as.Rhs {
						w.scanLits(e, caseS)
					}
				}
			}
			w.walkStmts(cc.Body, caseS)
			if first {
				*s = *caseS
				first = false
			} else {
				if caseS.terminated && !s.terminated {
					// keep s
				} else if s.terminated && !caseS.terminated {
					*s = *caseS
				} else {
					s.merge(caseS)
				}
			}
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, s)
		}
		if st.Cond != nil {
			w.scanExpr(st.Cond, s)
		}
		body := s.clone()
		w.walkStmt(st.Body, body)
		if st.Post != nil && !body.terminated {
			w.walkStmt(st.Post, body)
		}
		body.terminated = false // loops may exit via the condition
		s.merge(body)
	case *ast.RangeStmt:
		w.scanExpr(st.X, s)
		if tv, ok := w.p.Info.Types[st.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.blockingOp(s, st.For, "range over a channel")
			}
		}
		body := s.clone()
		w.walkStmt(st.Body, body)
		body.terminated = false
		s.merge(body)
	}
}

// walkCases handles switch and type-switch statements.
func (w *lockWalker) walkCases(stmt ast.Stmt, s *lockState) {
	var body *ast.BlockStmt
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, s)
		}
		if st.Tag != nil {
			w.scanExpr(st.Tag, s)
		}
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, s)
		}
		body = st.Body
	}
	base := s.clone()
	merged := s.clone()
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseS := base.clone()
		w.walkStmts(cc.Body, caseS)
		merged.merge(caseS)
	}
	*s = *merged
}

// scanExpr looks inside one expression for mutex operations, blocking
// operations, and calls to blocking functions, and analyzes any function
// literals with fresh state.
func (w *lockWalker) scanExpr(e ast.Expr, s *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w2 := &lockWalker{p: w.p, fs: w.fs, unlockedSomewhere: unlockedMutexes(n.Body)}
			w2.walkStmts(n.Body.List, newLockState())
			w.findings = append(w.findings, w2.findings...)
			return false
		case *ast.SelectStmt:
			// A select nested in an expression position can't happen in
			// Go, but guard anyway.
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blockingOp(s, n.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			w.handleCall(n, s)
			// Arguments may contain literals/receives; keep walking
			// except into the callee selector (handled above).
			return true
		}
		return true
	})
}

// scanLits analyzes only the function literals under n with fresh state,
// without treating anything as executed on this path.
func (w *lockWalker) scanLits(n ast.Node, s *lockState) {
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			w2 := &lockWalker{p: w.p, fs: w.fs, unlockedSomewhere: unlockedMutexes(lit.Body)}
			w2.walkStmts(lit.Body.List, newLockState())
			w.findings = append(w.findings, w2.findings...)
			return false
		}
		return true
	})
}

// handleCall updates lock state for Lock/Unlock and checks every other
// call for (transitive) blocking while a mutex is held.
func (w *lockWalker) handleCall(call *ast.CallExpr, s *lockState) {
	if key, op := mutexOp(call); op != "" {
		if w.isMutexRecv(call) {
			switch op {
			case "Lock", "RLock":
				s.held[key] = call.Lparen
				s.need[key] = call.Lparen
			case "Unlock", "RUnlock":
				delete(s.held, key)
				delete(s.need, key)
			}
			return
		}
	}
	if len(s.held) == 0 {
		return
	}
	if desc := blockingStdCall(w.p, call); desc != "" {
		w.blockingOp(s, call.Lparen, desc)
		return
	}
	for _, callee := range w.callees(call) {
		if bf, ok := w.fs.Blocking(callee); ok {
			w.report(s, call.Lparen, "call to "+shortFuncName(callee)+", which blocks ("+bf.Desc+")")
			return
		}
	}
}

// isMutexRecv confirms the receiver of a Lock/Unlock-shaped call really
// is a sync mutex (or embeds one via promotion).
func (w *lockWalker) isMutexRecv(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// callees resolves a call to its possible module targets: the static
// callee, signature-compatible address-taken functions for function
// values, or interface implementers.
func (w *lockWalker) callees(call *ast.CallExpr) []*types.Func {
	fun := ast.Unparen(call.Fun)
	if tv, ok := w.p.Info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := w.p.Info.Uses[f].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		if sel, ok := w.p.Info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return w.fs.IfaceCallees(iface, f.Sel.Name)
			}
		}
		if fn, ok := w.p.Info.Uses[f.Sel].(*types.Func); ok {
			return []*types.Func{fn}
		}
	}
	if tv, ok := w.p.Info.Types[fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return w.fs.DynCallees(sig)
		}
	}
	return nil
}

// blockingOp reports a blocking operation performed while any mutex is
// held.
func (w *lockWalker) blockingOp(s *lockState, pos token.Pos, what string) {
	if len(s.held) == 0 {
		return
	}
	w.report(s, pos, what)
}

func (w *lockWalker) report(s *lockState, pos token.Pos, what string) {
	w.findings = append(w.findings, Finding{
		Rule: "locksafe", Pos: w.p.position(pos),
		Message: "mutex " + quote(strings.Join(s.heldKeys(), ", ")) + " held across blocking operation: " + what +
			"; unlock before blocking or make the operation non-blocking",
	})
}

// checkReturn flags a return that leaves a mutex locked in a function
// that unlocks it on other paths.
func (w *lockWalker) checkReturn(s *lockState, pos token.Pos) {
	for _, key := range needKeys(s) {
		if !w.unlockedSomewhere[key] {
			continue // lock helper: never unlocks, caller owns the mutex
		}
		w.findings = append(w.findings, Finding{
			Rule: "locksafe", Pos: w.p.position(pos),
			Message: "return leaves mutex " + quote(key) + " locked while other paths unlock it; add the missing unlock (or defer it)",
		})
	}
}

func needKeys(s *lockState) []string {
	var keys []string
	for k := range s.need {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DynCallees returns every module function whose address is taken and
// whose signature is identical to sig — the conservative resolution of a
// call through a function value.
func (fs *FactSet) DynCallees(sig *types.Signature) []*types.Func {
	var out []*types.Func
	for _, fn := range fs.cg.addrOrder {
		if s, ok := fn.Type().(*types.Signature); ok && types.Identical(s, sig) {
			out = append(out, fn)
		}
	}
	return out
}

// IfaceCallees returns the named method of every module type implementing
// iface.
func (fs *FactSet) IfaceCallees(iface *types.Interface, name string) []*types.Func {
	return fs.cg.implementers(iface, name)
}
