package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllocsafeDirectiveHygiene covers the annotation grammar's failure
// modes, mirroring detcheck's: stale line-level excuses, missing
// justifications, markers off a function declaration, and markers with
// arguments all become findings.
func TestAllocsafeDirectiveHygiene(t *testing.T) {
	src := `package fixture

//geolint:allocsite nothing on this line or the next needs excusing
var x = 1

//geolint:allocfree
func clean() int { return x }

// floating marker, attached to no declaration:
//
// a paragraph break keeps the next comment out of any doc group
var _ = 0

//geolint:allocfree
var y = 2

// reasoned is a doc comment.
//
//geolint:allocsite
func reasoned() []int { return make([]int, 1) }

//geolint:allocfree with an argument
func argRoot() int { return 0 }
`
	p := parseFixturePass(t, src)
	findings := Run([]*Pass{p}, []Rule{&AllocSafeRule{}})
	for _, f := range findings {
		if f.Rule != "allocsafe" {
			t.Errorf("finding rule = %s, want allocsafe: %v", f.Rule, f)
		}
	}
	wants := map[string]string{
		"3":  "stale allocsite excuse",
		"14": "must be the doc comment of a function declaration",
		"19": "no justification",
		"22": "takes no arguments",
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), findings)
	}
	for line, msg := range wants {
		found := false
		for _, f := range findings {
			if fmt.Sprintf("%d", f.Pos.Line) == line && strings.Contains(f.Message, msg) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding at line %s containing %q; got %v", line, msg, findings)
		}
	}
	// The malformed allocsite must NOT have registered a boundary, and the
	// malformed root markers must not have registered roots.
	if len(p.Facts.alloc.boundaries) != 0 {
		t.Errorf("malformed allocsite registered %d boundaries", len(p.Facts.alloc.boundaries))
	}
	if len(p.Facts.alloc.rootOrder) != 1 {
		t.Errorf("registered %d roots, want only the clean one", len(p.Facts.alloc.rootOrder))
	}
}

// TestAllocFreeRootsResolve is the annotation-coverage guard: every
// //geolint:allocfree marker in the repository must resolve to a function
// the call graph has a node for, and there must be enough of them that
// the hot paths (order search, refinement, cost, stats kernels, netsim
// rate solver, comm adjacency views) stay under the contract.
func TestAllocFreeRootsResolve(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	passes, err := Load(Config{Root: root})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fs := NewFactSet()
	for _, p := range passes {
		fs.AddCallGraphPass(p)
	}
	fs.FinalizeCallGraph()
	rule := &AllocSafeRule{}
	for _, p := range passes {
		rule.ExportFacts(p, fs)
	}
	if len(fs.alloc.rootOrder) < 8 {
		t.Fatalf("found %d alloc-free roots, expected at least 8 (fill, refinement, cost, stats, netsim, comm views)", len(fs.alloc.rootOrder))
	}
	g := fs.CallGraph()
	for _, fn := range fs.alloc.rootOrder {
		if g.Node(fn) == nil {
			t.Errorf("alloc-free root %s (annotated at %s) has no call-graph node", fn.FullName(), fs.alloc.roots[fn])
		}
	}
}

// TestUsageRulesStaleIgnores is the regression test for scoped
// -staleignores runs: a rule deselected by -only still validates its
// ignore directives when passed as a usage rule — its findings are
// dropped, but an ignore that suppresses nothing is reported stale, and
// one that would suppress a real finding is not.
func TestUsageRulesStaleIgnores(t *testing.T) {
	src := `package fixture

import "math/rand"

func used() float64 {
	return rand.Float64() //geolint:ignore globalrand fixture: injected seeding not needed here
}

func stale() int {
	return 1 //geolint:ignore globalrand nothing on this line draws randomness
}
`
	p := parseFixturePass(t, src)
	known := map[string]bool{"globalrand": true, "libpanic": true}
	findings := RunWith([]*Pass{p}, []Rule{&LibPanicRule{}}, RunOptions{
		StaleIgnores: true,
		KnownRules:   known,
		UsageRules:   []Rule{&GlobalRandRule{}},
	})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the stale ignore: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Rule != "geolint" || f.Pos.Line != 10 || !strings.Contains(f.Message, "stale ignore") {
		t.Errorf("finding = %v, want a stale-ignore report at line 10", f)
	}

	// Without the usage rule the same run must stay silent on both
	// directives — the deselected rule's ignores are out of scope.
	quiet := RunWith([]*Pass{p}, []Rule{&LibPanicRule{}}, RunOptions{
		StaleIgnores: true,
		KnownRules:   known,
	})
	if len(quiet) != 0 {
		t.Errorf("scoped run without usage rules reported %v, want none", quiet)
	}
}
