package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix is the suppression directive. Full form:
//
//	//geolint:ignore <rule> <one-line justification>
//
// The directive suppresses findings of <rule> on its own line and on the
// line immediately below (so it can trail the offending statement or sit
// on its own line above it).
const ignorePrefix = "//geolint:ignore"

// ignoreSet maps filename → line → rule IDs suppressed at that line.
type ignoreSet map[string]map[int]map[string]bool

func (ig ignoreSet) add(file string, line int, rule string) {
	byLine := ig[file]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		ig[file] = byLine
	}
	rules := byLine[line]
	if rules == nil {
		rules = map[string]bool{}
		byLine[line] = rules
	}
	rules[rule] = true
}

func (ig ignoreSet) suppressed(f Finding) bool {
	return ig[f.Pos.Filename][f.Pos.Line][f.Rule]
}

// collectIgnores scans every comment of the pass for ignore directives.
// Well-formed directives (known rule, non-empty justification) populate
// the returned ignoreSet; malformed ones become findings under the
// pseudo-rule "geolint" and suppress nothing.
func collectIgnores(p *Pass, knownRules map[string]bool) (ignoreSet, []Finding) {
	ig := ignoreSet{}
	var malformed []Finding
	for _, sf := range p.Files {
		for _, cg := range sf.AST.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					malformed = append(malformed, Finding{
						Rule: "geolint", Pos: pos,
						Message: "ignore directive is missing a rule ID and justification: want //geolint:ignore <rule> <reason>",
					})
				case !knownRules[fields[0]]:
					malformed = append(malformed, Finding{
						Rule: "geolint", Pos: pos,
						Message: "ignore directive names unknown rule " + quote(fields[0]),
					})
				case len(fields) == 1:
					malformed = append(malformed, Finding{
						Rule: "geolint", Pos: pos,
						Message: "ignore directive for " + quote(fields[0]) + " has no justification: want //geolint:ignore <rule> <reason>",
					})
				default:
					ig.add(pos.Filename, pos.Line, fields[0])
					ig.add(pos.Filename, pos.Line+1, fields[0])
				}
			}
		}
	}
	return ig, malformed
}

func quote(s string) string { return "\"" + s + "\"" }

// position is a convenience for rules.
func (p *Pass) position(pos token.Pos) token.Position { return p.Fset.Position(pos) }
