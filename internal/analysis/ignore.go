package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directive. Full forms:
//
//	//geolint:ignore <rule>[,<rule>...] <one-line justification>
//	/*geolint:ignore <rule>[,<rule>...] <one-line justification>*/
//
// The directive suppresses findings of the named rules on its own line and
// on the line immediately below (so it can trail the offending statement
// or sit on its own line above it). The block-comment form must fit on a
// single line; a directive buried mid-way through a multi-line comment is
// not recognized.
const (
	ignoreLinePrefix  = "//geolint:ignore"
	ignoreBlockPrefix = "/*geolint:ignore"
)

// directive is one parsed, well-formed ignore comment. The stale-ignore
// check reports every (directive, rule) pair that suppressed nothing, so
// usage is tracked per rule.
type directive struct {
	pos   token.Position
	rules []string
	used  map[string]bool
}

// ignoreSet indexes directives by filename → line → rule. A directive is
// registered at both its own line and the next, pointing at the same
// *directive so suppression at either line marks it used.
type ignoreSet struct {
	byLine map[string]map[int]map[string][]*directive
	all    []*directive
}

func newIgnoreSet() *ignoreSet {
	return &ignoreSet{byLine: map[string]map[int]map[string][]*directive{}}
}

func (ig *ignoreSet) add(d *directive) {
	ig.all = append(ig.all, d)
	byLine := ig.byLine[d.pos.Filename]
	if byLine == nil {
		byLine = map[int]map[string][]*directive{}
		ig.byLine[d.pos.Filename] = byLine
	}
	for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
		rules := byLine[line]
		if rules == nil {
			rules = map[string][]*directive{}
			byLine[line] = rules
		}
		for _, r := range d.rules {
			rules[r] = append(rules[r], d)
		}
	}
}

// suppressed reports whether a directive covers f, marking every covering
// directive as used for f's rule.
func (ig *ignoreSet) suppressed(f Finding) bool {
	ds := ig.byLine[f.Pos.Filename][f.Pos.Line][f.Rule]
	for _, d := range ds {
		d.used[f.Rule] = true
	}
	return len(ds) > 0
}

// stale returns one finding per (directive, rule) pair that suppressed no
// finding during the run, restricted to the rules actually checked — a
// scoped -only run must not call every other rule's exemptions stale.
// Reported under the pseudo-rule "geolint" like malformed directives, and
// similarly unsuppressable: a stale exemption must be deleted, not
// excused.
func (ig *ignoreSet) stale(checked map[string]bool) []Finding {
	var out []Finding
	for _, d := range ig.all {
		for _, r := range d.rules {
			if checked[r] && !d.used[r] {
				out = append(out, Finding{
					Rule: "geolint", Pos: d.pos,
					Message: "stale ignore directive: no " + quote(r) + " finding on this or the next line; delete it",
				})
			}
		}
	}
	return out
}

// collectIgnores scans every comment of the pass for ignore directives.
// Well-formed directives (known rules, non-empty justification) populate
// the returned ignoreSet; malformed ones become findings under the
// pseudo-rule "geolint" and suppress nothing.
func collectIgnores(p *Pass, knownRules map[string]bool) (*ignoreSet, []Finding) {
	ig := newIgnoreSet()
	var malformed []Finding
	for _, sf := range p.Files {
		for _, cg := range sf.AST.Comments {
			for _, c := range cg.List {
				if f, bad := unknownDirective(p, c); bad {
					malformed = append(malformed, f)
					continue
				}
				var rest string
				switch {
				case strings.HasPrefix(c.Text, ignoreLinePrefix):
					rest = strings.TrimPrefix(c.Text, ignoreLinePrefix)
				case strings.HasPrefix(c.Text, ignoreBlockPrefix) &&
					strings.HasSuffix(c.Text, "*/") && !strings.Contains(c.Text, "\n"):
					rest = strings.TrimSuffix(strings.TrimPrefix(c.Text, ignoreBlockPrefix), "*/")
				default:
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimSpace(rest))
				switch {
				case len(fields) == 0:
					malformed = append(malformed, Finding{
						Rule: "geolint", Pos: pos,
						Message: "ignore directive is missing a rule ID and justification: want //geolint:ignore <rule> <reason>",
					})
					continue
				case len(fields) == 1:
					malformed = append(malformed, Finding{
						Rule: "geolint", Pos: pos,
						Message: "ignore directive for " + quote(fields[0]) + " has no justification: want //geolint:ignore <rule> <reason>",
					})
					continue
				}
				rules := strings.Split(fields[0], ",")
				ok := true
				for _, r := range rules {
					if !knownRules[r] {
						malformed = append(malformed, Finding{
							Rule: "geolint", Pos: pos,
							Message: "ignore directive names unknown rule " + quote(r),
						})
						ok = false
					}
				}
				if !ok {
					continue
				}
				ig.add(&directive{pos: pos, rules: rules, used: map[string]bool{}})
			}
		}
	}
	return ig, malformed
}

// geolintDirectives is the closed set of recognized //geolint:<verb>
// directive verbs. Anything else spelled like a directive is reported, so
// a typo ("//geolint:determinstic") cannot silently annotate nothing.
var geolintDirectives = map[string]bool{
	"ignore":        true,
	"unit":          true,
	"deterministic": true,
	"detsource":     true,
	"allocfree":     true,
	"allocsite":     true,
}

// unknownDirective reports a comment that looks like a geolint directive
// but uses an unrecognized verb.
func unknownDirective(p *Pass, c *ast.Comment) (Finding, bool) {
	const prefix = "//geolint:"
	if !strings.HasPrefix(c.Text, prefix) {
		return Finding{}, false
	}
	verb := strings.TrimPrefix(c.Text, prefix)
	if i := strings.IndexAny(verb, " \t"); i >= 0 {
		verb = verb[:i]
	}
	if geolintDirectives[verb] {
		return Finding{}, false
	}
	return Finding{
		Rule: "geolint", Pos: p.Fset.Position(c.Pos()),
		Message: "unknown geolint directive " + quote(verb) + "; recognized: ignore, unit, deterministic, detsource, allocfree, allocsite",
	}, true
}

func quote(s string) string { return "\"" + s + "\"" }

// position is a convenience for rules.
func (p *Pass) position(pos token.Pos) token.Position { return p.Fset.Position(pos) }
