package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unitDirective marks a defined type as a physical unit of the α–β cost
// model. It goes on the type declaration's doc comment:
//
//	//geolint:unit
//	type Seconds float64
//
// The facts phase exports every marked type before any rule checks, so
// unitcheck recognizes units declared in internal/units from every
// importing package.
const unitDirective = "//geolint:unit"

// FactSet is module-wide knowledge collected from all passes before rules
// run their checks. The loader type-checks each package exactly once and
// caches it, so a types.Object seen from an importing package is the same
// pointer as the one seen in its declaring package — facts can be keyed on
// object identity.
type FactSet struct {
	unitTypes map[*types.TypeName]bool

	// cg accumulates the module-wide call graph (callgraph.go). The
	// engine feeds every pass into it before the rule fact phase.
	cg *cgBuilder

	// Backward-taint facts (taint.go): annotated roots and boundaries,
	// per-function sources, line-level excuses, and malformed-annotation
	// diagnostics keyed by pass path — one instance per taint rule.
	det   *taintFacts // detcheck (rule_detcheck.go)
	alloc *taintFacts // allocsafe (rule_allocsafe.go)

	// locksafe facts (rule_locksafe.go): functions that block directly,
	// and the transitive blocking closure computed by the finalizer.
	blockDirect map[*types.Func]BlockFact
	blocking    map[*types.Func]BlockFact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{
		unitTypes:   map[*types.TypeName]bool{},
		cg:          newCGBuilder(),
		det:         newTaintFacts(detSpec),
		alloc:       newTaintFacts(allocSpec),
		blockDirect: map[*types.Func]BlockFact{},
		blocking:    map[*types.Func]BlockFact{},
	}
}

// ExportUnitType records obj as a unit type.
func (fs *FactSet) ExportUnitType(obj *types.TypeName) {
	if obj != nil {
		fs.unitTypes[obj] = true
	}
}

// UnitType returns the declaring TypeName when t is a recorded unit type
// (directly or through a type alias, which resolves to the same named
// type), and nil otherwise.
func (fs *FactSet) UnitType(t types.Type) *types.TypeName {
	if fs == nil || t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if obj := named.Obj(); fs.unitTypes[obj] {
		return obj
	}
	return nil
}

// FactExporter is implemented by rules that need module-wide facts before
// checking. Run drives two phases: first every exporter sees every pass,
// then every rule checks every pass with the completed FactSet on
// Pass.Facts.
type FactExporter interface {
	ExportFacts(p *Pass, fs *FactSet)
}

// FactFinalizer is implemented by rules that derive whole-module facts
// from the completed export phase — e.g. locksafe's transitive blocking
// closure needs the finished call graph. Run calls FinalizeFacts exactly
// once per rule, after every exporter has seen every pass and the call
// graph has been finalized, and before any Check.
type FactFinalizer interface {
	FinalizeFacts(fs *FactSet)
}

// exportUnitFacts scans the pass's type declarations for //geolint:unit
// directives and exports the marked types. Shared by UnitCheckRule and any
// future dimensional rule.
func exportUnitFacts(p *Pass, fs *FactSet) {
	if p.Info == nil {
		return
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		for _, decl := range sf.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasUnitDirective(gd.Doc) && !hasUnitDirective(ts.Doc) {
					continue
				}
				if obj, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
					fs.ExportUnitType(obj)
				}
			}
		}
	}
}

// hasUnitDirective reports whether the comment group carries the
// //geolint:unit directive on a line of its own.
func hasUnitDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == unitDirective {
			return true
		}
	}
	return false
}
