package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitCheckRule is the dimensional-analysis rule over the α–β model's
// typed quantities (internal/units, marked //geolint:unit). Go's type
// system already rejects `latency + bandwidth` once the operands are
// defined types; this rule closes the holes that conversions reopen:
//
//  1. Mixed-unit arithmetic laundered through float64: both operands of
//     +, -, *, /, or a comparison were stripped from DIFFERENT unit types
//     via float64(x) or x.Float(). `lat.Float() + bw.Float()` type-checks
//     but adds seconds to bytes/second — exactly the corruption the unit
//     types exist to prevent. Same-unit laundering (ratios, sums of two
//     latencies) is dimensionally sound and exempt.
//  2. Direct unit-to-unit conversions, e.g. units.Cost(someSeconds):
//     type-correct because both share the float64 underlying type, but it
//     bypasses the named crossing helpers (AsCost, AsSeconds) that make
//     dimension changes searchable and auditable.
//  3. Unit-typed products and quotients: seconds*seconds or bytes/bytes
//     type-checks yet yields a value whose static type no longer matches
//     its dimension (seconds², a dimensionless ratio). Use Scale/Div for
//     dimensionless factors and Float() for ratios.
//  4. Bare numeric literals adopted into a unit type by implicit
//     conversion — `Options{ProbeTimeout: 5}` — instead of the explicit
//     constructor units.Seconds(5) that states the dimension at the
//     assignment site. Zero literals are exempt (0 is 0 in every unit),
//     as are literals wrapped in an explicit conversion.
//
// internal/units itself is exempt: its helpers are the one blessed place
// where raw float64 arithmetic between dimensions happens, each helper
// performing exactly one floating-point operation.
type UnitCheckRule struct{}

func (*UnitCheckRule) ID() string { return "unitcheck" }

func (*UnitCheckRule) Doc() string {
	return "dimensional analysis of //geolint:unit types: no float64-laundered mixed-unit arithmetic, unit-to-unit conversions, or bare literals where a unit is wanted"
}

// ExportFacts records every type declared with a //geolint:unit directive,
// making units declared in internal/units visible to checks in every
// importing package.
func (r *UnitCheckRule) ExportFacts(p *Pass, fs *FactSet) {
	exportUnitFacts(p, fs)
}

func (r *UnitCheckRule) Check(p *Pass) []Finding {
	if p.Info == nil || p.Facts == nil || strings.HasSuffix(p.Path, "/internal/units") {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		// blessed marks expressions appearing as the operand of an
		// explicit conversion: units.Seconds(5) is the constructor idiom,
		// not a bare literal. Parents are visited before children, so the
		// set is populated before the literal itself is inspected.
		blessed := map[ast.Expr]bool{}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				r.checkCall(p, n, blessed, &out)
			case *ast.BinaryExpr:
				r.checkBinary(p, n, &out)
				r.checkLiteral(p, n, blessed, &out)
			case *ast.BasicLit, *ast.UnaryExpr, *ast.ParenExpr:
				r.checkLiteral(p, n.(ast.Expr), blessed, &out)
			}
			return true
		})
	}
	return out
}

// checkCall handles explicit conversions: it blesses the operand (so a
// literal inside units.Seconds(5) is not reported as bare) and flags
// unit-to-unit conversions that bypass the crossing helpers.
func (r *UnitCheckRule) checkCall(p *Pass, call *ast.CallExpr, blessed map[ast.Expr]bool, out *[]Finding) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	blessed[call.Args[0]] = true
	dst := p.Facts.UnitType(tv.Type)
	src := p.Facts.UnitType(p.Info.Types[call.Args[0]].Type)
	if dst != nil && src != nil && dst != src {
		*out = append(*out, Finding{
			Rule: "unitcheck",
			Pos:  p.position(call.Pos()),
			Message: "direct conversion from " + src.Name() + " to " + dst.Name() +
				" bypasses the unit crossing helpers; add or use a named converter (like Seconds.AsCost)",
		})
	}
}

// checkBinary flags the two arithmetic holes on binary expressions:
// float64-laundered mixed-unit operands, and unit-typed products or
// quotients whose result's static type no longer matches its dimension.
func (r *UnitCheckRule) checkBinary(p *Pass, be *ast.BinaryExpr, out *[]Finding) {
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	tx, ty := p.Info.Types[be.X], p.Info.Types[be.Y]
	if tx.Value != nil && ty.Value != nil {
		return // constant folding carries no runtime quantity
	}

	// Hole 1: both operands laundered from unit types, and the units
	// disagree. `lat.Float() + bw.Float()` adds seconds to bytes/second.
	lx, ly := r.launderedUnit(p, be.X), r.launderedUnit(p, be.Y)
	if lx != nil && ly != nil && lx != ly {
		*out = append(*out, Finding{
			Rule: "unitcheck",
			Pos:  p.position(be.OpPos),
			Message: "mixed-unit " + be.Op.String() + " laundered through float64: left is " + lx.Name() +
				", right is " + ly.Name() + "; use the typed helpers in internal/units",
		})
		return
	}

	// Hole 3: products and quotients of unit-typed operands. These only
	// type-check when both sides are the SAME unit, and then the result's
	// static type lies about its dimension (seconds*seconds is typed
	// Seconds but means seconds²; bytes/bytes is a dimensionless ratio).
	if (be.Op == token.MUL || be.Op == token.QUO) && tx.Value == nil && ty.Value == nil {
		ux := p.Facts.UnitType(tx.Type)
		uy := p.Facts.UnitType(ty.Type)
		if ux != nil && uy != nil {
			what := "product"
			hint := "use Scale with a dimensionless factor"
			if be.Op == token.QUO {
				what = "quotient"
				hint = "a same-unit ratio is dimensionless; compute it with Float()"
			}
			*out = append(*out, Finding{
				Rule:    "unitcheck",
				Pos:     p.position(be.OpPos),
				Message: what + " of two " + ux.Name() + " values has a static type that misstates its dimension; " + hint,
			})
		}
	}
}

// launderedUnit returns the unit type a float64 expression was stripped
// from: float64(x) conversions and x.Float() method calls on unit-typed
// receivers. Nil when e carries no unit pedigree.
func (r *UnitCheckRule) launderedUnit(p *Pass, e ast.Expr) *types.TypeName {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	// float64(unitExpr)
	if len(call.Args) == 1 {
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				if _, isNamed := tv.Type.(*types.Named); !isNamed {
					return p.Facts.UnitType(p.Info.Types[call.Args[0]].Type)
				}
			}
		}
	}
	// unitExpr.Float()
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Float" && len(call.Args) == 0 {
		return p.Facts.UnitType(p.Info.Types[sel.X].Type)
	}
	return nil
}

// checkLiteral flags hole 4: a bare numeric constant whose type the
// checker resolved to a unit type through implicit conversion, outside an
// explicit constructor. Named constants (units.Seconds(0.25) at their
// declaration) are built from blessed conversions and never reach here as
// bare literals.
func (r *UnitCheckRule) checkLiteral(p *Pass, e ast.Expr, blessed map[ast.Expr]bool, out *[]Finding) {
	if !isBareNumeric(e) {
		return
	}
	// Only the outermost bare-numeric expression reports (or is blessed by
	// a conversion); its parts inherit that status. Parents are inspected
	// before children, so marking here precedes the parts' own visits.
	blessParts(e, blessed)
	if blessed[e] {
		return
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return
	}
	u := p.Facts.UnitType(tv.Type)
	if u == nil {
		return
	}
	if constant.Sign(tv.Value) == 0 {
		return // zero is zero in every unit
	}
	*out = append(*out, Finding{
		Rule: "unitcheck",
		Pos:  p.position(e.Pos()),
		Message: "bare numeric literal adopts unit type " + u.Name() +
			" by implicit conversion; construct it explicitly with " + u.Name() + "(...)",
	})
}

// blessParts marks e's direct sub-expressions as covered, so only the
// outermost bare-numeric expression is considered for reporting.
func blessParts(e ast.Expr, blessed map[ast.Expr]bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		blessed[e.X] = true
	case *ast.UnaryExpr:
		blessed[e.X] = true
	case *ast.BinaryExpr:
		blessed[e.X] = true
		blessed[e.Y] = true
	}
}

// isBareNumeric reports whether e is built purely from numeric literals:
// 5, -5, (5), 8 << 20. An expression mentioning any identifier is not
// bare — named constants state their dimension at their declaration.
func isBareNumeric(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT || e.Kind == token.FLOAT
	case *ast.ParenExpr:
		return isBareNumeric(e.X)
	case *ast.UnaryExpr:
		return (e.Op == token.ADD || e.Op == token.SUB) && isBareNumeric(e.X)
	case *ast.BinaryExpr:
		return isBareNumeric(e.X) && isBareNumeric(e.Y)
	}
	return false
}
