package analysis

import (
	"go/ast"
	"strings"
)

// CtxGoroutineRule flags `go func` literals in the simulator packages
// (internal/mpi, internal/netsim) that have no visible shutdown path: the
// body neither selects on a done/quit/stop channel nor is tracked by a
// sync.WaitGroup (a *.Done() call, conventionally deferred). The virtual
// MPI runtime spawns one goroutine per rank; an experiment sweep runs
// thousands of Worlds, so an unjoinable goroutine per aborted run is a
// leak that eventually dominates memory and poisons -race runs.
type CtxGoroutineRule struct{}

// ctxGoroutineScopes are the internal/ subtrees the rule guards.
var ctxGoroutineScopes = []string{"mpi", "netsim"}

func (*CtxGoroutineRule) ID() string { return "ctxgoroutine" }

func (*CtxGoroutineRule) Doc() string {
	return "simulator goroutines must select on a done/quit channel or be WaitGroup-tracked"
}

func (r *CtxGoroutineRule) inScope(path string) bool {
	i := strings.Index(path, "/internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("/internal/"):]
	for _, s := range ctxGoroutineScopes {
		if rest == s || strings.HasPrefix(rest, s+"/") {
			return true
		}
	}
	return false
}

func (r *CtxGoroutineRule) Check(p *Pass) []Finding {
	if !r.inScope(p.Path) {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // named funcs are assumed to manage their own lifetime
			}
			if goroutineHasShutdownPath(lit.Body) {
				return true
			}
			out = append(out, Finding{
				Rule: "ctxgoroutine",
				Pos:  p.position(gs.Pos()),
				Message: "goroutine has no shutdown path: select on a done/quit channel or track it " +
					"with a sync.WaitGroup (defer wg.Done())",
			})
			return true
		})
	}
	return out
}

// goroutineHasShutdownPath reports whether the body contains either a
// WaitGroup Done call or a select/receive on a cancellation channel.
func goroutineHasShutdownPath(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(n.Args) == 0 {
				// wg.Done() — WaitGroup-tracked. (ctx.Done() in a select is
				// handled below via the cancellation-channel check, and a
				// bare ctx.Done() call outside a receive is harmless to
				// accept: it still evidences a cancellation design.)
				found = true
			}
		case *ast.UnaryExpr:
			// <-ch receive: accept when the channel names a cancellation
			// signal (done, quit, stop, cancel, ctx).
			if n.Op.String() == "<-" && isCancelChan(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCancelChan reports whether the expression looks like a cancellation
// channel: its identifier path contains done, quit, stop, cancel, or ctx.
func isCancelChan(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return cancelName(e.Name)
	case *ast.SelectorExpr:
		return cancelName(e.Sel.Name) || isCancelChan(e.X)
	case *ast.CallExpr:
		return isCancelChan(e.Fun)
	case *ast.ParenExpr:
		return isCancelChan(e.X)
	}
	return false
}

func cancelName(name string) bool {
	n := strings.ToLower(name)
	for _, w := range []string{"done", "quit", "stop", "cancel", "ctx"} {
		if strings.Contains(n, w) {
			return true
		}
	}
	return false
}
