package analysis

import (
	"fmt"
	"go/parser"
	"path/filepath"
	"strings"
	"testing"
)

// parseFixturePass builds a typed single-file pass from source, for
// directive-grammar tests that cannot co-locate golden want markers with
// the directives under test.
func parseFixturePass(t *testing.T, src string) *Pass {
	t.Helper()
	l := newLoader("", "geoprocmap", 1)
	fset := l.fset
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pass{
		Fset:  fset,
		Path:  "geoprocmap/internal/fixture",
		Files: []*SourceFile{{Name: "fixture.go", AST: f}},
	}
	l.passes["fixture"] = p
	l.typeCheckAll()
	if len(p.TypeErrors) > 0 {
		t.Fatalf("fixture does not type-check: %v", p.TypeErrors[0])
	}
	return p
}

// TestDetcheckDirectiveHygiene covers the annotation grammar's failure
// modes: stale line-level excuses, missing justifications, markers off a
// function declaration, and markers with arguments all become findings.
func TestDetcheckDirectiveHygiene(t *testing.T) {
	src := `package fixture

import "time"

//geolint:detsource nothing on this line or the next needs excusing
var x = 1

//geolint:deterministic
func clean() int { return x }

// floating marker, attached to no declaration:
//
// a paragraph break keeps the next comment out of any doc group
var _ = 0

//geolint:deterministic
var y = 2

// reasoned is a doc comment.
//
//geolint:detsource
func reasoned() time.Time { return time.Now() }

//geolint:deterministic with an argument
func argRoot() int { return 0 }
`
	p := parseFixturePass(t, src)
	findings := Run([]*Pass{p}, []Rule{&DetCheckRule{}})
	got := map[string]bool{}
	for _, f := range findings {
		got[fmt.Sprintf("%d", f.Pos.Line)] = true
		if f.Rule != "detcheck" {
			t.Errorf("finding rule = %s, want detcheck: %v", f.Rule, f)
		}
	}
	wants := map[string]string{
		"5":  "stale detsource excuse",
		"16": "must be the doc comment of a function declaration",
		"21": "no justification",
		"24": "takes no arguments",
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), findings)
	}
	for line, msg := range wants {
		found := false
		for _, f := range findings {
			if fmt.Sprintf("%d", f.Pos.Line) == line && strings.Contains(f.Message, msg) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding at line %s containing %q; got %v", line, msg, findings)
		}
	}
	// The malformed detsource must NOT have registered a boundary, and the
	// malformed root markers must not have registered roots.
	if len(p.Facts.det.boundaries) != 0 {
		t.Errorf("malformed detsource registered %d boundaries", len(p.Facts.det.boundaries))
	}
	if len(p.Facts.det.rootOrder) != 1 {
		t.Errorf("registered %d roots, want only the clean one", len(p.Facts.det.rootOrder))
	}
}

// TestSelectRules covers the -only/-skip rule selection used by
// cmd/geolint: filtering keeps declaration order, and unknown IDs are
// errors rather than silent no-ops.
func TestSelectRules(t *testing.T) {
	all := DefaultRules()
	ids := func(rules []Rule) []string {
		var out []string
		for _, r := range rules {
			out = append(out, r.ID())
		}
		return out
	}

	only, err := SelectRules(all, []string{"detcheck", "mapiter"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(only); len(got) != 2 || got[0] != "mapiter" || got[1] != "detcheck" {
		t.Errorf("only = %v, want [mapiter detcheck] in declaration order", got)
	}

	skip, err := SelectRules(all, nil, []string{"locksafe"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(skip); len(got) != len(all)-1 {
		t.Errorf("skip left %v", got)
	}
	for _, id := range ids(skip) {
		if id == "locksafe" {
			t.Error("skip did not remove locksafe")
		}
	}

	if _, err := SelectRules(all, []string{"nosuchrule"}, nil); err == nil {
		t.Error("unknown -only rule: want error")
	}
	if _, err := SelectRules(all, nil, []string{"nosuchrule"}); err == nil {
		t.Error("unknown -skip rule: want error")
	}
}

// TestDeterministicRootsResolve is the annotation-coverage guard: every
// //geolint:deterministic marker in the repository must resolve to a
// function the call graph actually has a node for — a marker that drifts
// onto a declaration the graph cannot see would silently stop being
// checked.
func TestDeterministicRootsResolve(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	passes, err := Load(Config{Root: root})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fs := NewFactSet()
	for _, p := range passes {
		fs.AddCallGraphPass(p)
	}
	fs.FinalizeCallGraph()
	rule := &DetCheckRule{}
	for _, p := range passes {
		rule.ExportFacts(p, fs)
	}
	if len(fs.det.rootOrder) < 10 {
		t.Fatalf("found %d deterministic roots, expected at least 10 (Map/Remap, baselines, fingerprint, experiments)", len(fs.det.rootOrder))
	}
	g := fs.CallGraph()
	for _, fn := range fs.det.rootOrder {
		if g.Node(fn) == nil {
			t.Errorf("deterministic root %s (annotated at %s) has no call-graph node", fn.FullName(), fs.det.roots[fn])
		}
	}
}
