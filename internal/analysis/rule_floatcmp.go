package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// FloatCmpRule flags ==/!= between float-typed expressions in the cost and
// mapping packages. The α–β transfer-time costs of Formula 3 (AG·LT +
// CG/BT) are sums of products of measured quantities; two placements with
// equal cost rarely compare bitwise-equal, so exact equality silently
// turns "tie" into "different" and makes tie-breaking placement decisions
// depend on summation order. Compare with a tolerance
// (math.Abs(a-b) <= eps) or annotate a genuine exact sentinel (such as a
// zero-value default) with //geolint:ignore floatcmp <reason>.
//
// Comparisons where both operands are compile-time constants are exact
// and exempt, as are test files, which legitimately assert bitwise
// determinism.
type FloatCmpRule struct{}

// floatCmpScopes are the import-path segments (directly under internal/)
// whose packages carry cost or mapping arithmetic.
var floatCmpScopes = []string{
	"core", "baselines", "netmodel", "netsim", "experiments", "calib", "collectives",
}

func (*FloatCmpRule) ID() string { return "floatcmp" }

func (*FloatCmpRule) Doc() string {
	return "flag ==/!= between float expressions in cost/mapping packages; compare with a tolerance"
}

func (r *FloatCmpRule) inScope(path string) bool {
	i := strings.Index(path, "/internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("/internal/"):]
	for _, s := range floatCmpScopes {
		if rest == s || strings.HasPrefix(rest, s+"/") {
			return true
		}
	}
	return false
}

func (r *FloatCmpRule) Check(p *Pass) []Finding {
	if !r.inScope(p.Path) || p.Info == nil {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := p.Info.Types[be.X], p.Info.Types[be.Y]
			if !isFloat(tx.Type) || !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant folding is exact
			}
			out = append(out, Finding{
				Rule: "floatcmp",
				Pos:  p.position(be.OpPos),
				Message: "float " + be.Op.String() +
					" comparison: use a tolerance (math.Abs(a-b) <= eps) or annotate an exact sentinel with //geolint:ignore floatcmp <reason>",
			})
			return true
		})
	}
	return out
}
