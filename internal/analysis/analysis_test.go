package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// TestRuleGolden checks every rule against its fixture package: each line
// carrying a "// want <rule>" comment must produce exactly that finding,
// and no line without one may produce any. The fixtures also contain
// justified //geolint:ignore directives, so suppression is exercised on
// every rule.
func TestRuleGolden(t *testing.T) {
	cases := []struct {
		name string
		path string // fake import path placing the fixture in rule scope
		rule Rule
	}{
		{"globalrand", "geoprocmap/internal/fixture", &GlobalRandRule{}},
		{"libpanic", "geoprocmap/internal/fixture", &LibPanicRule{}},
		{"floatcmp", "geoprocmap/internal/core/fixture", &FloatCmpRule{}},
		{"ctxgoroutine", "geoprocmap/internal/mpi/fixture", &CtxGoroutineRule{}},
		{"sleepretry", "geoprocmap/internal/fixture", &SleepRetryRule{}},
		{"unitcheck", "geoprocmap/internal/core/fixture", &UnitCheckRule{}},
		{"mapiter", "geoprocmap/internal/fixture", &MapIterRule{}},
		{"errcheck", "geoprocmap/internal/fixture", &ErrCheckRule{}},
		{"errcheckcmd", "geoprocmap/cmd/fixture", &ErrCheckRule{}},
		{"detcheck", "geoprocmap/internal/fixture", &DetCheckRule{}},
		{"locksafe", "geoprocmap/internal/fixture", &LockSafeRule{}},
		{"allocsafe", "geoprocmap/internal/fixture", &AllocSafeRule{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.name)
			pass, err := LoadDir(dir, tc.path)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			if len(pass.TypeErrors) > 0 {
				t.Fatalf("fixture %s does not type-check: %v", dir, pass.TypeErrors[0])
			}
			got := map[string]bool{}
			for _, f := range Run([]*Pass{pass}, []Rule{tc.rule}) {
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] = true
			}
			want := parseWants(t, pass)
			for w := range want {
				if !got[w] {
					t.Errorf("missing expected finding %s", w)
				}
			}
			for g := range got {
				if !want[g] {
					t.Errorf("unexpected finding %s", g)
				}
			}
			if len(want) == 0 {
				t.Fatalf("fixture %s declares no expected findings; a golden test needs at least one true positive", dir)
			}
		})
	}
}

var wantRe = regexp.MustCompile(`//\s*want\s+([a-z]+)`)

// parseWants extracts "file:line:rule" expectations from // want comments.
func parseWants(t *testing.T, p *Pass) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	for _, sf := range p.Files {
		for _, cg := range sf.AST.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				want[fmt.Sprintf("%s:%d:%s", filepath.Base(pos.Filename), pos.Line, m[1])] = true
			}
		}
	}
	return want
}

// TestIgnoreDirectives covers the directive grammar: well-formed
// directives suppress their rule on the same and the following line;
// malformed ones (missing rule, unknown rule, missing justification)
// become findings under the pseudo-rule "geolint" and suppress nothing.
func TestIgnoreDirectives(t *testing.T) {
	src := `package fixture

import "math/rand"

func a() float64 {
	return rand.Float64() //geolint:ignore globalrand same-line suppression works
}

func b() float64 {
	//geolint:ignore globalrand next-line suppression works
	return rand.Float64()
}

func c() float64 {
	return rand.Float64() //geolint:ignore globalrand
}

func d() float64 {
	return rand.Float64() //geolint:ignore nosuchrule reason text
}

func e() float64 {
	return rand.Float64() //geolint:ignore
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Fset:  fset,
		Path:  "geoprocmap/internal/fixture",
		Files: []*SourceFile{{Name: "fixture.go", AST: f}},
	}
	findings := Run([]*Pass{pass}, []Rule{&GlobalRandRule{}})
	byRuleLine := map[string]bool{}
	for _, fd := range findings {
		byRuleLine[fmt.Sprintf("%s:%d", fd.Rule, fd.Pos.Line)] = true
	}
	wants := []string{
		"geolint:15",    // missing justification
		"globalrand:15", // ...so the finding is not suppressed
		"geolint:19",    // unknown rule
		"globalrand:19",
		"geolint:23", // missing rule and justification
		"globalrand:23",
	}
	for _, w := range wants {
		if !byRuleLine[w] {
			t.Errorf("missing finding %s; got %v", w, keys(byRuleLine))
		}
	}
	for _, suppressed := range []string{"globalrand:6", "globalrand:11"} {
		if byRuleLine[suppressed] {
			t.Errorf("finding %s should have been suppressed", suppressed)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), keys(byRuleLine))
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestSelfLint runs the full rule set over this repository and requires a
// clean tree. This embeds the geolint gate into the ordinary test suite:
// a change that introduces a global rand call, a library panic, a float
// equality in cost code, or an unjoinable simulator goroutine fails
// go test ./... even before CI runs cmd/geolint.
func TestSelfLint(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	passes, err := Load(Config{Root: root})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(passes) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(passes))
	}
	for _, p := range passes {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type-check issues reduce typed-rule coverage (first: %v)", p.Path, p.TypeErrors[0])
		}
	}
	for _, f := range Run(passes, DefaultRules()) {
		t.Errorf("%s", f)
	}
}

// TestModulePath covers go.mod parsing.
func TestModulePath(t *testing.T) {
	dir := t.TempDir()
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("// a comment\nmodule example.com/demo\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := modulePath(gomod)
	if err != nil {
		t.Fatal(err)
	}
	if got != "example.com/demo" {
		t.Errorf("modulePath = %q, want example.com/demo", got)
	}
	if _, err := modulePath(filepath.Join(dir, "missing")); err == nil {
		t.Error("modulePath on a missing file: want error")
	}
}

// TestLoadPatterns checks pattern scoping against the real module.
func TestLoadPatterns(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	passes, err := Load(Config{Root: root, Patterns: []string{"./internal/mat"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 || passes[0].Path != "geoprocmap/internal/mat" {
		var paths []string
		for _, p := range passes {
			paths = append(paths, p.Path)
		}
		t.Errorf("Load(./internal/mat) = %v, want exactly geoprocmap/internal/mat", paths)
	}
}
