package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePass wraps one source string as a single-file Pass. The globalrand
// rule used by these tests is purely syntactic, so no type info is needed.
func parsePass(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{
		Fset:  fset,
		Path:  "geoprocmap/internal/fixture",
		Files: []*SourceFile{{Name: "fixture.go", AST: f}},
	}
}

func ruleLines(findings []Finding) map[string]bool {
	out := map[string]bool{}
	for _, f := range findings {
		out[fmt.Sprintf("%s:%d", f.Rule, f.Pos.Line)] = true
	}
	return out
}

// TestIgnoreBlockComment covers the single-line /*geolint:ignore ...*/
// form: it suppresses like the line-comment form, while a directive
// buried inside a multi-line block comment is not recognized (and is not
// reported as malformed either — it is documentation, not a directive).
func TestIgnoreBlockComment(t *testing.T) {
	src := `package fixture

import "math/rand"

func a() float64 {
	return rand.Float64() /*geolint:ignore globalrand single-line block form suppresses*/
}

/*
geolint:ignore globalrand buried mid-comment, not a directive
*/
func b() float64 {
	return rand.Float64()
}
`
	got := ruleLines(Run([]*Pass{parsePass(t, src)}, []Rule{&GlobalRandRule{}}))
	if got["globalrand:6"] {
		t.Error("block-comment directive did not suppress the same-line finding")
	}
	if !got["globalrand:13"] {
		t.Errorf("finding under a multi-line comment should survive; got %v", keys(got))
	}
	if got["geolint:9"] || got["geolint:10"] {
		t.Error("a multi-line comment mentioning the directive must not be parsed as one")
	}
}

// TestIgnoreMultipleRules covers the comma-separated rule list: each named
// rule is suppressed by the one directive, and a list containing an
// unknown rule is rejected wholesale.
func TestIgnoreMultipleRules(t *testing.T) {
	src := `package fixture

import (
	"math/rand"
	"time"
)

func a() {
	//geolint:ignore globalrand,sleepretry both findings on the next line are justified
	for rand.Float64() < 0.5 { time.Sleep(time.Millisecond) }
}

func b() float64 {
	return rand.Float64() //geolint:ignore globalrand,nosuchrule one bad ID poisons the list
}
`
	rules := []Rule{&GlobalRandRule{}, &SleepRetryRule{}}
	got := ruleLines(Run([]*Pass{parsePass(t, src)}, rules))
	for _, suppressed := range []string{"globalrand:10", "sleepretry:10"} {
		if got[suppressed] {
			t.Errorf("finding %s should be suppressed by the multi-rule directive; got %v", suppressed, keys(got))
		}
	}
	if !got["geolint:14"] {
		t.Errorf("unknown rule in a list must be reported; got %v", keys(got))
	}
	if !got["globalrand:14"] {
		t.Errorf("a rejected list must suppress nothing; got %v", keys(got))
	}
}

// TestIgnoreOnLastLine covers a directive on the file's final line: it
// must parse (no trailing newline edge cases) and its nonexistent "next
// line" must not trip anything.
func TestIgnoreOnLastLine(t *testing.T) {
	src := `package fixture

import "math/rand"

func a() float64 {
	return rand.Float64()
} //geolint:ignore globalrand directive on the last line suppresses nothing here`
	findings := Run([]*Pass{parsePass(t, src)}, []Rule{&GlobalRandRule{}})
	got := ruleLines(findings)
	if !got["globalrand:6"] {
		t.Errorf("finding two lines above a last-line directive must survive; got %v", keys(got))
	}
	for _, f := range findings {
		if f.Rule == "geolint" {
			t.Errorf("well-formed last-line directive reported as malformed: %s", f)
		}
	}
}

// TestStaleIgnores covers RunOptions.StaleIgnores: a directive (or one
// rule of a multi-rule directive) that suppressed nothing is reported
// under the pseudo-rule "geolint"; used directives are not.
func TestStaleIgnores(t *testing.T) {
	src := `package fixture

import "math/rand"

func a() float64 {
	return rand.Float64() //geolint:ignore globalrand used: suppresses this line's finding
}

func b() int {
	return 3 //geolint:ignore globalrand stale: no finding here
}

func c() float64 {
	return rand.Float64() //geolint:ignore globalrand,sleepretry half stale: only globalrand fires
}
`
	rules := []Rule{&GlobalRandRule{}, &SleepRetryRule{}}
	findings := RunWith([]*Pass{parsePass(t, src)}, rules, RunOptions{StaleIgnores: true})
	var stale []string
	for _, f := range findings {
		if f.Rule != "geolint" || !strings.Contains(f.Message, "stale") {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		stale = append(stale, fmt.Sprintf("%d:%s", f.Pos.Line, f.Message))
	}
	if len(stale) != 2 {
		t.Fatalf("got %d stale reports, want 2: %v", len(stale), stale)
	}
	if !strings.Contains(stale[0], "globalrand") || !strings.HasPrefix(stale[0], "10:") {
		t.Errorf("first stale report should name globalrand at line 10: %s", stale[0])
	}
	if !strings.Contains(stale[1], "sleepretry") || !strings.HasPrefix(stale[1], "14:") {
		t.Errorf("second stale report should name sleepretry at line 14: %s", stale[1])
	}
	// Without the option the same tree is clean.
	if extra := Run([]*Pass{parsePass(t, src)}, rules); len(extra) != 0 {
		t.Errorf("stale directives must not be reported by default: %v", extra)
	}
}
