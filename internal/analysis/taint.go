package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// This file is the shared backward-taint machinery behind the
// interprocedural contract rules (detcheck, allocsafe). Both rules have
// the same shape: a doc-comment marker declares a root function that must
// not transitively reach a "source" (a nondeterminism source, an
// allocation site) over the module call graph; a second marker excuses a
// deliberate crossing, either as a function-level audited boundary (on a
// doc comment) or as a line-level excuse with a justification. The rules
// differ only in their markers, their messages, and their per-function
// source scanners — everything else (annotation grammar, malformed
// diagnostics, stale-excuse detection, BFS shortest-chain reporting)
// lives here, parameterized by a taintSpec.

// taintSpec parameterizes one taint rule's markers and message strings.
type taintSpec struct {
	rule         string // finding rule ID, e.g. "detcheck"
	rootMarker   string // e.g. "//geolint:deterministic"
	excuseMarker string // e.g. "//geolint:detsource"
	staleMsg     string // message for a line-level excuse that excused nothing
	reachFmt     string // Sprintf format: root name, source desc, file base, line
}

// TaintSource is one source found in a function body — a nondeterminism
// source for detcheck, an allocation site for allocsafe.
type TaintSource struct {
	Pos  token.Position
	Desc string
}

// taintDirective is one line-level excuse. It covers sources on its own
// line and the next; the owning pass reports it when it excuses nothing.
type taintDirective struct {
	pos    token.Position
	path   string // import path of the pass owning the file
	reason string
	used   bool
}

// taintFacts is the per-rule module-wide fact state: annotated roots and
// boundaries, per-function sources, line-level excuses, and
// malformed-annotation diagnostics keyed by pass path.
type taintFacts struct {
	spec       taintSpec
	roots      map[*types.Func]token.Position
	rootOrder  []*types.Func
	boundaries map[*types.Func]bool
	sources    map[*types.Func][]TaintSource
	directives map[string]map[int][]*taintDirective
	dirList    []*taintDirective
	malformed  map[string][]Finding
}

func newTaintFacts(spec taintSpec) *taintFacts {
	return &taintFacts{
		spec:       spec,
		roots:      map[*types.Func]token.Position{},
		boundaries: map[*types.Func]bool{},
		sources:    map[*types.Func][]TaintSource{},
		directives: map[string]map[int][]*taintDirective{},
		malformed:  map[string][]Finding{},
	}
}

// exportPass runs the standard fact-phase shape for one pass: collect
// annotations from every non-test file first (so an excuse works anywhere
// in its file), then scan every function body with the rule's scanner,
// dropping excused sources and skipping audited boundaries.
func (tf *taintFacts) exportPass(p *Pass, scan func(p *Pass, fd *ast.FuncDecl) []TaintSource) {
	if p.Info == nil {
		return
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		tf.collectAnnotations(p, sf)
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		for _, decl := range sf.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if tf.boundaries[fn] {
				continue // audited boundary: its sources are deliberate
			}
			srcs := scan(p, fd)
			kept := srcs[:0]
			for _, s := range srcs {
				if tf.excused(s.Pos) {
					continue
				}
				kept = append(kept, s)
			}
			if len(kept) > 0 {
				tf.sources[fn] = append(tf.sources[fn], kept...)
			}
		}
	}
}

// collectAnnotations registers roots, boundaries, and line-level excuses
// from one file, recording malformed annotations against the pass path.
func (tf *taintFacts) collectAnnotations(p *Pass, sf *SourceFile) {
	// Comments that are part of a function declaration's doc group carry
	// function-level meaning; everything else is line-level.
	doc := map[*ast.Comment]*ast.FuncDecl{}
	for _, decl := range sf.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			doc[c] = fd
		}
	}
	bad := func(pos token.Position, msg string) {
		tf.malformed[p.Path] = append(tf.malformed[p.Path], Finding{Rule: tf.spec.rule, Pos: pos, Message: msg})
	}
	for _, cg := range sf.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			pos := p.position(c.Pos())
			switch {
			case text == tf.spec.rootMarker || strings.HasPrefix(text, tf.spec.rootMarker+" "):
				fd, onFunc := doc[c]
				if !onFunc {
					bad(pos, tf.spec.rootMarker+" must be the doc comment of a function declaration")
					continue
				}
				if text != tf.spec.rootMarker {
					bad(pos, tf.spec.rootMarker+" takes no arguments")
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, dup := tf.roots[fn]; !dup {
					tf.roots[fn] = p.position(fd.Name.Pos())
					tf.rootOrder = append(tf.rootOrder, fn)
				}
			case strings.HasPrefix(text, tf.spec.excuseMarker):
				reason := strings.TrimSpace(strings.TrimPrefix(text, tf.spec.excuseMarker))
				if reason == "" {
					bad(pos, tf.spec.excuseMarker+" has no justification: want "+tf.spec.excuseMarker+" <reason>")
					continue
				}
				if fd, onFunc := doc[c]; onFunc {
					if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						tf.boundaries[fn] = true
					}
					continue
				}
				tf.addDirective(&taintDirective{pos: pos, path: p.Path, reason: reason})
			}
		}
	}
}

func (tf *taintFacts) addDirective(d *taintDirective) {
	tf.dirList = append(tf.dirList, d)
	byLine := tf.directives[d.pos.Filename]
	if byLine == nil {
		byLine = map[int][]*taintDirective{}
		tf.directives[d.pos.Filename] = byLine
	}
	for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
		byLine[line] = append(byLine[line], d)
	}
}

// excused reports whether a line-level excuse covers pos, marking every
// covering directive used.
func (tf *taintFacts) excused(pos token.Position) bool {
	ds := tf.directives[pos.Filename][pos.Line]
	for _, d := range ds {
		d.used = true
	}
	return len(ds) > 0
}

// check emits this pass's malformed annotations, walks the call graph
// from every root declared here, and reports stale line-level excuses in
// this pass's files. It is the whole Check body of a taint rule.
func (tf *taintFacts) check(p *Pass, g *CallGraph) []Finding {
	out := append([]Finding(nil), tf.malformed[p.Path]...)
	for _, root := range tf.rootOrder {
		if root.Pkg() != p.Pkg {
			continue
		}
		out = append(out, tf.checkRoot(g, root)...)
	}
	for _, d := range tf.dirList {
		if d.path == p.Path && !d.used {
			out = append(out, Finding{Rule: tf.spec.rule, Pos: d.pos, Message: tf.spec.staleMsg})
		}
	}
	return out
}

// taintNode is one BFS entry with its parent link for chain printing.
type taintNode struct {
	fn     *types.Func
	parent *taintNode
}

// checkRoot runs the taint walk from one root. BFS yields the shortest
// call chain to each reached function; the visited set guarantees
// termination on recursion and mutual recursion. Traversal follows every
// edge mode — including go, defer, and bare function references — and
// stops at audited boundaries.
func (tf *taintFacts) checkRoot(g *CallGraph, root *types.Func) []Finding {
	rootPos := tf.roots[root]
	var out []Finding
	queue := []*taintNode{{fn: root}}
	visited := map[*types.Func]bool{root: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, src := range tf.sources[n.fn] {
			msg := fmt.Sprintf(tf.spec.reachFmt,
				shortFuncName(root), src.Desc, filepath.Base(src.Pos.Filename), src.Pos.Line)
			if chain := chainString(n); chain != "" {
				msg += " via " + chain
			}
			out = append(out, Finding{Rule: tf.spec.rule, Pos: rootPos, Message: msg})
		}
		node := g.Node(n.fn)
		if node == nil {
			continue
		}
		for _, e := range node.Edges {
			if visited[e.Callee] || tf.boundaries[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			queue = append(queue, &taintNode{fn: e.Callee, parent: n})
		}
	}
	return out
}

// chainString renders root -> ... -> source-function. Empty when the
// source is in the root itself.
func chainString(n *taintNode) string {
	if n.parent == nil {
		return ""
	}
	var names []string
	for m := n; m != nil; m = m.parent {
		names = append(names, shortFuncName(m.fn))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// shortFuncName renders a function with its package basename:
// (*core.GeoMapper).Map, service.fingerprint.
func shortFuncName(fn *types.Func) string {
	full := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil {
		full = strings.ReplaceAll(full, pkg.Path(), pkg.Name())
	}
	return full
}
