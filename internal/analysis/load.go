package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Config describes what to load.
type Config struct {
	// Root is the module root (the directory containing go.mod).
	Root string
	// Module is the module path; parsed from Root/go.mod when empty.
	Module string
	// Patterns restricts loading to package-dir patterns relative to
	// Root: "./..." (everything), "./internal/..." (subtree), or a plain
	// directory. Empty means everything.
	Patterns []string
	// Parallelism caps the goroutines parsing and type-checking
	// packages. Zero selects min(GOMAXPROCS, number of packages); 1
	// loads serially. Whatever the value, the returned passes and their
	// contents are identical: packages are type-checked in dependency
	// waves and merged in import-path order.
	Parallelism int
}

// Load parses and best-effort type-checks every package under the module
// root matching the patterns, returning one Pass per package. Directories
// named testdata, vendor, or starting with "." or "_" are skipped, as the
// go tool does. Type-check failures are recorded on the Pass rather than
// aborting, so syntactic rules always run.
//
// Loading is parallel: the matched directories and their module-internal
// import closure are parsed concurrently, then type-checked wave by wave
// of the import DAG — every package in a wave depends only on completed
// packages, so one types.Package is built exactly once and shared by all
// importers (facts stay keyed on object identity). The standard-library
// source importer is not concurrency-safe and is serialized behind a
// mutex; its cache makes that a first-wave cost only.
func Load(cfg Config) ([]*Pass, error) {
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	module := cfg.Module
	if module == "" {
		module, err = modulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	l := newLoader(root, module, cfg.Parallelism)
	dirs, err := l.packageDirs(cfg.Patterns)
	if err != nil {
		return nil, err
	}
	if err := l.parseClosure(dirs); err != nil {
		return nil, err
	}
	l.typeCheckAll()

	matched := map[string]bool{}
	for _, dir := range dirs {
		matched[dir] = true
	}
	var out []*Pass
	for dir, p := range l.passes {
		if p == nil {
			continue
		}
		// Packages pulled in only as imports of the matched set still
		// carry facts (unit types, call-graph nodes); hand them to Run as
		// fact-only passes so subtree patterns don't lose cross-package
		// rules.
		p.FactsOnly = !matched[dir]
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads a single directory as a package with an explicit import
// path, without consulting go.mod. The golden-file tests use it to place
// fixture packages at rule-relevant fake paths (e.g. a testdata fixture
// pretending to live under geoprocmap/internal/mpi).
func LoadDir(dir, fakePath string) (*Pass, error) {
	l := newLoader(dir, fakePath, 1)
	p, err := l.parseDir(dir)
	if err != nil || p == nil {
		return p, err
	}
	l.passes[dir] = p
	l.typeCheckAll()
	return p, nil
}

type typedPkg struct {
	pkg *types.Package
	err error
}

type loader struct {
	root    string
	module  string
	workers int
	fset    *token.FileSet

	// std is the standard-library source importer. It is NOT safe for
	// concurrent use; stdMu serializes it across type-check workers.
	std   types.Importer
	stdMu sync.Mutex

	// passes and typed are written only between parallel phases: the
	// parse loop fills passes round by round, and the type-check loop
	// publishes each wave's results before the next wave starts. Workers
	// therefore only ever read them.
	passes map[string]*Pass     // dir → pass (nil: no Go files)
	typed  map[string]*typedPkg // import path → completed result
}

func newLoader(root, module string, parallelism int) *loader {
	return &loader{
		root:    root,
		module:  module,
		workers: parallelism,
		fset:    token.NewFileSet(),
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil),
		passes:  map[string]*Pass{},
		typed:   map[string]*typedPkg{},
	}
}

// forEach runs fn(0..n-1) across min(workers, n) goroutines, or inline
// when that is 1. token.FileSet is internally synchronized, so parsing
// and type-checking may share l.fset across workers.
func (l *loader) forEach(n int, fn func(i int)) {
	workers := l.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// packageDirs walks the module tree and returns directories holding Go
// files that match the patterns.
func (l *loader) packageDirs(patterns []string) ([]string, error) {
	var prefixes []string // rel-dir prefixes; nil means everything
	all := len(patterns) == 0
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			all = true
			continue
		}
		prefixes = append(prefixes, strings.TrimSuffix(pat, "/..."))
	}
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		if !all && !matchesAny(rel, prefixes) {
			return nil
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func matchesAny(rel string, prefixes []string) bool {
	rel = filepath.ToSlash(rel)
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// importPath maps a directory under the root to its import path.
func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module-internal import path back to a directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// parseClosure parses the given directories and, round by round, every
// module-internal package they import, in parallel. Parse errors in the
// requested directories abort; an unreadable directory reached only
// through an import is recorded as that import path's resolution error
// (matching the serial loader, where it surfaced as a type-check
// diagnostic of the importer).
func (l *loader) parseClosure(dirs []string) error {
	requested := map[string]bool{}
	for _, d := range dirs {
		requested[d] = true
	}
	pending := append([]string(nil), dirs...)
	seen := map[string]bool{}
	for len(pending) > 0 {
		var batch []string
		for _, d := range pending {
			if !seen[d] {
				seen[d] = true
				batch = append(batch, d)
			}
		}
		pending = nil
		if len(batch) == 0 {
			break
		}
		sort.Strings(batch)
		results := make([]*Pass, len(batch))
		errs := make([]error, len(batch))
		l.forEach(len(batch), func(i int) {
			results[i], errs[i] = l.parseDir(batch[i])
		})
		for i, err := range errs {
			if err == nil {
				continue
			}
			if requested[batch[i]] {
				return err
			}
			l.typed[l.importPath(batch[i])] = &typedPkg{err: err}
		}
		for i, p := range results {
			l.passes[batch[i]] = p
			if p == nil || errs[i] != nil {
				continue
			}
			for _, imp := range l.moduleImports(p) {
				if d := l.dirFor(imp); !seen[d] {
					pending = append(pending, d)
				}
			}
		}
	}
	return nil
}

// parseDir parses one package directory into a Pass (nil when it holds no
// Go files).
func (l *loader) parseDir(dir string) (*Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Pass{Fset: l.fset, Path: l.importPath(dir)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		p.Files = append(p.Files, &SourceFile{
			Name: full,
			AST:  f,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	if len(p.Files) == 0 {
		return nil, nil
	}
	sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Name < p.Files[j].Name })
	return p, nil
}

// moduleImports returns the module-internal import paths of a package's
// non-test files, deduplicated and sorted.
func (l *loader) moduleImports(p *Pass) []string {
	set := map[string]bool{}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		for _, imp := range sf.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == l.module || strings.HasPrefix(path, l.module+"/") {
				set[path] = true
			}
		}
	}
	var out []string
	for path := range set {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// typeCheckAll type-checks every parsed package in dependency waves: a
// package joins a wave once all its module-internal imports are complete,
// so each wave's packages are independent and check concurrently while
// the importer reads only finished results. Packages left over when no
// wave can form sit on an import cycle (or import a broken package) and
// get a diagnostic instead of type information.
func (l *loader) typeCheckAll() {
	type node struct {
		pass *Pass
		deps []string
	}
	byPath := map[string]*Pass{}
	var order []string
	for _, p := range l.passes {
		if p == nil {
			continue
		}
		byPath[p.Path] = p
		order = append(order, p.Path)
	}
	sort.Strings(order)
	nodes := map[string]*node{}
	for _, path := range order {
		p := byPath[path]
		var deps []string
		for _, imp := range l.moduleImports(p) {
			if imp != path {
				deps = append(deps, imp)
			}
		}
		nodes[path] = &node{pass: p, deps: deps}
	}
	remaining := len(nodes)
	done := func(path string) bool { _, ok := l.typed[path]; return ok }
	for remaining > 0 {
		var wave []*node
		for _, path := range order {
			n := nodes[path]
			if n == nil || done(path) {
				continue
			}
			ready := true
			for _, dep := range n.deps {
				// A dep outside the parsed set resolves to an importer
				// error during the check; only parsed-but-unfinished deps
				// hold a package back.
				if _, parsed := nodes[dep]; parsed && !done(dep) {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, n)
			}
		}
		if len(wave) == 0 {
			// The remaining packages form import cycles.
			for _, path := range order {
				n := nodes[path]
				if n == nil || done(path) {
					continue
				}
				err := fmt.Errorf("analysis: import cycle through %s", path)
				n.pass.TypeErrors = append(n.pass.TypeErrors, err)
				l.typed[path] = &typedPkg{err: err}
				remaining--
			}
			return
		}
		l.forEach(len(wave), func(i int) {
			l.typeCheck(wave[i].pass)
		})
		for _, n := range wave {
			t := &typedPkg{pkg: n.pass.Pkg}
			if n.pass.Pkg == nil {
				t.err = fmt.Errorf("analysis: cannot type-check %s", n.pass.Path)
			}
			l.typed[n.pass.Path] = t
			remaining--
		}
	}
}

// typeCheck populates p.Info/p.Pkg from the package's non-test files.
// Errors are collected, not fatal: rules fall back to syntax when type
// information is missing.
func (l *loader) typeCheck(p *Pass) {
	var files []*ast.File
	for _, sf := range p.Files {
		if !sf.Test {
			files = append(files, sf.AST)
		}
	}
	if len(files) == 0 {
		return
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, err := conf.Check(p.Path, l.fset, files, info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Info = info
	p.Pkg = pkg
}

// moduleImporter resolves module-internal imports from the completed
// waves and delegates everything else (the standard library) to the
// stdlib source importer, serialized behind stdMu.
type moduleImporter loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(m)
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		if t, ok := l.typed[path]; ok {
			return t.pkg, t.err
		}
		return nil, fmt.Errorf("analysis: cannot resolve %s", path)
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}
