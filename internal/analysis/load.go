package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config describes what to load.
type Config struct {
	// Root is the module root (the directory containing go.mod).
	Root string
	// Module is the module path; parsed from Root/go.mod when empty.
	Module string
	// Patterns restricts loading to package-dir patterns relative to
	// Root: "./..." (everything), "./internal/..." (subtree), or a plain
	// directory. Empty means everything.
	Patterns []string
}

// Load parses and best-effort type-checks every package under the module
// root matching the patterns, returning one Pass per package. Directories
// named testdata, vendor, or starting with "." or "_" are skipped, as the
// go tool does. Type-check failures are recorded on the Pass rather than
// aborting, so syntactic rules always run.
func Load(cfg Config) ([]*Pass, error) {
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	module := cfg.Module
	if module == "" {
		module, err = modulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	l := &loader{
		root:   root,
		module: module,
		fset:   token.NewFileSet(),
		passes: map[string]*Pass{},
		typed:  map[string]*typedPkg{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	dirs, err := l.packageDirs(cfg.Patterns)
	if err != nil {
		return nil, err
	}
	var out []*Pass
	matched := map[*Pass]bool{}
	for _, dir := range dirs {
		p, err := l.load(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
			matched[p] = true
		}
	}
	// Packages pulled in only as imports of the matched set still carry
	// facts (unit-type declarations); hand them to Run as fact-only
	// passes so subtree patterns don't lose cross-package rules.
	for _, p := range l.passes {
		if p != nil && !matched[p] {
			p.FactsOnly = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads a single directory as a package with an explicit import
// path, without consulting go.mod. The golden-file tests use it to place
// fixture packages at rule-relevant fake paths (e.g. a testdata fixture
// pretending to live under geoprocmap/internal/mpi).
func LoadDir(dir, fakePath string) (*Pass, error) {
	l := &loader{
		root:   dir,
		module: fakePath,
		fset:   token.NewFileSet(),
		passes: map[string]*Pass{},
		typed:  map[string]*typedPkg{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l.load(dir)
}

type typedPkg struct {
	pkg *types.Package
	err error
}

type loader struct {
	root   string
	module string
	fset   *token.FileSet
	std    types.Importer
	passes map[string]*Pass // dir → pass
	typed  map[string]*typedPkg
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// packageDirs walks the module tree and returns directories holding Go
// files that match the patterns.
func (l *loader) packageDirs(patterns []string) ([]string, error) {
	var prefixes []string // rel-dir prefixes; nil means everything
	all := len(patterns) == 0
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			all = true
			continue
		}
		prefixes = append(prefixes, strings.TrimSuffix(pat, "/..."))
	}
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		if !all && !matchesAny(rel, prefixes) {
			return nil
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func matchesAny(rel string, prefixes []string) bool {
	rel = filepath.ToSlash(rel)
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// importPath maps a directory under the root to its import path.
func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module-internal import path back to a directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// load parses one package directory into a Pass, type-checking its
// non-test files.
func (l *loader) load(dir string) (*Pass, error) {
	if p, ok := l.passes[dir]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Pass{Fset: l.fset, Path: l.importPath(dir)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		p.Files = append(p.Files, &SourceFile{
			Name: full,
			AST:  f,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	if len(p.Files) == 0 {
		l.passes[dir] = nil
		return nil, nil
	}
	sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Name < p.Files[j].Name })
	l.passes[dir] = p
	l.typeCheck(p)
	return p, nil
}

// typeCheck populates p.Info/p.Pkg from the package's non-test files.
// Errors are collected, not fatal: rules fall back to syntax when type
// information is missing.
func (l *loader) typeCheck(p *Pass) {
	var files []*ast.File
	for _, sf := range p.Files {
		if !sf.Test {
			files = append(files, sf.AST)
		}
	}
	if len(files) == 0 {
		return
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, err := conf.Check(p.Path, l.fset, files, info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Info = info
	p.Pkg = pkg
}

// moduleImporter resolves module-internal imports by recursively loading
// them from source and delegates everything else (the standard library)
// to the stdlib source importer.
type moduleImporter loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(m)
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		if t, ok := l.typed[path]; ok {
			return t.pkg, t.err
		}
		// Reserve the slot first so import cycles fail cleanly instead of
		// recursing forever.
		l.typed[path] = &typedPkg{err: fmt.Errorf("analysis: import cycle through %s", path)}
		p, err := l.load(l.dirFor(path))
		if err == nil && (p == nil || p.Pkg == nil) {
			err = fmt.Errorf("analysis: cannot type-check %s", path)
		}
		t := &typedPkg{err: err}
		if p != nil {
			t.pkg = p.Pkg
		}
		l.typed[path] = t
		return t.pkg, t.err
	}
	return l.std.Import(path)
}
