package analysis

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// loadCallGraphFixture loads the two-package fixture module under
// testdata/callgraph with the given loader parallelism.
func loadCallGraphFixture(t *testing.T, parallelism int) []*Pass {
	t.Helper()
	passes, err := Load(Config{
		Root:        "testdata/callgraph",
		Module:      "example.com/cg",
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range passes {
		for _, e := range p.TypeErrors {
			t.Fatalf("%s: unexpected type error: %v", p.Path, e)
		}
	}
	return passes
}

func edgeStrings(n *CGNode) []string {
	if n == nil {
		return nil
	}
	var out []string
	for _, e := range n.Edges {
		out = append(out, e.Mode.String()+" "+e.Callee.FullName())
	}
	return out
}

// TestCallGraphEdges pins the exact edge set of every fixture function:
// static cross-package and method calls, dynamic resolution by signature,
// interface resolution to a concrete type in another package, go/defer
// modes, and a recursion cycle.
func TestCallGraphEdges(t *testing.T) {
	g := BuildCallGraph(loadCallGraphFixture(t, 1))
	want := map[string][]string{
		"example.com/cg/alpha.Leaf":  nil,
		"example.com/cg/alpha.Clock": {"static time.Now"},
		"(example.com/cg/alpha.T).M": nil,
		"example.com/cg/beta.Static": {
			"static example.com/cg/alpha.Leaf",
			"static (example.com/cg/alpha.T).M",
		},
		"example.com/cg/beta.Dynamic": {
			"ref example.com/cg/alpha.Leaf",
			"dynamic example.com/cg/alpha.Leaf",
			"dynamic (example.com/cg/alpha.T).M",
		},
		"example.com/cg/beta.Via": {
			"iface (example.com/cg/beta.Impl).Do",
		},
		"(example.com/cg/beta.Impl).Do": nil,
		"example.com/cg/beta.Ping":      {"static example.com/cg/beta.Pong"},
		"example.com/cg/beta.Pong": {
			"static example.com/cg/alpha.Clock",
			"static example.com/cg/beta.Ping",
		},
		"example.com/cg/beta.Spawn": {
			"go example.com/cg/alpha.Leaf",
			"defer example.com/cg/alpha.Leaf",
		},
		"example.com/cg/beta.Root": {"static example.com/cg/beta.Ping"},
		"example.com/cg/beta.MethodValue": {
			"ref (example.com/cg/alpha.T).M",
			"dynamic example.com/cg/alpha.Leaf",
			"dynamic (example.com/cg/alpha.T).M",
		},
		"example.com/cg/beta.DeferredClosure": {
			"static example.com/cg/alpha.Leaf",
			"defer example.com/cg/alpha.Leaf",
			"defer (example.com/cg/alpha.T).M",
		},
		"example.com/cg/beta.GoInRange": {
			"go example.com/cg/alpha.Clock",
		},
	}
	var gotNames []string
	for _, fn := range g.Funcs() {
		gotNames = append(gotNames, fn.FullName())
	}
	if len(gotNames) != len(want) {
		t.Errorf("graph has %d nodes %v, want %d", len(gotNames), gotNames, len(want))
	}
	for name, wantEdges := range want {
		node := g.Lookup(name)
		if node == nil {
			t.Errorf("no node for %s", name)
			continue
		}
		if got := edgeStrings(node); !reflect.DeepEqual(got, wantEdges) {
			t.Errorf("%s edges = %v, want %v", name, got, wantEdges)
		}
	}
}

// TestCallGraphTaintTermination runs detcheck over the fixture: the only
// annotated root reaches time.Now through the Ping/Pong recursion cycle,
// so the walk must terminate and report the full call chain exactly once.
func TestCallGraphTaintTermination(t *testing.T) {
	findings := Run(loadCallGraphFixture(t, 1), []Rule{&DetCheckRule{}})
	if len(findings) != 1 {
		t.Fatalf("got %d findings %v, want 1", len(findings), findings)
	}
	f := findings[0]
	if f.Rule != "detcheck" {
		t.Errorf("rule = %s, want detcheck", f.Rule)
	}
	for _, part := range []string{
		"beta.Root -> beta.Ping -> beta.Pong -> alpha.Clock",
		"time.Now",
	} {
		if !strings.Contains(f.Message, part) {
			t.Errorf("message %q does not mention %q", f.Message, part)
		}
	}
}

// TestLoadParallelDeterministic checks the parallel loader against the
// serial one: same pass list, same findings, byte for byte — and runs
// several parallel loads concurrently so `go test -race` can catch any
// sharing between loader workers.
func TestLoadParallelDeterministic(t *testing.T) {
	render := func(passes []*Pass) []string {
		var out []string
		for _, p := range passes {
			out = append(out, fmt.Sprintf("pass %s files=%d factsOnly=%v", p.Path, len(p.Files), p.FactsOnly))
		}
		for _, f := range Run(passes, []Rule{&DetCheckRule{}, &LockSafeRule{}, &MapIterRule{}}) {
			out = append(out, fmt.Sprintf("%s:%d %s %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message))
		}
		return out
	}
	want := render(loadCallGraphFixture(t, 1))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			passes, err := Load(Config{
				Root:        "testdata/callgraph",
				Module:      "example.com/cg",
				Parallelism: 4,
			})
			if err != nil {
				t.Errorf("parallel Load: %v", err)
				return
			}
			if got := render(passes); !reflect.DeepEqual(got, want) {
				t.Errorf("parallel load diverged:\ngot  %v\nwant %v", got, want)
			}
		}()
	}
	wg.Wait()
}
