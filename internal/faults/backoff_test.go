package faults

import (
	"testing"

	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// TestBackoffGrowthAndCap pins the un-jittered schedule: base·2^attempt
// until the cap, then flat at the cap forever.
func TestBackoffGrowthAndCap(t *testing.T) {
	base, cap := units.Seconds(0.25), units.Seconds(8)
	want := []units.Seconds{0.25, 0.5, 1, 2, 4, 8, 8, 8}
	for attempt, w := range want {
		if got := Backoff(attempt, base, cap, nil); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Absurd attempt counts must not overflow past the cap.
	if got := Backoff(5000, base, cap, nil); got != cap {
		t.Errorf("Backoff(5000) = %v, want cap %v", got, cap)
	}
}

// TestBackoffDefaultsAndClamps covers the parameter guards: non-positive
// base and cap fall back to the shared defaults, and a negative attempt
// is treated as the first.
func TestBackoffDefaultsAndClamps(t *testing.T) {
	if got := Backoff(0, 0, 0, nil); got != DefaultBackoffBase {
		t.Errorf("Backoff(0, defaults) = %v, want %v", got, DefaultBackoffBase)
	}
	if got := Backoff(100, -1, -1, nil); got != DefaultBackoffCap {
		t.Errorf("Backoff(100, defaults) = %v, want cap %v", got, DefaultBackoffCap)
	}
	if got, want := Backoff(-3, 1, 8, nil), units.Seconds(1); got != want {
		t.Errorf("Backoff(-3) = %v, want attempt-0 delay %v", got, want)
	}
}

// TestBackoffJitterBounds draws many jittered delays and checks every one
// stays inside the documented ±25% band, and that the same seed
// reproduces the same sequence.
func TestBackoffJitterBounds(t *testing.T) {
	base, cap := units.Seconds(1), units.Seconds(64)
	for attempt := 0; attempt < 7; attempt++ {
		nominal := Backoff(attempt, base, cap, nil)
		rng := stats.NewRand(7)
		for i := 0; i < 200; i++ {
			d := Backoff(attempt, base, cap, rng)
			if d < nominal.Scale(0.75) || d > nominal.Scale(1.25) {
				t.Fatalf("attempt %d draw %d: %v outside ±25%% of %v", attempt, i, d, nominal)
			}
		}
	}
	a := Backoff(3, base, cap, stats.NewRand(99))
	b := Backoff(3, base, cap, stats.NewRand(99))
	if a != b {
		t.Errorf("same seed produced different jittered delays: %v vs %v", a, b)
	}
}

// TestBackoffTotal checks the cumulative accounting against the sum of
// individual un-jittered waits.
func TestBackoffTotal(t *testing.T) {
	base, cap := units.Seconds(0.25), units.Seconds(8)
	if got := BackoffTotal(0, base, cap); got != 0 {
		t.Errorf("BackoffTotal(0) = %v, want 0", got)
	}
	var want units.Seconds
	for i := 0; i < 10; i++ {
		want += Backoff(i, base, cap, nil)
		if got := BackoffTotal(i+1, base, cap); got != want {
			t.Errorf("BackoffTotal(%d) = %v, want %v", i+1, got, want)
		}
	}
}

// TestAttemptsForWait checks the inverse property: the returned n is the
// smallest with BackoffTotal(n) ≥ wait, zero for non-positive waits, and
// bounded for absurd waits.
func TestAttemptsForWait(t *testing.T) {
	base, cap := units.Seconds(0.25), units.Seconds(8)
	if got := AttemptsForWait(0, base, cap); got != 0 {
		t.Errorf("AttemptsForWait(0) = %d, want 0", got)
	}
	if got := AttemptsForWait(-5, base, cap); got != 0 {
		t.Errorf("AttemptsForWait(-5) = %d, want 0", got)
	}
	for _, wait := range []units.Seconds{0.1, 0.25, 0.3, 1, 5, 17.6} {
		n := AttemptsForWait(wait, base, cap)
		if n < 1 {
			t.Fatalf("AttemptsForWait(%v) = %d, want ≥ 1", wait, n)
		}
		if got := BackoffTotal(n, base, cap); got < wait {
			t.Errorf("BackoffTotal(%d) = %v < wait %v", n, got, wait)
		}
		if n > 1 {
			if got := BackoffTotal(n-1, base, cap); got >= wait {
				t.Errorf("BackoffTotal(%d) = %v already covers wait %v; n=%d not minimal", n-1, got, wait, n)
			}
		}
	}
	// A wait no finite schedule reaches terminates at the 64-attempt guard.
	if got := AttemptsForWait(units.Seconds(1e12), base, cap); got != 64 {
		t.Errorf("AttemptsForWait(huge) = %d, want the 64 guard", got)
	}
}

// TestHash01RangeAndDeterminism samples the stateless mixer across many
// key tuples: every draw is in [0,1), identical inputs reproduce, and
// distinct keys decorrelate (a crude uniformity check on the mean).
func TestHash01RangeAndDeterminism(t *testing.T) {
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		v := Hash01(42, int64(i), int64(i*7))
		if v < 0 || v >= 1 {
			t.Fatalf("Hash01 draw %d = %v outside [0,1)", i, v)
		}
		if v != Hash01(42, int64(i), int64(i*7)) {
			t.Fatalf("Hash01 not deterministic at key %d", i)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("Hash01 mean over %d draws = %v, want ≈ 0.5", n, mean)
	}
	if Hash01(1, 2) == Hash01(1, 3) || Hash01(1, 2) == Hash01(4, 2) {
		t.Error("distinct seed/key tuples collided; mixer is degenerate")
	}
	// Key order matters for multi-key tuples (the chained mix is not
	// commutative across positions).
	if Hash01(1, 2, 3) == Hash01(1, 3, 2) {
		t.Error("key order ignored; chained mix collapsed")
	}
}

// TestAttemptsCaps checks the deterministic attempt counter: zero loss
// is a single attempt, certain loss caps at max, and the count is
// reproducible.
func TestAttemptsCaps(t *testing.T) {
	if got := Attempts(1, 2, 0, 8); got != 1 {
		t.Errorf("Attempts(p=0) = %d, want 1", got)
	}
	if got := Attempts(1, 2, -0.5, 8); got != 1 {
		t.Errorf("Attempts(p<0) = %d, want 1", got)
	}
	if got := Attempts(1, 2, 1.0, 5); got != 5 {
		t.Errorf("Attempts(p=1, max=5) = %d, want the cap 5", got)
	}
	if got := Attempts(1, 2, 1.0, 0); got != DefaultMaxAttempts {
		t.Errorf("Attempts(p=1, max=0) = %d, want default cap %d", got, DefaultMaxAttempts)
	}
	for key := int64(0); key < 100; key++ {
		a := Attempts(9, key, 0.5, 8)
		if a < 1 || a > 8 {
			t.Fatalf("Attempts(key=%d) = %d outside [1,8]", key, a)
		}
		if a != Attempts(9, key, 0.5, 8) {
			t.Fatalf("Attempts(key=%d) not deterministic", key)
		}
	}
}
