package faults

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestEventWindows(t *testing.T) {
	e := Event{Kind: LinkDown, Start: 5, End: 10, Src: 0, Dst: 1}
	for _, tc := range []struct {
		t    float64
		want bool
	}{{4.9, false}, {5, true}, {9.9, true}, {10, false}} {
		if got := e.covers(tc.t); got != tc.want {
			t.Errorf("covers(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	open := Event{Kind: SiteOutage, Start: 3, Site: 0}
	if !open.covers(1e9) {
		t.Error("open-ended event should cover any later time")
	}
	if open.covers(2.9) {
		t.Error("open-ended event active before its start")
	}
}

func TestLinkStateFolding(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: BandwidthDegrade, Start: 0, End: 100, Src: 0, Dst: 1, Factor: 0.5},
		{Kind: BandwidthDegrade, Start: 0, End: 100, Src: Wildcard, Dst: Wildcard, Factor: 0.8},
		{Kind: LatencySpike, Start: 0, End: 100, Src: 0, Dst: 1, Factor: 2},
		{Kind: LatencySpike, Start: 0, End: 100, Src: 0, Dst: 1, Factor: 1.5},
		{Kind: ProbeLoss, Start: 0, End: 100, Src: Wildcard, Dst: Wildcard, Probability: 0.1},
	}}
	st := s.Link(0, 1, 50)
	if st.Down {
		t.Error("link unexpectedly down")
	}
	if math.Abs(st.BWFactor-0.4) > 1e-12 {
		t.Errorf("BWFactor = %v, want 0.4 (degradations multiply)", st.BWFactor)
	}
	if st.LatFactor != 2 {
		t.Errorf("LatFactor = %v, want max spike 2", st.LatFactor)
	}
	if st.LossProb != 0.1 {
		t.Errorf("LossProb = %v, want 0.1", st.LossProb)
	}
	// Intra-site links are immune to wildcard WAN events.
	intra := s.Link(1, 1, 50)
	if intra.Down || intra.BWFactor != 1 || intra.LossProb != 0 {
		t.Errorf("intra-site state affected by WAN events: %+v", intra)
	}
}

func TestSiteOutageDownsAllLinks(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: SiteOutage, Start: 10, End: 20, Site: 2}}}
	if !s.Link(2, 0, 15).Down || !s.Link(0, 2, 15).Down || !s.Link(2, 2, 15).Down {
		t.Error("site outage should take down every link touching the site")
	}
	if s.Link(0, 1, 15).Down {
		t.Error("outage leaked onto an unrelated link")
	}
	if !s.SiteDown(2, 15) || s.SiteDown(2, 25) || s.SiteDown(1, 15) {
		t.Error("SiteDown window wrong")
	}
}

func TestNextLinkRecovery(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: LinkDown, Start: 0, End: 10, Src: 0, Dst: 1},
		{Kind: LinkDown, Start: 8, End: 15, Src: 0, Dst: 1}, // overlapping chain
		{Kind: SiteOutage, Start: 100, Site: 1},             // open-ended
	}}
	if got := s.NextLinkRecovery(0, 1, 5); got != 15 {
		t.Errorf("recovery from chained outages = %v, want 15", got)
	}
	if got := s.NextLinkRecovery(0, 1, 20); got != 20 {
		t.Errorf("healthy link recovery = %v, want immediate", got)
	}
	if got := s.NextLinkRecovery(0, 1, 120); !math.IsInf(got, 1) {
		t.Errorf("open-ended outage recovery = %v, want +Inf", got)
	}
	if got := s.NextLinkRecovery(2, 3, 5); got != 5 {
		t.Errorf("unrelated link recovery = %v, want immediate", got)
	}
}

func TestSummary(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: SiteOutage, Start: 10, End: 20, Site: 1},
		{Kind: LinkDown, Start: 5, End: 8, Src: 2, Dst: 0},
	}}
	dead, degraded := s.Summary(3, 0, 30)
	if !reflect.DeepEqual(dead, []int{1}) {
		t.Errorf("dead sites = %v, want [1]", dead)
	}
	if !reflect.DeepEqual(degraded, [][2]int{{2, 0}}) {
		t.Errorf("degraded pairs = %v, want [[2 0]]", degraded)
	}
	// A window before any event sees nothing.
	dead, degraded = s.Summary(3, 0, 4)
	if len(dead) != 0 || len(degraded) != 0 {
		t.Errorf("summary of quiet window = %v, %v", dead, degraded)
	}
}

func TestPresetsDeterministicAndValid(t *testing.T) {
	for _, name := range PresetNames() {
		a, err := Preset(name, 4, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Preset(name, 4, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", name)
		}
		if err := a.Validate(4); err != nil {
			t.Errorf("%s: preset does not validate: %v", name, err)
		}
		if a.Empty() {
			t.Errorf("%s: preset is empty", name)
		}
		c, err := Preset(name, 4, 43)
		if err != nil {
			t.Fatal(err)
		}
		if name != "DiurnalDrift" && reflect.DeepEqual(a.Events, c.Events) {
			t.Errorf("%s: different seeds produced identical event lists", name)
		}
	}
	if _, err := Preset("nosuch", 4, 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Preset("FlakyWAN", 0, 1); err == nil {
		t.Error("zero-site preset accepted")
	}
}

func TestSiteBlackoutShape(t *testing.T) {
	s := SiteBlackout(4, 7)
	if len(s.Events) != 1 || s.Events[0].Kind != SiteOutage {
		t.Fatalf("blackout events = %+v", s.Events)
	}
	site := s.Events[0].Site
	if site < 0 || site >= 4 {
		t.Errorf("blackout site %d out of range", site)
	}
	if !s.SiteDown(site, BlackoutStart+1) || s.SiteDown(site, BlackoutStart-1) {
		t.Error("blackout window wrong")
	}
	if got := s.NextLinkRecovery(site, (site+1)%4, BlackoutStart+1); !math.IsInf(got, 1) {
		t.Error("blackout should never recover")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []Event{
		{Kind: SiteOutage, Site: 9},
		{Kind: LinkDown, Src: -2, Dst: 0},
		{Kind: BandwidthDegrade, Src: 0, Dst: 1, Factor: 0},
		{Kind: BandwidthDegrade, Src: 0, Dst: 1, Factor: 1.5},
		{Kind: LatencySpike, Src: 0, Dst: 1, Factor: 0.5},
		{Kind: ProbeLoss, Src: 0, Dst: 1, Probability: 1},
		{Kind: "volcano"},
		{Kind: LinkDown, Src: 0, Dst: 1, Start: -3},
	}
	for i, e := range cases {
		s := &Schedule{Events: []Event{e}}
		if err := s.Validate(4); err == nil {
			t.Errorf("case %d (%+v): bad event accepted", i, e)
		}
	}
	var nilSched *Schedule
	if err := nilSched.Validate(4); err != nil {
		t.Errorf("nil schedule should validate: %v", err)
	}
}

func TestJSONRoundTripAndLoad(t *testing.T) {
	s := FlakyWAN(4, 11)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Error("JSON round trip changed the schedule")
	}

	path := filepath.Join(t.TempDir(), "sched.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "FlakyWAN" {
		t.Errorf("loaded name %q", loaded.Name)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json"), 4); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ParseJSON([]byte("{not json"), 4); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestFromSpec(t *testing.T) {
	s, err := FromSpec("siteblackout", 4, 5)
	if err != nil || s.Name != "SiteBlackout" {
		t.Fatalf("FromSpec preset: %v, %v", s, err)
	}
	if s, err := FromSpec("", 4, 5); s != nil || err != nil {
		t.Errorf("empty spec should be a nil schedule, got %v, %v", s, err)
	}
	if _, err := FromSpec("no-such-preset-or-file", 4, 5); err == nil {
		t.Error("bogus spec accepted")
	}
	path := filepath.Join(t.TempDir(), "s.json")
	data, _ := json.Marshal(DiurnalDrift(4, 9))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = FromSpec(path, 4, 5)
	if err != nil || s.Name != "DiurnalDrift" {
		t.Fatalf("FromSpec file: %v, %v", s, err)
	}
}

func TestBackoff(t *testing.T) {
	if d := Backoff(0, 1, 30, nil); d != 1 {
		t.Errorf("Backoff(0) = %v, want base", d)
	}
	if d := Backoff(3, 1, 30, nil); d != 8 {
		t.Errorf("Backoff(3) = %v, want 8", d)
	}
	if d := Backoff(10, 1, 30, nil); d != 30 {
		t.Errorf("Backoff(10) = %v, want cap 30", d)
	}
	if d := Backoff(2, 0, 0, nil); d != DefaultBackoffBase*4 {
		t.Errorf("default-parameter backoff = %v", d)
	}
	if got := BackoffTotal(3, 1, 30); got != 1+2+4 {
		t.Errorf("BackoffTotal(3) = %v, want 7", got)
	}
	if got := AttemptsForWait(6.5, 1, 30); got != 3 {
		t.Errorf("AttemptsForWait(6.5) = %d, want 3 (1+2+4 ≥ 6.5)", got)
	}
	if got := AttemptsForWait(0, 1, 30); got != 0 {
		t.Errorf("AttemptsForWait(0) = %d, want 0", got)
	}
}

func TestHash01DeterministicAndUniform(t *testing.T) {
	a := Hash01(42, 1, 2, 3)
	b := Hash01(42, 1, 2, 3)
	if a != b {
		t.Error("Hash01 not deterministic")
	}
	if Hash01(42, 1, 2, 3) == Hash01(43, 1, 2, 3) {
		t.Error("seed does not change the draw")
	}
	// Crude uniformity: mean of many draws near 0.5.
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := Hash01(7, int64(i))
		if v < 0 || v >= 1 {
			t.Fatalf("Hash01 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Hash01 mean %v, want ≈0.5", mean)
	}
}

func TestAttempts(t *testing.T) {
	if got := Attempts(1, 2, 0, 8); got != 1 {
		t.Errorf("zero loss should take 1 attempt, got %d", got)
	}
	if got := Attempts(1, 2, 0.999, 4); got != 4 {
		t.Errorf("near-certain loss should hit the cap, got %d", got)
	}
	if a, b := Attempts(5, 9, 0.5, 8), Attempts(5, 9, 0.5, 8); a != b {
		t.Error("Attempts not deterministic")
	}
	// Expected attempts under p=0.5 ≈ 2; check the empirical mean is sane.
	var sum int
	const n = 2000
	for i := 0; i < n; i++ {
		sum += Attempts(11, int64(i), 0.5, 16)
	}
	mean := float64(sum) / n
	if mean < 1.7 || mean > 2.3 {
		t.Errorf("mean attempts under p=0.5 is %v, want ≈2", mean)
	}
}

func TestReportMergeAndString(t *testing.T) {
	a := &Report{Schedule: "X", Messages: 2, Retries: 1, BlockedSeconds: 3, DeadSites: []int{2}, DegradedPairs: [][2]int{{0, 1}}}
	b := &Report{Messages: 3, Dropped: 2, DeadSites: []int{1, 2}, DegradedPairs: [][2]int{{0, 1}, {1, 0}}}
	a.Merge(b)
	if a.Messages != 5 || a.Retries != 1 || a.Dropped != 2 {
		t.Errorf("merged counters wrong: %+v", a)
	}
	if !reflect.DeepEqual(a.DeadSites, []int{1, 2}) {
		t.Errorf("merged dead sites %v", a.DeadSites)
	}
	if !reflect.DeepEqual(a.DegradedPairs, [][2]int{{0, 1}, {1, 0}}) {
		t.Errorf("merged degraded pairs %v", a.DegradedPairs)
	}
	if a.Empty() {
		t.Error("non-trivial report claims to be empty")
	}
	if !(&Report{Schedule: "quiet", Messages: 9}).Empty() {
		t.Error("fault-free report should be empty")
	}
	if s := a.String(); s == "" {
		t.Error("empty String()")
	}
	var nilRep *Report
	if !nilRep.Empty() || nilRep.String() == "" {
		t.Error("nil report helpers")
	}
}
