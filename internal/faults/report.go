package faults

import (
	"fmt"
	"sort"
	"strings"

	"geoprocmap/internal/units"
)

// Report is the structured fault accounting a fault-aware simulation or
// calibration run produces instead of an optimistic time: what failed, how
// often senders retried, and how long they sat blocked. Reports from
// sequential phases merge associatively, and every field is filled
// deterministically, so same seed + same schedule ⇒ an identical Report.
type Report struct {
	// Schedule names the schedule that was active.
	Schedule string
	// Messages is the number of messages (or probes) observed.
	Messages int
	// Retries counts retransmissions and backoff probes beyond each
	// message's first attempt.
	Retries int
	// Dropped counts messages abandoned after blocking a full deadline on
	// a link that never recovered in time.
	Dropped int
	// BlockedSeconds is the total simulated time senders spent blocked on
	// dead links or waiting out retransmission backoff.
	BlockedSeconds units.Seconds
	// DeadSites lists sites that were in outage at any point of the run,
	// ascending.
	DeadSites []int
	// DegradedPairs lists directed site pairs that saw any link fault
	// (down, degraded bandwidth, latency spike, or loss), ordered.
	DegradedPairs [][2]int
}

// Empty reports whether the run saw no fault effects at all.
func (r *Report) Empty() bool {
	return r == nil || (r.Retries == 0 && r.Dropped == 0 && r.BlockedSeconds == 0 &&
		len(r.DeadSites) == 0 && len(r.DegradedPairs) == 0)
}

// Merge folds another report (e.g. from the next phase) into r. Counters
// add; site and pair sets union, keeping their deterministic order.
func (r *Report) Merge(o *Report) {
	if o == nil {
		return
	}
	if r.Schedule == "" {
		r.Schedule = o.Schedule
	}
	r.Messages += o.Messages
	r.Retries += o.Retries
	r.Dropped += o.Dropped
	r.BlockedSeconds += o.BlockedSeconds
	r.DeadSites = mergeSites(r.DeadSites, o.DeadSites)
	r.DegradedPairs = mergePairs(r.DegradedPairs, o.DegradedPairs)
}

func mergeSites(a, b []int) []int {
	seen := map[int]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		seen[s] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func mergePairs(a, b [][2]int) [][2]int {
	seen := map[[2]int]bool{}
	for _, p := range a {
		seen[p] = true
	}
	for _, p := range b {
		seen[p] = true
	}
	out := make([][2]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// String renders a one-paragraph human summary.
func (r *Report) String() string {
	if r == nil {
		return "fault report: none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault report (%s): %d messages, %d retries, %d dropped, %.2fs blocked",
		r.Schedule, r.Messages, r.Retries, r.Dropped, r.BlockedSeconds.Float())
	if len(r.DeadSites) > 0 {
		fmt.Fprintf(&b, "; dead sites %v", r.DeadSites)
	}
	if len(r.DegradedPairs) > 0 {
		fmt.Fprintf(&b, "; %d degraded site pairs", len(r.DegradedPairs))
	}
	return b.String()
}
