// Package faults is the deterministic WAN fault-injection layer: a
// Schedule of timed fault events — site outages, link downs, bandwidth
// degradation, latency spikes, probe/packet loss — that the network
// simulator (internal/netsim), the calibrator (internal/calib), and the
// failure-aware remapper (core.Remap) all consult.
//
// The paper treats the WAN as static once calibrated, but its own Table 2
// measurements show geo-distributed bandwidth drifting at runtime and
// links failing outright; a mapping that was optimal at calibration time
// can silently become the worst one. This package makes that drift a
// first-class, reproducible input: every schedule is a plain value, every
// stochastic element (loss draws, preset window placement) flows through
// either a seeded *rand.Rand at construction time or the stateless Hash01
// draw at query time, so two runs with the same seed and schedule are
// byte-identical — and a shared Simulator stays free of data races because
// queries never mutate anything.
//
// Schedules come from three sources: the presets (FlakyWAN, SiteBlackout,
// DiurnalDrift), a JSON file, or literal construction. FromSpec resolves a
// command-line "-faults" argument into whichever of the first two applies.
package faults

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"geoprocmap/internal/stats"
)

// Kind enumerates the fault event types.
type Kind string

const (
	// SiteOutage takes a whole site down: every link touching it — and
	// every process on it — is unreachable for the event window.
	SiteOutage Kind = "site-outage"
	// LinkDown takes one directed site-pair link down.
	LinkDown Kind = "link-down"
	// BandwidthDegrade multiplies a link's bandwidth by Factor (0 < Factor ≤ 1).
	BandwidthDegrade Kind = "bandwidth-degrade"
	// LatencySpike multiplies a link's latency by Factor (Factor ≥ 1).
	LatencySpike Kind = "latency-spike"
	// ProbeLoss drops each transmission attempt on a link independently
	// with the given Probability.
	ProbeLoss Kind = "probe-loss"
)

// Wildcard matches any site in an event's Src/Dst field.
const Wildcard = -1

// Event is one timed fault. The window is [Start, End) in simulation
// seconds; End ≤ Start (including the zero value) means open-ended.
type Event struct {
	Kind  Kind    `json:"kind"`
	Start float64 `json:"start"`
	End   float64 `json:"end,omitempty"`
	// Site is the affected site for SiteOutage events.
	Site int `json:"site,omitempty"`
	// Src and Dst select the directed link for link-scoped events;
	// Wildcard (-1) matches any site.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// Factor is the bandwidth multiplier (BandwidthDegrade) or latency
	// multiplier (LatencySpike).
	Factor float64 `json:"factor,omitempty"`
	// Probability is the per-attempt loss probability (ProbeLoss).
	Probability float64 `json:"probability,omitempty"`
}

// openEnded reports whether the event never ends.
func (e Event) openEnded() bool { return e.End <= e.Start }

// covers reports whether the event is active at time t.
func (e Event) covers(t float64) bool {
	return t >= e.Start && (e.openEnded() || t < e.End)
}

// matchesLink reports whether a link-scoped event applies to the directed
// pair (k, l).
func (e Event) matchesLink(k, l int) bool {
	return (e.Src == Wildcard || e.Src == k) && (e.Dst == Wildcard || e.Dst == l)
}

// Schedule is a named, seeded set of fault events. The zero value (or nil)
// is a fault-free schedule.
type Schedule struct {
	// Name identifies the schedule in reports ("FlakyWAN", a file path, …).
	Name string `json:"name"`
	// Seed drives the stateless per-message loss draws (Hash01) and, for
	// presets, the window placement chosen at construction.
	Seed int64 `json:"seed"`
	// Events are the timed faults; order is irrelevant.
	Events []Event `json:"events"`
}

// Validate checks the schedule against a deployment of m sites.
func (s *Schedule) Validate(m int) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		switch e.Kind {
		case SiteOutage:
			if e.Site < 0 || e.Site >= m {
				return fmt.Errorf("faults: event %d: site %d out of range [0,%d)", i, e.Site, m)
			}
		case LinkDown, BandwidthDegrade, LatencySpike, ProbeLoss:
			for _, s := range []int{e.Src, e.Dst} {
				if s != Wildcard && (s < 0 || s >= m) {
					return fmt.Errorf("faults: event %d: endpoint %d out of range [0,%d)", i, s, m)
				}
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
		switch e.Kind {
		case BandwidthDegrade:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("faults: event %d: bandwidth factor %v outside (0,1]", i, e.Factor)
			}
		case LatencySpike:
			if e.Factor < 1 {
				return fmt.Errorf("faults: event %d: latency factor %v below 1", i, e.Factor)
			}
		case ProbeLoss:
			if e.Probability < 0 || e.Probability >= 1 {
				return fmt.Errorf("faults: event %d: loss probability %v outside [0,1)", i, e.Probability)
			}
		}
		if e.Start < 0 {
			return fmt.Errorf("faults: event %d: negative start %v", i, e.Start)
		}
	}
	return nil
}

// Empty reports whether the schedule injects no faults.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// LinkState is the effective condition of one directed site-pair link at a
// point in time.
type LinkState struct {
	// Down is true when the link is unusable: a LinkDown covers it or
	// either endpoint site is in outage.
	Down bool
	// BWFactor multiplies the link's bandwidth (product of active
	// degradations; 1 when none).
	BWFactor float64
	// LatFactor multiplies the link's latency (max of active spikes; 1
	// when none).
	LatFactor float64
	// LossProb is the per-attempt loss probability (max of active events).
	LossProb float64
}

// SiteDown reports whether site k is in outage at time t.
func (s *Schedule) SiteDown(k int, t float64) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == SiteOutage && e.Site == k && e.covers(t) {
			return true
		}
	}
	return false
}

// Link returns the state of the directed link (k, l) at time t, folding in
// endpoint site outages. Intra-site "links" (k == l) are affected by a site
// outage of k but not by link-scoped wildcard events, which model the WAN.
func (s *Schedule) Link(k, l int, t float64) LinkState {
	st := LinkState{BWFactor: 1, LatFactor: 1}
	if s == nil {
		return st
	}
	for _, e := range s.Events {
		if !e.covers(t) {
			continue
		}
		switch e.Kind {
		case SiteOutage:
			if e.Site == k || e.Site == l {
				st.Down = true
			}
		case LinkDown:
			if k != l && e.matchesLink(k, l) {
				st.Down = true
			}
		case BandwidthDegrade:
			if k != l && e.matchesLink(k, l) {
				st.BWFactor *= e.Factor
			}
		case LatencySpike:
			if k != l && e.matchesLink(k, l) && e.Factor > st.LatFactor {
				st.LatFactor = e.Factor
			}
		case ProbeLoss:
			if k != l && e.matchesLink(k, l) && e.Probability > st.LossProb {
				st.LossProb = e.Probability
			}
		}
	}
	return st
}

// NextLinkRecovery returns the earliest time ≥ t at which the directed link
// (k, l) is not down, or +Inf when it never recovers (an open-ended outage
// covers it). Overlapping and back-to-back outage windows are chased to
// their joint end.
func (s *Schedule) NextLinkRecovery(k, l int, t float64) float64 {
	if s == nil {
		return t
	}
	r := t
	// Each pass either leaves r fixed (recovered) or advances it past the
	// end of a covering outage; at most one advance per event suffices.
	for pass := 0; pass <= len(s.Events); pass++ {
		advanced := false
		for _, e := range s.Events {
			down := (e.Kind == SiteOutage && (e.Site == k || e.Site == l)) ||
				(e.Kind == LinkDown && k != l && e.matchesLink(k, l))
			if !down || !e.covers(r) {
				continue
			}
			if e.openEnded() {
				return math.Inf(1)
			}
			if e.End > r {
				r = e.End
				advanced = true
			}
		}
		if !advanced {
			return r
		}
	}
	return r
}

// Summary reports which of the m sites were ever in outage and which
// directed site pairs saw any degradation (link down, bandwidth loss,
// latency spike, or packet loss) during [t0, t1]. It drives the DeadSites
// and DegradedPairs fields of a Report.
func (s *Schedule) Summary(m int, t0, t1 float64) (deadSites []int, degradedPairs [][2]int) {
	if s == nil {
		return nil, nil
	}
	overlaps := func(e Event) bool {
		return e.Start <= t1 && (e.openEnded() || e.End > t0)
	}
	dead := map[int]bool{}
	deg := map[[2]int]bool{}
	for _, e := range s.Events {
		if !overlaps(e) {
			continue
		}
		switch e.Kind {
		case SiteOutage:
			if e.Site >= 0 && e.Site < m {
				dead[e.Site] = true
			}
		case LinkDown, BandwidthDegrade, LatencySpike, ProbeLoss:
			for k := 0; k < m; k++ {
				for l := 0; l < m; l++ {
					if k != l && e.matchesLink(k, l) {
						deg[[2]int{k, l}] = true
					}
				}
			}
		}
	}
	for k := range dead {
		deadSites = append(deadSites, k)
	}
	sort.Ints(deadSites)
	for p := range deg {
		degradedPairs = append(degradedPairs, p)
	}
	sort.Slice(degradedPairs, func(i, j int) bool {
		if degradedPairs[i][0] != degradedPairs[j][0] {
			return degradedPairs[i][0] < degradedPairs[j][0]
		}
		return degradedPairs[i][1] < degradedPairs[j][1]
	})
	return deadSites, degradedPairs
}

// --- presets --------------------------------------------------------------

// PresetNames lists the built-in schedules accepted by Preset and FromSpec.
func PresetNames() []string { return []string{"FlakyWAN", "SiteBlackout", "DiurnalDrift"} }

// Preset builds a named preset for a deployment of m sites. Names are
// case-insensitive.
func Preset(name string, m int, seed int64) (*Schedule, error) {
	if m < 1 {
		return nil, fmt.Errorf("faults: preset for %d sites", m)
	}
	switch strings.ToLower(name) {
	case "flakywan":
		return FlakyWAN(m, seed), nil
	case "siteblackout":
		return SiteBlackout(m, seed), nil
	case "diurnaldrift":
		return DiurnalDrift(m, seed), nil
	}
	return nil, fmt.Errorf("faults: unknown preset %q (known: %v)", name, PresetNames())
}

// FlakyWAN models an unreliable WAN: every cross-site link loses 5% of
// transmission attempts, and a handful of seeded short outage and
// degradation windows (5–20 s, within the first 120 s) hit random directed
// pairs. Same m and seed ⇒ identical schedule.
func FlakyWAN(m int, seed int64) *Schedule {
	s := &Schedule{Name: "FlakyWAN", Seed: seed}
	s.Events = append(s.Events, Event{Kind: ProbeLoss, Src: Wildcard, Dst: Wildcard, Probability: 0.05})
	rng := stats.NewRand(seed ^ 0x666c616b79) // "flaky"
	windows := 2 * m
	for w := 0; w < windows; w++ {
		k := rng.Intn(m)
		l := rng.Intn(m)
		if k == l {
			l = (l + 1) % m
		}
		if m == 1 {
			break
		}
		start := rng.Float64() * 120
		dur := 5 + rng.Float64()*15
		if w%2 == 0 {
			// Hard flap: both directions down.
			s.Events = append(s.Events,
				Event{Kind: LinkDown, Start: start, End: start + dur, Src: k, Dst: l},
				Event{Kind: LinkDown, Start: start, End: start + dur, Src: l, Dst: k})
		} else {
			// Soft flap: the pair drops to 40% bandwidth with doubled latency.
			s.Events = append(s.Events,
				Event{Kind: BandwidthDegrade, Start: start, End: start + dur, Src: k, Dst: l, Factor: 0.4},
				Event{Kind: LatencySpike, Start: start, End: start + dur, Src: k, Dst: l, Factor: 2})
		}
	}
	return s
}

// BlackoutStart is when the SiteBlackout preset's outage begins: late
// enough that calibration and the first communication phases see a healthy
// network, so the stale-vs-remapped comparison is meaningful.
const BlackoutStart = 3.0

// SiteBlackout models a permanent regional failure: one seeded-random site
// goes dark at BlackoutStart seconds and never recovers.
func SiteBlackout(m int, seed int64) *Schedule {
	rng := stats.NewRand(seed ^ 0x626c61636b) // "black"
	return &Schedule{
		Name: "SiteBlackout",
		Seed: seed,
		Events: []Event{
			{Kind: SiteOutage, Start: BlackoutStart, Site: rng.Intn(m)},
		},
	}
}

// DiurnalDrift models the paper's Table 2 observation that WAN bandwidth
// drifts over the day, compressed so one "day" lasts 240 simulated
// seconds. Congestion follows the sun: each site's cross links (both
// directions) collapse to 45% bandwidth and 1.8× latency during that
// region's staggered local business window, on top of a mild global
// off-peak dip early in each cycle. The peak rotating around the regions
// is what distinguishes drift from uniform scaling — at any moment some
// region is the wrong place to be, and which one changes over the day.
func DiurnalDrift(m int, seed int64) *Schedule {
	s := &Schedule{Name: "DiurnalDrift", Seed: seed}
	rng := stats.NewRand(seed ^ 0x6472696674) // "drift"
	const period = 240.0
	stagger := period / float64(m)
	for cycle := 0; cycle < 4; cycle++ {
		base := float64(cycle) * period
		// Early off-peak: a mild global dip (all cross links), too small to
		// count as drift on its own.
		mild := 0.90 * (1 + 0.05*(2*rng.Float64()-1))
		if mild > 1 {
			mild = 1
		}
		s.Events = append(s.Events, Event{
			Kind: BandwidthDegrade, Start: base, End: base + stagger,
			Src: Wildcard, Dst: Wildcard, Factor: mild,
		})
		for site := 0; site < m; site++ {
			// Site-local peak window, ±5% seeded wobble so cycles are not
			// carbon copies. Both directions of every cross link touching
			// the peaking region degrade together.
			start := base + float64(site)*stagger
			bw := 0.45 * (1 + 0.05*(2*rng.Float64()-1))
			if bw > 1 {
				bw = 1
			}
			for _, dir := range []struct{ src, dst int }{{site, Wildcard}, {Wildcard, site}} {
				s.Events = append(s.Events,
					Event{
						Kind: BandwidthDegrade, Start: start, End: start + stagger,
						Src: dir.src, Dst: dir.dst, Factor: bw,
					},
					Event{
						Kind: LatencySpike, Start: start, End: start + stagger,
						Src: dir.src, Dst: dir.dst, Factor: 1.8,
					})
			}
		}
	}
	return s
}

// --- JSON and spec resolution --------------------------------------------

// ParseJSON decodes a schedule from JSON and validates it against m sites.
func ParseJSON(data []byte, m int) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("faults: parsing schedule: %w", err)
	}
	if err := s.Validate(m); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a JSON schedule from disk.
func LoadFile(path string, m int) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	s, err := ParseJSON(data, m)
	if err != nil {
		return nil, err
	}
	if s.Name == "" {
		s.Name = path
	}
	return s, nil
}

// FromSpec resolves a command-line fault spec: a preset name (see
// PresetNames, case-insensitive) or a path to a JSON schedule file. Presets
// get the supplied seed; file schedules keep their own seed field.
func FromSpec(spec string, m int, seed int64) (*Schedule, error) {
	if spec == "" {
		return nil, nil
	}
	if s, err := Preset(spec, m, seed); err == nil {
		return s, nil
	} else if _, statErr := os.Stat(spec); statErr != nil {
		// Neither a preset nor a readable file: surface the preset error,
		// which lists the valid names.
		return nil, err
	}
	return LoadFile(spec, m)
}
