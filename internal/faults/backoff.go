package faults

import (
	"math"
	"math/rand"

	"geoprocmap/internal/units"
)

// Backoff defaults shared by the simulator and the calibrator. All values
// are simulated seconds — nothing in this repository actually sleeps.
const (
	// DefaultBackoffBase is the first retry delay.
	DefaultBackoffBase = units.Seconds(0.25)
	// DefaultBackoffCap bounds any single retry delay.
	DefaultBackoffCap = units.Seconds(8.0)
	// DefaultMaxAttempts bounds transmission attempts per message.
	DefaultMaxAttempts = 8
)

// Backoff returns the capped exponential delay before retry attempt
// (0-based): base·2^attempt clamped to cap, with ±25% jitter drawn from rng
// when rng is non-nil. It is the shared helper the geolint sleepretry rule
// requires retry loops to use, so no retry path can reintroduce an
// unbounded or un-jittered busy-wait.
func Backoff(attempt int, base, cap units.Seconds, rng *rand.Rand) units.Seconds {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if attempt < 0 {
		attempt = 0
	}
	d := base.Scale(math.Pow(2, float64(attempt)))
	if d > cap {
		d = cap
	}
	if rng != nil {
		d = d.Scale(1 + 0.25*(2*rng.Float64()-1))
	}
	return d
}

// BackoffTotal returns the cumulative delay of n capped exponential retry
// waits without jitter — the deterministic accounting the simulator uses
// for blocked time, so a shared Simulator needs no mutable RNG.
func BackoffTotal(n int, base, cap units.Seconds) units.Seconds {
	var total units.Seconds
	for i := 0; i < n; i++ {
		total += Backoff(i, base, cap, nil)
	}
	return total
}

// AttemptsForWait returns how many backoff-spaced retry probes a sender
// issues while waiting `wait` seconds for a link to recover: the smallest n
// with BackoffTotal(n) ≥ wait (at least 1 for any positive wait).
func AttemptsForWait(wait, base, cap units.Seconds) int {
	if wait <= 0 {
		return 0
	}
	n := 0
	var total units.Seconds
	for total < wait && n < 64 {
		total += Backoff(n, base, cap, nil)
		n++
	}
	return n
}

// Hash01 maps a seed and a key sequence to a uniform [0, 1) value with a
// splitmix64-style mixer. It is the stateless substitute for rng.Float64()
// in code that must be callable concurrently on shared values (the
// simulator's per-message loss draws): same inputs, same draw, no data
// races, bit-reproducible across runs.
func Hash01(seed int64, keys ...int64) float64 {
	x := splitmix64(uint64(seed))
	for _, k := range keys {
		x = splitmix64(x ^ splitmix64(uint64(k)))
	}
	// 53 mantissa bits → uniform float64 in [0, 1).
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a full-avalanche
// 64-bit mixer.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Attempts returns the deterministic number of transmission attempts a
// message needs under per-attempt loss probability p: consecutive Hash01
// draws below p are losses, the first at-or-above p succeeds, capped at max
// (DefaultMaxAttempts when max ≤ 0). Zero p is a single attempt.
func Attempts(seed int64, msgKey int64, p float64, max int) int {
	if max <= 0 {
		max = DefaultMaxAttempts
	}
	if p <= 0 {
		return 1
	}
	n := 1
	for n < max && Hash01(seed, msgKey, int64(n)) < p {
		n++
	}
	return n
}
