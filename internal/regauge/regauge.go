// Package regauge closes the calibration loop: a background control
// loop that periodically re-probes the WAN with a reduced-budget
// calibration pass, detects drift against the last published network
// snapshot, publishes refreshed snapshots into the serving Store, and
// re-evaluates cached placements against the new model — migrating only
// when the predicted saving amortizes the migration cost with a safety
// margin (WANify-style runtime re-gauging feeding placement).
//
// The loop is built from the repository's existing deterministic parts:
// calib probes the synthetic cloud against a fault schedule on a
// schedule clock, stats.TrimmedMean smooths per-pair estimate windows so
// one noisy pass cannot flap the model, and core.Remap prices each
// migration. All randomness derives from the configured seed plus the
// pass number, and the loop ticks on an injected schedule clock, so a
// full gauging history — published versions, remap decisions, placement
// digests — is byte-identical run to run at any worker count.
//
// Failure handling follows a small mode ladder: a failed pass (probe
// error, or too large a fraction of samples lost) moves the gauger from
// "ok" to "suspect"; MaxFailures consecutive failures escalate to
// "degraded", which freezes publication so a blind gauger cannot push a
// timeout-fallback model over a good one; recovery requires two
// consecutive clean passes ("recovering" in between). After failures
// the next pass is delayed by capped, seeded-jitter backoff on top of
// the base interval.
package regauge

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/service"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// SnapshotPublisher is where the gauger reads the serving model and
// publishes refreshed snapshots. *service.Store satisfies it directly;
// *service.Replicator wraps a store with cluster fan-out so a clustered
// daemon's publications reach every peer version-ordered.
type SnapshotPublisher interface {
	Current() *service.Snapshot
	Publish(*service.Snapshot) (uint64, error)
}

// Gauger modes, in escalation order.
const (
	ModeOK         = "ok"         // last pass clean, publication live
	ModeSuspect    = "suspect"    // at least one recent failed pass
	ModeDegraded   = "degraded"   // MaxFailures consecutive failures; publication frozen
	ModeRecovering = "recovering" // first clean pass after degraded; one more to exit
)

// Pass outcomes.
const (
	OutcomeGaugeFailed = "gauge-failed" // the calibration pass itself failed
	OutcomeFrozen      = "frozen"       // drift seen but publication frozen (degraded/recovering)
	OutcomeSteady      = "steady"       // clean pass, no drift, nothing published
	OutcomePublished   = "published"    // new snapshot published (and targets walked)
)

// Decision actions.
const (
	ActionTriggered  = "triggered"  // remap applied to the target
	ActionCooldown   = "cooldown"   // suppressed: target inside its cooldown window
	ActionUneconomic = "uneconomic" // suppressed: no move beats migration cost × safety
	ActionError      = "error"      // target could not be evaluated
)

// Config assembles a Gauger. Zero values select the noted defaults.
type Config struct {
	// Cloud is the synthetic network the reduced-budget passes probe;
	// required.
	Cloud *netmodel.Cloud
	// Store receives published snapshots; required. A single-node daemon
	// passes its *service.Store directly; a clustered one passes a
	// *service.Replicator so every publication fans out to the fleet.
	Store SnapshotPublisher
	// Source supplies the placements to re-evaluate after a publication
	// and applies remapped results back. nil walks nothing.
	Source TargetSource
	// Faults is the fault schedule the probes run against (nil = healthy).
	Faults *faults.Schedule
	// Seed drives every random draw; pass p uses Seed + p.
	Seed int64

	// Interval is the schedule time between passes (default 30 s).
	Interval units.Seconds
	// Samples is the per-pair probe budget of one pass (default 3 —
	// the reduced budget that makes continuous re-gauging affordable
	// next to a full calibration's Days × SamplesPerDay).
	Samples int
	// ProbeSpacing is the schedule time between a pair's samples
	// (default 1 s).
	ProbeSpacing units.Seconds
	// ProbeTimeout bounds one probe attempt (default 5 s).
	ProbeTimeout units.Seconds
	// MaxRetries bounds retries per probe sample (default 2).
	MaxRetries int

	// DriftThreshold is the relative per-pair change (against the
	// currently published model) that counts as drift (default 0.15).
	DriftThreshold float64
	// Window is how many recent passes each pair's estimate window
	// retains (default 3).
	Window int
	// TrimFraction is the trimmed-mean fraction applied to each window
	// (default 0.34 — with the default window of 3 this is a median,
	// rejecting a single outlier pass).
	TrimFraction float64

	// SafetyFactor is the hysteresis margin: a remap triggers only when
	// predicted saving > migration time × SafetyFactor (default 2).
	SafetyFactor float64
	// Cooldown is the per-target schedule time after a triggered remap
	// during which further remaps are suppressed (default 3 × Interval).
	Cooldown units.Seconds
	// HorizonIterations credits a remap's per-iteration saving over this
	// many future iterations (default 100, matching core.RemapOptions).
	HorizonIterations float64
	// ImageBytes is the per-process migration payload (default 64 MB,
	// matching core.RemapOptions).
	ImageBytes units.Bytes
	// SolverWorkers is the order-search parallelism of re-solve
	// candidates (default 1). It never changes results — the parallel
	// search's deterministic reduction is byte-identical at any count.
	SolverWorkers int

	// MaxFailures is how many consecutive failed passes escalate the
	// gauger to degraded mode (default 3).
	MaxFailures int
	// FailureBar is the failed-sample fraction at or above which a pass
	// counts as failed (default 0.5).
	FailureBar float64

	// Timescale converts schedule seconds to wall time in Run: wall wait
	// = schedule wait / Timescale (default 1; the smoke test runs at a
	// few hundred× so a 30 s gauge interval ticks in wall milliseconds).
	Timescale float64
	// Logf receives one line per pass; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	switch {
	case c.Cloud == nil:
		return c, fmt.Errorf("regauge: Config.Cloud is required")
	case c.Store == nil:
		return c, fmt.Errorf("regauge: Config.Store is required")
	case c.Interval < 0 || c.ProbeSpacing < 0 || c.ProbeTimeout < 0 || c.Cooldown < 0:
		return c, fmt.Errorf("regauge: negative duration in Config")
	case c.Samples < 0 || c.MaxRetries < 0 || c.Window < 0 || c.MaxFailures < 0:
		return c, fmt.Errorf("regauge: negative count in Config")
	case c.DriftThreshold < 0 || c.TrimFraction < 0 || c.TrimFraction >= 0.5:
		return c, fmt.Errorf("regauge: drift/trim parameter out of range")
	case c.SafetyFactor < 0 || c.FailureBar < 0 || c.FailureBar > 1 || c.Timescale < 0:
		return c, fmt.Errorf("regauge: safety/failure/timescale parameter out of range")
	}
	if c.Interval <= 0 {
		c.Interval = units.Seconds(30)
	}
	if c.Samples == 0 {
		c.Samples = 3
	}
	if c.ProbeSpacing <= 0 {
		c.ProbeSpacing = units.Seconds(1)
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = units.Seconds(5)
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.15
	}
	if c.Window == 0 {
		c.Window = 3
	}
	if c.TrimFraction <= 0 {
		c.TrimFraction = 0.34
	}
	if c.SafetyFactor <= 0 {
		c.SafetyFactor = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Interval.Scale(3)
	}
	if c.HorizonIterations <= 0 {
		c.HorizonIterations = 100
	}
	if c.ImageBytes <= 0 {
		c.ImageBytes = units.Bytes(64 << 20)
	}
	if c.SolverWorkers <= 0 {
		c.SolverWorkers = 1
	}
	if c.MaxFailures == 0 {
		c.MaxFailures = 3
	}
	if c.FailureBar <= 0 {
		c.FailureBar = 0.5
	}
	if c.Timescale <= 0 {
		c.Timescale = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Decision records how one target fared after a publication.
type Decision struct {
	Pass   int    `json:"pass"`
	Target string `json:"target"`
	Action string `json:"action"`
	// Moved is the number of migrated processes (ActionTriggered only).
	Moved int `json:"moved,omitempty"`
	// SavingSeconds is the predicted horizon-credited saving of the
	// evaluated remap; MigrationSeconds its one-off migration time.
	SavingSeconds    float64 `json:"saving_seconds,omitempty"`
	MigrationSeconds float64 `json:"migration_seconds,omitempty"`
}

// PassResult summarizes one gauge pass.
type PassResult struct {
	Pass int `json:"pass"`
	// At is the schedule time the pass probed at.
	At      units.Seconds `json:"at_seconds"`
	Outcome string        `json:"outcome"`
	Mode    string        `json:"mode"`
	// PublishedVersion is the snapshot version published by this pass
	// (0 when nothing was published).
	PublishedVersion uint64 `json:"published_version,omitempty"`
	// DriftedPairs lists the site pairs whose smoothed estimate moved
	// more than DriftThreshold against the published model.
	DriftedPairs [][2]int `json:"drifted_pairs,omitempty"`
	// DeadSites lists the sites every probe direction failed for.
	DeadSites []int `json:"dead_sites,omitempty"`
	// MaxDrift is the largest relative per-pair change observed.
	MaxDrift float64 `json:"max_drift"`
	// FailedFraction is the fraction of probe samples lost this pass.
	FailedFraction float64 `json:"failed_fraction"`
	// Decisions records the target walk of a publishing pass.
	Decisions []Decision `json:"decisions,omitempty"`
	// NextWait is the schedule time until the next pass (Interval, plus
	// capped jittered backoff after failures).
	NextWait units.Seconds `json:"next_wait_seconds"`
}

// Status is the point-in-time view /healthz and /metrics render.
type Status struct {
	Mode                 string  `json:"mode"`
	Pass                 int     `json:"pass"`
	LastOutcome          string  `json:"last_outcome,omitempty"`
	LastAtSeconds        float64 `json:"last_at_seconds"`
	ConsecutiveFailures  int     `json:"consecutive_failures"`
	GaugeFailures        uint64  `json:"gauge_failures"`
	Published            uint64  `json:"snapshots_published"`
	LastPublishedVersion uint64  `json:"last_published_version,omitempty"`
	RemapsTriggered      uint64  `json:"remaps_triggered"`
	SuppressedCooldown   uint64  `json:"remaps_suppressed_cooldown"`
	SuppressedUneconomic uint64  `json:"remaps_suppressed_uneconomic"`
	MaxDrift             float64 `json:"last_max_drift"`
}

// Gauger is the re-gauging control loop. Step runs one pass and must be
// called from a single goroutine (Run does); Status is safe to call
// concurrently with Step.
type Gauger struct {
	cfg Config
	m   int

	// Step-only state: windows of recent per-pair estimates (row-major
	// k*m+l), the dead set of the last published model, the failure
	// ladder, per-target cooldown deadlines, and the lifetime counters
	// (copied into the locked status view at the end of each pass).
	pass          int
	winLT, winBT  [][]float64
	sm            stats.Scratch // reused by smooth's trimmed means, one window at a time
	lastDead      []int
	consecFails   int
	consecOKs     int
	mode          string
	cooldownUntil map[string]units.Seconds
	published     uint64
	lastVersion   uint64
	remaps        uint64
	supCooldown   uint64
	supUneconomic uint64
	gaugeFailures uint64

	mu     sync.Mutex
	status Status
}

// New builds a Gauger. The initial mode is ok and the drift baseline is
// whatever the Store currently serves.
func New(cfg Config) (*Gauger, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := c.Cloud.M()
	if cur := c.Store.Current(); cur.M() != m {
		return nil, fmt.Errorf("regauge: store serves %d sites, cloud has %d", cur.M(), m)
	}
	g := &Gauger{
		cfg:           c,
		m:             m,
		winLT:         make([][]float64, m*m),
		winBT:         make([][]float64, m*m),
		mode:          ModeOK,
		cooldownUntil: map[string]units.Seconds{},
	}
	g.status = Status{Mode: ModeOK}
	return g, nil
}

// Step runs one gauge pass at schedule time now: probe, smooth, detect
// drift, maybe publish, maybe remap. It returns the pass summary and
// updates the Status view.
func (g *Gauger) Step(now units.Seconds) PassResult {
	g.pass++
	pr := PassResult{Pass: g.pass, At: now, NextWait: g.cfg.Interval}
	passSeed := g.cfg.Seed + int64(g.pass)

	res, failedFrac, err := g.probe(now, passSeed)
	pr.FailedFraction = failedFrac
	if err != nil || failedFrac >= g.cfg.FailureBar {
		g.consecFails++
		g.consecOKs = 0
		if g.consecFails >= g.cfg.MaxFailures {
			g.mode = ModeDegraded
		} else {
			g.mode = ModeSuspect
		}
		pr.Outcome = OutcomeGaugeFailed
		pr.Mode = g.mode
		// Jittered, capped backoff on top of the interval keeps a
		// struggling gauger from hammering a broken network in sync with
		// whatever is breaking it. The jitter draws from the pass seed,
		// so the whole schedule stays reproducible.
		rng := stats.NewRand(passSeed)
		pr.NextWait = g.cfg.Interval +
			faults.Backoff(g.consecFails-1, g.cfg.Interval.Scale(0.5), g.cfg.Interval.Scale(4), rng)
		if err != nil {
			g.cfg.Logf("regauge: pass %d failed: %v", g.pass, err)
		} else {
			g.cfg.Logf("regauge: pass %d failed: %.0f%% of samples lost", g.pass, failedFrac*100)
		}
		g.recordStatus(pr, true)
		return pr
	}

	// Clean pass: walk the recovery ladder before deciding anything, so
	// a degraded gauger needs two consecutive clean passes to publish.
	g.consecFails = 0
	g.consecOKs++
	switch g.mode {
	case ModeDegraded:
		g.mode = ModeRecovering
	case ModeRecovering:
		if g.consecOKs >= 2 {
			g.mode = ModeOK
		}
	case ModeSuspect:
		g.mode = ModeOK
	}

	smLT, smBT := g.smooth(res)
	published := g.cfg.Store.Current()
	drifted, worse, maxDrift := g.drift(smLT, smBT, published)
	dead := deadSites(res.Unreachable)
	pr.DriftedPairs = drifted
	pr.DeadSites = dead
	pr.MaxDrift = maxDrift
	pr.Mode = g.mode

	if len(drifted) == 0 && equalInts(dead, g.lastDead) {
		pr.Outcome = OutcomeSteady
		g.recordStatus(pr, false)
		return pr
	}
	if g.mode != ModeOK {
		// Drift seen, but the gauger has not fully recovered: freezing
		// publication here is what keeps a half-blind pass from swapping
		// a timeout-fallback model in for a good one.
		pr.Outcome = OutcomeFrozen
		g.cfg.Logf("regauge: pass %d saw drift (max %.2f) but publication is frozen (%s)", g.pass, maxDrift, g.mode)
		g.recordStatus(pr, false)
		return pr
	}

	version, err := g.publish(smLT, smBT, res)
	if err != nil {
		g.cfg.Logf("regauge: pass %d publish failed: %v", g.pass, err)
		pr.Outcome = OutcomeGaugeFailed
		g.recordStatus(pr, true)
		return pr
	}
	g.lastDead = dead
	pr.PublishedVersion = version
	pr.Outcome = OutcomePublished
	pr.Decisions = g.walkTargets(now, version, dead, worse)
	g.cfg.Logf("regauge: pass %d published v%d (max drift %.2f, %d drifted pairs, %d dead sites, %d decisions)",
		g.pass, version, maxDrift, len(drifted), len(dead), len(pr.Decisions))
	g.recordStatus(pr, false)
	return pr
}

// probe runs the reduced-budget calibration pass and returns the result
// plus the fraction of samples lost.
func (g *Gauger) probe(now units.Seconds, passSeed int64) (*calib.Result, float64, error) {
	res, err := calib.Calibrate(g.cfg.Cloud, calib.Options{
		Days:             1,
		SamplesPerDay:    g.cfg.Samples,
		PairProbeSeconds: g.cfg.ProbeSpacing,
		ProbeTimeout:     g.cfg.ProbeTimeout,
		MaxRetries:       g.cfg.MaxRetries,
		Faults:           g.cfg.Faults,
		Seed:             passSeed,
		Start:            now,
	})
	if err != nil {
		return nil, 1, err
	}
	total := g.m * g.m * g.cfg.Samples
	return res, float64(res.FailedSamples) / float64(total), nil
}

// smooth pushes this pass's estimates into the per-pair windows and
// returns the trimmed-mean smoothed matrices.
func (g *Gauger) smooth(res *calib.Result) (*mat.Matrix, *mat.Matrix) {
	smLT := mat.NewSquare(g.m)
	smBT := mat.NewSquare(g.m)
	for k := 0; k < g.m; k++ {
		for l := 0; l < g.m; l++ {
			i := k*g.m + l
			g.winLT[i] = pushWindow(g.winLT[i], res.LT.At(k, l), g.cfg.Window)
			g.winBT[i] = pushWindow(g.winBT[i], res.BT.At(k, l), g.cfg.Window)
			smLT.Set(k, l, g.sm.TrimmedMean(g.winLT[i], g.cfg.TrimFraction))
			smBT.Set(k, l, g.sm.TrimmedMean(g.winBT[i], g.cfg.TrimFraction))
		}
	}
	return smLT, smBT
}

// drift compares smoothed estimates against the published model and
// returns the drifted inter-site pairs, the subset that got worse
// (slower or thinner — the pairs remapping can route around), and the
// largest relative change seen.
func (g *Gauger) drift(smLT, smBT *mat.Matrix, published *service.Snapshot) (drifted, worse [][2]int, maxDrift float64) {
	for k := 0; k < g.m; k++ {
		for l := 0; l < g.m; l++ {
			if k == l {
				continue
			}
			relLT := relChange(smLT.At(k, l), published.LT.At(k, l))
			relBT := relChange(smBT.At(k, l), published.BT.At(k, l))
			d := relLT
			if relBT > d {
				d = relBT
			}
			if d > maxDrift {
				maxDrift = d
			}
			if d <= g.cfg.DriftThreshold {
				continue
			}
			pair := [2]int{k, l}
			drifted = append(drifted, pair)
			if smLT.At(k, l) > published.LT.At(k, l) || smBT.At(k, l) < published.BT.At(k, l) {
				worse = append(worse, pair)
			}
		}
	}
	return drifted, worse, maxDrift
}

// publish builds a snapshot from the smoothed matrices and installs it.
func (g *Gauger) publish(smLT, smBT *mat.Matrix, res *calib.Result) (uint64, error) {
	fab := &calib.Result{LT: smLT, BT: smBT, Degraded: res.Degraded}
	snap, err := service.SnapshotFromCalibration(g.cfg.Cloud, fab)
	if err != nil {
		return 0, err
	}
	snap.Source = "regauge"
	return g.cfg.Store.Publish(snap)
}

// walkTargets re-evaluates every cached placement against the freshly
// published snapshot. Placements touching dead sites are evacuated
// unconditionally; everything else passes the cooldown gate and the
// migration-cost hysteresis before a remap is applied.
func (g *Gauger) walkTargets(now units.Seconds, version uint64, dead []int, worse [][2]int) []Decision {
	if g.cfg.Source == nil {
		return nil
	}
	snap := g.cfg.Store.Current()
	var out []Decision
	for _, t := range g.cfg.Source.Targets() {
		if t.Request == nil || t.Result == nil || t.Problem == nil {
			continue
		}
		d := Decision{Pass: g.pass, Target: t.Key}
		pl := core.Placement(t.Result.Placement)
		forced := touchesDead(pl, dead)
		if !forced && now < g.cooldownUntil[t.Key] {
			d.Action = ActionCooldown
			g.supCooldown++
			out = append(out, d)
			continue
		}
		prob, err := t.Problem(snap)
		if err != nil {
			d.Action = ActionError
			g.cfg.Logf("regauge: target %.12s: %v", t.Key, err)
			out = append(out, d)
			continue
		}
		rr, err := g.bestRemap(t, prob, pl, dead, worse)
		if err != nil {
			d.Action = ActionError
			g.cfg.Logf("regauge: target %.12s remap: %v", t.Key, err)
			out = append(out, d)
			continue
		}
		saving := (rr.CostBefore - rr.CostAfter).Scale(g.cfg.HorizonIterations).AsSeconds()
		d.SavingSeconds = saving.Float()
		d.MigrationSeconds = rr.MigrationSeconds.Float()
		uneconomic := len(rr.Migrated) == 0 ||
			(!forced && saving <= rr.MigrationSeconds.Scale(g.cfg.SafetyFactor))
		if uneconomic {
			d.Action = ActionUneconomic
			g.supUneconomic++
			out = append(out, d)
			continue
		}
		lat, bw := prob.CostParts(rr.Placement)
		remapped := &service.MapResult{
			SnapshotVersion: version,
			Algorithm:       t.Result.Algorithm + "+remap",
			Cost:            (lat + bw).Float(),
			LatencyCost:     lat.Float(),
			BandwidthCost:   bw.Float(),
			Placement:       []int(rr.Placement),
			Digest:          service.PlacementDigest(rr.Placement),
			SolveMillis:     t.Result.SolveMillis,
		}
		if err := g.cfg.Source.Apply(t, remapped); err != nil {
			d.Action = ActionError
			g.cfg.Logf("regauge: target %.12s apply: %v", t.Key, err)
			out = append(out, d)
			continue
		}
		d.Action = ActionTriggered
		d.Moved = len(rr.Migrated)
		g.remaps++
		g.cooldownUntil[t.Key] = now + g.cfg.Cooldown
		out = append(out, d)
	}
	return out
}

// bestRemap prices the candidate repairs for one placement and returns
// the most promising. Three candidate families compete on saving net of
// migration cost × safety; the caller's hysteresis still gates
// application.
//
// The first candidate is the plain failure-aware remap (dead-site
// evacuation plus greedy per-process degraded moves). When that finds
// no move and degraded pairs exist, whole-site evacuations are priced:
// regional congestion traps the per-process greedy — moving one process
// off a congested site turns its cheap intra-site traffic into
// cross-traffic over the same degraded links, so no single move ever
// pays — while relocating the site's processes together can. Each
// congested site is evacuated by reusing core.Remap with that site
// marked dead; sites hosting a pinned process are skipped (a fabricated
// dead site would release a real pin).
//
// The last candidate is a full re-solve of the target's request against
// the new model, with migration priced as the placement diff's image
// transfers. Remapping alone is a ratchet — it moves processes away
// from trouble but nothing ever moves them home once a peak clears, so
// a placement walks monotonically away from the nominal optimum. The
// re-solve is the return path: after drift subsides it converges back
// to the optimizer's placement whenever the way back is worth the
// migration. It is skipped while sites are dead — a fresh solve knows
// nothing about dead capacity and could place processes there.
func (g *Gauger) bestRemap(t Target, prob *core.Problem, pl core.Placement, dead []int, worse [][2]int) (*core.RemapResult, error) {
	opts := core.RemapOptions{
		MoveDegraded:      true,
		HorizonIterations: g.cfg.HorizonIterations,
		ImageBytes:        g.cfg.ImageBytes,
	}
	best, err := core.Remap(prob, pl, &faults.Report{DeadSites: dead, DegradedPairs: worse}, opts)
	if err != nil {
		return nil, err
	}
	bestNet := g.netSaving(best)
	if len(best.Migrated) == 0 && len(worse) > 0 {
		isDead := make(map[int]bool, len(dead))
		for _, s := range dead {
			isDead[s] = true
		}
		pinned := make([]bool, prob.M())
		for _, c := range prob.Constraint {
			if c != core.Unconstrained {
				pinned[c] = true
			}
		}
		occupied := make([]bool, prob.M())
		for _, s := range pl {
			occupied[s] = true
		}
		congested := make([]bool, prob.M())
		for _, pair := range worse {
			for _, s := range []int{pair[0], pair[1]} {
				if s >= 0 && s < prob.M() {
					congested[s] = true
				}
			}
		}
		for s := 0; s < prob.M(); s++ {
			if !congested[s] || !occupied[s] || isDead[s] || pinned[s] {
				continue
			}
			evac := append(append([]int{}, dead...), s)
			sort.Ints(evac)
			rr, err := core.Remap(prob, pl, &faults.Report{DeadSites: evac, DegradedPairs: worse}, opts)
			if err != nil {
				// Infeasible evacuation (e.g. not enough surviving
				// capacity) just removes this candidate; it does not fail
				// the walk.
				continue
			}
			if net := g.netSaving(rr); net > bestNet {
				best, bestNet = rr, net
			}
		}
	}
	if len(dead) == 0 {
		if rr := g.resolveCandidate(t, prob, pl); rr != nil {
			if net := g.netSaving(rr); net > bestNet {
				best, bestNet = rr, net
			}
		}
	}
	return best, nil
}

// resolveCandidate re-solves the target's request against the new model
// and prices the switch from the current placement: migration is the
// diff's image transfers, each at the current bandwidth between old and
// new site. Returns nil when the request's solver is unavailable or
// solving fails — the other candidates still stand.
func (g *Gauger) resolveCandidate(t Target, prob *core.Problem, pl core.Placement) *core.RemapResult {
	mapper, err := t.Request.Mapper(g.cfg.SolverWorkers)
	if err != nil {
		return nil
	}
	fresh, err := mapper.Map(prob)
	if err != nil {
		return nil
	}
	rr := &core.RemapResult{
		Placement:  fresh,
		CostBefore: prob.Cost(pl),
		CostAfter:  prob.Cost(fresh),
	}
	for i := range pl {
		if fresh[i] == pl[i] {
			continue
		}
		rr.Migrated = append(rr.Migrated, i)
		rr.MigrationSeconds += g.cfg.ImageBytes.Over(prob.Bandwidth(pl[i], fresh[i]))
	}
	return rr
}

// netSaving is a candidate's horizon-credited saving net of its
// migration time scaled by the safety factor — the quantity the
// hysteresis gate compares against zero.
func (g *Gauger) netSaving(rr *core.RemapResult) units.Seconds {
	return (rr.CostBefore - rr.CostAfter).Scale(g.cfg.HorizonIterations).AsSeconds() -
		rr.MigrationSeconds.Scale(g.cfg.SafetyFactor)
}

// recordStatus refreshes the concurrent-read Status view after a pass.
func (g *Gauger) recordStatus(pr PassResult, failed bool) {
	if failed {
		g.gaugeFailures++
	}
	if pr.PublishedVersion > 0 {
		g.published++
		g.lastVersion = pr.PublishedVersion
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.status = Status{
		Mode:                 pr.Mode,
		Pass:                 pr.Pass,
		LastOutcome:          pr.Outcome,
		LastAtSeconds:        pr.At.Float(),
		ConsecutiveFailures:  g.consecFails,
		GaugeFailures:        g.gaugeFailures,
		Published:            g.published,
		LastPublishedVersion: g.lastVersion,
		RemapsTriggered:      g.remaps,
		SuppressedCooldown:   g.supCooldown,
		SuppressedUneconomic: g.supUneconomic,
		MaxDrift:             pr.MaxDrift,
	}
}

// Status returns a copy of the current view; safe concurrently with Step.
func (g *Gauger) Status() Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.status
}

// StatusProbe adapts the gauger to service.Server.RegisterStatus: the
// block renders under "regauge" and reports unhealthy while degraded.
func (g *Gauger) StatusProbe() (any, bool) {
	st := g.Status()
	return st, st.Mode != ModeDegraded
}

// Run drives Step on a wall-clock timer until ctx is canceled: the
// schedule clock starts at zero and advances by each pass's NextWait,
// while the wall wait is NextWait / Timescale. The timer+select shape
// (rather than a sleep loop) keeps cancellation immediate on drain.
func (g *Gauger) Run(ctx context.Context) {
	sched := g.cfg.Interval
	timer := time.NewTimer(g.wallWait(g.cfg.Interval))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		pr := g.Step(sched)
		sched += pr.NextWait
		timer.Reset(g.wallWait(pr.NextWait))
	}
}

func (g *Gauger) wallWait(d units.Seconds) time.Duration {
	return time.Duration(d.Float() / g.cfg.Timescale * float64(time.Second))
}

// pushWindow appends v and keeps the last size entries.
func pushWindow(w []float64, v float64, size int) []float64 {
	w = append(w, v)
	if len(w) > size {
		w = w[len(w)-size:]
	}
	return w
}

// relChange is |a−b| / b with zero-denominator guards: an estimate
// appearing where the model had nothing counts as full drift.
func relChange(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 0
		}
		return 1
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// deadSites infers the dead set from a pass's Unreachable matrix: a site
// is dead only when every inter-site probe direction touching it failed
// completely — a single flaky link must not condemn a site.
func deadSites(unreachable *mat.Matrix) []int {
	if unreachable == nil {
		return nil
	}
	m := unreachable.Rows()
	if m < 2 {
		return nil
	}
	var dead []int
	for s := 0; s < m; s++ {
		all := true
		for l := 0; l < m && all; l++ {
			if l == s {
				continue
			}
			if unreachable.At(s, l) < 1 || unreachable.At(l, s) < 1 {
				all = false
			}
		}
		if all {
			dead = append(dead, s)
		}
	}
	return dead
}

// touchesDead reports whether any process sits on a dead site.
func touchesDead(pl core.Placement, dead []int) bool {
	if len(dead) == 0 {
		return false
	}
	isDead := make(map[int]bool, len(dead))
	for _, s := range dead {
		isDead[s] = true
	}
	for _, s := range pl {
		if isDead[s] {
			return true
		}
	}
	return false
}

// equalInts compares two int slices elementwise.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
