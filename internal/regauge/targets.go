package regauge

import (
	"geoprocmap/internal/core"
	"geoprocmap/internal/service"
)

// Target is one placement the gauger re-evaluates after publishing a new
// snapshot: the request and result that produced it, plus a Problem
// constructor that rebuilds the optimization problem against an
// arbitrary snapshot (the freshly published one).
type Target struct {
	// Key identifies the target across passes — cooldown deadlines are
	// tracked per key, so it must be stable for "the same placement"
	// (the service uses the cache fingerprint).
	Key     string
	Request *service.MapRequest
	Result  *service.MapResult
	Problem func(snap *service.Snapshot) (*core.Problem, error)
}

// TargetSource supplies the placements to walk after a publication and
// applies remapped results back to wherever clients read them. Targets
// must return a deterministic order for a deterministic request history
// — the walk order is part of the gauging digest.
type TargetSource interface {
	Targets() []Target
	Apply(t Target, res *service.MapResult) error
}

// ServerSource adapts a live service.Server: targets are the result
// cache's (request, result) pairs in recency order, and applied remaps
// are inserted back into the cache under the new snapshot version so the
// next identical request hits the refreshed placement.
type ServerSource struct {
	Server *service.Server
}

// Targets implements TargetSource over the server's result cache.
func (s ServerSource) Targets() []Target {
	graphFor := s.Server.GraphProvider()
	entries := s.Server.CachedPlacements()
	out := make([]Target, 0, len(entries))
	for _, e := range entries {
		if e.Request == nil || e.Result == nil {
			continue
		}
		req := e.Request
		out = append(out, Target{
			Key:     e.Key,
			Request: req,
			Result:  e.Result,
			Problem: func(snap *service.Snapshot) (*core.Problem, error) {
				return req.Problem(snap, graphFor)
			},
		})
	}
	return out
}

// Apply implements TargetSource by installing the remapped result in the
// server's cache.
func (s ServerSource) Apply(t Target, res *service.MapResult) error {
	s.Server.InsertResult(t.Request, res)
	return nil
}
