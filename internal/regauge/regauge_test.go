package regauge

import (
	"context"
	"testing"
	"time"

	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/service"
	"geoprocmap/internal/units"
)

// testRig is the shared fixture: a small 4-site cloud and a store whose
// baseline snapshot carries the full calibration's estimates, so a
// fault-free gauge pass sees only probe noise (well under the drift
// threshold) and a crafted fault schedule sees honest drift.
type testRig struct {
	cloud *netmodel.Cloud
	store *service.Store
}

func newRig(t *testing.T, seed int64) *testRig {
	t.Helper()
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, 4, netmodel.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := calib.Calibrate(cloud, calib.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	snap := service.SnapshotFromCloud(cloud)
	snap.Source = "calibration"
	snap.LT = cal.LT
	snap.BT = cal.BT
	store, err := service.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{cloud: cloud, store: store}
}

func (r *testRig) gauger(t *testing.T, mutate func(*Config)) *Gauger {
	t.Helper()
	cfg := Config{Cloud: r.cloud, Store: r.store, Seed: 7}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	rig := newRig(t, 1)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil cloud", Config{Store: rig.store}},
		{"nil store", Config{Cloud: rig.cloud}},
		{"negative interval", Config{Cloud: rig.cloud, Store: rig.store, Interval: -1}},
		{"negative samples", Config{Cloud: rig.cloud, Store: rig.store, Samples: -2}},
		{"trim fraction too large", Config{Cloud: rig.cloud, Store: rig.store, TrimFraction: 0.5}},
		{"failure bar above one", Config{Cloud: rig.cloud, Store: rig.store, FailureBar: 1.5}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
	// Site-count mismatch between store and cloud.
	smaller, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions[:3], 4, netmodel.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	store3, err := service.NewStore(service.SnapshotFromCloud(smaller))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Cloud: rig.cloud, Store: store3}); err == nil {
		t.Error("New accepted a store whose snapshot disagrees with the cloud's site count")
	}
}

// TestSteadyThenDriftPublishes drives the core detection path: a
// fault-free pass stays steady against the calibrated baseline, while a
// persistent bandwidth collapse drifts past the threshold and publishes
// exactly once — the next pass matches the republished model and goes
// steady again.
func TestSteadyThenDriftPublishes(t *testing.T) {
	rig := newRig(t, 2)
	quiet := rig.gauger(t, nil)
	pr := quiet.Step(units.Seconds(30))
	if pr.Outcome != OutcomeSteady {
		t.Fatalf("fault-free pass outcome = %s (max drift %.3f), want steady", pr.Outcome, pr.MaxDrift)
	}
	if got := rig.store.Current().Version; got != 1 {
		t.Fatalf("steady pass advanced the store to v%d", got)
	}

	sched := &faults.Schedule{Name: "collapse", Seed: 2, Events: []Event{
		{Kind: faults.BandwidthDegrade, Start: 0, Src: faults.Wildcard, Dst: faults.Wildcard, Factor: 0.4},
	}}
	g := rig.gauger(t, func(c *Config) { c.Faults = sched })
	pr = g.Step(units.Seconds(30))
	if pr.Outcome != OutcomePublished {
		t.Fatalf("drifted pass outcome = %s (max drift %.3f), want published", pr.Outcome, pr.MaxDrift)
	}
	if pr.PublishedVersion != 2 {
		t.Fatalf("published version = %d, want 2", pr.PublishedVersion)
	}
	if len(pr.DriftedPairs) == 0 || pr.MaxDrift <= 0.15 {
		t.Fatalf("published pass reports %d drifted pairs, max drift %.3f", len(pr.DriftedPairs), pr.MaxDrift)
	}
	if src := rig.store.Current().Source; src != "regauge" {
		t.Fatalf("published snapshot source = %q, want regauge", src)
	}
	pr = g.Step(units.Seconds(60))
	if pr.Outcome != OutcomeSteady {
		t.Fatalf("post-publication pass outcome = %s (max drift %.3f), want steady", pr.Outcome, pr.MaxDrift)
	}
	st := g.Status()
	if st.Published != 1 || st.LastPublishedVersion != 2 || st.Mode != ModeOK {
		t.Fatalf("status after publish = %+v", st)
	}
}

// Event aliases faults.Event so the literal tables above stay readable.
type Event = faults.Event

// TestFailureLadder walks the full mode ladder: three timed-out passes
// escalate ok → suspect → degraded with backoff on every failure; the
// first clean pass only reaches recovering — drift seen there is frozen,
// not published — and the second clean pass restores ok and publishes.
func TestFailureLadder(t *testing.T) {
	rig := newRig(t, 3)
	sched := &faults.Schedule{Name: "ladder", Seed: 3, Events: []Event{
		// Phase A: probes time out everywhere until t=200.
		{Kind: faults.LatencySpike, Start: 0, End: 200, Src: faults.Wildcard, Dst: faults.Wildcard, Factor: 1e9},
		// Phase B: after recovery the WAN is permanently degraded, so the
		// recovering gauger has real drift to (not) publish.
		{Kind: faults.BandwidthDegrade, Start: 200, Src: faults.Wildcard, Dst: faults.Wildcard, Factor: 0.4},
	}}
	g := rig.gauger(t, func(c *Config) { c.Faults = sched })

	wantModes := []string{ModeSuspect, ModeSuspect, ModeDegraded}
	now := units.Seconds(30)
	for i, want := range wantModes {
		pr := g.Step(now)
		if pr.Outcome != OutcomeGaugeFailed || pr.Mode != want {
			t.Fatalf("failed pass %d: outcome=%s mode=%s, want gauge-failed %s", i+1, pr.Outcome, pr.Mode, want)
		}
		if pr.NextWait <= g.cfg.Interval {
			t.Fatalf("failed pass %d: NextWait %v lacks backoff over interval %v", i+1, pr.NextWait, g.cfg.Interval)
		}
		now += pr.NextWait
	}
	if _, ok := g.StatusProbe(); ok {
		t.Fatal("StatusProbe reports healthy while degraded")
	}

	pr := g.Step(units.Seconds(250))
	if pr.Outcome != OutcomeFrozen || pr.Mode != ModeRecovering {
		t.Fatalf("first clean pass: outcome=%s mode=%s, want frozen recovering", pr.Outcome, pr.Mode)
	}
	if rig.store.Current().Version != 1 {
		t.Fatal("frozen pass published a snapshot")
	}
	pr = g.Step(units.Seconds(280))
	if pr.Outcome != OutcomePublished || pr.Mode != ModeOK {
		t.Fatalf("second clean pass: outcome=%s mode=%s, want published ok", pr.Outcome, pr.Mode)
	}
	if _, ok := g.StatusProbe(); !ok {
		t.Fatal("StatusProbe reports unhealthy after recovery")
	}
	st := g.Status()
	if st.GaugeFailures != 3 || st.ConsecutiveFailures != 0 {
		t.Fatalf("failure counters = %+v", st)
	}
}

// walkRig builds a gauger plus one explicit-edge target for direct
// walkTargets tests: two chatty processes placed on site 0.
func walkRig(t *testing.T) (*Gauger, *captureSource) {
	t.Helper()
	rig := newRig(t, 4)
	req := &service.MapRequest{
		Procs: 2,
		Edges: []service.Edge{{Src: 0, Dst: 1, Volume: 1 << 28, Msgs: 100}},
	}
	src := &captureSource{target: Target{
		Key:     "walk-test",
		Request: req,
		Result: &service.MapResult{
			SnapshotVersion: 1,
			Algorithm:       "geo",
			Placement:       []int{0, 0},
			Digest:          service.PlacementDigest(core.Placement{0, 0}),
		},
		Problem: func(snap *service.Snapshot) (*core.Problem, error) {
			return req.Problem(snap, nil)
		},
	}}
	g := rig.gauger(t, func(c *Config) { c.Source = src })
	return g, src
}

type captureSource struct {
	target  Target
	applied []*service.MapResult
}

func (s *captureSource) Targets() []Target { return []Target{s.target} }
func (s *captureSource) Apply(t Target, res *service.MapResult) error {
	s.target.Result = res
	s.applied = append(s.applied, res)
	return nil
}

// TestForcedEvacuationBypassesCooldown: a placement on a dead site is
// evacuated even inside its cooldown window and even when the migration
// is uneconomic — stay-and-die is not an option the hysteresis gets to
// pick.
func TestForcedEvacuationBypassesCooldown(t *testing.T) {
	g, src := walkRig(t)
	g.cooldownUntil["walk-test"] = units.Seconds(1e9)
	decs := g.walkTargets(units.Seconds(30), 2, []int{0}, nil)
	if len(decs) != 1 || decs[0].Action != ActionTriggered {
		t.Fatalf("decisions = %+v, want one triggered evacuation", decs)
	}
	if decs[0].Moved != 2 {
		t.Fatalf("moved = %d, want both processes off the dead site", decs[0].Moved)
	}
	if len(src.applied) != 1 {
		t.Fatalf("applied %d results, want 1", len(src.applied))
	}
	for _, s := range src.applied[0].Placement {
		if s == 0 {
			t.Fatalf("process still on dead site 0: %v", src.applied[0].Placement)
		}
	}
	if src.applied[0].Algorithm != "geo+remap" {
		t.Fatalf("applied algorithm = %q", src.applied[0].Algorithm)
	}
}

// TestCooldownSuppresses: without a dead site the cooldown gate wins
// before any remap is priced.
func TestCooldownSuppresses(t *testing.T) {
	g, src := walkRig(t)
	g.cooldownUntil["walk-test"] = units.Seconds(100)
	decs := g.walkTargets(units.Seconds(30), 2, nil, [][2]int{{0, 1}, {1, 0}})
	if len(decs) != 1 || decs[0].Action != ActionCooldown {
		t.Fatalf("decisions = %+v, want one cooldown suppression", decs)
	}
	if len(src.applied) != 0 {
		t.Fatal("cooldown-suppressed walk still applied a result")
	}
	if g.Status().SuppressedCooldown != 0 {
		// Counters move into Status only at recordStatus; the walk itself
		// must have bumped the step-side counter.
		t.Log("status view lags recordStatus by design")
	}
	if g.supCooldown != 1 {
		t.Fatalf("supCooldown = %d, want 1", g.supCooldown)
	}
}

// TestUneconomicSuppresses: an optimally placed target with healthy
// pairs yields no move worth its migration, and nothing is applied.
func TestUneconomicSuppresses(t *testing.T) {
	g, src := walkRig(t)
	// The two processes sit together already — every candidate (greedy
	// move, site evacuation, re-solve) either finds nothing or cannot
	// clear the migration bar.
	decs := g.walkTargets(units.Seconds(30), 2, nil, [][2]int{{2, 3}})
	if len(decs) != 1 || decs[0].Action != ActionUneconomic {
		t.Fatalf("decisions = %+v, want one uneconomic suppression", decs)
	}
	if len(src.applied) != 0 {
		t.Fatal("uneconomic walk still applied a result")
	}
	if g.supUneconomic != 1 {
		t.Fatalf("supUneconomic = %d, want 1", g.supUneconomic)
	}
}

// TestRunTimescale exercises the wall-clock loop: at a large timescale a
// few passes complete in milliseconds, and cancellation stops the loop.
func TestRunTimescale(t *testing.T) {
	rig := newRig(t, 5)
	g := rig.gauger(t, func(c *Config) { c.Timescale = 1e5 })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		g.Run(ctx)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for g.Status().Pass < 2 {
		select {
		case <-deadline:
			t.Fatal("no passes completed within 5s of wall time")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancellation")
	}
}

func TestDeadSites(t *testing.T) {
	m := mat.NewSquare(3)
	// Site 1 fully unreachable in both directions; site 2 only outbound.
	for _, l := range []int{0, 2} {
		m.Set(1, l, 1)
		m.Set(l, 1, 1)
	}
	m.Set(2, 0, 1)
	if got := deadSites(m); len(got) != 1 || got[0] != 1 {
		t.Fatalf("deadSites = %v, want [1]", got)
	}
	if got := deadSites(nil); got != nil {
		t.Fatalf("deadSites(nil) = %v", got)
	}
	if got := deadSites(mat.NewSquare(1)); got != nil {
		t.Fatalf("deadSites(1×1) = %v, want none (no inter-site links to lose)", got)
	}
}

func TestRelChange(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{5, 0, 1},
		{-1, 0, 0},
		{12, 10, 0.2},
		{8, 10, 0.2},
		{10, 10, 0},
	}
	for _, c := range cases {
		if got := relChange(c.a, c.b); got < c.want-1e-12 || got > c.want+1e-12 {
			t.Errorf("relChange(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPushWindow(t *testing.T) {
	var w []float64
	for i := 1; i <= 5; i++ {
		w = pushWindow(w, float64(i), 3)
	}
	if len(w) != 3 || w[0] != 3 || w[2] != 5 {
		t.Fatalf("window = %v, want [3 4 5]", w)
	}
}
