package experiments

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/core"
)

// TestSeedDeterminism is the reproducibility regression the geolint
// globalrand rule guards: two full pipeline runs — cloud construction,
// profiling, calibration, constraint sampling, Geo-distributed mapping,
// cost evaluation — with the same seed on a paper-scale scenario (4 EC2
// regions × 16 nodes, 64 processes) must produce byte-identical mappings
// and bit-identical costs. Any global math/rand call anywhere in the
// pipeline breaks this.
func TestSeedDeterminism(t *testing.T) {
	const (
		n    = 64
		seed = 42
	)
	runOnce := func(workers int) (mapping string, costBits uint64) {
		t.Helper()
		cloud, err := PaperCloudForScale(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		if m := cloud.M(); m != 4 {
			t.Fatalf("paper cloud has %d sites, want 4", m)
		}
		inst, err := BuildInstance(cloud, apps.NewLU(), n, 10, 0.2, seed)
		if err != nil {
			t.Fatal(err)
		}
		mapper := &core.GeoMapper{Kappa: 4, Seed: seed, Workers: workers}
		pl, err := mapper.Map(inst.Problem)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Problem.CheckPlacement(pl); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v", pl), math.Float64bits(inst.CommCost(pl))
	}

	m1, c1 := runOnce(1)
	m2, c2 := runOnce(1)
	if m1 != m2 {
		t.Errorf("same-seed mappings differ:\n run 1: %s\n run 2: %s", m1, m2)
	}
	if c1 != c2 {
		t.Errorf("same-seed costs differ bitwise: %016x vs %016x", c1, c2)
	}

	// The parallel order search must be as deterministic as the serial
	// one, and agree with it byte for byte (reduction ties break on the
	// lowest permutation rank regardless of goroutine scheduling).
	for _, workers := range []int{runtime.GOMAXPROCS(0), 3} {
		mp, cp := runOnce(workers)
		if mp != m1 {
			t.Errorf("workers=%d mapping differs from serial:\n serial:   %s\n parallel: %s", workers, m1, mp)
		}
		if cp != c1 {
			t.Errorf("workers=%d cost differs bitwise from serial: %016x vs %016x", workers, c1, cp)
		}
	}

	// The baseline measurement (averaged random placements) must be as
	// reproducible as the mapper itself.
	cloud, err := PaperCloudForScale(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := BuildInstance(cloud, apps.NewLU(), n, 10, 0.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := inst.BaselineCost(5, seed)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := inst.BaselineCost(5, seed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(b1) != math.Float64bits(b2) {
		t.Errorf("same-seed baseline costs differ bitwise: %v vs %v", b1, b2)
	}
}
