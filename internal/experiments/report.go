// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment is a function from a Config to a
// Report — a titled text table plus notes — and the registry maps the
// paper's table/figure identifiers to those functions so the geobench
// command and the benchmark suite can drive them uniformly.
//
// The DESIGN.md experiment index maps each identifier to the paper
// artifact it reproduces and the modules involved; EXPERIMENTS.md records
// paper-reported versus measured values.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Report is the output of one experiment: a table with a caption.
type Report struct {
	// ID is the registry identifier, e.g. "table1" or "fig5".
	ID string
	// Title describes what the paper artifact shows.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold the table body.
	Rows [][]string
	// Notes carry free-form observations (e.g. comparisons to the paper's
	// reported shape).
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", max(0, pad)))
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(0, total-2)))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as comma-separated values (header + rows). Cells
// containing commas or quotes are quoted.
func (r *Report) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// JSON renders the report as an indented JSON document with the same
// fields the text table carries, for machine-readable baselines such as
// results/BENCH_orders.json.
func (r *Report) JSON() (string, error) {
	v := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{r.ID, r.Title, r.Header, r.Rows, r.Notes}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
