package experiments

import (
	"fmt"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/core"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/netsim"
)

// FaultStart is the schedule time at which the robustness studies run the
// measured iteration: late enough that every preset has faults active
// (SiteBlackout trips at faults.BlackoutStart = 3 s), early enough to sit
// inside FlakyWAN's chaos window and DiurnalDrift's first degraded phase.
const FaultStart = 5.0

// HeadroomCloudForScale builds the evaluation cloud with spare capacity:
// the paper's four regions, but with ceil(n/3) nodes per site instead of
// n/4, so any single site can black out and the survivors still hold all n
// processes — the precondition for failure-aware remapping.
func HeadroomCloudForScale(n int, seed int64) (*netmodel.Cloud, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: process count %d, want ≥ 1", n)
	}
	perSite := (n + 2) / 3
	return netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, perSite, netmodel.Options{Seed: seed})
}

// SimulateFaultyReplay replays one iteration of the instance's trace under
// the fault schedule, positioned at schedule time `start`, and scales to
// the full run. The engine is the trace replay (the workloads' dependency
// model) in dedicated-WAN mode, matching Simulate.
func (inst *Instance) SimulateFaultyReplay(pl core.Placement, sched *faults.Schedule, start float64) (SimResult, *faults.Report, error) {
	sim, err := netsim.NewWithOptions(inst.Cloud, pl, netsim.Options{DedicatedWAN: true, Faults: sched})
	if err != nil {
		return SimResult{}, nil, err
	}
	comm, rep, err := sim.ReplayTraceFaulty(inst.IterTrace, start)
	if err != nil {
		return SimResult{}, nil, err
	}
	iters := float64(inst.Iters)
	return SimResult{
		ComputeSeconds: inst.App.ComputeTime(inst.N) * iters,
		CommSeconds:    comm.Scale(iters).Float(),
	}, rep, nil
}

// ExtRobustness compares the three mapping algorithms under the fault
// presets: one measured iteration at FaultStart with the stale (pre-fault)
// placement, then with the failure-aware remapping core.Remap derives from
// the stale run's fault report. Columns report the per-iteration
// communication time, the dropped-message count of the stale run, and how
// many processes the repair migrated.
func ExtRobustness(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "robustness",
		Title:  "Extension: mapping robustness under WAN fault presets (LU, 64 processes, headroom cloud)",
		Header: []string{"Preset", "Mapper", "Stale comm (s)", "Dropped", "Remapped comm (s)", "Migrated", "Recovery"},
	}
	const n = 64
	cloud, err := HeadroomCloudForScale(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	app, err := apps.ByName("LU")
	if err != nil {
		return nil, err
	}
	inst, err := BuildInstance(cloud, app, n, 1, cfg.ConstraintRatio, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, preset := range faults.PresetNames() {
		sched, err := faults.Preset(preset, cloud.M(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, m := range StandardMappers(cfg.Seed, cfg.Workers) {
			pl, _, err := inst.MapAndTime(m)
			if err != nil {
				return nil, err
			}
			stale, staleRep, err := inst.SimulateFaultyReplay(pl, sched, FaultStart)
			if err != nil {
				return nil, err
			}
			remap, err := core.Remap(inst.Problem, pl, staleRep, core.RemapOptions{})
			if err != nil {
				return nil, err
			}
			repaired, repairedRep, err := inst.SimulateFaultyReplay(remap.Placement, sched, FaultStart)
			if err != nil {
				return nil, err
			}
			recovery := "—"
			if len(remap.Migrated) > 0 {
				recovery = fmt.Sprintf("%.1f%% (migration %.1f s)",
					ImprovementPct(stale.CommSeconds, repaired.CommSeconds), remap.MigrationSeconds)
			}
			r.AddRow(preset, m.Name(),
				fmt.Sprintf("%.2f", stale.CommSeconds),
				fmt.Sprint(staleRep.Dropped),
				fmt.Sprintf("%.2f", repaired.CommSeconds),
				fmt.Sprint(len(remap.Migrated)),
				recovery)
			if repairedRep.Dropped > staleRep.Dropped {
				r.AddNote("WARNING: %s/%s repair increased drops (%d → %d)", preset, m.Name(), staleRep.Dropped, repairedRep.Dropped)
			}
		}
	}
	r.AddNote("SiteBlackout kills one region open-endedly: stale placements lose every message into it (each sender burning the %g s fault deadline), while the remapped placement evacuates the dead site and completes.", netsim.DefaultFaultDeadline)
	r.AddNote("FlakyWAN and DiurnalDrift degrade rather than kill: no processes migrate (no dead sites), so the schedules cost both placements the same retries — resilience there comes from the calibrator and simulator fault handling, not remapping.")
	return r, nil
}
