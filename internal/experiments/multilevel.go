package experiments

import (
	"fmt"
	"runtime"

	"geoprocmap/internal/baselines"
	"geoprocmap/internal/comm"
	"geoprocmap/internal/core"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
)

// multilevelAnchorSites are real EC2 region coordinates; synthetic clouds
// larger than this list extend it with a deterministic low-discrepancy
// spread so K-means grouping still sees plausible geography.
var multilevelAnchorSites = []geo.LatLon{
	{Lat: 38.95, Lon: -77.45},  // us-east-1
	{Lat: 37.35, Lon: -121.96}, // us-west-1
	{Lat: 45.84, Lon: -119.29}, // us-west-2
	{Lat: 53.35, Lon: -6.26},   // eu-west-1
	{Lat: 50.12, Lon: 8.68},    // eu-central-1
	{Lat: 1.29, Lon: 103.85},   // ap-southeast-1
	{Lat: -33.87, Lon: 151.21}, // ap-southeast-2
	{Lat: 35.68, Lon: 139.69},  // ap-northeast-1
	{Lat: 19.08, Lon: 72.88},   // ap-south-1
	{Lat: -23.55, Lon: -46.63}, // sa-east-1
	{Lat: 45.50, Lon: -73.57},  // ca-central-1
}

// syntheticSites returns m site coordinates: the EC2 anchors first, then a
// golden-angle spread over the populated latitudes.
func syntheticSites(m int) []geo.LatLon {
	pc := make([]geo.LatLon, m)
	for k := 0; k < m; k++ {
		if k < len(multilevelAnchorSites) {
			pc[k] = multilevelAnchorSites[k]
			continue
		}
		i := k - len(multilevelAnchorSites)
		lon := -180 + 137.5*float64(i+1)
		for lon >= 180 {
			lon -= 360
		}
		pc[k] = geo.LatLon{Lat: -40 + 18*float64(i%5), Lon: lon}
	}
	return pc
}

// syntheticProblem builds a mapping problem big enough to show the
// multilevel scaling story without profiling a real workload: a sparse
// ring + stride + butterfly communication pattern (≈4 directed edges per
// process, so N = 100k stays cheap to build) over m sites whose LT/BT
// matrices follow great-circle distance, the same shape the paper's EC2
// gauging produced.
func syntheticProblem(n, m int, seed int64) *core.Problem {
	g := comm.NewGraph(n)
	rng := stats.NewRand(seed)
	stride := n / 4
	if stride < 2 {
		stride = 2
	}
	for i := 0; i < n; i++ {
		g.AddTraffic(i, (i+1)%n, 2e6*(1+rng.Float64()), 20)
		g.AddTraffic(i, (i+stride)%n, 5e5*(1+rng.Float64()), 8)
		// Butterfly exchange partner: xor with a power of two, the
		// pattern collectives such as recursive doubling produce.
		bit := 1 << uint(i%10)
		if j := i ^ bit; j < n && j != i {
			g.AddTraffic(i, j, 2e5*(1+rng.Float64()), 4)
		}
	}
	pc := syntheticSites(m)
	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if k == l {
				lt.Set(k, l, 0.0002)
				bt.Set(k, l, 1e9)
				continue
			}
			km := geo.HaversineKm(pc[k], pc[l])
			lt.Set(k, l, 0.0005+km*5e-6)
			bt.Set(k, l, 2.5e8/(1+km/5000))
		}
	}
	return &core.Problem{
		Comm:       g,
		LT:         lt,
		BT:         bt,
		PC:         pc,
		Capacity:   mat.NewIntVec(m, (n+m-1)/m+n/(8*m)+1),
		Constraint: mat.NewIntVec(n, core.Unconstrained),
	}
}

// ExtMultilevel is the cost-vs-time Pareto sweep for the multilevel
// mapper: at each (sites, N) cell it runs every algorithm that is still
// tractable there and reports cost (normalized to the multilevel result)
// and mapping wall-clock. The flat paper heuristic drops out above
// N ≈ 4096 (its greedy fill is quadratic per order) and MPIPP above a few
// hundred processes; the multilevel pipeline is the only entry left at
// 32 sites × 100k processes, which it solves in seconds.
func ExtMultilevel(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	type cell struct {
		m, n   int
		geo    bool // flat paper heuristic still tractable
		greedy bool
		mpipp  bool
	}
	cells := []cell{
		{m: 4, n: 256, geo: true, greedy: true, mpipp: true},
		{m: 8, n: 1024, geo: true, greedy: true},
		{m: 8, n: 4096, geo: true, greedy: true},
		{m: 16, n: 16384, greedy: true},
		{m: 32, n: 100000},
	}
	if cfg.Quick {
		cells = []cell{
			{m: 4, n: 128, geo: true, greedy: true, mpipp: true},
			{m: 8, n: 512, geo: true, greedy: true},
			{m: 32, n: 4096},
		}
	}
	rep := &Report{
		ID:     "multilevel",
		Title:  "Multilevel mapper: cost vs mapping time across scale",
		Header: []string{"sites", "N", "mapper", "cost", "ratio", "map_ms"},
	}
	workers := cfg.Workers
	for _, c := range cells {
		p := syntheticProblem(c.n, c.m, cfg.Seed)
		inst := &Instance{Problem: p, N: c.n}
		kappa := 4
		if c.m < kappa {
			kappa = c.m
		}
		type entry struct {
			name   string
			mapper core.Mapper
		}
		entries := []entry{{"multilevel", &core.MultilevelGeoMapper{Kappa: kappa, Seed: cfg.Seed, Workers: workers}}}
		if c.geo {
			entries = append(entries, entry{"geo", &core.GeoMapper{Kappa: kappa, Seed: cfg.Seed, Workers: workers}})
		}
		if c.greedy {
			entries = append(entries, entry{"greedy", &baselines.Greedy{}})
		}
		if c.mpipp {
			entries = append(entries, entry{"mpipp", &baselines.MPIPP{Seed: cfg.Seed}})
		}
		var mlCost float64
		for i, e := range entries {
			pl, dur, err := inst.MapAndTime(e.mapper)
			if err != nil {
				return nil, fmt.Errorf("%s at %d sites, N=%d: %w", e.name, c.m, c.n, err)
			}
			if err := p.CheckPlacement(pl); err != nil {
				return nil, fmt.Errorf("%s at %d sites, N=%d: infeasible: %w", e.name, c.m, c.n, err)
			}
			cost := p.Cost(pl).Float()
			if i == 0 {
				mlCost = cost
			}
			rep.AddRow(
				fmt.Sprintf("%d", c.m),
				fmt.Sprintf("%d", c.n),
				e.name,
				fmt.Sprintf("%.4g", cost),
				fmt.Sprintf("%.3f", cost/mlCost),
				fmt.Sprintf("%.1f", dur.Seconds()*1e3),
			)
		}
	}
	rep.AddNote("ratio = cost / multilevel cost in the same cell (lower is better; < 1 means the other mapper won)")
	rep.AddNote("cells omit mappers that stop being tractable: the flat heuristic's greedy fill is quadratic per group order, MPIPP's swap search quadratic per pass")
	rep.AddNote("multilevel workers = %d (0 = GOMAXPROCS), GOMAXPROCS = %d, host cores = %d", workers, runtime.GOMAXPROCS(0), runtime.NumCPU()) //geolint:detsource host metadata recorded in the report notes, never in placements
	return rep, nil
}

// MultilevelSmoke is the digest gate `make multilevel-smoke` runs: one
// mid-size instance (16 sites, 4096 processes) mapped with the multilevel
// pipeline at Workers = 1 and Workers = GOMAXPROCS. The two placements
// must be byte-identical — any divergence fails the experiment, which
// fails the make target and CI.
func MultilevelSmoke(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n, m := 4096, 16
	if cfg.Quick {
		n = 1024
	}
	p := syntheticProblem(n, m, cfg.Seed)
	inst := &Instance{Problem: p, N: n}
	rep := &Report{
		ID:     "mlsmoke",
		Title:  "Multilevel smoke: worker-count determinism digest",
		Header: []string{"workers", "cost", "map_ms", "identical"},
	}
	maxWorkers := runtime.GOMAXPROCS(0) //geolint:detsource worker count only; the experiment fails unless placements are byte-identical
	if maxWorkers < 2 {
		// On a single-core host GOMAXPROCS resolves to 1, which would
		// compare the serial path against itself; force two goroutines so
		// the range split and deterministic reduction are exercised.
		maxWorkers = 2
	}
	var ref core.Placement
	for _, w := range []int{1, maxWorkers} {
		mm := &core.MultilevelGeoMapper{Kappa: 4, Seed: cfg.Seed, Workers: w}
		pl, dur, err := inst.MapAndTime(mm)
		if err != nil {
			return nil, err
		}
		if err := p.CheckPlacement(pl); err != nil {
			return nil, fmt.Errorf("workers=%d: infeasible: %w", w, err)
		}
		identical := true
		if ref == nil {
			ref = pl
		} else {
			identical = pl.Equal(ref)
		}
		rep.AddRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.4g", p.Cost(pl).Float()),
			fmt.Sprintf("%.1f", dur.Seconds()*1e3),
			fmt.Sprintf("%t", identical),
		)
		if !identical {
			return nil, fmt.Errorf("multilevel smoke: Workers=%d placement diverges from Workers=1", w)
		}
	}
	rep.AddNote("N = %d processes, %d sites; identical = placement byte-equal to the Workers=1 run", n, m)
	return rep, nil
}
