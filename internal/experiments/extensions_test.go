package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtAzureShape(t *testing.T) {
	rep, err := ExtAzure(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("azure has %d rows, want 5", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		geo := parsePct(t, row[3])
		if geo <= 0 {
			t.Errorf("%s: geo improvement %v%% on Azure, want positive", row[0], geo)
		}
	}
}

func TestExtContentionShape(t *testing.T) {
	rep, err := ExtContention(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("contention has %d rows, want 6 (3 apps × 2 mappers)", len(rep.Rows))
	}
	// Geo stays positive under both network models.
	for _, row := range rep.Rows {
		if row[1] != "Geo-distributed" {
			continue
		}
		if parsePct(t, row[2]) <= 0 {
			t.Errorf("%s: geo not positive under dedicated WAN", row[0])
		}
	}
}

func TestExtCollectivesHierarchyWins(t *testing.T) {
	rep, err := ExtCollectives(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("collectives has %d rows, want 3", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		speedup, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "×"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if speedup <= 1 {
			t.Errorf("%s: hierarchical speedup %v×, want >1", row[0], speedup)
		}
	}
}

func TestExtMultiConstraintNeverWorse(t *testing.T) {
	rep, err := ExtMultiConstraint(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("multiconstraint has %d rows, want 5", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		pin, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		set, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		// The set relaxation can never force a worse optimum; allow a hair
		// of heuristic slack.
		if set > pin*1.05 {
			t.Errorf("%s: regional sets cost %v clearly above pins %v", row[0], set, pin)
		}
	}
}

func TestExtHeadlineClaim(t *testing.T) {
	rep, err := ExtHeadline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("headline has %d rows, want 3", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		mean := parsePct(t, row[1])
		max := parsePct(t, row[2])
		switch row[0] {
		case "Baseline":
			if mean < 30 {
				t.Errorf("mean improvement over Baseline = %v%%, want ≥30%% (paper ~50%%)", mean)
			}
			if max < 50 {
				t.Errorf("max improvement over Baseline = %v%%, want ≥50%% (paper up to 90%%)", max)
			}
		case "Greedy":
			if mean <= 0 {
				t.Errorf("mean improvement over Greedy = %v%%, want positive", mean)
			}
		}
	}
}

func TestChartFor(t *testing.T) {
	for _, id := range []string{"fig7", "fig8", "fig10"} {
		rep, err := Run(id, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		chart, ok, err := ChartFor(rep)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !ok {
			t.Fatalf("%s: expected a chart", id)
		}
		svg, err := chart.SVG()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(svg, "<polyline") {
			t.Errorf("%s: SVG has no polylines", id)
		}
	}
	// Table artifacts are not chartable.
	rep, err := Run("table1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ChartFor(rep); ok || err != nil {
		t.Errorf("table1 chartable = %v, err %v", ok, err)
	}
}

func TestExtManySitesHierarchyCompetitive(t *testing.T) {
	rep, err := ExtManySites(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("manysites has %d rows, want 3", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		flat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		hier, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if hier > flat*1.1 {
			t.Errorf("%s sites: hierarchical cost %v clearly above flat %v", row[0], hier, flat)
		}
	}
}
