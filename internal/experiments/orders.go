package experiments

import (
	"fmt"
	"runtime"
	"time"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/core"
	"geoprocmap/internal/netmodel"
)

// orderSearchRegions is the 8-region EC2 deployment the order-search
// benchmark sweeps κ over; the paper's 4-region cloud caps κ at 4, too
// small to exercise the κ! search where it dominates.
var orderSearchRegions = []string{
	"us-east-1", "us-west-1", "us-west-2", "eu-west-1",
	"eu-central-1", "ap-southeast-1", "ap-southeast-2", "ap-northeast-1",
}

// OrderSearch measures the parallel κ! group-order search against the
// serial one on the same instances: wall-clock per cell, speedup, and a
// byte-identity check (the parallel reduction must reproduce the serial
// placement exactly). Full mode sweeps κ = 6, 7, 8 at N = 64 and 256 —
// the results/BENCH_orders.json baseline; Quick shrinks to κ = 4, 5 at
// N = 64 so the suite-wide tests stay fast.
func OrderSearch(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	kappas := []int{6, 7, 8}
	sizes := []int{64, 256}
	if cfg.Quick {
		kappas = []int{4, 5}
		sizes = []int{64}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //geolint:detsource worker count only; the experiment asserts parallel == serial placements byte-for-byte
	}
	if workers < 2 {
		// On a single-core host GOMAXPROCS resolves to 1, which would make
		// the "parallel" column run the serial path; force two goroutines
		// so the range split and reduction are actually exercised (the
		// speedup then honestly reads ~1×).
		workers = 2
	}

	rep := &Report{
		ID:     "orders",
		Title:  "Parallel group-order search: serial vs parallel wall-clock",
		Header: []string{"kappa", "N", "orders", "serial_ms", "parallel_ms", "speedup", "identical"},
	}
	for _, n := range sizes {
		cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", orderSearchRegions, n/len(orderSearchRegions), netmodel.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		inst, err := BuildInstance(cloud, apps.NewKMeans(), n, 1, cfg.ConstraintRatio, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, kappa := range kappas {
			serial := &core.GeoMapper{Kappa: kappa, Seed: cfg.Seed, Workers: 1}
			parallel := &core.GeoMapper{Kappa: kappa, Seed: cfg.Seed, Workers: workers}
			serialPl, serialDur, err := bestOf(inst, serial, cfg.Quick)
			if err != nil {
				return nil, err
			}
			parallelPl, parallelDur, err := bestOf(inst, parallel, cfg.Quick)
			if err != nil {
				return nil, err
			}
			orders := 1
			for i := 2; i <= kappa; i++ {
				orders *= i
			}
			rep.AddRow(
				fmt.Sprintf("%d", kappa),
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", orders),
				fmt.Sprintf("%.2f", serialDur.Seconds()*1e3),
				fmt.Sprintf("%.2f", parallelDur.Seconds()*1e3),
				fmt.Sprintf("%.2f", serialDur.Seconds()/parallelDur.Seconds()),
				fmt.Sprintf("%t", serialPl.Equal(parallelPl)),
			)
		}
	}
	rep.AddNote("parallel workers = %d, GOMAXPROCS = %d, host cores = %d", workers, runtime.GOMAXPROCS(0), runtime.NumCPU()) //geolint:detsource host metadata recorded in the report notes, never in placements
	rep.AddNote("identical = parallel placement byte-equal to serial (deterministic reduction)")
	return rep, nil
}

// bestOf times a mapper on the instance, taking the best of three runs in
// full mode (one under Quick) so scheduler noise doesn't pollute the
// recorded baseline.
func bestOf(inst *Instance, m core.Mapper, quick bool) (core.Placement, time.Duration, error) {
	runs := 3
	if quick {
		runs = 1
	}
	var bestPl core.Placement
	var best time.Duration
	for i := 0; i < runs; i++ {
		pl, dur, err := inst.MapAndTime(m)
		if err != nil {
			return nil, 0, err
		}
		if i == 0 || dur < best {
			bestPl, best = pl, dur
		}
	}
	return bestPl, best, nil
}
