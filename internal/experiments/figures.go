package experiments

import (
	"fmt"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/core"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/stats"
)

// Figure4 reproduces Figure 4: optimization overhead of the compared
// algorithms at increasing scale (sites/processes), normalized to the
// Baseline random mapper's overhead.
func Figure4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	scales := []struct{ sites, procs int }{
		{1, 32}, {2, 64}, {4, 64}, {4, 128}, {4, 256},
	}
	if cfg.Quick {
		scales = scales[:3]
	}
	r := &Report{
		ID:     "fig4",
		Title:  "Optimization overhead vs scale, normalized to Baseline",
		Header: []string{"Sites/Processes", "Greedy", "MPIPP", "Geo-distributed"},
	}
	for _, sc := range scales {
		cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge",
			netmodel.PaperEC2Regions[:sc.sites], sc.procs/sc.sites, netmodel.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		inst, err := BuildInstance(cloud, apps.NewLU(), sc.procs, 1, cfg.ConstraintRatio, cfg.Seed)
		if err != nil {
			return nil, err
		}
		_, baseDur, err := inst.MapAndTime(&baselines.Random{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		base := baseDur.Seconds()
		if base <= 0 {
			base = 1e-9
		}
		row := []string{fmt.Sprintf("%d/%d", sc.sites, sc.procs)}
		for _, m := range StandardMappers(cfg.Seed, cfg.Workers) {
			_, dur, err := inst.MapAndTime(m)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", dur.Seconds()/base))
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("Paper shape: MPIPP ≫ Greedy ≈ Geo at small scale; Geo grows with sites (κ! orders) and processes (N²).")
	return r, nil
}

// appTimes simulates baseline and per-mapper run times for one instance.
type appTimes struct {
	baseline SimResult
	results  map[string]SimResult
	overhead map[string]float64
}

func measureApp(inst *Instance, cfg Config, mode SimMode) (*appTimes, error) {
	base, err := inst.BaselineSim(cfg.Repeats, cfg.Seed+100, mode)
	if err != nil {
		return nil, err
	}
	out := &appTimes{
		baseline: base,
		results:  map[string]SimResult{},
		overhead: map[string]float64{},
	}
	for _, m := range StandardMappers(cfg.Seed, cfg.Workers) {
		pl, dur, err := inst.MapAndTime(m)
		if err != nil {
			return nil, err
		}
		res, err := inst.Simulate(pl, mode)
		if err != nil {
			return nil, err
		}
		out.results[m.Name()] = res
		out.overhead[m.Name()] = dur.Seconds()
	}
	return out, nil
}

// Figure5 reproduces Figure 5: overall (computation + communication +
// optimization overhead) improvement over Baseline for the five workloads
// on the paper's EC2 deployment (4 regions × 16 nodes, 64 processes).
func Figure5(cfg Config) (*Report, error) {
	return improvementFigure(cfg, "fig5",
		"Overall improvement over Baseline on the EC2-model cloud (64 processes, 4 regions)",
		true, apps.All())
}

// Figure6 reproduces Figure 6: communication-time-only improvement over
// Baseline in simulation, same deployment. As in the paper's simulation
// study, communication time is the α–β model's prediction (Formula 3),
// with computation and I/O excluded.
func Figure6(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig6",
		Title:  "Communication-only improvement over Baseline in simulation (64 processes, 4 regions)",
		Header: []string{"App", "Greedy", "MPIPP", "Geo-distributed"},
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	names := []string{"Greedy", "MPIPP", "Geo-distributed"}
	for _, a := range apps.All() {
		sums := make([]float64, len(names))
		for d := 0; d < cfg.Draws; d++ {
			seed := cfg.Seed + int64(d)*1000
			inst, err := BuildInstance(cloud, a, 64, a.DefaultIters(), cfg.ConstraintRatio, seed)
			if err != nil {
				return nil, err
			}
			base, err := inst.BaselineCost(cfg.Repeats, seed+100)
			if err != nil {
				return nil, err
			}
			for i, m := range StandardMappers(seed, cfg.Workers) {
				pl, _, err := inst.MapAndTime(m)
				if err != nil {
					return nil, err
				}
				sums[i] += ImprovementPct(base, inst.CommCost(pl))
			}
		}
		row := []string{a.Name()}
		for i := range names {
			row = append(row, fmt.Sprintf("%.0f%%", sums[i]/float64(cfg.Draws)))
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("Paper shape: Geo >60%% for all apps; improvements exceed Figure 5 because computation/IO time is excluded.")
	return r, nil
}

// improvementFigure drives Figure 5: end-to-end trace-replay improvement
// including computation, I/O and optimization overhead.
func improvementFigure(cfg Config, id, title string, includeCompute bool, workloads []apps.App) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"App", "Greedy", "MPIPP", "Geo-distributed"},
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	names := []string{"Greedy", "MPIPP", "Geo-distributed"}
	for _, a := range workloads {
		sums := make([]float64, len(names))
		for d := 0; d < cfg.Draws; d++ {
			seed := cfg.Seed + int64(d)*1000
			inst, err := BuildInstance(cloud, a, 64, a.DefaultIters(), cfg.ConstraintRatio, seed)
			if err != nil {
				return nil, err
			}
			times, err := measureApp(inst, Config{Seed: seed, Repeats: cfg.Repeats, Draws: 1, ConstraintRatio: cfg.ConstraintRatio}, SimReplay)
			if err != nil {
				return nil, err
			}
			for i, name := range names {
				res := times.results[name]
				var baseline, v float64
				if includeCompute {
					baseline = times.baseline.Total()
					v = res.Total() + times.overhead[name]
				} else {
					baseline = times.baseline.CommSeconds
					v = res.CommSeconds
				}
				sums[i] += ImprovementPct(baseline, v)
			}
		}
		row := []string{a.Name()}
		for i := range names {
			row = append(row, fmt.Sprintf("%.0f%%", sums[i]/float64(cfg.Draws)))
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("Paper shape: Geo wins everywhere; Greedy strong on LU/BT/SP, weak on K-means; DNN gains smallest (communication is a small fraction).")
	return r, nil
}

// Figure7 reproduces Figure 7: communication improvement over Baseline at
// scales from 64 to 8192 machines (4 regions, even split) for LU, K-means
// and DNN, comparing Greedy and Geo-distributed. MPIPP is omitted beyond
// 1000 processes as in the paper (its overhead dominates).
func Figure7(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	scales := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	if cfg.Quick {
		scales = []int{64, 128}
	}
	r := &Report{
		ID:     "fig7",
		Title:  "Communication improvement over Baseline vs scale (4 regions)",
		Header: []string{"App", "Machines", "Greedy", "Geo-distributed"},
	}
	for _, name := range []string{"LU", "K-means", "DNN"} {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, n := range scales {
			cloud, err := PaperCloudForScale(n, cfg.Seed)
			if err != nil {
				return nil, err
			}
			draws := cfg.Draws
			if n >= 1024 && draws > 2 {
				draws = 2
			}
			sums := make([]float64, 2)
			for d := 0; d < draws; d++ {
				seed := cfg.Seed + int64(d)*1000
				inst, err := BuildInstance(cloud, a, n, 1, cfg.ConstraintRatio, seed)
				if err != nil {
					return nil, err
				}
				base, err := inst.BaselineCost(cfg.Repeats, seed+7)
				if err != nil {
					return nil, err
				}
				for i, m := range []core.Mapper{&baselines.Greedy{}, &core.GeoMapper{Kappa: 4, Seed: seed, Workers: cfg.Workers}} {
					pl, _, err := inst.MapAndTime(m)
					if err != nil {
						return nil, err
					}
					sums[i] += ImprovementPct(base, inst.CommCost(pl))
				}
			}
			row := []string{name, fmt.Sprintf("%d", n)}
			for i := range sums {
				row = append(row, fmt.Sprintf("%.0f%%", sums[i]/float64(draws)))
			}
			r.Rows = append(r.Rows, row)
		}
	}
	r.AddNote("Paper shape: improvements decay slowly with scale; Geo stays >50%% even at 8192; Greedy <10%% for K-means/DNN but >30%% for LU.")
	return r, nil
}

// Figure8 reproduces Figure 8: Geo-distributed's communication improvement
// over Greedy as the data-movement constraint ratio grows from 0.2 to 1.0.
func Figure8(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ratios := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	r := &Report{
		ID:     "fig8",
		Title:  "Geo-distributed improvement over Greedy vs constraint ratio (64 processes)",
		Header: []string{"App", "20%", "40%", "60%", "80%", "100%"},
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"LU", "K-means", "DNN"} {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, ratio := range ratios {
			var sum float64
			for d := 0; d < cfg.Draws; d++ {
				seed := cfg.Seed + int64(d)*1000
				inst, err := BuildInstance(cloud, a, 64, 1, ratio, seed)
				if err != nil {
					return nil, err
				}
				greedyPl, _, err := inst.MapAndTime(&baselines.Greedy{})
				if err != nil {
					return nil, err
				}
				geoPl, _, err := inst.MapAndTime(&core.GeoMapper{Kappa: 4, Seed: seed, Workers: cfg.Workers})
				if err != nil {
					return nil, err
				}
				sum += ImprovementPct(inst.CommCost(greedyPl), inst.CommCost(geoPl))
			}
			row = append(row, fmt.Sprintf("%.0f%%", sum/float64(cfg.Draws)))
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("Paper shape: concave decay for LU/K-means (small ratios barely hurt), near-linear decay for DNN; 100%% pins everything so the gap closes.")
	return r, nil
}

// Figure9 reproduces Figure 9: the Monte Carlo CDF of communication cost
// and where each algorithm's solution falls on it. The paper uses 10M
// random mappings; the default here is 100k (2k under Quick), which pins
// the percentiles well enough to verify the paper's <1% / <0.1% claims.
func Figure9(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	samples := 100_000
	if cfg.Quick {
		samples = 2_000
	}
	r := &Report{
		ID:     "fig9",
		Title:  fmt.Sprintf("Monte Carlo CDF position of each algorithm (%d samples, cost model)", samples),
		Header: []string{"App", "Algorithm", "NormCost", "CDF percentile"},
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"LU", "K-means", "DNN"} {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		inst, err := BuildInstance(cloud, a, 64, 1, cfg.ConstraintRatio, cfg.Seed)
		if err != nil {
			return nil, err
		}
		mc := &baselines.MonteCarlo{Seed: cfg.Seed}
		costs, err := mc.Sample(inst.Problem, samples)
		if err != nil {
			return nil, err
		}
		cdf := stats.NewCDF(costs)
		maxCost := stats.Max(costs)
		for _, m := range StandardMappers(cfg.Seed, cfg.Workers) {
			pl, _, err := inst.MapAndTime(m)
			if err != nil {
				return nil, err
			}
			c := inst.Problem.Cost(pl)
			r.AddRow(name, m.Name(),
				fmt.Sprintf("%.3f", c.Float()/maxCost),
				fmt.Sprintf("%.3f%%", 100*cdf.At(c.Float())))
		}
	}
	r.AddNote("Paper shape: Geo is near-optimal — below the 1%% percentile for LU and 0.1%% for K-means/DNN; Greedy ≈ random (50%%) on K-means/DNN.")
	r.AddNote("Cost here is the α–β model of communication time (Formula 3), the quantity the paper's simulator measures.")
	return r, nil
}

// Figure10 reproduces Figure 10: the best cost found by K random mappings
// as K grows (normalized to the random-mapping mean), against
// Geo-distributed's cost. The paper runs K up to 10^7; the default here is
// 10^5 (10^3 under Quick).
func Figure10(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	maxExp := 5
	if cfg.Quick {
		maxExp = 3
	}
	var ks []int
	for e, k := 0, 1; e <= maxExp; e, k = e+1, k*10 {
		ks = append(ks, k)
	}
	r := &Report{
		ID:    "fig10",
		Title: "Normalized minimal cost of best-of-K random mapping vs K",
		Header: append([]string{"App"}, func() []string {
			var h []string
			for _, k := range ks {
				h = append(h, fmt.Sprintf("K=%d", k))
			}
			return append(h, "Geo-distributed")
		}()...),
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"LU", "K-means", "DNN"} {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		inst, err := BuildInstance(cloud, a, 64, 1, cfg.ConstraintRatio, cfg.Seed)
		if err != nil {
			return nil, err
		}
		mc := &baselines.MonteCarlo{Seed: cfg.Seed}
		curve, err := mc.BestOfK(inst.Problem, ks)
		if err != nil {
			return nil, err
		}
		// Normalize by the expected random cost (a modest sample mean).
		sample, err := (&baselines.MonteCarlo{Seed: cfg.Seed + 3}).Sample(inst.Problem, 200)
		if err != nil {
			return nil, err
		}
		mean := stats.Mean(sample)
		row := []string{name}
		for _, c := range curve {
			row = append(row, fmt.Sprintf("%.3f", c/mean))
		}
		geoPl, _, err := inst.MapAndTime(&core.GeoMapper{Kappa: 4, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.3f", inst.Problem.Cost(geoPl).Float()/mean))
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("Paper shape: best-of-K decreases ≈ log(K); Geo-distributed matches the Monte Carlo optimum that needs K ≈ 10^4 samples.")
	return r, nil
}
