package experiments

import (
	"fmt"
	"sort"
)

// Func is an experiment driver.
type Func func(Config) (*Report, error)

// registry maps experiment identifiers to drivers. Identifiers follow the
// paper's artifact numbering.
var registry = map[string]Func{
	"table1": Table1,
	"table2": Table2,
	"table3": Table3,
	"fig3":   Figure3,
	"fig4":   Figure4,
	"fig5":   Figure5,
	"fig6":   Figure6,
	"fig7":   Figure7,
	"fig8":   Figure8,
	"fig9":   Figure9,
	"fig10":  Figure10,
	// Extensions beyond the paper's published evaluation.
	"azure":           ExtAzure,
	"contention":      ExtContention,
	"collectives":     ExtCollectives,
	"multiconstraint": ExtMultiConstraint,
	"headline":        ExtHeadline,
	"manysites":       ExtManySites,
	"robustness":      ExtRobustness,
	"orders":          OrderSearch,
	"regauge":         ExtRegauge,
	"multilevel":      ExtMultilevel,
	"mlsmoke":         MultilevelSmoke,
}

// IDs returns all experiment identifiers in a stable order (tables first,
// then figures by number).
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return expOrder(out[a]) < expOrder(out[b]) })
	return out
}

func expOrder(id string) int {
	order := map[string]int{
		"table1": 1, "table2": 2, "table3": 3,
		"fig3": 10, "fig4": 11, "fig5": 12, "fig6": 13,
		"fig7": 14, "fig8": 15, "fig9": 16, "fig10": 17,
		"azure": 20, "contention": 21, "collectives": 22, "multiconstraint": 23, "headline": 24, "manysites": 25,
		"robustness": 26, "orders": 27, "regauge": 28, "multilevel": 29, "mlsmoke": 30,
	}
	if o, ok := order[id]; ok {
		return o
	}
	return 100
}

// Run executes the experiment with the given identifier.
//
//geolint:deterministic
func Run(id string, cfg Config) (*Report, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return fn(cfg)
}

// RunAll executes every experiment in order and returns the reports.
//
//geolint:deterministic
func RunAll(cfg Config) ([]*Report, error) {
	var out []*Report
	for _, id := range IDs() {
		rep, err := Run(id, cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
