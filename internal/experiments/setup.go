package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/core"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/netsim"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/trace"
	"geoprocmap/internal/units"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives every random choice (cloud jitter, calibration noise,
	// constraint sampling, baseline mappings).
	Seed int64
	// Quick shrinks sample counts and scale sweeps so the full suite runs
	// in seconds (used by tests); the defaults reproduce the paper's
	// settings where tractable on one machine.
	Quick bool
	// ConstraintRatio is the fraction of pinned processes (paper default 0.2).
	ConstraintRatio float64
	// Repeats is the number of measured runs averaged per data point
	// (the paper uses 100 on EC2); 0 selects 20, or 5 under Quick.
	Repeats int
	// Draws is the number of independent instances (constraint vectors and
	// noise seeds) each improvement figure averages over, mirroring the
	// paper's repeated measurements; 0 selects 5, or 3 under Quick.
	Draws int
	// Workers is the geo mapper's order-search parallelism for every
	// GeoMapper an experiment constructs (0 = GOMAXPROCS, 1 = serial).
	// Any value produces byte-identical placements — the parallel search
	// reduces deterministically — so it never perturbs reported results,
	// only wall-clock overhead columns.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.ConstraintRatio == 0 { //geolint:ignore floatcmp zero-value Config default sentinel; 0 is exactly representable
		c.ConstraintRatio = 0.2
	}
	if c.Repeats == 0 {
		if c.Quick {
			c.Repeats = 5
		} else {
			c.Repeats = 20
		}
	}
	if c.Draws == 0 {
		if c.Quick {
			c.Draws = 3
		} else {
			c.Draws = 5
		}
	}
	return c
}

// RandomConstraints builds a constraint vector pinning ratio·n processes
// to uniformly random sites, never exceeding any site's capacity. Ratio 0
// returns an all-unconstrained vector; ratio 1 pins everything.
func RandomConstraints(n int, capacity mat.IntVec, ratio float64, rng *rand.Rand) (mat.IntVec, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("experiments: constraint ratio %v outside [0,1]", ratio)
	}
	if capacity.Sum() < n {
		return nil, fmt.Errorf("experiments: capacity %d below %d processes", capacity.Sum(), n)
	}
	c := mat.NewIntVec(n, core.Unconstrained)
	k := int(ratio*float64(n) + 0.5)
	perm := rng.Perm(n)
	remaining := capacity.Clone()
	for _, i := range perm[:k] {
		// Draw a site weighted by remaining pinned capacity so the vector
		// stays feasible even at ratio 1.
		total := remaining.Sum()
		pick := rng.Intn(total)
		site := 0
		for s, r := range remaining {
			if pick < r {
				site = s
				break
			}
			pick -= r
		}
		c[i] = site
		remaining[site]--
	}
	return c, nil
}

// SimMode selects the netsim engine used to time a placement.
type SimMode int

const (
	// SimReplay uses the logical-clock trace replay — the default, and the
	// model matching the workloads' dependency structure.
	SimReplay SimMode = iota
	// SimFluid uses the exact max-min fluid engine on concurrent phases.
	SimFluid
	// SimFluidPS uses the analytic processor-sharing fluid engine.
	SimFluidPS
)

// Instance is one fully-built experiment scenario: a cloud, a workload,
// its profiled communication pattern, and the mapping problem with
// calibrated (not ground-truth) network matrices, as the paper's pipeline
// prescribes.
type Instance struct {
	Cloud   *netmodel.Cloud
	App     apps.App
	N       int
	Iters   int
	Problem *core.Problem
	// IterTrace is the single-iteration event stream (iterations are
	// identical, so one iteration is simulated and scaled).
	IterTrace []trace.Event
	// IterPhases groups the iteration's messages into sequential
	// sub-phases for the fluid engines.
	IterPhases [][]netsim.Message
}

// BuildInstance profiles the app, calibrates the cloud, and assembles the
// mapping problem. nodesPerSite × sites must be ≥ n.
func BuildInstance(cloud *netmodel.Cloud, app apps.App, n, iters int, constraintRatio float64, seed int64) (*Instance, error) {
	if n > cloud.TotalNodes() {
		return nil, fmt.Errorf("experiments: %d processes on a %d-node cloud", n, cloud.TotalNodes())
	}
	rec, err := app.Trace(n, 1)
	if err != nil {
		return nil, err
	}
	graph := rec.Graph()
	events := rec.Events()
	// One iteration's messages, grouped into sequential sub-phases.
	phases := netsim.PhasesFromEvents(events)

	cal, err := calib.Calibrate(cloud, calib.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	rng := stats.NewRand(seed + 1)
	constraints, err := RandomConstraints(n, cloud.Capacity(), constraintRatio, rng)
	if err != nil {
		return nil, err
	}
	// The pattern the optimizer sees is the full run (iters iterations);
	// scale the single-iteration profile rather than re-tracing.
	prob := &core.Problem{
		Comm:       graph,
		LT:         cal.LT,
		BT:         cal.BT,
		PC:         cloud.Coordinates(),
		Capacity:   cloud.Capacity(),
		Constraint: constraints,
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	return &Instance{
		Cloud:      cloud,
		App:        app,
		N:          n,
		Iters:      iters,
		Problem:    prob,
		IterTrace:  events,
		IterPhases: phases,
	}, nil
}

// PaperCloudForScale builds the evaluation cloud: four regions with
// n/4 nodes each (the paper's even distribution), m4.xlarge instances.
func PaperCloudForScale(n int, seed int64) (*netmodel.Cloud, error) {
	if n%4 != 0 {
		return nil, fmt.Errorf("experiments: process count %d not divisible by 4 regions", n)
	}
	return netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, n/4, netmodel.Options{Seed: seed})
}

// SimResult is the simulated execution of the full run under one placement.
type SimResult struct {
	ComputeSeconds float64
	CommSeconds    float64
}

// Total returns the end-to-end run time.
func (s SimResult) Total() float64 { return s.ComputeSeconds + s.CommSeconds }

// Simulate runs the instance's per-iteration communication under the
// placement with the chosen engine and scales to the full iteration count.
// The simulator runs in dedicated-WAN mode, matching the paper's α–β
// network formulation (no shared-pipe contention); the contention
// experiment exercises the shared model explicitly.
func (inst *Instance) Simulate(pl core.Placement, mode SimMode) (SimResult, error) {
	return inst.SimulateWith(pl, mode, netsim.Options{DedicatedWAN: true})
}

// SimulateWith is Simulate with explicit simulator options.
func (inst *Instance) SimulateWith(pl core.Placement, mode SimMode, opt netsim.Options) (SimResult, error) {
	sim, err := netsim.NewWithOptions(inst.Cloud, pl, opt)
	if err != nil {
		return SimResult{}, err
	}
	var comm units.Seconds
	switch mode {
	case SimReplay:
		comm, err = sim.ReplayTrace(inst.IterTrace)
		if err != nil {
			return SimResult{}, err
		}
	case SimFluid, SimFluidPS:
		for _, phase := range inst.IterPhases {
			var t units.Seconds
			if mode == SimFluidPS {
				t, err = sim.SimulatePhasePS(phase)
			} else {
				t, err = sim.SimulatePhase(phase)
			}
			if err != nil {
				return SimResult{}, err
			}
			comm += t
		}
	default:
		return SimResult{}, fmt.Errorf("experiments: unknown sim mode %d", mode)
	}
	iters := float64(inst.Iters)
	return SimResult{
		ComputeSeconds: inst.App.ComputeTime(inst.N) * iters,
		CommSeconds:    comm.Scale(iters).Float(),
	}, nil
}

// BaselineSim averages the simulated result over `repeats` random feasible
// placements — the paper's Baseline measurement.
func (inst *Instance) BaselineSim(repeats int, seed int64, mode SimMode) (SimResult, error) {
	if repeats < 1 {
		return SimResult{}, fmt.Errorf("experiments: repeats %d, want ≥ 1", repeats)
	}
	rng := stats.NewRand(seed)
	var acc SimResult
	for i := 0; i < repeats; i++ {
		pl, err := core.RandomPlacement(inst.Problem, rng)
		if err != nil {
			return SimResult{}, err
		}
		r, err := inst.Simulate(pl, mode)
		if err != nil {
			return SimResult{}, err
		}
		acc.ComputeSeconds += r.ComputeSeconds
		acc.CommSeconds += r.CommSeconds
	}
	acc.ComputeSeconds /= float64(repeats)
	acc.CommSeconds /= float64(repeats)
	return acc, nil
}

// CommCost returns the α–β predicted communication time of a placement
// (Formula 3 summed over the pattern) — the metric the paper's simulation
// study evaluates (its Monte Carlo analysis computes communication time
// from exactly this model).
func (inst *Instance) CommCost(pl core.Placement) float64 {
	return inst.Problem.Cost(pl).Float() * float64(inst.Iters)
}

// BaselineCost averages CommCost over `repeats` random feasible
// placements.
func (inst *Instance) BaselineCost(repeats int, seed int64) (float64, error) {
	if repeats < 1 {
		return 0, fmt.Errorf("experiments: repeats %d, want ≥ 1", repeats)
	}
	rng := stats.NewRand(seed)
	var acc float64
	for i := 0; i < repeats; i++ {
		pl, err := core.RandomPlacement(inst.Problem, rng)
		if err != nil {
			return 0, err
		}
		acc += inst.CommCost(pl)
	}
	return acc / float64(repeats), nil
}

// MapAndTime runs a mapper on the instance's problem, returning the
// placement and the wall-clock optimization overhead.
func (inst *Instance) MapAndTime(m core.Mapper) (core.Placement, time.Duration, error) {
	start := time.Now() //geolint:detsource wall-clock overhead measurement; timing is reported, placements never depend on it
	pl, err := m.Map(inst.Problem)
	return pl, time.Since(start), err //geolint:detsource wall-clock overhead measurement; timing is reported, placements never depend on it
}

// ImprovementPct is the paper's metric: how much faster v is than the
// baseline, in percent of the baseline.
func ImprovementPct(baseline, v float64) float64 {
	if baseline == 0 { //geolint:ignore floatcmp exact-zero guard against division by zero
		return 0
	}
	return (baseline - v) / baseline * 100
}

// StandardMappers returns the paper's three compared algorithms. workers
// sets the geo mapper's order-search parallelism (see Config.Workers).
func StandardMappers(seed int64, workers int) []core.Mapper {
	return []core.Mapper{
		&baselines.Greedy{},
		&baselines.MPIPP{Seed: seed},
		&core.GeoMapper{Kappa: 4, Seed: seed, Workers: workers},
	}
}
