package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/core"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/regauge"
	"geoprocmap/internal/service"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// RegaugeScenario configures one closed-loop re-gauging replay: a day of
// a fault preset, a gauger ticking on the schedule clock, and a window-
// by-window comparison of the stale initial placement against the
// continuously re-gauged one. Zero values select the noted defaults.
type RegaugeScenario struct {
	// Preset names the fault schedule (default "DiurnalDrift").
	Preset string
	// N is the process count (default 64) and App the workload (default
	// "CG" — a workload whose cross-site traffic is heavy enough that a
	// regional congestion peak actually moves the cost, and whose
	// measured critical path tracks the α–β objective, so an economic
	// remap also shows up in the replayed comm time. The NPB stencils end
	// up so tightly colocated that a peak barely touches them, while the
	// parameter-server workloads replay through a synchronization
	// bottleneck the sum-cost objective does not see).
	N   int
	App string
	// DaySeconds is the replayed horizon (default 960 — four DiurnalDrift
	// cycles).
	DaySeconds float64
	// Interval is the gauge interval in schedule seconds (default 30).
	Interval float64
	// DriftThreshold, Cooldown, SafetyFactor tune the gauger (defaults
	// 0.15, 3 × Interval, 2).
	DriftThreshold float64
	Cooldown       float64
	SafetyFactor   float64
	// Seed drives everything; Workers is the geo mapper's order-search
	// parallelism (byte-identical results at any value).
	Seed    int64
	Workers int
}

func (s RegaugeScenario) withDefaults() RegaugeScenario {
	if s.Preset == "" {
		s.Preset = "DiurnalDrift"
	}
	if s.N == 0 {
		s.N = 64
	}
	if s.App == "" {
		s.App = "CG"
	}
	if s.DaySeconds <= 0 {
		s.DaySeconds = 960
	}
	if s.Interval <= 0 {
		s.Interval = 30
	}
	return s
}

// RegaugeOutcome is the full deterministic record of one scenario run.
type RegaugeOutcome struct {
	Preset  string
	Windows int
	// Passes is the gauger's pass-by-pass record.
	Passes []regauge.PassResult
	// Published counts automatic snapshot publications; the remap
	// counters split the hysteresis outcomes.
	Published            int
	RemapsTriggered      int
	SuppressedCooldown   int
	SuppressedUneconomic int
	// StaleComm and RemappedComm are the per-window single-iteration
	// communication times (seconds) of the frozen initial placement and
	// the continuously re-gauged one.
	StaleComm    []float64
	RemappedComm []float64
	// MigrationSeconds totals the checkpoint-transfer time of every
	// triggered remap.
	MigrationSeconds float64
	// InitialDigest and FinalDigest are the placement digests before and
	// after the day.
	InitialDigest, FinalDigest string
}

// Percentile digests the per-window samples (p in [0,100]).
func (o *RegaugeOutcome) StalePercentile(p float64) float64 {
	return stats.Percentile(o.StaleComm, p)
}
func (o *RegaugeOutcome) RemappedPercentile(p float64) float64 {
	return stats.Percentile(o.RemappedComm, p)
}

// Digest is the canonical SHA-256 of the run's decision history:
// published versions, every remap decision, and the final placement
// digest. Two runs with the same seed, schedule, and clock must produce
// byte-identical digests at any Workers setting.
func (o *RegaugeOutcome) Digest() string {
	h := sha256.New()
	line := func(format string, args ...any) {
		fmt.Fprintf(h, format+"\n", args...) //geolint:ignore errcheck hash.Hash.Write documents a nil error
	}
	line("preset=%s windows=%d", o.Preset, o.Windows)
	for _, pr := range o.Passes {
		line("pass=%d at=%.6f outcome=%s mode=%s version=%d drift=%.9f",
			pr.Pass, pr.At.Float(), pr.Outcome, pr.Mode, pr.PublishedVersion, pr.MaxDrift)
		for _, d := range pr.Decisions {
			line("  target=%s action=%s moved=%d saving=%.9f migration=%.9f",
				d.Target, d.Action, d.Moved, d.SavingSeconds, d.MigrationSeconds)
		}
	}
	line("initial=%s final=%s", o.InitialDigest, o.FinalDigest)
	return hex.EncodeToString(h.Sum(nil))
}

// staticSource is the scenario's single-placement TargetSource: one
// tracked placement whose current result advances as remaps land.
type staticSource struct {
	target  regauge.Target
	applied []*service.MapResult
}

func (s *staticSource) Targets() []regauge.Target { return []regauge.Target{s.target} }

func (s *staticSource) Apply(t regauge.Target, res *service.MapResult) error {
	s.target.Result = res
	s.applied = append(s.applied, res)
	return nil
}

// RunRegauge replays a day of the scenario's fault preset with the
// re-gauging loop live: geomapd's control loop, but driven offline on
// the schedule clock so the whole day runs in milliseconds and the
// decision history is exactly reproducible.
//
// Each gauge interval contributes one measurement window: a single
// iteration of the workload replayed under the fault schedule at the
// window's start, once with the stale initial placement and once with
// the re-gauged placement current at that time. The percentile spread of
// the two series is the scenario's SLO comparison.
func RunRegauge(sc RegaugeScenario) (*RegaugeOutcome, error) {
	sc = sc.withDefaults()
	cloud, err := HeadroomCloudForScale(sc.N, sc.Seed)
	if err != nil {
		return nil, err
	}
	app, err := apps.ByName(sc.App)
	if err != nil {
		return nil, err
	}
	inst, err := BuildInstance(cloud, app, sc.N, 1, 0.0, sc.Seed)
	if err != nil {
		return nil, err
	}
	sched, err := faults.Preset(sc.Preset, cloud.M(), sc.Seed)
	if err != nil {
		return nil, err
	}
	mapper := &core.GeoMapper{Kappa: 4, Seed: sc.Seed, Workers: sc.Workers}
	stalePl, err := mapper.Map(inst.Problem)
	if err != nil {
		return nil, err
	}

	// The store starts from the instance's calibrated model — the same
	// matrices the initial placement was optimized against — so the first
	// drift the gauger sees is the fault schedule's, not calibration noise.
	initial := service.SnapshotFromCloud(cloud)
	initial.Source = "calibration"
	initial.LT = inst.Problem.LT
	initial.BT = inst.Problem.BT
	store, err := service.NewStore(initial)
	if err != nil {
		return nil, err
	}

	src := &staticSource{target: regauge.Target{
		Key:     "scenario",
		Request: &service.MapRequest{Workload: sc.App, Procs: sc.N, Algorithm: "geo", Seed: sc.Seed},
		Result: &service.MapResult{
			SnapshotVersion: 1,
			Algorithm:       mapper.Name(),
			Placement:       []int(stalePl),
			Digest:          service.PlacementDigest(stalePl),
		},
		Problem: func(snap *service.Snapshot) (*core.Problem, error) {
			// Same pattern and constraints, fresh network model.
			p := *inst.Problem
			p.LT = snap.LT
			p.BT = snap.BT
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return &p, nil
		},
	}}

	g, err := regauge.New(regauge.Config{
		Cloud:          cloud,
		Store:          store,
		Source:         src,
		Faults:         sched,
		Seed:           sc.Seed,
		Interval:       units.Seconds(sc.Interval),
		DriftThreshold: sc.DriftThreshold,
		Cooldown:       units.Seconds(sc.Cooldown),
		SafetyFactor:   sc.SafetyFactor,
	})
	if err != nil {
		return nil, err
	}

	out := &RegaugeOutcome{Preset: sc.Preset, InitialDigest: service.PlacementDigest(stalePl)}
	for now := sc.Interval; now <= sc.DaySeconds; {
		pr := g.Step(units.Seconds(now))
		out.Passes = append(out.Passes, pr)
		for _, d := range pr.Decisions {
			switch d.Action {
			case regauge.ActionTriggered:
				out.RemapsTriggered++
				out.MigrationSeconds += d.MigrationSeconds
			case regauge.ActionCooldown:
				out.SuppressedCooldown++
			case regauge.ActionUneconomic:
				out.SuppressedUneconomic++
			}
		}
		if pr.PublishedVersion > 0 {
			out.Published++
		}

		stale, _, err := inst.SimulateFaultyReplay(stalePl, sched, now)
		if err != nil {
			return nil, err
		}
		current := core.Placement(src.target.Result.Placement)
		remapped, _, err := inst.SimulateFaultyReplay(current, sched, now)
		if err != nil {
			return nil, err
		}
		out.StaleComm = append(out.StaleComm, stale.CommSeconds)
		out.RemappedComm = append(out.RemappedComm, remapped.CommSeconds)
		out.Windows++

		now += pr.NextWait.Float()
	}
	out.FinalDigest = src.target.Result.Digest
	return out, nil
}

// ExtRegauge is the geobench experiment over the closed-loop re-gauging
// scenario: a day of DiurnalDrift and a day of SiteBlackout, comparing
// the SLO percentiles of the stale placement against the continuously
// re-gauged one, with the hysteresis accounting alongside.
func ExtRegauge(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "regauge",
		Title:  "Extension: closed-loop re-gauging over a fault day (CG, 64 processes, headroom cloud)",
		Header: []string{"Preset", "Windows", "Published", "Remaps", "Suppressed", "Stale p50 (s)", "Stale p99 (s)", "Regauged p50 (s)", "Regauged p99 (s)", "p99 gain"},
	}
	day := 960.0
	if cfg.Quick {
		day = 480
	}
	for _, preset := range []string{"DiurnalDrift", "SiteBlackout"} {
		out, err := RunRegauge(RegaugeScenario{
			Preset:     preset,
			DaySeconds: day,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		r.AddRow(preset,
			fmt.Sprint(out.Windows),
			fmt.Sprint(out.Published),
			fmt.Sprint(out.RemapsTriggered),
			fmt.Sprint(out.SuppressedCooldown+out.SuppressedUneconomic),
			fmt.Sprintf("%.2f", out.StalePercentile(50)),
			fmt.Sprintf("%.2f", out.StalePercentile(99)),
			fmt.Sprintf("%.2f", out.RemappedPercentile(50)),
			fmt.Sprintf("%.2f", out.RemappedPercentile(99)),
			fmt.Sprintf("%.1f%%", ImprovementPct(out.StalePercentile(99), out.RemappedPercentile(99))))
	}
	r.AddNote("Each gauge interval contributes one window: a single measured iteration under the schedule at that time, stale vs currently re-gauged placement. Percentiles are over the day's windows.")
	r.AddNote("Suppressed counts both hysteresis outcomes: remaps inside a cooldown window and remaps whose predicted saving did not clear migration cost × safety factor.")
	r.AddNote("The decision history (published versions, remap decisions, final digest) hashes to a byte-identical digest for a fixed seed at any Workers setting; the determinism test asserts this.")
	return r, nil
}
