package experiments

import (
	"fmt"
	"strings"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/calib"
	"geoprocmap/internal/comm"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/netmodel"
)

// Table1 reproduces the paper's Table 1: average network bandwidth of five
// EC2 instance types within US East, within Singapore, and across the two
// regions, via ping-pong calibration of the modeled cloud.
func Table1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "table1",
		Title:  "EC2 bandwidth (MB/s) by instance type: intra US East, intra Singapore, cross-region",
		Header: []string{"Instance type", "US East", "Singapore", "Cross-region", "Paper (E/S/X)"},
	}
	paper := map[string][3]float64{
		"m1.small":   {15, 22, 5.4},
		"m1.medium":  {80, 78, 6.3},
		"m1.large":   {84, 82, 6.3},
		"m1.xlarge":  {102, 103, 6.4},
		"c3.8xlarge": {148, 204, 6.6},
	}
	for _, typ := range []string{"m1.small", "m1.medium", "m1.large", "m1.xlarge", "c3.8xlarge"} {
		cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, typ, []string{"us-east-1", "ap-southeast-1"}, 2, netmodel.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		cal, err := calib.Calibrate(cloud, calib.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		p := paper[typ]
		r.AddRow(typ,
			fmt.Sprintf("%.0f", cal.BT.At(0, 0)/netmodel.MB),
			fmt.Sprintf("%.0f", cal.BT.At(1, 1)/netmodel.MB),
			fmt.Sprintf("%.1f", cal.BT.At(0, 1)/netmodel.MB),
			fmt.Sprintf("%.0f/%.0f/%.1f", p[0], p[1], p[2]))
	}
	r.AddNote("Observation 1: intra-region bandwidth is ~10× or more above cross-region bandwidth for every type.")
	return r, nil
}

// Table2 reproduces Table 2: c3.8xlarge bandwidth and latency from US East
// to three regions at increasing distance.
func Table2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "table2",
		Title:  "EC2 c3.8xlarge from US East: bandwidth (MB/s) and latency (s) vs distance",
		Header: []string{"Peer region", "Bandwidth", "Latency", "Distance", "Paper (BW/Lat)"},
	}
	paper := map[string][2]float64{
		"us-west-1":      {21, 0.16},
		"eu-west-1":      {19, 0.17},
		"ap-southeast-1": {6.6, 0.35},
	}
	east := geo.MustRegion(geo.EC2Regions, "us-east-1")
	for _, peer := range []string{"us-west-1", "eu-west-1", "ap-southeast-1"} {
		cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "c3.8xlarge", []string{"us-east-1", peer}, 2, netmodel.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		cal, err := calib.Calibrate(cloud, calib.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		km := geo.HaversineKm(east.Location, geo.MustRegion(geo.EC2Regions, peer).Location)
		p := paper[peer]
		r.AddRow(peer,
			fmt.Sprintf("%.1f", cal.BT.At(0, 1)/netmodel.MB),
			fmt.Sprintf("%.2f", cal.LT.At(0, 1)),
			geo.ClassifyKm(km).String(),
			fmt.Sprintf("%.1f/%.2f", p[0], p[1]))
	}
	r.AddNote("Observation 2: bandwidth falls and latency rises monotonically with geographic distance.")
	return r, nil
}

// Table3 reproduces Table 3: Windows Azure Standard D2 intra East US and
// to West Europe / Japan East.
func Table3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "table3",
		Title:  "Azure Standard D2 from East US: bandwidth (MB/s) and latency (ms)",
		Header: []string{"Peer", "Bandwidth", "Latency(ms)", "Distance", "Paper (BW/Lat)"},
	}
	cloud, err := netmodel.EvenCloud(netmodel.WindowsAzure, "Standard_D2", []string{"east-us", "west-europe", "japan-east"}, 2, netmodel.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	cal, err := calib.Calibrate(cloud, calib.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rows := []struct {
		label string
		k, l  int
		paper [2]float64
		class geo.DistanceClass
	}{
		{"East US (intra)", 0, 0, [2]float64{62, 0.82}, geo.DistIntra},
		{"West Europe", 0, 1, [2]float64{2.9, 42}, geo.DistMedium},
		{"Japan East", 0, 2, [2]float64{1.3, 77}, geo.DistLong},
	}
	for _, row := range rows {
		r.AddRow(row.label,
			fmt.Sprintf("%.1f", cal.BT.At(row.k, row.l)/netmodel.MB),
			fmt.Sprintf("%.1f", cal.LT.At(row.k, row.l)*1000),
			row.class.String(),
			fmt.Sprintf("%.1f/%.2f", row.paper[0], row.paper[1]))
	}
	r.AddNote("The EC2 observations generalize to Azure: the heterogeneity is a property of geo-distribution, not one provider.")
	return r, nil
}

// Figure3 reproduces Figure 3: the communication-pattern matrices of the
// five applications profiled on 64 processes, summarized quantitatively
// and rendered as coarse ASCII heatmaps.
func Figure3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig3",
		Title:  "Communication patterns of the five workloads (64 processes, 1 iteration)",
		Header: []string{"App", "Edges", "MaxDeg", "Volume(MB)", "Msgs", "MeanMsg(KB)", "SizeKinds", "Locality"},
	}
	for _, a := range apps.All() {
		g, err := apps.Graph(a, 64, 1)
		if err != nil {
			return nil, err
		}
		sizes := map[int64]bool{}
		var local float64
		for i := 0; i < 64; i++ {
			for _, e := range g.Outgoing(i) {
				sizes[int64(e.Volume/e.Msgs)] = true
				d := e.Peer - i
				if d < 0 {
					d = -d
				}
				if d <= 8 {
					local += e.Volume
				}
			}
		}
		r.AddRow(a.Name(),
			fmt.Sprintf("%d", g.EdgeCount()),
			fmt.Sprintf("%d", g.MaxDegree()),
			fmt.Sprintf("%.2f", g.TotalVolume()/netmodel.MB),
			fmt.Sprintf("%.0f", g.TotalMsgs()),
			fmt.Sprintf("%.1f", g.TotalVolume()/g.TotalMsgs()/1024),
			fmt.Sprintf("%d", len(sizes)),
			fmt.Sprintf("%.0f%%", 100*local/g.TotalVolume()))
		r.AddNote("%s heatmap (8×8 process blocks):\n%s", a.Name(), HeatmapASCII(g, 8))
	}
	r.AddNote("LU/BT/SP are near-diagonal (locality ≈100%%); K-means is non-local; DNN's total volume is the smallest.")
	return r, nil
}

// HeatmapASCII renders an N-process communication matrix as a bins×bins
// character grid, dark characters meaning heavy traffic — a terminal
// rendition of the paper's Figure 3.
func HeatmapASCII(g *comm.Graph, bins int) string {
	if bins <= 0 || g.N() == 0 {
		return ""
	}
	if bins > g.N() {
		bins = g.N()
	}
	cells := make([][]float64, bins)
	for i := range cells {
		cells[i] = make([]float64, bins)
	}
	var maxCell float64
	for i := 0; i < g.N(); i++ {
		bi := i * bins / g.N()
		for _, e := range g.Outgoing(i) {
			bj := e.Peer * bins / g.N()
			cells[bi][bj] += e.Volume
			if cells[bi][bj] > maxCell {
				maxCell = cells[bi][bj]
			}
		}
	}
	shades := []byte(" .:-=+*#%@")
	var b strings.Builder
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			idx := 0
			if maxCell > 0 && cells[i][j] > 0 {
				idx = 1 + int(cells[i][j]/maxCell*float64(len(shades)-2))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
