package experiments

import (
	"fmt"
	"math"
	"testing"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/core"
	"geoprocmap/internal/faults"
)

// faultyRun captures everything the fault pipeline produces that must be
// reproducible: the stale-placement fault report, the remapped placement,
// and the bit patterns of the simulated communication times.
type faultyRun struct {
	report    string
	remapped  string
	staleBits uint64
	fixedBits uint64
	migration uint64
}

// TestFaultSeedDeterminism is the fault-layer twin of TestSeedDeterminism:
// two full fault-pipeline runs — headroom cloud, instance build, Geo
// mapping, SiteBlackout schedule, faulty replay, failure-aware remap,
// faulty replay of the repair — with the same seed must produce a
// byte-identical fault report, an identical remapped placement, and
// bit-identical communication costs. The stateless Hash01 loss draws and
// seeded schedule generation are what make this hold.
func TestFaultSeedDeterminism(t *testing.T) {
	const (
		n    = 64
		seed = 42
	)
	runOnce := func() faultyRun {
		t.Helper()
		cloud, err := HeadroomCloudForScale(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := BuildInstance(cloud, apps.NewLU(), n, 10, 0.2, seed)
		if err != nil {
			t.Fatal(err)
		}
		mapper := &core.GeoMapper{Kappa: 4, Seed: seed}
		pl, err := mapper.Map(inst.Problem)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := faults.Preset("SiteBlackout", cloud.M(), seed)
		if err != nil {
			t.Fatal(err)
		}
		staleRes, staleRep, err := inst.SimulateFaultyReplay(pl, sched, FaultStart)
		if err != nil {
			t.Fatal(err)
		}
		if staleRep.Empty() {
			t.Fatal("SiteBlackout produced an empty fault report")
		}
		remap, err := core.Remap(inst.Problem, pl, staleRep, core.RemapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(remap.Migrated) == 0 {
			t.Fatal("SiteBlackout remap migrated no processes")
		}
		fixedRes, _, err := inst.SimulateFaultyReplay(remap.Placement, sched, FaultStart)
		if err != nil {
			t.Fatal(err)
		}
		// Acceptance property: the failure-aware remapping must beat the
		// stale mapping's simulated cost on the blackout preset.
		if fixedRes.CommSeconds >= staleRes.CommSeconds {
			t.Fatalf("remap did not improve on the stale placement: %.2f s vs %.2f s",
				fixedRes.CommSeconds, staleRes.CommSeconds)
		}
		return faultyRun{
			report:    staleRep.String(),
			remapped:  fmt.Sprintf("%v", remap.Placement),
			staleBits: math.Float64bits(staleRes.CommSeconds),
			fixedBits: math.Float64bits(fixedRes.CommSeconds),
			migration: math.Float64bits(remap.MigrationSeconds.Float()),
		}
	}

	r1 := runOnce()
	r2 := runOnce()
	if r1.report != r2.report {
		t.Errorf("same-seed fault reports differ:\n run 1: %s\n run 2: %s", r1.report, r2.report)
	}
	if r1.remapped != r2.remapped {
		t.Errorf("same-seed remapped placements differ:\n run 1: %s\n run 2: %s", r1.remapped, r2.remapped)
	}
	if r1.staleBits != r2.staleBits {
		t.Errorf("same-seed stale costs differ bitwise: %016x vs %016x", r1.staleBits, r2.staleBits)
	}
	if r1.fixedBits != r2.fixedBits {
		t.Errorf("same-seed remapped costs differ bitwise: %016x vs %016x", r1.fixedBits, r2.fixedBits)
	}
	if r1.migration != r2.migration {
		t.Errorf("same-seed migration times differ bitwise: %016x vs %016x", r1.migration, r2.migration)
	}
}
