package experiments

import (
	"strconv"
	"strings"
	"testing"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/stats"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

// parsePct parses a "42%" cell.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"azure", "contention", "collectives", "multiconstraint", "headline", "manysites", "robustness", "orders", "regauge",
		"multilevel", "mlsmoke"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("IDs()[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, err := Run("table99", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRandomConstraints(t *testing.T) {
	capVec := mat.IntVec{4, 4, 4, 4}
	rng := stats.NewRand(1)
	for _, ratio := range []float64{0, 0.2, 0.5, 1} {
		c, err := RandomConstraints(16, capVec, ratio, rng)
		if err != nil {
			t.Fatal(err)
		}
		pinned := 0
		perSite := make([]int, 4)
		for _, s := range c {
			if s >= 0 {
				pinned++
				perSite[s]++
			}
		}
		want := int(ratio*16 + 0.5)
		if pinned != want {
			t.Errorf("ratio %v: pinned %d, want %d", ratio, pinned, want)
		}
		for j, n := range perSite {
			if n > capVec[j] {
				t.Errorf("ratio %v: site %d over capacity (%d > %d)", ratio, j, n, capVec[j])
			}
		}
	}
	if _, err := RandomConstraints(16, capVec, 1.5, rng); err == nil {
		t.Error("ratio > 1 accepted")
	}
	if _, err := RandomConstraints(99, capVec, 0.5, rng); err == nil {
		t.Error("insufficient capacity accepted")
	}
}

func TestBuildInstance(t *testing.T) {
	cloud, err := PaperCloudForScale(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := BuildInstance(cloud, apps.NewLU(), 64, 10, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Problem.N() != 64 || inst.Problem.M() != 4 {
		t.Errorf("problem is %d×%d, want 64 procs × 4 sites", inst.Problem.N(), inst.Problem.M())
	}
	if len(inst.IterPhases) == 0 || len(inst.IterTrace) == 0 {
		t.Error("no iteration phases or trace")
	}
	// Over-capacity request must fail.
	if _, err := BuildInstance(cloud, apps.NewLU(), 128, 1, 0, 1); err == nil {
		t.Error("128 processes on a 64-node cloud accepted")
	}
}

func TestInstanceSimulateAndBaseline(t *testing.T) {
	cloud, err := PaperCloudForScale(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := BuildInstance(cloud, apps.NewLU(), 64, 5, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := inst.BaselineSim(3, 9, SimReplay)
	if err != nil {
		t.Fatal(err)
	}
	if base.CommSeconds <= 0 || base.ComputeSeconds <= 0 {
		t.Errorf("baseline = %+v, want positive parts", base)
	}
	pl, dur, err := inst.MapAndTime(StandardMappers(2, 1)[2]) // Geo
	if err != nil {
		t.Fatal(err)
	}
	if dur < 0 {
		t.Error("negative overhead")
	}
	res, err := inst.Simulate(pl, SimReplay)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSeconds >= base.CommSeconds {
		t.Errorf("geo comm %v not below baseline %v", res.CommSeconds, base.CommSeconds)
	}
}

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(10, 5); got != 50 {
		t.Errorf("ImprovementPct(10,5) = %v", got)
	}
	if got := ImprovementPct(0, 5); got != 0 {
		t.Errorf("ImprovementPct(0,5) = %v, want 0", got)
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", "hello,world")
	r.AddNote("n=%d", 5)
	s := r.String()
	if !strings.Contains(s, "== x: t ==") || !strings.Contains(s, "note: n=5") {
		t.Errorf("String output malformed:\n%s", s)
	}
	csv := r.CSV()
	if !strings.Contains(csv, `"hello,world"`) {
		t.Errorf("CSV quoting missing:\n%s", csv)
	}
}

func TestHeatmapASCII(t *testing.T) {
	g, err := apps.Graph(apps.NewLU(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := HeatmapASCII(g, 8)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("heatmap has %d lines, want 8", len(lines))
	}
	for _, l := range lines {
		if len(l) != 8 {
			t.Fatalf("heatmap line %q has width %d", l, len(l))
		}
	}
	if HeatmapASCII(g, 0) != "" {
		t.Error("bins=0 should give empty heatmap")
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		rep, err := Run(id, quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
	}
}

func TestTable2DistanceOrdering(t *testing.T) {
	rep, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: us-west, ireland, singapore. Bandwidth must descend, latency ascend.
	var bws, lats []float64
	for _, row := range rep.Rows {
		bw, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		bws = append(bws, bw)
		lats = append(lats, lat)
	}
	if !(bws[0] > bws[2]) {
		t.Errorf("bandwidths not descending with distance: %v", bws)
	}
	if !(lats[0] < lats[2]) {
		t.Errorf("latencies not ascending with distance: %v", lats)
	}
}

func TestFigure3Characteristics(t *testing.T) {
	rep, err := Figure3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("fig3 has %d rows, want 5", len(rep.Rows))
	}
	byApp := map[string][]string{}
	for _, row := range rep.Rows {
		byApp[row[0]] = row
	}
	// NPB kernels are ~100% local; K-means is not.
	for _, name := range []string{"LU", "BT", "SP"} {
		if loc := parsePct(t, byApp[name][7]); loc < 95 {
			t.Errorf("%s locality %v%%, want ≥95%%", name, loc)
		}
	}
	if loc := parsePct(t, byApp["K-means"][7]); loc > 60 {
		t.Errorf("K-means locality %v%%, want <60%% (non-local pattern)", loc)
	}
	// DNN has the smallest volume.
	vol := func(name string) float64 {
		v, err := strconv.ParseFloat(byApp[name][3], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, other := range []string{"LU", "BT", "SP", "K-means"} {
		if vol("DNN") >= vol(other) {
			t.Errorf("DNN volume %v not below %s volume %v", vol("DNN"), other, vol(other))
		}
	}
}

func TestFigure4Runs(t *testing.T) {
	rep, err := Figure4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("quick fig4 has %d rows, want 3", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 0 {
				t.Errorf("bad overhead cell %q", cell)
			}
		}
	}
}

func TestFigure5GeoWinsEverywhere(t *testing.T) {
	rep, err := Figure5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("fig5 has %d rows, want 5", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		geo := parsePct(t, row[3])
		if geo <= 0 {
			t.Errorf("%s: geo improvement %v%%, want positive", row[0], geo)
		}
		greedy := parsePct(t, row[1])
		if geo < greedy-8 {
			t.Errorf("%s: geo (%v%%) clearly below greedy (%v%%)", row[0], geo, greedy)
		}
	}
}

func TestFigure6CommOnlyShape(t *testing.T) {
	rep, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	geoByApp := map[string]float64{}
	greedyByApp := map[string]float64{}
	for _, row := range rep.Rows {
		greedyByApp[row[0]] = parsePct(t, row[1])
		geoByApp[row[0]] = parsePct(t, row[3])
		if geoByApp[row[0]] < 25 {
			t.Errorf("%s: comm-only geo improvement %v%%, want substantial (paper reports >60%% at its scale)", row[0], geoByApp[row[0]])
		}
	}
	// Greedy should be weak for K-means/DNN and strong for LU (paper Fig 6).
	if greedyByApp["LU"] < 25 {
		t.Errorf("Greedy on LU = %v%%, want strong (paper >40%%)", greedyByApp["LU"])
	}
	if greedyByApp["K-means"] > greedyByApp["LU"] {
		t.Errorf("Greedy on K-means (%v%%) should be weaker than on LU (%v%%)", greedyByApp["K-means"], greedyByApp["LU"])
	}
	for _, name := range []string{"K-means", "DNN"} {
		if geoByApp[name] <= greedyByApp[name] {
			t.Errorf("%s: geo (%v%%) should clearly beat greedy (%v%%)", name, geoByApp[name], greedyByApp[name])
		}
	}
}

func TestFigure7Runs(t *testing.T) {
	rep, err := Figure7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Quick: 3 apps × 2 scales.
	if len(rep.Rows) != 6 {
		t.Fatalf("quick fig7 has %d rows, want 6", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		geo := parsePct(t, row[3])
		if geo <= 0 {
			t.Errorf("%s@%s: geo improvement %v%%, want positive", row[0], row[1], geo)
		}
	}
}

func TestFigure8ConstraintDecay(t *testing.T) {
	rep, err := Figure8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		at20 := parsePct(t, row[1])
		at100 := parsePct(t, row[5])
		if at20 < at100-3 {
			t.Errorf("%s: improvement grows with constraints (%v%% → %v%%)", row[0], at20, at100)
		}
		if at100 > 5 || at100 < -5 {
			t.Errorf("%s: fully constrained improvement %v%%, want ≈0 (both algorithms are pinned)", row[0], at100)
		}
		if at20 <= 0 {
			t.Errorf("%s: improvement over Greedy at 20%% constraints is %v%%, want positive", row[0], at20)
		}
	}
}

func TestFigure9GeoNearOptimal(t *testing.T) {
	rep, err := Figure9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[1] != "Geo-distributed" {
			continue
		}
		pct := parsePct(t, row[3])
		if pct > 1.0 {
			t.Errorf("%s: Geo at CDF percentile %v%%, paper says <1%%", row[0], pct)
		}
	}
}

func TestFigure10Monotone(t *testing.T) {
	rep, err := Figure10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		var prev float64 = 2
		// Columns 1..len-2 are the K curve; the last column is Geo.
		for _, cell := range row[1 : len(row)-1] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v > prev+1e-9 {
				t.Errorf("%s: best-of-K curve not nonincreasing: %v", row[0], row)
			}
			prev = v
		}
		geo, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if geo > prev {
			t.Errorf("%s: geo (%v) worse than best-of-K end (%v)", row[0], geo, prev)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	reps, err := RunAll(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(IDs()) {
		t.Errorf("RunAll returned %d reports, want %d", len(reps), len(IDs()))
	}
	for _, rep := range reps {
		if rep.String() == "" || len(rep.Rows) == 0 {
			t.Errorf("%s: empty report", rep.ID)
		}
	}
}

func TestPaperCloudForScaleErrors(t *testing.T) {
	if _, err := PaperCloudForScale(66, 1); err == nil {
		t.Error("non-multiple-of-4 scale accepted")
	}
	c, err := PaperCloudForScale(64, 1)
	if err != nil || c.TotalNodes() != 64 {
		t.Errorf("PaperCloudForScale(64) = %v nodes, err %v", c.TotalNodes(), err)
	}
}

var _ = netmodel.MB // keep import stable if usage shifts
