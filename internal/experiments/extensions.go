package experiments

import (
	"fmt"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/baselines"
	"geoprocmap/internal/collectives"
	"geoprocmap/internal/core"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/netsim"
	"geoprocmap/internal/stats"
)

// The experiments in this file go beyond the paper's published evaluation,
// covering its stated future work (Windows Azure, multi-site constraints)
// and two studies this reproduction's infrastructure enables (WAN
// contention sensitivity, topology-aware collectives).

// ExtAzure repeats the Figure 6 communication-improvement study on the
// Windows Azure model (Standard D2 across East US, West Europe, Japan
// East, West US) — the paper's first item of future work ("we plan to
// first extend this study onto different clouds such as Windows Azure").
func ExtAzure(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "azure",
		Title:  "Extension: communication improvement over Baseline on the Windows Azure model (64 processes)",
		Header: []string{"App", "Greedy", "MPIPP", "Geo-distributed"},
	}
	regions := []string{"east-us", "west-europe", "japan-east", "west-us"}
	cloud, err := netmodel.EvenCloud(netmodel.WindowsAzure, "Standard_D2", regions, 16, netmodel.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	names := []string{"Greedy", "MPIPP", "Geo-distributed"}
	for _, a := range apps.All() {
		sums := make([]float64, len(names))
		for d := 0; d < cfg.Draws; d++ {
			seed := cfg.Seed + int64(d)*1000
			inst, err := BuildInstance(cloud, a, 64, 1, cfg.ConstraintRatio, seed)
			if err != nil {
				return nil, err
			}
			base, err := inst.BaselineCost(cfg.Repeats, seed+100)
			if err != nil {
				return nil, err
			}
			for i, m := range StandardMappers(seed, cfg.Workers) {
				pl, _, err := inst.MapAndTime(m)
				if err != nil {
					return nil, err
				}
				sums[i] += ImprovementPct(base, inst.CommCost(pl))
			}
		}
		row := []string{a.Name()}
		for i := range names {
			row = append(row, fmt.Sprintf("%.0f%%", sums[i]/float64(cfg.Draws)))
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("The paper's conclusions carry over: Azure's WAN heterogeneity (Table 3) is even starker than EC2's, so mapping matters at least as much.")
	return r, nil
}

// ExtContention compares the replay simulator's two WAN models — the
// paper-faithful dedicated α–β pipes versus shared FIFO pipes per site
// pair — for the Geo-distributed and Greedy placements. Under shared
// pipes, concentrating cross traffic onto one site pair is penalized, a
// dynamic the paper's cost model cannot see.
func ExtContention(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "contention",
		Title:  "Extension: communication improvement under dedicated vs shared WAN pipes (64 processes)",
		Header: []string{"App", "Mapper", "Dedicated WAN", "Shared WAN"},
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"LU", "K-means", "DNN"} {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		mappersUnder := []core.Mapper{&baselines.Greedy{}, &core.GeoMapper{Kappa: 4, Seed: cfg.Seed, Workers: cfg.Workers}}
		sums := make([][2]float64, len(mappersUnder))
		for d := 0; d < cfg.Draws; d++ {
			seed := cfg.Seed + int64(d)*1000
			inst, err := BuildInstance(cloud, a, 64, 1, cfg.ConstraintRatio, seed)
			if err != nil {
				return nil, err
			}
			for oi, opt := range []netsim.Options{{DedicatedWAN: true}, {DedicatedWAN: false}} {
				// Baseline under this network model.
				rng := stats.NewRand(seed + 100)
				var base float64
				for rep := 0; rep < cfg.Repeats; rep++ {
					pl, err := core.RandomPlacement(inst.Problem, rng)
					if err != nil {
						return nil, err
					}
					res, err := inst.SimulateWith(pl, SimReplay, opt)
					if err != nil {
						return nil, err
					}
					base += res.CommSeconds
				}
				base /= float64(cfg.Repeats)
				for mi, m := range mappersUnder {
					pl, _, err := inst.MapAndTime(m)
					if err != nil {
						return nil, err
					}
					res, err := inst.SimulateWith(pl, SimReplay, opt)
					if err != nil {
						return nil, err
					}
					sums[mi][oi] += ImprovementPct(base, res.CommSeconds)
				}
			}
		}
		for mi, m := range mappersUnder {
			r.AddRow(name, m.Name(),
				fmt.Sprintf("%.0f%%", sums[mi][0]/float64(cfg.Draws)),
				fmt.Sprintf("%.0f%%", sums[mi][1]/float64(cfg.Draws)))
		}
	}
	r.AddNote("Shared pipes punish placements that funnel traffic through one site pair; cost-guided mappers keep most of their advantage but the margin narrows.")
	return r, nil
}

// ExtCollectives measures flat versus MagPIe-style hierarchical collective
// schedules (1 MB allreduce and broadcast) on the paper's cloud under a
// Geo-distributed placement of the K-means workload: once processes are
// well placed, topology-aware collectives cut WAN crossings from
// O(log n) per rank to O(1) per site.
func ExtCollectives(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "collectives",
		Title:  "Extension: flat vs hierarchical collectives on the mapped cloud (64 processes, 1 MB payload)",
		Header: []string{"Collective", "Flat (s)", "Hierarchical (s)", "Speedup"},
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	inst, err := BuildInstance(cloud, apps.NewKMeans(), 64, 1, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pl, _, err := inst.MapAndTime(&core.GeoMapper{Kappa: 4, Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	// Shared WAN pipes: the regime hierarchical collectives were designed
	// for — their advantage is carrying each payload across every WAN link
	// once, which matters exactly when the links are contended.
	sim, err := netsim.NewWithOptions(cloud, pl, netsim.Options{})
	if err != nil {
		return nil, err
	}
	const payload = 1 << 20
	placement := []int(pl)

	type variant struct {
		name       string
		flat, hier *collectives.Schedule
	}
	flatAR, err := collectives.RecursiveDoublingAllreduce(64, payload)
	if err != nil {
		return nil, err
	}
	hierAR, err := collectives.HierarchicalAllreduce(placement, payload)
	if err != nil {
		return nil, err
	}
	flatBC, err := collectives.BinomialBroadcast(64, 0, payload)
	if err != nil {
		return nil, err
	}
	hierBC, err := collectives.HierarchicalBroadcast(placement, 0, payload)
	if err != nil {
		return nil, err
	}
	ringAR, err := collectives.RingAllreduce(64, payload)
	if err != nil {
		return nil, err
	}
	for _, v := range []variant{
		{"allreduce (recursive doubling)", flatAR, hierAR},
		{"allreduce (ring)", ringAR, hierAR},
		{"broadcast (binomial)", flatBC, hierBC},
	} {
		tFlat, err := sim.ReplayTrace(v.flat.Events(0))
		if err != nil {
			return nil, err
		}
		tHier, err := sim.ReplayTrace(v.hier.Events(0))
		if err != nil {
			return nil, err
		}
		r.AddRow(v.name,
			fmt.Sprintf("%.3f", tFlat),
			fmt.Sprintf("%.3f", tHier),
			fmt.Sprintf("%.1f×", tFlat.Float()/tHier.Float()))
	}
	r.AddNote("MagPIe's wide-area lesson (cited by the paper) reproduced on top of the mapping: hierarchy complements, not replaces, good placement.")
	return r, nil
}

// ExtMultiConstraint quantifies the multi-site constraint extension: the
// communication cost of regional allowed-site sets versus equivalent
// single-site pins, per workload.
func ExtMultiConstraint(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "multiconstraint",
		Title:  "Extension: regional allowed-site sets vs single-site pins (64 processes, 4 regions)",
		Header: []string{"App", "Pinned cost", "Regional-set cost", "Benefit"},
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Region pairs: {us-east-1, us-west-1} and {ap-southeast-1, eu-west-1}.
	regionSets := [][]int{{0, 1}, {2, 3}}
	for _, a := range apps.All() {
		inst, err := BuildInstance(cloud, a, 64, 1, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		base := inst.Problem

		pinned := *base
		pinned.Constraint = base.Constraint.Clone()
		for i := 0; i < 16; i++ {
			pinned.Constraint[i] = regionSets[0][0]
			pinned.Constraint[16+i] = regionSets[1][0]
		}

		sets := *base
		sets.Allowed = make([][]int, 64)
		for i := 0; i < 16; i++ {
			sets.Allowed[i] = regionSets[0]
			sets.Allowed[16+i] = regionSets[1]
		}

		// Exchange refinement isolates the constraint model's effect from
		// the packing heuristic's slack: the relaxed problem's optimum can
		// never be worse than the pinned one's.
		gm := &core.GeoMapper{Kappa: 4, Seed: cfg.Seed, RefinePasses: 50, Workers: cfg.Workers}
		pinPl, err := gm.Map(&pinned)
		if err != nil {
			return nil, err
		}
		setPl, err := gm.Map(&sets)
		if err != nil {
			return nil, err
		}
		pinCost := pinned.Cost(pinPl)
		setCost := sets.Cost(setPl)
		// Every pin-feasible placement is set-feasible, so the relaxed
		// problem never needs to accept a worse heuristic outcome: keep
		// whichever placement is cheaper.
		if c := sets.Cost(pinPl); c < setCost {
			setCost = c
		}
		r.AddRow(a.Name(),
			fmt.Sprintf("%.3f", pinCost),
			fmt.Sprintf("%.3f", setCost),
			fmt.Sprintf("%.1f%%", ImprovementPct(pinCost.Float(), setCost.Float())))
	}
	r.AddNote("Allowed-site sets are never worse than pins (a pin is a singleton set); the benefit is the optimizer's remaining freedom.")
	return r, nil
}

// ExtHeadline computes the paper's abstract claim directly: the average
// and maximum improvement of the Geo-distributed algorithm over the
// state-of-the-art comparators across all five workloads, on the
// predicted-communication-time metric.
func ExtHeadline(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "headline",
		Title:  "Headline claim: Geo-distributed improvement over each comparator (mean over apps and draws)",
		Header: []string{"Versus", "Mean", "Max", "Min"},
	}
	cloud, err := PaperCloudForScale(64, cfg.Seed)
	if err != nil {
		return nil, err
	}
	comparators := []core.Mapper{&baselines.Random{Seed: cfg.Seed}, &baselines.Greedy{}, &baselines.MPIPP{Seed: cfg.Seed}}
	improvements := make(map[string][]float64)
	for _, a := range apps.All() {
		for d := 0; d < cfg.Draws; d++ {
			seed := cfg.Seed + int64(d)*1000
			inst, err := BuildInstance(cloud, a, 64, 1, cfg.ConstraintRatio, seed)
			if err != nil {
				return nil, err
			}
			geoPl, _, err := inst.MapAndTime(&core.GeoMapper{Kappa: 4, Seed: seed, Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			geoCost := inst.CommCost(geoPl)
			for _, m := range comparators {
				pl, err := m.Map(inst.Problem)
				if err != nil {
					return nil, err
				}
				improvements[m.Name()] = append(improvements[m.Name()], ImprovementPct(inst.CommCost(pl), geoCost))
			}
		}
	}
	for _, m := range comparators {
		vals := improvements[m.Name()]
		r.AddRow(m.Name(),
			fmt.Sprintf("%.0f%%", stats.Mean(vals)),
			fmt.Sprintf("%.0f%%", stats.Max(vals)),
			fmt.Sprintf("%.0f%%", stats.Min(vals)))
	}
	r.AddNote("Paper abstract: ~50%% average improvement over the state-of-the-art (up to 90%%).")
	return r, nil
}

// ExtManySites evaluates deployments beyond the paper's four regions —
// 8 and 11 EC2 regions, and 16 sites across EC2 + Azure (the multi-cloud
// merge) — comparing the flat Algorithm 1 against the recursive
// hierarchical variant the paper sketches for large site counts.
func ExtManySites(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "manysites",
		Title:  "Extension: flat vs hierarchical Geo mapping as the site count grows (K-means, predicted comm cost)",
		Header: []string{"Sites", "Cloud", "Flat cost", "Hier cost", "Flat ms", "Hier ms"},
	}
	ec2Names := func(k int) []string {
		names := make([]string, 0, k)
		for _, reg := range geo.EC2Regions[:k] {
			names = append(names, reg.Name)
		}
		return names
	}
	build := func(label string, cloud *netmodel.Cloud, nodes int) error {
		inst, err := BuildInstance(cloud, apps.NewKMeans(), nodes, 1, cfg.ConstraintRatio, cfg.Seed)
		if err != nil {
			return err
		}
		flat := &core.GeoMapper{Kappa: 4, Seed: cfg.Seed, Workers: cfg.Workers}
		hier := &core.HierarchicalGeoMapper{Kappa: 4, Seed: cfg.Seed, LeafSites: 4, Workers: cfg.Workers}
		flatPl, flatDur, err := inst.MapAndTime(flat)
		if err != nil {
			return err
		}
		hierPl, hierDur, err := inst.MapAndTime(hier)
		if err != nil {
			return err
		}
		r.AddRow(fmt.Sprintf("%d", cloud.M()), label,
			fmt.Sprintf("%.3f", inst.Problem.Cost(flatPl)),
			fmt.Sprintf("%.3f", inst.Problem.Cost(hierPl)),
			fmt.Sprintf("%.1f", flatDur.Seconds()*1000),
			fmt.Sprintf("%.1f", hierDur.Seconds()*1000))
		return nil
	}

	for _, m := range []int{8, 11} {
		cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", ec2Names(m), 8, netmodel.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		if err := build("EC2", cloud, 8*m); err != nil {
			return nil, err
		}
	}
	ec2, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", ec2Names(11), 8, netmodel.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	azureNames := make([]string, 0, len(geo.AzureRegions))
	for _, reg := range geo.AzureRegions {
		azureNames = append(azureNames, reg.Name)
	}
	azure, err := netmodel.EvenCloud(netmodel.WindowsAzure, "Standard_D2", azureNames, 8, netmodel.Options{Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	merged, err := netmodel.MergeClouds(ec2, azure, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := build("EC2+Azure", merged, 96); err != nil {
		return nil, err
	}
	r.AddNote("The hierarchy recursively optimizes within K-means site groups (the paper's Section 4.2 sketch); the flat algorithm only orders the groups.")
	return r, nil
}
