package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"geoprocmap/internal/viz"
)

// ChartFor converts a figure report into a renderable chart where the
// artifact is a curve in the paper (Figures 7, 8 and 10). It returns
// ok=false for table-shaped artifacts.
func ChartFor(rep *Report) (*viz.Chart, bool, error) {
	switch rep.ID {
	case "fig7":
		return chartFig7(rep)
	case "fig8":
		return chartFig8(rep)
	case "fig10":
		return chartFig10(rep)
	default:
		return nil, false, nil
	}
}

func parseCellPct(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
}

// chartFig7 renders improvement-vs-machines, one series per app×mapper.
func chartFig7(rep *Report) (*viz.Chart, bool, error) {
	series := map[string]*viz.Series{}
	var order []string
	for _, row := range rep.Rows {
		if len(row) != 4 {
			return nil, false, fmt.Errorf("experiments: fig7 row has %d cells", len(row))
		}
		machines, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, false, err
		}
		for i, mapper := range []string{"Greedy", "Geo"} {
			key := row[0] + " / " + mapper
			s := series[key]
			if s == nil {
				s = &viz.Series{Name: key}
				series[key] = s
				order = append(order, key)
			}
			v, err := parseCellPct(row[2+i])
			if err != nil {
				return nil, false, err
			}
			s.X = append(s.X, machines)
			s.Y = append(s.Y, v)
		}
	}
	c := &viz.Chart{
		Title:  "Figure 7: communication improvement vs scale",
		XLabel: "machines (log)",
		YLabel: "improvement over Baseline (%)",
		LogX:   true,
	}
	for _, key := range order {
		c.Series = append(c.Series, *series[key])
	}
	return c, true, nil
}

// chartFig8 renders improvement-over-Greedy vs constraint ratio, one
// series per app.
func chartFig8(rep *Report) (*viz.Chart, bool, error) {
	ratios := []float64{20, 40, 60, 80, 100}
	c := &viz.Chart{
		Title:  "Figure 8: Geo improvement over Greedy vs constraint ratio",
		XLabel: "constraint ratio (%)",
		YLabel: "improvement (%)",
	}
	for _, row := range rep.Rows {
		if len(row) != len(ratios)+1 {
			return nil, false, fmt.Errorf("experiments: fig8 row has %d cells", len(row))
		}
		s := viz.Series{Name: row[0]}
		for i, r := range ratios {
			v, err := parseCellPct(row[1+i])
			if err != nil {
				return nil, false, err
			}
			s.X = append(s.X, r)
			s.Y = append(s.Y, v)
		}
		c.Series = append(c.Series, s)
	}
	return c, true, nil
}

// chartFig10 renders the best-of-K decay per app (log K), with the Geo
// cost as a flat reference line.
func chartFig10(rep *Report) (*viz.Chart, bool, error) {
	// Header: App, K=1, …, K=10^k, Geo-distributed.
	var ks []float64
	for _, h := range rep.Header[1 : len(rep.Header)-1] {
		v, err := strconv.ParseFloat(strings.TrimPrefix(h, "K="), 64)
		if err != nil {
			return nil, false, err
		}
		ks = append(ks, v)
	}
	c := &viz.Chart{
		Title:  "Figure 10: best-of-K random mapping vs K",
		XLabel: "K (log)",
		YLabel: "normalized minimal cost",
		LogX:   true,
	}
	for _, row := range rep.Rows {
		if len(row) != len(ks)+2 {
			return nil, false, fmt.Errorf("experiments: fig10 row has %d cells", len(row))
		}
		s := viz.Series{Name: row[0] + " (MC)"}
		for i, k := range ks {
			v, err := strconv.ParseFloat(row[1+i], 64)
			if err != nil {
				return nil, false, err
			}
			s.X = append(s.X, k)
			s.Y = append(s.Y, v)
		}
		c.Series = append(c.Series, s)
		geo, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			return nil, false, err
		}
		c.Series = append(c.Series, viz.Series{
			Name: row[0] + " (Geo)",
			X:    []float64{ks[0], ks[len(ks)-1]},
			Y:    []float64{geo, geo},
		})
	}
	return c, true, nil
}
