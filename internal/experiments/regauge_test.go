package experiments

import (
	"testing"

	"geoprocmap/internal/regauge"
)

// TestRegaugeDeterministic is the scenario's reproducibility contract:
// the same seed, fault schedule, and injected clock produce a
// byte-identical decision-history digest — published snapshot versions,
// every remap decision, and the final placement digest — at any Workers
// setting.
func TestRegaugeDeterministic(t *testing.T) {
	run := func(workers int) *RegaugeOutcome {
		t.Helper()
		out, err := RunRegauge(RegaugeScenario{Seed: 42, DaySeconds: 480, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(1)
	if a.Digest() != b.Digest() {
		t.Fatalf("same-seed runs diverged:\n%s\n%s", a.Digest(), b.Digest())
	}
	c := run(4)
	if a.Digest() != c.Digest() {
		t.Fatalf("Workers=1 and Workers=4 diverged:\n%s\n%s", a.Digest(), c.Digest())
	}
	if a.FinalDigest != c.FinalDigest {
		t.Fatalf("final placement digests differ across worker counts")
	}
	// A different seed must actually change the history — otherwise the
	// digest covers nothing.
	d, err := RunRegauge(RegaugeScenario{Seed: 43, DaySeconds: 480})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == d.Digest() {
		t.Fatal("different seeds produced identical digests")
	}
}

// TestRegaugeDiurnalSLO asserts the headline acceptance property: over a
// day of DiurnalDrift the continuously re-gauged placement beats the
// stale one at the tail, at least one remap actually triggers, at least
// one is suppressed by hysteresis, and no target is remapped twice
// inside its cooldown window.
func TestRegaugeDiurnalSLO(t *testing.T) {
	out, err := RunRegauge(RegaugeScenario{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.RemapsTriggered < 1 {
		t.Fatalf("remaps triggered = %d, want ≥ 1", out.RemapsTriggered)
	}
	if out.SuppressedCooldown+out.SuppressedUneconomic < 1 {
		t.Fatalf("suppressed = %d, want ≥ 1", out.SuppressedCooldown+out.SuppressedUneconomic)
	}
	if stale, re := out.StalePercentile(99), out.RemappedPercentile(99); re >= stale {
		t.Fatalf("regauged p99 %.3f did not beat stale p99 %.3f", re, stale)
	}
	if stale, re := out.StalePercentile(50), out.RemappedPercentile(50); re >= stale {
		t.Fatalf("regauged p50 %.3f did not beat stale p50 %.3f", re, stale)
	}

	// Cooldown audit: between a triggered remap for a target and the end
	// of its cooldown window, no further remap for that target may
	// trigger (the scenario default cooldown is 3 × interval = 90 s).
	cooldown := 3 * 30.0
	lastTrigger := map[string]float64{}
	for _, pr := range out.Passes {
		for _, d := range pr.Decisions {
			if d.Action != regauge.ActionTriggered {
				continue
			}
			at := pr.At.Float()
			if prev, ok := lastTrigger[d.Target]; ok && at < prev+cooldown {
				t.Fatalf("target %s remapped at %.0f, inside cooldown from trigger at %.0f", d.Target, at, prev)
			}
			lastTrigger[d.Target] = at
		}
	}
}

// TestRegaugeSiteBlackout covers the forced-evacuation path end to end:
// a blacked-out site's placement is evacuated (cooldown and economics
// notwithstanding) and the evacuated placement dramatically beats the
// stale one, which keeps timing out against the dead site.
func TestRegaugeSiteBlackout(t *testing.T) {
	out, err := RunRegauge(RegaugeScenario{Preset: "SiteBlackout", Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.RemapsTriggered < 1 {
		t.Fatalf("remaps triggered = %d, want ≥ 1 forced evacuation", out.RemapsTriggered)
	}
	if stale, re := out.StalePercentile(99), out.RemappedPercentile(99); re >= stale/2 {
		t.Fatalf("evacuated p99 %.3f is not well under stale p99 %.3f", re, stale)
	}
}

// TestExtRegaugeReport smoke-checks the geobench table driver in quick
// mode: both preset rows render with the full column set.
func TestExtRegaugeReport(t *testing.T) {
	rep, err := ExtRegauge(Config{Quick: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 presets", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(rep.Header))
		}
	}
}
