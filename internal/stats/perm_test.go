package stats

import (
	"fmt"
	"sort"
	"testing"
)

func permKey(p []int) string {
	key := ""
	for _, v := range p {
		key += string(rune('0' + v))
	}
	return key
}

func TestFactorialInt(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 5: 120, 8: 40320, 12: 479001600}
	for n, want := range cases {
		if got := FactorialInt(n); got != want {
			t.Errorf("FactorialInt(%d) = %d, want %d", n, got, want)
		}
	}
	for _, bad := range []int{-1, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FactorialInt(%d) did not panic", bad)
				}
			}()
			FactorialInt(bad)
		}()
	}
}

// PermutationRange over the full rank space must enumerate exactly n!
// distinct permutations in strictly increasing lexicographic order, each
// matching its own unranking.
func TestPermutationRangeFullEnumeration(t *testing.T) {
	const n = 5
	total := FactorialInt(n)
	var seen []string
	prev := ""
	PermutationRange(n, 0, total, func(rank int, p []int) bool {
		if len(p) != n {
			t.Fatalf("rank %d: permutation length %d", rank, len(p))
		}
		key := permKey(p)
		if key <= prev {
			t.Fatalf("rank %d: %s not lexicographically after %s", rank, key, prev)
		}
		prev = key
		if want := permKey(PermutationUnrank(n, rank)); key != want {
			t.Fatalf("rank %d: enumerated %s, unranked %s", rank, key, want)
		}
		seen = append(seen, key)
		return true
	})
	if len(seen) != total {
		t.Fatalf("enumerated %d permutations, want %d", len(seen), total)
	}
	// Same set as Heap's-algorithm enumeration.
	var heap []string
	Permutations(n, func(p []int) bool {
		heap = append(heap, permKey(p))
		return true
	})
	sort.Strings(heap)
	for i, key := range seen { // lexicographic order == sorted order
		if key != heap[i] {
			t.Fatalf("rank %d: %s differs from sorted Heap enumeration %s", i, key, heap[i])
		}
	}
}

// Splitting [0, n!) into contiguous chunks must cover every rank exactly
// once regardless of the split points, including degenerate chunks.
func TestPermutationRangeSplitCoverage(t *testing.T) {
	const n = 4
	total := FactorialInt(n)
	for _, bounds := range [][]int{
		{0, total},
		{0, 1, total},
		{0, 7, 7, 13, total},
		{0, 6, 12, 18, total},
		{-5, 3, total + 9}, // out-of-range bounds clamp
	} {
		got := map[int]int{}
		for i := 0; i+1 < len(bounds); i++ {
			PermutationRange(n, bounds[i], bounds[i+1], func(rank int, p []int) bool {
				got[rank]++
				if want := permKey(PermutationUnrank(n, rank)); permKey(p) != want {
					t.Fatalf("bounds %v rank %d: got %s, want %s", bounds, rank, permKey(p), want)
				}
				return true
			})
		}
		if len(got) != total {
			t.Fatalf("bounds %v covered %d ranks, want %d", bounds, len(got), total)
		}
		for rank, count := range got {
			if count != 1 {
				t.Fatalf("bounds %v visited rank %d %d times", bounds, rank, count)
			}
		}
	}
}

func TestPermutationRangeEarlyStopAndZero(t *testing.T) {
	calls := 0
	PermutationRange(5, 10, 100, func(rank int, p []int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop after %d calls, want 3", calls)
	}
	calls = 0
	PermutationRange(0, 0, 1, func(rank int, p []int) bool {
		calls++
		if rank != 0 || len(p) != 0 {
			t.Errorf("n=0 gave rank %d, perm %v", rank, p)
		}
		return true
	})
	if calls != 1 {
		t.Errorf("n=0 made %d calls, want 1", calls)
	}
	PermutationRange(3, 4, 2, func(rank int, p []int) bool {
		t.Error("empty range invoked fn")
		return true
	})
}

func TestPermutationUnrankKnownValues(t *testing.T) {
	cases := []struct {
		n, rank int
		want    string
	}{
		{3, 0, "012"}, {3, 1, "021"}, {3, 2, "102"},
		{3, 3, "120"}, {3, 4, "201"}, {3, 5, "210"},
		{1, 0, "0"},
		{4, 23, "3210"},
	}
	for _, c := range cases {
		if got := permKey(PermutationUnrank(c.n, c.rank)); got != c.want {
			t.Errorf("PermutationUnrank(%d, %d) = %s, want %s", c.n, c.rank, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank did not panic")
		}
	}()
	PermutationUnrank(3, 6)
}

func BenchmarkPermutationRange8(b *testing.B) {
	total := FactorialInt(8)
	for i := 0; i < b.N; i++ {
		count := 0
		PermutationRange(8, 0, total, func(rank int, p []int) bool {
			count++
			return true
		})
		if count != total {
			b.Fatal(fmt.Errorf("enumerated %d, want %d", count, total))
		}
	}
}
