// Package stats provides the small statistical toolkit the evaluation
// harness needs: deterministic RNG construction, summary statistics
// (mean, standard deviation, standard error), empirical CDFs for the
// Monte Carlo figures, and permutation enumeration for the group-order
// search in the mapping algorithm.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic *rand.Rand seeded with seed. All
// randomness in the library flows through explicitly seeded generators so
// that experiments are reproducible run to run.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TrimmedMean returns the mean of xs after discarding the lowest and
// highest frac fraction of the sorted sample (rounded down), the standard
// outlier-robust estimator the calibrator uses to reject probe samples
// inflated by transient WAN faults. frac is clamped to [0, 0.5); with
// nothing left after trimming (or an empty slice) it returns Mean(xs).
//
// Non-finite samples (NaN, ±Inf) are dropped before trimming: an estimator
// meant to reject outliers must not let a single poisoned sample turn the
// whole estimate into NaN — the re-gauging drift detector feeds it
// ratio-derived windows where a zero denominator upstream would otherwise
// propagate forever. An all-non-finite sample returns 0.
func TrimmedMean(xs []float64, frac float64) float64 {
	s := Scratch{buf: make([]float64, 0, len(xs))}
	return s.TrimmedMean(xs, frac)
}

// Scratch backs the allocation-free variants of the sorting-based
// estimators. The repeated consumers — the re-gauging drift detector
// smooths every site pair's sample window once per gauging pass, and the
// calibrator trims every probe batch — hold one Scratch and reuse its
// buffer across calls instead of copying the input per call. The zero
// value is ready; the buffer grows to the largest sample seen and is then
// reused, so steady-state calls do not allocate (Prewarm sizes it
// eagerly). A Scratch is not safe for concurrent use.
type Scratch struct {
	buf []float64
}

// Prewarm sizes the buffer for samples of up to n values so that even the
// first estimator call is allocation-free.
//
//geolint:allocsite cold path: one-time buffer sizing ahead of the measured calls
func (s *Scratch) Prewarm(n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, 0, n)
	}
}

// TrimmedMean is the allocation-free variant of the package-level
// TrimmedMean: identical semantics bit for bit (same non-finite filter,
// frac clamping, trim count, and Mean fallback), with the sorted copy
// living in the reusable buffer.
//
//geolint:allocfree
func (s *Scratch) TrimmedMean(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s.buf = s.buf[:0]
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			s.buf = append(s.buf, x)
		}
	}
	finite := s.buf
	if len(finite) == 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 0.5 {
		frac = 0.5
	}
	cut := int(frac * float64(len(finite)))
	if 2*cut >= len(finite) {
		return Mean(finite)
	}
	sort.Float64s(finite)
	return Mean(finite[cut : len(finite)-cut])
}

// Percentile is the allocation-free variant of the package-level
// Percentile, with the same contract (and the same panics on an empty
// slice or out-of-domain p).
//
//geolint:allocfree
func (s *Scratch) Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice") //geolint:ignore libpanic documented contract: empty-sample percentile mirrors slice indexing
	}
	if p < 0 || p > 100 {
		//geolint:allocsite panic path: the message formats only on an out-of-domain programmer error
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p)) //geolint:ignore libpanic documented contract: out-of-domain p is a programmer error
	}
	s.buf = append(s.buf[:0], xs...)
	sorted := s.buf
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 for slices shorter than 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean (the paper's error bars).
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	min := math.Inf(1)
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice or a
// p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	s := Scratch{buf: make([]float64, 0, len(xs))}
	return s.Percentile(xs, p)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample. The input is copied.
func NewCDF(sample []float64) *CDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want values <= x, so search for the first index strictly above x.
	n := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v such that At(v) >= q, for
// q in (0, 1]. It panics on an empty CDF or q outside (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		panic("stats: Quantile of empty CDF") //geolint:ignore libpanic documented contract: empty-CDF quantile mirrors slice indexing
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range (0,1]", q)) //geolint:ignore libpanic documented contract: out-of-domain q is a programmer error
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points returns up to n (x, P(X<=x)) pairs evenly spaced through the
// sample, suitable for plotting the CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for k := 1; k <= n; k++ {
		idx := k*len(c.sorted)/n - 1
		out = append(out, [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))})
	}
	return out
}

// Normalize divides every element by the maximum of xs and returns a new
// slice; an all-zero or empty input is returned as a copy unchanged.
func Normalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	max := Max(xs)
	if max <= 0 || math.IsInf(max, -1) {
		return out
	}
	for i := range out {
		out[i] /= max
	}
	return out
}

// Permutations calls fn with every permutation of [0, n). The slice passed
// to fn is reused between calls; fn must copy it if it needs to retain it.
// If fn returns false the enumeration stops early. Permutations panics for
// n < 0. Heap's algorithm, so the number of calls is n! — callers bound n.
func Permutations(n int, fn func(perm []int) bool) {
	if n < 0 {
		panic("stats: Permutations of negative n") //geolint:ignore libpanic documented contract: negative n is a programmer error
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if n == 0 {
		fn(perm)
		return
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return fn(perm)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if i < k-1 {
				if k%2 == 0 {
					perm[i], perm[k-1] = perm[k-1], perm[i]
				} else {
					perm[0], perm[k-1] = perm[k-1], perm[0]
				}
			}
		}
		return true
	}
	rec(n)
}

// Factorial returns n! as a float64 (exact for n <= 18). It panics for
// negative n.
func Factorial(n int) float64 {
	if n < 0 {
		panic("stats: Factorial of negative n") //geolint:ignore libpanic documented contract: negative n is a programmer error
	}
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// FactorialInt returns n! as an int. It panics for n < 0 or n > 20 (21!
// overflows int64); callers that enumerate permutations bound n far below
// that anyway.
func FactorialInt(n int) int {
	if n < 0 || n > 20 {
		panic("stats: FactorialInt outside [0,20]") //geolint:ignore libpanic documented contract: out-of-range n is a programmer error
	}
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// PermutationUnrank returns the permutation of [0, n) with the given
// lexicographic rank, decoded from the factorial number system: digit i of
// the rank selects which of the remaining elements comes next. It panics
// when rank is outside [0, n!).
func PermutationUnrank(n, rank int) []int {
	total := FactorialInt(n)
	if rank < 0 || rank >= total {
		panic("stats: PermutationUnrank rank outside [0, n!)") //geolint:ignore libpanic documented contract: out-of-range rank is a programmer error
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	perm := make([]int, 0, n)
	base := total
	for i := n; i > 0; i-- {
		base /= i // (i-1)! on entry to the loop body
		d := rank / base
		rank %= base
		perm = append(perm, remaining[d])
		remaining = append(remaining[:d], remaining[d+1:]...)
	}
	return perm
}

// PermutationRange calls fn with every permutation of [0, n) whose
// lexicographic rank lies in [lo, hi), in ascending rank order, passing the
// rank alongside the permutation. The slice passed to fn is reused between
// calls; fn must copy it if it needs to retain it. If fn returns false the
// enumeration stops early. Ranks are clamped to [0, n!], so a caller may
// split [0, n!) into contiguous chunks without boundary arithmetic.
// PermutationRange panics for n < 0 or n > 20.
//
// Together with PermutationUnrank this gives the order search a
// deterministic total order on permutations that is independent of how the
// rank space is partitioned — the property the parallel κ! search reduces
// over. (Permutations above uses Heap's algorithm, whose visit order has no
// cheap rank function.)
func PermutationRange(n, lo, hi int, fn func(rank int, perm []int) bool) {
	total := FactorialInt(n)
	if lo < 0 {
		lo = 0
	}
	if hi > total {
		hi = total
	}
	if lo >= hi {
		return
	}
	if n == 0 {
		fn(0, []int{})
		return
	}
	perm := PermutationUnrank(n, lo)
	for rank := lo; rank < hi; rank++ {
		if !fn(rank, perm) {
			return
		}
		if rank+1 < hi {
			nextPermutation(perm)
		}
	}
}

// nextPermutation advances perm to its lexicographic successor in place
// (the classic pivot/successor/reverse algorithm). The last permutation has
// no successor; PermutationRange never steps past it.
func nextPermutation(perm []int) {
	i := len(perm) - 2
	for i >= 0 && perm[i] >= perm[i+1] {
		i--
	}
	if i < 0 {
		return
	}
	j := len(perm) - 1
	for perm[j] <= perm[i] {
		j--
	}
	perm[i], perm[j] = perm[j], perm[i]
	for a, b := i+1, len(perm)-1; a < b; a, b = a+1, b-1 {
		perm[a], perm[b] = perm[b], perm[a]
	}
}
