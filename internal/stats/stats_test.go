package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdErr(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1 denominator: sum sq dev = 32, /7.
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdErr(xs); !almostEq(got, math.Sqrt(32.0/7)/math.Sqrt(8), 1e-12) {
		t.Errorf("StdErr = %v", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("P100 = %v, want 4", got)
	}
	if got := Percentile(xs, 50); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("P50 = %v, want 2.5", got)
	}
	if got := Percentile([]float64{9}, 37); got != 9 {
		t.Errorf("singleton percentile = %v, want 9", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, tc := range []struct {
		xs []float64
		p  float64
	}{{nil, 50}, {[]float64{1}, -1}, {[]float64{1}, 101}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v, %v) did not panic", tc.xs, tc.p)
				}
			}()
			Percentile(tc.xs, tc.p)
		}()
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {5, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.25); got != 1 {
		t.Errorf("Quantile(0.25) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(2)
	if len(pts) != 2 {
		t.Fatalf("Points(2) returned %d points", len(pts))
	}
	if pts[1][0] != 4 || pts[1][1] != 1 {
		t.Errorf("last point = %v, want (4,1)", pts[1])
	}
	if NewCDF(nil).Points(3) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	zeros := Normalize([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Error("all-zero Normalize should stay zero")
	}
}

func TestPermutationsCountAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	Permutations(4, func(p []int) bool {
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %s", key)
		}
		seen[key] = true
		return true
	})
	if len(seen) != 24 {
		t.Errorf("got %d permutations of 4, want 24", len(seen))
	}
}

func TestPermutationsEarlyStop(t *testing.T) {
	calls := 0
	Permutations(5, func(p []int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop after %d calls, want 3", calls)
	}
}

func TestPermutationsZero(t *testing.T) {
	calls := 0
	Permutations(0, func(p []int) bool {
		calls++
		if len(p) != 0 {
			t.Errorf("perm of 0 has length %d", len(p))
		}
		return true
	})
	if calls != 1 {
		t.Errorf("Permutations(0) called fn %d times, want 1", calls)
	}
}

func TestFactorial(t *testing.T) {
	cases := map[int]float64{0: 1, 1: 1, 5: 120, 10: 3628800}
	for n, want := range cases {
		if got := Factorial(n); got != want {
			t.Errorf("Factorial(%d) = %v, want %v", n, got, want)
		}
	}
}

// Property: CDF.At is monotone nondecreasing and bounded in [0,1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(sample []float64, probes []float64) bool {
		c := NewCDF(sample)
		sort.Float64s(probes)
		prev := 0.0
		for _, x := range probes {
			v := c.At(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and At are approximately inverse:
// At(Quantile(q)) >= q for all q in (0,1].
func TestQuickQuantileInverse(t *testing.T) {
	f := func(sample []float64, qRaw uint16) bool {
		if len(sample) == 0 {
			return true
		}
		q := (float64(qRaw%1000) + 1) / 1000 // (0,1]
		c := NewCDF(sample)
		return c.At(c.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean of normalized positive values is <= 1 and max is exactly 1.
func TestQuickNormalize(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r > 0 {
				anyPos = true
			}
		}
		out := Normalize(xs)
		if !anyPos {
			return Max(out) == 0
		}
		return almostEq(Max(out), 1, 1e-12) && Mean(out) <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}
