package stats

import (
	"math"
	"testing"
)

// TestTrimmedMeanEdges pins down the documented clamping behavior: empty
// input returns 0, out-of-range fractions are clamped rather than
// panicking (the calibrator passes operator-supplied fractions through),
// and trimming everything falls back to the plain mean.
func TestTrimmedMeanEdges(t *testing.T) {
	if got := TrimmedMean(nil, 0.2); got != 0 {
		t.Errorf("TrimmedMean(nil) = %v, want 0", got)
	}
	if got := TrimmedMean([]float64{}, 0.2); got != 0 {
		t.Errorf("TrimmedMean(empty) = %v, want 0", got)
	}
	xs := []float64{1, 2, 3, 4, 100}
	// Negative frac clamps to 0: no trimming, plain mean.
	if got, want := TrimmedMean(xs, -0.3), Mean(xs); got != want {
		t.Errorf("TrimmedMean(frac=-0.3) = %v, want untrimmed mean %v", got, want)
	}
	// frac >= 0.5 clamps to 0.5. On an odd-length sample that leaves
	// exactly the median; on an even-length sample it would trim
	// everything, so it falls back to the plain mean rather than
	// averaging an empty window.
	for _, frac := range []float64{0.5, 0.9, 7} {
		if got := TrimmedMean(xs, frac); got != 3 {
			t.Errorf("TrimmedMean(odd, frac=%v) = %v, want median 3", frac, got)
		}
		even := []float64{1, 2, 3, 100}
		if got, want := TrimmedMean(even, frac), Mean(even); got != want {
			t.Errorf("TrimmedMean(even, frac=%v) = %v, want fallback mean %v", frac, got, want)
		}
	}
	// A singleton survives any fraction: one cut element from each side
	// would leave nothing, so the fallback returns the value itself.
	if got := TrimmedMean([]float64{42}, 0.49); got != 42 {
		t.Errorf("TrimmedMean(singleton) = %v, want 42", got)
	}
	// Sanity on actual trimming: 20% of 5 samples cuts one from each
	// end, discarding the 100 outlier (and the 1).
	if got, want := TrimmedMean(xs, 0.2), 3.0; got != want {
		t.Errorf("TrimmedMean(frac=0.2) = %v, want %v", got, want)
	}
	// The input must not be reordered: trimming sorts a copy.
	if xs[4] != 100 || xs[0] != 1 {
		t.Errorf("TrimmedMean mutated its input: %v", xs)
	}
}

// TestPercentileBoundaries covers the extreme ranks on degenerate
// samples: p=0 and p=100 must be exact order statistics (no
// interpolation overshoot), including on single-element and
// two-element samples.
func TestPercentileBoundaries(t *testing.T) {
	single := []float64{3.5}
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile(single, p); got != 3.5 {
			t.Errorf("P%v of singleton = %v, want 3.5", p, got)
		}
	}
	pair := []float64{-2, 8}
	if got := Percentile(pair, 0); got != -2 {
		t.Errorf("P0 = %v, want -2", got)
	}
	if got := Percentile(pair, 100); got != 8 {
		t.Errorf("P100 = %v, want 8", got)
	}
	if got := Percentile(pair, 50); got != 3 {
		t.Errorf("P50 = %v, want midpoint 3", got)
	}
	// Exact-rank percentiles hit sample values with no interpolation
	// even when the rank arithmetic lands on an integer.
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("P25 = %v, want 20", got)
	}
	// Repeated values: percentiles of a constant sample are constant at
	// every p, including the boundaries.
	flat := []float64{7, 7, 7, 7}
	for _, p := range []float64{0, 1, 99, 100} {
		if got := Percentile(flat, p); got != 7 {
			t.Errorf("P%v of constant sample = %v, want 7", p, got)
		}
	}
	// Percentile must not mutate its input either.
	unsorted := []float64{9, 1, 5}
	if got := Percentile(unsorted, 100); got != 9 {
		t.Errorf("P100 = %v, want 9", got)
	}
	if unsorted[0] != 9 || unsorted[1] != 1 {
		t.Errorf("Percentile mutated its input: %v", unsorted)
	}
	// NaN-free inputs stay NaN-free at the boundaries.
	if math.IsNaN(Percentile(pair, 0)) || math.IsNaN(Percentile(pair, 100)) {
		t.Error("boundary percentile produced NaN")
	}
}
