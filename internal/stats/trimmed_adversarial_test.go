package stats

import (
	"math"
	"testing"
)

// TestTrimmedMeanNonFinite pins the NaN/Inf guards the re-gauging loop
// relies on: non-finite samples are dropped before trimming (a single
// timeout-poisoned probe estimate must not turn the smoothed model into
// NaN), and an all-non-finite window collapses to 0 rather than
// propagating garbage.
func TestTrimmedMeanNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	// One NaN among finite samples: dropped, the rest trim normally.
	if got := TrimmedMean([]float64{1, 2, 3, nan}, 0); got != 2 {
		t.Errorf("TrimmedMean with NaN = %v, want mean of finite 2", got)
	}
	// ±Inf likewise: an untrimmed mean would be ±Inf or NaN.
	if got := TrimmedMean([]float64{1, 2, 3, inf, -inf}, 0); got != 2 {
		t.Errorf("TrimmedMean with ±Inf = %v, want 2", got)
	}
	if got := TrimmedMean([]float64{nan, inf, -inf}, 0.2); got != 0 {
		t.Errorf("TrimmedMean(all non-finite) = %v, want 0", got)
	}
	if got := TrimmedMean([]float64{nan}, 0.34); got != 0 {
		t.Errorf("TrimmedMean(single NaN) = %v, want 0", got)
	}
	// The guard must not mutate the caller's window.
	xs := []float64{5, nan, 7}
	_ = TrimmedMean(xs, 0.34)
	if !math.IsNaN(xs[1]) || xs[0] != 5 || xs[2] != 7 {
		t.Errorf("TrimmedMean mutated its input: %v", xs)
	}
}

// TestTrimmedMeanAllOutliers covers windows where trimming cannot save
// the estimate: every sample is the "outlier". The function must still
// return a finite, order-independent value.
func TestTrimmedMeanAllOutliers(t *testing.T) {
	// All samples identical and extreme: the trimmed mean is that value.
	huge := []float64{1e300, 1e300, 1e300}
	if got := TrimmedMean(huge, 0.34); got != 1e300 {
		t.Errorf("TrimmedMean(constant extreme) = %v, want 1e300", got)
	}
	// Median-of-3 with two coordinated outliers: the outliers win the
	// vote — trimming rejects a single bad pass, not a majority. Pinning
	// this documents the smoothing window's actual (limited) guarantee.
	if got := TrimmedMean([]float64{1, 1000, 1000}, 0.34); got != 1000 {
		t.Errorf("TrimmedMean(minority good) = %v, want majority 1000", got)
	}
	if got := TrimmedMean([]float64{1000, 1, 1000}, 0.34); got != 1000 {
		t.Errorf("TrimmedMean must be order-independent, got %v", got)
	}
	// And the single-bad-pass case it does guarantee.
	if got := TrimmedMean([]float64{1, 1, 1000}, 0.34); got != 1 {
		t.Errorf("TrimmedMean(single outlier) = %v, want 1", got)
	}
}

// TestTrimmedMeanSingleSample: a window of one (the gauger's first pass)
// returns the sample at any fraction, finite or not.
func TestTrimmedMeanSingleSample(t *testing.T) {
	for _, frac := range []float64{0, 0.34, 0.49, 0.5, 3} {
		if got := TrimmedMean([]float64{17.5}, frac); got != 17.5 {
			t.Errorf("TrimmedMean(singleton, frac=%v) = %v, want 17.5", frac, got)
		}
	}
	if got := TrimmedMean([]float64{math.Inf(-1)}, 0.34); got != 0 {
		t.Errorf("TrimmedMean(singleton -Inf) = %v, want 0", got)
	}
}
