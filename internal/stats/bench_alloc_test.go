package stats

import "testing"

// The BenchmarkAlloc* family gates the allocation discipline of the
// //geolint:allocfree Scratch estimators: 0 allocs/op once the buffer is
// warm. scripts/bench_alloc.sh runs them with -benchmem and fails on any
// nonzero allocs/op.

var benchStat float64

func benchSample() []float64 {
	xs := make([]float64, 128)
	for i := range xs {
		// Deterministic but unsorted: a small LCG keeps the sort honest.
		xs[i] = float64((i*2654435761 + 1) % 1000)
	}
	return xs
}

func BenchmarkAllocTrimmedMeanScratch(b *testing.B) {
	xs := benchSample()
	var s Scratch
	s.Prewarm(len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStat = s.TrimmedMean(xs, 0.2)
	}
}

func BenchmarkAllocPercentileScratch(b *testing.B) {
	xs := benchSample()
	var s Scratch
	s.Prewarm(len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStat = s.Percentile(xs, 99)
	}
}
