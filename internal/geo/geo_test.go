package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownPairs(t *testing.T) {
	usEast := MustRegion(EC2Regions, "us-east-1").Location
	usWest := MustRegion(EC2Regions, "us-west-1").Location
	ireland := MustRegion(EC2Regions, "eu-west-1").Location
	singapore := MustRegion(EC2Regions, "ap-southeast-1").Location

	cases := []struct {
		name     string
		a, b     LatLon
		min, max float64 // km bounds
	}{
		{"east-west-us", usEast, usWest, 3500, 4200},
		{"east-ireland", usEast, ireland, 5200, 6000},
		{"east-singapore", usEast, singapore, 15000, 16500},
	}
	for _, tc := range cases {
		got := HaversineKm(tc.a, tc.b)
		if got < tc.min || got > tc.max {
			t.Errorf("%s: distance %.0f km outside [%v, %v]", tc.name, got, tc.min, tc.max)
		}
	}
}

func TestHaversineZeroAndSymmetry(t *testing.T) {
	p := LatLon{10, 20}
	if d := HaversineKm(p, p); d != 0 {
		t.Errorf("self-distance = %v, want 0", d)
	}
	q := LatLon{-30, 150}
	if math.Abs(HaversineKm(p, q)-HaversineKm(q, p)) > 1e-9 {
		t.Error("haversine not symmetric")
	}
}

func TestHaversineAntipodal(t *testing.T) {
	a := LatLon{0, 0}
	b := LatLon{0, 180}
	want := math.Pi * EarthRadiusKm
	if got := HaversineKm(a, b); math.Abs(got-want) > 1 {
		t.Errorf("antipodal distance = %v, want %v", got, want)
	}
}

func TestEuclideanDeg(t *testing.T) {
	if got := EuclideanDeg(LatLon{0, 0}, LatLon{3, 4}); got != 5 {
		t.Errorf("EuclideanDeg = %v, want 5", got)
	}
}

func TestFindRegion(t *testing.T) {
	if _, ok := FindRegion(EC2Regions, "us-east-1"); !ok {
		t.Error("us-east-1 not found")
	}
	if _, ok := FindRegion(EC2Regions, "mars-north-1"); ok {
		t.Error("nonexistent region found")
	}
}

func TestMustRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegion(unknown) did not panic")
		}
	}()
	MustRegion(AzureRegions, "nope")
}

func TestCatalogsComplete(t *testing.T) {
	if len(EC2Regions) != 11 {
		t.Errorf("EC2 catalog has %d regions, paper's Figure 1 shows 11", len(EC2Regions))
	}
	seen := map[string]bool{}
	for _, r := range EC2Regions {
		if seen[r.Name] {
			t.Errorf("duplicate region %s", r.Name)
		}
		seen[r.Name] = true
		if r.Location.Lat < -90 || r.Location.Lat > 90 || r.Location.Lon < -180 || r.Location.Lon > 180 {
			t.Errorf("region %s has invalid coordinates %v", r.Name, r.Location)
		}
	}
}

func TestClassifyKm(t *testing.T) {
	usEast := MustRegion(EC2Regions, "us-east-1").Location
	cases := []struct {
		other string
		want  DistanceClass
	}{
		{"us-west-1", DistShort},
		{"eu-west-1", DistMedium},
		{"ap-southeast-1", DistLong},
	}
	for _, tc := range cases {
		km := HaversineKm(usEast, MustRegion(EC2Regions, tc.other).Location)
		if got := ClassifyKm(km); got != tc.want {
			t.Errorf("us-east-1↔%s (%.0f km) classified %v, want %v", tc.other, km, got, tc.want)
		}
	}
	if ClassifyKm(0) != DistIntra {
		t.Error("0 km should be Intra-Region")
	}
}

func TestDistanceClassString(t *testing.T) {
	if DistLong.String() != "Long" || DistIntra.String() != "Intra-Region" {
		t.Error("unexpected DistanceClass strings")
	}
	if DistanceClass(42).String() == "" {
		t.Error("unknown class should still render")
	}
}

// Property: haversine satisfies symmetry, non-negativity and the triangle
// inequality (metric axioms) for arbitrary coordinates.
func TestQuickHaversineMetric(t *testing.T) {
	clamp := func(lat, lon float64) LatLon {
		return LatLon{Lat: math.Mod(lat, 90), Lon: math.Mod(lon, 180)}
	}
	f := func(a1, a2, b1, b2, c1, c2 float64) bool {
		if math.IsNaN(a1 + a2 + b1 + b2 + c1 + c2) {
			return true
		}
		a, b, c := clamp(a1, a2), clamp(b1, b2), clamp(c1, c2)
		ab, ba := HaversineKm(a, b), HaversineKm(b, a)
		bc, ac := HaversineKm(b, c), HaversineKm(a, c)
		if ab < 0 || math.Abs(ab-ba) > 1e-6 {
			return false
		}
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
