// Package geo models geographic locations of cloud data centers.
//
// The paper's grouping optimization clusters sites by physical distance
// using each site's latitude/longitude (the PC matrix in Table 4), and its
// Observation 2 ties cross-region network performance to geographic
// distance. This package supplies the coordinate type, great-circle and
// planar distances, and catalogs of the Amazon EC2 (as of Nov 2015, the
// paper's Figure 1) and Windows Azure regions used in the evaluation.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// LatLon is a geographic coordinate in degrees.
type LatLon struct {
	Lat float64 // latitude, degrees north
	Lon float64 // longitude, degrees east
}

func (p LatLon) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.Lat, p.Lon) }

// HaversineKm returns the great-circle distance between a and b in
// kilometers. This is the physical distance the paper's Observation 2
// correlates with cross-region network performance.
func HaversineKm(a, b LatLon) float64 {
	const degToRad = math.Pi / 180
	lat1, lat2 := a.Lat*degToRad, b.Lat*degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// EuclideanDeg returns the planar Euclidean distance between a and b in
// coordinate degrees. The paper's K-means grouping step uses the Euclidean
// distance over the PC coordinates directly, so we provide it alongside the
// physically accurate haversine distance.
func EuclideanDeg(a, b LatLon) float64 {
	dLat := a.Lat - b.Lat
	dLon := a.Lon - b.Lon
	return math.Sqrt(dLat*dLat + dLon*dLon)
}

// Region is a named cloud data-center location.
type Region struct {
	Name     string // provider region code, e.g. "us-east-1"
	Display  string // human-readable name, e.g. "US East (N. Virginia)"
	Location LatLon
}

// EC2Regions lists the 11 Amazon EC2 regions of the paper's Figure 1
// (the AWS global infrastructure as of Nov 2015).
var EC2Regions = []Region{
	{"us-east-1", "US East (N. Virginia)", LatLon{38.95, -77.45}},
	{"us-west-1", "US West (N. California)", LatLon{37.35, -121.96}},
	{"us-west-2", "US West (Oregon)", LatLon{45.84, -119.29}},
	{"eu-west-1", "EU (Ireland)", LatLon{53.35, -6.26}},
	{"eu-central-1", "EU (Frankfurt)", LatLon{50.11, 8.68}},
	{"ap-southeast-1", "Asia Pacific (Singapore)", LatLon{1.35, 103.82}},
	{"ap-southeast-2", "Asia Pacific (Sydney)", LatLon{-33.87, 151.21}},
	{"ap-northeast-1", "Asia Pacific (Tokyo)", LatLon{35.68, 139.69}},
	{"sa-east-1", "South America (São Paulo)", LatLon{-23.55, -46.63}},
	{"us-gov-west-1", "AWS GovCloud (US)", LatLon{45.60, -121.18}},
	{"cn-north-1", "China (Beijing)", LatLon{39.90, 116.40}},
}

// AzureRegions lists the Windows Azure regions referenced by the paper's
// Table 3 measurements.
var AzureRegions = []Region{
	{"east-us", "East US (Virginia)", LatLon{37.37, -79.82}},
	{"west-europe", "West Europe (Netherlands)", LatLon{52.37, 4.90}},
	{"japan-east", "Japan East (Tokyo)", LatLon{35.68, 139.69}},
	{"west-us", "West US (California)", LatLon{37.78, -122.42}},
	{"southeast-asia", "Southeast Asia (Singapore)", LatLon{1.35, 103.82}},
}

// FindRegion looks a region up by name in the given catalog.
func FindRegion(catalog []Region, name string) (Region, bool) {
	for _, r := range catalog {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// MustRegion is like FindRegion but panics when the region is unknown.
// It is intended for preset construction and tests.
func MustRegion(catalog []Region, name string) Region {
	r, ok := FindRegion(catalog, name)
	if !ok {
		panic(fmt.Sprintf("geo: unknown region %q", name))
	}
	return r
}

// DistanceClass buckets a physical distance the way the paper's Tables 2
// and 3 label site pairs: Intra (same region), Short, Medium, or Long.
type DistanceClass int

// Distance classes ordered by increasing distance.
const (
	DistIntra DistanceClass = iota
	DistShort
	DistMedium
	DistLong
)

func (d DistanceClass) String() string {
	switch d {
	case DistIntra:
		return "Intra-Region"
	case DistShort:
		return "Short"
	case DistMedium:
		return "Medium"
	case DistLong:
		return "Long"
	default:
		return fmt.Sprintf("DistanceClass(%d)", int(d))
	}
}

// ClassifyKm maps a distance in kilometers to a DistanceClass using the
// breakpoints implied by the paper's tables: US-East↔US-West (~3900 km) is
// "Short", US-East↔Ireland (~5500 km) is "Medium", and US-East↔Singapore
// (~15500 km) is "Long".
func ClassifyKm(km float64) DistanceClass {
	switch {
	case km < 100:
		return DistIntra
	case km < 5000:
		return DistShort
	case km < 9000:
		return DistMedium
	default:
		return DistLong
	}
}
