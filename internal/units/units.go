// Package units defines the typed physical quantities of the α–β cost
// model. The paper's arithmetic is entirely over four dimensions — time
// (LT latencies), data volume (CG entries, message and checkpoint sizes),
// data rate (BT bandwidths) and the α–β objective itself — and a single
// `latency + bandwidth` mixup silently corrupts every downstream
// improvement figure. Promoting the raw float64s to defined types makes
// such mixups a compile error, and the geolint unitcheck rule closes the
// remaining holes (float64 laundering, bare literals) that conversions
// would otherwise reopen.
//
// Each type is marked with a //geolint:unit directive on its declaration;
// the analysis facts mechanism exports the marked types so unitcheck
// recognizes them in every importing package (netmodel, calib, core,
// netsim, faults, and the command-line tools).
//
// Conventions:
//
//   - Construct from raw measurements with an explicit conversion:
//     units.Seconds(0.016), units.Bytes(8<<20). The unitcheck rule treats
//     the conversion as the constructor; a bare literal assigned to a
//     unit-typed field or variable is flagged.
//   - Same-dimension arithmetic (lat1 + lat2, cost < best) uses the
//     built-in operators; Go's type system already rejects cross-type
//     operands.
//   - Cross-dimension arithmetic goes through the helpers below, which
//     perform exactly one floating-point operation each so refactoring
//     float64 code onto them is bit-identical.
//   - mat.Matrix stays float64; the matrix-facing boundary (Cloud.Latency,
//     Cloud.Bandwidth, Problem cost loops) converts at the edge.
package units

// Seconds is a duration or point on a simulated timeline: latencies,
// makespans, probe timeouts, backoff waits.
//
//geolint:unit
type Seconds float64

// Bytes is a data volume: message sizes, probe payloads, checkpoint
// images, CG matrix entries.
//
//geolint:unit
type Bytes float64

// BytesPerSec is a data rate: BT bandwidth entries, NIC rates, max-min
// fair shares.
//
//geolint:unit
type BytesPerSec float64

// Cost is the α–β objective of the paper's Formula 4 — dimensionally
// seconds (AG·LT + CG/BT), but kept distinct from Seconds so an aggregate
// objective value cannot be confused with a physical duration (a cost sums
// pairwise transfer times that overlap in real time).
//
//geolint:unit
type Cost float64

// Float returns the raw magnitude of s.
func (s Seconds) Float() float64 { return float64(s) }

// Float returns the raw magnitude of b.
func (b Bytes) Float() float64 { return float64(b) }

// Float returns the raw magnitude of r.
func (r BytesPerSec) Float() float64 { return float64(r) }

// Float returns the raw magnitude of c.
func (c Cost) Float() float64 { return float64(c) }

// Over returns the transfer time of b at rate r: b / r.
func (b Bytes) Over(r BytesPerSec) Seconds { return Seconds(float64(b) / float64(r)) }

// Per returns the rate of moving b in t: b / t (bandwidth estimated from a
// probe's payload and elapsed time).
func (b Bytes) Per(t Seconds) BytesPerSec { return BytesPerSec(float64(b) / float64(t)) }

// Times returns the volume moved at rate r over t: r * t.
func (r BytesPerSec) Times(t Seconds) Bytes { return Bytes(float64(r) * float64(t)) }

// Scale returns s * x for a dimensionless factor x (message counts,
// jitter wobbles, retry multipliers).
func (s Seconds) Scale(x float64) Seconds { return Seconds(float64(s) * x) }

// Div returns s / x for a dimensionless divisor x (averaging).
func (s Seconds) Div(x float64) Seconds { return Seconds(float64(s) / x) }

// Scale returns b * x for a dimensionless factor x.
func (b Bytes) Scale(x float64) Bytes { return Bytes(float64(b) * x) }

// Scale returns r * x for a dimensionless factor x (degradation factors,
// instance-type scaling).
func (r BytesPerSec) Scale(x float64) BytesPerSec { return BytesPerSec(float64(r) * x) }

// Div returns r / x for a dimensionless divisor x (fair-share splits).
func (r BytesPerSec) Div(x float64) BytesPerSec { return BytesPerSec(float64(r) / x) }

// AsCost converts a pairwise α–β transfer time into its contribution to
// the Formula 4 objective.
func (s Seconds) AsCost() Cost { return Cost(s) }

// AsSeconds reinterprets an objective value on the time axis (reports
// that print costs in seconds).
func (c Cost) AsSeconds() Seconds { return Seconds(c) }

// Scale returns c * x for a dimensionless factor x (amortization
// horizons, improvement ratios).
func (c Cost) Scale(x float64) Cost { return Cost(float64(c) * x) }
