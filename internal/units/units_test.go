package units

import (
	"math"
	"testing"
)

// TestHelpersBitIdentical pins the contract the refactor from raw float64
// rests on: every helper performs exactly the floating-point operation its
// doc states, so code moved onto the typed API produces bit-identical
// results.
func TestHelpersBitIdentical(t *testing.T) {
	vals := []float64{0, 1, 0.25, 3.5e-9, 1.7e12, math.Pi, 5.4e6}
	for _, a := range vals {
		for _, b := range vals {
			if b != 0 {
				if got, want := Bytes(a).Over(BytesPerSec(b)).Float(), a/b; math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("Bytes(%g).Over(%g) = %g, want %g", a, b, got, want)
				}
				if got, want := Seconds(a).Div(b).Float(), a/b; math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("Seconds(%g).Div(%g) = %g, want %g", a, b, got, want)
				}
				if got, want := BytesPerSec(a).Div(b).Float(), a/b; math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("BytesPerSec(%g).Div(%g) = %g, want %g", a, b, got, want)
				}
			}
			prod := a * b
			for name, got := range map[string]float64{
				"Seconds.Scale":     Seconds(a).Scale(b).Float(),
				"Bytes.Scale":       Bytes(a).Scale(b).Float(),
				"BytesPerSec.Scale": BytesPerSec(a).Scale(b).Float(),
				"Cost.Scale":        Cost(a).Scale(b).Float(),
				"BytesPerSec.Times": BytesPerSec(a).Times(Seconds(b)).Float(),
			} {
				if math.Float64bits(got) != math.Float64bits(prod) {
					t.Errorf("%s(%g, %g) = %g, want %g", name, a, b, got, prod)
				}
			}
		}
	}
}

// TestCostBridging covers the Seconds↔Cost reinterpretations.
func TestCostBridging(t *testing.T) {
	s := Seconds(1.75)
	if got := s.AsCost(); got.Float() != 1.75 {
		t.Errorf("AsCost = %v", got)
	}
	c := Cost(2.5)
	if got := c.AsSeconds(); got.Float() != 2.5 {
		t.Errorf("AsSeconds = %v", got)
	}
}
