package viz

import (
	"strings"
	"testing"
	"testing/quick"
)

func simpleChart() *Chart {
	return &Chart{
		Title:  "Improvement vs scale",
		XLabel: "machines",
		YLabel: "improvement (%)",
		Series: []Series{
			{Name: "Geo", X: []float64{64, 128, 256}, Y: []float64{55, 56, 57}},
			{Name: "Greedy", X: []float64{64, 128, 256}, Y: []float64{38, 40, 47}},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	svg, err := simpleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "Improvement vs scale", "machines", "improvement (%)",
		"Geo", "Greedy", "<polyline", "<circle",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Errorf("%d point markers, want 6", got)
	}
}

func TestSVGLogX(t *testing.T) {
	c := &Chart{
		Title: "best-of-K",
		Series: []Series{
			{Name: "LU", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 0.9, 0.8, 0.78}},
		},
		LogX: true,
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Log spacing: the gap between x(1)→x(10) equals x(10)→x(100).
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("no polyline")
	}
	// Nonpositive x on log axis is rejected.
	c.Series[0].X[0] = 0
	if _, err := c.SVG(); err == nil {
		t.Error("log axis accepted x=0")
	}
}

func TestSVGErrors(t *testing.T) {
	cases := []*Chart{
		{},
		{Series: []Series{{Name: "a", X: []float64{1}, Y: nil}}},
		{Series: []Series{{Name: "a"}}},
		{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1}}}, Width: 10, Height: 10},
	}
	for i, c := range cases {
		if _, err := c.SVG(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := simpleChart()
	c.Title = `<script>"x&y"</script>`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;script&gt;") {
		t.Error("escaped form missing")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	if _, err := c.SVG(); err != nil {
		t.Errorf("constant series should render: %v", err)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		2_000_000: "2.0M",
		50_000:    "50k",
		128:       "128",
		0.5:       "0.50",
		3:         "3",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

// Property: rendering never panics and produces well-formed-ish output for
// arbitrary finite data.
func TestQuickSVGRobust(t *testing.T) {
	f := func(raw []int16, logX bool) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(i + 1) // positive, increasing (log-safe)
			ys[i] = float64(r)
		}
		c := &Chart{Title: "fuzz", Series: []Series{{Name: "s", X: xs, Y: ys}}, LogX: logX}
		svg, err := c.SVG()
		if err != nil {
			return false
		}
		return strings.HasPrefix(svg, "<svg") && strings.HasSuffix(strings.TrimSpace(svg), "</svg>")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
