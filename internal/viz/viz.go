// Package viz renders line charts as standalone SVG documents, so the
// figure experiments can emit actual figures (improvement-vs-scale curves,
// best-of-K decay, constraint sweeps) next to their text tables. It is a
// deliberately small renderer: multiple named series, linear or log₁₀
// x axes, automatic ranges and ticks, and a legend — no external
// dependencies.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes a figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogX plots x on a log10 scale (all x must be positive).
	LogX bool
	// Width and Height are the SVG canvas size; zero selects 720×440.
	Width, Height int
}

// palette holds the series stroke colors (colorblind-safe-ish defaults).
var palette = []string{"#1b6ca8", "#d1495b", "#66a182", "#edae49", "#775093", "#3e4455"}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 48
	marginBottom = 56
)

// SVG renders the chart.
func (c *Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("viz: chart has no series")
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 440
	}
	if width < 200 || height < 150 {
		return "", fmt.Errorf("viz: canvas %d×%d too small", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("viz: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("viz: series %q is empty", s.Name)
		}
		for i := range s.X {
			x := s.X[i]
			if c.LogX {
				if x <= 0 {
					return "", fmt.Errorf("viz: series %q has nonpositive x on a log axis", s.Name)
				}
				x = math.Log10(x)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	// Pad the y range slightly.
	pad := (maxY - minY) * 0.05
	minY, maxY = minY-pad, maxY+pad

	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)
	sx := func(x float64) float64 {
		if c.LogX {
			x = math.Log10(x)
		}
		return float64(marginLeft) + (x-minX)/(maxX-minX)*plotW
	}
	sy := func(y float64) float64 {
		return float64(marginTop) + (1-(y-minY)/(maxY-minY))*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`+"\n", marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginLeft, marginTop, marginLeft, height-marginBottom)

	// Y ticks.
	for i := 0; i <= 4; i++ {
		v := minY + (maxY-minY)*float64(i)/4
		y := sy(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginLeft, y, width-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(v))
	}
	// X ticks: at each distinct data x of the first series (≤ 10), else 5
	// evenly spaced positions.
	xticks := tickValues(c.Series[0].X, c.LogX, minX, maxX)
	for _, v := range xticks {
		x := sx(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
			x, height-marginBottom, x, height-marginBottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, height-marginBottom+18, formatTick(v))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+int(plotW/2), height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginTop+int(plotH/2), marginTop+int(plotH/2), escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", sx(s.X[i]), sy(s.Y[i]), color)
		}
		// Legend entry.
		lx := width - marginRight - 170
		ly := marginTop + 8 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+22, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", lx+28, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// tickValues picks x tick positions in data space.
func tickValues(xs []float64, logX bool, minT, maxT float64) []float64 {
	uniq := map[float64]bool{}
	var vals []float64
	for _, x := range xs {
		if !uniq[x] {
			uniq[x] = true
			vals = append(vals, x)
		}
	}
	if len(vals) <= 10 && len(vals) >= 2 {
		return vals
	}
	out := make([]float64, 0, 5)
	for i := 0; i <= 4; i++ {
		t := minT + (maxT-minT)*float64(i)/4
		if logX {
			t = math.Pow(10, t)
		}
		out = append(out, t)
	}
	return out
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
