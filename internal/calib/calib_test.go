package calib

import (
	"math"
	"testing"
	"testing/quick"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/netmodel"
)

func TestCalibrateAccuracy(t *testing.T) {
	cloud, err := netmodel.PaperCloud(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Calibrate(cloud, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	latErr, bwErr := res.RelativeErrors(cloud)
	if latErr > 0.08 {
		t.Errorf("mean latency error %.3f, want ≤0.08", latErr)
	}
	if bwErr > 0.12 {
		t.Errorf("mean bandwidth error %.3f, want ≤0.12", bwErr)
	}
	if res.SamplesPerPair != 30 {
		t.Errorf("SamplesPerPair = %d, want 30 (3 days × 10)", res.SamplesPerPair)
	}
}

// The paper's overhead example: 4 sites, 128 nodes per site, one minute
// per probe pair — all-pairs takes over 180 days, site pairs 12 minutes.
func TestOverheadMatchesPaperExample(t *testing.T) {
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, 128, netmodel.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Calibrate(cloud, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SitePairSessions != 12 {
		t.Errorf("SitePairSessions = %d, want 12", res.SitePairSessions)
	}
	if got := res.OverheadSeconds / 60; got != 12 {
		t.Errorf("overhead = %v minutes, want 12", got)
	}
	allPairs := AllPairsOverheadSeconds(cloud.TotalNodes(), 60)
	days := allPairs / 86400
	if days < 180 {
		t.Errorf("all-pairs overhead = %.0f days, paper says over 180", days)
	}
	if res.OverheadSeconds >= allPairs/1000 {
		t.Error("site-pair calibration not dramatically cheaper than all pairs")
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	cloud, err := netmodel.PaperCloud(3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Calibrate(cloud, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(cloud, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.LT.Equal(b.LT, 0) || !a.BT.Equal(b.BT, 0) {
		t.Error("same seed produced different calibrations")
	}
}

func TestCalibrateErrors(t *testing.T) {
	cloud, err := netmodel.PaperCloud(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(nil, Options{}); err == nil {
		t.Error("nil cloud accepted")
	}
	if _, err := Calibrate(cloud, Options{Days: -1}); err == nil {
		t.Error("negative days accepted")
	}
	if _, err := Calibrate(cloud, Options{ProbeBytes: 1}); err == nil {
		t.Error("1-byte probe accepted")
	}
	bad := []Options{
		{SamplesPerDay: -1},
		{ProbeBytes: -8},
		{PairProbeSeconds: -1},
		{InterNoise: -0.1},
		{IntraNoise: -0.1},
		{ProbeTimeout: -1},
		{MaxRetries: -1},
		{TrimFraction: -0.1},
		{TrimFraction: 0.5},
	}
	for i, o := range bad {
		if _, err := Calibrate(cloud, o); err == nil {
			t.Errorf("bad options %d (%+v) accepted", i, o)
		}
	}
}

func TestMoreSamplingImprovesAccuracy(t *testing.T) {
	cloud, err := netmodel.PaperCloud(5)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Calibrate(cloud, Options{Days: 1, SamplesPerDay: 1, Seed: 11, IntraNoise: 0.3, InterNoise: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Calibrate(cloud, Options{Days: 20, SamplesPerDay: 50, Seed: 11, IntraNoise: 0.3, InterNoise: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	_, bwSmall := small.RelativeErrors(cloud)
	_, bwBig := big.RelativeErrors(cloud)
	if bwBig >= bwSmall {
		t.Errorf("1000 samples (err %.3f) not better than 1 sample (err %.3f)", bwBig, bwSmall)
	}
}

// Property: calibrated estimates are always positive and latency estimates
// stay within an order of magnitude of the truth for reasonable noise.
func TestQuickCalibrateSane(t *testing.T) {
	cloud, err := netmodel.PaperCloud(2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		res, err := Calibrate(cloud, Options{Seed: seed, Days: 2, SamplesPerDay: 5})
		if err != nil {
			return false
		}
		for k := 0; k < cloud.M(); k++ {
			for l := 0; l < cloud.M(); l++ {
				if res.LT.At(k, l) <= 0 || res.BT.At(k, l) <= 0 {
					return false
				}
				ratio := res.LT.At(k, l) / cloud.LT.At(k, l)
				if ratio < 0.5 || ratio > 2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAllPairsOverheadFormula(t *testing.T) {
	if got := AllPairsOverheadSeconds(2, 60); got != 120 {
		t.Errorf("AllPairsOverheadSeconds(2, 60) = %v, want 120", got)
	}
	if math.Signbit(AllPairsOverheadSeconds(0, 60).Float()) {
		// N=0 gives 0·(−1)·60 = 0; just ensure no negative nonsense leaks.
		t.Error("negative overhead for zero nodes")
	}
}

// The paper: inter-site variation is small (<5%) while intra-site
// variation is relatively larger.
func TestVariationStatistics(t *testing.T) {
	cloud, err := netmodel.PaperCloud(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Calibrate(cloud, Options{Seed: 9, Days: 10, SamplesPerDay: 20})
	if err != nil {
		t.Fatal(err)
	}
	var interMax, intraMin float64 = 0, 1
	for k := 0; k < cloud.M(); k++ {
		for l := 0; l < cloud.M(); l++ {
			v := res.Variation.At(k, l)
			if v <= 0 {
				t.Fatalf("nonpositive variation at (%d,%d)", k, l)
			}
			if k == l {
				if v < intraMin {
					intraMin = v
				}
			} else if v > interMax {
				interMax = v
			}
		}
	}
	if interMax > 0.05 {
		t.Errorf("max inter-site variation %.3f, paper reports <5%%", interMax)
	}
	if intraMin <= interMax {
		t.Errorf("intra-site variation (min %.3f) not above inter-site (max %.3f)", intraMin, interMax)
	}
}

// A site that never answers: every pair touching it exhausts its retries,
// is flagged Degraded, and falls back to the timeout bound, while the
// surviving pairs calibrate as if nothing happened.
func TestCalibrateUnderBlackoutFlagsDegraded(t *testing.T) {
	cloud, err := netmodel.PaperCloud(4)
	if err != nil {
		t.Fatal(err)
	}
	const dead = 1
	sched := &faults.Schedule{Name: "blackout", Events: []faults.Event{
		{Kind: faults.SiteOutage, Start: 0, Site: dead},
	}}
	res, err := Calibrate(cloud, Options{Seed: 4, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := Calibrate(cloud, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < cloud.M(); k++ {
		for l := 0; l < cloud.M(); l++ {
			touches := k == dead || l == dead
			if got := res.Degraded.At(k, l) > 0; got != touches {
				t.Errorf("Degraded(%d,%d) = %v, want %v", k, l, got, touches)
			}
			if touches && res.LT.At(k, l) != 5 {
				t.Errorf("LT(%d,%d) = %v, want the 5 s timeout fallback", k, l, res.LT.At(k, l))
			}
			if !touches {
				// Surviving pairs calibrate at healthy accuracy (the RNG
				// streams diverge, so compare against the truth, not the
				// healthy run bitwise).
				relErr := math.Abs(res.LT.At(k, l)-cloud.LT.At(k, l)) / cloud.LT.At(k, l)
				if relErr > 0.2 {
					t.Errorf("LT(%d,%d) off by %.0f%% on a surviving pair", k, l, 100*relErr)
				}
			}
		}
	}
	if res.Retries == 0 || res.FailedSamples == 0 || res.RetrySeconds <= 0 {
		t.Errorf("no retry accounting: %d retries, %d failed, %.1f s", res.Retries, res.FailedSamples, res.RetrySeconds.Float())
	}
	if res.OverheadSeconds <= healthy.OverheadSeconds {
		t.Error("faulty overhead not above healthy overhead")
	}
	want := [][2]int{}
	for k := 0; k < cloud.M(); k++ {
		for l := 0; l < cloud.M(); l++ {
			if k == dead || l == dead {
				want = append(want, [2]int{k, l})
			}
		}
	}
	got := res.DegradedPairs()
	if len(got) != len(want) {
		t.Errorf("DegradedPairs = %v, want %v", got, want)
	}
}

// A short outage window at the start of the run: the backoff retries walk
// the probe past the window, so no sample is lost and nothing is flagged.
func TestCalibrateRetriesRecoverFromWindow(t *testing.T) {
	cloud, err := netmodel.PaperCloud(4)
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Name: "window", Events: []faults.Event{
		{Kind: faults.LinkDown, Start: 0, End: 8, Src: 0, Dst: 1},
	}}
	res, err := Calibrate(cloud, Options{Seed: 4, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Error("probe on the downed link never retried")
	}
	if res.FailedSamples != 0 || res.Degraded.At(0, 1) != 0 {
		t.Errorf("recoverable window lost samples: %d failed, Degraded(0,1) = %v",
			res.FailedSamples, res.Degraded.At(0, 1))
	}
	latErr, bwErr := res.RelativeErrors(cloud)
	if latErr > 0.08 || bwErr > 0.12 {
		t.Errorf("errors after recovery lat %.3f bw %.3f, want healthy accuracy", latErr, bwErr)
	}
}

// A latency spike covering one of thirty samples: the trimmed mean discards
// the outlier, keeping the estimates at healthy accuracy.
func TestTrimmedMeanRejectsOutliers(t *testing.T) {
	cloud, err := netmodel.PaperCloud(6)
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Name: "spike", Events: []faults.Event{
		{Kind: faults.LatencySpike, Start: 0, End: 30, Src: faults.Wildcard, Dst: faults.Wildcard, Factor: 3},
	}}
	res, err := Calibrate(cloud, Options{Seed: 6, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	latErr, _ := res.RelativeErrors(cloud)
	if latErr > 0.1 {
		t.Errorf("latency error %.3f with a trimmed outlier, want ≤0.1", latErr)
	}
	if res.FailedSamples != 0 {
		t.Errorf("%d samples failed under a pure latency spike", res.FailedSamples)
	}
}

func TestCalibrateFaultyDeterministic(t *testing.T) {
	cloud, err := netmodel.PaperCloud(3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Calibrate(cloud, Options{Seed: 7, Faults: faults.FlakyWAN(cloud.M(), 7)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.LT.Equal(b.LT, 0) || !a.BT.Equal(b.BT, 0) {
		t.Error("same seed produced different faulty calibrations")
	}
	if a.Retries != b.Retries || a.FailedSamples != b.FailedSamples ||
		math.Float64bits(a.RetrySeconds.Float()) != math.Float64bits(b.RetrySeconds.Float()) {
		t.Error("same seed produced different retry accounting")
	}
}
