package calib

import (
	"testing"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/units"
)

// TestStartOffsetsOntoSchedule pins the re-gauging loop's probe
// placement: the same reduced-budget pass lands before or inside a
// fault window purely according to Options.Start. A bandwidth collapse
// in [100, 200) is invisible to a pass at Start=0 and dominates a pass
// at Start=150.
func TestStartOffsetsOntoSchedule(t *testing.T) {
	cloud, err := netmodel.PaperCloud(4)
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Name: "window", Events: []faults.Event{
		{Kind: faults.BandwidthDegrade, Start: 100, End: 200, Src: faults.Wildcard, Dst: faults.Wildcard, Factor: 0.25},
	}}
	opts := func(start float64) Options {
		return Options{
			Days: 1, SamplesPerDay: 3,
			PairProbeSeconds: units.Seconds(1),
			Faults:           sched,
			Seed:             9,
			Start:            units.Seconds(start),
		}
	}
	before, err := Calibrate(cloud, opts(0))
	if err != nil {
		t.Fatal(err)
	}
	inside, err := Calibrate(cloud, opts(150))
	if err != nil {
		t.Fatal(err)
	}
	m := cloud.M()
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if k == l {
				continue
			}
			// Inside the window the estimated bandwidth must reflect the
			// 4× collapse; a generous 2× bound keeps probe noise out of
			// the assertion.
			if ratio := before.BT.At(k, l) / inside.BT.At(k, l); ratio < 2 {
				t.Errorf("BT(%d,%d): before/inside = %.2f, want the collapse visible (≥ 2)", k, l, ratio)
			}
		}
	}
	// Negative Start is rejected.
	if _, err := Calibrate(cloud, Options{Start: units.Seconds(-1)}); err == nil {
		t.Error("Calibrate accepted a negative Start")
	}
}

// TestUnreachableMatrix: a permanent site outage marks exactly the
// pairs touching the dead site as unreachable — the signal the
// re-gauging loop turns into dead-site detection.
func TestUnreachableMatrix(t *testing.T) {
	cloud, err := netmodel.PaperCloud(4)
	if err != nil {
		t.Fatal(err)
	}
	const dead = 2
	sched := &faults.Schedule{Name: "outage", Events: []faults.Event{
		{Kind: faults.SiteOutage, Start: 0, Site: dead},
	}}
	res, err := Calibrate(cloud, Options{Seed: 5, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unreachable == nil {
		t.Fatal("Unreachable matrix not populated")
	}
	m := cloud.M()
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			// Every direction touching the dead site fails, the
			// intra-site diagonal included.
			touches := k == dead || l == dead
			want := 0.0
			if touches {
				want = 1
			}
			if got := res.Unreachable.At(k, l); got != want {
				t.Errorf("Unreachable(%d,%d) = %v, want %v", k, l, got, want)
			}
		}
	}
	// A healthy run reports nothing unreachable.
	healthy, err := Calibrate(cloud, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if healthy.Unreachable.At(k, l) != 0 {
				t.Errorf("healthy Unreachable(%d,%d) = %v", k, l, healthy.Unreachable.At(k, l))
			}
		}
	}
}
