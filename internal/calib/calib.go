// Package calib reproduces the paper's network-calibration component
// (Section 4.2, "Network Calibration"), standing in for SKaMPI's
// Pingpong_Send_Recv benchmark.
//
// For every ordered site pair (k, l) the calibrator picks one instance in
// each site and measures message elapsed times against the cloud model with
// multiplicative measurement noise: the latency estimate LT(k, l) is the
// mean elapsed time of a one-byte message and the bandwidth estimate
// BT(k, l) is derived from the elapsed time of an 8 MB probe (the paper's
// choice — "when the message size is larger than 8 MB, the results are
// stable"). Sampling repeats over several days and is averaged, as the
// paper does; inter-site noise is small (<5%) while intra-site noise is
// relatively larger, matching the paper's observations.
//
// The package also reproduces the paper's overhead accounting: site-pair
// calibration needs M(M−1) probe sessions versus N(N−1) for the
// traditional all-node-pairs approach — 12 minutes versus over 180 days
// for 4 sites × 128 nodes at one minute per session.
package calib

import (
	"fmt"
	"math"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// Options configures a calibration run. Zero values select the defaults
// noted on each field.
type Options struct {
	// Days of repeated measurement (default 3).
	Days int
	// SamplesPerDay per site pair (default 10).
	SamplesPerDay int
	// ProbeBytes is the bandwidth probe size (default 8 MB).
	ProbeBytes units.Bytes
	// PairProbeSeconds is the wall time one probe session occupies, used
	// only for overhead accounting (default 60 s, the paper's figure).
	PairProbeSeconds units.Seconds
	// InterNoise is the relative std-dev of inter-site measurements
	// (default 0.03, the paper reports <5% variation).
	InterNoise float64
	// IntraNoise is the relative std-dev of intra-site measurements
	// (default 0.10; the paper notes intra-site variation is larger).
	IntraNoise float64
	// Seed drives the measurement noise.
	Seed int64
	// Faults attaches a fault schedule the probes run against. Probes on a
	// dead link time out and are retried with capped exponential backoff;
	// degraded links inflate the measured elapsed times; ProbeLoss events
	// drop individual probe attempts. nil calibrates a healthy network.
	Faults *faults.Schedule
	// ProbeTimeout is how long one probe attempt may take before the
	// calibrator abandons it and retries (default 5 s).
	ProbeTimeout units.Seconds
	// MaxRetries bounds the retry attempts per sample after the first try
	// (default 3). A sample that exhausts its retries is recorded as
	// failed and the site pair is flagged Degraded.
	MaxRetries int
	// TrimFraction is the fraction of low and high samples discarded from
	// each end before averaging (default 0.1) — trimmed-mean outlier
	// rejection, so transient fault windows cannot skew an estimate that
	// mostly saw a healthy link.
	TrimFraction float64
	// Start offsets every probe onto the fault schedule's clock: sample j
	// of each pair fires at Start + j × PairProbeSeconds. The zero value
	// keeps the historical behavior (probing from schedule time 0); the
	// re-gauging loop sets it to "now" so a reduced-budget pass measures
	// the WAN as it currently is, not as it was at boot.
	Start units.Seconds
}

func (o Options) withDefaults() (Options, error) {
	switch {
	case o.Days < 0:
		return o, fmt.Errorf("calib: negative Days %d", o.Days)
	case o.SamplesPerDay < 0:
		return o, fmt.Errorf("calib: negative SamplesPerDay %d", o.SamplesPerDay)
	case o.ProbeBytes < 0:
		return o, fmt.Errorf("calib: negative ProbeBytes %v", o.ProbeBytes)
	case o.PairProbeSeconds < 0:
		return o, fmt.Errorf("calib: negative PairProbeSeconds %v", o.PairProbeSeconds)
	case o.InterNoise < 0:
		return o, fmt.Errorf("calib: negative InterNoise %v", o.InterNoise)
	case o.IntraNoise < 0:
		return o, fmt.Errorf("calib: negative IntraNoise %v", o.IntraNoise)
	case o.ProbeTimeout < 0:
		return o, fmt.Errorf("calib: negative ProbeTimeout %v", o.ProbeTimeout)
	case o.MaxRetries < 0:
		return o, fmt.Errorf("calib: negative MaxRetries %d", o.MaxRetries)
	case o.TrimFraction < 0 || o.TrimFraction >= 0.5:
		return o, fmt.Errorf("calib: TrimFraction %v outside [0, 0.5)", o.TrimFraction)
	case o.Start < 0:
		return o, fmt.Errorf("calib: negative Start %v", o.Start)
	}
	if o.Days == 0 {
		o.Days = 3
	}
	if o.SamplesPerDay == 0 {
		o.SamplesPerDay = 10
	}
	if o.ProbeBytes == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.ProbeBytes = units.Bytes(8 << 20)
	}
	if o.PairProbeSeconds == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.PairProbeSeconds = units.Seconds(60)
	}
	if o.InterNoise == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.InterNoise = 0.03
	}
	if o.IntraNoise == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.IntraNoise = 0.10
	}
	if o.ProbeTimeout == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.ProbeTimeout = units.Seconds(5)
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.TrimFraction == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.TrimFraction = 0.1
	}
	return o, nil
}

// Result holds the calibrated matrices and the overhead accounting.
type Result struct {
	// LT and BT are the estimated latency (s) and bandwidth (bytes/s)
	// matrices, in the cloud's site order.
	LT, BT *mat.Matrix
	// Variation(k, l) is the coefficient of variation (stddev/mean) of the
	// bandwidth-probe samples for the site pair — the stability statistic
	// the paper reports ("generally with small variation (smaller than
	// 5%)", intra-site relatively larger).
	Variation *mat.Matrix
	// SamplesPerPair is Days × SamplesPerDay.
	SamplesPerPair int
	// SitePairSessions is the number of ordered inter-site probe sessions
	// (M(M−1)); intra-site probes piggyback on the same sessions.
	SitePairSessions int
	// OverheadSeconds is SitePairSessions × PairProbeSeconds plus
	// RetrySeconds — the retry-aware accounting of what calibration
	// actually cost under faults.
	OverheadSeconds units.Seconds
	// Degraded(k, l) is 1 when at least one sample for the pair was
	// abandoned after exhausting its retries, so the pair's estimates rest
	// on fewer samples than requested (a fully unreachable pair falls back
	// to the timeout bound: LT = ProbeTimeout, BT = ProbeBytes/ProbeTimeout).
	Degraded *mat.Matrix
	// Unreachable(k, l) is 1 when every sample for the pair was abandoned —
	// the probes never saw the link up, so LT/BT carry only the timeout
	// fallback. The re-gauging loop uses full rows of unreachable pairs to
	// infer dead sites; Degraded is the weaker "some samples lost" flag.
	Unreachable *mat.Matrix
	// Retries counts probe attempts beyond each sample's first try.
	Retries int
	// FailedSamples counts samples abandoned after MaxRetries.
	FailedSamples int
	// RetrySeconds is the wall time spent on timed-out attempts and their
	// backoff waits.
	RetrySeconds units.Seconds
}

// DegradedPairs lists the site pairs flagged in Degraded, row-major.
func (r *Result) DegradedPairs() [][2]int {
	if r.Degraded == nil {
		return nil
	}
	var out [][2]int
	m := r.Degraded.Rows()
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if r.Degraded.At(k, l) > 0 {
				out = append(out, [2]int{k, l})
			}
		}
	}
	return out
}

// Calibrate measures the cloud's LT/BT matrices through noisy ping-pong
// probes and returns averaged estimates. With Options.Faults set the probes
// run against the fault schedule — sample j of every pair fires at schedule
// time j × PairProbeSeconds — timing out on dead links, retrying with
// capped exponential backoff (jittered from the calibration RNG, so runs
// stay seed-deterministic), and rejecting outliers with a trimmed mean.
func Calibrate(cloud *netmodel.Cloud, opt Options) (*Result, error) {
	if cloud == nil {
		return nil, fmt.Errorf("calib: nil cloud")
	}
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if o.Days < 1 || o.SamplesPerDay < 1 {
		return nil, fmt.Errorf("calib: need at least one day and one sample per day")
	}
	if o.ProbeBytes < units.Bytes(2) {
		return nil, fmt.Errorf("calib: probe of %v bytes cannot separate latency from bandwidth", o.ProbeBytes)
	}
	m := cloud.M()
	rng := stats.NewRand(o.Seed)
	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	variation := mat.NewSquare(m)
	degraded := mat.NewSquare(m)
	unreachable := mat.NewSquare(m)
	res := &Result{
		LT:          lt,
		BT:          bt,
		Variation:   variation,
		Degraded:    degraded,
		Unreachable: unreachable,
	}
	samples := o.Days * o.SamplesPerDay
	latSamples := make([]float64, 0, samples)
	probes := make([]float64, 0, samples)
	var sm stats.Scratch // one trimmed-mean sort buffer for all m² pairs
	sm.Prewarm(samples)
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			noise := o.InterNoise
			if k == l {
				noise = o.IntraNoise
			}
			trueLat := cloud.Latency(k, l)
			trueBW := cloud.Bandwidth(k, l)
			latSamples = latSamples[:0]
			probes = probes[:0]
			pairFailed := 0
			for s := 0; s < samples; s++ {
				lat1, latP, ok := probePair(k, l, o.Start+o.PairProbeSeconds.Scale(float64(s)), trueLat, trueBW, noise, o, rng, res)
				if !ok {
					pairFailed++
					continue
				}
				latSamples = append(latSamples, lat1.Float())
				probes = append(probes, latP.Float())
			}
			res.FailedSamples += pairFailed
			if pairFailed > 0 {
				degraded.Set(k, l, 1)
			}
			if len(probes) == 0 {
				// The pair never answered: the timeout is the only bound
				// the calibrator observed. Downstream consumers must treat
				// the pair as unreliable via the Degraded flag.
				unreachable.Set(k, l, 1)
				lt.Set(k, l, o.ProbeTimeout.Float())
				bt.Set(k, l, o.ProbeBytes.Per(o.ProbeTimeout).Float())
				continue
			}
			latEst := sm.TrimmedMean(latSamples, o.TrimFraction)
			probeMean := sm.TrimmedMean(probes, o.TrimFraction)
			transfer := probeMean - latEst
			if transfer <= 0 {
				// Noise swallowed the transfer time; fall back to the raw
				// probe elapsed time (bandwidth slightly underestimated).
				transfer = probeMean
			}
			lt.Set(k, l, latEst)
			bt.Set(k, l, o.ProbeBytes.Float()/transfer)
			if probeMean > 0 {
				variation.Set(k, l, stats.StdDev(probes)/probeMean)
			}
		}
	}
	sessions := m * (m - 1)
	res.SamplesPerPair = samples
	res.SitePairSessions = sessions
	res.OverheadSeconds = o.PairProbeSeconds.Scale(float64(sessions)) + res.RetrySeconds
	return res, nil
}

// probePair runs one sample — first try plus up to MaxRetries backoff-spaced
// retries — for site pair (k, l) at schedule time t0. It returns the
// measured one-byte and probe elapsed times, or ok=false when the sample
// exhausted its retries. Retry accounting accumulates into res.
func probePair(k, l int, t0 units.Seconds, trueLat units.Seconds, trueBW units.BytesPerSec, noise float64, o Options, rng interface {
	NormFloat64() float64
	Float64() float64
}, res *Result) (lat1, latP units.Seconds, ok bool) {
	t := t0
	for attempt := 0; ; attempt++ {
		st := o.Faults.Link(k, l, t.Float())
		failed := false
		switch {
		case st.Down:
			// The ping never returns; the probe burns its full timeout.
			failed = true
		case st.LossProb > 0 && rng.Float64() < st.LossProb:
			failed = true
		default:
			effLat := trueLat.Scale(st.LatFactor)
			effBW := trueBW.Scale(st.BWFactor)
			lat1 = elapsed(units.Bytes(1), effLat, effBW, noise, rng)
			latP = elapsed(o.ProbeBytes, effLat, effBW, noise, rng)
			if latP > o.ProbeTimeout {
				// Too degraded to finish in time — indistinguishable from
				// a dead link at the probe's vantage point.
				failed = true
			}
		}
		if !failed {
			return lat1, latP, true
		}
		if attempt >= o.MaxRetries {
			return 0, 0, false
		}
		wait := o.ProbeTimeout + faults.Backoff(attempt, faults.DefaultBackoffBase, faults.DefaultBackoffCap, nil)
		// Jitter the retry spacing (±25%) so repeated probes do not
		// synchronize with periodic fault windows.
		wait = wait.Scale(1 + 0.25*(2*rng.Float64()-1))
		res.Retries++
		res.RetrySeconds += wait
		t += wait
	}
}

// elapsed models one ping-pong sample: the α–β time with multiplicative
// noise, truncated so a measurement never goes nonpositive.
func elapsed(bytes units.Bytes, lat units.Seconds, bw units.BytesPerSec, noise float64, rng interface{ NormFloat64() float64 }) units.Seconds {
	t := netmodel.TransferTime(bytes, lat, bw)
	factor := 1 + noise*rng.NormFloat64()
	if factor < 0.1 {
		factor = 0.1
	}
	return t.Scale(factor)
}

// RelativeErrors compares the calibration against the cloud's ground truth
// and returns the mean relative error of the latency and bandwidth
// estimates.
func (r *Result) RelativeErrors(cloud *netmodel.Cloud) (latErr, bwErr float64) {
	m := cloud.M()
	var ls, bs float64
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			ls += math.Abs(r.LT.At(k, l)-cloud.LT.At(k, l)) / cloud.LT.At(k, l)
			bs += math.Abs(r.BT.At(k, l)-cloud.BT.At(k, l)) / cloud.BT.At(k, l)
		}
	}
	n := float64(m * m)
	return ls / n, bs / n
}

// AllPairsOverheadSeconds is the traditional approach's cost: probing every
// ordered node pair at pairProbeSeconds each (the paper's comparison:
// 4 sites × 128 nodes at one minute per pair takes over 180 days).
func AllPairsOverheadSeconds(totalNodes int, pairProbeSeconds units.Seconds) units.Seconds {
	if totalNodes < 2 {
		return 0
	}
	return pairProbeSeconds.Scale(float64(totalNodes) * float64(totalNodes-1))
}
