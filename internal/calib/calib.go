// Package calib reproduces the paper's network-calibration component
// (Section 4.2, "Network Calibration"), standing in for SKaMPI's
// Pingpong_Send_Recv benchmark.
//
// For every ordered site pair (k, l) the calibrator picks one instance in
// each site and measures message elapsed times against the cloud model with
// multiplicative measurement noise: the latency estimate LT(k, l) is the
// mean elapsed time of a one-byte message and the bandwidth estimate
// BT(k, l) is derived from the elapsed time of an 8 MB probe (the paper's
// choice — "when the message size is larger than 8 MB, the results are
// stable"). Sampling repeats over several days and is averaged, as the
// paper does; inter-site noise is small (<5%) while intra-site noise is
// relatively larger, matching the paper's observations.
//
// The package also reproduces the paper's overhead accounting: site-pair
// calibration needs M(M−1) probe sessions versus N(N−1) for the
// traditional all-node-pairs approach — 12 minutes versus over 180 days
// for 4 sites × 128 nodes at one minute per session.
package calib

import (
	"fmt"
	"math"

	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/stats"
)

// Options configures a calibration run. Zero values select the defaults
// noted on each field.
type Options struct {
	// Days of repeated measurement (default 3).
	Days int
	// SamplesPerDay per site pair (default 10).
	SamplesPerDay int
	// ProbeBytes is the bandwidth probe size (default 8 MB).
	ProbeBytes int64
	// PairProbeSeconds is the wall time one probe session occupies, used
	// only for overhead accounting (default 60 s, the paper's figure).
	PairProbeSeconds float64
	// InterNoise is the relative std-dev of inter-site measurements
	// (default 0.03, the paper reports <5% variation).
	InterNoise float64
	// IntraNoise is the relative std-dev of intra-site measurements
	// (default 0.10; the paper notes intra-site variation is larger).
	IntraNoise float64
	// Seed drives the measurement noise.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Days == 0 {
		o.Days = 3
	}
	if o.SamplesPerDay == 0 {
		o.SamplesPerDay = 10
	}
	if o.ProbeBytes == 0 {
		o.ProbeBytes = 8 << 20
	}
	if o.PairProbeSeconds == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.PairProbeSeconds = 60
	}
	if o.InterNoise == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.InterNoise = 0.03
	}
	if o.IntraNoise == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		o.IntraNoise = 0.10
	}
	return o
}

// Result holds the calibrated matrices and the overhead accounting.
type Result struct {
	// LT and BT are the estimated latency (s) and bandwidth (bytes/s)
	// matrices, in the cloud's site order.
	LT, BT *mat.Matrix
	// Variation(k, l) is the coefficient of variation (stddev/mean) of the
	// bandwidth-probe samples for the site pair — the stability statistic
	// the paper reports ("generally with small variation (smaller than
	// 5%)", intra-site relatively larger).
	Variation *mat.Matrix
	// SamplesPerPair is Days × SamplesPerDay.
	SamplesPerPair int
	// SitePairSessions is the number of ordered inter-site probe sessions
	// (M(M−1)); intra-site probes piggyback on the same sessions.
	SitePairSessions int
	// OverheadSeconds is SitePairSessions × PairProbeSeconds.
	OverheadSeconds float64
}

// Calibrate measures the cloud's LT/BT matrices through noisy ping-pong
// probes and returns averaged estimates.
func Calibrate(cloud *netmodel.Cloud, opt Options) (*Result, error) {
	if cloud == nil {
		return nil, fmt.Errorf("calib: nil cloud")
	}
	o := opt.withDefaults()
	if o.Days < 1 || o.SamplesPerDay < 1 {
		return nil, fmt.Errorf("calib: need at least one day and one sample per day")
	}
	if o.ProbeBytes < 2 {
		return nil, fmt.Errorf("calib: probe of %d bytes cannot separate latency from bandwidth", o.ProbeBytes)
	}
	m := cloud.M()
	rng := stats.NewRand(o.Seed)
	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	variation := mat.NewSquare(m)
	samples := o.Days * o.SamplesPerDay
	probes := make([]float64, samples)
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			noise := o.InterNoise
			if k == l {
				noise = o.IntraNoise
			}
			trueLat := cloud.LT.At(k, l)
			trueBW := cloud.BT.At(k, l)
			var latSum float64
			for s := 0; s < samples; s++ {
				latSum += elapsed(1, trueLat, trueBW, noise, rng)
				probes[s] = elapsed(float64(o.ProbeBytes), trueLat, trueBW, noise, rng)
			}
			latEst := latSum / float64(samples)
			probeMean := stats.Mean(probes)
			transfer := probeMean - latEst
			if transfer <= 0 {
				// Noise swallowed the transfer time; fall back to the raw
				// probe elapsed time (bandwidth slightly underestimated).
				transfer = probeMean
			}
			lt.Set(k, l, latEst)
			bt.Set(k, l, float64(o.ProbeBytes)/transfer)
			if probeMean > 0 {
				variation.Set(k, l, stats.StdDev(probes)/probeMean)
			}
		}
	}
	sessions := m * (m - 1)
	return &Result{
		LT:               lt,
		BT:               bt,
		Variation:        variation,
		SamplesPerPair:   samples,
		SitePairSessions: sessions,
		OverheadSeconds:  float64(sessions) * o.PairProbeSeconds,
	}, nil
}

// elapsed models one ping-pong sample: the α–β time with multiplicative
// noise, truncated so a measurement never goes nonpositive.
func elapsed(bytes, lat, bw, noise float64, rng interface{ NormFloat64() float64 }) float64 {
	t := netmodel.TransferTime(bytes, lat, bw)
	factor := 1 + noise*rng.NormFloat64()
	if factor < 0.1 {
		factor = 0.1
	}
	return t * factor
}

// RelativeErrors compares the calibration against the cloud's ground truth
// and returns the mean relative error of the latency and bandwidth
// estimates.
func (r *Result) RelativeErrors(cloud *netmodel.Cloud) (latErr, bwErr float64) {
	m := cloud.M()
	var ls, bs float64
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			ls += math.Abs(r.LT.At(k, l)-cloud.LT.At(k, l)) / cloud.LT.At(k, l)
			bs += math.Abs(r.BT.At(k, l)-cloud.BT.At(k, l)) / cloud.BT.At(k, l)
		}
	}
	n := float64(m * m)
	return ls / n, bs / n
}

// AllPairsOverheadSeconds is the traditional approach's cost: probing every
// ordered node pair at pairProbeSeconds each (the paper's comparison:
// 4 sites × 128 nodes at one minute per pair takes over 180 days).
func AllPairsOverheadSeconds(totalNodes int, pairProbeSeconds float64) float64 {
	if totalNodes < 2 {
		return 0
	}
	return float64(totalNodes) * float64(totalNodes-1) * pairProbeSeconds
}
