package baselines

import (
	"math"
	"testing"
	"testing/quick"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/core"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
)

// lineProblem builds n processes in heavy consecutive pairs over m sites on
// a line with distance-degraded links — a pattern with an obvious good
// mapping (colocate each pair).
func lineProblem(n, m int, seed int64) *core.Problem {
	rng := stats.NewRand(seed)
	g := comm.NewGraph(n)
	for i := 0; i+1 < n; i += 2 {
		vol := 1e6 * (1 + rng.Float64())
		g.AddTraffic(i, i+1, vol, 20)
		g.AddTraffic(i+1, i, vol/2, 10)
	}
	for i := 0; i+2 < n; i += 2 {
		g.AddTraffic(i, i+2, 1e3, 1)
	}
	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	pc := make([]geo.LatLon, m)
	for k := 0; k < m; k++ {
		pc[k] = geo.LatLon{Lat: 0, Lon: 40 * float64(k)}
		for l := 0; l < m; l++ {
			if k == l {
				lt.Set(k, l, 0.001)
				bt.Set(k, l, 100e6)
			} else {
				d := math.Abs(float64(k - l))
				lt.Set(k, l, 0.05*d)
				bt.Set(k, l, 15e6/d)
			}
		}
	}
	return &core.Problem{
		Comm:       g,
		LT:         lt,
		BT:         bt,
		PC:         pc,
		Capacity:   mat.NewIntVec(m, (n+m-1)/m),
		Constraint: mat.NewIntVec(n, core.Unconstrained),
	}
}

func mappers(seed int64) []core.Mapper {
	return []core.Mapper{
		&Random{Seed: seed},
		&Greedy{},
		&MPIPP{Seed: seed},
		&MonteCarlo{Seed: seed, Samples: 200},
	}
}

func TestAllMappersFeasible(t *testing.T) {
	p := lineProblem(16, 4, 1)
	p.Constraint[3] = 2
	p.Constraint[8] = 0
	for _, m := range mappers(5) {
		pl, err := m.Map(p)
		if err != nil {
			t.Errorf("%s: %v", m.Name(), err)
			continue
		}
		if err := p.CheckPlacement(pl); err != nil {
			t.Errorf("%s: infeasible: %v", m.Name(), err)
		}
		if pl[3] != 2 || pl[8] != 0 {
			t.Errorf("%s: constraints ignored: %v", m.Name(), pl)
		}
	}
}

func TestAllMappersRejectInvalidProblem(t *testing.T) {
	p := lineProblem(8, 2, 1)
	p.Capacity[0] = 0
	for _, m := range mappers(1) {
		if _, err := m.Map(p); err == nil {
			t.Errorf("%s accepted an invalid problem", m.Name())
		}
	}
}

func TestGreedyColocatesHeavyPairs(t *testing.T) {
	p := lineProblem(16, 4, 2)
	pl, err := (&Greedy{}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	colocated := 0
	for i := 0; i+1 < 16; i += 2 {
		if pl[i] == pl[i+1] {
			colocated++
		}
	}
	if colocated < 6 {
		t.Errorf("greedy colocated only %d/8 heavy pairs: %v", colocated, pl)
	}
}

func TestGreedyBeatsRandomOnLocality(t *testing.T) {
	p := lineProblem(24, 4, 3)
	gp, err := (&Greedy{}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(7)
	var rc []float64
	for i := 0; i < 50; i++ {
		rp, err := core.RandomPlacement(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		rc = append(rc, p.Cost(rp).Float())
	}
	if p.Cost(gp).Float() > stats.Mean(rc)*0.7 {
		t.Errorf("greedy cost %v not clearly below random mean %v", p.Cost(gp), stats.Mean(rc))
	}
}

func TestMPIPPImprovesOverRandom(t *testing.T) {
	p := lineProblem(20, 4, 4)
	mp, err := (&MPIPP{Seed: 9, Restarts: 2}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := (&Random{Seed: 9}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost(mp) > p.Cost(rp) {
		t.Errorf("MPIPP cost %v worse than its own random start %v", p.Cost(mp), p.Cost(rp))
	}
}

func TestMPIPPLocalOptimum(t *testing.T) {
	p := lineProblem(12, 3, 5)
	pl, err := (&MPIPP{Seed: 1, Restarts: 1, MaxPasses: 200}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	// No single pairwise exchange of unpinned processes may improve
	// MPIPP's partitioning objective (the weighted edge cut).
	cut := uniformCutProblem(p)
	base := cut.Cost(pl)
	for a := 0; a < p.N(); a++ {
		for b := a + 1; b < p.N(); b++ {
			if pl[a] == pl[b] {
				continue
			}
			swapped := pl.Clone()
			swapped[a], swapped[b] = swapped[b], swapped[a]
			if cut.Cost(swapped) < base-1e-9 {
				t.Fatalf("exchange (%d,%d) improves cut %v → %v; not a local optimum", a, b, base, cut.Cost(swapped))
			}
		}
	}
}

func TestMPIPPCutObjectiveIgnoresHeterogeneity(t *testing.T) {
	p := lineProblem(12, 3, 5)
	cut := uniformCutProblem(p)
	// The cut problem's cost is the cross-partition volume only.
	pl := mat.IntVec{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	var want float64
	for i := 0; i < p.N(); i++ {
		for _, e := range p.Comm.Outgoing(i) {
			if pl[i] != pl[e.Peer] {
				want += e.Volume
			}
		}
	}
	if got := cut.Cost(pl); math.Abs(got.Float()-want) > want*1e-9+1e-9 {
		t.Errorf("cut cost = %v, want cross volume %v", got, want)
	}
}

func TestSwapDeltaMatchesFullRecomputation(t *testing.T) {
	p := lineProblem(14, 4, 6)
	rng := stats.NewRand(3)
	pl, err := core.RandomPlacement(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < p.N(); a++ {
		for b := a + 1; b < p.N(); b++ {
			if pl[a] == pl[b] {
				continue
			}
			want := func() float64 {
				sw := pl.Clone()
				sw[a], sw[b] = sw[b], sw[a]
				return (p.Cost(sw) - p.Cost(pl)).Float()
			}()
			if got := swapDelta(p, pl, a, b); math.Abs(got.Float()-want) > 1e-9 {
				t.Fatalf("swapDelta(%d,%d) = %v, full recomputation %v", a, b, got, want)
			}
		}
	}
}

func TestMonteCarloSampleAndBestOfK(t *testing.T) {
	p := lineProblem(12, 3, 7)
	mc := &MonteCarlo{Seed: 4}
	costs, err := mc.Sample(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 100 {
		t.Fatalf("Sample returned %d costs", len(costs))
	}
	for _, c := range costs {
		if c <= 0 {
			t.Fatal("nonpositive sampled cost")
		}
	}
	curve, err := mc.BestOfK(p, []int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !(curve[0] >= curve[1] && curve[1] >= curve[2]) {
		t.Errorf("best-of-K curve not nonincreasing: %v", curve)
	}
	// The same seed draws the same stream, so best-of-100 equals min(Sample(100)).
	if math.Abs(curve[2]-stats.Min(costs)) > 1e-9 {
		t.Errorf("BestOfK(100) = %v, min(Sample(100)) = %v", curve[2], stats.Min(costs))
	}
}

func TestMonteCarloArgErrors(t *testing.T) {
	p := lineProblem(8, 2, 1)
	mc := &MonteCarlo{Seed: 1}
	if _, err := mc.Sample(p, 0); err == nil {
		t.Error("Sample(0) accepted")
	}
	if _, err := mc.BestOfK(p, nil); err == nil {
		t.Error("empty ks accepted")
	}
	if _, err := mc.BestOfK(p, []int{5, 3}); err == nil {
		t.Error("decreasing ks accepted")
	}
	if _, err := mc.BestOfK(p, []int{0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMapperNames(t *testing.T) {
	wants := map[string]core.Mapper{
		"Baseline":   &Random{},
		"Greedy":     &Greedy{},
		"MPIPP":      &MPIPP{},
		"MonteCarlo": &MonteCarlo{},
	}
	for want, m := range wants {
		if m.Name() != want {
			t.Errorf("Name = %q, want %q", m.Name(), want)
		}
	}
}

// Property: every baseline returns feasible placements on random problems
// with constraints.
func TestQuickBaselinesFeasible(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%16)*2 + 4
		m := int(mRaw%3) + 2
		p := lineProblem(n, m, seed)
		for i := 0; i < n/6; i++ {
			p.Constraint[(i*7)%n] = i % m
		}
		if p.Validate() != nil {
			return true
		}
		for _, mp := range []core.Mapper{&Random{Seed: seed}, &Greedy{}, &MPIPP{Seed: seed, Restarts: 1, MaxPasses: 5}, &MonteCarlo{Seed: seed, Samples: 10}} {
			pl, err := mp.Map(p)
			if err != nil {
				return false
			}
			if p.CheckPlacement(pl) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBaselinesHonorSiteSets(t *testing.T) {
	p := lineProblem(18, 3, 11)
	p.Allowed = make([][]int, 18)
	for i := 0; i < 6; i++ {
		p.Allowed[i] = []int{2}
	}
	for i := 6; i < 10; i++ {
		p.Allowed[i] = []int{0, 1}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range mappers(3) {
		pl, err := m.Map(p)
		if err != nil {
			t.Errorf("%s: %v", m.Name(), err)
			continue
		}
		if err := p.CheckPlacement(pl); err != nil {
			t.Errorf("%s violates site sets: %v", m.Name(), err)
		}
	}
}
