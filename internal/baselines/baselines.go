// Package baselines implements the comparison mapping algorithms of the
// paper's evaluation (Section 5.1):
//
//   - Random: the paper's "Baseline", a uniformly random feasible mapping.
//   - Greedy: the heuristic of Hoefler & Snir (ICS'11) for heterogeneous
//     network architectures — "the task with the largest data volume to
//     transfer is mapped to the machines with the highest total bandwidth
//     of all its associated links". It reasons about bandwidth only, which
//     is why the paper finds it strong on the near-diagonal NPB patterns
//     and weak on K-means/DNN.
//   - MPIPP: the iterative profile-guided placement of Chen et al.
//     (ICS'06), reproduced as random-restart pairwise-exchange descent on
//     the full cost function (O(N³)-flavored, the paper's overhead figure).
//   - MonteCarlo: best-of-K random sampling, used for the paper's solution
//     distribution study (Figures 9 and 10).
//
// All mappers honor the problem's data-movement constraints (pinned
// processes stay pinned) so their outputs remain feasible, but unlike the
// Geo-distributed algorithm they do not otherwise exploit them.
package baselines

import (
	"fmt"
	"math"

	"geoprocmap/internal/core"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// Random is the paper's Baseline mapper.
type Random struct {
	Seed int64
}

// Name implements core.Mapper.
func (r *Random) Name() string { return "Baseline" }

// Map implements core.Mapper.
//
//geolint:deterministic
func (r *Random) Map(p *core.Problem) (core.Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return core.RandomPlacement(p, stats.NewRand(r.Seed))
}

// Greedy is the Hoefler–Snir heuristic for heterogeneous architectures:
// processes are placed in order of their attachment to the already-placed
// set (heaviest total volume first), and each lands on the available
// machine "with the highest total bandwidth of all its associated links" —
// a static per-site score, blind to where the process's partners actually
// sit. The attachment ordering gives it good locality on near-diagonal
// patterns, while the static site choice is what the paper exploits: it
// cannot tell which site a communication cluster should occupy, so it
// falls behind on complex patterns and under data-movement constraints.
type Greedy struct{}

// Name implements core.Mapper.
func (g *Greedy) Name() string { return "Greedy" }

// Map implements core.Mapper.
//
//geolint:deterministic
func (g *Greedy) Map(p *core.Problem) (core.Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := p.N(), p.M()
	pl := mat.NewIntVec(n, core.Unconstrained)
	selected := make([]bool, n)
	avail := p.Capacity.Clone()
	remaining := n
	for i, c := range p.Constraint {
		if c != core.Unconstrained {
			pl[i] = c
			selected[i] = true
			avail[c]--
			remaining--
		}
	}

	// Static per-process volume (the quantity Hoefler–Snir order by) and
	// running attachment to the placed set.
	volume := make([]float64, n)
	for i := 0; i < n; i++ {
		var v float64
		p.Comm.Neighbors(i, func(_ int, vol, _ float64) { v += vol })
		volume[i] = v
	}
	attached := make([]float64, n)
	for i := 0; i < n; i++ {
		if !selected[i] {
			continue
		}
		p.Comm.Neighbors(i, func(j int, vol, _ float64) { attached[j] += vol })
	}
	// Static site score: total bandwidth of all the site's links.
	siteBW := make([]float64, m)
	for s := 0; s < m; s++ {
		siteBW[s] = p.BT.RowSum(s) + p.BT.ColSum(s)
	}

	for remaining > 0 {
		// Heaviest attachment to the placed set, total volume breaking
		// ties (and seeding the very first pick).
		best, bestKey := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			key := attached[i]*1e6 + volume[i]
			if key > bestKey {
				best, bestKey = i, key
			}
		}

		// Best remaining machine by static total bandwidth, among the
		// sites this process is admissible on.
		site, bestBW := -1, math.Inf(-1)
		for s := 0; s < m; s++ {
			if avail[s] > 0 && siteBW[s] > bestBW && p.AllowedOn(best, s) {
				site, bestBW = s, siteBW[s]
			}
		}
		if site == -1 {
			if p.HasSiteSets() {
				// Stranded by a multi-site restriction: leave unplaced and
				// repair after the greedy pass.
				selected[best] = true
				remaining--
				continue
			}
			return nil, fmt.Errorf("baselines: greedy ran out of capacity with %d processes left", remaining)
		}
		pl[best] = site
		selected[best] = true
		avail[site]--
		remaining--
		p.Comm.Neighbors(best, func(j int, vol, _ float64) { attached[j] += vol })
	}
	if p.HasSiteSets() {
		if err := core.RepairLeftovers(p, pl); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

// MPIPP reproduces Chen et al.'s iterative profile-guided placement: a
// modified heuristic k-way graph-partitioning algorithm that starts from
// random feasible placements and applies pairwise exchanges of unpinned
// processes until no exchange improves the partitioning objective, keeping
// the best restart.
//
// Faithfully to the original (which targets SMP clusters and
// multiclusters), the objective is the *generic* weighted edge cut — the
// communication volume crossing partition boundaries — not the
// geo-distributed α–β cost: MPIPP has no notion of which partition should
// land on which site, so partitions keep their index-order site
// assignment. This is exactly the weakness the paper identifies ("MPIPP
// does not consider the special communication pattern matrices" of the
// heterogeneous WAN), and why it achieves a uniform 10–30% improvement
// across workloads at much higher overhead.
type MPIPP struct {
	Seed int64
	// Restarts is the number of random restarts (default 2).
	Restarts int
	// MaxPasses bounds the number of full exchange sweeps per restart
	// (default 3, the bounded refinement schedule of the original tool;
	// raise it for a stronger — and slower — optimizer).
	MaxPasses int
}

// Name implements core.Mapper.
func (m *MPIPP) Name() string { return "MPIPP" }

// Map implements core.Mapper.
//
//geolint:deterministic
func (m *MPIPP) Map(p *core.Problem) (core.Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	restarts := m.Restarts
	if restarts <= 0 {
		restarts = 2
	}
	maxPasses := m.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 3
	}
	cut := uniformCutProblem(p)
	rng := stats.NewRand(m.Seed)
	var best core.Placement
	bestCost := units.Cost(math.Inf(1))
	for r := 0; r < restarts; r++ {
		pl, err := core.RandomPlacement(p, rng)
		if err != nil {
			return nil, err
		}
		cost := cut.Cost(pl)
		for pass := 0; pass < maxPasses; pass++ {
			improved := m.bestSwapPass(cut, pl, &cost)
			if !improved {
				break
			}
		}
		if cost < bestCost {
			bestCost = cost
			best = pl.Clone()
		}
	}
	return best, nil
}

// uniformCutProblem clones p with a homogeneous network — unit bandwidth
// between partitions, effectively infinite within — so that Cost equals
// the weighted edge cut Chen et al.'s partitioner minimizes.
func uniformCutProblem(p *core.Problem) *core.Problem {
	m := p.M()
	lt := mat.NewSquare(m) // zero latency everywhere
	bt := mat.NewSquare(m)
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if k == l {
				bt.Set(k, l, 1e18) // intra-partition traffic is free
			} else {
				bt.Set(k, l, 1)
			}
		}
	}
	return &core.Problem{
		Comm:       p.Comm,
		LT:         lt,
		BT:         bt,
		PC:         p.PC,
		Capacity:   p.Capacity,
		Constraint: p.Constraint,
		Allowed:    p.Allowed,
	}
}

// bestSwapPass performs one sweep of first-improvement pairwise exchanges
// over all unpinned process pairs in different sites. It updates pl and
// cost in place and reports whether any exchange was applied.
func (m *MPIPP) bestSwapPass(p *core.Problem, pl core.Placement, cost *units.Cost) bool {
	n := p.N()
	improved := false
	for a := 0; a < n; a++ {
		if p.Constraint[a] != core.Unconstrained {
			continue
		}
		for b := a + 1; b < n; b++ {
			if p.Constraint[b] != core.Unconstrained || pl[a] == pl[b] {
				continue
			}
			if !p.AllowedOn(a, pl[b]) || !p.AllowedOn(b, pl[a]) {
				continue
			}
			delta := swapDelta(p, pl, a, b)
			if delta < units.Cost(-1e-12) {
				pl[a], pl[b] = pl[b], pl[a]
				*cost += delta
				improved = true
			}
		}
	}
	return improved
}

// swapDelta returns the cost change of exchanging the sites of processes a
// and b. Only edges incident to a or b change cost, so the delta is
// computed locally in O(deg(a)+deg(b)).
func swapDelta(p *core.Problem, pl core.Placement, a, b int) units.Cost {
	sa, sb := pl[a], pl[b]
	var delta units.Cost
	site := func(j int) int {
		// Site of j after the hypothetical swap.
		switch j {
		case a:
			return sb
		case b:
			return sa
		default:
			return pl[j]
		}
	}
	edge := func(i, j int, vol, msgs float64) {
		oldSi, oldSj := pl[i], pl[j]
		newSi, newSj := site(i), site(j)
		delta -= (p.Latency(oldSi, oldSj).Scale(msgs) + units.Bytes(vol).Over(p.Bandwidth(oldSi, oldSj))).AsCost()
		delta += (p.Latency(newSi, newSj).Scale(msgs) + units.Bytes(vol).Over(p.Bandwidth(newSi, newSj))).AsCost()
	}
	for _, e := range p.Comm.Outgoing(a) {
		edge(a, e.Peer, e.Volume, e.Msgs)
	}
	for _, e := range p.Comm.Incoming(a) {
		edge(e.Peer, a, e.Volume, e.Msgs)
	}
	for _, e := range p.Comm.Outgoing(b) {
		if e.Peer == a {
			continue // already counted from a's side
		}
		edge(b, e.Peer, e.Volume, e.Msgs)
	}
	for _, e := range p.Comm.Incoming(b) {
		if e.Peer == a {
			continue
		}
		edge(e.Peer, b, e.Volume, e.Msgs)
	}
	return delta
}

// MonteCarlo samples K random feasible placements and keeps the best. Its
// Sample method exposes the full cost distribution for the paper's CDF
// study (Figure 9) and best-of-K curve (Figure 10).
type MonteCarlo struct {
	Seed    int64
	Samples int // number of random placements (default 1000)
}

// Name implements core.Mapper.
func (mc *MonteCarlo) Name() string { return "MonteCarlo" }

// Map implements core.Mapper.
//
//geolint:deterministic
func (mc *MonteCarlo) Map(p *core.Problem) (core.Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := mc.Samples
	if k <= 0 {
		k = 1000
	}
	rng := stats.NewRand(mc.Seed)
	var best core.Placement
	bestCost := units.Cost(math.Inf(1))
	for i := 0; i < k; i++ {
		pl, err := core.RandomPlacement(p, rng)
		if err != nil {
			return nil, err
		}
		if c := p.Cost(pl); c < bestCost {
			bestCost = c
			best = pl
		}
	}
	return best, nil
}

// Sample returns the costs of k random feasible placements.
func (mc *MonteCarlo) Sample(p *core.Problem, k int) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("baselines: sample count %d, want > 0", k)
	}
	rng := stats.NewRand(mc.Seed)
	costs := make([]float64, k)
	for i := 0; i < k; i++ {
		pl, err := core.RandomPlacement(p, rng)
		if err != nil {
			return nil, err
		}
		costs[i] = p.Cost(pl).Float()
	}
	return costs, nil
}

// BestOfK returns, for each k in ks (which must be positive and
// nondecreasing), the minimum cost among the first k of the sampler's
// random placements — the curve of the paper's Figure 10.
func (mc *MonteCarlo) BestOfK(p *core.Problem, ks []int) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("baselines: empty k list")
	}
	prev := 0
	for _, k := range ks {
		if k <= 0 || k < prev {
			return nil, fmt.Errorf("baselines: ks must be positive and nondecreasing, got %v", ks)
		}
		prev = k
	}
	rng := stats.NewRand(mc.Seed)
	out := make([]float64, len(ks))
	best := units.Cost(math.Inf(1))
	drawn := 0
	for idx, k := range ks {
		for drawn < k {
			pl, err := core.RandomPlacement(p, rng)
			if err != nil {
				return nil, err
			}
			if c := p.Cost(pl); c < best {
				best = c
			}
			drawn++
		}
		out[idx] = best.Float()
	}
	return out, nil
}
