// Package comm represents application communication patterns.
//
// The paper describes an application by two N×N matrices: CG, the volume of
// communication between every pair of processes, and AG, the number of
// messages exchanged (Table 4). The evaluation scales to 8192 processes
// where the patterns are sparse (NPB kernels talk to a handful of
// neighbors), so this package stores both matrices together as a directed
// weighted graph with adjacency lists, and converts to dense matrices on
// demand for small problems and for rendering Figure 3.
package comm

import (
	"fmt"
	"sort"

	"geoprocmap/internal/mat"
)

// Edge is directed traffic from one process to a peer.
type Edge struct {
	Peer   int     // destination (or source, for incoming edges) process
	Volume float64 // total bytes transferred (CG entry)
	Msgs   float64 // total number of messages (AG entry)
}

// Graph holds the combined CG/AG communication pattern of an N-process
// application. Traffic is directed; AddTraffic(i, j, …) and
// AddTraffic(j, i, …) accumulate separately, matching the paper's
// asymmetric matrices.
type Graph struct {
	n   int
	out []map[int]*Edge // out[i][j] = traffic i→j
	in  []map[int]*Edge // in[j][i] = traffic i→j (mirror for fast column access)

	totalVolume float64
	totalMsgs   float64

	// neighborCache holds, per process, the combined-direction neighbor
	// list in ascending peer order. Iterating Go maps is randomized, and
	// the mapping heuristics accumulate floating-point affinities over
	// neighbors — a nondeterministic order would make placements differ
	// run to run through last-ulp tie-breaks. The cache is rebuilt lazily
	// after mutations.
	//
	// outCache and inCache are the analogous per-direction views behind
	// Outgoing and Incoming. Before they existed every Cost evaluation
	// and every refinement exchange delta rebuilt and sorted fresh edge
	// slices from the adjacency maps — the dominant allocation source of
	// the κ! order search, which evaluates Cost once per order.
	neighborCache [][]Edge
	cacheVersion  int
	outCache      [][]Edge
	outVersion    int
	inCache       [][]Edge
	inVersion     int
	mutVersion    int
}

// NewGraph returns an empty pattern over n processes.
// It panics if n is negative.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("comm: negative process count %d", n)) //geolint:ignore libpanic negative count is a programmer error, like make() with negative len
	}
	g := &Graph{
		n:   n,
		out: make([]map[int]*Edge, n),
		in:  make([]map[int]*Edge, n),
	}
	for i := 0; i < n; i++ {
		g.out[i] = make(map[int]*Edge)
		g.in[i] = make(map[int]*Edge)
	}
	return g
}

// N returns the number of processes.
func (g *Graph) N() int { return g.n }

// AddTraffic accumulates volume bytes over msgs messages sent from src to
// dst. Self-traffic (src == dst) is ignored, as in the paper's model where
// the diagonal carries no cost. Negative volume or msgs panic.
func (g *Graph) AddTraffic(src, dst int, volume, msgs float64) {
	g.checkProc(src)
	g.checkProc(dst)
	if volume < 0 || msgs < 0 {
		panic(fmt.Sprintf("comm: negative traffic (%g bytes, %g msgs)", volume, msgs)) //geolint:ignore libpanic trace.Recorder validates sizes; negative traffic is a profiler bug
	}
	if src == dst || (volume == 0 && msgs == 0) {
		return
	}
	e := g.out[src][dst]
	if e == nil {
		e = &Edge{Peer: dst}
		g.out[src][dst] = e
		g.in[dst][src] = &Edge{Peer: src}
	}
	e.Volume += volume
	e.Msgs += msgs
	me := g.in[dst][src]
	me.Volume += volume
	me.Msgs += msgs
	g.totalVolume += volume
	g.totalMsgs += msgs
	g.mutVersion++
}

func (g *Graph) checkProc(i int) {
	if i < 0 || i >= g.n {
		//geolint:allocsite panic path: the message formats only on an out-of-range programmer error
		panic(fmt.Sprintf("comm: process %d out of range [0,%d)", i, g.n)) //geolint:ignore libpanic process bounds mirror slice indexing on the profiling hot path
	}
}

// Volume returns CG(i, j): the bytes sent from i to j.
func (g *Graph) Volume(i, j int) float64 {
	g.checkProc(i)
	g.checkProc(j)
	if e := g.out[i][j]; e != nil {
		return e.Volume
	}
	return 0
}

// Msgs returns AG(i, j): the number of messages sent from i to j.
func (g *Graph) Msgs(i, j int) float64 {
	g.checkProc(i)
	g.checkProc(j)
	if e := g.out[i][j]; e != nil {
		return e.Msgs
	}
	return 0
}

// Outgoing returns the outgoing edges of process i sorted by peer. The
// slice is owned by the graph's adjacency cache: callers must not modify
// it, and it stays valid only until the next AddTraffic.
//
//geolint:allocfree
func (g *Graph) Outgoing(i int) []Edge {
	g.checkProc(i)
	if g.outCache == nil || g.outVersion != g.mutVersion || g.outCache[i] == nil {
		g.buildOutgoing(i)
	}
	return g.outCache[i]
}

// Incoming returns the incoming edges of process i sorted by peer. Each
// edge's Peer field is the *sender*. The slice is owned by the graph's
// adjacency cache: callers must not modify it, and it stays valid only
// until the next AddTraffic.
//
//geolint:allocfree
func (g *Graph) Incoming(i int) []Edge {
	g.checkProc(i)
	if g.inCache == nil || g.inVersion != g.mutVersion || g.inCache[i] == nil {
		g.buildIncoming(i)
	}
	return g.inCache[i]
}

// buildOutgoing (re)builds the outgoing-adjacency cache entry of process
// i after a mutation invalidated it.
//
//geolint:allocsite cold path: cache rebuild after mutation, amortized over the hot-loop reads
func (g *Graph) buildOutgoing(i int) {
	if g.outCache == nil || g.outVersion != g.mutVersion {
		g.outCache = make([][]Edge, g.n)
		g.outVersion = g.mutVersion
	}
	g.outCache[i] = sortEdges(g.out[i]) // non-nil even when empty: marks the entry as built
}

// buildIncoming (re)builds the incoming-adjacency cache entry of process
// i after a mutation invalidated it.
//
//geolint:allocsite cold path: cache rebuild after mutation, amortized over the hot-loop reads
func (g *Graph) buildIncoming(i int) {
	if g.inCache == nil || g.inVersion != g.mutVersion {
		g.inCache = make([][]Edge, g.n)
		g.inVersion = g.mutVersion
	}
	g.inCache[i] = sortEdges(g.in[i]) // non-nil even when empty: marks the entry as built
}

func sortEdges(m map[int]*Edge) []Edge {
	out := make([]Edge, 0, len(m))
	for _, e := range m {
		out = append(out, *e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Peer < out[b].Peer })
	return out
}

// Neighbors calls fn for every process j that exchanges traffic with i in
// either direction, with the combined volume CG(i,j)+CG(j,i) and message
// count AG(i,j)+AG(j,i), in ascending peer order (deterministic).
//
//geolint:allocfree
func (g *Graph) Neighbors(i int, fn func(j int, volume, msgs float64)) {
	g.checkProc(i)
	for _, e := range g.neighbors(i) {
		fn(e.Peer, e.Volume, e.Msgs)
	}
}

// neighbors returns i's cached combined-direction adjacency, rebuilding
// the cache if the graph changed since the last build.
func (g *Graph) neighbors(i int) []Edge {
	if g.neighborCache == nil || g.cacheVersion != g.mutVersion || g.neighborCache[i] == nil {
		g.buildNeighbors(i)
	}
	return g.neighborCache[i]
}

// buildNeighbors (re)builds the combined-direction adjacency cache entry
// of process i after a mutation invalidated it.
//
//geolint:allocsite cold path: cache rebuild after mutation, amortized over the hot-loop reads
func (g *Graph) buildNeighbors(i int) {
	if g.neighborCache == nil || g.cacheVersion != g.mutVersion {
		g.neighborCache = make([][]Edge, g.n)
		g.cacheVersion = g.mutVersion
	}
	combined := make(map[int]*Edge, len(g.out[i])+len(g.in[i]))
	for j, e := range g.out[i] {
		combined[j] = &Edge{Peer: j, Volume: e.Volume, Msgs: e.Msgs}
	}
	for j, e := range g.in[i] {
		if c := combined[j]; c != nil {
			c.Volume += e.Volume
			c.Msgs += e.Msgs
			continue
		}
		combined[j] = &Edge{Peer: j, Volume: e.Volume, Msgs: e.Msgs}
	}
	list := make([]Edge, 0, len(combined))
	for _, e := range combined {
		list = append(list, *e)
	}
	sort.Slice(list, func(a, b int) bool { return list[a].Peer < list[b].Peer })
	if len(list) == 0 {
		list = []Edge{} // non-nil marks the entry as built
	}
	g.neighborCache[i] = list
}

// Prewarm builds every adjacency cache (combined-direction, outgoing,
// incoming) for every process so that subsequent Neighbors, Quantity,
// Outgoing, and Incoming calls are read-only. The lazy rebuilds are not
// synchronized; callers that share a graph across goroutines (the
// parallel κ! order search, the serving path's memoized workload graphs)
// must prewarm it first and refrain from AddTraffic while readers are
// live.
func (g *Graph) Prewarm() {
	for i := 0; i < g.n; i++ {
		g.neighbors(i)
		g.Outgoing(i)
		g.Incoming(i)
	}
}

// Quantity returns the total communication quantity of process i — the sum
// of bytes it sends and receives. Algorithm 1 selects the "process with the
// heaviest communication quantity" by this measure.
//
//geolint:allocfree
func (g *Graph) Quantity(i int) float64 {
	g.checkProc(i)
	var q float64
	for _, e := range g.neighbors(i) { // deterministic accumulation order
		q += e.Volume
	}
	return q
}

// TotalVolume returns the sum of CG.
func (g *Graph) TotalVolume() float64 { return g.totalVolume }

// TotalMsgs returns the sum of AG.
func (g *Graph) TotalMsgs() float64 { return g.totalMsgs }

// EdgeCount returns the number of directed (i, j) pairs with traffic.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, m := range g.out {
		n += len(m)
	}
	return n
}

// MaxDegree returns the largest number of distinct peers (union of in and
// out) over all processes.
func (g *Graph) MaxDegree() int {
	max := 0
	for i := 0; i < g.n; i++ {
		seen := make(map[int]struct{}, len(g.out[i])+len(g.in[i]))
		for j := range g.out[i] {
			seen[j] = struct{}{}
		}
		for j := range g.in[i] {
			seen[j] = struct{}{}
		}
		if len(seen) > max {
			max = len(seen)
		}
	}
	return max
}

// DenseCG materializes the N×N communication-volume matrix.
func (g *Graph) DenseCG() *mat.Matrix {
	m := mat.NewSquare(g.n)
	for i, edges := range g.out {
		for j, e := range edges {
			m.Set(i, j, e.Volume)
		}
	}
	return m
}

// DenseAG materializes the N×N message-count matrix.
func (g *Graph) DenseAG() *mat.Matrix {
	m := mat.NewSquare(g.n)
	for i, edges := range g.out {
		for j, e := range edges {
			m.Set(i, j, e.Msgs)
		}
	}
	return m
}

// FromDense builds a Graph from dense CG and AG matrices, which must be
// square and of equal size.
func FromDense(cg, ag *mat.Matrix) (*Graph, error) {
	if !cg.IsSquare() || !ag.IsSquare() || cg.Rows() != ag.Rows() {
		return nil, fmt.Errorf("comm: CG (%d×%d) and AG (%d×%d) must be square and equal-sized",
			cg.Rows(), cg.Cols(), ag.Rows(), ag.Cols())
	}
	g := NewGraph(cg.Rows())
	for i := 0; i < cg.Rows(); i++ {
		for j := 0; j < cg.Cols(); j++ {
			if i == j {
				continue
			}
			v, m := cg.At(i, j), ag.At(i, j)
			if v < 0 || m < 0 {
				return nil, fmt.Errorf("comm: negative traffic at (%d,%d)", i, j)
			}
			if v > 0 || m > 0 {
				g.AddTraffic(i, j, v, m)
			}
		}
	}
	return g, nil
}
