package comm

import (
	"math"
	"testing"
	"testing/quick"

	"geoprocmap/internal/mat"
)

func TestAddTrafficAccumulates(t *testing.T) {
	g := NewGraph(3)
	g.AddTraffic(0, 1, 100, 2)
	g.AddTraffic(0, 1, 50, 1)
	if got := g.Volume(0, 1); got != 150 {
		t.Errorf("Volume(0,1) = %v, want 150", got)
	}
	if got := g.Msgs(0, 1); got != 3 {
		t.Errorf("Msgs(0,1) = %v, want 3", got)
	}
	if got := g.Volume(1, 0); got != 0 {
		t.Errorf("reverse Volume = %v, want 0 (traffic is directed)", got)
	}
}

func TestSelfTrafficIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddTraffic(1, 1, 100, 5)
	if g.TotalVolume() != 0 || g.EdgeCount() != 0 {
		t.Error("self traffic should be ignored")
	}
}

func TestZeroTrafficNoEdge(t *testing.T) {
	g := NewGraph(2)
	g.AddTraffic(0, 1, 0, 0)
	if g.EdgeCount() != 0 {
		t.Error("zero traffic created an edge")
	}
}

func TestPanics(t *testing.T) {
	g := NewGraph(2)
	cases := []func(){
		func() { g.AddTraffic(-1, 0, 1, 1) },
		func() { g.AddTraffic(0, 2, 1, 1) },
		func() { g.AddTraffic(0, 1, -1, 1) },
		func() { g.AddTraffic(0, 1, 1, -1) },
		func() { g.Volume(0, 5) },
		func() { NewGraph(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestOutgoingIncoming(t *testing.T) {
	g := NewGraph(4)
	g.AddTraffic(0, 2, 10, 1)
	g.AddTraffic(0, 1, 20, 2)
	g.AddTraffic(3, 0, 5, 1)
	out := g.Outgoing(0)
	if len(out) != 2 || out[0].Peer != 1 || out[1].Peer != 2 {
		t.Errorf("Outgoing(0) = %v, want peers [1 2]", out)
	}
	in := g.Incoming(0)
	if len(in) != 1 || in[0].Peer != 3 || in[0].Volume != 5 {
		t.Errorf("Incoming(0) = %v, want [{3 5 1}]", in)
	}
}

func TestNeighborsCombinesDirections(t *testing.T) {
	g := NewGraph(3)
	g.AddTraffic(0, 1, 10, 1)
	g.AddTraffic(1, 0, 30, 2)
	g.AddTraffic(2, 0, 7, 1)
	got := map[int][2]float64{}
	g.Neighbors(0, func(j int, vol, msgs float64) {
		if _, dup := got[j]; dup {
			t.Fatalf("neighbor %d reported twice", j)
		}
		got[j] = [2]float64{vol, msgs}
	})
	if got[1] != [2]float64{40, 3} {
		t.Errorf("neighbor 1 = %v, want {40 3}", got[1])
	}
	if got[2] != [2]float64{7, 1} {
		t.Errorf("neighbor 2 = %v, want {7 1}", got[2])
	}
}

func TestQuantity(t *testing.T) {
	g := NewGraph(3)
	g.AddTraffic(0, 1, 10, 1)
	g.AddTraffic(2, 0, 5, 1)
	if got := g.Quantity(0); got != 15 {
		t.Errorf("Quantity(0) = %v, want 15", got)
	}
	if got := g.Quantity(1); got != 10 {
		t.Errorf("Quantity(1) = %v, want 10", got)
	}
}

func TestTotalsAndDegree(t *testing.T) {
	g := NewGraph(4)
	g.AddTraffic(0, 1, 10, 1)
	g.AddTraffic(0, 2, 10, 2)
	g.AddTraffic(3, 0, 10, 3)
	if g.TotalVolume() != 30 || g.TotalMsgs() != 6 {
		t.Errorf("totals = %v/%v, want 30/6", g.TotalVolume(), g.TotalMsgs())
	}
	if g.EdgeCount() != 3 {
		t.Errorf("EdgeCount = %d, want 3", g.EdgeCount())
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3 (process 0)", g.MaxDegree())
	}
}

func TestDenseRoundTrip(t *testing.T) {
	g := NewGraph(3)
	g.AddTraffic(0, 1, 100, 2)
	g.AddTraffic(1, 2, 50, 1)
	g.AddTraffic(2, 0, 25, 4)
	cg, ag := g.DenseCG(), g.DenseAG()
	if cg.At(0, 1) != 100 || ag.At(2, 0) != 4 {
		t.Error("dense matrices wrong")
	}
	back, err := FromDense(cg, ag)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalVolume() != g.TotalVolume() || back.TotalMsgs() != g.TotalMsgs() {
		t.Error("FromDense lost traffic")
	}
	if back.Volume(1, 2) != 50 || back.Msgs(2, 0) != 4 {
		t.Error("FromDense entries wrong")
	}
}

func TestFromDenseErrors(t *testing.T) {
	if _, err := FromDense(mat.New(2, 3), mat.NewSquare(2)); err == nil {
		t.Error("non-square CG accepted")
	}
	if _, err := FromDense(mat.NewSquare(2), mat.NewSquare(3)); err == nil {
		t.Error("size mismatch accepted")
	}
	neg := mat.NewSquare(2)
	neg.Set(0, 1, -5)
	if _, err := FromDense(neg, mat.NewSquare(2)); err == nil {
		t.Error("negative entry accepted")
	}
}

// Property: TotalVolume equals the sum of the dense CG, and Quantity(i)
// equals row-plus-column sums, for random sparse graphs.
func TestQuickDenseConsistency(t *testing.T) {
	f := func(seedEdges []uint32) bool {
		const n = 9
		g := NewGraph(n)
		for _, raw := range seedEdges {
			src := int(raw % n)
			dst := int((raw / n) % n)
			vol := float64(raw%1000) + 1
			g.AddTraffic(src, dst, vol, 1)
		}
		cg := g.DenseCG()
		if math.Abs(cg.Sum()-g.TotalVolume()) > 1e-6 {
			return false
		}
		for i := 0; i < n; i++ {
			want := cg.RowSum(i) + cg.ColSum(i)
			if math.Abs(g.Quantity(i)-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Neighbors reports each pair exactly once with direction-summed
// traffic matching the dense matrices.
func TestQuickNeighbors(t *testing.T) {
	f := func(seedEdges []uint32) bool {
		const n = 7
		g := NewGraph(n)
		for _, raw := range seedEdges {
			g.AddTraffic(int(raw%n), int((raw/n)%n), float64(raw%97)+1, float64(raw%5)+1)
		}
		cg, ag := g.DenseCG(), g.DenseAG()
		for i := 0; i < n; i++ {
			seen := map[int]bool{}
			ok := true
			g.Neighbors(i, func(j int, vol, msgs float64) {
				if seen[j] || j == i {
					ok = false
					return
				}
				seen[j] = true
				if math.Abs(vol-(cg.At(i, j)+cg.At(j, i))) > 1e-9 {
					ok = false
				}
				if math.Abs(msgs-(ag.At(i, j)+ag.At(j, i))) > 1e-9 {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighborsDeterministicOrder(t *testing.T) {
	g := NewGraph(10)
	// Insert edges in scrambled order.
	for _, e := range [][2]int{{0, 7}, {3, 0}, {0, 1}, {9, 0}, {0, 4}} {
		g.AddTraffic(e[0], e[1], 100, 1)
	}
	var order []int
	g.Neighbors(0, func(j int, _, _ float64) { order = append(order, j) })
	want := []int{1, 3, 4, 7, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want ascending %v", order, want)
		}
	}
	// Mutation invalidates the cache.
	g.AddTraffic(2, 0, 50, 1)
	order = order[:0]
	g.Neighbors(0, func(j int, _, _ float64) { order = append(order, j) })
	if len(order) != 6 || order[1] != 2 {
		t.Fatalf("after mutation order = %v, want peer 2 included in place", order)
	}
}
