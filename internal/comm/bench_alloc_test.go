package comm

import "testing"

// The BenchmarkAlloc* family gates the allocation discipline of the
// //geolint:allocfree adjacency views: once Prewarm has built the caches,
// reads must measure 0 allocs/op. scripts/bench_alloc.sh runs them with
// -benchmem and fails on any nonzero allocs/op.

var (
	benchEdges []Edge
	benchQty   float64
)

func benchGraph() *Graph {
	g := NewGraph(64)
	for i := 0; i < 64; i++ {
		for d := 1; d <= 4; d++ {
			g.AddTraffic(i, (i+d)%64, float64(1000*d), float64(d))
		}
	}
	g.Prewarm()
	return g
}

func BenchmarkAllocOutgoing(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEdges = g.Outgoing(i % 64)
	}
}

func BenchmarkAllocIncoming(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEdges = g.Incoming(i % 64)
	}
}

func BenchmarkAllocNeighbors(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchQty = 0
		g.Neighbors(i%64, func(_ int, vol, _ float64) { benchQty += vol })
	}
}

func BenchmarkAllocQuantity(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchQty = g.Quantity(i % 64)
	}
}
