package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func withRead(t *testing.T, fn func() (*debug.BuildInfo, bool)) {
	t.Helper()
	old := read
	read = fn
	t.Cleanup(func() { read = old })
}

func TestVersionFromTestBinary(t *testing.T) {
	// The real test binary always carries build info.
	v := Version("geomapd")
	if !strings.HasPrefix(v, "geomapd ") {
		t.Errorf("version %q does not lead with the command name", v)
	}
	if strings.Contains(v, "unavailable") {
		t.Errorf("test binary reported no build info: %q", v)
	}
}

func TestVersionDegradesWithoutBuildInfo(t *testing.T) {
	withRead(t, func() (*debug.BuildInfo, bool) { return nil, false })
	if got := Version("geoload"); got != "geoload (build info unavailable)" {
		t.Errorf("got %q", got)
	}
}

func TestVersionIncludesTruncatedRevision(t *testing.T) {
	withRead(t, func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			GoVersion: "go1.22.1",
			Main:      debug.Module{Path: "geoprocmap", Version: "v1.2.3"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	})
	got := Version("geomap")
	want := "geomap geoprocmap v1.2.3 go1.22.1 vcs 0123456789ab (modified)"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}
