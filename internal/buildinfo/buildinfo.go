// Package buildinfo derives a version string for the repo's CLIs from
// the build metadata the Go toolchain embeds in every binary, so all
// eight commands report a consistent -version without any linker-flag
// plumbing in the Makefile.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// read is swapped in tests; production always uses debug.ReadBuildInfo.
var read = debug.ReadBuildInfo

// Version returns a human-readable version line for the named command,
// e.g. "geomapd geoprocmap (devel) go1.22.1 vcs 117e0bf (modified)".
// Fields that the toolchain did not record are omitted; a binary built
// outside module mode degrades to "geomapd (build info unavailable)".
func Version(command string) string {
	bi, ok := read()
	if !ok {
		return fmt.Sprintf("%s (build info unavailable)", command)
	}
	s := command
	if bi.Main.Path != "" {
		s += " " + bi.Main.Path
	}
	version := bi.Main.Version
	if version == "" {
		version = "(devel)"
	}
	s += " " + version
	if bi.GoVersion != "" {
		s += " " + bi.GoVersion
	}
	var revision, modified string
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			revision = kv.Value
		case "vcs.modified":
			modified = kv.Value
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		s += " vcs " + revision
		if modified == "true" {
			s += " (modified)"
		}
	}
	return s
}
