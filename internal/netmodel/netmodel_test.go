package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/geo"
)

func paperCloud(t *testing.T) *Cloud {
	t.Helper()
	c, err := PaperCloud(1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperCloudShape(t *testing.T) {
	c := paperCloud(t)
	if c.M() != 4 {
		t.Errorf("M = %d, want 4", c.M())
	}
	if c.TotalNodes() != 64 {
		t.Errorf("TotalNodes = %d, want 64", c.TotalNodes())
	}
	cap := c.Capacity()
	for i, n := range cap {
		if n != 16 {
			t.Errorf("site %d capacity = %d, want 16", i, n)
		}
	}
	if len(c.Coordinates()) != 4 {
		t.Error("Coordinates length mismatch")
	}
}

// Observation 1: intra-region bandwidth is much higher than cross-region.
func TestObservation1IntraVsCross(t *testing.T) {
	c := paperCloud(t)
	for k := 0; k < c.M(); k++ {
		intra := c.BT.At(k, k)
		for l := 0; l < c.M(); l++ {
			if k == l {
				continue
			}
			cross := c.BT.At(k, l)
			if intra < 4*cross {
				t.Errorf("intra bw %e at site %d not ≫ cross bw %e to %d", intra, k, cross, l)
			}
		}
	}
}

// Observation 2: farther region pairs get lower bandwidth and higher latency.
func TestObservation2DistanceCorrelation(t *testing.T) {
	c := paperCloud(t)
	// Site order: us-east-1(0), us-west-1(1), ap-southeast-1(2), eu-west-1(3).
	bwWest := c.BT.At(0, 1)
	bwIreland := c.BT.At(0, 3)
	bwSingapore := c.BT.At(0, 2)
	if !(bwWest > bwIreland && bwIreland > bwSingapore) {
		t.Errorf("bandwidth ordering violated: west=%e ireland=%e singapore=%e", bwWest, bwIreland, bwSingapore)
	}
	// Paper Table 2: US West ≈ 3× Singapore bandwidth.
	if ratio := bwWest / bwSingapore; ratio < 2 || ratio > 5 {
		t.Errorf("west/singapore bandwidth ratio = %.2f, want ≈3", ratio)
	}
	latWest := c.LT.At(0, 1)
	latSingapore := c.LT.At(0, 2)
	if latWest >= latSingapore {
		t.Errorf("latency ordering violated: west=%v singapore=%v", latWest, latSingapore)
	}
}

// Table 2 absolute values: 21/19/6.6 MB/s and 0.16/0.17/0.35 s for
// c3.8xlarge US East ↔ {US West, Ireland, Singapore}.
func TestTable2Calibration(t *testing.T) {
	c, err := EvenCloud(AmazonEC2, "c3.8xlarge", PaperEC2Regions, 1, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want, tolFrac float64) {
		if math.Abs(got-want) > want*tolFrac {
			t.Errorf("%s = %.3g, want %.3g ±%.0f%%", name, got, want, tolFrac*100)
		}
	}
	check("bw east↔west (MB/s)", c.BT.At(0, 1)/MB, 21, 0.35)
	check("bw east↔ireland (MB/s)", c.BT.At(0, 3)/MB, 19, 0.35)
	check("bw east↔singapore (MB/s)", c.BT.At(0, 2)/MB, 6.6, 0.35)
	check("lat east↔west (s)", c.LT.At(0, 1), 0.16, 0.25)
	check("lat east↔ireland (s)", c.LT.At(0, 3), 0.17, 0.25)
	check("lat east↔singapore (s)", c.LT.At(0, 2), 0.35, 0.25)
	check("intra bw (MB/s)", c.BT.At(0, 0)/MB, 176, 0.2)
}

// Table 3: Azure Standard D2 values.
func TestTable3AzureCalibration(t *testing.T) {
	c, err := EvenCloud(WindowsAzure, "Standard_D2", []string{"east-us", "west-europe", "japan-east"}, 1, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.BT.At(0, 0) / MB; math.Abs(got-62) > 62*0.2 {
		t.Errorf("intra bw = %.1f MB/s, want ≈62", got)
	}
	bwEU := c.BT.At(0, 1) / MB
	bwJP := c.BT.At(0, 2) / MB
	if math.Abs(bwEU-2.9) > 2.9*0.4 {
		t.Errorf("east-us↔west-europe bw = %.2f MB/s, want ≈2.9", bwEU)
	}
	if math.Abs(bwJP-1.3) > 1.3*0.45 {
		t.Errorf("east-us↔japan-east bw = %.2f MB/s, want ≈1.3", bwJP)
	}
	if got := c.LT.At(0, 1); math.Abs(got-0.042) > 0.021 {
		t.Errorf("east-us↔west-europe lat = %.4f s, want ≈0.042", got)
	}
}

func TestAsymmetryAndDeterminism(t *testing.T) {
	a := paperCloud(t)
	// Matrices are asymmetric (jitter per direction) but close.
	if a.BT.At(0, 1) == a.BT.At(1, 0) {
		t.Error("BT perfectly symmetric; expected per-direction jitter")
	}
	if r := a.BT.At(0, 1) / a.BT.At(1, 0); r < 0.9 || r > 1.1 {
		t.Errorf("direction asymmetry too large: ratio %v", r)
	}
	// Same seed reproduces the same cloud.
	b := paperCloud(t)
	if !a.BT.Equal(b.BT, 0) || !a.LT.Equal(b.LT, 0) {
		t.Error("same seed produced different clouds")
	}
	c, err := PaperCloud(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.BT.Equal(c.BT, 0) {
		t.Error("different seeds produced identical clouds")
	}
}

func TestSiteOfNode(t *testing.T) {
	c, err := NewCloud(AmazonEC2, "m4.xlarge", []Site{
		{Region: geo.MustRegion(geo.EC2Regions, "us-east-1"), Nodes: 2},
		{Region: geo.MustRegion(geo.EC2Regions, "eu-west-1"), Nodes: 3},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wants := []int{0, 0, 1, 1, 1}
	for node, want := range wants {
		if got := c.SiteOfNode(node); got != want {
			t.Errorf("SiteOfNode(%d) = %d, want %d", node, got, want)
		}
	}
	for _, bad := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SiteOfNode(%d) did not panic", bad)
				}
			}()
			c.SiteOfNode(bad)
		}()
	}
}

func TestNewCloudErrors(t *testing.T) {
	if _, err := NewCloud(AmazonEC2, "m4.xlarge", nil, Options{}); err == nil {
		t.Error("empty site list accepted")
	}
	if _, err := NewCloud(AmazonEC2, "nope", []Site{{Region: geo.EC2Regions[0], Nodes: 1}}, Options{}); err == nil {
		t.Error("unknown instance type accepted")
	}
	if _, err := NewCloud(AmazonEC2, "m4.xlarge", []Site{{Region: geo.EC2Regions[0], Nodes: 0}}, Options{}); err == nil {
		t.Error("zero-node site accepted")
	}
	if _, err := EvenCloud(AmazonEC2, "m4.xlarge", []string{"mars-1"}, 1, Options{}); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1e6, 0.1, 1e6); got != 1.1 {
		t.Errorf("TransferTime = %v, want 1.1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	TransferTime(1, 0, 0)
}

func TestPairCost(t *testing.T) {
	c := paperCloud(t)
	msgs, vol := 10.0, 8e6
	want := msgs*c.LT.At(0, 2) + vol/c.BT.At(0, 2)
	if got := c.PairCost(msgs, Bytes(vol), 0, 2); math.Abs(got.Float()-want) > 1e-12 {
		t.Errorf("PairCost = %v, want %v", got, want)
	}
	// The typed path must be bit-identical to the raw float64 formula.
	if got := c.PairCost(msgs, Bytes(vol), 0, 2); math.Float64bits(got.Float()) != math.Float64bits(want) {
		t.Errorf("PairCost not bit-identical to raw formula: %x vs %x", got, want)
	}
}

// Property: the provider bandwidth model is monotone nonincreasing in
// distance and respects its caps.
func TestQuickCrossBandwidthMonotone(t *testing.T) {
	f := func(d1Raw, d2Raw uint16) bool {
		d1 := float64(d1Raw)
		d2 := float64(d2Raw)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		b1 := AmazonEC2.CrossBandwidthMBps(d1)
		b2 := AmazonEC2.CrossBandwidthMBps(d2)
		if b1 < b2 {
			return false
		}
		return b1 <= AmazonEC2.CrossBWMaxMBps && b2 >= AmazonEC2.CrossBWMinMBps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: all generated matrix entries are strictly positive for random
// subsets of EC2 regions.
func TestQuickCloudPositivity(t *testing.T) {
	f := func(seed int64, mask uint16) bool {
		var names []string
		for i, r := range geo.EC2Regions {
			if mask&(1<<uint(i)) != 0 {
				names = append(names, r.Name)
			}
		}
		if len(names) == 0 {
			names = []string{"us-east-1"}
		}
		c, err := EvenCloud(AmazonEC2, "m1.large", names, 2, Options{Seed: seed})
		if err != nil {
			return false
		}
		for k := 0; k < c.M(); k++ {
			for l := 0; l < c.M(); l++ {
				if c.LT.At(k, l) <= 0 || c.BT.At(k, l) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFaultView(t *testing.T) {
	c := paperCloud(t)
	sched := &faults.Schedule{Name: "view", Events: []faults.Event{
		{Kind: faults.SiteOutage, Start: 0, Site: 1},
		{Kind: faults.BandwidthDegrade, Start: 0, Src: 0, Dst: 2, Factor: 0.5},
		{Kind: faults.LatencySpike, Start: 0, Src: 0, Dst: 2, Factor: 2},
	}}
	v := c.FaultView(sched, 1)
	for k := 0; k < c.M(); k++ {
		for l := 0; l < c.M(); l++ {
			lt, bt := v.LT.At(k, l), v.BT.At(k, l)
			if bt <= 0 {
				t.Fatalf("BT(%d,%d) = %v, must stay positive", k, l, bt)
			}
			switch {
			case k == 1 || l == 1:
				if lt != c.LT.At(k, l)*DeadLinkPenalty || bt != c.BT.At(k, l)/DeadLinkPenalty {
					t.Errorf("dead link (%d,%d) not penalized: lt %v bt %v", k, l, lt, bt)
				}
			case k == 0 && l == 2:
				if lt != c.LT.At(k, l)*2 || bt != c.BT.At(k, l)*0.5 {
					t.Errorf("degraded link (0,2) wrong: lt %v bt %v", lt, bt)
				}
			default:
				if lt != c.LT.At(k, l) || bt != c.BT.At(k, l) {
					t.Errorf("healthy link (%d,%d) altered", k, l)
				}
			}
		}
	}
	// nil schedule: an identical view.
	plain := c.FaultView(nil, 0)
	if !plain.LT.Equal(c.LT, 0) || !plain.BT.Equal(c.BT, 0) {
		t.Error("nil-schedule view differs from the cloud")
	}
	// The view must pass the mapping problem's matrix invariants.
	if v.M() != c.M() || v.TotalNodes() != c.TotalNodes() {
		t.Error("view changed topology")
	}
}
