package netmodel

import (
	"testing"
)

func mergedCloud(t *testing.T) (*Cloud, *Cloud, *Cloud) {
	t.Helper()
	ec2, err := EvenCloud(AmazonEC2, "m4.xlarge", []string{"us-east-1", "eu-west-1"}, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	azure, err := EvenCloud(WindowsAzure, "Standard_D2", []string{"east-us", "japan-east"}, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeClouds(ec2, azure, 3)
	if err != nil {
		t.Fatal(err)
	}
	return merged, ec2, azure
}

func TestMergeCloudsShape(t *testing.T) {
	merged, ec2, azure := mergedCloud(t)
	if merged.M() != 4 {
		t.Fatalf("merged M = %d, want 4", merged.M())
	}
	if merged.TotalNodes() != ec2.TotalNodes()+azure.TotalNodes() {
		t.Error("node counts not preserved")
	}
	// Intra-provider blocks preserved exactly.
	for k := 0; k < 2; k++ {
		for l := 0; l < 2; l++ {
			if merged.BT.At(k, l) != ec2.BT.At(k, l) {
				t.Errorf("EC2 block BT(%d,%d) changed", k, l)
			}
			if merged.LT.At(2+k, 2+l) != azure.LT.At(k, l) {
				t.Errorf("Azure block LT(%d,%d) changed", k, l)
			}
		}
	}
}

func TestMergeCrossProviderConservative(t *testing.T) {
	merged, ec2, azure := mergedCloud(t)
	// EC2 us-east-1 ↔ Azure east-us are geographically close (~200 km),
	// yet the peering link must not beat the conservative provider's cap.
	crossBW := merged.BT.At(0, 2) / MB
	capMBps := minF(ec2.Provider.CrossBWMaxMBps, azure.Provider.CrossBWMaxMBps) * InterProviderFactor
	if crossBW > capMBps*1.05 {
		t.Errorf("cross-provider bw %.2f MB/s above conservative cap %.2f", crossBW, capMBps)
	}
	if crossBW <= 0 {
		t.Error("nonpositive cross-provider bandwidth")
	}
	// A long cross-provider pair (EC2 eu-west ↔ Azure japan-east) must be
	// slower than the short one.
	farBW := merged.BT.At(1, 3) / MB
	if farBW >= crossBW {
		t.Errorf("far pair bw %.2f not below near pair %.2f", farBW, crossBW)
	}
	// Latency grows with distance across providers too.
	if merged.LT.At(0, 2) >= merged.LT.At(1, 3) {
		t.Error("cross-provider latency not increasing with distance")
	}
}

func TestMergeCloudsPositive(t *testing.T) {
	merged, _, _ := mergedCloud(t)
	for k := 0; k < merged.M(); k++ {
		for l := 0; l < merged.M(); l++ {
			if merged.BT.At(k, l) <= 0 || merged.LT.At(k, l) < 0 {
				t.Fatalf("invalid entry at (%d,%d)", k, l)
			}
		}
	}
}

func TestMergeCloudsNil(t *testing.T) {
	c, _ := PaperCloud(1)
	if _, err := MergeClouds(nil, c, 1); err == nil {
		t.Error("nil first cloud accepted")
	}
	if _, err := MergeClouds(c, nil, 1); err == nil {
		t.Error("nil second cloud accepted")
	}
}

func TestMergeCloudsDeterministic(t *testing.T) {
	a1, _, _ := mergedCloud(t)
	a2, _, _ := mergedCloud(t)
	if !a1.BT.Equal(a2.BT, 0) {
		t.Error("same seed produced different merged clouds")
	}
}
