// Package netmodel models the network of a geo-distributed cloud.
//
// It is the substitute for the paper's physical testbeds (Amazon EC2 across
// four regions, Windows Azure) and supplies the inputs the mapping problem
// needs: the inter/intra-site latency matrix LT, the bandwidth matrix BT,
// the physical coordinates PC of every site, and per-site node counts.
//
// The generator reproduces the paper's two empirical observations:
//
//   - Observation 1: intra-region bandwidth is an order of magnitude higher
//     than cross-region bandwidth (Table 1: 15–204 MB/s intra vs
//     5.4–6.6 MB/s across US East↔Singapore).
//   - Observation 2: cross-region performance is strongly correlated with
//     geographic distance (Table 2: 21 MB/s to US West, 19 MB/s to Ireland,
//     6.6 MB/s to Singapore; latency rising with distance).
//
// Bandwidth across regions is modeled as bw ≈ K/d (distance-inverse with
// caps) and latency as an affine function of distance, both fit to the
// paper's measured values; intra-region values come from per-instance-type
// calibration tables. Small deterministic per-pair jitter keeps the
// matrices asymmetric, as the paper notes real measurements are.
package netmodel

import (
	"fmt"
	"math"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// The quantity types of the α–β model, re-exported from internal/units so
// every consumer of the network model can name them without a second
// import. The canonical declarations (and their //geolint:unit markers)
// live in package units, which sits below internal/faults in the import
// graph.
type (
	// Seconds is a latency, timeout, or simulated duration.
	Seconds = units.Seconds
	// Bytes is a message, probe, or checkpoint volume.
	Bytes = units.Bytes
	// BytesPerSec is a link bandwidth or fair-share rate.
	BytesPerSec = units.BytesPerSec
	// Cost is the α–β objective of Formula 4.
	Cost = units.Cost
)

// MB is the unit used for bandwidth figures in the paper's tables.
const MB = 1e6 // bytes

// InstanceType describes a virtual-machine type's network characteristics.
type InstanceType struct {
	Name string
	// IntraBWMBps is the measured intra-region pairwise bandwidth in MB/s
	// (Table 1 of the paper).
	IntraBWMBps float64
	// CrossBWScale scales the provider's distance-derived cross-region
	// bandwidth: larger instances see slightly higher WAN throughput
	// (Table 1: 5.4 MB/s for m1.small up to 6.6 MB/s for c3.8xlarge).
	CrossBWScale float64
}

// Provider bundles the distance→performance fit for one cloud provider.
type Provider struct {
	Name    string
	Regions []geo.Region
	// CrossBWNumerator is K in bw = K/d (MB/s·km); fitted to the provider's
	// measured cross-region bandwidths.
	CrossBWNumerator float64
	// CrossBWMinMBps and CrossBWMaxMBps clamp the distance-inverse model.
	CrossBWMinMBps float64
	CrossBWMaxMBps float64
	// LatBaseSec + LatPerKmSec*d gives the one-way cross-region latency.
	// LatPerKmSec is a rate (seconds per kilometer), so it stays a raw
	// float64; the products below convert at the Seconds boundary.
	LatBaseSec  units.Seconds
	LatPerKmSec float64
	// IntraLatSec is the intra-region latency.
	IntraLatSec units.Seconds
	// Types lists the provider's calibrated instance types.
	Types []InstanceType
}

// AmazonEC2 is fitted to the paper's Tables 1 and 2:
// cross-region bandwidth 21/19/6.6 MB/s at ~3900/5500/15500 km, latency
// 0.16/0.17/0.35 s at the same distances, and the Table 1 intra-region
// bandwidths per instance type.
var AmazonEC2 = &Provider{
	Name:             "AmazonEC2",
	Regions:          geo.EC2Regions,
	CrossBWNumerator: 1.0e5,
	CrossBWMinMBps:   4.5,
	CrossBWMaxMBps:   25,
	LatBaseSec:       units.Seconds(0.096),
	LatPerKmSec:      1.64e-5,
	IntraLatSec:      units.Seconds(0.0008),
	Types: []InstanceType{
		{Name: "m1.small", IntraBWMBps: 18.5, CrossBWScale: 0.82},
		{Name: "m1.medium", IntraBWMBps: 79, CrossBWScale: 0.95},
		{Name: "m1.large", IntraBWMBps: 83, CrossBWScale: 0.95},
		{Name: "m1.xlarge", IntraBWMBps: 102.5, CrossBWScale: 0.97},
		{Name: "c3.8xlarge", IntraBWMBps: 176, CrossBWScale: 1.0},
		{Name: "m4.xlarge", IntraBWMBps: 100, CrossBWScale: 0.97},
	},
}

// WindowsAzure is fitted to the paper's Table 3: intra East-US 62 MB/s at
// 0.82 ms; East-US↔West-Europe 2.9 MB/s / 42 ms at ~6300 km;
// East-US↔Japan-East 1.3 MB/s / 77 ms at ~11000 km.
var WindowsAzure = &Provider{
	Name:             "WindowsAzure",
	Regions:          geo.AzureRegions,
	CrossBWNumerator: 1.65e4,
	CrossBWMinMBps:   0.9,
	CrossBWMaxMBps:   5,
	LatBaseSec:       units.Seconds(0),
	LatPerKmSec:      7.0e-6,
	IntraLatSec:      units.Seconds(0.00082),
	Types: []InstanceType{
		{Name: "Standard_D2", IntraBWMBps: 62, CrossBWScale: 1.0},
	},
}

// InstanceType returns the provider's instance type by name.
func (p *Provider) InstanceType(name string) (InstanceType, error) {
	for _, t := range p.Types {
		if t.Name == name {
			return t, nil
		}
	}
	return InstanceType{}, fmt.Errorf("netmodel: provider %s has no instance type %q", p.Name, name)
}

// CrossBandwidthMBps returns the modeled cross-region bandwidth for a pair
// of sites d kilometers apart, before instance-type scaling.
func (p *Provider) CrossBandwidthMBps(distKm float64) float64 {
	if distKm <= 0 {
		return p.CrossBWMaxMBps
	}
	bw := p.CrossBWNumerator / distKm
	return math.Min(p.CrossBWMaxMBps, math.Max(p.CrossBWMinMBps, bw))
}

// CrossLatencySec returns the modeled cross-region latency for a pair of
// sites d kilometers apart.
func (p *Provider) CrossLatencySec(distKm float64) units.Seconds {
	return p.LatBaseSec + units.Seconds(p.LatPerKmSec*distKm)
}

// Site is a data center hosting a number of identical instances.
type Site struct {
	Region geo.Region
	Nodes  int // number of physical nodes (instances) available
}

// Cloud is a concrete geo-distributed deployment: a set of sites with
// ground-truth network matrices. LT(k,l) is the one-way latency in seconds
// and BT(k,l) the bandwidth in bytes/second between sites k and l; diagonal
// entries hold intra-site values. Both matrices are mildly asymmetric, as
// in real measurements.
type Cloud struct {
	Provider *Provider
	Instance InstanceType
	Sites    []Site
	LT       *mat.Matrix // seconds
	BT       *mat.Matrix // bytes/second
}

// Options tunes cloud generation.
type Options struct {
	// Seed drives the deterministic per-pair jitter. Clouds built with the
	// same inputs and seed are identical.
	Seed int64
	// Jitter is the relative magnitude of per-direction asymmetric noise
	// applied to latency and bandwidth (default 0.02 = ±2%).
	Jitter float64
}

// NewCloud builds a cloud from a provider, an instance type name, and a
// list of sites. The LT/BT matrices are generated from the provider's
// distance model.
func NewCloud(p *Provider, instanceType string, sites []Site, opt Options) (*Cloud, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("netmodel: cloud needs at least one site")
	}
	inst, err := p.InstanceType(instanceType)
	if err != nil {
		return nil, err
	}
	for i, s := range sites {
		if s.Nodes <= 0 {
			return nil, fmt.Errorf("netmodel: site %d (%s) has %d nodes, want > 0", i, s.Region.Name, s.Nodes)
		}
	}
	m := len(sites)
	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	jitter := opt.Jitter
	if jitter == 0 { //geolint:ignore floatcmp zero-value Options default sentinel; 0 is exactly representable
		jitter = 0.02
	}
	rng := stats.NewRand(opt.Seed)
	wobble := func() float64 { return 1 + jitter*(2*rng.Float64()-1) }
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if k == l {
				lt.Set(k, l, p.IntraLatSec.Scale(wobble()).Float())
				bt.Set(k, l, inst.IntraBWMBps*MB*wobble())
				continue
			}
			d := geo.HaversineKm(sites[k].Region.Location, sites[l].Region.Location)
			lt.Set(k, l, p.CrossLatencySec(d).Scale(wobble()).Float())
			bw := p.CrossBandwidthMBps(d) * inst.CrossBWScale
			bt.Set(k, l, bw*MB*wobble())
		}
	}
	return &Cloud{Provider: p, Instance: inst, Sites: sites, LT: lt, BT: bt}, nil
}

// EvenCloud builds a cloud with nodesPerSite identical nodes in each of the
// named regions — the shape of every deployment in the paper's evaluation
// ("the machines are evenly distributed in each region").
func EvenCloud(p *Provider, instanceType string, regionNames []string, nodesPerSite int, opt Options) (*Cloud, error) {
	sites := make([]Site, 0, len(regionNames))
	for _, name := range regionNames {
		r, ok := geo.FindRegion(p.Regions, name)
		if !ok {
			return nil, fmt.Errorf("netmodel: provider %s has no region %q", p.Name, name)
		}
		sites = append(sites, Site{Region: r, Nodes: nodesPerSite})
	}
	return NewCloud(p, instanceType, sites, opt)
}

// PaperEC2Regions are the four regions of the paper's EC2 deployment:
// US East, US West, Singapore and Ireland.
var PaperEC2Regions = []string{"us-east-1", "us-west-1", "ap-southeast-1", "eu-west-1"}

// PaperCloud reproduces the paper's EC2 testbed: 4 regions × 16 m4.xlarge
// instances (64 nodes total, one process per instance).
func PaperCloud(seed int64) (*Cloud, error) {
	return EvenCloud(AmazonEC2, "m4.xlarge", PaperEC2Regions, 16, Options{Seed: seed})
}

// M returns the number of sites.
func (c *Cloud) M() int { return len(c.Sites) }

// TotalNodes returns the total number of physical nodes across all sites.
func (c *Cloud) TotalNodes() int {
	n := 0
	for _, s := range c.Sites {
		n += s.Nodes
	}
	return n
}

// Capacity returns the per-site node counts as the paper's I vector.
func (c *Cloud) Capacity() mat.IntVec {
	v := make(mat.IntVec, len(c.Sites))
	for i, s := range c.Sites {
		v[i] = s.Nodes
	}
	return v
}

// Coordinates returns the PC matrix: the physical coordinates of each site.
func (c *Cloud) Coordinates() []geo.LatLon {
	out := make([]geo.LatLon, len(c.Sites))
	for i, s := range c.Sites {
		out[i] = s.Region.Location
	}
	return out
}

// SiteOfNode maps a global node index (0 ≤ node < TotalNodes, sites laid
// out in order) to its site index.
func (c *Cloud) SiteOfNode(node int) int {
	if node < 0 {
		panic(fmt.Sprintf("netmodel: negative node index %d", node)) //geolint:ignore libpanic node indices are generated from the cloud's own layout
	}
	for i, s := range c.Sites {
		if node < s.Nodes {
			return i
		}
		node -= s.Nodes
	}
	panic(fmt.Sprintf("netmodel: node index beyond total capacity")) //geolint:ignore libpanic node indices are generated from the cloud's own layout
}

// TransferTime is the α–β model (Section 3.1): the time to move n bytes
// over a link with latency alpha and bandwidth beta.
func TransferTime(n units.Bytes, alpha units.Seconds, beta units.BytesPerSec) units.Seconds {
	if beta <= 0 {
		panic("netmodel: nonpositive bandwidth in TransferTime") //geolint:ignore libpanic bandwidths are validated positive at Cloud construction
	}
	return alpha + n.Over(beta)
}

// Latency returns the one-way latency between sites k and l — the typed
// view of the LT matrix entry.
func (c *Cloud) Latency(k, l int) units.Seconds { return units.Seconds(c.LT.At(k, l)) }

// Bandwidth returns the bandwidth between sites k and l — the typed view
// of the BT matrix entry.
func (c *Cloud) Bandwidth(k, l int) units.BytesPerSec { return units.BytesPerSec(c.BT.At(k, l)) }

// PairCost evaluates the paper's Formula 3: the aggregate cost of the
// traffic between two processes mapped to sites k and l, given their total
// message count (AG entry) and volume in bytes (CG entry).
func (c *Cloud) PairCost(msgs float64, volume units.Bytes, k, l int) units.Cost {
	return (c.Latency(k, l).Scale(msgs) + volume.Over(c.Bandwidth(k, l))).AsCost()
}

// DeadLinkPenalty is the factor FaultView applies to a down link: latency
// is multiplied and bandwidth divided by it, making the link prohibitively
// expensive for any cost-driven mapper while keeping the matrices valid
// (strictly positive bandwidth, as Problem.Validate requires).
const DeadLinkPenalty = 1e6

// FaultView returns a copy of the cloud whose LT/BT matrices reflect the
// fault schedule's link states at time t: degraded links have their
// bandwidth scaled down and latency scaled up by the active events, and
// down links (including every link of a site in outage) carry the
// DeadLinkPenalty. Mappers fed the view steer traffic away from faulty
// links; a nil schedule returns a view identical to the cloud. The Sites
// slice is shared with the receiver, the matrices are fresh copies.
func (c *Cloud) FaultView(sched *faults.Schedule, t float64) *Cloud {
	m := c.M()
	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			st := sched.Link(k, l, t)
			if st.Down {
				lt.Set(k, l, c.LT.At(k, l)*DeadLinkPenalty)
				bt.Set(k, l, c.BT.At(k, l)/DeadLinkPenalty)
				continue
			}
			lt.Set(k, l, c.LT.At(k, l)*st.LatFactor)
			bt.Set(k, l, c.BT.At(k, l)*st.BWFactor)
		}
	}
	view := *c
	view.LT, view.BT = lt, bt
	return &view
}
