package netmodel

import (
	"fmt"

	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
)

// This file implements the multi-cloud extension — the paper's closing
// future-work item: "later consider the problem in the more complicated
// geo-distributed environment with multiple cloud providers."
//
// MergeClouds combines two single-provider clouds into one deployment.
// Intra-provider links keep their measured values; links between sites of
// different providers traverse the public Internet, modeled with the
// distance fit of the *more conservative* provider (lower bandwidth
// ceiling, higher latency) further derated by InterProviderFactor —
// peering between clouds is consistently worse than either provider's
// backbone.

// InterProviderFactor derates cross-provider bandwidth relative to the
// conservative provider's backbone model.
const InterProviderFactor = 0.7

// MergeClouds builds a combined deployment from two clouds (typically from
// different providers). Site indices of a come first, then b's. The merged
// cloud keeps a's provider/instance metadata for reporting; per-site NIC
// behavior follows each site's own intra value, which is preserved.
func MergeClouds(a, b *Cloud, seed int64) (*Cloud, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("netmodel: nil cloud in merge")
	}
	ma, mb := a.M(), b.M()
	m := ma + mb
	sites := make([]Site, 0, m)
	sites = append(sites, a.Sites...)
	sites = append(sites, b.Sites...)

	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	// Conservative cross-provider model: min bandwidth numerator and caps,
	// max latency parameters.
	crossNum := minF(a.Provider.CrossBWNumerator, b.Provider.CrossBWNumerator) * InterProviderFactor
	crossMin := minF(a.Provider.CrossBWMinMBps, b.Provider.CrossBWMinMBps) * InterProviderFactor
	crossMax := minF(a.Provider.CrossBWMaxMBps, b.Provider.CrossBWMaxMBps) * InterProviderFactor
	latBase := Seconds(maxF(a.Provider.LatBaseSec.Float(), b.Provider.LatBaseSec.Float()))
	latPerKm := maxF(a.Provider.LatPerKmSec, b.Provider.LatPerKmSec)

	rng := stats.NewRand(seed)
	wobble := func() float64 { return 1 + 0.02*(2*rng.Float64()-1) }
	site := func(i int) (Site, bool) { // site, belongsToA
		if i < ma {
			return a.Sites[i], true
		}
		return b.Sites[i-ma], false
	}
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			sk, aK := site(k)
			sl, aL := site(l)
			switch {
			case aK && aL:
				lt.Set(k, l, a.LT.At(k, l))
				bt.Set(k, l, a.BT.At(k, l))
			case !aK && !aL:
				lt.Set(k, l, b.LT.At(k-ma, l-ma))
				bt.Set(k, l, b.BT.At(k-ma, l-ma))
			default:
				d := geo.HaversineKm(sk.Region.Location, sl.Region.Location)
				bw := crossNum / maxF(d, 1)
				if bw > crossMax {
					bw = crossMax
				}
				if bw < crossMin {
					bw = crossMin
				}
				lt.Set(k, l, (latBase + Seconds(latPerKm*d)).Scale(wobble()).Float())
				bt.Set(k, l, bw*MB*wobble())
			}
		}
	}
	return &Cloud{
		Provider: a.Provider,
		Instance: a.Instance,
		Sites:    sites,
		LT:       lt,
		BT:       bt,
	}, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
