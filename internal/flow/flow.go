// Package flow implements Dinic's maximum-flow algorithm on small graphs.
//
// It is the feasibility substrate for the multi-site data-movement
// constraints extension (the paper's stated future work: "we only consider
// the data movement constraint on individual sites and leave the extension
// to multiple site constraints"). Deciding whether every process can be
// placed on one of its allowed sites without exceeding site capacities is
// a bipartite b-matching problem, solved here as max-flow from a source
// through processes and sites to a sink.
package flow

import "fmt"

// Network is a directed flow network under construction.
type Network struct {
	n     int
	heads []int
	edges []edge
}

type edge struct {
	to, next int
	capacity int64
}

// NewNetwork returns a network with n nodes (0 … n-1) and no edges.
func NewNetwork(n int) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("flow: invalid node count %d", n))
	}
	heads := make([]int, n)
	for i := range heads {
		heads[i] = -1
	}
	return &Network{n: n, heads: heads}
}

// N returns the number of nodes.
func (g *Network) N() int { return g.n }

// AddEdge adds a directed edge from u to v with the given capacity (and
// its residual reverse edge). Capacity must be non-negative.
func (g *Network) AddEdge(u, v int, capacity int64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range for %d nodes", u, v, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("flow: negative capacity %d", capacity))
	}
	g.edges = append(g.edges, edge{to: v, next: g.heads[u], capacity: capacity})
	g.heads[u] = len(g.edges) - 1
	g.edges = append(g.edges, edge{to: u, next: g.heads[v], capacity: 0})
	g.heads[v] = len(g.edges) - 1
}

// MaxFlow computes the maximum flow from s to t with Dinic's algorithm.
// The network's residual capacities are consumed; call Flow afterwards to
// inspect per-edge flow.
func (g *Network) MaxFlow(s, t int) int64 {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic(fmt.Sprintf("flow: source/sink (%d,%d) out of range", s, t))
	}
	if s == t {
		panic("flow: source equals sink")
	}
	var total int64
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for {
		// BFS level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for e := g.heads[u]; e != -1; e = g.edges[e].next {
				if g.edges[e].capacity > 0 && level[g.edges[e].to] == -1 {
					level[g.edges[e].to] = level[u] + 1
					queue = append(queue, g.edges[e].to)
				}
			}
		}
		if level[t] == -1 {
			return total
		}
		copy(iter, g.heads)
		for {
			f := g.augment(s, t, int64(1)<<62, level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
}

func (g *Network) augment(u, t int, limit int64, level, iter []int) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] != -1; iter[u] = g.edges[iter[u]].next {
		e := iter[u]
		v := g.edges[e].to
		if g.edges[e].capacity <= 0 || level[v] != level[u]+1 {
			continue
		}
		pushed := limit
		if g.edges[e].capacity < pushed {
			pushed = g.edges[e].capacity
		}
		f := g.augment(v, t, pushed, level, iter)
		if f > 0 {
			g.edges[e].capacity -= f
			g.edges[e^1].capacity += f
			return f
		}
	}
	return 0
}

// Flow returns the flow pushed over the i-th added forward edge (in
// AddEdge call order).
func (g *Network) Flow(i int) int64 {
	idx := 2 * i
	if idx < 0 || idx+1 >= len(g.edges) {
		panic(fmt.Sprintf("flow: edge index %d out of range", i))
	}
	return g.edges[idx^1].capacity
}

// AssignmentProblem is a bipartite placement feasibility/construction
// helper: items (processes) must each be assigned to exactly one of their
// allowed bins (sites), and bin j holds at most Capacity[j] items. An
// empty allowed list means every bin is allowed.
type AssignmentProblem struct {
	Items    int
	Capacity []int
	// Allowed[i] lists the bins item i may use; nil/empty = all bins.
	Allowed [][]int
}

// Solve returns an assignment (item → bin) or an error when infeasible.
// Pinned items are expressed as singleton Allowed lists. The assignment
// honors preferences when given: prefer[i], if non-negative and allowed
// with remaining capacity, is tried first via the flow's edge order.
func (a *AssignmentProblem) Solve() ([]int, error) {
	bins := len(a.Capacity)
	if a.Items < 0 || bins == 0 {
		return nil, fmt.Errorf("flow: %d items over %d bins", a.Items, bins)
	}
	if len(a.Allowed) != a.Items {
		return nil, fmt.Errorf("flow: allowed lists %d, want %d", len(a.Allowed), a.Items)
	}
	// Nodes: 0 = source, 1..Items = items, Items+1..Items+bins = bins,
	// last = sink.
	src := 0
	sink := a.Items + bins + 1
	g := NewNetwork(sink + 1)
	type itemEdge struct{ item, bin, edgeIdx int }
	var itemEdges []itemEdge
	edgeCount := 0
	for i := 0; i < a.Items; i++ {
		g.AddEdge(src, 1+i, 1)
		edgeCount++
	}
	for i := 0; i < a.Items; i++ {
		allowed := a.Allowed[i]
		if len(allowed) == 0 {
			for b := 0; b < bins; b++ {
				g.AddEdge(1+i, 1+a.Items+b, 1)
				itemEdges = append(itemEdges, itemEdge{i, b, edgeCount})
				edgeCount++
			}
			continue
		}
		for _, b := range allowed {
			if b < 0 || b >= bins {
				return nil, fmt.Errorf("flow: item %d allows bin %d out of range [0,%d)", i, b, bins)
			}
			g.AddEdge(1+i, 1+a.Items+b, 1)
			itemEdges = append(itemEdges, itemEdge{i, b, edgeCount})
			edgeCount++
		}
	}
	for b := 0; b < bins; b++ {
		if a.Capacity[b] < 0 {
			return nil, fmt.Errorf("flow: bin %d has negative capacity", b)
		}
		g.AddEdge(1+a.Items+b, sink, int64(a.Capacity[b]))
		edgeCount++
	}
	if got := g.MaxFlow(src, sink); got != int64(a.Items) {
		return nil, fmt.Errorf("flow: only %d of %d items placeable under the allowed-site constraints", got, a.Items)
	}
	out := make([]int, a.Items)
	for i := range out {
		out[i] = -1
	}
	for _, ie := range itemEdges {
		if g.Flow(ie.edgeIdx) > 0 {
			out[ie.item] = ie.bin
		}
	}
	for i, b := range out {
		if b == -1 {
			return nil, fmt.Errorf("flow: internal error: item %d unassigned after full flow", i)
		}
	}
	return out, nil
}
