package flow

import (
	"testing"
	"testing/quick"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic 6-node example with max flow 23.
	g := NewNetwork(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("max flow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewNetwork(4)
	g.AddEdge(0, 1, 5)
	// No path to 3.
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("max flow = %d, want 0", got)
	}
}

func TestFlowPerEdge(t *testing.T) {
	g := NewNetwork(3)
	g.AddEdge(0, 1, 7) // edge 0
	g.AddEdge(1, 2, 4) // edge 1
	if got := g.MaxFlow(0, 2); got != 4 {
		t.Fatalf("max flow = %d, want 4", got)
	}
	if g.Flow(0) != 4 || g.Flow(1) != 4 {
		t.Errorf("per-edge flows = %d/%d, want 4/4", g.Flow(0), g.Flow(1))
	}
}

func TestNetworkPanics(t *testing.T) {
	cases := []func(){
		func() { NewNetwork(0) },
		func() { NewNetwork(2).AddEdge(0, 5, 1) },
		func() { NewNetwork(2).AddEdge(0, 1, -1) },
		func() { NewNetwork(2).MaxFlow(0, 0) },
		func() { NewNetwork(2).MaxFlow(-1, 1) },
		func() { NewNetwork(2).Flow(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAssignmentFeasible(t *testing.T) {
	a := &AssignmentProblem{
		Items:    4,
		Capacity: []int{2, 2},
		Allowed:  [][]int{{0}, {0}, nil, nil},
	}
	got, err := a.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("pinned items misplaced: %v", got)
	}
	counts := [2]int{}
	for _, b := range got {
		counts[b]++
	}
	if counts[0] > 2 || counts[1] > 2 {
		t.Errorf("capacity violated: %v", got)
	}
}

func TestAssignmentInfeasible(t *testing.T) {
	a := &AssignmentProblem{
		Items:    3,
		Capacity: []int{2, 5},
		Allowed:  [][]int{{0}, {0}, {0}}, // three items pinned to capacity-2 bin
	}
	if _, err := a.Solve(); err == nil {
		t.Error("infeasible assignment accepted")
	}
}

func TestAssignmentHallViolation(t *testing.T) {
	// Items 0 and 1 both only allow bin 0 (cap 1); bin 1 is free but
	// unusable: Hall's condition fails even though total capacity is fine.
	a := &AssignmentProblem{
		Items:    2,
		Capacity: []int{1, 1},
		Allowed:  [][]int{{0}, {0}},
	}
	if _, err := a.Solve(); err == nil {
		t.Error("Hall violation accepted")
	}
}

func TestAssignmentErrors(t *testing.T) {
	if _, err := (&AssignmentProblem{Items: 1, Capacity: nil, Allowed: [][]int{nil}}).Solve(); err == nil {
		t.Error("no bins accepted")
	}
	if _, err := (&AssignmentProblem{Items: 2, Capacity: []int{5}, Allowed: [][]int{nil}}).Solve(); err == nil {
		t.Error("mismatched Allowed length accepted")
	}
	if _, err := (&AssignmentProblem{Items: 1, Capacity: []int{1}, Allowed: [][]int{{7}}}).Solve(); err == nil {
		t.Error("out-of-range allowed bin accepted")
	}
	if _, err := (&AssignmentProblem{Items: 1, Capacity: []int{-1}, Allowed: [][]int{nil}}).Solve(); err == nil {
		t.Error("negative capacity accepted")
	}
}

// Property: when the solver returns an assignment it is always valid
// (allowed bins, capacities respected, every item placed), and when all
// items are unrestricted with sufficient capacity it always succeeds.
func TestQuickAssignmentValid(t *testing.T) {
	f := func(itemsRaw, binsRaw uint8, masks []uint8) bool {
		items := int(itemsRaw%10) + 1
		bins := int(binsRaw%4) + 1
		capacity := make([]int, bins)
		per := (items + bins - 1) / bins
		for b := range capacity {
			capacity[b] = per + 1
		}
		allowed := make([][]int, items)
		for i := 0; i < items && i < len(masks); i++ {
			for b := 0; b < bins; b++ {
				if masks[i]&(1<<uint(b)) != 0 {
					allowed[i] = append(allowed[i], b)
				}
			}
		}
		a := &AssignmentProblem{Items: items, Capacity: capacity, Allowed: allowed}
		got, err := a.Solve()
		if err != nil {
			// Infeasibility is only acceptable when some item has a
			// non-empty allowed set (empty = unrestricted, always OK here).
			for _, al := range allowed {
				if len(al) > 0 {
					return true
				}
			}
			return false
		}
		counts := make([]int, bins)
		for i, b := range got {
			if b < 0 || b >= bins {
				return false
			}
			counts[b]++
			if len(allowed[i]) > 0 {
				ok := false
				for _, al := range allowed[i] {
					if al == b {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		for b := range counts {
			if counts[b] > capacity[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
