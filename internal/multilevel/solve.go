package multilevel

import (
	"errors"
	"fmt"
	"runtime"
)

// Options tunes the multilevel solver. The zero value selects defaults
// sized for the paper's workloads.
type Options struct {
	// CoarsestVertices is the coarsening target: contraction stops once
	// the graph has at most this many super-vertices. Zero selects
	// max(32, 4·M) — a few super-vertices per site, so the coarsest-level
	// order search stays quadratic in a small constant.
	CoarsestVertices int
	// MaxWeight caps a super-vertex's process count. Zero selects
	// ceil(N / CoarsestVertices), clamped to the largest site capacity.
	MaxWeight int
	// RefinePasses bounds the proposal/commit sweeps per level (early exit
	// when a sweep applies nothing). Zero selects 3.
	RefinePasses int
	// MaxOrders caps the coarsest-level group-order enumeration. Zero
	// selects 720 (6! — every order for κ ≤ 6, a lexicographic prefix
	// beyond).
	MaxOrders int
	// MaxLevels bounds the hierarchy depth. Zero selects 40.
	MaxLevels int
	// Workers is the refinement parallelism. Zero selects GOMAXPROCS;
	// any value yields byte-identical placements.
	Workers int
}

func (o Options) withDefaults(n, m int) Options {
	if o.CoarsestVertices <= 0 {
		o.CoarsestVertices = 4 * m
		if o.CoarsestVertices < 32 {
			o.CoarsestVertices = 32
		}
	}
	if o.MaxWeight <= 0 {
		o.MaxWeight = (n + o.CoarsestVertices - 1) / o.CoarsestVertices
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 3
	}
	if o.MaxOrders <= 0 {
		o.MaxOrders = 720
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 40
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) //geolint:detsource worker count only; the proposal/commit reduction makes the result identical at any count
	}
	return o
}

// Stats reports what the solver did — level counts for the experiment
// report, move/swap counts for tuning.
type Stats struct {
	Levels       int // hierarchy depth including level 0
	CoarsestN    int // vertex count of the coarsest level
	InitialLevel int // level the initial map succeeded at (normally the coarsest)
	Passes       int // refinement sweeps that applied at least one step
	Moves        int // applied single-vertex moves
	Swaps        int // applied pairwise swaps
}

// ErrInfeasible reports that no level admitted a feasible weighted greedy
// fill — the caller should fall back to an exact assignment (e.g. the
// augmenting-path repair over the flat problem).
var ErrInfeasible = errors.New("multilevel: no feasible initial mapping at any level")

// Solve runs the full coarsen → initial-map → uncoarsen+refine pipeline
// and returns a feasible placement for the level-0 graph. The result is
// byte-identical at any Options.Workers value.
func Solve(in *Instance, opt Options) ([]int, Stats, error) {
	var st Stats
	if err := validate(in); err != nil {
		return nil, st, err
	}
	n, m := in.G.n, in.M()
	opt = opt.withDefaults(n, m)

	h := coarsen(in, opt.CoarsestVertices, opt.MaxWeight, opt.MaxLevels)
	st.Levels = len(h)
	st.CoarsestN = h[len(h)-1].g.n

	// Initial map at the coarsest level; if its super-vertices are too
	// chunky to pack (tight capacities, adversarial pins), retry one level
	// finer — level 0 has unit weights, where the greedy fill only fails
	// on problems needing augmenting-path repair.
	li := len(h) - 1
	var pl []int
	for {
		var err error
		pl, err = newInitialMapper(in, h[li], opt.MaxOrders).run()
		if err == nil {
			break
		}
		if li == 0 {
			return nil, st, ErrInfeasible
		}
		li--
	}
	st.InitialLevel = li

	r := newRefiner(in, opt.Workers, opt.RefinePasses)
	for l := li; ; l-- {
		r.attach(h[l])
		r.refine(pl)
		if l == 0 {
			break
		}
		pl = project(h[l-1], pl)
	}
	st.Passes = r.totalPasses
	st.Moves = r.moves
	st.Swaps = r.swaps
	return pl, st, nil
}

// Refine polishes an existing feasible level-0 placement in place with the
// multilevel refiner (no coarsening) — the fallback path after an external
// repair, and a reusable local-search primitive.
func Refine(in *Instance, pl []int, opt Options) error {
	if err := validate(in); err != nil {
		return err
	}
	if len(pl) != in.G.n {
		return fmt.Errorf("multilevel: placement has length %d, want %d", len(pl), in.G.n)
	}
	opt = opt.withDefaults(in.G.n, in.M())
	lv := &level{
		g:       in.G,
		pin:     in.Pin,
		allowed: normalizeAllowed(in.Allowed, in.G.n),
	}
	r := newRefiner(in, opt.Workers, opt.RefinePasses)
	r.attach(lv)
	r.refine(pl)
	return nil
}

// project expands a coarse placement one level finer via the contraction
// map recorded on the finer level.
func project(finer *level, coarse []int) []int {
	pl := make([]int, finer.g.n)
	for v := range pl {
		pl[v] = coarse[finer.toCoarse[v]]
	}
	return pl
}

// validate checks the instance's structural invariants (the caller — core —
// has already validated the semantic ones via Problem.Validate).
func validate(in *Instance) error {
	if in.G == nil || in.G.n == 0 {
		return fmt.Errorf("multilevel: empty graph")
	}
	m := in.M()
	if m == 0 {
		return fmt.Errorf("multilevel: no sites")
	}
	if in.LT == nil || in.BT == nil {
		return fmt.Errorf("multilevel: nil LT/BT matrix")
	}
	if len(in.Pin) != in.G.n {
		return fmt.Errorf("multilevel: pin vector has length %d, want %d", len(in.Pin), in.G.n)
	}
	if len(in.Allowed) != 0 && len(in.Allowed) != in.G.n {
		return fmt.Errorf("multilevel: allowed sets have length %d, want %d", len(in.Allowed), in.G.n)
	}
	if len(in.Groups) == 0 {
		return fmt.Errorf("multilevel: no site groups")
	}
	return nil
}
