// Package multilevel implements a multilevel process-mapping solver:
// coarsen the communication graph by repeated heavy-edge matching, map the
// coarsest graph with the paper's group-order heuristic generalized to
// weighted super-vertices, then uncoarsen level by level while refining the
// placement with a parallel, deterministic move/swap local search.
//
// The scheme follows "Better Process Mapping and Sparse Quadratic
// Assignment" (Schulz & Träff) and "Shared-Memory Hierarchical Process
// Mapping" (Schulz & Woydt): the κ! order search that makes the flat
// heuristic super-polynomial only ever runs on a few×M super-vertices, so
// the end-to-end complexity is dominated by the O(E·M) refinement sweeps —
// linear in the communication pattern for the sparse workloads the paper
// evaluates.
//
// The package deliberately does not import internal/core: core exposes the
// solver as core.MultilevelGeoMapper, so the dependency points the other
// way. All structures here speak plain slices plus the shared comm/mat/
// units/stats vocabulary.
package multilevel

import (
	"geoprocmap/internal/comm"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/units"
)

// Graph is a directed communication graph in CSR (compressed sparse row)
// form, flattened for cache-friendly O(degree) traversal in the refinement
// hot path. Each vertex is a super-vertex standing for Weight[v] original
// processes; traffic between processes merged into the same super-vertex
// is accumulated in the self arrays so every level charges the exact
// intra-site α–β cost of its projected placement — total communication
// volume is conserved level to level, which TestCoarsenConservesVolume
// asserts.
type Graph struct {
	n      int
	weight []int // processes merged into each vertex (level 0: all 1)

	// Directed adjacency, both orientations. outPeer[outIdx[v]:outIdx[v+1]]
	// are the destinations of v's outgoing traffic in ascending order;
	// the in arrays mirror it for fast column access (peer = sender).
	outIdx  []int
	outPeer []int
	outVol  []float64
	outMsgs []float64
	inIdx   []int
	inPeer  []int
	inVol   []float64
	inMsgs  []float64

	// Intra-vertex traffic absorbed by contraction: the (volume, msgs)
	// totals of all edges between processes merged into v. Charged at the
	// intra-site rate LT(s,s)/BT(s,s) of the vertex's current site.
	selfVol  []float64
	selfMsgs []float64
}

// N returns the number of (super-)vertices.
func (g *Graph) N() int { return g.n }

// Weight returns the number of original processes merged into vertex v.
func (g *Graph) Weight(v int) int { return g.weight[v] }

// TotalVolume returns the total communication volume represented by the
// graph, counting directed edges once plus all absorbed intra-vertex
// traffic. Contraction preserves it exactly.
func (g *Graph) TotalVolume() float64 {
	var t float64
	for _, v := range g.outVol {
		t += v
	}
	for _, v := range g.selfVol {
		t += v
	}
	return t
}

// TotalMsgs is TotalVolume for message counts.
func (g *Graph) TotalMsgs() float64 {
	var t float64
	for _, v := range g.outMsgs {
		t += v
	}
	for _, v := range g.selfMsgs {
		t += v
	}
	return t
}

// TotalWeight returns the number of original processes represented.
func (g *Graph) TotalWeight() int {
	t := 0
	for _, w := range g.weight {
		t += w
	}
	return t
}

// FromComm flattens a comm.Graph into level-0 CSR form (unit weights, no
// self traffic). The adjacency caches are prewarmed as a side effect, so a
// graph shared with concurrent readers is safe afterwards.
func FromComm(cg *comm.Graph) *Graph {
	n := cg.N()
	cg.Prewarm()
	g := &Graph{
		n:        n,
		weight:   make([]int, n),
		outIdx:   make([]int, n+1),
		inIdx:    make([]int, n+1),
		selfVol:  make([]float64, n),
		selfMsgs: make([]float64, n),
	}
	outEdges, inEdges := 0, 0
	for v := 0; v < n; v++ {
		g.weight[v] = 1
		outEdges += len(cg.Outgoing(v))
		inEdges += len(cg.Incoming(v))
	}
	g.outPeer = make([]int, outEdges)
	g.outVol = make([]float64, outEdges)
	g.outMsgs = make([]float64, outEdges)
	g.inPeer = make([]int, inEdges)
	g.inVol = make([]float64, inEdges)
	g.inMsgs = make([]float64, inEdges)
	oi, ii := 0, 0
	for v := 0; v < n; v++ {
		g.outIdx[v] = oi
		for _, e := range cg.Outgoing(v) {
			g.outPeer[oi] = e.Peer
			g.outVol[oi] = e.Volume
			g.outMsgs[oi] = e.Msgs
			oi++
		}
		g.inIdx[v] = ii
		for _, e := range cg.Incoming(v) {
			g.inPeer[ii] = e.Peer
			g.inVol[ii] = e.Volume
			g.inMsgs[ii] = e.Msgs
			ii++
		}
	}
	g.outIdx[n] = oi
	g.inIdx[n] = ii
	return g
}

// Instance is a mapping problem phrased over a CSR graph: the network
// matrices, per-site capacities, the pin vector (-1 = free), optional
// multi-site restrictions, and the K-means site groups the coarsest-level
// order search permutes. All fields are read-only to the solver.
type Instance struct {
	G        *Graph
	LT, BT   *mat.Matrix
	Capacity []int
	Pin      []int   // per level-0 vertex: required site or -1
	Allowed  [][]int // per level-0 vertex: admissible sites; nil/empty = all
	Groups   [][]int // site groups for the initial-map order search
}

// M returns the number of sites.
func (in *Instance) M() int { return len(in.Capacity) }

// linkCost is the α–β cost of (vol, msgs) over the site pair (k, l) —
// Formula 3 of the paper, identical to core.Problem.Cost's per-edge term.
//
//geolint:allocfree
func (in *Instance) linkCost(k, l int, vol, msgs float64) units.Cost {
	lat := units.Seconds(in.LT.At(k, l))
	bw := units.BytesPerSec(in.BT.At(k, l))
	return (lat.Scale(msgs) + units.Bytes(vol).Over(bw)).AsCost()
}

// cost evaluates the full objective of a placement over graph g (any
// level): directed edges at their site pair plus absorbed intra-vertex
// traffic at the intra-site rate. For the projected placement this equals
// the fine-level objective term for term.
//
//geolint:allocfree
func (in *Instance) cost(g *Graph, pl []int) units.Cost {
	var c units.Cost
	for v := 0; v < g.n; v++ {
		sv := pl[v]
		for e := g.outIdx[v]; e < g.outIdx[v+1]; e++ {
			c += in.linkCost(sv, pl[g.outPeer[e]], g.outVol[e], g.outMsgs[e])
		}
		if g.selfVol[v] != 0 || g.selfMsgs[v] != 0 {
			c += in.linkCost(sv, sv, g.selfVol[v], g.selfMsgs[v])
		}
	}
	return c
}

// Cost exposes the objective of a level-0 placement (for callers that hold
// an Instance but not a core.Problem).
func (in *Instance) Cost(pl []int) units.Cost { return in.cost(in.G, pl) }

// refWeights returns the mean inter-site latency and bandwidth (intra-site
// for M = 1), mirroring core.Problem.referenceWeights: the scalarization
// that makes a (volume, msgs) pair commensurate with the cost model.
func (in *Instance) refWeights() (units.Seconds, units.BytesPerSec) {
	m := in.M()
	var latSum, bwSum float64
	pairs := 0
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if k == l {
				continue
			}
			latSum += in.LT.At(k, l)
			bwSum += in.BT.At(k, l)
			pairs++
		}
	}
	if pairs == 0 {
		return units.Seconds(in.LT.At(0, 0)), units.BytesPerSec(in.BT.At(0, 0))
	}
	return units.Seconds(latSum / float64(pairs)), units.BytesPerSec(bwSum / float64(pairs))
}

// allowedOn reports whether a vertex with the given pin and allowed set may
// sit on site s.
func allowedOn(pin int, allowed []int, s int) bool {
	if pin >= 0 {
		return pin == s
	}
	if len(allowed) == 0 {
		return true
	}
	for _, a := range allowed {
		if a == s {
			return true
		}
	}
	return false
}
