package multilevel

import (
	"fmt"
	"math"
	"sort"

	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// initialMapper runs the paper's group-order heuristic on the coarsest
// level, generalized to weighted super-vertices: a vertex standing for w
// processes consumes w units of a site's capacity. The κ! permutations of
// the site groups are enumerated in lexicographic rank order (capped by
// maxOrders) and the minimum-cost feasible fill wins, ties broken by lowest
// rank — the same deterministic reduction as core.GeoMapper's search, so
// the choice never depends on evaluation order.
type initialMapper struct {
	in     *Instance
	lv     *level
	refLat units.Seconds
	refBW  units.BytesPerSec

	quantity  []units.Cost
	affinity  []units.Cost
	selected  []bool
	avail     []int
	members   [][]int // vertices currently placed per site
	pl        []int
	groupDone []bool
	byWeight  []int // vertices in descending weight order (leftover repair)
	ordered   [][]int

	best     []int
	bestCost units.Cost
	found    bool
	examined int
	cap      int
}

func newInitialMapper(in *Instance, lv *level, maxOrders int) *initialMapper {
	g := lv.g
	n := g.n
	im := &initialMapper{
		in:        in,
		lv:        lv,
		quantity:  make([]units.Cost, n),
		affinity:  make([]units.Cost, n),
		selected:  make([]bool, n),
		avail:     make([]int, in.M()),
		members:   make([][]int, in.M()),
		pl:        make([]int, n),
		groupDone: make([]bool, in.M()),
		byWeight:  make([]int, n),
		ordered:   make([][]int, len(in.Groups)),
		bestCost:  units.Cost(math.Inf(1)),
		cap:       maxOrders,
	}
	im.refLat, im.refBW = in.refWeights()
	for v := 0; v < n; v++ {
		var q units.Cost
		for e := g.outIdx[v]; e < g.outIdx[v+1]; e++ {
			q += im.weight(g.outVol[e], g.outMsgs[e])
		}
		for e := g.inIdx[v]; e < g.inIdx[v+1]; e++ {
			q += im.weight(g.inVol[e], g.inMsgs[e])
		}
		im.quantity[v] = q
		im.byWeight[v] = v
	}
	sort.SliceStable(im.byWeight, func(a, b int) bool {
		return g.weight[im.byWeight[a]] > g.weight[im.byWeight[b]]
	})
	return im
}

// weight scalarizes a (vol, msgs) pair against the average inter-site link.
func (im *initialMapper) weight(vol, msgs float64) units.Cost {
	return (im.refLat.Scale(msgs) + units.Bytes(vol).Over(im.refBW)).AsCost()
}

// run enumerates group orders and returns the best feasible placement. The
// returned slice is freshly allocated.
func (im *initialMapper) run() ([]int, error) {
	k := len(im.in.Groups)
	if k == 0 {
		return nil, fmt.Errorf("multilevel: no site groups")
	}
	total := stats.FactorialInt(k)
	stats.PermutationRange(k, 0, total, func(rank int, perm []int) bool {
		for i, gi := range perm {
			im.ordered[i] = im.in.Groups[gi]
		}
		if im.fill(im.ordered) {
			c := im.in.cost(im.lv.g, im.pl)
			if c < im.bestCost {
				im.bestCost = c
				im.best = append(im.best[:0], im.pl...)
				im.found = true
			}
		}
		im.examined++
		return im.cap <= 0 || im.examined < im.cap
	})
	if !im.found {
		return nil, errInitialInfeasible
	}
	return append([]int(nil), im.best...), nil
}

var errInitialInfeasible = fmt.Errorf("multilevel: no feasible fill at this level")

// fill runs one weighted greedy packing for an ordered group sequence:
// pinned vertices first, then per group the site with the most remaining
// capacity, seeded with the heaviest-communicating admissible vertex that
// fits and grown by affinity to the vertices already on the site. Vertices
// no group could take are repaired onto the emptiest admissible site;
// returns false when some vertex fits nowhere (coarser-level weights can be
// too chunky — the caller then retries one level finer).
func (im *initialMapper) fill(orderedGroups [][]int) bool {
	g := im.lv.g
	n := g.n
	for i := range im.selected {
		im.selected[i] = false
		im.pl[i] = -1
	}
	copy(im.avail, im.in.Capacity)
	for s := range im.members {
		im.members[s] = im.members[s][:0]
	}
	remaining := n
	for v, p := range im.lv.pin {
		if p < 0 {
			continue
		}
		im.selected[v] = true
		im.place(v, p)
		remaining--
	}

	for _, group := range orderedGroups {
		if remaining == 0 {
			break
		}
		groupDone := im.groupDone[:len(group)]
		for i := range groupDone {
			groupDone[i] = false
		}
		for j := 0; j < len(group); j++ {
			site, bestAvail, bestIdx := -1, -1, -1
			for idx, s := range group {
				if !groupDone[idx] && im.avail[s] > bestAvail {
					site, bestAvail, bestIdx = s, im.avail[s], idx
				}
			}
			if site == -1 {
				break
			}
			groupDone[bestIdx] = true
			if im.avail[site] <= 0 {
				continue
			}
			if remaining == 0 {
				break
			}

			// Seed: heaviest-communicating unselected vertex that is
			// admissible on this site and fits its remaining capacity.
			seed := -1
			bestQ := units.Cost(math.Inf(-1))
			for v := 0; v < n; v++ {
				if im.selected[v] || g.weight[v] > im.avail[site] {
					continue
				}
				if !allowedOn(im.lv.pin[v], im.lv.allowed[v], site) {
					continue
				}
				if im.quantity[v] > bestQ {
					seed, bestQ = v, im.quantity[v]
				}
			}
			if seed == -1 {
				continue
			}
			im.place(seed, site)
			remaining--

			// Affinity measures attachment to everything already on the
			// site — the seed plus any vertices pinned there.
			im.rebuildAffinity(site)
			for im.avail[site] > 0 && remaining > 0 {
				next := -1
				bestA := units.Cost(math.Inf(-1))
				for v := 0; v < n; v++ {
					if im.selected[v] || g.weight[v] > im.avail[site] {
						continue
					}
					if !allowedOn(im.lv.pin[v], im.lv.allowed[v], site) {
						continue
					}
					a := im.affinity[v]
					if a > bestA || (a == bestA && next >= 0 && im.quantity[v] > im.quantity[next]) {
						next, bestA = v, a
					}
				}
				if next == -1 {
					break
				}
				im.place(next, site)
				remaining--
				im.addAffinity(next)
			}
		}
	}

	if remaining == 0 {
		return true
	}
	// Leftover repair: heaviest vertices first onto the admissible site
	// with the most remaining room; when every admissible site is full,
	// try a one-step displacement before giving up.
	for _, v := range im.byWeight {
		if im.selected[v] {
			continue
		}
		site, bestAvail := -1, g.weight[v]-1
		for s := 0; s < im.in.M(); s++ {
			if im.avail[s] > bestAvail && allowedOn(im.lv.pin[v], im.lv.allowed[v], s) {
				site, bestAvail = s, im.avail[s]
			}
		}
		if site == -1 && !im.displace(v) {
			return false
		}
		if site >= 0 {
			im.place(v, site)
		}
		remaining--
	}
	return remaining == 0
}

// displace makes room for a stranded vertex v by relocating one unpinned
// resident of an admissible site to another site with headroom — a depth-2
// augmenting step. Restricted vertices are stranded when unrestricted ones
// filled their sites greedily; one relocation resolves the common case,
// and the level-retry ladder (plus the caller's exact repair fallback)
// covers the rest. The scan order is fully deterministic.
func (im *initialMapper) displace(v int) bool {
	g := im.lv.g
	w := g.weight[v]
	for s := 0; s < im.in.M(); s++ {
		if !allowedOn(im.lv.pin[v], im.lv.allowed[v], s) {
			continue
		}
		for _, u := range im.members[s] {
			if im.lv.pin[u] >= 0 {
				continue
			}
			if im.avail[s]+g.weight[u] < w {
				continue
			}
			for s2 := 0; s2 < im.in.M(); s2++ {
				if s2 == s || im.avail[s2] < g.weight[u] {
					continue
				}
				if !allowedOn(im.lv.pin[u], im.lv.allowed[u], s2) {
					continue
				}
				im.unplace(u, s)
				im.place(u, s2)
				im.place(v, s)
				return true
			}
		}
	}
	return false
}

// unplace removes u from site s (bookkeeping inverse of place).
func (im *initialMapper) unplace(u, s int) {
	im.avail[s] += im.lv.g.weight[u]
	mem := im.members[s]
	for i, x := range mem {
		if x == u {
			copy(mem[i:], mem[i+1:])
			im.members[s] = mem[:len(mem)-1]
			break
		}
	}
}

func (im *initialMapper) place(v, site int) {
	im.pl[v] = site
	im.selected[v] = true
	im.avail[site] -= im.lv.g.weight[v]
	im.members[site] = append(im.members[site], v)
}

// rebuildAffinity recomputes every vertex's total traffic with the vertices
// already placed on site.
func (im *initialMapper) rebuildAffinity(site int) {
	for i := range im.affinity {
		im.affinity[i] = 0
	}
	for _, v := range im.members[site] {
		im.addAffinity(v)
	}
}

// addAffinity adds vertex v's traffic into the affinity array after v has
// been placed on the site currently being filled.
func (im *initialMapper) addAffinity(v int) {
	g := im.lv.g
	for e := g.outIdx[v]; e < g.outIdx[v+1]; e++ {
		im.affinity[g.outPeer[e]] += im.weight(g.outVol[e], g.outMsgs[e])
	}
	for e := g.inIdx[v]; e < g.inIdx[v+1]; e++ {
		im.affinity[g.inPeer[e]] += im.weight(g.inVol[e], g.inMsgs[e])
	}
}
