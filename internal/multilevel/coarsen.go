package multilevel

import (
	"sort"

	"geoprocmap/internal/units"
)

// level is one rung of the multilevel hierarchy: a coarsened graph plus the
// per-vertex constraint state at that granularity. toCoarse maps this
// level's vertices to the next-coarser level's ids (nil on the coarsest
// level).
type level struct {
	g        *Graph
	pin      []int   // required site or -1, per vertex
	allowed  [][]int // admissible sites, nil = unrestricted, per vertex
	toCoarse []int
}

// hierarchy is the full coarsening ladder, finest first.
type hierarchy []*level

// coarsen builds the hierarchy: heavy-edge matching with deterministic
// tie-breaking on vertex id, contracting until the graph has at most
// target vertices, matching stalls, or the level cap is reached.
//
// Matching rule: vertices are visited in ascending id order; an unmatched
// vertex u pairs with the unmatched, constraint-compatible neighbor v
// maximizing the scalarized edge weight refLat·msgs + vol/refBW (both
// directions combined), ties broken by lowest v. Compatibility demands
// identical pins (both free, or both pinned to the same site), a non-empty
// intersection of allowed-site sets, and a merged weight within maxW and
// the capacity of some admissible site — so contraction can never
// manufacture an unplaceable super-vertex out of placeable parts.
func coarsen(in *Instance, target, maxW, maxLevels int) hierarchy {
	l0 := &level{
		g:       in.G,
		pin:     in.Pin,
		allowed: normalizeAllowed(in.Allowed, in.G.n),
	}
	refLat, refBW := in.refWeights()
	maxCap := 0
	for _, c := range in.Capacity {
		if c > maxCap {
			maxCap = c
		}
	}
	if maxW > maxCap {
		maxW = maxCap
	}
	if maxW < 1 {
		maxW = 1
	}
	h := hierarchy{l0}
	m := &matcher{in: in, refLat: refLat, refBW: refBW, maxW: maxW}
	for len(h) < maxLevels {
		cur := h[len(h)-1]
		if cur.g.n <= target {
			break
		}
		match, pairs := m.match(cur)
		// Stop when matching stops making real progress: fewer than 2% of
		// vertices paired means the constraint structure (or maxW) has
		// frozen the graph.
		if pairs*50 < cur.g.n {
			break
		}
		next := contract(cur, match)
		h = append(h, next)
	}
	return h
}

// normalizeAllowed returns sorted copies of the allowed sets (nil-padded to
// n entries) so set intersection during contraction can merge linearly.
func normalizeAllowed(allowed [][]int, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		if i < len(allowed) && len(allowed[i]) > 0 {
			s := append([]int(nil), allowed[i]...)
			sort.Ints(s)
			out[i] = s
		}
	}
	return out
}

// matcher carries the scratch of the heavy-edge matching pass.
type matcher struct {
	in     *Instance
	refLat units.Seconds
	refBW  units.BytesPerSec
	maxW   int

	score   []units.Cost // scratch: combined edge weight to each candidate
	touched []int        // candidates with a non-zero score this round
}

// scalar converts a (vol, msgs) pair into the cost-commensurate matching
// weight.
func (m *matcher) scalar(vol, msgs float64) units.Cost {
	return (m.refLat.Scale(msgs) + units.Bytes(vol).Over(m.refBW)).AsCost()
}

// match computes a maximal matching of lv's graph under the compatibility
// rules. match[u] = v pairs u and v (symmetric); -1 leaves u a singleton.
// Returns the number of pairs.
func (m *matcher) match(lv *level) ([]int, int) {
	g := lv.g
	n := g.n
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	if cap(m.score) < n {
		m.score = make([]units.Cost, n)
		m.touched = make([]int, 0, n)
	}
	score := m.score[:n]
	pairs := 0
	for u := 0; u < n; u++ {
		if match[u] >= 0 {
			continue
		}
		// Accumulate both directions into a per-candidate score. The
		// touched list makes the reset O(degree) instead of O(n).
		m.touched = m.touched[:0]
		for e := g.outIdx[u]; e < g.outIdx[u+1]; e++ {
			v := g.outPeer[e]
			if score[v] == 0 {
				m.touched = append(m.touched, v)
			}
			score[v] += m.scalar(g.outVol[e], g.outMsgs[e])
		}
		for e := g.inIdx[u]; e < g.inIdx[u+1]; e++ {
			v := g.inPeer[e]
			if score[v] == 0 {
				m.touched = append(m.touched, v)
			}
			score[v] += m.scalar(g.inVol[e], g.inMsgs[e])
		}
		best, bestScore := -1, units.Cost(0)
		for _, v := range m.touched {
			w := score[v]
			score[v] = 0
			if match[v] >= 0 || v == u || w <= 0 {
				continue
			}
			if !m.compatible(lv, u, v) {
				continue
			}
			// Heaviest edge wins; exact ties go to the lowest vertex id so
			// the matching is independent of adjacency-list order.
			if w > bestScore || (w == bestScore && best >= 0 && v < best) {
				best, bestScore = v, w
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
			pairs++
		}
	}
	return match, pairs
}

// compatible reports whether u and v may be contracted into one
// super-vertex without losing a feasible placement of the pair.
func (m *matcher) compatible(lv *level, u, v int) bool {
	if lv.pin[u] != lv.pin[v] {
		return false
	}
	w := lv.g.weight[u] + lv.g.weight[v]
	if w > m.maxW {
		return false
	}
	if p := lv.pin[u]; p >= 0 {
		return w <= m.in.Capacity[p]
	}
	au, av := lv.allowed[u], lv.allowed[v]
	switch {
	case len(au) == 0 && len(av) == 0:
		return true
	case len(au) == 0:
		return fitsSomewhere(av, m.in.Capacity, w)
	case len(av) == 0:
		return fitsSomewhere(au, m.in.Capacity, w)
	}
	// Both restricted: the merged vertex lives on the intersection, which
	// must contain a site big enough for the merged weight.
	i, j := 0, 0
	for i < len(au) && j < len(av) {
		switch {
		case au[i] == av[j]:
			if m.in.Capacity[au[i]] >= w {
				return true
			}
			i++
			j++
		case au[i] < av[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// fitsSomewhere reports whether any of the sites can hold weight w.
func fitsSomewhere(sites []int, capacity []int, w int) bool {
	for _, s := range sites {
		if capacity[s] >= w {
			return true
		}
	}
	return false
}

// contract builds the next-coarser level from a matching: matched pairs and
// singletons become super-vertices numbered in ascending order of their
// lowest member id, directed traffic is aggregated per ordered coarse pair,
// and traffic between merged vertices moves into the self arrays — total
// volume and message counts are conserved exactly.
func contract(lv *level, match []int) *level {
	g := lv.g
	n := g.n
	toCoarse := make([]int, n)
	nc := 0
	for u := 0; u < n; u++ {
		if v := match[u]; v >= 0 && v < u {
			toCoarse[u] = toCoarse[v]
			continue
		}
		toCoarse[u] = nc
		nc++
	}
	lv.toCoarse = toCoarse

	cg := &Graph{
		n:        nc,
		weight:   make([]int, nc),
		outIdx:   make([]int, nc+1),
		inIdx:    make([]int, nc+1),
		selfVol:  make([]float64, nc),
		selfMsgs: make([]float64, nc),
	}
	pin := make([]int, nc)
	allowed := make([][]int, nc)
	// members[c] lists the fine vertices of coarse vertex c in ascending
	// id order (counting sort over toCoarse, which is monotone in the
	// lowest member).
	memberIdx := make([]int, nc+1)
	for _, c := range toCoarse {
		memberIdx[c+1]++
	}
	for c := 0; c < nc; c++ {
		memberIdx[c+1] += memberIdx[c]
	}
	members := make([]int, n)
	cursor := append([]int(nil), memberIdx[:nc]...)
	for u := 0; u < n; u++ {
		c := toCoarse[u]
		members[cursor[c]] = u
		cursor[c]++
	}

	// Aggregate outgoing traffic per coarse vertex with a scatter array.
	accVol := make([]float64, nc)
	accMsgs := make([]float64, nc)
	var touched []int
	var outPeer []int
	var outVol, outMsgs []float64
	for c := 0; c < nc; c++ {
		cg.outIdx[c] = len(outPeer)
		touched = touched[:0]
		for mi := memberIdx[c]; mi < memberIdx[c+1]; mi++ {
			u := members[mi]
			cg.weight[c] += g.weight[u]
			cg.selfVol[c] += g.selfVol[u]
			cg.selfMsgs[c] += g.selfMsgs[u]
			for e := g.outIdx[u]; e < g.outIdx[u+1]; e++ {
				cv := toCoarse[g.outPeer[e]]
				if cv == c {
					// Edge absorbed by the contraction.
					cg.selfVol[c] += g.outVol[e]
					cg.selfMsgs[c] += g.outMsgs[e]
					continue
				}
				if accVol[cv] == 0 && accMsgs[cv] == 0 {
					touched = append(touched, cv)
				}
				accVol[cv] += g.outVol[e]
				accMsgs[cv] += g.outMsgs[e]
			}
		}
		sort.Ints(touched)
		for _, cv := range touched {
			outPeer = append(outPeer, cv)
			outVol = append(outVol, accVol[cv])
			outMsgs = append(outMsgs, accMsgs[cv])
			accVol[cv] = 0
			accMsgs[cv] = 0
		}

		// Constraint state: compatibility guarantees identical pins and a
		// usable allowed intersection.
		first := members[memberIdx[c]]
		pin[c] = lv.pin[first]
		set := lv.allowed[first]
		for mi := memberIdx[c] + 1; mi < memberIdx[c+1]; mi++ {
			set = intersectAllowed(set, lv.allowed[members[mi]])
		}
		allowed[c] = set
	}
	cg.outIdx[nc] = len(outPeer)
	cg.outPeer = outPeer
	cg.outVol = outVol
	cg.outMsgs = outMsgs

	// Transpose the out-CSR into the in-CSR; iterating sources in
	// ascending order leaves each in-list sorted by sender.
	edges := len(outPeer)
	cg.inPeer = make([]int, edges)
	cg.inVol = make([]float64, edges)
	cg.inMsgs = make([]float64, edges)
	for e := 0; e < edges; e++ {
		cg.inIdx[outPeer[e]+1]++
	}
	for c := 0; c < nc; c++ {
		cg.inIdx[c+1] += cg.inIdx[c]
	}
	inCursor := append([]int(nil), cg.inIdx[:nc]...)
	for c := 0; c < nc; c++ {
		for e := cg.outIdx[c]; e < cg.outIdx[c+1]; e++ {
			cv := outPeer[e]
			pos := inCursor[cv]
			cg.inPeer[pos] = c
			cg.inVol[pos] = outVol[e]
			cg.inMsgs[pos] = outMsgs[e]
			inCursor[cv]++
		}
	}

	return &level{g: cg, pin: pin, allowed: allowed}
}

// intersectAllowed merges two sorted allowed sets; nil means unrestricted
// and acts as the identity.
func intersectAllowed(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
