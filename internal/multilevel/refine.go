package multilevel

import (
	"math"
	"sort"
	"sync"

	"geoprocmap/internal/units"
)

// proposal is one candidate local-search step found by the proposal phase:
// either move v to site (peer == -1) or swap v with peer. delta is the
// objective change evaluated against the pass's placement snapshot.
type proposal struct {
	delta units.Cost
	v     int
	peer  int
	site  int
}

// refiner runs the uncoarsening local search: per pass, a parallel
// proposal phase computes every vertex's best admissible move/swap against
// a read-only placement snapshot, the proposals are reduced into a single
// (gain, lowest-id) order, and a sequential commit phase re-validates each
// winner against the live placement before applying it.
//
// Determinism at any worker count: proposals are pure functions of the
// snapshot, workers own contiguous vertex ranges whose buffers are
// concatenated in range order, and the sort's tie-breaks (vertex id, then
// peer, then site) leave no equal elements — so the commit sequence, and
// therefore the placement, is byte-identical whether one goroutine
// proposed or sixteen did.
type refiner struct {
	in      *Instance
	workers int
	passes  int

	// Per-level wiring (set by attach).
	g       *Graph
	pin     []int
	allowed [][]int

	load  []int
	bufs  [][]proposal
	props []proposal

	moves, swaps, totalPasses int
}

func newRefiner(in *Instance, workers, passes int) *refiner {
	return &refiner{
		in:      in,
		workers: workers,
		passes:  passes,
		load:    make([]int, in.M()),
		bufs:    make([][]proposal, workers),
	}
}

// attach points the refiner at one hierarchy level.
func (r *refiner) attach(lv *level) {
	r.g = lv.g
	r.pin = lv.pin
	r.allowed = lv.allowed
}

// refine improves pl in place with up to r.passes proposal/commit sweeps,
// stopping early when a sweep applies nothing.
func (r *refiner) refine(pl []int) {
	for i := range r.load {
		r.load[i] = 0
	}
	for v, s := range pl {
		r.load[s] += r.g.weight[v]
	}
	for pass := 0; pass < r.passes; pass++ {
		// Deltas are exact per proposal but the commit accumulates them
		// incrementally; re-anchor the tolerance on the true objective
		// each pass so FP drift cannot masquerade as improvement.
		tol := refineTol(r.in.cost(r.g, pl))
		r.propose(pl, tol)
		if r.commit(pl, tol) == 0 {
			break
		}
		r.totalPasses++
	}
}

// propose fans the proposal scan out over contiguous vertex ranges.
func (r *refiner) propose(pl []int, tol units.Cost) {
	n := r.g.n
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		r.bufs[0] = r.proposeRange(pl, 0, n, tol, r.bufs[0][:0])
		r.props = r.props[:0]
		r.props = append(r.props, r.bufs[0]...)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			r.bufs[w] = r.proposeRange(pl, lo, hi, tol, r.bufs[w][:0])
		}(w)
	}
	wg.Wait()
	r.props = r.props[:0]
	for w := 0; w < workers; w++ {
		r.props = append(r.props, r.bufs[w]...)
	}
}

// proposeRange is the refinement inner loop: for every unpinned vertex in
// [lo, hi) it evaluates all admissible site moves and neighbor swaps
// against the snapshot and records the best one if it clears the
// tolerance. All evaluation is O(degree) arithmetic over the CSR arrays;
// the buffer is reset to [:0] by the caller each pass, so steady-state
// passes do not allocate — BenchmarkRefineMove* and the bench-alloc gate
// measure exactly this path.
//
//geolint:allocfree
func (r *refiner) proposeRange(pl []int, lo, hi int, tol units.Cost, buf []proposal) []proposal {
	for v := lo; v < hi; v++ {
		if r.pin[v] >= 0 {
			continue
		}
		p, ok := r.bestStep(pl, v, tol)
		if ok {
			//geolint:allocsite amortized: the proposal buffer is reset to [:0] per pass, so growth converges to the per-pass high-water mark
			buf = append(buf, p)
		}
	}
	return buf
}

// bestStep returns v's best admissible step against the snapshot: the
// minimum-delta choice over all site moves (sites ascending) and all
// neighbor swaps (peers ascending), strict improvement only. The scan
// order plus strict < make the winner independent of evaluation order.
//
//geolint:allocfree
func (r *refiner) bestStep(pl []int, v int, tol units.Cost) (proposal, bool) {
	g := r.g
	sv := pl[v]
	w := g.weight[v]
	best := proposal{delta: -tol, v: v, peer: -1, site: -1}
	found := false
	for s := 0; s < r.in.M(); s++ {
		if s == sv || !allowedOn(-1, r.allowed[v], s) {
			continue
		}
		if r.load[s]+w > r.in.Capacity[s] {
			continue
		}
		d := r.moveDelta(pl, v, s)
		if d < best.delta {
			best.delta = d
			best.peer = -1
			best.site = s
			found = true
		}
	}
	for e := g.outIdx[v]; e < g.outIdx[v+1]; e++ {
		if d, ok := r.trySwap(pl, v, g.outPeer[e], best.delta); ok {
			best.delta = d
			best.peer = g.outPeer[e]
			best.site = -1
			found = true
		}
	}
	for e := g.inIdx[v]; e < g.inIdx[v+1]; e++ {
		if d, ok := r.trySwap(pl, v, g.inPeer[e], best.delta); ok {
			best.delta = d
			best.peer = g.inPeer[e]
			best.site = -1
			found = true
		}
	}
	return best, found
}

// trySwap evaluates the swap of v and u if it is admissible and beats the
// current bound.
//
//geolint:allocfree
func (r *refiner) trySwap(pl []int, v, u int, bound units.Cost) (units.Cost, bool) {
	if r.pin[u] >= 0 || pl[u] == pl[v] {
		return 0, false
	}
	sv, su := pl[v], pl[u]
	if !allowedOn(-1, r.allowed[v], su) || !allowedOn(-1, r.allowed[u], sv) {
		return 0, false
	}
	g := r.g
	wv, wu := g.weight[v], g.weight[u]
	if wv != wu {
		if r.load[sv]-wv+wu > r.in.Capacity[sv] || r.load[su]-wu+wv > r.in.Capacity[su] {
			return 0, false
		}
	}
	d := r.swapDelta(pl, v, u)
	if d < bound {
		return d, true
	}
	return 0, false
}

// moveDelta is the objective change of moving v to site s: its incident
// directed edges re-priced at the new site pair, plus its absorbed
// intra-vertex traffic re-priced at the new intra-site rate. O(degree).
//
//geolint:allocfree
func (r *refiner) moveDelta(pl []int, v, s int) units.Cost {
	g := r.g
	sv := pl[v]
	var d units.Cost
	for e := g.outIdx[v]; e < g.outIdx[v+1]; e++ {
		su := pl[g.outPeer[e]]
		d += r.in.linkCost(s, su, g.outVol[e], g.outMsgs[e]) - r.in.linkCost(sv, su, g.outVol[e], g.outMsgs[e])
	}
	for e := g.inIdx[v]; e < g.inIdx[v+1]; e++ {
		su := pl[g.inPeer[e]]
		d += r.in.linkCost(su, s, g.inVol[e], g.inMsgs[e]) - r.in.linkCost(su, sv, g.inVol[e], g.inMsgs[e])
	}
	if g.selfVol[v] != 0 || g.selfMsgs[v] != 0 {
		d += r.in.linkCost(s, s, g.selfVol[v], g.selfMsgs[v]) - r.in.linkCost(sv, sv, g.selfVol[v], g.selfMsgs[v])
	}
	return d
}

// swapSite is the post-swap site of vertex j when v and u trade places.
//
//geolint:allocfree
func swapSite(pl []int, j, v, u, sv, su int) int {
	switch j {
	case v:
		return su
	case u:
		return sv
	default:
		return pl[j]
	}
}

// swapDelta is the objective change of exchanging the sites of v and u,
// computed over their incident edges exactly like core.exchangeDelta: v's
// edges fully, u's edges excluding the shared (u, v) pair already counted.
//
//geolint:allocfree
func (r *refiner) swapDelta(pl []int, v, u int) units.Cost {
	g := r.g
	sv, su := pl[v], pl[u]
	var d units.Cost
	for e := g.outIdx[v]; e < g.outIdx[v+1]; e++ {
		j := g.outPeer[e]
		d += r.in.linkCost(su, swapSite(pl, j, v, u, sv, su), g.outVol[e], g.outMsgs[e]) -
			r.in.linkCost(sv, pl[j], g.outVol[e], g.outMsgs[e])
	}
	for e := g.inIdx[v]; e < g.inIdx[v+1]; e++ {
		j := g.inPeer[e]
		d += r.in.linkCost(swapSite(pl, j, v, u, sv, su), su, g.inVol[e], g.inMsgs[e]) -
			r.in.linkCost(pl[j], sv, g.inVol[e], g.inMsgs[e])
	}
	for e := g.outIdx[u]; e < g.outIdx[u+1]; e++ {
		j := g.outPeer[e]
		if j == v {
			continue
		}
		d += r.in.linkCost(sv, swapSite(pl, j, v, u, sv, su), g.outVol[e], g.outMsgs[e]) -
			r.in.linkCost(su, pl[j], g.outVol[e], g.outMsgs[e])
	}
	for e := g.inIdx[u]; e < g.inIdx[u+1]; e++ {
		j := g.inPeer[e]
		if j == v {
			continue
		}
		d += r.in.linkCost(swapSite(pl, j, v, u, sv, su), sv, g.inVol[e], g.inMsgs[e]) -
			r.in.linkCost(pl[j], su, g.inVol[e], g.inMsgs[e])
	}
	if g.selfVol[v] != 0 || g.selfMsgs[v] != 0 {
		d += r.in.linkCost(su, su, g.selfVol[v], g.selfMsgs[v]) - r.in.linkCost(sv, sv, g.selfVol[v], g.selfMsgs[v])
	}
	if g.selfVol[u] != 0 || g.selfMsgs[u] != 0 {
		d += r.in.linkCost(sv, sv, g.selfVol[u], g.selfMsgs[u]) - r.in.linkCost(su, su, g.selfVol[u], g.selfMsgs[u])
	}
	return d
}

// commit applies the reduced proposals in (gain, lowest-id) order. Each
// proposal's delta is re-evaluated against the live placement — earlier
// commits may have consumed its gain or its capacity headroom — and only
// still-improving, still-feasible steps are applied. Returns the number of
// applied steps.
func (r *refiner) commit(pl []int, tol units.Cost) int {
	props := r.props
	sort.Slice(props, func(a, b int) bool {
		pa, pb := &props[a], &props[b]
		if pa.delta != pb.delta {
			return pa.delta < pb.delta
		}
		if pa.v != pb.v {
			return pa.v < pb.v
		}
		if pa.peer != pb.peer {
			return pa.peer < pb.peer
		}
		return pa.site < pb.site
	})
	applied := 0
	g := r.g
	for i := range props {
		p := &props[i]
		if p.peer < 0 {
			v, s := p.v, p.site
			sv := pl[v]
			w := g.weight[v]
			if s == sv || r.load[s]+w > r.in.Capacity[s] {
				continue
			}
			if d := r.moveDelta(pl, v, s); d < -tol {
				pl[v] = s
				r.load[sv] -= w
				r.load[s] += w
				applied++
				r.moves++
			}
			continue
		}
		v, u := p.v, p.peer
		sv, su := pl[v], pl[u]
		if sv == su {
			continue
		}
		if !allowedOn(-1, r.allowed[v], su) || !allowedOn(-1, r.allowed[u], sv) {
			continue
		}
		wv, wu := g.weight[v], g.weight[u]
		if wv != wu {
			if r.load[sv]-wv+wu > r.in.Capacity[sv] || r.load[su]-wu+wv > r.in.Capacity[su] {
				continue
			}
		}
		if d := r.swapDelta(pl, v, u); d < -tol {
			pl[v], pl[u] = su, sv
			r.load[sv] += wu - wv
			r.load[su] += wv - wu
			applied++
			r.swaps++
		}
	}
	return applied
}

// refineTol is the minimum improvement a refinement step must deliver,
// relative to the current objective — the same guard core.refineTol uses
// against FP-noise churn, with the same floor for near-zero objectives.
func refineTol(c units.Cost) units.Cost {
	m := math.Abs(c.Float())
	if m < 1 {
		m = 1
	}
	return units.Cost(m).Scale(1e-12)
}
