package multilevel

import (
	"testing"

	"geoprocmap/internal/units"
)

// benchRefiner builds a mid-size level-0 refinement state: 4096 vertices,
// 16 sites, ring+stride+random pattern — the scale the multilevel-smoke
// target solves. Returned ready to propose: loads computed, buffer at its
// high-water mark.
func benchRefiner(b *testing.B) (*refiner, []int, units.Cost) {
	b.Helper()
	in := testInstance(b, 4096, 16, false, false)
	lv := &level{g: in.G, pin: in.Pin, allowed: normalizeAllowed(in.Allowed, in.G.n)}
	r := newRefiner(in, 1, 1)
	r.attach(lv)
	pl := make([]int, in.G.N())
	for v := range pl {
		pl[v] = (v * in.M()) / in.G.N()
	}
	for v, s := range pl {
		r.load[s] += in.G.Weight(v)
	}
	tol := refineTol(in.Cost(pl))
	r.bufs[0] = r.proposeRange(pl, 0, in.G.N(), tol, r.bufs[0][:0])
	return r, pl, tol
}

var (
	benchCost  units.Cost
	benchProps int
)

// BenchmarkRefineMoveDelta is the headline ns/move figure tracked in
// results/BENCH_refine.json: one O(degree) move-delta evaluation.
func BenchmarkRefineMoveDelta(b *testing.B) {
	r, pl, _ := benchRefiner(b)
	n, m := r.g.n, r.in.M()
	b.ReportAllocs()
	b.ResetTimer()
	var acc units.Cost
	for i := 0; i < b.N; i++ {
		v := i % n
		acc += r.moveDelta(pl, v, (pl[v]+1+i%(m-1))%m)
	}
	benchCost = acc
}

// BenchmarkRefineMoveSwap is one O(degree) swap-delta evaluation.
func BenchmarkRefineMoveSwap(b *testing.B) {
	r, pl, _ := benchRefiner(b)
	n := r.g.n
	b.ReportAllocs()
	b.ResetTimer()
	var acc units.Cost
	for i := 0; i < b.N; i++ {
		v := i % n
		acc += r.swapDelta(pl, v, (v+n/2)%n)
	}
	benchCost = acc
}

// BenchmarkRefineMoveBestStep is one full per-vertex candidate scan: every
// admissible site move plus every neighbor swap.
func BenchmarkRefineMoveBestStep(b *testing.B) {
	r, pl, tol := benchRefiner(b)
	n := r.g.n
	b.ReportAllocs()
	b.ResetTimer()
	var acc units.Cost
	for i := 0; i < b.N; i++ {
		p, ok := r.bestStep(pl, i%n, tol)
		if ok {
			acc += p.delta
		}
	}
	benchCost = acc
}

// BenchmarkRefineMoveProposeSweep is one whole proposal sweep over the
// 4096-vertex graph (divide ns/op by 4096 for the per-vertex figure).
func BenchmarkRefineMoveProposeSweep(b *testing.B) {
	r, pl, tol := benchRefiner(b)
	n := r.g.n
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.bufs[0] = r.proposeRange(pl, 0, n, tol, r.bufs[0][:0])
	}
	benchProps = len(r.bufs[0])
}

// BenchmarkAllocRefinePropose gates the refinement inner loop in the
// bench-alloc zero-allocation check, alongside the other
// //geolint:allocfree roots.
func BenchmarkAllocRefinePropose(b *testing.B) {
	r, pl, tol := benchRefiner(b)
	n := r.g.n
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.bufs[0] = r.proposeRange(pl, 0, n, tol, r.bufs[0][:0])
	}
	benchProps = len(r.bufs[0])
}
