package multilevel

import (
	"math"
	"runtime"
	"testing"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
)

// testInstance builds a deterministic synthetic instance: a ring plus
// stride and butterfly edges (clustered structure coarsening can exploit),
// distance-shaped LT/BT over m sites, even capacities with slack, optional
// pins (every 7th vertex) and multi-site restrictions (every 5th vertex).
func testInstance(t testing.TB, n, m int, pins, siteSets bool) *Instance {
	t.Helper()
	g := comm.NewGraph(n)
	rng := stats.NewRand(7)
	for i := 0; i < n; i++ {
		g.AddTraffic(i, (i+1)%n, 4096, 8)
		if n >= 8 {
			g.AddTraffic(i, (i+n/4)%n, 1024, 2)
		}
		if rng.Intn(4) == 0 {
			g.AddTraffic(i, rng.Intn(n), 512, 1)
		}
	}
	lt := mat.NewSquare(m)
	bt := mat.NewSquare(m)
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if k == l {
				lt.Set(k, l, 0.0001)
				bt.Set(k, l, 1e9)
				continue
			}
			d := float64(k - l)
			if d < 0 {
				d = -d
			}
			lt.Set(k, l, 0.001+0.0005*d)
			bt.Set(k, l, 2e8/(1+d))
		}
	}
	capacity := make([]int, m)
	for j := range capacity {
		capacity[j] = (n+m-1)/m + 2
	}
	pin := make([]int, n)
	pinned := make([]int, m)
	for i := range pin {
		pin[i] = -1
		if pins && i%7 == 0 && pinned[i%m] < capacity[i%m] {
			pin[i] = i % m
			pinned[i%m]++
		}
	}
	var allowed [][]int
	if siteSets {
		allowed = make([][]int, n)
		for i := range allowed {
			if pin[i] < 0 && i%5 == 0 {
				allowed[i] = []int{i % m, (i + 1) % m}
			}
		}
	}
	// Contiguous site groups stand in for the K-means clustering (the
	// solver treats groups as opaque).
	k := 4
	if k > m {
		k = m
	}
	groups := make([][]int, k)
	for s := 0; s < m; s++ {
		gi := s * k / m
		groups[gi] = append(groups[gi], s)
	}
	return &Instance{
		G:        FromComm(g),
		LT:       lt,
		BT:       bt,
		Capacity: capacity,
		Pin:      pin,
		Allowed:  allowed,
		Groups:   groups,
	}
}

func TestFromCommPreservesTotals(t *testing.T) {
	in := testInstance(t, 64, 4, false, false)
	if in.G.TotalWeight() != 64 {
		t.Fatalf("total weight %d, want 64", in.G.TotalWeight())
	}
	for v := 0; v < in.G.N(); v++ {
		if in.G.Weight(v) != 1 {
			t.Fatalf("level-0 vertex %d has weight %d", v, in.G.Weight(v))
		}
	}
}

// hierarchyFor exposes the coarsening ladder the solver would build.
func hierarchyFor(in *Instance, n, m int) hierarchy {
	opt := Options{}.withDefaults(n, m)
	return coarsen(in, opt.CoarsestVertices, opt.MaxWeight, opt.MaxLevels)
}

func TestCoarsenConservesVolume(t *testing.T) {
	in := testInstance(t, 512, 8, true, true)
	h := hierarchyFor(in, 512, 8)
	if len(h) < 2 {
		t.Fatalf("expected at least 2 levels, got %d", len(h))
	}
	vol0, msgs0, w0 := h[0].g.TotalVolume(), h[0].g.TotalMsgs(), h[0].g.TotalWeight()
	for l, lv := range h {
		if got := lv.g.TotalWeight(); got != w0 {
			t.Errorf("level %d total weight %d, want %d", l, got, w0)
		}
		if got := lv.g.TotalVolume(); math.Abs(got-vol0) > 1e-6*vol0 {
			t.Errorf("level %d total volume %g, want %g", l, got, vol0)
		}
		if got := lv.g.TotalMsgs(); math.Abs(got-msgs0) > 1e-6*msgs0 {
			t.Errorf("level %d total msgs %g, want %g", l, got, msgs0)
		}
	}
}

func TestCoarsenRespectsConstraints(t *testing.T) {
	n, m := 512, 8
	in := testInstance(t, n, m, true, true)
	opt := Options{}.withDefaults(n, m)
	h := coarsen(in, opt.CoarsestVertices, opt.MaxWeight, opt.MaxLevels)
	for l := 0; l+1 < len(h); l++ {
		fine, coarse := h[l], h[l+1]
		for v := 0; v < fine.g.n; v++ {
			c := fine.toCoarse[v]
			if fine.pin[v] != coarse.pin[c] {
				t.Fatalf("level %d vertex %d pin %d became %d after contraction", l, v, fine.pin[v], coarse.pin[c])
			}
			// The coarse allowed set must be at least as restrictive:
			// every coarse-admissible site is fine-admissible.
			for s := 0; s < m; s++ {
				if allowedOn(coarse.pin[c], coarse.allowed[c], s) && !allowedOn(fine.pin[v], fine.allowed[v], s) {
					t.Fatalf("level %d vertex %d: contraction widened admissibility to site %d", l, v, s)
				}
			}
		}
		for c := 0; c < coarse.g.n; c++ {
			if coarse.g.weight[c] > opt.MaxWeight && coarse.g.weight[c] > 2 {
				t.Fatalf("level %d coarse vertex %d weight %d exceeds max %d", l+1, c, coarse.g.weight[c], opt.MaxWeight)
			}
			if p := coarse.pin[c]; p >= 0 && coarse.g.weight[c] > in.Capacity[p] {
				t.Fatalf("pinned coarse vertex %d weight %d exceeds capacity of site %d", c, coarse.g.weight[c], p)
			}
		}
	}
}

// checkFeasible asserts a level-0 placement satisfies capacities, pins and
// allowed sets.
func checkFeasible(t *testing.T, in *Instance, pl []int) {
	t.Helper()
	load := make([]int, in.M())
	for v, s := range pl {
		if s < 0 || s >= in.M() {
			t.Fatalf("vertex %d placed at invalid site %d", v, s)
		}
		load[s] += in.G.Weight(v)
		if p := in.Pin[v]; p >= 0 && s != p {
			t.Fatalf("vertex %d placed at %d, pinned to %d", v, s, p)
		}
		if len(in.Allowed) > 0 && !allowedOn(in.Pin[v], in.Allowed[v], s) {
			t.Fatalf("vertex %d placed at %d, allowed only %v", v, s, in.Allowed[v])
		}
	}
	for j, l := range load {
		if l > in.Capacity[j] {
			t.Fatalf("site %d load %d exceeds capacity %d", j, l, in.Capacity[j])
		}
	}
}

// projectedFeasible asserts that every intermediate level's placement,
// projected down to level 0, is feasible — the coarsening invariant the
// ISSUE requires.
func TestProjectionNeverViolatesConstraints(t *testing.T) {
	n, m := 512, 8
	in := testInstance(t, n, m, true, true)
	h := hierarchyFor(in, n, m)
	// Mirror Solve's ladder: map at the coarsest level that admits a
	// feasible fill.
	li := len(h) - 1
	var pl []int
	for {
		var err error
		pl, err = newInitialMapper(in, h[li], 720).run()
		if err == nil {
			break
		}
		if li == 0 {
			t.Fatalf("initial map failed at every level: %v", err)
		}
		li--
	}
	if li == 0 {
		t.Skip("initial map only feasible at level 0; no projection to check")
	}
	for l := li; l > 0; l-- {
		// Check the coarse placement's feasibility at its own level.
		lv := h[l]
		load := make([]int, m)
		for v, s := range pl {
			load[s] += lv.g.weight[v]
			if p := lv.pin[v]; p >= 0 && s != p {
				t.Fatalf("level %d vertex %d placed at %d, pinned to %d", l, v, s, p)
			}
			if !allowedOn(lv.pin[v], lv.allowed[v], s) {
				t.Fatalf("level %d vertex %d placed at inadmissible site %d", l, v, s)
			}
		}
		for j, ld := range load {
			if ld > in.Capacity[j] {
				t.Fatalf("level %d site %d load %d exceeds capacity %d", l, j, ld, in.Capacity[j])
			}
		}
		pl = project(h[l-1], pl)
	}
	checkFeasible(t, in, pl)
}

func TestSolveFeasible(t *testing.T) {
	for _, tc := range []struct {
		name           string
		pins, siteSets bool
	}{
		{"plain", false, false},
		{"pins", true, false},
		{"pins+sets", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := testInstance(t, 600, 8, tc.pins, tc.siteSets)
			pl, st, err := Solve(in, Options{Workers: 1})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if st.Levels < 2 {
				t.Errorf("expected a real hierarchy, got %d levels", st.Levels)
			}
			checkFeasible(t, in, pl)
		})
	}
}

func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	in := testInstance(t, 600, 8, true, true)
	base, _, err := Solve(in, Options{Workers: 1})
	if err != nil {
		t.Fatalf("Solve(workers=1): %v", err)
	}
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		pl, _, err := Solve(in, Options{Workers: w})
		if err != nil {
			t.Fatalf("Solve(workers=%d): %v", w, err)
		}
		if len(pl) != len(base) {
			t.Fatalf("workers=%d: placement length %d, want %d", w, len(pl), len(base))
		}
		for v := range pl {
			if pl[v] != base[v] {
				t.Fatalf("workers=%d: placement diverges at vertex %d (%d vs %d)", w, v, pl[v], base[v])
			}
		}
		if c1, c2 := in.Cost(base), in.Cost(pl); math.Float64bits(c1.Float()) != math.Float64bits(c2.Float()) {
			t.Fatalf("workers=%d: cost differs bitwise (%v vs %v)", w, c1, c2)
		}
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	in := testInstance(t, 256, 8, false, false)
	n, m := in.G.N(), in.M()
	pl := make([]int, n)
	for v := range pl {
		pl[v] = (v * m) / n // contiguous blocks, trivially feasible
	}
	before := in.Cost(pl)
	if err := Refine(in, pl, Options{Workers: 2}); err != nil {
		t.Fatalf("Refine: %v", err)
	}
	after := in.Cost(pl)
	if after > before {
		t.Fatalf("refinement worsened cost: %v -> %v", before, after)
	}
	checkFeasible(t, in, pl)
}

func TestSolveImprovesOnRoundRobin(t *testing.T) {
	in := testInstance(t, 512, 8, false, false)
	pl, _, err := Solve(in, Options{Workers: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	rr := make([]int, in.G.N())
	for v := range rr {
		rr[v] = v % in.M() // scatter the ring across all sites
	}
	if got, naive := in.Cost(pl), in.Cost(rr); got >= naive {
		t.Fatalf("multilevel cost %v not better than round-robin %v", got, naive)
	}
}

func TestProposeRangeDoesNotAllocate(t *testing.T) {
	in := testInstance(t, 256, 8, false, false)
	lv := &level{g: in.G, pin: in.Pin, allowed: normalizeAllowed(in.Allowed, in.G.n)}
	r := newRefiner(in, 1, 1)
	r.attach(lv)
	pl := make([]int, in.G.N())
	for v := range pl {
		pl[v] = (v * in.M()) / in.G.N()
	}
	for i := range r.load {
		r.load[i] = 0
	}
	for v, s := range pl {
		r.load[s] += in.G.Weight(v)
	}
	tol := refineTol(in.Cost(pl))
	// Grow the buffer to its high-water mark before measuring.
	r.bufs[0] = r.proposeRange(pl, 0, in.G.N(), tol, r.bufs[0][:0])
	allocs := testing.AllocsPerRun(50, func() {
		r.bufs[0] = r.proposeRange(pl, 0, in.G.N(), tol, r.bufs[0][:0])
	})
	if allocs != 0 {
		t.Fatalf("proposeRange allocates %.1f times per sweep, want 0", allocs)
	}
}
