package apps

import (
	"fmt"

	"geoprocmap/internal/mpi"
)

// This file provides each workload as a runnable mpi.Program — an actual
// rank program executing on the virtual-MPI runtime — alongside the trace
// generators. The two forms are kept equivalent: for every workload the
// program's recorded communication graph is identical to the generator's
// (asserted by TestProgramsMatchGenerators), so profiling a *run* yields
// the same mapping problem as static generation, exactly the property the
// paper's CYPRESS pipeline relies on.
//
// Rendezvous semantics shape the implementations: wavefronts recv-before-
// send along the dependency DAG, symmetric exchanges use parity-ordered
// SendRecv (requiring even grid sides), and the irregular K-means shuffle
// is serialized by sender rank.

// ProgramFor returns the runnable equivalent of a workload for the given
// iteration count, or an error for apps without one.
func ProgramFor(a App, iters int) (mpi.Program, error) {
	if iters < 1 {
		return nil, fmt.Errorf("apps: program needs at least 1 iteration")
	}
	switch app := a.(type) {
	case *npb:
		return app.program(iters), nil
	case *KMeans:
		return app.program(iters), nil
	case *DNN:
		return app.program(iters), nil
	case *CG:
		return app.program(iters), nil
	case *MG:
		return app.program(iters), nil
	default:
		return nil, fmt.Errorf("apps: no program for %s", a.Name())
	}
}

// program renders an NPB kernel as a rank program.
func (a *npb) program(iters int) mpi.Program {
	return func(c *mpiComm) error {
		n := c.Size()
		rows, cols := gridDims(n)
		row, col := c.Rank()/cols, c.Rank()%cols
		rank := func(r, co int) int { return r*cols + co }
		if a.wraparound && (rows%2 != 0 && rows > 1 || cols%2 != 0 && cols > 1) {
			return fmt.Errorf("apps: %s program needs even grid sides, got %d×%d", a.name, rows, cols)
		}
		for it := 0; it < iters; it++ {
			if err := c.Compute(a.ComputeTime(n)); err != nil {
				return err
			}
			if a.wraparound {
				// Periodic face exchange, parity-ordered along each ring.
				if cols > 1 {
					east := rank(row, (col+1)%cols)
					west := rank(row, (col-1+cols)%cols)
					if err := exchange(c, east, west, col%2 == 0, a.eastBytes, TagFaceExchange); err != nil {
						return err
					}
				}
				if rows > 1 {
					south := rank((row+1)%rows, col)
					north := rank((row-1+rows)%rows, col)
					if err := exchange(c, south, north, row%2 == 0, a.southBytes, TagFaceExchange); err != nil {
						return err
					}
				}
				continue
			}
			// LU forward wavefront: recv from west/north, send east/south.
			if col > 0 {
				if err := c.Recv(rank(row, col-1), TagForwardSweep); err != nil {
					return err
				}
			}
			if row > 0 {
				if err := c.Recv(rank(row-1, col), TagForwardSweep); err != nil {
					return err
				}
			}
			if col+1 < cols {
				if err := c.Send(rank(row, col+1), a.eastBytes, TagForwardSweep); err != nil {
					return err
				}
			}
			if row+1 < rows {
				if err := c.Send(rank(row+1, col), a.southBytes, TagForwardSweep); err != nil {
					return err
				}
			}
			// Backward wavefront: recv from east/south, send west/north.
			if col+1 < cols {
				if err := c.Recv(rank(row, col+1), TagBackwardSweep); err != nil {
					return err
				}
			}
			if row+1 < rows {
				if err := c.Recv(rank(row+1, col), TagBackwardSweep); err != nil {
					return err
				}
			}
			if col > 0 {
				if err := c.Send(rank(row, col-1), a.eastBytes, TagBackwardSweep); err != nil {
					return err
				}
			}
			if row > 0 {
				if err := c.Send(rank(row-1, col), a.southBytes, TagBackwardSweep); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// mpiComm aliases the runtime handle so program bodies read naturally.
type mpiComm = mpi.Comm

// exchange swaps fixed-size messages with two ring neighbors (ahead and
// behind), sending first when first is true — the parity ordering that
// keeps rendezvous rings deadlock-free.
func exchange(c *mpiComm, ahead, behind int, first bool, bytes int64, tag int) error {
	if ahead == c.Rank() || behind == c.Rank() {
		return nil // degenerate ring of size 1
	}
	if first {
		if err := c.Send(ahead, bytes, tag); err != nil {
			return err
		}
		if err := c.Recv(ahead, tag); err != nil {
			return err
		}
		if err := c.Send(behind, bytes, tag); err != nil {
			return err
		}
		return c.Recv(behind, tag)
	}
	if err := c.Recv(behind, tag); err != nil {
		return err
	}
	if err := c.Send(behind, bytes, tag); err != nil {
		return err
	}
	if err := c.Recv(ahead, tag); err != nil {
		return err
	}
	return c.Send(ahead, bytes, tag)
}

// program renders parallel K-means as a rank program: recursive-doubling
// allreduce of the centroid block plus the skewed boundary shuffle.
func (k *KMeans) program(iters int) mpi.Program {
	return func(c *mpiComm) error {
		n := c.Size()
		me := c.Rank()
		block := k.blockBytes()
		pow := 1
		for pow*2 <= n {
			pow *= 2
		}
		for it := 0; it < iters; it++ {
			if err := c.Compute(k.ComputeTime(n)); err != nil {
				return err
			}
			// Fold extras onto the power-of-two core.
			if me >= pow {
				if err := c.Send(me-pow, block, TagReduce); err != nil {
					return err
				}
			} else if me+pow < n {
				if err := c.Recv(me+pow, TagReduce); err != nil {
					return err
				}
			}
			// Butterfly within the core.
			if me < pow {
				for span := 1; span < pow; span *= 2 {
					if err := c.SendRecv(me^span, block, TagReduce); err != nil {
						return err
					}
				}
			}
			// Unfold.
			if me >= pow {
				if err := c.Recv(me-pow, TagBroadcast); err != nil {
					return err
				}
			} else if me+pow < n {
				if err := c.Send(me+pow, block, TagBroadcast); err != nil {
					return err
				}
			}
			// Skewed boundary shuffle, serialized by sender rank so the
			// rendezvous sends always find posted receives.
			for sender := 0; sender < n; sender++ {
				vol := int64(float64(block) * skew(sender))
				for _, stride := range [2]int{17, 41} {
					partner := (sender*stride + 3) % n
					if partner == sender {
						continue
					}
					switch me {
					case sender:
						if err := c.Send(partner, vol, TagShuffle); err != nil {
							return err
						}
					case partner:
						if err := c.Recv(sender, TagShuffle); err != nil {
							return err
						}
					}
				}
			}
		}
		return nil
	}
}

// program renders DNN training as a rank program: local epochs with a
// binomial model reduction and broadcast — the runtime's tree collectives
// produce exactly the generator's edges.
func (d *DNN) program(iters int) mpi.Program {
	return func(c *mpiComm) error {
		for it := 0; it < iters; it++ {
			if err := c.Compute(d.ComputeTime(c.Size())); err != nil {
				return err
			}
			if err := c.Reduce(0, d.ModelBytes, TagReduce); err != nil {
				return err
			}
			if err := c.Bcast(0, d.ModelBytes, TagBroadcast); err != nil {
				return err
			}
		}
		return nil
	}
}

// program renders CG as a rank program. It requires a square grid with
// power-of-two sides (the NPB kernel's own constraint) so both the
// transpose pairing and the row-reduction pairing are involutions.
func (g *CG) program(iters int) mpi.Program {
	return func(c *mpiComm) error {
		n := c.Size()
		rows, cols := gridDims(n)
		if rows != cols {
			return fmt.Errorf("apps: CG program needs a square grid, got %d×%d", rows, cols)
		}
		if cols&(cols-1) != 0 {
			return fmt.Errorf("apps: CG program needs power-of-two grid sides, got %d", cols)
		}
		row, col := c.Rank()/cols, c.Rank()%cols
		rank := func(r, co int) int { return r*cols + co }
		transpose := rank(col, row)
		for it := 0; it < iters; it++ {
			if err := c.Compute(g.ComputeTime(n)); err != nil {
				return err
			}
			if transpose != c.Rank() {
				if err := c.SendRecv(transpose, g.SegmentBytes, TagFaceExchange); err != nil {
					return err
				}
			}
			for span := 1; span < cols; span *= 2 {
				partner := rank(row, col^span)
				if err := c.SendRecv(partner, g.ReduceBytes, TagReduce); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// program renders MG as a rank program: red-black halo exchanges at each
// V-cycle level (pairs with an even block index exchange first, then the
// odd ones), which keeps the rendezvous chain deadlock-free.
func (m *MG) program(iters int) mpi.Program {
	return func(c *mpiComm) error {
		n := c.Size()
		me := c.Rank()
		for it := 0; it < iters; it++ {
			if err := c.Compute(m.ComputeTime(n)); err != nil {
				return err
			}
			for _, level := range m.cycle(n) {
				stride := 1 << uint(level)
				bytes := m.FineBytes >> uint(level)
				if bytes < 1024 {
					bytes = 1024
				}
				for phase := 0; phase < 2; phase++ {
					// In this phase, pairs (i, i+stride) with block parity
					// (i/stride)%2 == phase exchange.
					switch {
					case (me/stride)%2 == phase && me+stride < n:
						if err := c.SendRecv(me+stride, bytes, TagFaceExchange); err != nil {
							return err
						}
					case me >= stride && ((me-stride)/stride)%2 == phase:
						if err := c.SendRecv(me-stride, bytes, TagFaceExchange); err != nil {
							return err
						}
					}
				}
			}
		}
		return nil
	}
}
