package apps

import (
	"fmt"

	"geoprocmap/internal/trace"
)

// CG is the NPB Conjugate Gradient kernel, provided as an extension beyond
// the paper's five workloads. Its communication is distinctive: processes
// form a 2-D grid over the sparse matrix, and every iteration combines
//
//  1. row-wise recursive-halving reductions of partial dot products
//     (log₂ cols messages per process along its grid row), and
//  2. an exchange of the full vector segment with the *transpose* process
//     — a long-range partner that neither near-diagonal heuristics nor
//     butterfly-block packings handle naturally.
//
// CLASS C at 64 processes moves ~75000-row segments (≈75 KB doubles per
// exchange); the reduction messages are small.
type CG struct {
	// SegmentBytes is the vector-segment exchange size at reference scale.
	SegmentBytes int64
	// ReduceBytes is the per-message dot-product reduction size.
	ReduceBytes int64
	iters       int
}

// NewCG returns the workload with CLASS C-flavored defaults.
func NewCG() App { return &CG{SegmentBytes: 75 << 10, ReduceBytes: 8 << 10, iters: 20} }

// Name implements App.
func (c *CG) Name() string { return "CG" }

// DefaultIters implements App.
func (c *CG) DefaultIters() int { return c.iters }

// ComputeTime implements App: SpMV work strong-scales with the process
// count.
func (c *CG) ComputeTime(n int) float64 {
	if n <= 0 {
		return 0
	}
	return 15.0 / float64(n)
}

// Trace implements App.
func (c *CG) Trace(n, iters int) (*trace.Recorder, error) {
	if n < 2 {
		return nil, fmt.Errorf("apps: CG needs at least 2 processes, got %d", n)
	}
	if iters < 1 {
		return nil, fmt.Errorf("apps: CG needs at least 1 iteration, got %d", iters)
	}
	rows, cols := gridDims(n)
	r := trace.NewRecorder(n)
	rank := func(row, col int) int { return row*cols + col }
	for it := 0; it < iters; it++ {
		// Transpose exchange: the partner of (row, col) is the process
		// holding the transposed block. On non-square grids, mirror the
		// column within the row pairing rows by reflection.
		for row := 0; row < rows; row++ {
			for col := 0; col < cols; col++ {
				src := rank(row, col)
				pr := col % rows
				pc := row
				if pc >= cols {
					pc = pc % cols
				}
				dst := rank(pr, pc)
				if dst != src {
					r.MustSend(src, dst, c.SegmentBytes, TagFaceExchange)
				}
			}
		}
		// Row-wise recursive halving for the two dot products per
		// iteration: partners at XOR distances within the row.
		for row := 0; row < rows; row++ {
			for span := 1; span < cols; span *= 2 {
				for col := 0; col < cols; col++ {
					partner := col ^ span
					if partner < cols {
						r.MustSend(rank(row, col), rank(row, partner), c.ReduceBytes, TagReduce)
					}
				}
			}
		}
	}
	return r, nil
}
