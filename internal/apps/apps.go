// Package apps generates the communication patterns of the paper's five
// evaluation workloads (Section 5.1): the NPB 2.4 pseudo-applications LU,
// BT and SP (CLASS C), parallel K-means clustering, and a DNN trained with
// parallel stochastic gradient descent.
//
// The paper obtains each application's CG/AG matrices by profiling real
// runs with CYPRESS; here each workload is a generator that replays the
// application's communication structure into a trace.Recorder (the
// virtual-MPI substitute), from which the same matrices are aggregated.
// The generators reproduce the Figure 3 characteristics the paper calls
// out:
//
//   - LU, BT, SP: near-diagonal matrices from 2-D process-grid neighbor
//     exchanges ("process 1 only communicates with processes 2 and 8 for
//     LU. There are only two types of message sizes, namely 43KB and
//     83KB").
//   - K-means: a complex, non-local pattern (recursive-doubling allreduce
//     of the centroid set every iteration).
//   - DNN: a small total message volume (workers compute independently and
//     average models over a binomial tree), so the application is
//     computation-bound.
//
// Every generator also models per-iteration local (computation + I/O) time,
// which the end-to-end simulation of Figure 5 combines with communication
// time; the communication-only experiments (Figure 6 onward) ignore it.
package apps

import (
	"fmt"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/trace"
)

// App is one evaluation workload.
type App interface {
	// Name is the label used in the paper's figures.
	Name() string
	// Trace replays iters iterations of the workload on n processes and
	// returns the recorded message stream.
	Trace(n, iters int) (*trace.Recorder, error)
	// DefaultIters is the iteration count used by the experiments.
	DefaultIters() int
	// ComputeTime returns the local (computation + I/O) seconds one
	// process spends per iteration when run on n processes.
	ComputeTime(n int) float64
}

// Graph profiles an app and aggregates its CG/AG communication pattern.
func Graph(a App, n, iters int) (*comm.Graph, error) {
	r, err := a.Trace(n, iters)
	if err != nil {
		return nil, err
	}
	return r.Graph(), nil
}

// All returns the five paper workloads with their default parameters, in
// the order the paper's figures list them.
func All() []App {
	return []App{NewLU(), NewSP(), NewBT(), NewKMeans(), NewDNN()}
}

// Extended returns the paper workloads plus this reproduction's extras
// (NPB CG and MG).
func Extended() []App {
	return append(All(), NewCG(), NewMG())
}

// ByName returns the workload with the given name (as reported by Name),
// searching the extended catalog.
func ByName(name string) (App, error) {
	for _, a := range Extended() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// gridDims returns the most-square rows×cols factorization of n with
// rows ≤ cols, matching how the NPB kernels arrange their process grids.
func gridDims(n int) (rows, cols int) {
	for r := isqrt(n); r >= 1; r-- {
		if n%r == 0 {
			return r, n / r
		}
	}
	return 1, n
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
