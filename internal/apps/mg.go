package apps

import (
	"fmt"

	"geoprocmap/internal/trace"
)

// MG is the NPB Multigrid kernel, a second extension workload. Its
// signature is *hierarchical* neighbor exchange: every V-cycle touches a
// pyramid of grids, and at each level ℓ a process exchanges halo faces
// with neighbors at rank stride 2^ℓ — so unlike LU's single-stride
// diagonal, MG's matrix carries bands at several powers-of-two offsets,
// with message sizes shrinking as the grid coarsens.
type MG struct {
	// FineBytes is the halo size on the finest level; level ℓ moves
	// FineBytes / 2^ℓ (coarser grids have smaller faces).
	FineBytes int64
	// Levels caps the V-cycle depth (further limited by the grid size).
	Levels int
	iters  int
}

// NewMG returns the workload with CLASS C-flavored defaults: 128 KB fine
// halos over 4 levels.
func NewMG() App { return &MG{FineBytes: 128 << 10, Levels: 4, iters: 20} }

// Name implements App.
func (m *MG) Name() string { return "MG" }

// DefaultIters implements App.
func (m *MG) DefaultIters() int { return m.iters }

// ComputeTime implements App: smoothing work strong-scales.
func (m *MG) ComputeTime(n int) float64 {
	if n <= 0 {
		return 0
	}
	return 10.0 / float64(n)
}

// Trace implements App.
func (m *MG) Trace(n, iters int) (*trace.Recorder, error) {
	if n < 2 {
		return nil, fmt.Errorf("apps: MG needs at least 2 processes, got %d", n)
	}
	if iters < 1 {
		return nil, fmt.Errorf("apps: MG needs at least 1 iteration, got %d", iters)
	}
	r := trace.NewRecorder(n)
	for it := 0; it < iters; it++ {
		// Down-sweep then up-sweep of the V-cycle: levels 0..L-1 then back.
		for _, level := range m.cycle(n) {
			stride := 1 << uint(level)
			bytes := m.FineBytes >> uint(level)
			if bytes < 1024 {
				bytes = 1024
			}
			for i := 0; i < n; i++ {
				if i+stride < n {
					r.MustSend(i, i+stride, bytes, TagFaceExchange)
					r.MustSend(i+stride, i, bytes, TagFaceExchange)
				}
			}
		}
	}
	return r, nil
}

// cycle returns the level sequence of one V-cycle for n processes:
// 0, 1, …, L-1, L-2, …, 0 with L bounded by both Levels and log2(n).
func (m *MG) cycle(n int) []int {
	levels := m.Levels
	if levels < 1 {
		levels = 1
	}
	maxLevels := 0
	for s := 1; s < n; s *= 2 {
		maxLevels++
	}
	if levels > maxLevels {
		levels = maxLevels
	}
	var out []int
	for l := 0; l < levels; l++ {
		out = append(out, l)
	}
	for l := levels - 2; l >= 0; l-- {
		out = append(out, l)
	}
	return out
}
