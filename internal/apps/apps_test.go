package apps

import (
	"math"
	"testing"
	"testing/quick"

	"geoprocmap/internal/trace"
)

func TestGridDims(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{64, 8, 8}, {128, 8, 16}, {256, 16, 16}, {12, 3, 4}, {7, 1, 7}, {1, 1, 1},
	}
	for _, tc := range cases {
		r, c := gridDims(tc.n)
		if r != tc.rows || c != tc.cols {
			t.Errorf("gridDims(%d) = %d×%d, want %d×%d", tc.n, r, c, tc.rows, tc.cols)
		}
		if r*c != tc.n {
			t.Errorf("gridDims(%d) does not multiply back", tc.n)
		}
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() has %d apps, want 5", len(all))
	}
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name()] = true
		got, err := ByName(a.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", a.Name(), err)
		}
		if got.Name() != a.Name() {
			t.Errorf("ByName(%q) returned %q", a.Name(), got.Name())
		}
	}
	for _, want := range []string{"LU", "BT", "SP", "K-means", "DNN"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
	if _, err := ByName("HPL"); err == nil {
		t.Error("unknown app accepted")
	}
}

// The paper's Figure 3 description: on 64 processes LU's process 1
// communicates only with processes 2 and 8 (1-based), i.e. 0-based process
// 0 talks to 1 and 8, with exactly the sizes 43 KB and 83 KB.
func TestLUPaperPattern(t *testing.T) {
	g, err := Graph(NewLU(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Outgoing(0)
	if len(out) != 2 {
		t.Fatalf("LU process 0 sends to %d peers, want 2: %v", len(out), out)
	}
	if out[0].Peer != 1 || out[1].Peer != 8 {
		t.Errorf("LU process 0 peers = %d,%d, want 1,8", out[0].Peer, out[1].Peer)
	}
	sizes := map[float64]bool{}
	for i := 0; i < 64; i++ {
		for _, e := range g.Outgoing(i) {
			sizes[e.Volume/e.Msgs] = true
		}
	}
	if len(sizes) != 2 || !sizes[43*1024] || !sizes[83*1024] {
		t.Errorf("LU message sizes = %v, want exactly {43KB, 83KB}", sizes)
	}
}

func TestLUNearDiagonal(t *testing.T) {
	g, err := Graph(NewLU(), 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		for _, e := range g.Outgoing(i) {
			d := e.Peer - i
			if d != 1 && d != -1 && d != 8 && d != -8 {
				t.Fatalf("LU process %d sends to %d (offset %d), not a grid neighbor", i, e.Peer, d)
			}
		}
	}
	if g.MaxDegree() > 4 {
		t.Errorf("LU max degree %d, want ≤4", g.MaxDegree())
	}
}

func TestBTSPWraparound(t *testing.T) {
	for _, mk := range []func() App{NewBT, NewSP} {
		a := mk()
		g, err := Graph(a, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Wraparound: process 7 (row 0, col 7) exchanges with process 0.
		if g.Volume(7, 0) == 0 {
			t.Errorf("%s: no wraparound traffic 7→0", a.Name())
		}
		// Symmetric exchanges: volume i→j equals volume j→i.
		for i := 0; i < 64; i++ {
			for _, e := range g.Outgoing(i) {
				if math.Abs(g.Volume(e.Peer, i)-e.Volume) > 1e-9 {
					t.Fatalf("%s: asymmetric exchange %d↔%d", a.Name(), i, e.Peer)
				}
			}
		}
	}
}

func TestBTHeavierThanSP(t *testing.T) {
	bt, err := Graph(NewBT(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Graph(NewSP(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bt.TotalVolume() <= sp.TotalVolume() {
		t.Errorf("BT volume %v not above SP volume %v", bt.TotalVolume(), sp.TotalVolume())
	}
}

func TestKMeansButterflyPattern(t *testing.T) {
	g, err := Graph(NewKMeans(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Power-of-two n: each process talks to its log2(n) XOR partners plus
	// its hash-derived shuffle partners.
	got := map[int]bool{}
	for _, e := range g.Outgoing(0) {
		got[e.Peer] = true
	}
	for _, want := range []int{1, 2, 4, 8, 16, 32} {
		if !got[want] {
			t.Errorf("K-means process 0 missing XOR partner %d", want)
		}
	}
	if !got[3] {
		t.Error("K-means process 0 missing shuffle partner 3")
	}
	// Non-local: the pattern must include peers farther than grid distance.
	if g.Volume(0, 32) == 0 {
		t.Error("K-means lacks long-distance partner traffic")
	}
	// The shuffle is skewed: per-process volumes differ.
	if g.Volume(1, (1*17+3)%64) == g.Volume(2, (2*17+3)%64) {
		t.Error("shuffle volumes not skewed across processes")
	}
}

func TestKMeansNonPowerOfTwo(t *testing.T) {
	g, err := Graph(NewKMeans(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Folded ranks 8, 9 talk to 0, 1.
	if g.Volume(8, 0) == 0 || g.Volume(0, 8) == 0 {
		t.Error("fold/unfold traffic missing for rank 8")
	}
	if g.Volume(9, 1) == 0 {
		t.Error("fold traffic missing for rank 9")
	}
}

func TestDNNSmallVolume(t *testing.T) {
	iters := 5
	dnn, err := Graph(NewDNN(), 64, iters)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Graph(NewLU(), 64, iters)
	if err != nil {
		t.Fatal(err)
	}
	// DNN exchanges ~2·n·model per run vs LU's per-iteration sweeps; with
	// per-iteration compute factored in, DNN's comm:compute ratio must be
	// far below LU's.
	dnnRatio := dnn.TotalVolume() / (NewDNN().ComputeTime(64) * float64(iters))
	luRatio := lu.TotalVolume() / (NewLU().ComputeTime(64) * float64(iters))
	if dnnRatio >= luRatio/3 {
		t.Errorf("DNN comm:compute ratio %.3g not well below LU's %.3g", dnnRatio, luRatio)
	}
}

func TestDNNTreeStructure(t *testing.T) {
	g, err := Graph(NewDNN(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Reduce tree to rank 0: 1→0, 2→0, 4→0, 3→2, 5→4, 6→4, 7→6.
	for _, pair := range [][2]int{{1, 0}, {2, 0}, {4, 0}, {3, 2}, {5, 4}, {7, 6}} {
		if g.Volume(pair[0], pair[1]) == 0 {
			t.Errorf("missing reduce edge %d→%d", pair[0], pair[1])
		}
	}
	// Broadcast tree from rank 0: 0→4, 0→2, 0→1.
	for _, pair := range [][2]int{{0, 4}, {0, 2}, {0, 1}} {
		if g.Volume(pair[0], pair[1]) == 0 {
			t.Errorf("missing broadcast edge %d→%d", pair[0], pair[1])
		}
	}
}

func TestTraceArgErrors(t *testing.T) {
	for _, a := range All() {
		if _, err := a.Trace(1, 1); err == nil {
			t.Errorf("%s: n=1 accepted", a.Name())
		}
		if _, err := a.Trace(8, 0); err == nil {
			t.Errorf("%s: iters=0 accepted", a.Name())
		}
	}
}

func TestComputeTimes(t *testing.T) {
	for _, a := range All() {
		if a.ComputeTime(64) <= 0 {
			t.Errorf("%s: nonpositive compute time", a.Name())
		}
	}
	// Strong scaling for the HPC kernels and K-means.
	for _, name := range []string{"LU", "BT", "SP", "K-means"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.ComputeTime(128) >= a.ComputeTime(64) {
			t.Errorf("%s: compute time does not shrink with scale", name)
		}
	}
	// DNN is per-epoch constant.
	d := NewDNN()
	if d.ComputeTime(64) != d.ComputeTime(128) {
		t.Error("DNN compute time should be scale-invariant")
	}
}

func TestIterationsScaleTraffic(t *testing.T) {
	for _, a := range All() {
		one, err := Graph(a, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		three, err := Graph(a, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(three.TotalVolume()-3*one.TotalVolume()) > 1e-6 {
			t.Errorf("%s: traffic not linear in iterations", a.Name())
		}
	}
}

// The LU trace of one process must compress extremely well — its stream is
// a pure loop (this is what made CYPRESS practical for the paper).
func TestNPBTraceCompresses(t *testing.T) {
	r, err := NewLU().Trace(64, 50)
	if err != nil {
		t.Fatal(err)
	}
	c := trace.Compress(r.ProcessEvents(9)) // interior process: 4 sends/iter
	if c.Ratio() < 20 {
		t.Errorf("LU interior process trace ratio %v, want ≥20 (stream: %s)", c.Ratio(), c)
	}
}

// Property: all apps generate valid traces whose graphs have positive
// traffic and no self-edges, at arbitrary small scales.
func TestQuickAppsValidTraces(t *testing.T) {
	appsList := All()
	f := func(nRaw, itRaw, appRaw uint8) bool {
		n := int(nRaw%62) + 2
		iters := int(itRaw%3) + 1
		a := appsList[int(appRaw)%len(appsList)]
		r, err := a.Trace(n, iters)
		if err != nil {
			return false
		}
		if r.N() != n || r.Len() == 0 {
			return false
		}
		g := r.Graph()
		return g.TotalVolume() > 0 && g.TotalMsgs() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCGTransposePattern(t *testing.T) {
	g, err := Graph(NewCG(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 8×8 grid: the transpose partner of rank 1 (row 0, col 1) is rank 8
	// (row 1, col 0) — a long-range exchange.
	if g.Volume(1, 8) == 0 {
		t.Error("missing transpose exchange 1→8")
	}
	// Row-wise reductions stay within the grid row.
	for i := 0; i < 64; i++ {
		row := i / 8
		for _, e := range g.Outgoing(i) {
			if e.Volume/e.Msgs > 70*1024 {
				continue // segment exchange may leave the row
			}
			if e.Peer/8 != row {
				t.Fatalf("reduction message from %d leaves its row (→%d)", i, e.Peer)
			}
		}
	}
}

func TestCGInExtendedCatalog(t *testing.T) {
	if len(Extended()) < len(All())+1 {
		t.Fatalf("Extended has %d apps, want more than %d", len(Extended()), len(All()))
	}
	a, err := ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	if a.ComputeTime(64) <= 0 || a.DefaultIters() < 1 {
		t.Error("CG metadata invalid")
	}
	if _, err := a.Trace(1, 1); err == nil {
		t.Error("CG n=1 accepted")
	}
	if _, err := a.Trace(8, 0); err == nil {
		t.Error("CG iters=0 accepted")
	}
	// The paper catalog stays at five workloads.
	if len(All()) != 5 {
		t.Errorf("All() has %d apps, want the paper's 5", len(All()))
	}
}

func TestCGMappableAndNonTrivial(t *testing.T) {
	g, err := Graph(NewCG(), 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalVolume() <= 0 || g.MaxDegree() < 3 {
		t.Errorf("CG pattern degenerate: vol %v deg %d", g.TotalVolume(), g.MaxDegree())
	}
}

func TestMGHierarchicalBands(t *testing.T) {
	g, err := Graph(NewMG(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bands at strides 1, 2, 4, 8 with decreasing per-message volume.
	prev := -1.0
	for _, stride := range []int{1, 2, 4, 8} {
		v := g.Volume(0, stride)
		if v == 0 {
			t.Fatalf("missing band at stride %d", stride)
		}
		if prev >= 0 && v >= prev {
			t.Errorf("stride %d volume %v not below finer level %v", stride, v, prev)
		}
		prev = v
	}
	// No band beyond the level cap (4 levels → max stride 8).
	if g.Volume(0, 16) != 0 {
		t.Error("unexpected band at stride 16")
	}
	// Exchanges are symmetric.
	if g.Volume(0, 1) != g.Volume(1, 0) {
		t.Error("MG exchange not symmetric")
	}
}

func TestMGSmallWorld(t *testing.T) {
	// Level count clamps for tiny worlds.
	g, err := Graph(NewMG(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalVolume() <= 0 {
		t.Error("no traffic for 3 processes")
	}
	a := NewMG()
	if _, err := a.Trace(1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := a.Trace(4, 0); err == nil {
		t.Error("iters=0 accepted")
	}
	if a.ComputeTime(32) <= 0 {
		t.Error("nonpositive compute time")
	}
}

func TestExtendedCatalogComplete(t *testing.T) {
	if len(Extended()) != 7 {
		t.Fatalf("Extended has %d apps, want 7 (5 paper + CG + MG)", len(Extended()))
	}
	if _, err := ByName("MG"); err != nil {
		t.Error("MG not in catalog")
	}
}
