package apps

import (
	"testing"

	"geoprocmap/internal/mpi"
	"geoprocmap/internal/netmodel"
)

func runProgram(t *testing.T, a App, n, iters int, mapping []int) *mpi.Result {
	t.Helper()
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, (n+3)/4, netmodel.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mapping == nil {
		mapping = make([]int, n)
		per := (n + 3) / 4
		for i := range mapping {
			mapping[i] = i / per
		}
	}
	w, err := mpi.NewWorld(cloud, mapping)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ProgramFor(a, iters)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(prog)
	if err != nil {
		t.Fatalf("%s program: %v", a.Name(), err)
	}
	return res
}

// The runnable programs must emit exactly the communication pattern the
// static generators produce — same pairs, volumes, and message counts.
func TestProgramsMatchGenerators(t *testing.T) {
	for _, a := range Extended() {
		res := runProgram(t, a, 64, 1, nil)
		runGraph := res.Trace.Graph()
		genGraph, err := Graph(a, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !runGraph.DenseCG().Equal(genGraph.DenseCG(), 1e-9) {
			t.Errorf("%s: program CG differs from generator CG", a.Name())
		}
		if !runGraph.DenseAG().Equal(genGraph.DenseAG(), 1e-9) {
			t.Errorf("%s: program AG differs from generator AG", a.Name())
		}
	}
}

func TestProgramsRunMultipleIterations(t *testing.T) {
	for _, a := range All() {
		res := runProgram(t, a, 16, 3, nil)
		if res.Elapsed <= 0 {
			t.Errorf("%s: nonpositive elapsed", a.Name())
		}
		one := runProgram(t, a, 16, 1, nil)
		if res.Trace.Len() != 3*one.Trace.Len() {
			t.Errorf("%s: events not linear in iterations (%d vs 3×%d)", a.Name(), res.Trace.Len(), one.Trace.Len())
		}
	}
}

func TestProgramMappingSensitivity(t *testing.T) {
	// A block mapping must beat a scattered round-robin mapping for LU.
	n := 64
	block := make([]int, n)
	scatter := make([]int, n)
	for i := range block {
		block[i] = i / 16
		scatter[i] = i % 4
	}
	tBlock := runProgram(t, NewLU(), n, 1, block).Elapsed
	tScatter := runProgram(t, NewLU(), n, 1, scatter).Elapsed
	if tBlock >= tScatter {
		t.Errorf("block mapping (%v) not faster than scatter (%v)", tBlock, tScatter)
	}
}

func TestProgramForErrors(t *testing.T) {
	if _, err := ProgramFor(NewLU(), 0); err == nil {
		t.Error("iters=0 accepted")
	}
}

func TestCGProgramConstraints(t *testing.T) {
	// CG's program requires a square power-of-two grid: 32 ranks → 4×8.
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, 8, netmodel.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mapping := make([]int, 32)
	for i := range mapping {
		mapping[i] = i / 8
	}
	w, err := mpi.NewWorld(cloud, mapping)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ProgramFor(NewCG(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(prog); err == nil {
		t.Error("CG program on a non-square grid should fail")
	}
}

func TestWraparoundProgramNeedsEvenGrid(t *testing.T) {
	// 12 ranks → 3×4 grid: the odd row count breaks the parity pairing,
	// so the BT/SP programs must refuse rather than deadlock.
	cloud, err := netmodel.EvenCloud(netmodel.AmazonEC2, "m4.xlarge", netmodel.PaperEC2Regions, 3, netmodel.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mapping := make([]int, 12)
	for i := range mapping {
		mapping[i] = i / 3
	}
	w, err := mpi.NewWorld(cloud, mapping)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ProgramFor(NewBT(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(prog); err == nil {
		t.Error("BT program accepted an odd grid side")
	}
}

func TestMGProgramMatchesAtOddSizes(t *testing.T) {
	// MG's red-black exchange handles non-power-of-two worlds.
	res := runProgram(t, NewMG(), 12, 1, nil)
	gen, err := Graph(NewMG(), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.Graph().DenseCG().Equal(gen.DenseCG(), 1e-9) {
		t.Error("MG program/generator mismatch at n=12")
	}
}
