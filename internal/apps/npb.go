package apps

import (
	"fmt"

	"geoprocmap/internal/trace"
)

// npb is the shared machinery of the three NPB pseudo-applications. Each
// runs on a 2-D process grid and exchanges fixed-size messages with its
// grid neighbors every iteration; the kernels differ in message sizes,
// whether the sweep is pipelined (LU) or a symmetric face exchange with
// wraparound (BT, SP), and local computation weight.
type npb struct {
	name string
	// eastBytes/southBytes are the two message sizes of the kernel (the
	// paper's 43 KB/83 KB for LU at CLASS C on 64 processes).
	eastBytes  int64
	southBytes int64
	// wraparound adds the periodic-boundary exchanges of the
	// multi-partition BT/SP schemes.
	wraparound bool
	// iters is the default iteration count.
	iters int
	// computeBase is the serial per-iteration computation time in seconds;
	// per-process time is computeBase/n (strong scaling, CLASS C fixed
	// problem size).
	computeBase float64
}

// Tag values label the communication phases in the recorded traces.
const (
	TagForwardSweep = iota
	TagBackwardSweep
	TagFaceExchange
	TagReduce
	TagBroadcast
	TagShuffle
)

// NewLU returns the NPB LU (Lower-Upper Gauss-Seidel) workload. LU's
// wavefront sweeps send 43 KB east and 83 KB south, then the reverse on
// the way back — the strictly two-neighbor diagonal pattern of Figure 3.
func NewLU() App {
	return &npb{
		name:        "LU",
		eastBytes:   43 * 1024,
		southBytes:  83 * 1024,
		wraparound:  false,
		iters:       20,
		computeBase: 18,
	}
}

// NewBT returns the NPB BT (Block Tri-diagonal) workload: symmetric face
// exchanges with periodic boundaries and the largest messages of the three
// kernels.
func NewBT() App {
	return &npb{
		name:        "BT",
		eastBytes:   160 * 1024,
		southBytes:  96 * 1024,
		wraparound:  true,
		iters:       20,
		computeBase: 26,
	}
}

// NewSP returns the NPB SP (Scalar Penta-diagonal) workload: the same
// exchange structure as BT with smaller messages and lighter computation.
func NewSP() App {
	return &npb{
		name:        "SP",
		eastBytes:   120 * 1024,
		southBytes:  72 * 1024,
		wraparound:  true,
		iters:       20,
		computeBase: 20,
	}
}

func (a *npb) Name() string      { return a.name }
func (a *npb) DefaultIters() int { return a.iters }

func (a *npb) ComputeTime(n int) float64 {
	if n <= 0 {
		return 0
	}
	return a.computeBase / float64(n)
}

// Trace implements App.
func (a *npb) Trace(n, iters int) (*trace.Recorder, error) {
	if n < 2 {
		return nil, fmt.Errorf("apps: %s needs at least 2 processes, got %d", a.name, n)
	}
	if iters < 1 {
		return nil, fmt.Errorf("apps: %s needs at least 1 iteration, got %d", a.name, iters)
	}
	rows, cols := gridDims(n)
	r := trace.NewRecorder(n)
	rank := func(row, col int) int { return row*cols + col }
	for it := 0; it < iters; it++ {
		if a.wraparound {
			// BT/SP multi-partition: every process exchanges faces with all
			// four neighbors, wrapping at the boundary.
			for row := 0; row < rows; row++ {
				for col := 0; col < cols; col++ {
					src := rank(row, col)
					east := rank(row, (col+1)%cols)
					south := rank((row+1)%rows, col)
					if east != src {
						r.MustSend(src, east, a.eastBytes, TagFaceExchange)
						r.MustSend(east, src, a.eastBytes, TagFaceExchange)
					}
					if south != src {
						r.MustSend(src, south, a.southBytes, TagFaceExchange)
						r.MustSend(south, src, a.southBytes, TagFaceExchange)
					}
				}
			}
			continue
		}
		// LU pipelined wavefront: forward sweep east/south, backward sweep
		// west/north, no wraparound.
		for row := 0; row < rows; row++ {
			for col := 0; col < cols; col++ {
				src := rank(row, col)
				if col+1 < cols {
					r.MustSend(src, rank(row, col+1), a.eastBytes, TagForwardSweep)
				}
				if row+1 < rows {
					r.MustSend(src, rank(row+1, col), a.southBytes, TagForwardSweep)
				}
			}
		}
		for row := rows - 1; row >= 0; row-- {
			for col := cols - 1; col >= 0; col-- {
				src := rank(row, col)
				if col > 0 {
					r.MustSend(src, rank(row, col-1), a.eastBytes, TagBackwardSweep)
				}
				if row > 0 {
					r.MustSend(src, rank(row-1, col), a.southBytes, TagBackwardSweep)
				}
			}
		}
	}
	return r, nil
}
