package apps

import (
	"fmt"

	"geoprocmap/internal/trace"
)

// KMeans is the parallel K-means clustering workload (Kanungo et al.) over
// geo-partitioned observations. Each iteration has two communication
// steps:
//
//  1. the centroid set is combined with a recursive-doubling allreduce
//     (at stage s, process i exchanges the centroid block with partner
//     i XOR 2^s), and
//  2. boundary observations migrate between skewed, hash-derived partner
//     pairs — geo-distributed data is unevenly sized, so reassigned points
//     move between irregular process pairs with irregular volumes.
//
// The XOR partners at all distances plus the skewed shuffle produce the
// dense, non-local pattern of the paper's Figure 3 that defeats
// locality-only mappers.
type KMeans struct {
	// Clusters and Dim size the centroid block exchanged per message:
	// Clusters × Dim × 8 bytes (float64 features) plus per-cluster counts.
	Clusters int
	Dim      int
	iters    int
}

// NewKMeans returns the workload with the evaluation defaults: 64 clusters
// over 128-dimensional points (≈64 KB centroid block per message).
func NewKMeans() App { return &KMeans{Clusters: 64, Dim: 128, iters: 20} }

// Name implements App.
func (k *KMeans) Name() string { return "K-means" }

// DefaultIters implements App.
func (k *KMeans) DefaultIters() int { return k.iters }

// ComputeTime implements App: assignment cost shrinks with the number of
// processes (fixed observation set split n ways).
func (k *KMeans) ComputeTime(n int) float64 {
	if n <= 0 {
		return 0
	}
	return 12.0 / float64(n)
}

// blockBytes is the size of one centroid-set message.
func (k *KMeans) blockBytes() int64 {
	return int64(k.Clusters) * (int64(k.Dim)*8 + 8)
}

// Trace implements App.
func (k *KMeans) Trace(n, iters int) (*trace.Recorder, error) {
	if n < 2 {
		return nil, fmt.Errorf("apps: K-means needs at least 2 processes, got %d", n)
	}
	if iters < 1 {
		return nil, fmt.Errorf("apps: K-means needs at least 1 iteration, got %d", iters)
	}
	r := trace.NewRecorder(n)
	block := k.blockBytes()

	// Largest power of two ≤ n; ranks ≥ pow fold onto rank-pow partners
	// before the butterfly and receive the result afterwards (the standard
	// non-power-of-two recursive-doubling reduction).
	pow := 1
	for pow*2 <= n {
		pow *= 2
	}
	for it := 0; it < iters; it++ {
		for i := pow; i < n; i++ {
			r.MustSend(i, i-pow, block, TagReduce)
		}
		for s := 1; s < pow; s *= 2 {
			for i := 0; i < pow; i++ {
				partner := i ^ s
				if partner < pow {
					r.MustSend(i, partner, block, TagReduce)
				}
			}
		}
		for i := pow; i < n; i++ {
			r.MustSend(i-pow, i, block, TagBroadcast)
		}
		// Boundary-point migration: every process ships reassigned
		// observations to two hash-derived partners, with per-process
		// skewed volumes (geo-partitioned data is uneven).
		for i := 0; i < n; i++ {
			vol := int64(float64(block) * skew(i))
			for _, stride := range [2]int{17, 41} {
				partner := (i*stride + 3) % n
				if partner != i {
					r.MustSend(i, partner, vol, TagShuffle)
				}
			}
		}
	}
	return r, nil
}

// skew maps a process rank to a deterministic volume factor in [0.5, 2.5),
// modeling uneven geo-partitioned data sizes.
func skew(i int) float64 {
	h := uint64(i+1) * 2654435761
	h ^= h >> 13
	return 0.5 + float64(h%1000)/500.0
}

// DNN is the deep-neural-network training workload: parallel stochastic
// gradient descent (Zinkevich et al.), where every worker trains an
// independent replica on its local shard and the replicas are averaged
// over a binomial tree at the end of every epoch. Communication is a
// single model reduction and broadcast per epoch, so the total message
// volume is small and the workload is computation-bound — the paper's
// Figure 3 observation, and the reason mapping gains are smallest for DNN
// (Figure 5).
type DNN struct {
	// ModelBytes is the size of the network parameters exchanged when
	// averaging replicas.
	ModelBytes int64
	iters      int
}

// NewDNN returns the workload with the evaluation defaults: a 100 KB
// averaged parameter delta per epoch (a ResNet-20-for-CIFAR-10-scale model
// exchanged in compressed form), keeping the total message volume small
// relative to the epoch's training time as Figure 3 observes.
func NewDNN() App { return &DNN{ModelBytes: 100 << 10, iters: 20} }

// Name implements App.
func (d *DNN) Name() string { return "DNN" }

// DefaultIters implements App.
func (d *DNN) DefaultIters() int { return d.iters }

// ComputeTime implements App: minibatch training time per epoch is
// independent of the worker count (each worker consumes its own shard).
func (d *DNN) ComputeTime(n int) float64 { return 2.5 }

// Trace implements App.
func (d *DNN) Trace(n, iters int) (*trace.Recorder, error) {
	if n < 2 {
		return nil, fmt.Errorf("apps: DNN needs at least 2 processes, got %d", n)
	}
	if iters < 1 {
		return nil, fmt.Errorf("apps: DNN needs at least 1 iteration, got %d", iters)
	}
	r := trace.NewRecorder(n)
	for it := 0; it < iters; it++ {
		// Binomial-tree reduce of the model replicas to rank 0.
		for s := 1; s < n; s *= 2 {
			for i := 0; i < n; i++ {
				if i&s != 0 && i&(s-1) == 0 {
					dst := i &^ s
					if dst < n {
						r.MustSend(i, dst, d.ModelBytes, TagReduce)
					}
				}
			}
		}
		// Binomial-tree broadcast of the averaged model back out.
		for s := nextPow2(n) / 2; s >= 1; s /= 2 {
			for i := 0; i < n; i++ {
				if i&(2*s-1) == 0 && i+s < n {
					r.MustSend(i, i+s, d.ModelBytes, TagBroadcast)
				}
			}
		}
	}
	return r, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
