package collectives

import (
	"testing"
	"testing/quick"

	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/netsim"
)

// propagate runs knowledge-propagation semantics over a schedule: a rank
// "knows" the payload once it receives a message from a rank that knew it
// at the start of that round. Returns the final knowledge vector.
func propagate(s *Schedule, seed int) []bool {
	has := make([]bool, s.N)
	has[seed] = true
	for _, round := range s.Rounds {
		next := append([]bool(nil), has...)
		for _, m := range round {
			if has[m.Src] {
				next[m.Dst] = true
			}
		}
		has = next
	}
	return has
}

// gather runs contribution-accumulation semantics: every rank starts with
// its own contribution; a message transfers the sender's start-of-round
// set to the receiver. Returns per-rank contribution counts.
func gather(s *Schedule) [][]bool {
	contrib := make([][]bool, s.N)
	for i := range contrib {
		contrib[i] = make([]bool, s.N)
		contrib[i][i] = true
	}
	for _, round := range s.Rounds {
		snapshot := make([][]bool, s.N)
		for i := range snapshot {
			snapshot[i] = append([]bool(nil), contrib[i]...)
		}
		for _, m := range round {
			for k, v := range snapshot[m.Src] {
				if v {
					contrib[m.Dst][k] = true
				}
			}
		}
	}
	return contrib
}

func countAll(v []bool) int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}

func TestBinomialBroadcastDelivers(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33} {
		for _, root := range []int{0, n / 2, n - 1} {
			s, err := BinomialBroadcast(n, root, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			has := propagate(s, root)
			for i, h := range has {
				if !h {
					t.Fatalf("n=%d root=%d: rank %d never received the broadcast", n, root, i)
				}
			}
			// Optimal round count for a binomial tree.
			wantRounds := 0
			for span := 1; span < n; span *= 2 {
				wantRounds++
			}
			if len(s.Rounds) != wantRounds {
				t.Errorf("n=%d: %d rounds, want %d", n, len(s.Rounds), wantRounds)
			}
		}
	}
}

func TestBinomialReduceCollects(t *testing.T) {
	for _, n := range []int{2, 5, 8, 17} {
		for _, root := range []int{0, n - 1} {
			s, err := BinomialReduce(n, root, 64)
			if err != nil {
				t.Fatal(err)
			}
			contrib := gather(s)
			if got := countAll(contrib[root]); got != n {
				t.Errorf("n=%d root=%d: root holds %d/%d contributions", n, root, got, n)
			}
		}
	}
}

func TestRecursiveDoublingAllreduce(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8, 13, 16} {
		s, err := RecursiveDoublingAllreduce(n, 256)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		contrib := gather(s)
		for i := range contrib {
			if got := countAll(contrib[i]); got != n {
				t.Fatalf("n=%d: rank %d holds %d/%d contributions", n, i, got, n)
			}
		}
	}
}

func TestRingAllreduceStructure(t *testing.T) {
	n := 8
	var bytes int64 = 800
	s, err := RingAllreduce(n, bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Rounds) != 2*(n-1) {
		t.Errorf("rounds = %d, want %d", len(s.Rounds), 2*(n-1))
	}
	for r, round := range s.Rounds {
		if len(round) != n {
			t.Errorf("round %d has %d messages, want %d", r, len(round), n)
		}
		for _, m := range round {
			if m.Dst != (m.Src+1)%n {
				t.Errorf("non-ring message %d→%d", m.Src, m.Dst)
			}
			if m.Bytes != 100 {
				t.Errorf("chunk = %d bytes, want 100", m.Bytes)
			}
		}
	}
	// Bandwidth optimality: total traffic ≈ 2·bytes·(n−1)/n per rank.
	if got := s.TotalBytes(); got != int64(2*(n-1)*n)*100 {
		t.Errorf("total = %d", got)
	}
	one, err := RingAllreduce(1, 10)
	if err != nil || len(one.Rounds) != 0 {
		t.Error("n=1 ring should be empty")
	}
}

func TestArgErrors(t *testing.T) {
	if _, err := BinomialBroadcast(0, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BinomialBroadcast(4, 4, 1); err == nil {
		t.Error("root out of range accepted")
	}
	if _, err := BinomialBroadcast(4, 0, -1); err == nil {
		t.Error("negative payload accepted")
	}
	if _, err := HierarchicalBroadcast(nil, 0, 1); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := HierarchicalReduce([]int{0, 0}, 5, 1); err == nil {
		t.Error("hier root out of range accepted")
	}
	if _, err := HierarchicalAllreduce([]int{0, 0}, -1); err == nil {
		t.Error("hier negative payload accepted")
	}
}

func blockPlacement(n, sites int) []int {
	pl := make([]int, n)
	per := n / sites
	for i := range pl {
		site := i / per
		if site >= sites {
			site = sites - 1
		}
		pl[i] = site
	}
	return pl
}

func crossSiteMessages(s *Schedule, placement []int) int {
	n := 0
	for _, round := range s.Rounds {
		for _, m := range round {
			if placement[m.Src] != placement[m.Dst] {
				n++
			}
		}
	}
	return n
}

func TestHierarchicalBroadcastDelivers(t *testing.T) {
	pl := blockPlacement(32, 4)
	for _, root := range []int{0, 9, 31} {
		s, err := HierarchicalBroadcast(pl, root, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		has := propagate(s, root)
		for i, h := range has {
			if !h {
				t.Fatalf("root=%d: rank %d missed the broadcast", root, i)
			}
		}
	}
}

func TestHierarchicalReduceCollects(t *testing.T) {
	pl := blockPlacement(24, 3)
	s, err := HierarchicalReduce(pl, 5, 128)
	if err != nil {
		t.Fatal(err)
	}
	contrib := gather(s)
	// The reduction lands at the leader of root 5's site (rank 0 under a
	// block placement).
	if got := countAll(contrib[0]); got != 24 {
		t.Errorf("site leader holds %d/24 contributions", got)
	}
}

func TestHierarchicalAllreduceDelivers(t *testing.T) {
	pl := blockPlacement(32, 4)
	s, err := HierarchicalAllreduce(pl, 1024)
	if err != nil {
		t.Fatal(err)
	}
	contrib := gather(s)
	for i := range contrib {
		if got := countAll(contrib[i]); got != 32 {
			t.Fatalf("rank %d holds %d/32 contributions", i, got)
		}
	}
}

func TestHierarchyCrossesWANMinimally(t *testing.T) {
	pl := blockPlacement(64, 4)
	hier, err := HierarchicalAllreduce(pl, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Leaders exchange via two binomial phases over 4 sites: exactly
	// 2 × (4−1) WAN messages.
	if got := crossSiteMessages(hier, pl); got != 6 {
		t.Errorf("hierarchical allreduce crosses WAN %d times, want 6", got)
	}
	flat, err := RecursiveDoublingAllreduce(64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if flatCross := crossSiteMessages(flat, pl); flatCross <= 6*4 {
		t.Errorf("flat allreduce crosses WAN only %d times; test premise broken", flatCross)
	}
}

func TestHierarchicalFasterOnWAN(t *testing.T) {
	cloud, err := netmodel.PaperCloud(1)
	if err != nil {
		t.Fatal(err)
	}
	pl := blockPlacement(64, 4)
	sim, err := netsim.NewWithOptions(cloud, pl, netsim.Options{DedicatedWAN: true})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := RecursiveDoublingAllreduce(64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := HierarchicalAllreduce(pl, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tFlat, err := sim.ReplayTrace(flat.Events(0))
	if err != nil {
		t.Fatal(err)
	}
	tHier, err := sim.ReplayTrace(hier.Events(0))
	if err != nil {
		t.Fatal(err)
	}
	if tHier >= tFlat {
		t.Errorf("hierarchical allreduce (%.3fs) not faster than flat (%.3fs) on the WAN", tHier, tFlat)
	}
}

func TestScheduleEventsTagging(t *testing.T) {
	s, err := BinomialBroadcast(8, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	events := s.Events(5)
	if len(events) != s.NumMessages() {
		t.Fatalf("%d events, want %d", len(events), s.NumMessages())
	}
	if events[0].Tag != 5 {
		t.Errorf("first tag = %d, want 5", events[0].Tag)
	}
	if events[len(events)-1].Tag != 5+len(s.Rounds)-1 {
		t.Errorf("last tag = %d, want %d", events[len(events)-1].Tag, 5+len(s.Rounds)-1)
	}
}

// Property: broadcast delivers to all ranks and reduce collects all
// contributions for arbitrary (n, root, placement shapes).
func TestQuickCollectivesSemantics(t *testing.T) {
	f := func(nRaw, rootRaw, sitesRaw uint8) bool {
		n := int(nRaw%40) + 1
		root := int(rootRaw) % n
		sites := int(sitesRaw%5) + 1
		if sites > n {
			sites = n
		}
		pl := blockPlacement(n, sites)

		b, err := BinomialBroadcast(n, root, 8)
		if err != nil {
			return false
		}
		if countAll(propagate(b, root)) != n {
			return false
		}
		hb, err := HierarchicalBroadcast(pl, root, 8)
		if err != nil {
			return false
		}
		if countAll(propagate(hb, root)) != n {
			return false
		}
		ar, err := RecursiveDoublingAllreduce(n, 8)
		if err != nil {
			return false
		}
		for _, c := range gather(ar) {
			if countAll(c) != n {
				return false
			}
		}
		har, err := HierarchicalAllreduce(pl, 8)
		if err != nil {
			return false
		}
		for _, c := range gather(har) {
			if countAll(c) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
