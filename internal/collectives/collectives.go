// Package collectives builds communication schedules for MPI-style
// collective operations, both topology-oblivious (binomial trees,
// recursive doubling, rings) and topology-aware hierarchical variants in
// the spirit of MagPIe (Kielmann et al., PPoPP'99 — cited by the paper as
// the classic answer to slow wide-area links).
//
// A Schedule is a sequence of rounds; the messages of one round are
// concurrent and rounds execute in order. Schedules convert to tagged
// trace events, so the netsim engines can time them under any process
// placement — which is how the hierarchical variants demonstrate their
// point: once the mapper has colocated processes, a site-leader hierarchy
// crosses each WAN link O(1) times instead of O(log n).
package collectives

import (
	"fmt"

	"geoprocmap/internal/trace"
)

// Message is one transfer within a round.
type Message struct {
	Src, Dst int
	Bytes    int64
}

// Schedule is an ordered sequence of communication rounds over n ranks.
type Schedule struct {
	N      int
	Rounds [][]Message
}

// Validate checks endpoint ranges, self-sends and message sizes.
func (s *Schedule) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("collectives: schedule over %d ranks", s.N)
	}
	for r, round := range s.Rounds {
		for _, m := range round {
			if m.Src < 0 || m.Src >= s.N || m.Dst < 0 || m.Dst >= s.N {
				return fmt.Errorf("collectives: round %d endpoint out of range: %d→%d", r, m.Src, m.Dst)
			}
			if m.Src == m.Dst {
				return fmt.Errorf("collectives: round %d self-send on rank %d", r, m.Src)
			}
			if m.Bytes < 0 {
				return fmt.Errorf("collectives: round %d negative size", r)
			}
		}
	}
	return nil
}

// Events flattens the schedule into trace events whose tags encode the
// round index (offset by baseTag), so netsim's phase grouping and replay
// preserve round ordering.
func (s *Schedule) Events(baseTag int) []trace.Event {
	var out []trace.Event
	for r, round := range s.Rounds {
		for _, m := range round {
			out = append(out, trace.Event{Src: m.Src, Dst: m.Dst, Bytes: m.Bytes, Tag: baseTag + r})
		}
	}
	return out
}

// NumMessages returns the total message count.
func (s *Schedule) NumMessages() int {
	n := 0
	for _, r := range s.Rounds {
		n += len(r)
	}
	return n
}

// TotalBytes returns the total traffic volume.
func (s *Schedule) TotalBytes() int64 {
	var t int64
	for _, r := range s.Rounds {
		for _, m := range r {
			t += m.Bytes
		}
	}
	return t
}

// addRound appends a round, dropping empty ones.
func (s *Schedule) addRound(round []Message) {
	if len(round) > 0 {
		s.Rounds = append(s.Rounds, round)
	}
}

// --- flat (topology-oblivious) algorithms --------------------------------

func checkArgs(n, root int, bytes int64) error {
	if n <= 0 {
		return fmt.Errorf("collectives: %d ranks", n)
	}
	if root < 0 || root >= n {
		return fmt.Errorf("collectives: root %d out of range [0,%d)", root, n)
	}
	if bytes < 0 {
		return fmt.Errorf("collectives: negative payload")
	}
	return nil
}

// BinomialBroadcast returns the ⌈log2 n⌉-round binomial-tree broadcast of
// bytes from root.
func BinomialBroadcast(n, root int, bytes int64) (*Schedule, error) {
	if err := checkArgs(n, root, bytes); err != nil {
		return nil, err
	}
	s := &Schedule{N: n}
	for span := 1; span < n; span *= 2 {
		var round []Message
		for vr := 0; vr < span && vr+span < n; vr++ {
			src := (vr + root) % n
			dst := (vr + span + root) % n
			round = append(round, Message{Src: src, Dst: dst, Bytes: bytes})
		}
		s.addRound(round)
	}
	return s, nil
}

// BinomialReduce returns the binomial-tree reduction of bytes to root —
// the mirror image of BinomialBroadcast.
func BinomialReduce(n, root int, bytes int64) (*Schedule, error) {
	bcast, err := BinomialBroadcast(n, root, bytes)
	if err != nil {
		return nil, err
	}
	s := &Schedule{N: n}
	for r := len(bcast.Rounds) - 1; r >= 0; r-- {
		round := make([]Message, len(bcast.Rounds[r]))
		for i, m := range bcast.Rounds[r] {
			round[i] = Message{Src: m.Dst, Dst: m.Src, Bytes: bytes}
		}
		s.addRound(round)
	}
	return s, nil
}

// RecursiveDoublingAllreduce returns the recursive-doubling allreduce: the
// full payload is exchanged pairwise at XOR distances 1, 2, 4, …; ranks
// beyond the largest power of two fold in before and unfold after.
func RecursiveDoublingAllreduce(n int, bytes int64) (*Schedule, error) {
	if err := checkArgs(n, 0, bytes); err != nil {
		return nil, err
	}
	s := &Schedule{N: n}
	pow := 1
	for pow*2 <= n {
		pow *= 2
	}
	var fold []Message
	for i := pow; i < n; i++ {
		fold = append(fold, Message{Src: i, Dst: i - pow, Bytes: bytes})
	}
	s.addRound(fold)
	for span := 1; span < pow; span *= 2 {
		var round []Message
		for i := 0; i < pow; i++ {
			partner := i ^ span
			if partner < pow {
				round = append(round, Message{Src: i, Dst: partner, Bytes: bytes})
			}
		}
		s.addRound(round)
	}
	var unfold []Message
	for i := pow; i < n; i++ {
		unfold = append(unfold, Message{Src: i - pow, Dst: i, Bytes: bytes})
	}
	s.addRound(unfold)
	return s, nil
}

// RingAllreduce returns the bandwidth-optimal ring allreduce:
// a reduce-scatter pass followed by an allgather pass, 2(n−1) rounds of
// ⌈bytes/n⌉-sized chunks around the ring.
func RingAllreduce(n int, bytes int64) (*Schedule, error) {
	if err := checkArgs(n, 0, bytes); err != nil {
		return nil, err
	}
	s := &Schedule{N: n}
	if n == 1 {
		return s, nil
	}
	chunk := (bytes + int64(n) - 1) / int64(n)
	for pass := 0; pass < 2; pass++ {
		for step := 0; step < n-1; step++ {
			round := make([]Message, 0, n)
			for i := 0; i < n; i++ {
				round = append(round, Message{Src: i, Dst: (i + 1) % n, Bytes: chunk})
			}
			s.addRound(round)
		}
	}
	return s, nil
}

// --- hierarchical (topology-aware) algorithms -----------------------------

// hierarchy derives the per-site member lists and leaders from a process
// placement (leader = lowest rank at each site).
func hierarchy(placement []int) (members map[int][]int, leaders []int, err error) {
	if len(placement) == 0 {
		return nil, nil, fmt.Errorf("collectives: empty placement")
	}
	members = map[int][]int{}
	for rank, site := range placement {
		if site < 0 {
			return nil, nil, fmt.Errorf("collectives: rank %d has negative site", rank)
		}
		members[site] = append(members[site], rank)
	}
	for site := 0; site <= maxKey(members); site++ {
		if m, ok := members[site]; ok {
			leaders = append(leaders, m[0])
		}
	}
	return members, leaders, nil
}

func maxKey(m map[int][]int) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

// mapSchedule rewrites a schedule built over a compact rank list into
// global ranks and appends its rounds to dst.
func mapSchedule(dst *Schedule, sub *Schedule, ranks []int) {
	for _, round := range sub.Rounds {
		mapped := make([]Message, len(round))
		for i, m := range round {
			mapped[i] = Message{Src: ranks[m.Src], Dst: ranks[m.Dst], Bytes: m.Bytes}
		}
		dst.addRound(mapped)
	}
}

// HierarchicalReduce reduces bytes to the leader of root's site: binomial
// reductions within every site, then a binomial reduction among site
// leaders rooted at root's site. Each WAN link carries O(1) messages.
func HierarchicalReduce(placement []int, root int, bytes int64) (*Schedule, error) {
	if root < 0 || root >= len(placement) {
		return nil, fmt.Errorf("collectives: root %d out of range", root)
	}
	members, leaders, err := hierarchy(placement)
	if err != nil {
		return nil, err
	}
	s := &Schedule{N: len(placement)}
	// Phase 1: intra-site reductions to each site leader (concurrent
	// across sites — their rounds interleave).
	intra := &Schedule{N: len(placement)}
	maxRounds := 0
	var perSite []*Schedule
	var perSiteRanks [][]int
	for site := 0; site <= maxKey(members); site++ {
		ranks, ok := members[site]
		if !ok || len(ranks) < 2 {
			continue
		}
		sub, err := BinomialReduce(len(ranks), 0, bytes)
		if err != nil {
			return nil, err
		}
		perSite = append(perSite, sub)
		perSiteRanks = append(perSiteRanks, ranks)
		if len(sub.Rounds) > maxRounds {
			maxRounds = len(sub.Rounds)
		}
	}
	for r := 0; r < maxRounds; r++ {
		var round []Message
		for si, sub := range perSite {
			if r >= len(sub.Rounds) {
				continue
			}
			for _, m := range sub.Rounds[r] {
				round = append(round, Message{Src: perSiteRanks[si][m.Src], Dst: perSiteRanks[si][m.Dst], Bytes: m.Bytes})
			}
		}
		intra.addRound(round)
	}
	s.Rounds = append(s.Rounds, intra.Rounds...)

	// Phase 2: reduction among leaders, rooted at root's leader.
	rootLeader := members[placement[root]][0]
	leaderIdx := 0
	for i, l := range leaders {
		if l == rootLeader {
			leaderIdx = i
		}
	}
	if len(leaders) > 1 {
		inter, err := BinomialReduce(len(leaders), leaderIdx, bytes)
		if err != nil {
			return nil, err
		}
		mapSchedule(s, inter, leaders)
	}
	return s, nil
}

// HierarchicalBroadcast broadcasts from root: binomial among site leaders,
// then binomial within every site.
func HierarchicalBroadcast(placement []int, root int, bytes int64) (*Schedule, error) {
	if root < 0 || root >= len(placement) {
		return nil, fmt.Errorf("collectives: root %d out of range", root)
	}
	members, leaders, err := hierarchy(placement)
	if err != nil {
		return nil, err
	}
	s := &Schedule{N: len(placement)}
	// Root hands the payload to its site leader if it is not the leader.
	rootSite := placement[root]
	rootLeader := members[rootSite][0]
	if root != rootLeader {
		s.addRound([]Message{{Src: root, Dst: rootLeader, Bytes: bytes}})
	}
	leaderIdx := 0
	for i, l := range leaders {
		if l == rootLeader {
			leaderIdx = i
		}
	}
	if len(leaders) > 1 {
		inter, err := BinomialBroadcast(len(leaders), leaderIdx, bytes)
		if err != nil {
			return nil, err
		}
		mapSchedule(s, inter, leaders)
	}
	// Intra-site broadcasts, concurrent across sites.
	var perSite []*Schedule
	var perSiteRanks [][]int
	maxRounds := 0
	for site := 0; site <= maxKey(members); site++ {
		ranks, ok := members[site]
		if !ok || len(ranks) < 2 {
			continue
		}
		sub, err := BinomialBroadcast(len(ranks), 0, bytes)
		if err != nil {
			return nil, err
		}
		perSite = append(perSite, sub)
		perSiteRanks = append(perSiteRanks, ranks)
		if len(sub.Rounds) > maxRounds {
			maxRounds = len(sub.Rounds)
		}
	}
	for r := 0; r < maxRounds; r++ {
		var round []Message
		for si, sub := range perSite {
			if r >= len(sub.Rounds) {
				continue
			}
			for _, m := range sub.Rounds[r] {
				round = append(round, Message{Src: perSiteRanks[si][m.Src], Dst: perSiteRanks[si][m.Dst], Bytes: m.Bytes})
			}
		}
		s.addRound(round)
	}
	return s, nil
}

// HierarchicalAllreduce combines bytes across all ranks: intra-site
// reductions, recursive doubling among site leaders, intra-site
// broadcasts. The WAN sees only the leader exchange.
func HierarchicalAllreduce(placement []int, bytes int64) (*Schedule, error) {
	_, leaders, err := hierarchy(placement)
	if err != nil {
		return nil, err
	}
	if bytes < 0 {
		return nil, fmt.Errorf("collectives: negative payload")
	}
	s := &Schedule{N: len(placement)}
	reduceRoot := leaders[0]
	red, err := HierarchicalReduce(placement, reduceRoot, bytes)
	if err != nil {
		return nil, err
	}
	s.Rounds = append(s.Rounds, red.Rounds...)
	bc, err := HierarchicalBroadcast(placement, reduceRoot, bytes)
	if err != nil {
		return nil, err
	}
	s.Rounds = append(s.Rounds, bc.Rounds...)
	return s, nil
}
