package collectives_test

import (
	"fmt"
	"log"

	"geoprocmap/internal/collectives"
)

// ExampleHierarchicalAllreduce builds a MagPIe-style schedule for 16 ranks
// in two sites and counts its WAN crossings against recursive doubling.
func ExampleHierarchicalAllreduce() {
	placement := []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1}
	hier, err := collectives.HierarchicalAllreduce(placement, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	flat, err := collectives.RecursiveDoublingAllreduce(16, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	cross := func(s *collectives.Schedule) int {
		n := 0
		for _, round := range s.Rounds {
			for _, m := range round {
				if placement[m.Src] != placement[m.Dst] {
					n++
				}
			}
		}
		return n
	}
	fmt.Println("hierarchical WAN messages:", cross(hier))
	fmt.Println("flat WAN messages:", cross(flat))
	// Output:
	// hierarchical WAN messages: 2
	// flat WAN messages: 16
}
