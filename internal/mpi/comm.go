package mpi

import "fmt"

// This file implements collective operations on top of the runtime's
// point-to-point primitives, so a program's collective traffic is profiled
// and timed like any other messages. Because sends are rendezvous
// (blocking), the implementations use tree algorithms whose leaf-first
// orderings are deadlock-free: a parent posts receives for its children
// before sending to its own parent.

// treeChildren returns the binomial-tree children and parent of a rank
// relative to root. parent is -1 for the root.
func treeChildren(rank, root, n int) (children []int, parent int) {
	vr := (rank - root + n) % n
	limit := 1
	for limit < n {
		limit *= 2
	}
	if vr != 0 {
		limit = vr & (-vr) // lowest set bit
	}
	for span := 1; span < limit; span *= 2 {
		if vr+span < n {
			children = append(children, (vr+span+root)%n)
		}
	}
	if vr == 0 {
		return children, -1
	}
	return children, ((vr - (vr & (-vr))) + root) % n
}

// Reduce combines bytes from every rank to root over a binomial tree.
// Each rank must call it; the tag distinguishes concurrent collectives.
func (c *Comm) Reduce(root int, bytes int64, tag int) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("mpi: rank %d: reduce to invalid root %d", c.rank, root)
	}
	children, parent := treeChildren(c.rank, root, c.Size())
	// Receive children in descending span order (the reverse of how the
	// broadcast tree fans out), then forward to the parent.
	for i := len(children) - 1; i >= 0; i-- {
		if err := c.Recv(children[i], tag); err != nil {
			return err
		}
	}
	if parent >= 0 {
		return c.Send(parent, bytes, tag)
	}
	return nil
}

// Bcast distributes bytes from root to every rank over a binomial tree.
func (c *Comm) Bcast(root int, bytes int64, tag int) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("mpi: rank %d: bcast from invalid root %d", c.rank, root)
	}
	children, parent := treeChildren(c.rank, root, c.Size())
	if parent >= 0 {
		if err := c.Recv(parent, tag); err != nil {
			return err
		}
	}
	for _, child := range children {
		if err := c.Send(child, bytes, tag); err != nil {
			return err
		}
	}
	return nil
}

// Allreduce combines bytes across all ranks and leaves the result
// everywhere: a reduce to rank 0 followed by a broadcast. Two tags are
// consumed: tag and tag+1.
func (c *Comm) Allreduce(bytes int64, tag int) error {
	if err := c.Reduce(0, bytes, tag); err != nil {
		return err
	}
	return c.Bcast(0, bytes, tag+1)
}

// Barrier synchronizes all ranks (an Allreduce of one byte). Two tags are
// consumed: tag and tag+1.
func (c *Comm) Barrier(tag int) error {
	return c.Allreduce(1, tag)
}

// SendRecv exchanges messages with a partner without deadlocking under
// rendezvous semantics: the lower rank sends first.
func (c *Comm) SendRecv(partner int, bytes int64, tag int) error {
	if partner < 0 || partner >= c.Size() || partner == c.rank {
		return fmt.Errorf("mpi: rank %d: invalid SendRecv partner %d", c.rank, partner)
	}
	if c.rank < partner {
		if err := c.Send(partner, bytes, tag); err != nil {
			return err
		}
		return c.Recv(partner, tag)
	}
	if err := c.Recv(partner, tag); err != nil {
		return err
	}
	return c.Send(partner, bytes, tag)
}
