// Package mpi is a virtual MPI runtime: rank programs written in Go
// against a Send/Recv/collectives API execute on the modeled
// geo-distributed cloud under virtual time.
//
// It is the reproduction's substitute for the MPI ecosystem the paper runs
// on (MPICH over EC2): the evaluation workloads are *programs*, and this
// runtime lets such programs be (a) profiled — every message lands in a
// trace.Recorder, from which the mapper's CG/AG matrices are aggregated —
// and (b) timed under a placement, with message costs from the cloud's
// α–β site-pair model.
//
// Semantics:
//
//   - Execution is deterministic. Ranks run as goroutines but are
//     scheduled cooperatively: exactly one rank runs at a time, and the
//     scheduler always grants the grantable rank with the smallest
//     virtual clock (ties to the lowest rank id).
//   - Sends are synchronous (rendezvous): a Send/Recv pair completes at
//     max(sender clock, receiver clock) + LT + bytes/BT for the pair's
//     site link (NIC rate within a site), and both clocks advance to the
//     completion time. Messages match by (src, dst, tag) in FIFO order;
//     Recv accepts AnySource / AnyTag wildcards.
//   - Compute(d) advances only the calling rank's clock.
//   - If every live rank is blocked and nothing can match, the run aborts
//     with a deadlock error naming the stuck operations.
//
// Collective helpers (Barrier, Bcast, Reduce, Allreduce) are implemented
// on top of point-to-point in comm.go, so their traffic is visible to the
// profiler like any other message.
package mpi

import (
	"fmt"
	"sort"
	"sync"

	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/trace"
)

// Program is the per-rank body of a virtual-MPI application. It runs once
// per rank; returning an error aborts the whole run.
type Program func(c *Comm) error

// World executes programs on a cloud under a process placement.
type World struct {
	cloud   *netmodel.Cloud
	mapping []int
}

// NewWorld validates the placement against the cloud (one process per
// node) and returns a runtime.
func NewWorld(cloud *netmodel.Cloud, mapping []int) (*World, error) {
	if cloud == nil {
		return nil, fmt.Errorf("mpi: nil cloud")
	}
	if len(mapping) == 0 {
		return nil, fmt.Errorf("mpi: empty mapping")
	}
	load := make([]int, cloud.M())
	for i, s := range mapping {
		if s < 0 || s >= cloud.M() {
			return nil, fmt.Errorf("mpi: mapping[%d] = %d out of range [0,%d)", i, s, cloud.M())
		}
		load[s]++
	}
	for j, l := range load {
		if l > cloud.Sites[j].Nodes {
			return nil, fmt.Errorf("mpi: %d processes on site %d, capacity %d", l, j, cloud.Sites[j].Nodes)
		}
	}
	return &World{cloud: cloud, mapping: append([]int(nil), mapping...)}, nil
}

// N returns the number of ranks.
func (w *World) N() int { return len(w.mapping) }

// Result is the outcome of a run.
type Result struct {
	// Elapsed is the virtual makespan: the largest rank clock at exit.
	Elapsed float64
	// RankClocks holds each rank's final virtual time.
	RankClocks []float64
	// Trace records every message sent, for profiling.
	Trace *trace.Recorder
}

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// opKind enumerates the operations ranks yield to the scheduler.
type opKind int

const (
	opSend opKind = iota
	opRecv
	opExit
	opErr
)

// request is what a rank submits to the scheduler when it reaches a
// blocking operation (or terminates).
type request struct {
	kind  opKind
	rank  int
	peer  int // dst for send; src or AnySource for recv
	tag   int
	bytes int64
	clock float64 // the rank's virtual time when it blocked
	err   error
	// resume delivers the operation's completion time when the scheduler
	// grants the rank its next slice; closed on abort.
	resume chan float64
	seq    int64
	// endTime is filled by the scheduler when the operation matches.
	endTime float64
}

// Comm is a rank's handle to the runtime.
type Comm struct {
	rank  int
	world *World
	sched *scheduler
	clock float64
}

// Rank returns the caller's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.N() }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Compute advances the rank's virtual clock by d seconds of local work.
func (c *Comm) Compute(d float64) error {
	if d < 0 {
		return fmt.Errorf("mpi: rank %d: negative compute time", c.rank)
	}
	c.clock += d
	return nil
}

// Send transmits bytes to rank dst with the given tag and blocks until the
// matching Recv completes (rendezvous semantics).
func (c *Comm) Send(dst int, bytes int64, tag int) error {
	if dst < 0 || dst >= c.world.N() {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d", c.rank, dst)
	}
	if dst == c.rank {
		return fmt.Errorf("mpi: rank %d: self-send", c.rank)
	}
	if bytes < 0 {
		return fmt.Errorf("mpi: rank %d: negative message size", c.rank)
	}
	if tag < 0 {
		return fmt.Errorf("mpi: rank %d: negative tag %d (reserved for wildcards)", c.rank, tag)
	}
	return c.block(&request{kind: opSend, rank: c.rank, peer: dst, tag: tag, bytes: bytes, clock: c.clock})
}

// Recv blocks until a matching message arrives. src may be AnySource and
// tag may be AnyTag.
func (c *Comm) Recv(src, tag int) error {
	if src != AnySource && (src < 0 || src >= c.world.N()) {
		return fmt.Errorf("mpi: rank %d: recv from invalid rank %d", c.rank, src)
	}
	if src == c.rank {
		return fmt.Errorf("mpi: rank %d: self-receive", c.rank)
	}
	return c.block(&request{kind: opRecv, rank: c.rank, peer: src, tag: tag, clock: c.clock})
}

func (c *Comm) block(r *request) error {
	r.resume = make(chan float64)
	select {
	case c.sched.yieldCh[c.rank] <- r:
	case <-c.sched.done:
		return fmt.Errorf("mpi: rank %d: run aborted", c.rank)
	}
	select {
	case t := <-r.resume:
		c.clock = t
		return nil
	case <-c.sched.done:
		return fmt.Errorf("mpi: rank %d: run aborted", c.rank)
	}
}

// Run executes the program on every rank and returns the run's timing and
// trace.
func (w *World) Run(p Program) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("mpi: nil program")
	}
	s := newScheduler(w)
	return s.run(p)
}

// --- scheduler ------------------------------------------------------------

// rankState tracks one rank inside the scheduler. Exactly one of the
// following holds for a live rank:
//
//	unstarted             — goroutine waiting on start
//	running               — the single rank currently executing
//	pending != nil        — blocked on an unmatched operation
//	ready  != nil         — operation matched; waiting for its next slice
//	done                  — program returned
type rankState struct {
	comm      *Comm
	started   bool
	done      bool
	pending   *request
	ready     *request
	nextClock float64 // virtual time at which the rank would resume
	start     chan struct{}
}

type scheduler struct {
	world   *World
	ranks   []*rankState
	yieldCh []chan *request
	rec     *trace.Recorder
	seq     int64
	// done is closed exactly once when the run finishes (normally, on
	// abort, or on deadlock); every rank goroutine selects on it at each
	// blocking point, so no goroutine can outlive run.
	done chan struct{}
	// wg tracks the rank goroutines; run joins them before returning.
	wg sync.WaitGroup
}

func newScheduler(w *World) *scheduler {
	return &scheduler{
		world:   w,
		rec:     trace.NewRecorder(w.N()),
		yieldCh: make([]chan *request, w.N()),
		done:    make(chan struct{}),
	}
}

func (s *scheduler) run(p Program) (*Result, error) {
	n := s.world.N()
	s.ranks = make([]*rankState, n)
	// Close done on every exit path, then join the rank goroutines: each
	// one selects on done at its start gate, at every blocking operation,
	// and at its final yield, so Run never leaks a goroutine — not on
	// normal completion, not on abort, not on deadlock.
	defer func() {
		close(s.done)
		s.wg.Wait()
	}()
	for i := 0; i < n; i++ {
		st := &rankState{
			comm:  &Comm{rank: i, world: s.world, sched: s},
			start: make(chan struct{}),
		}
		s.ranks[i] = st
		s.yieldCh[i] = make(chan *request)
		s.wg.Add(1)
		go func(st *rankState, i int) {
			defer s.wg.Done()
			select {
			case <-st.start:
			case <-s.done:
				return
			}
			err := p(st.comm)
			kind := opExit
			if err != nil {
				kind = opErr
			}
			final := &request{kind: kind, rank: i, err: err, clock: st.comm.clock}
			select {
			case s.yieldCh[i] <- final:
			case <-s.done:
			}
		}(st, i)
	}

	live := n
	var firstErr error
	aborted := false
	for live > 0 && !aborted {
		// Grant the grantable rank (unstarted or ready) with the smallest
		// virtual clock.
		next := -1
		for i, st := range s.ranks {
			if st.done || st.pending != nil {
				continue
			}
			if next == -1 || st.nextClock < s.ranks[next].nextClock {
				next = i
			}
		}
		if next == -1 {
			// Everyone live is blocked on unmatched operations.
			if firstErr != nil {
				break
			}
			return nil, s.deadlockError()
		}
		st := s.ranks[next]
		if !st.started {
			st.started = true
			st.start <- struct{}{}
		} else {
			r := st.ready
			st.ready = nil
			r.resume <- r.endTime
		}
		// The granted rank runs alone until it yields.
		r := <-s.yieldCh[next]
		s.seq++
		r.seq = s.seq
		switch r.kind {
		case opExit:
			st.done = true
			live--
		case opErr:
			if firstErr == nil {
				firstErr = r.err
			}
			st.done = true
			live--
			aborted = true
		default:
			st.pending = r
			st.nextClock = r.clock
		}
		s.matchAll()
	}

	// Abort path: the deferred close(done) releases every parked rank —
	// blocked senders and receivers return an abort error from their
	// pending operation — and wg.Wait joins them.
	if firstErr != nil {
		return nil, firstErr
	}
	clocks := make([]float64, n)
	elapsed := 0.0
	for i, st := range s.ranks {
		clocks[i] = st.comm.clock
		if clocks[i] > elapsed {
			elapsed = clocks[i]
		}
	}
	return &Result{Elapsed: elapsed, RankClocks: clocks, Trace: s.rec}, nil
}

// matchAll pairs pending sends with pending receives until no more pairs
// match. Matched ranks become ready (they still wait for their next
// scheduling slice).
func (s *scheduler) matchAll() {
	for {
		send, recv := s.findMatch()
		if send == nil {
			return
		}
		k, l := s.world.mapping[send.rank], s.world.mapping[recv.rank]
		lat := s.world.cloud.LT.At(k, l)
		bw := s.world.cloud.BT.At(k, l)
		start := send.clock
		if recv.clock > start {
			start = recv.clock
		}
		end := start + lat + float64(send.bytes)/bw
		s.rec.MustSend(send.rank, recv.rank, send.bytes, send.tag)
		for _, r := range [2]*request{send, recv} {
			st := s.ranks[r.rank]
			st.pending = nil
			r.endTime = end
			st.ready = r
			st.nextClock = end
		}
	}
}

// findMatch returns the matchable (send, recv) pair with the lowest
// combined sequence number (FIFO fairness), or nils.
func (s *scheduler) findMatch() (*request, *request) {
	var bestSend, bestRecv *request
	var bestKey int64 = 1<<62 - 1
	for _, rst := range s.ranks {
		recv := rst.pending
		if recv == nil || recv.kind != opRecv {
			continue
		}
		for _, sst := range s.ranks {
			send := sst.pending
			if send == nil || send.kind != opSend {
				continue
			}
			if send.peer != recv.rank {
				continue
			}
			if recv.peer != AnySource && recv.peer != send.rank {
				continue
			}
			if recv.tag != AnyTag && recv.tag != send.tag {
				continue
			}
			if key := send.seq + recv.seq; key < bestKey {
				bestKey = key
				bestSend, bestRecv = send, recv
			}
		}
	}
	return bestSend, bestRecv
}

func (s *scheduler) deadlockError() error {
	var stuck []string
	for _, st := range s.ranks {
		if st.pending == nil {
			continue
		}
		r := st.pending
		switch r.kind {
		case opSend:
			stuck = append(stuck, fmt.Sprintf("rank %d: Send(dst=%d, tag=%d)", r.rank, r.peer, r.tag))
		case opRecv:
			stuck = append(stuck, fmt.Sprintf("rank %d: Recv(src=%d, tag=%d)", r.rank, r.peer, r.tag))
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("mpi: deadlock: %v", stuck)
}
