package mpi

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
)

// These tests exist to put the runtime's goroutine machinery — the
// per-rank goroutines spawned in scheduler.run and the done-channel
// shutdown added for the ctxgoroutine contract — under the race detector
// and under leak scrutiny. Run them with:
//
//	go test -race ./internal/mpi/...

// ringProgram sends a token around the ring `laps` times: each rank
// receives from its left neighbor and sends to its right one.
func ringProgram(laps int) Program {
	return func(c *Comm) error {
		n := c.Size()
		left := (c.Rank() - 1 + n) % n
		right := (c.Rank() + 1) % n
		for lap := 0; lap < laps; lap++ {
			if c.Rank() == 0 {
				if err := c.Send(right, 1<<10, lap); err != nil {
					return err
				}
				if err := c.Recv(left, lap); err != nil {
					return err
				}
			} else {
				if err := c.Recv(left, lap); err != nil {
					return err
				}
				if err := c.Send(right, 1<<10, lap); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// TestConcurrentWorldsStress runs many independent Worlds in parallel,
// each with concurrent rank sends/receives, and checks that every run of
// the same program on the same placement produces the identical virtual
// makespan. Shared mutable state anywhere in the scheduler would trip the
// race detector here; nondeterminism would trip the makespan comparison.
func TestConcurrentWorldsStress(t *testing.T) {
	w := testWorld(t)
	ref, err := w.Run(ringProgram(8))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				res, err := testWorldNoT().Run(ringProgram(8))
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(res.Elapsed) != math.Float64bits(ref.Elapsed) {
					errs <- fmt.Errorf("makespan %v differs from reference %v", res.Elapsed, ref.Elapsed)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// testWorldNoT builds the standard 2×2 test world without a *testing.T so
// worker goroutines can construct fresh, independent instances.
func testWorldNoT() *World {
	cloud := &netmodel.Cloud{
		Provider: netmodel.AmazonEC2,
		Instance: netmodel.InstanceType{Name: "test", IntraBWMBps: 100, CrossBWScale: 1},
		Sites: []netmodel.Site{
			{Region: geo.MustRegion(geo.EC2Regions, "us-east-1"), Nodes: 2},
			{Region: geo.MustRegion(geo.EC2Regions, "ap-southeast-1"), Nodes: 2},
		},
		LT: mat.MustFrom([][]float64{{0.001, 0.1}, {0.1, 0.001}}),
		BT: mat.MustFrom([][]float64{{100e6, 10e6}, {10e6, 100e6}}),
	}
	w, err := NewWorld(cloud, []int{0, 0, 1, 1})
	if err != nil {
		panic(err)
	}
	return w
}

// TestAbortJoinsGoroutines checks the shutdown contract: when a rank
// errors mid-run (other ranks parked on unmatched operations), Run must
// return after joining every rank goroutine — no leaks that would
// accumulate across an experiment sweep.
func TestAbortJoinsGoroutines(t *testing.T) {
	w := testWorld(t)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		_, err := w.Run(func(c *Comm) error {
			if c.Rank() == 3 {
				return fmt.Errorf("rank 3 failed")
			}
			// Ranks 0-2 park on receives that will never match.
			return c.Recv(AnySource, AnyTag)
		})
		if err == nil || !strings.Contains(err.Error(), "rank 3 failed") {
			t.Fatalf("run %d: err = %v, want rank 3 failure", i, err)
		}
	}
	// Run joins its goroutines before returning, so the count must settle
	// back to the baseline (allow slack for runtime background threads).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+5 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", g, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlockJoinsGoroutines checks the same contract on the deadlock
// path: everyone blocked on unmatched receives must be released and
// joined when Run reports the deadlock.
func TestDeadlockJoinsGoroutines(t *testing.T) {
	w := testWorld(t)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		_, err := w.Run(func(c *Comm) error {
			return c.Recv(AnySource, AnyTag)
		})
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("run %d: err = %v, want deadlock", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+5 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", g, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
