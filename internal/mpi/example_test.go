package mpi_test

import (
	"fmt"
	"log"

	"geoprocmap/internal/mpi"
	"geoprocmap/internal/netmodel"
)

// ExampleWorld_Run times a tiny rank program — compute, a ring-neighbor
// exchange, a global barrier — on the paper's 4-region cloud under a
// block placement, and shows that the run's trace is captured for
// profiling.
func ExampleWorld_Run() {
	cloud, err := netmodel.PaperCloud(1)
	if err != nil {
		log.Fatal(err)
	}
	mapping := make([]int, 64)
	for i := range mapping {
		mapping[i] = i / 16
	}
	world, err := mpi.NewWorld(cloud, mapping)
	if err != nil {
		log.Fatal(err)
	}
	res, err := world.Run(func(c *mpi.Comm) error {
		if err := c.Compute(0.010); err != nil {
			return err
		}
		if err := c.SendRecv(c.Rank()^1, 64<<10, 0); err != nil {
			return err
		}
		return c.Barrier(1)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("messages traced:", res.Trace.Len())
	fmt.Println("all ranks finished together:", res.RankClocks[0] == res.RankClocks[63])
	// Output:
	// messages traced: 190
	// all ranks finished together: false
}
