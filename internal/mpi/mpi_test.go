package mpi

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
)

// testWorld: 2 sites × 2 nodes, intra 100 MB/s @1 ms, cross 10 MB/s
// @100 ms, exact (no jitter). Ranks 0,1 on site 0; ranks 2,3 on site 1.
func testWorld(t *testing.T) *World {
	t.Helper()
	east := geo.MustRegion(geo.EC2Regions, "us-east-1")
	sg := geo.MustRegion(geo.EC2Regions, "ap-southeast-1")
	cloud := &netmodel.Cloud{
		Provider: netmodel.AmazonEC2,
		Instance: netmodel.InstanceType{Name: "test", IntraBWMBps: 100, CrossBWScale: 1},
		Sites: []netmodel.Site{
			{Region: east, Nodes: 2},
			{Region: sg, Nodes: 2},
		},
		LT: mat.MustFrom([][]float64{{0.001, 0.1}, {0.1, 0.001}}),
		BT: mat.MustFrom([][]float64{{100e6, 10e6}, {10e6, 100e6}}),
	}
	w, err := NewWorld(cloud, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewWorldValidation(t *testing.T) {
	w := testWorld(t)
	cloud := w.cloud
	cases := []struct {
		name    string
		mapping []int
	}{
		{"empty", nil},
		{"range", []int{0, 5}},
		{"negative", []int{-1}},
		{"overload", []int{0, 0, 0}},
	}
	for _, tc := range cases {
		if _, err := NewWorld(cloud, tc.mapping); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if _, err := NewWorld(nil, []int{0}); err == nil {
		t.Error("nil cloud accepted")
	}
	if _, err := w.Run(nil); err == nil {
		t.Error("nil program accepted")
	}
}

func TestPingPongTiming(t *testing.T) {
	w := testWorld(t)
	res, err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(2, 10e6, 7); err != nil {
				return err
			}
			return c.Recv(2, 8)
		case 2:
			if err := c.Recv(0, 7); err != nil {
				return err
			}
			return c.Send(0, 10e6, 8)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each direction: 0.1 latency + 10e6/10e6 = 1.1 s; round trip 2.2.
	if !almostEq(res.Elapsed, 2.2, 1e-9) {
		t.Errorf("elapsed = %v, want 2.2", res.Elapsed)
	}
	if res.RankClocks[1] != 0 || res.RankClocks[3] != 0 {
		t.Error("idle ranks should stay at time 0")
	}
	if res.Trace.Len() != 2 {
		t.Errorf("trace has %d events, want 2", res.Trace.Len())
	}
}

func TestComputeOverlap(t *testing.T) {
	w := testWorld(t)
	res, err := w.Run(func(c *Comm) error {
		if err := c.Compute(float64(c.Rank())); err != nil {
			return err
		}
		// Rendezvous: 0↔1 (intra): starts when the later one arrives (t=1),
		// completes 1 + 0.001 + 1e6/100e6 = 1.011.
		switch c.Rank() {
		case 0:
			return c.Send(1, 1e6, 0)
		case 1:
			return c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.RankClocks[0], 1.011, 1e-9) {
		t.Errorf("rank 0 clock = %v, want 1.011", res.RankClocks[0])
	}
	if !almostEq(res.RankClocks[3], 3, 0) {
		t.Errorf("rank 3 clock = %v, want 3 (compute only)", res.RankClocks[3])
	}
}

func TestDeadlockDetection(t *testing.T) {
	w := testWorld(t)
	_, err := w.Run(func(c *Comm) error {
		// Everyone receives from the next rank; nobody ever sends.
		return c.Recv((c.Rank()+1)%c.Size(), 0)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestRendezvousRingWithSendRecv(t *testing.T) {
	w := testWorld(t)
	res, err := w.Run(func(c *Comm) error {
		return c.SendRecv((c.Rank()+1)%c.Size(), 1000, 3)
	})
	// SendRecv pairs (0,1),(1,2)... a full ring exchange isn't what
	// SendRecv does — partner relations must be symmetric. Rank 0's
	// partner is 1 but rank 1's partner is 2: deadlock expected.
	if err == nil {
		t.Fatalf("asymmetric partners should deadlock, got elapsed %v", res.Elapsed)
	}
}

func TestSendRecvPairs(t *testing.T) {
	w := testWorld(t)
	res, err := w.Run(func(c *Comm) error {
		partner := c.Rank() ^ 1 // (0,1) and (2,3), both intra-site
		return c.SendRecv(partner, 2e6, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two sequential intra transfers: 2 × (0.001 + 2e6/100e6) = 0.042.
	if !almostEq(res.Elapsed, 0.042, 1e-9) {
		t.Errorf("elapsed = %v, want 0.042", res.Elapsed)
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	w := testWorld(t)
	_, err := w.Run(func(c *Comm) error {
		if c.Rank() == 3 {
			return fmt.Errorf("boom")
		}
		// Others park on receives that never complete.
		return c.Recv(AnySource, AnyTag)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want program error, got %v", err)
	}
}

func TestOpValidation(t *testing.T) {
	w := testWorld(t)
	progs := map[string]Program{
		"send self":     func(c *Comm) error { return c.Send(c.Rank(), 1, 0) },
		"send range":    func(c *Comm) error { return c.Send(99, 1, 0) },
		"send negative": func(c *Comm) error { return c.Send((c.Rank()+1)%4, -1, 0) },
		"send bad tag":  func(c *Comm) error { return c.Send((c.Rank()+1)%4, 1, -2) },
		"recv self":     func(c *Comm) error { return c.Recv(c.Rank(), 0) },
		"recv range":    func(c *Comm) error { return c.Recv(42, 0) },
		"compute neg":   func(c *Comm) error { return c.Compute(-1) },
	}
	for name, p := range progs {
		if _, err := w.Run(p); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWildcardRecv(t *testing.T) {
	w := testWorld(t)
	res, err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// Two receives from anyone with any tag.
			if err := c.Recv(AnySource, AnyTag); err != nil {
				return err
			}
			return c.Recv(AnySource, AnyTag)
		}
		if c.Rank() == 1 || c.Rank() == 2 {
			return c.Send(0, 1000, 10+c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 2 {
		t.Errorf("trace has %d events", res.Trace.Len())
	}
}

func TestDeterminism(t *testing.T) {
	w := testWorld(t)
	prog := func(c *Comm) error {
		if err := c.Compute(0.01 * float64(c.Rank())); err != nil {
			return err
		}
		if err := c.Allreduce(64*1024, 0); err != nil {
			return err
		}
		return c.Barrier(2)
	}
	a, err := w.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b, err := w.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		if b.Elapsed != a.Elapsed {
			t.Fatalf("run %d: elapsed %v vs %v — nondeterministic", i, b.Elapsed, a.Elapsed)
		}
		if b.Trace.Len() != a.Trace.Len() {
			t.Fatalf("run %d: trace lengths differ", i)
		}
		for e := range a.Trace.Events() {
			if a.Trace.Events()[e] != b.Trace.Events()[e] {
				t.Fatalf("run %d: event %d differs", i, e)
			}
		}
	}
}

func TestTreeChildren(t *testing.T) {
	// Binomial tree over 8 ranks rooted at 0.
	cases := map[int]struct {
		children []int
		parent   int
	}{
		0: {[]int{1, 2, 4}, -1},
		1: {nil, 0},
		2: {[]int{3}, 0},
		4: {[]int{5, 6}, 0},
		6: {[]int{7}, 4},
	}
	for rank, want := range cases {
		children, parent := treeChildren(rank, 0, 8)
		if parent != want.parent {
			t.Errorf("rank %d parent = %d, want %d", rank, parent, want.parent)
		}
		if len(children) != len(want.children) {
			t.Errorf("rank %d children = %v, want %v", rank, children, want.children)
			continue
		}
		for i := range children {
			if children[i] != want.children[i] {
				t.Errorf("rank %d children = %v, want %v", rank, children, want.children)
			}
		}
	}
	// Non-zero root shifts the tree.
	if _, parent := treeChildren(3, 3, 8); parent != -1 {
		t.Error("root 3 should have no parent")
	}
}

func TestCollectivesComplete(t *testing.T) {
	w := testWorld(t)
	res, err := w.Run(func(c *Comm) error {
		if err := c.Bcast(1, 1e6, 0); err != nil {
			return err
		}
		if err := c.Reduce(2, 1e6, 1); err != nil {
			return err
		}
		if err := c.Allreduce(1e6, 2); err != nil {
			return err
		}
		return c.Barrier(4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("nonpositive elapsed time")
	}
	// Bcast: n-1 msgs; Reduce: n-1; Allreduce: 2(n-1); Barrier: 2(n-1).
	want := 3*2 + 2*3*2
	_ = want
	if res.Trace.Len() != 6*(w.N()-1) {
		t.Errorf("trace has %d events, want %d", res.Trace.Len(), 6*(w.N()-1))
	}
}

func TestCollectiveArgErrors(t *testing.T) {
	w := testWorld(t)
	if _, err := w.Run(func(c *Comm) error { return c.Bcast(9, 1, 0) }); err == nil {
		t.Error("bad bcast root accepted")
	}
	if _, err := w.Run(func(c *Comm) error { return c.Reduce(-1, 1, 0) }); err == nil {
		t.Error("bad reduce root accepted")
	}
	if _, err := w.Run(func(c *Comm) error { return c.SendRecv(c.Rank(), 1, 0) }); err == nil {
		t.Error("self SendRecv accepted")
	}
}

// The profiling loop closes: a program's trace feeds the mapper's pattern.
func TestTraceFeedsProfiler(t *testing.T) {
	w := testWorld(t)
	res, err := w.Run(func(c *Comm) error {
		return c.Allreduce(512*1024, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Trace.Graph()
	if g.TotalVolume() != float64(2*(w.N()-1)*512*1024) {
		t.Errorf("profiled volume = %v", g.TotalVolume())
	}
	if g.N() != w.N() {
		t.Error("pattern dimension mismatch")
	}
}

// Property: collectives complete without deadlock and elapsed time is
// nonnegative for arbitrary rank counts and roots.
func TestQuickCollectivesRun(t *testing.T) {
	east := geo.MustRegion(geo.EC2Regions, "us-east-1")
	sg := geo.MustRegion(geo.EC2Regions, "ap-southeast-1")
	f := func(nRaw, rootRaw uint8) bool {
		n := int(nRaw%12) + 1
		root := int(rootRaw) % n
		cloud := &netmodel.Cloud{
			Provider: netmodel.AmazonEC2,
			Instance: netmodel.InstanceType{Name: "t", IntraBWMBps: 100, CrossBWScale: 1},
			Sites: []netmodel.Site{
				{Region: east, Nodes: (n + 1) / 2},
				{Region: sg, Nodes: n/2 + 1},
			},
			LT: mat.MustFrom([][]float64{{0.001, 0.1}, {0.1, 0.001}}),
			BT: mat.MustFrom([][]float64{{100e6, 10e6}, {10e6, 100e6}}),
		}
		mapping := make([]int, n)
		for i := range mapping {
			mapping[i] = (i * 2) / n
		}
		w, err := NewWorld(cloud, mapping)
		if err != nil {
			return false
		}
		res, err := w.Run(func(c *Comm) error {
			if err := c.Bcast(root, 1024, 0); err != nil {
				return err
			}
			return c.Allreduce(1024, 1)
		})
		if err != nil {
			return false
		}
		return res.Elapsed >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
