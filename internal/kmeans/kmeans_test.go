package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"geoprocmap/internal/stats"
)

func TestSqDist(t *testing.T) {
	if got := SqDist(Point{0, 0}, Point{3, 4}); got != 25 {
		t.Errorf("SqDist = %v, want 25", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	SqDist(Point{1}, Point{1, 2})
}

func TestClusterSeparatedBlobs(t *testing.T) {
	rng := stats.NewRand(1)
	var points []Point
	centers := []Point{{0, 0}, {100, 0}, {0, 100}}
	for _, c := range centers {
		for i := 0; i < 20; i++ {
			points = append(points, Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
		}
	}
	// Forgy initialization is sensitive to the starting draw (two initial
	// centroids can land in the same blob), so check that a clear majority
	// of seeds recovers the exact blob structure.
	perfect := 0
	for seed := int64(0); seed < 10; seed++ {
		res, err := Cluster(points, 3, 100, stats.NewRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		seen := map[int]bool{}
		for b := 0; b < 3 && ok; b++ {
			c := res.Assignment[b*20]
			if seen[c] {
				ok = false
				break
			}
			seen[c] = true
			for i := 1; i < 20; i++ {
				if res.Assignment[b*20+i] != c {
					ok = false
					break
				}
			}
		}
		if ok {
			if res.Inertia > 500 {
				t.Errorf("seed %d: inertia %v too high for separated blobs", seed, res.Inertia)
			}
			perfect++
		}
	}
	if perfect < 6 {
		t.Errorf("only %d/10 seeds recovered the blob structure, want ≥6", perfect)
	}
}

func TestClusterKEqualsN(t *testing.T) {
	points := []Point{{0}, {10}, {20}}
	res, err := Cluster(points, 3, 50, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("k=n inertia = %v, want 0", res.Inertia)
	}
	seen := map[int]bool{}
	for _, c := range res.Assignment {
		if seen[c] {
			t.Error("k=n should give singleton clusters")
		}
		seen[c] = true
	}
}

func TestClusterKOne(t *testing.T) {
	points := []Point{{0, 0}, {2, 0}, {4, 0}}
	res, err := Cluster(points, 1, 50, stats.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-2) > 1e-9 {
		t.Errorf("centroid = %v, want mean (2,0)", res.Centroids[0])
	}
}

func TestClusterErrors(t *testing.T) {
	rng := stats.NewRand(1)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"empty", func() error { _, err := Cluster(nil, 1, 10, rng); return err }},
		{"k0", func() error { _, err := Cluster([]Point{{1}}, 0, 10, rng); return err }},
		{"k>n", func() error { _, err := Cluster([]Point{{1}}, 2, 10, rng); return err }},
		{"maxIter", func() error { _, err := Cluster([]Point{{1}}, 1, 0, rng); return err }},
		{"nilRNG", func() error { _, err := Cluster([]Point{{1}}, 1, 10, nil); return err }},
		{"ragged", func() error { _, err := Cluster([]Point{{1}, {1, 2}}, 1, 10, rng); return err }},
	}
	for _, tc := range cases {
		if tc.fn() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestGroups(t *testing.T) {
	g := Groups([]int{0, 2, 0, 1}, 3)
	if len(g[0]) != 2 || g[0][0] != 0 || g[0][1] != 2 {
		t.Errorf("group 0 = %v", g[0])
	}
	if len(g[1]) != 1 || len(g[2]) != 1 {
		t.Errorf("groups = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range assignment did not panic")
		}
	}()
	Groups([]int{5}, 3)
}

func TestDeterminism(t *testing.T) {
	points := []Point{{1, 1}, {2, 2}, {50, 50}, {51, 49}, {-3, 8}}
	a, err := Cluster(points, 2, 100, stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(points, 2, 100, stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

// Property: every point is assigned to its nearest final centroid, and the
// union of Groups is exactly the input index set.
func TestQuickNearestCentroidInvariant(t *testing.T) {
	f := func(seed int64, rawPts []uint16, kRaw uint8) bool {
		if len(rawPts) < 2 {
			return true
		}
		points := make([]Point, len(rawPts))
		for i, r := range rawPts {
			points[i] = Point{float64(r % 251), float64((r / 251) % 251)}
		}
		k := int(kRaw)%len(points) + 1
		res, err := Cluster(points, k, 200, stats.NewRand(seed))
		if err != nil {
			return false
		}
		for i, p := range points {
			mine := SqDist(p, res.Centroids[res.Assignment[i]])
			for _, c := range res.Centroids {
				if SqDist(p, c) < mine-1e-9 {
					return false
				}
			}
		}
		groups := Groups(res.Assignment, k)
		total := 0
		for _, g := range groups {
			total += len(g)
		}
		return total == len(points)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
