// Package kmeans implements K-means clustering with Forgy initialization.
//
// The paper uses K-means twice: the grouping optimization clusters
// geo-distributed sites by their physical coordinates before the group-order
// search (Section 4.2, "we group the sites by utilizing the K-means
// clustering method … We select Forgy method to determine the κ initial
// means"), and parallel K-means is one of the two machine-learning
// evaluation workloads. This package provides the shared algorithm over
// d-dimensional points.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a d-dimensional coordinate.
type Point []float64

// Result holds the outcome of a clustering run.
type Result struct {
	// Assignment[i] is the cluster index of input point i.
	Assignment []int
	// Centroids are the final cluster means. len(Centroids) == k.
	Centroids []Point
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// Inertia is the sum of squared distances from each point to its
	// centroid (the K-means objective).
	Inertia float64
}

// SqDist returns the squared Euclidean distance between two points of the
// same dimension.
func SqDist(a, b Point) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("kmeans: dimension mismatch %d vs %d", len(a), len(b))) //geolint:ignore libpanic dimension mismatch is a programmer bug on the Lloyd-iteration hot path
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Cluster partitions points into k clusters using Lloyd's algorithm with
// Forgy initialization (k distinct input points chosen uniformly at random
// as initial centroids). It runs until assignments stabilize or maxIter
// iterations, whichever comes first. rng must be non-nil.
//
// k must satisfy 1 <= k <= len(points), all points must share one
// dimension, and maxIter must be positive.
func Cluster(points []Point, k int, maxIter int, rng *rand.Rand) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if k < 1 || k > len(points) {
		return nil, fmt.Errorf("kmeans: k=%d out of range [1,%d]", k, len(points))
	}
	if maxIter <= 0 {
		return nil, fmt.Errorf("kmeans: maxIter=%d must be positive", maxIter)
	}
	if rng == nil {
		return nil, fmt.Errorf("kmeans: nil rng")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}

	// Forgy initialization: choose k distinct points as initial means.
	perm := rng.Perm(len(points))
	centroids := make([]Point, k)
	for c := 0; c < k; c++ {
		centroids[c] = append(Point(nil), points[perm[c]]...)
	}

	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	iterations := 0
	for iter := 0; iter < maxIter; iter++ {
		iterations = iter + 1
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := SqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute means. Empty clusters keep their previous centroid
		// (a standard Forgy-variant convention).
		sums := make([]Point, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make(Point, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += SqDist(p, centroids[assign[i]])
	}
	return &Result{
		Assignment: assign,
		Centroids:  centroids,
		Iterations: iterations,
		Inertia:    inertia,
	}, nil
}

// Groups converts an assignment vector into k slices of point indices.
// Clusters may be empty.
func Groups(assignment []int, k int) [][]int {
	out := make([][]int, k)
	for i, c := range assignment {
		if c < 0 || c >= k {
			panic(fmt.Sprintf("kmeans: assignment[%d]=%d out of range [0,%d)", i, c, k)) //geolint:ignore libpanic assignments come from Cluster, which only emits in-range clusters
		}
		out[c] = append(out[c], i)
	}
	return out
}
