package netsim

import (
	"testing"
	"testing/quick"

	"geoprocmap/internal/trace"
	"geoprocmap/internal/units"
)

func TestReplayEmpty(t *testing.T) {
	s := testSim(t)
	got, err := s.ReplayTrace(nil)
	if err != nil || got != 0 {
		t.Errorf("empty replay = %v, %v", got, err)
	}
}

func TestReplaySingleMessage(t *testing.T) {
	s := testSim(t)
	got, err := s.ReplayTrace([]trace.Event{{Src: 0, Dst: 2, Bytes: 10e6}})
	if err != nil {
		t.Fatal(err)
	}
	want := 10e6/10e6 + 0.1
	if !almost(got.Float(), want, 1e-9) {
		t.Errorf("replay = %v, want %v", got, want)
	}
}

func TestReplayDependencyChain(t *testing.T) {
	s := testSim(t)
	// 0→2 (cross), then 2→1 (cross back), then 1→0 (intra would be wrong:
	// 1 and 0 share site 0, so intra at NIC rate): latencies accumulate
	// along the chain because each receiver is synchronized.
	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 10e6},  // ends t=1, arrives 1.1
		{Src: 2, Dst: 1, Bytes: 10e6},  // starts 1.1, ends 2.1, arrives 2.2
		{Src: 1, Dst: 0, Bytes: 100e6}, // intra: starts 2.2, ends 3.2, arrives 3.201
	}
	got, err := s.ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got.Float(), 3.201, 1e-6) {
		t.Errorf("chain replay = %v, want 3.201", got)
	}
}

func TestReplayWANSerialization(t *testing.T) {
	s := testSim(t)
	// Two independent senders on the same WAN pipe serialize FIFO.
	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 10e6},
		{Src: 1, Dst: 3, Bytes: 10e6},
	}
	got, err := s.ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	// First: 0→1s; second queues: 1→2s; arrival 2.1.
	if !almost(got.Float(), 2.1, 1e-9) {
		t.Errorf("serialized replay = %v, want 2.1", got)
	}
}

func TestReplayOppositeDirectionsIndependent(t *testing.T) {
	s := testSim(t)
	// The (0,1) and (1,0) WAN pipes are distinct resources.
	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 10e6},
		{Src: 3, Dst: 1, Bytes: 10e6},
	}
	got, err := s.ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got.Float(), 1.1, 1e-9) {
		t.Errorf("bidirectional replay = %v, want 1.1 (independent pipes)", got)
	}
}

func TestReplayValidation(t *testing.T) {
	s := testSim(t)
	bad := [][]trace.Event{
		{{Src: -1, Dst: 0, Bytes: 1}},
		{{Src: 0, Dst: 9, Bytes: 1}},
		{{Src: 2, Dst: 2, Bytes: 1}},
		{{Src: 0, Dst: 1, Bytes: -1}},
	}
	for i, events := range bad {
		if _, err := s.ReplayTrace(events); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReplayRewardsColocation(t *testing.T) {
	s := testSim(t)
	heavyPair := func(a, b int) []trace.Event {
		return []trace.Event{
			{Src: a, Dst: b, Bytes: 20e6},
			{Src: b, Dst: a, Bytes: 20e6},
		}
	}
	intra, err := s.ReplayTrace(heavyPair(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	cross, err := s.ReplayTrace(heavyPair(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if intra*3 > cross {
		t.Errorf("intra %v not ≪ cross %v", intra, cross)
	}
}

// Property: replay time is monotone under event appending and at least the
// single-message lower bound of each event.
func TestQuickReplayMonotone(t *testing.T) {
	s, err := New(testCloud(), []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint32) bool {
		if len(raw) > 15 {
			raw = raw[:15]
		}
		var events []trace.Event
		prev := units.Seconds(-1)
		for _, r := range raw {
			src := int(r % 4)
			dst := int((r / 4) % 4)
			if src == dst {
				dst = (dst + 1) % 4
			}
			events = append(events, trace.Event{Src: src, Dst: dst, Bytes: int64(r%100) * 1e5})
			got, err := s.ReplayTrace(events)
			if err != nil {
				return false
			}
			if got < prev-1e-9 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: replay is never faster than the fluid phase engine's makespan
// lower bound intuition — specifically, at least the max single-message
// service time.
func TestQuickReplayLowerBound(t *testing.T) {
	s, err := New(testCloud(), []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		var events []trace.Event
		lower := units.Seconds(0)
		for _, r := range raw {
			src := int(r % 4)
			dst := int((r / 4) % 4)
			if src == dst {
				dst = (dst + 1) % 4
			}
			bytes := int64(r%50+1) * 1e5
			events = append(events, trace.Event{Src: src, Dst: dst, Bytes: bytes})
			capacity, lat, cross := s.link(src, dst)
			rate := s.nic[src]
			if cross && capacity < rate {
				rate = capacity
			}
			if lb := units.Bytes(bytes).Over(rate) + lat; lb > lower {
				lower = lb
			}
		}
		got, err := s.ReplayTrace(events)
		if err != nil {
			return false
		}
		return got >= lower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
