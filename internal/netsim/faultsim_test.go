package netsim

import (
	"math"
	"reflect"
	"testing"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/trace"
	"geoprocmap/internal/units"
)

// faultySim builds a simulator over testCloud with the given schedule.
func faultySim(t *testing.T, sched *faults.Schedule) *Simulator {
	t.Helper()
	s, err := NewWithOptions(testCloud(), []int{0, 0, 1, 1}, Options{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFaultyNilScheduleMatchesPlain(t *testing.T) {
	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 10e6},
		{Src: 2, Dst: 1, Bytes: 5e6},
	}
	msgs := []Message{{Src: 0, Dst: 2, Bytes: 10e6}, {Src: 1, Dst: 3, Bytes: 10e6}}
	plain := testSim(t)
	wantSpan, err := plain.ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	wantPhase, err := plain.SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}

	s := faultySim(t, nil)
	span, rep, err := s.ReplayTraceFaulty(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(span.Float()) != math.Float64bits(wantSpan.Float()) {
		t.Errorf("faulty replay with nil schedule = %v, plain = %v", span, wantSpan)
	}
	if !rep.Empty() {
		t.Errorf("nil schedule produced non-empty report: %v", rep)
	}
	phase, rep, err := s.SimulatePhaseFaulty(msgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(phase.Float()) != math.Float64bits(wantPhase.Float()) {
		t.Errorf("faulty phase with nil schedule = %v, plain = %v", phase, wantPhase)
	}
	if !rep.Empty() {
		t.Errorf("nil schedule produced non-empty phase report: %v", rep)
	}
}

func TestReplayBlocksUntilRecovery(t *testing.T) {
	sched := &faults.Schedule{Name: "window", Events: []faults.Event{
		{Kind: faults.LinkDown, Start: 0, End: 2, Src: 0, Dst: 1},
	}}
	s := faultySim(t, sched)
	span, rep, err := s.ReplayTraceFaulty([]trace.Event{{Src: 0, Dst: 2, Bytes: 10e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Blocked until t=2, then 1 s transmission + 0.1 s propagation.
	if want := 2 + 1 + 0.1; !almost(span.Float(), want, 1e-9) {
		t.Errorf("span = %v, want %v", span, want)
	}
	if rep.Retries == 0 || !almost(rep.BlockedSeconds.Float(), 2, 1e-9) || rep.Dropped != 0 {
		t.Errorf("report = %+v, want retries > 0, blocked 2 s, no drops", rep)
	}
}

func TestReplayDropsAfterDeadline(t *testing.T) {
	sched := &faults.Schedule{Name: "blackout", Events: []faults.Event{
		{Kind: faults.SiteOutage, Start: 0, Site: 1}, // open-ended
	}}
	s := faultySim(t, sched)
	span, rep, err := s.ReplayTraceFaulty([]trace.Event{{Src: 0, Dst: 2, Bytes: 10e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(span.Float(), DefaultFaultDeadline.Float(), 1e-9) {
		t.Errorf("span = %v, want the %v s deadline", span, DefaultFaultDeadline)
	}
	if rep.Dropped != 1 || !almost(rep.BlockedSeconds.Float(), DefaultFaultDeadline.Float(), 1e-9) {
		t.Errorf("report = %+v, want 1 drop and deadline blocked time", rep)
	}
	if !reflect.DeepEqual(rep.DeadSites, []int{1}) {
		t.Errorf("DeadSites = %v, want [1]", rep.DeadSites)
	}
}

func TestDegradationScalesRateAndLatency(t *testing.T) {
	sched := &faults.Schedule{Name: "soft", Events: []faults.Event{
		{Kind: faults.BandwidthDegrade, Start: 0, Src: faults.Wildcard, Dst: faults.Wildcard, Factor: 0.5},
		{Kind: faults.LatencySpike, Start: 0, Src: faults.Wildcard, Dst: faults.Wildcard, Factor: 2},
	}}
	s := faultySim(t, sched)
	span, rep, err := s.ReplayTraceFaulty([]trace.Event{{Src: 0, Dst: 2, Bytes: 10e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half the 10 MB/s cross-site bandwidth and double the 0.1 s latency.
	if want := 10e6/5e6 + 0.2; !almost(span.Float(), want, 1e-9) {
		t.Errorf("replay span = %v, want %v", span, want)
	}
	phase, _, err := s.SimulatePhaseFaulty([]Message{{Src: 0, Dst: 2, Bytes: 10e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10e6/5e6 + 0.2; !almost(phase.Float(), want, 1e-9) {
		t.Errorf("phase makespan = %v, want %v", phase, want)
	}
	if len(rep.DegradedPairs) == 0 {
		t.Error("degradation left DegradedPairs empty")
	}
	// Intra-site traffic is immune to wildcard WAN events.
	span, _, err = s.ReplayTraceFaulty([]trace.Event{{Src: 0, Dst: 1, Bytes: 100e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100e6/100e6 + 0.001; !almost(span.Float(), want, 1e-9) {
		t.Errorf("intra-site span = %v, want healthy %v", span, want)
	}
}

func TestLossForcesRetransmissions(t *testing.T) {
	sched := &faults.Schedule{Name: "lossy", Seed: 7, Events: []faults.Event{
		{Kind: faults.ProbeLoss, Start: 0, Src: faults.Wildcard, Dst: faults.Wildcard, Probability: 0.9},
	}}
	s := faultySim(t, sched)
	events := []trace.Event{{Src: 0, Dst: 2, Bytes: 10e6}, {Src: 1, Dst: 3, Bytes: 10e6}}
	span, rep, err := s.ReplayTraceFaulty(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := testSim(t).ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if span <= healthy {
		t.Errorf("lossy span %v not above healthy %v", span, healthy)
	}
	if rep.Retries == 0 || rep.BlockedSeconds == 0 {
		t.Errorf("report = %+v, want retransmission accounting", rep)
	}
}

func TestFaultyStartPositionsSchedule(t *testing.T) {
	sched := &faults.Schedule{Name: "late-window", Events: []faults.Event{
		{Kind: faults.LinkDown, Start: 5, End: 6, Src: 0, Dst: 1},
	}}
	s := faultySim(t, sched)
	ev := []trace.Event{{Src: 0, Dst: 2, Bytes: 10e6}}
	before, repB, err := s.ReplayTraceFaulty(ev, 0)
	if err != nil {
		t.Fatal(err)
	}
	during, repD, err := s.ReplayTraceFaulty(ev, 5.5)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 0.1; !almost(before.Float(), want, 1e-9) || !repB.Empty() {
		t.Errorf("start=0: span %v (want %v), report %+v", before, want, repB)
	}
	// Blocked from 5.5 until the window ends at 6, then the healthy cost.
	if want := 0.5 + 1 + 0.1; !almost(during.Float(), want, 1e-9) || repD.Empty() {
		t.Errorf("start=5.5: span %v (want %v), report %+v", during, want, repD)
	}
}

func TestSimulateIterationFaultyMergesReports(t *testing.T) {
	sched := &faults.Schedule{Name: "blackout", Events: []faults.Event{
		{Kind: faults.SiteOutage, Start: 0, Site: 1},
	}}
	s := faultySim(t, sched)
	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 1e6, Tag: 0},
		{Src: 1, Dst: 3, Bytes: 1e6, Tag: 1},
	}
	res, rep, err := s.SimulateIterationFaulty(events, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != 2 || rep.Dropped != 2 {
		t.Errorf("report = %+v, want both messages dropped", rep)
	}
	if res.ComputeSeconds != 0.5 || res.CommSeconds <= 0 {
		t.Errorf("result = %+v", res)
	}
	if _, _, err := s.SimulateIterationFaulty(events, -1, 0); err == nil {
		t.Error("negative compute time accepted")
	}
}

func TestPlainEntryPointsDelegateWhenFaulty(t *testing.T) {
	sched := &faults.Schedule{Name: "soft", Events: []faults.Event{
		{Kind: faults.BandwidthDegrade, Start: 0, Src: faults.Wildcard, Dst: faults.Wildcard, Factor: 0.5},
	}}
	s := faultySim(t, sched)
	span, err := s.ReplayTrace([]trace.Event{{Src: 0, Dst: 2, Bytes: 10e6}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 10e6/5e6 + 0.1; !almost(span.Float(), want, 1e-9) {
		t.Errorf("ReplayTrace under faults = %v, want %v", span, want)
	}
	mk, err := s.SimulatePhase([]Message{{Src: 0, Dst: 2, Bytes: 10e6}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 10e6/5e6 + 0.1; !almost(mk.Float(), want, 1e-9) {
		t.Errorf("SimulatePhase under faults = %v, want %v", mk, want)
	}
}

func TestFaultySeedDeterminism(t *testing.T) {
	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 4 << 20},
		{Src: 1, Dst: 3, Bytes: 4 << 20},
		{Src: 2, Dst: 0, Bytes: 1 << 20},
	}
	run := func(seed int64) (units.Seconds, *faults.Report) {
		c := testCloud()
		s, err := NewWithOptions(c, []int{0, 0, 1, 1}, Options{Faults: faults.FlakyWAN(c.M(), seed)})
		if err != nil {
			t.Fatal(err)
		}
		span, rep, err := s.ReplayTraceFaulty(events, 0)
		if err != nil {
			t.Fatal(err)
		}
		return span, rep
	}
	spanA, repA := run(42)
	spanB, repB := run(42)
	if math.Float64bits(spanA.Float()) != math.Float64bits(spanB.Float()) {
		t.Errorf("same seed gave spans %v and %v", spanA, spanB)
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Errorf("same seed gave reports %+v and %+v", repA, repB)
	}
}
