// Package netsim is a flow-level discrete-event network simulator for
// geo-distributed clouds — the reproduction's substitute for the paper's
// ns-2 cluster simulations and, combined with the workload compute models,
// for its Amazon EC2 measurements.
//
// The network model follows the paper's site-pair formulation: every
// ordered site pair (k, l) with k ≠ l is one shared WAN pipe of capacity
// BT(k, l) and propagation delay LT(k, l); all concurrent messages between
// those two sites contend for that pipe. Within a site the fabric is
// non-blocking, so intra-site flows are bounded only by each endpoint's
// NIC (whose rate is the measured intra-site pair bandwidth BT(k, k)).
// Endpoint NICs also bound WAN flows. Rates are allocated max-min fairly
// across all constraints by progressive filling, recomputed at every flow
// arrival or completion — the classic fluid approximation of TCP sharing
// that flow-level simulators use.
//
// Two engines are provided:
//
//   - Simulator.SimulatePhase: the exact event-driven engine with NIC
//     coupling (used for paper-scale runs, 64–256 processes).
//   - Simulator.SimulatePhasePS: an O(F log F) analytic per-link
//     processor-sharing engine without NIC coupling (used for the largest
//     Figure 7 scales, 1024–8192 processes, where the event engine's
//     per-event rate recomputation would dominate).
//
// An application iteration is simulated as a compute phase followed by
// communication sub-phases (messages grouped by trace tag, e.g. a reduce
// must finish before the following broadcast starts).
package netsim

import (
	"fmt"
	"math"
	"sort"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/trace"
	"geoprocmap/internal/units"
)

// Message is one point-to-point transfer between processes.
type Message struct {
	Src   int // sending process
	Dst   int // receiving process
	Bytes units.Bytes
}

// Options tunes the simulator's network model.
type Options struct {
	// DedicatedWAN disables the shared-pipe model: each process pair gets
	// the full site-pair bandwidth BT(k, l) with no cross-flow contention,
	// matching the paper's α–β formulation (and its ns-2 setup, where
	// every node pair is simulated with the calibrated pair bandwidth).
	// The default (false) models each ordered site pair as one shared WAN
	// pipe — more pessimistic and closer to real cross-region behavior.
	DedicatedWAN bool
	// Faults attaches a fault schedule. When non-nil, SimulatePhase and
	// ReplayTrace consult the schedule (outages block senders until a
	// deadline, degradations scale rates, losses force retransmissions)
	// and the *Faulty variants additionally return a structured
	// faults.Report. nil simulates a healthy network.
	Faults *faults.Schedule
	// FaultDeadline is how long a sender blocks on a dead link before
	// abandoning the message (default 10 simulated seconds).
	FaultDeadline units.Seconds
}

// DefaultFaultDeadline is the Options.FaultDeadline default.
const DefaultFaultDeadline = units.Seconds(10.0)

// deadline returns the configured fault deadline.
func (o Options) deadline() units.Seconds {
	if o.FaultDeadline > 0 {
		return o.FaultDeadline
	}
	return DefaultFaultDeadline
}

// Simulator simulates communication phases of an application whose
// processes are placed on the sites of a cloud.
type Simulator struct {
	cloud   *netmodel.Cloud
	mapping []int // process → site
	nic     []units.BytesPerSec
	opt     Options
}

// New builds a simulator with default options (shared WAN pipes). See
// NewWithOptions.
func New(cloud *netmodel.Cloud, mapping []int) (*Simulator, error) {
	return NewWithOptions(cloud, mapping, Options{})
}

// NewWithOptions builds a simulator for the given cloud and process
// placement. mapping[i] is the site of process i; the per-site process
// counts must respect the cloud's capacities (one process per node, as in
// the paper).
func NewWithOptions(cloud *netmodel.Cloud, mapping []int, opt Options) (*Simulator, error) {
	if cloud == nil {
		return nil, fmt.Errorf("netsim: nil cloud")
	}
	if len(mapping) == 0 {
		return nil, fmt.Errorf("netsim: empty mapping")
	}
	load := make([]int, cloud.M())
	for i, s := range mapping {
		if s < 0 || s >= cloud.M() {
			return nil, fmt.Errorf("netsim: mapping[%d] = %d out of range [0,%d)", i, s, cloud.M())
		}
		load[s]++
	}
	for j, l := range load {
		if l > cloud.Sites[j].Nodes {
			return nil, fmt.Errorf("netsim: %d processes on site %d, capacity %d", l, j, cloud.Sites[j].Nodes)
		}
	}
	// Each process runs on its own instance; its NIC rate is the
	// intra-site pair bandwidth of its site.
	nic := make([]units.BytesPerSec, len(mapping))
	for i, s := range mapping {
		nic[i] = cloud.Bandwidth(s, s)
	}
	return &Simulator{cloud: cloud, mapping: append([]int(nil), mapping...), nic: nic, opt: opt}, nil
}

// link returns the constrained WAN capacity and latency for a message,
// with ok=false for intra-site traffic (bounded by NICs only).
func (s *Simulator) link(src, dst int) (capacity units.BytesPerSec, latency units.Seconds, cross bool) {
	k, l := s.mapping[src], s.mapping[dst]
	if k == l {
		return 0, s.cloud.Latency(k, k), false
	}
	return s.cloud.Bandwidth(k, l), s.cloud.Latency(k, l), true
}

// SimulatePhase runs the event-driven engine on one set of concurrent
// messages and returns the phase makespan: the time until the last message
// is delivered (transmission under max-min fair rates plus the link's
// propagation delay). An empty phase takes zero time. With Options.Faults
// set, the phase is simulated under the schedule's state at time zero; use
// SimulatePhaseFaulty to position the phase in time and receive the
// structured fault report.
func (s *Simulator) SimulatePhase(msgs []Message) (units.Seconds, error) {
	if s.opt.Faults != nil {
		makespan, _, err := s.SimulatePhaseFaulty(msgs, 0)
		return makespan, err
	}
	flows, maxLatency, err := s.buildFlows(msgs)
	if err != nil {
		return 0, err
	}
	if len(flows) == 0 {
		return maxLatency, nil
	}
	makespan, err := s.solveFluid(flows)
	if err != nil {
		return 0, err
	}
	if maxLatency > makespan {
		makespan = maxLatency
	}
	return makespan, nil
}

// solveFluid registers the constraints of the flows (scaling each WAN
// capacity by the flow's wanFactor) and runs the progressive-filling
// event loop, returning the time of the last delivery.
func (s *Simulator) solveFluid(flows []*flowState) (units.Seconds, error) {
	// Constraint registry: WAN pipes (per ordered site pair) plus one
	// egress and one ingress constraint per participating process.
	reg := newConstraintSet()
	for fi, f := range flows {
		k, l := s.mapping[f.src], s.mapping[f.dst]
		if k != l {
			if s.opt.DedicatedWAN {
				// Per-flow rate cap at the site-pair bandwidth, no
				// cross-flow contention on the WAN.
				f.constraints = append(f.constraints, reg.id(conKey{kind: conFlowCap, a: fi}, s.cloud.Bandwidth(k, l).Scale(f.wanFactor)))
			} else {
				f.constraints = append(f.constraints, reg.id(conKey{kind: conLink, a: k, b: l}, s.cloud.Bandwidth(k, l).Scale(f.wanFactor)))
			}
		}
		f.constraints = append(f.constraints,
			reg.id(conKey{kind: conEgress, a: f.src}, s.nic[f.src]),
			reg.id(conKey{kind: conIngress, a: f.dst}, s.nic[f.dst]))
	}

	now := units.Seconds(0)
	makespan := units.Seconds(0)
	active := flows
	for len(active) > 0 {
		rates := reg.maxMinRates(active)
		// Find the earliest completion under current rates.
		dt := units.Seconds(math.Inf(1))
		for i, f := range active {
			if rates[i] <= 0 {
				return 0, fmt.Errorf("netsim: flow %d→%d starved (zero rate)", f.src, f.dst)
			}
			if t := f.remaining.Over(rates[i]); t < dt {
				dt = t
			}
		}
		now += dt
		next := active[:0]
		for i, f := range active {
			f.remaining -= rates[i].Times(dt)
			if f.remaining <= units.Bytes(1e-9) {
				if d := now + f.latency; d > makespan {
					makespan = d
				}
				continue
			}
			next = append(next, f)
		}
		active = next
	}
	return makespan, nil
}

// SimulatePhasePS runs the analytic per-link processor-sharing engine: the
// flows on each pipe share it equally and pipes are independent. Intra-site
// traffic is bounded per endpoint NIC, approximated as a site-local pool of
// capacity BT(k,k) × nodes/2 (every node can send and receive at NIC rate
// simultaneously, so a site sustains nodes/2 concurrent full-rate pairs).
func (s *Simulator) SimulatePhasePS(msgs []Message) (units.Seconds, error) {
	flows, maxLatency, err := s.buildFlows(msgs)
	if err != nil {
		return 0, err
	}
	if len(flows) == 0 {
		return maxLatency, nil
	}
	type pool struct {
		capacity units.BytesPerSec
		latency  units.Seconds
		sizes    []float64
	}
	pools := map[conKey]*pool{}
	for _, f := range flows {
		k, l := s.mapping[f.src], s.mapping[f.dst]
		key := conKey{kind: conLink, a: k, b: l}
		if k != l && s.opt.DedicatedWAN {
			// Each process pair gets its own pipe at the site-pair rate.
			key = conKey{kind: conFlowCap, a: f.src, b: f.dst}
		}
		p := pools[key]
		if p == nil {
			capacity := s.cloud.Bandwidth(k, l)
			if k == l {
				capacity = capacity.Scale(math.Max(1, float64(s.cloud.Sites[k].Nodes)/2))
			}
			p = &pool{capacity: capacity, latency: s.cloud.Latency(k, l)}
			pools[key] = p
		}
		p.sizes = append(p.sizes, f.remaining.Float())
	}
	makespan := maxLatency
	for _, p := range pools {
		sort.Float64s(p.sizes)
		// Processor sharing with equal shares: completion time of the
		// largest flow is Σ marginal drain times.
		t, prev := units.Seconds(0), 0.0
		activeCount := float64(len(p.sizes))
		for _, b := range p.sizes {
			t += units.Bytes(b - prev).Scale(activeCount).Over(p.capacity)
			prev = b
			activeCount--
		}
		if d := t + p.latency; d > makespan {
			makespan = d
		}
	}
	return makespan, nil
}

type flowState struct {
	src, dst    int
	remaining   units.Bytes
	latency     units.Seconds
	constraints []int
	// wanFactor scales the flow's WAN capacity (bandwidth-degradation
	// faults); 1 on a healthy network.
	wanFactor float64
}

// buildFlows validates messages and returns the nonzero flows plus the
// maximum latency among zero-byte messages (delivered after one
// propagation delay without consuming bandwidth).
func (s *Simulator) buildFlows(msgs []Message) ([]*flowState, units.Seconds, error) {
	flows := make([]*flowState, 0, len(msgs))
	maxLatency := units.Seconds(0)
	for i, m := range msgs {
		if m.Src < 0 || m.Src >= len(s.mapping) || m.Dst < 0 || m.Dst >= len(s.mapping) {
			return nil, 0, fmt.Errorf("netsim: message %d endpoint out of range: %d→%d", i, m.Src, m.Dst)
		}
		if m.Src == m.Dst {
			return nil, 0, fmt.Errorf("netsim: message %d is a self-send on process %d", i, m.Src)
		}
		if m.Bytes < 0 {
			return nil, 0, fmt.Errorf("netsim: message %d has negative size", i)
		}
		_, lat, _ := s.link(m.Src, m.Dst)
		if m.Bytes == 0 { //geolint:ignore floatcmp zero-byte messages carry exact int64 event sizes
			if lat > maxLatency {
				maxLatency = lat
			}
			continue
		}
		flows = append(flows, &flowState{src: m.Src, dst: m.Dst, remaining: m.Bytes, latency: lat, wanFactor: 1})
	}
	return flows, maxLatency, nil
}

// --- constraint bookkeeping -------------------------------------------

type conKind int

const (
	conLink conKind = iota
	conEgress
	conIngress
	conFlowCap
)

type conKey struct {
	kind conKind
	a, b int
}

type constraintSet struct {
	ids        map[conKey]int
	capacities []units.BytesPerSec

	// Scratch reused across maxMinRates calls. The progressive-filling
	// solver reruns at every flow arrival or completion — O(F) times per
	// phase — so its working arrays are hoisted here and rebuilt with the
	// append-reset idiom instead of being reallocated per event. A
	// constraintSet belongs to one solveFluid call, so the scratch is
	// never shared across goroutines (Simulator itself stays read-only).
	rates    []units.BytesPerSec
	residual []units.BytesPerSec
	counts   []int
	frozen   []bool
}

func newConstraintSet() *constraintSet {
	return &constraintSet{ids: map[conKey]int{}}
}

func (cs *constraintSet) id(key conKey, capacity units.BytesPerSec) int {
	if id, ok := cs.ids[key]; ok {
		return id
	}
	id := len(cs.capacities)
	cs.ids[key] = id
	cs.capacities = append(cs.capacities, capacity)
	return id
}

// maxMinRates computes the max-min fair allocation for the active flows by
// progressive filling: repeatedly saturate the tightest constraint, freeze
// its flows at the fair share, and subtract. The returned slice is the
// set's scratch buffer: it is valid until the next maxMinRates call.
//
//geolint:allocfree
func (cs *constraintSet) maxMinRates(flows []*flowState) []units.BytesPerSec {
	cs.rates = cs.rates[:0]
	cs.frozen = cs.frozen[:0]
	for range flows {
		cs.rates = append(cs.rates, 0)
		cs.frozen = append(cs.frozen, false)
	}
	cs.residual = append(cs.residual[:0], cs.capacities...)
	cs.counts = cs.counts[:0]
	for range cs.capacities {
		cs.counts = append(cs.counts, 0)
	}
	rates, residual, counts, frozen := cs.rates, cs.residual, cs.counts, cs.frozen
	for _, f := range flows {
		for _, c := range f.constraints {
			counts[c]++
		}
	}
	remaining := len(flows)
	for remaining > 0 {
		// Tightest constraint: min residual/count over constraints with
		// unfrozen flows.
		bestC, bestShare := -1, units.BytesPerSec(math.Inf(1))
		for c := range residual {
			if counts[c] == 0 {
				continue
			}
			if share := residual[c].Div(float64(counts[c])); share < bestShare {
				bestC, bestShare = c, share
			}
		}
		if bestC == -1 {
			break // no active constraints (cannot happen: every flow has ≥2)
		}
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			bound := false
			for _, c := range f.constraints {
				if c == bestC {
					bound = true
					break
				}
			}
			if !bound {
				continue
			}
			rates[i] = bestShare
			frozen[i] = true
			remaining--
			for _, c := range f.constraints {
				residual[c] -= bestShare
				counts[c]--
			}
		}
	}
	return rates
}

// --- application-level simulation ---------------------------------------

// IterationResult is the simulated timing of one application iteration.
type IterationResult struct {
	ComputeSeconds units.Seconds
	CommSeconds    units.Seconds
}

// Total returns the iteration wall time.
func (r IterationResult) Total() units.Seconds { return r.ComputeSeconds + r.CommSeconds }

// PhasesFromEvents splits a recorded event stream into sequential
// communication sub-phases by tag (in ascending tag order): the messages of
// one tag are concurrent, and a sub-phase starts only after the previous
// one is delivered (reduce before broadcast, forward sweep before backward
// sweep).
func PhasesFromEvents(events []trace.Event) [][]Message {
	byTag := map[int][]Message{}
	var tags []int
	for _, e := range events {
		if _, ok := byTag[e.Tag]; !ok {
			tags = append(tags, e.Tag)
		}
		byTag[e.Tag] = append(byTag[e.Tag], Message{Src: e.Src, Dst: e.Dst, Bytes: units.Bytes(e.Bytes)})
	}
	sort.Ints(tags)
	var out [][]Message
	for _, t := range tags {
		out = append(out, byTag[t])
	}
	return out
}

// SimulateIteration simulates one iteration: computeSeconds of local work
// followed by the communication sub-phases of the event stream. If ps is
// true the analytic processor-sharing engine is used instead of the exact
// event-driven one.
func (s *Simulator) SimulateIteration(events []trace.Event, computeSeconds units.Seconds, ps bool) (IterationResult, error) {
	if computeSeconds < 0 {
		return IterationResult{}, fmt.Errorf("netsim: negative compute time")
	}
	res := IterationResult{ComputeSeconds: computeSeconds}
	for _, phase := range PhasesFromEvents(events) {
		var t units.Seconds
		var err error
		if ps {
			t, err = s.SimulatePhasePS(phase)
		} else {
			t, err = s.SimulatePhase(phase)
		}
		if err != nil {
			return IterationResult{}, err
		}
		res.CommSeconds += t
	}
	return res, nil
}
