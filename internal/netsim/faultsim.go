package netsim

import (
	"fmt"
	"math"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/trace"
	"geoprocmap/internal/units"
)

// This file is the simulator's fault-aware mode: the same two engines as
// netsim.go/replay.go, but consulting the Options.Faults schedule and
// returning a structured faults.Report instead of an optimistic time.
//
// Semantics shared by both engines:
//
//   - a message whose link is down when it would start blocks; the sender
//     probes with capped exponential backoff (accounted, not slept) until
//     the link recovers or Options.FaultDeadline elapses, after which the
//     message is dropped and reported;
//   - bandwidth-degradation faults scale the WAN rate, latency spikes
//     scale the propagation delay;
//   - per-attempt loss retransmits the whole message with backoff between
//     attempts, capped at faults.DefaultMaxAttempts. Loss draws use the
//     stateless faults.Hash01 keyed by the schedule seed and the message
//     index, so a shared Simulator stays data-race-free and two runs with
//     the same seed and schedule produce bit-identical results.
//
// All methods are read-only on the Simulator (safe for concurrent use) and
// work — returning healthy-network results and an empty report — when no
// schedule is configured.

// ReplayTraceFaulty replays the event stream under the fault schedule,
// starting at absolute schedule time `start`. It returns the communication
// span (duration from start until the last delivery or abandonment) and
// the fault report for the run window.
func (s *Simulator) ReplayTraceFaulty(events []trace.Event, start float64) (units.Seconds, *faults.Report, error) {
	sched := s.opt.Faults
	rep := &faults.Report{}
	if sched != nil {
		rep.Schedule = sched.Name
	}
	deadline := s.opt.deadline()
	n := len(s.mapping)
	clock := make([]float64, n)
	egressFree := make([]float64, n)
	ingressFree := make([]float64, n)
	for i := 0; i < n; i++ {
		clock[i], egressFree[i], ingressFree[i] = start, start, start
	}
	wanFree := map[[2]int]float64{}
	span := start
	for i, e := range events {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return 0, nil, fmt.Errorf("netsim: event %d endpoint out of range: %d→%d", i, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return 0, nil, fmt.Errorf("netsim: event %d is a self-send on process %d", i, e.Src)
		}
		if e.Bytes < 0 {
			return 0, nil, fmt.Errorf("netsim: event %d has negative size", i)
		}
		rep.Messages++
		k, l := s.mapping[e.Src], s.mapping[e.Dst]
		lat := s.cloud.LT.At(k, l)
		rate := s.nic[e.Src]
		if r := s.nic[e.Dst]; r < rate {
			rate = r
		}
		tS := math.Max(clock[e.Src], math.Max(egressFree[e.Src], ingressFree[e.Dst]))
		var wanKey [2]int
		shared := k != l && !s.opt.DedicatedWAN
		if shared {
			wanKey = [2]int{k, l}
			if w, ok := wanFree[wanKey]; ok && w > tS {
				tS = w
			}
		}

		st := sched.Link(k, l, tS)
		if st.Down {
			r := sched.NextLinkRecovery(k, l, tS)
			wait := units.Seconds(r - tS)
			if math.IsInf(r, 1) || wait > deadline {
				// The link will not come back in time: the sender probes
				// for a full deadline, then abandons the message.
				rep.Dropped++
				rep.Retries += faults.AttemptsForWait(deadline, faults.DefaultBackoffBase, faults.DefaultBackoffCap)
				rep.BlockedSeconds += deadline
				end := tS + deadline.Float()
				clock[e.Src] = end
				egressFree[e.Src] = end
				if end > span {
					span = end
				}
				continue
			}
			rep.Retries += faults.AttemptsForWait(wait, faults.DefaultBackoffBase, faults.DefaultBackoffCap)
			rep.BlockedSeconds += wait
			tS = r
			st = sched.Link(k, l, tS)
		}
		if k != l {
			if bw := s.cloud.Bandwidth(k, l).Scale(st.BWFactor); bw < rate {
				rate = bw
			}
		}
		lat *= st.LatFactor

		attempts := 1
		if st.LossProb > 0 && sched != nil {
			attempts = faults.Attempts(sched.Seed, int64(i), st.LossProb, 0)
		}
		backoffWait := units.Seconds(0)
		if attempts > 1 {
			rep.Retries += attempts - 1
			backoffWait = faults.BackoffTotal(attempts-1, faults.DefaultBackoffBase, faults.DefaultBackoffCap)
			rep.BlockedSeconds += backoffWait
		}
		end := tS + units.Bytes(e.Bytes).Over(rate).Scale(float64(attempts)).Float() + backoffWait.Float()
		egressFree[e.Src] = end
		ingressFree[e.Dst] = end
		if shared {
			wanFree[wanKey] = end
		}
		arrival := end + lat
		clock[e.Src] = end
		if arrival > clock[e.Dst] {
			clock[e.Dst] = arrival
		}
		if arrival > span {
			span = arrival
		}
	}
	if sched != nil {
		rep.DeadSites, rep.DegradedPairs = sched.Summary(s.cloud.M(), start, span)
	}
	return units.Seconds(span - start), rep, nil
}

// SimulatePhaseFaulty runs the fluid engine on one set of concurrent
// messages under the fault schedule's state at absolute time `start`
// (faults are sampled per phase, the engine's natural granularity). It
// returns the phase makespan and the fault report. Messages whose link is
// down past the deadline are dropped from the fluid solve but still hold
// their sender for the full deadline, which floors the makespan.
func (s *Simulator) SimulatePhaseFaulty(msgs []Message, start float64) (units.Seconds, *faults.Report, error) {
	sched := s.opt.Faults
	rep := &faults.Report{}
	if sched != nil {
		rep.Schedule = sched.Name
	}
	deadline := s.opt.deadline()
	flows, maxLatency, err := s.buildFlows(msgs)
	if err != nil {
		return 0, nil, err
	}
	rep.Messages = len(msgs)
	makespan := maxLatency
	kept := flows[:0]
	for fi, f := range flows {
		k, l := s.mapping[f.src], s.mapping[f.dst]
		st := sched.Link(k, l, start)
		delay := units.Seconds(0)
		if st.Down {
			r := sched.NextLinkRecovery(k, l, start)
			wait := units.Seconds(r - start)
			if math.IsInf(r, 1) || wait > deadline {
				rep.Dropped++
				rep.Retries += faults.AttemptsForWait(deadline, faults.DefaultBackoffBase, faults.DefaultBackoffCap)
				rep.BlockedSeconds += deadline
				if deadline > makespan {
					makespan = deadline
				}
				continue
			}
			delay = wait
			rep.Retries += faults.AttemptsForWait(wait, faults.DefaultBackoffBase, faults.DefaultBackoffCap)
			rep.BlockedSeconds += wait
			st = sched.Link(k, l, r)
		}
		if st.LossProb > 0 && sched != nil {
			if attempts := faults.Attempts(sched.Seed, int64(fi), st.LossProb, 0); attempts > 1 {
				rep.Retries += attempts - 1
				bo := faults.BackoffTotal(attempts-1, faults.DefaultBackoffBase, faults.DefaultBackoffCap)
				delay += bo
				rep.BlockedSeconds += bo
				// Retransmissions resend the whole message.
				f.remaining = f.remaining.Scale(float64(attempts))
			}
		}
		f.wanFactor = st.BWFactor
		f.latency = f.latency.Scale(st.LatFactor) + delay
		kept = append(kept, f)
	}
	if len(kept) > 0 {
		fluid, err := s.solveFluid(kept)
		if err != nil {
			return 0, nil, err
		}
		if fluid > makespan {
			makespan = fluid
		}
	}
	if sched != nil {
		rep.DeadSites, rep.DegradedPairs = sched.Summary(s.cloud.M(), start, start+makespan.Float())
	}
	return makespan, rep, nil
}

// SimulateIterationFaulty simulates one iteration — computeSeconds of
// local work followed by the trace's communication sub-phases — starting
// at absolute schedule time `start`, advancing the schedule clock through
// the phases and merging their fault reports.
func (s *Simulator) SimulateIterationFaulty(events []trace.Event, computeSeconds units.Seconds, start float64) (IterationResult, *faults.Report, error) {
	if computeSeconds < 0 {
		return IterationResult{}, nil, fmt.Errorf("netsim: negative compute time")
	}
	res := IterationResult{ComputeSeconds: computeSeconds}
	rep := &faults.Report{}
	t := start + computeSeconds.Float()
	for _, phase := range PhasesFromEvents(events) {
		dur, phaseRep, err := s.SimulatePhaseFaulty(phase, t)
		if err != nil {
			return IterationResult{}, nil, err
		}
		rep.Merge(phaseRep)
		res.CommSeconds += dur
		t += dur.Float()
	}
	return res, rep, nil
}
