package netsim

import (
	"testing"

	"geoprocmap/internal/units"
)

// BenchmarkAllocMaxMinRates gates the allocation discipline of the
// //geolint:allocfree progressive-filling solver: after the first call
// sizes the constraint set's scratch arrays, every re-solve must measure
// 0 allocs/op. scripts/bench_alloc.sh runs it with -benchmem and fails on
// any nonzero allocs/op.

var benchRate units.BytesPerSec

func BenchmarkAllocMaxMinRates(b *testing.B) {
	s, err := New(testCloud(), []int{0, 0, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	msgs := []Message{
		{Src: 0, Dst: 2, Bytes: 1e6},
		{Src: 1, Dst: 3, Bytes: 2e6},
		{Src: 0, Dst: 1, Bytes: 5e5},
		{Src: 2, Dst: 3, Bytes: 5e5},
	}
	flows, _, err := s.buildFlows(msgs)
	if err != nil {
		b.Fatal(err)
	}
	// Register constraints exactly as solveFluid does (shared WAN pipes).
	reg := newConstraintSet()
	for _, f := range flows {
		k, l := s.mapping[f.src], s.mapping[f.dst]
		if k != l {
			f.constraints = append(f.constraints, reg.id(conKey{kind: conLink, a: k, b: l}, s.cloud.Bandwidth(k, l)))
		}
		f.constraints = append(f.constraints,
			reg.id(conKey{kind: conEgress, a: f.src}, s.nic[f.src]),
			reg.id(conKey{kind: conIngress, a: f.dst}, s.nic[f.dst]))
	}
	benchRate = reg.maxMinRates(flows)[0] // size the scratch arrays
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRate = reg.maxMinRates(flows)[0]
	}
}
