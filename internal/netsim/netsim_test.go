package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/netmodel"
	"geoprocmap/internal/trace"
	"geoprocmap/internal/units"
)

// testCloud builds a deterministic 2-site × 2-node cloud: intra-site
// 100 MB/s at 1 ms, cross-site 10 MB/s at 100 ms, no jitter.
func testCloud() *netmodel.Cloud {
	east := geo.MustRegion(geo.EC2Regions, "us-east-1")
	sg := geo.MustRegion(geo.EC2Regions, "ap-southeast-1")
	return &netmodel.Cloud{
		Provider: netmodel.AmazonEC2,
		Instance: netmodel.InstanceType{Name: "test", IntraBWMBps: 100, CrossBWScale: 1},
		Sites: []netmodel.Site{
			{Region: east, Nodes: 2},
			{Region: sg, Nodes: 2},
		},
		LT: mat.MustFrom([][]float64{{0.001, 0.1}, {0.1, 0.001}}),
		BT: mat.MustFrom([][]float64{{100e6, 10e6}, {10e6, 100e6}}),
	}
}

// Processes 0,1 on site 0; processes 2,3 on site 1.
func testSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := New(testCloud(), []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	c := testCloud()
	cases := []struct {
		name    string
		mapping []int
	}{
		{"empty", nil},
		{"out of range", []int{0, 2}},
		{"negative", []int{-1}},
		{"overloaded", []int{0, 0, 0}},
	}
	for _, tc := range cases {
		if _, err := New(c, tc.mapping); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := New(nil, []int{0}); err == nil {
		t.Error("nil cloud accepted")
	}
}

func TestSingleCrossMessage(t *testing.T) {
	s := testSim(t)
	got, err := s.SimulatePhase([]Message{{Src: 0, Dst: 2, Bytes: 10e6}})
	if err != nil {
		t.Fatal(err)
	}
	want := 10e6/10e6 + 0.1 // transmission + propagation
	if !almost(got.Float(), want, 1e-9) {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestSingleIntraMessage(t *testing.T) {
	s := testSim(t)
	got, err := s.SimulatePhase([]Message{{Src: 0, Dst: 1, Bytes: 100e6}})
	if err != nil {
		t.Fatal(err)
	}
	want := 100e6/100e6 + 0.001 // NIC-bound + intra latency
	if !almost(got.Float(), want, 1e-9) {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestCrossPipeSharing(t *testing.T) {
	s := testSim(t)
	// Two equal flows from different sources share the 10 MB/s pipe:
	// each runs at 5 MB/s, finishing together.
	got, err := s.SimulatePhase([]Message{
		{Src: 0, Dst: 2, Bytes: 10e6},
		{Src: 1, Dst: 3, Bytes: 10e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 10e6/5e6 + 0.1
	if !almost(got.Float(), want, 1e-9) {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestCrossPipeUnequalFlows(t *testing.T) {
	s := testSim(t)
	// Processor sharing: small flow drains at 5 MB/s until t=1, then the
	// large one gets the full 10 MB/s: finishes at 1 + (15-5)/10 = 2.
	got, err := s.SimulatePhase([]Message{
		{Src: 0, Dst: 2, Bytes: 5e6},
		{Src: 1, Dst: 3, Bytes: 15e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 + 0.1
	if !almost(got.Float(), want, 1e-9) {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestEgressNICConstraint(t *testing.T) {
	s := testSim(t)
	// Process 0 sends intra to 1 and cross to 2. The cross flow is bounded
	// by the 10 MB/s pipe; the intra flow gets the remaining 90 MB/s of
	// process 0's 100 MB/s NIC rather than the full rate.
	got, err := s.SimulatePhase([]Message{
		{Src: 0, Dst: 1, Bytes: 90e6},
		{Src: 0, Dst: 2, Bytes: 20e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cross: 20e6/10e6 = 2 s (+0.1 latency). Intra: 90e6/90e6 = 1 s, done
	// first (+1 ms). Makespan = 2.1.
	if !almost(got.Float(), 2.1, 1e-6) {
		t.Errorf("makespan = %v, want 2.1", got)
	}
}

func TestIndependentIntraPairs(t *testing.T) {
	s := testSim(t)
	// Intra flows between disjoint pairs on both sites run at full NIC
	// rate simultaneously — the intra fabric is non-blocking.
	got, err := s.SimulatePhase([]Message{
		{Src: 0, Dst: 1, Bytes: 100e6},
		{Src: 2, Dst: 3, Bytes: 100e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got.Float(), 1.001, 1e-9) {
		t.Errorf("makespan = %v, want 1.001", got)
	}
}

func TestZeroByteMessageLatencyOnly(t *testing.T) {
	s := testSim(t)
	got, err := s.SimulatePhase([]Message{{Src: 0, Dst: 2, Bytes: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got.Float(), 0.1, 1e-12) {
		t.Errorf("makespan = %v, want 0.1", got)
	}
}

func TestEmptyPhase(t *testing.T) {
	s := testSim(t)
	for _, engine := range []func([]Message) (units.Seconds, error){s.SimulatePhase, s.SimulatePhasePS} {
		got, err := engine(nil)
		if err != nil || got != 0 {
			t.Errorf("empty phase = %v, %v; want 0, nil", got, err)
		}
	}
}

func TestMessageValidation(t *testing.T) {
	s := testSim(t)
	bad := [][]Message{
		{{Src: -1, Dst: 0, Bytes: 1}},
		{{Src: 0, Dst: 9, Bytes: 1}},
		{{Src: 1, Dst: 1, Bytes: 1}},
		{{Src: 0, Dst: 1, Bytes: -1}},
	}
	for i, msgs := range bad {
		if _, err := s.SimulatePhase(msgs); err == nil {
			t.Errorf("case %d accepted by exact engine", i)
		}
		if _, err := s.SimulatePhasePS(msgs); err == nil {
			t.Errorf("case %d accepted by PS engine", i)
		}
	}
}

func TestPSMatchesExactForCrossTraffic(t *testing.T) {
	s := testSim(t)
	// Pure cross traffic from distinct sources: NICs are not binding, so
	// the two engines agree.
	msgs := []Message{
		{Src: 0, Dst: 2, Bytes: 4e6},
		{Src: 1, Dst: 3, Bytes: 12e6},
		{Src: 2, Dst: 0, Bytes: 7e6},
	}
	exact, err := s.SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.SimulatePhasePS(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(exact.Float(), ps.Float(), 1e-6) {
		t.Errorf("exact %v vs PS %v", exact, ps)
	}
}

func TestPhasesFromEvents(t *testing.T) {
	events := []trace.Event{
		{Src: 0, Dst: 1, Bytes: 10, Tag: 3},
		{Src: 1, Dst: 2, Bytes: 20, Tag: 0},
		{Src: 2, Dst: 3, Bytes: 30, Tag: 3},
	}
	phases := PhasesFromEvents(events)
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	if phases[0][0].Bytes != 20 {
		t.Error("tag 0 phase should come first")
	}
	if len(phases[1]) != 2 {
		t.Error("tag 3 phase should hold two messages")
	}
	if PhasesFromEvents(nil) != nil {
		t.Error("no events should give no phases")
	}
}

func TestSimulateIteration(t *testing.T) {
	s := testSim(t)
	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 10e6, Tag: 0}, // phase 0: 1 s + 0.1
		{Src: 2, Dst: 0, Bytes: 10e6, Tag: 1}, // phase 1: 1 s + 0.1
	}
	res, err := s.SimulateIteration(events, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.ComputeSeconds.Float(), 0.5, 0) {
		t.Errorf("compute = %v", res.ComputeSeconds)
	}
	if !almost(res.CommSeconds.Float(), 2.2, 1e-9) {
		t.Errorf("comm = %v, want 2.2 (sequential phases)", res.CommSeconds)
	}
	if !almost(res.Total().Float(), 2.7, 1e-9) {
		t.Errorf("total = %v", res.Total())
	}
	if _, err := s.SimulateIteration(events, -1, false); err == nil {
		t.Error("negative compute accepted")
	}
}

func TestMappingQualityVisible(t *testing.T) {
	// Four heavily-communicating pairs; colocating each pair must beat
	// splitting every pair across the WAN.
	east := geo.MustRegion(geo.EC2Regions, "us-east-1")
	sg := geo.MustRegion(geo.EC2Regions, "ap-southeast-1")
	cloud := &netmodel.Cloud{
		Provider: netmodel.AmazonEC2,
		Instance: netmodel.InstanceType{Name: "test", IntraBWMBps: 100, CrossBWScale: 1},
		Sites: []netmodel.Site{
			{Region: east, Nodes: 4},
			{Region: sg, Nodes: 4},
		},
		LT: mat.MustFrom([][]float64{{0.001, 0.1}, {0.1, 0.001}}),
		BT: mat.MustFrom([][]float64{{100e6, 10e6}, {10e6, 100e6}}),
	}
	msgs := []Message{
		{Src: 0, Dst: 1, Bytes: 50e6},
		{Src: 2, Dst: 3, Bytes: 50e6},
		{Src: 4, Dst: 5, Bytes: 50e6},
		{Src: 6, Dst: 7, Bytes: 50e6},
	}
	good, err := New(cloud, []int{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := New(cloud, []int{0, 1, 0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := good.SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := bad.SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if tg*5 > tb {
		t.Errorf("good mapping %v not ≫ faster than bad mapping %v", tg, tb)
	}
}

// Property: work conservation and monotonicity — the makespan is at least
// the best-case transmission time of the largest message and never
// decreases when messages are added.
func TestQuickMakespanMonotone(t *testing.T) {
	s, err := New(testCloud(), []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint32) bool {
		if len(raw) > 12 {
			raw = raw[:12]
		}
		var msgs []Message
		prev := units.Seconds(-1)
		for _, r := range raw {
			src := int(r % 4)
			dst := int((r / 4) % 4)
			if src == dst {
				dst = (dst + 1) % 4
			}
			msgs = append(msgs, Message{Src: src, Dst: dst, Bytes: units.Bytes(r%100) * 1e5})
			got, err := s.SimulatePhase(msgs)
			if err != nil {
				return false
			}
			if got < prev-1e-9 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the exact engine is never faster than the no-contention lower
// bound Σ per-flow (bytes/capacity alone) maximum.
func TestQuickLowerBound(t *testing.T) {
	s, err := New(testCloud(), []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		var msgs []Message
		lower := units.Seconds(0)
		for _, r := range raw {
			src := int(r % 4)
			dst := int((r / 4) % 4)
			if src == dst {
				dst = (dst + 1) % 4
			}
			bytes := units.Bytes(r%50+1) * 1e5
			msgs = append(msgs, Message{Src: src, Dst: dst, Bytes: bytes})
			capacity, lat, cross := s.link(src, dst)
			if !cross {
				capacity = s.nic[src]
			}
			if lb := bytes.Over(capacity) + lat; lb > lower {
				lower = lb
			}
		}
		got, err := s.SimulatePhase(msgs)
		if err != nil {
			return false
		}
		return got >= lower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDedicatedWANNoContention(t *testing.T) {
	s, err := NewWithOptions(testCloud(), []int{0, 0, 1, 1}, Options{DedicatedWAN: true})
	if err != nil {
		t.Fatal(err)
	}
	// Two cross flows from distinct endpoints: each gets the full
	// site-pair rate instead of sharing one pipe.
	msgs := []Message{
		{Src: 0, Dst: 2, Bytes: 10e6},
		{Src: 1, Dst: 3, Bytes: 10e6},
	}
	got, err := s.SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got.Float(), 1.1, 1e-9) {
		t.Errorf("dedicated makespan = %v, want 1.1 (no pipe sharing)", got)
	}
	ps, err := s.SimulatePhasePS(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ps.Float(), 1.1, 1e-9) {
		t.Errorf("dedicated PS makespan = %v, want 1.1", ps)
	}
}

func TestDedicatedWANStillNICBound(t *testing.T) {
	s, err := NewWithOptions(testCloud(), []int{0, 0, 1, 1}, Options{DedicatedWAN: true})
	if err != nil {
		t.Fatal(err)
	}
	// One sender to two cross destinations: each flow could take
	// 10 MB/s, and the NIC (100 MB/s) is not binding, so both finish at
	// 1 s + latency.
	got, err := s.SimulatePhase([]Message{
		{Src: 0, Dst: 2, Bytes: 10e6},
		{Src: 0, Dst: 3, Bytes: 10e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got.Float(), 1.1, 1e-9) {
		t.Errorf("makespan = %v, want 1.1", got)
	}
}

func TestDedicatedVsSharedOrdering(t *testing.T) {
	shared := testSim(t)
	dedicated, err := NewWithOptions(testCloud(), []int{0, 0, 1, 1}, Options{DedicatedWAN: true})
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{
		{Src: 0, Dst: 2, Bytes: 5e6},
		{Src: 1, Dst: 3, Bytes: 5e6},
	}
	ts, err := shared.SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}
	td, err := dedicated.SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if td >= ts {
		t.Errorf("dedicated (%v) not faster than shared (%v)", td, ts)
	}
	// Replay shows the same ordering.
	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 5e6},
		{Src: 1, Dst: 3, Bytes: 5e6},
	}
	rs, err := shared.ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dedicated.ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if rd >= rs {
		t.Errorf("dedicated replay (%v) not faster than shared replay (%v)", rd, rs)
	}
}
