package netsim

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/trace"
)

// TestConcurrentReplayMatchesFreshRun hammers a single shared Simulator
// with concurrent ReplayTrace and SimulatePhase calls and checks every
// result bitwise against a sequential fresh-run reference. Both entry
// points are meant to be read-only on the Simulator, so this passes under
// go test -race only if they really keep all mutable state on the stack.
func TestConcurrentReplayMatchesFreshRun(t *testing.T) {
	shared := testSim(t)

	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 4 << 20},
		{Src: 1, Dst: 3, Bytes: 4 << 20},
		{Src: 2, Dst: 0, Bytes: 1 << 20},
		{Src: 3, Dst: 1, Bytes: 1 << 20},
		{Src: 0, Dst: 1, Bytes: 8 << 20},
		{Src: 2, Dst: 3, Bytes: 8 << 20},
	}
	msgs := []Message{
		{Src: 0, Dst: 2, Bytes: 4 << 20},
		{Src: 1, Dst: 3, Bytes: 4 << 20},
		{Src: 3, Dst: 0, Bytes: 2 << 20},
	}

	// Sequential references on fresh simulators.
	refReplay, err := testSim(t).ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	refPhase, err := testSim(t).SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				got, err := shared.ReplayTrace(events)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(got.Float()) != math.Float64bits(refReplay.Float()) {
					errs <- fmt.Errorf("concurrent replay span %v differs from fresh-run %v", got, refReplay)
					return
				}
				got, err = shared.SimulatePhase(msgs)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(got.Float()) != math.Float64bits(refPhase.Float()) {
					errs <- fmt.Errorf("concurrent phase makespan %v differs from fresh-run %v", got, refPhase)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentFaultyMatchesFreshRun is the same contract under an active
// outage schedule: a single shared fault-aware Simulator serves concurrent
// SimulatePhaseFaulty and ReplayTraceFaulty calls, and every span and every
// structured report must match a sequential fresh-run reference bitwise.
// The schedule mixes a windowed link outage (senders block and recover), an
// open-ended site outage (messages drop at the deadline) and wildcard loss
// (hash-keyed retransmission draws), so all three fault paths are exercised
// under the race detector.
func TestConcurrentFaultyMatchesFreshRun(t *testing.T) {
	sched := &faults.Schedule{Name: "race-mix", Seed: 99, Events: []faults.Event{
		{Kind: faults.LinkDown, Start: 0, End: 1.5, Src: 0, Dst: 1},
		{Kind: faults.SiteOutage, Start: 4, Site: 1},
		{Kind: faults.ProbeLoss, Start: 0, Src: faults.Wildcard, Dst: faults.Wildcard, Probability: 0.3},
	}}
	newSim := func() *Simulator {
		s, err := NewWithOptions(testCloud(), []int{0, 0, 1, 1}, Options{Faults: sched})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	shared := newSim()

	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 4 << 20},
		{Src: 1, Dst: 3, Bytes: 4 << 20},
		{Src: 2, Dst: 0, Bytes: 1 << 20},
		{Src: 3, Dst: 1, Bytes: 1 << 20},
	}
	msgs := []Message{
		{Src: 0, Dst: 2, Bytes: 4 << 20},
		{Src: 1, Dst: 3, Bytes: 4 << 20},
		{Src: 3, Dst: 0, Bytes: 2 << 20},
	}

	refSpan, refSpanRep, err := newSim().ReplayTraceFaulty(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	refPhase, refPhaseRep, err := newSim().SimulatePhaseFaulty(msgs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if refSpanRep.Empty() || refPhaseRep.Empty() {
		t.Fatalf("references report no faults: replay %+v, phase %+v", refSpanRep, refPhaseRep)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				span, rep, err := shared.ReplayTraceFaulty(events, 0)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(span.Float()) != math.Float64bits(refSpan.Float()) || !reflect.DeepEqual(rep, refSpanRep) {
					errs <- fmt.Errorf("concurrent faulty replay (%v, %+v) differs from fresh-run (%v, %+v)", span, rep, refSpan, refSpanRep)
					return
				}
				mk, rep, err := shared.SimulatePhaseFaulty(msgs, 5)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(mk.Float()) != math.Float64bits(refPhase.Float()) || !reflect.DeepEqual(rep, refPhaseRep) {
					errs <- fmt.Errorf("concurrent faulty phase (%v, %+v) differs from fresh-run (%v, %+v)", mk, rep, refPhase, refPhaseRep)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
