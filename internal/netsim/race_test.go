package netsim

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"geoprocmap/internal/trace"
)

// TestConcurrentReplayMatchesFreshRun hammers a single shared Simulator
// with concurrent ReplayTrace and SimulatePhase calls and checks every
// result bitwise against a sequential fresh-run reference. Both entry
// points are meant to be read-only on the Simulator, so this passes under
// go test -race only if they really keep all mutable state on the stack.
func TestConcurrentReplayMatchesFreshRun(t *testing.T) {
	shared := testSim(t)

	events := []trace.Event{
		{Src: 0, Dst: 2, Bytes: 4 << 20},
		{Src: 1, Dst: 3, Bytes: 4 << 20},
		{Src: 2, Dst: 0, Bytes: 1 << 20},
		{Src: 3, Dst: 1, Bytes: 1 << 20},
		{Src: 0, Dst: 1, Bytes: 8 << 20},
		{Src: 2, Dst: 3, Bytes: 8 << 20},
	}
	msgs := []Message{
		{Src: 0, Dst: 2, Bytes: 4 << 20},
		{Src: 1, Dst: 3, Bytes: 4 << 20},
		{Src: 3, Dst: 0, Bytes: 2 << 20},
	}

	// Sequential references on fresh simulators.
	refReplay, err := testSim(t).ReplayTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	refPhase, err := testSim(t).SimulatePhase(msgs)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				got, err := shared.ReplayTrace(events)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(got) != math.Float64bits(refReplay) {
					errs <- fmt.Errorf("concurrent replay span %v differs from fresh-run %v", got, refReplay)
					return
				}
				got, err = shared.SimulatePhase(msgs)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(got) != math.Float64bits(refPhase) {
					errs <- fmt.Errorf("concurrent phase makespan %v differs from fresh-run %v", got, refPhase)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
