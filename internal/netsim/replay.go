package netsim

import (
	"fmt"
	"math"

	"geoprocmap/internal/trace"
	"geoprocmap/internal/units"
)

// ReplayTrace simulates a recorded event stream with logical clocks — the
// standard trace-replay model for MPI programs without explicit receive
// events (LogGP-style). It is the engine the experiments use for
// application communication time, because the evaluation workloads are
// dependency chains (LU's pipelined wavefront, K-means' staged butterfly,
// DNN's reduction tree) whose per-message costs accumulate along the
// critical path rather than overlapping freely.
//
// Semantics, per event in trace order:
//
//   - a message occupies its resources FIFO: the sender's NIC egress, the
//     receiver's NIC ingress, and — for cross-site traffic — the shared
//     WAN pipe of the site pair, at the pipe's full rate;
//   - transmission starts when the sender's clock and all resources are
//     free, takes bytes/rate, and the sender blocks until it completes
//     (rendezvous send);
//   - delivery lands one propagation delay later and advances the
//     receiver's clock (messages synchronize the receiver, which is how
//     the wavefront pipeline and collective stages serialize).
//
// The result is the communication span: the time of the last delivery (or
// last send completion). Zero events take zero time. With Options.Faults
// set the replay runs fault-aware from time zero; use ReplayTraceFaulty to
// position the replay in schedule time and receive the structured report.
func (s *Simulator) ReplayTrace(events []trace.Event) (units.Seconds, error) {
	if s.opt.Faults != nil {
		span, _, err := s.ReplayTraceFaulty(events, 0)
		return span, err
	}
	n := len(s.mapping)
	clock := make([]float64, n)
	egressFree := make([]float64, n)
	ingressFree := make([]float64, n)
	wanFree := map[[2]int]float64{}
	span := 0.0
	for i, e := range events {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return 0, fmt.Errorf("netsim: event %d endpoint out of range: %d→%d", i, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return 0, fmt.Errorf("netsim: event %d is a self-send on process %d", i, e.Src)
		}
		if e.Bytes < 0 {
			return 0, fmt.Errorf("netsim: event %d has negative size", i)
		}
		k, l := s.mapping[e.Src], s.mapping[e.Dst]
		lat := s.cloud.LT.At(k, l)
		rate := s.nic[e.Src]
		if r := s.nic[e.Dst]; r < rate {
			rate = r
		}
		start := math.Max(clock[e.Src], math.Max(egressFree[e.Src], ingressFree[e.Dst]))
		var wanKey [2]int
		shared := k != l && !s.opt.DedicatedWAN
		if k != l {
			if bw := s.cloud.Bandwidth(k, l); bw < rate {
				rate = bw
			}
		}
		if shared {
			wanKey = [2]int{k, l}
			start = math.Max(start, wanFree[wanKey])
		}
		end := start + units.Bytes(e.Bytes).Over(rate).Float()
		egressFree[e.Src] = end
		ingressFree[e.Dst] = end
		if shared {
			wanFree[wanKey] = end
		}
		arrival := end + lat
		clock[e.Src] = end
		if arrival > clock[e.Dst] {
			clock[e.Dst] = arrival
		}
		if arrival > span {
			span = arrival
		}
	}
	return units.Seconds(span), nil
}
