package trace

import (
	"fmt"
	"strings"
)

// Item is one node of a compressed trace: either a leaf event repeated
// Repeat times, or a loop whose Body repeats Repeat times. Exactly one of
// Event/Body is set.
type Item struct {
	Repeat int
	Event  *Event // leaf: a single message, repeated
	Body   []Item // loop: a nested sequence, repeated
}

// Compressed is the loop-structured form of one process's event stream,
// mirroring how CYPRESS stores iterative communication compactly.
type Compressed struct {
	Items []Item
	// RawLen is the number of events in the original stream.
	RawLen int
}

// Size returns the number of nodes in the compressed representation — the
// storage cost, to compare against RawLen.
func (c *Compressed) Size() int { return sizeItems(c.Items) }

func sizeItems(items []Item) int {
	n := 0
	for _, it := range items {
		n++
		if it.Body != nil {
			n += sizeItems(it.Body)
		}
	}
	return n
}

// Ratio returns RawLen / Size, the compression factor (1 means none).
func (c *Compressed) Ratio() float64 {
	s := c.Size()
	if s == 0 {
		return 1
	}
	return float64(c.RawLen) / float64(s)
}

// Decompress reconstructs the original event stream.
func (c *Compressed) Decompress() []Event {
	out := make([]Event, 0, c.RawLen)
	return appendItems(out, c.Items)
}

func appendItems(out []Event, items []Item) []Event {
	for _, it := range items {
		for r := 0; r < it.Repeat; r++ {
			if it.Event != nil {
				out = append(out, *it.Event)
			} else {
				out = appendItems(out, it.Body)
			}
		}
	}
	return out
}

// String renders the loop structure, e.g. "12×[→1 43KB; →8 83KB]".
func (c *Compressed) String() string {
	var b strings.Builder
	writeItems(&b, c.Items)
	return b.String()
}

func writeItems(b *strings.Builder, items []Item) {
	for i, it := range items {
		if i > 0 {
			b.WriteString("; ")
		}
		if it.Repeat != 1 {
			fmt.Fprintf(b, "%d×", it.Repeat)
		}
		if it.Event != nil {
			fmt.Fprintf(b, "→%d %dB", it.Event.Dst, it.Event.Bytes)
		} else {
			b.WriteString("[")
			writeItems(b, it.Body)
			b.WriteString("]")
		}
	}
}

// MaxLoopWindow bounds the loop-body length the compressor searches for.
// Communication loops in the paper's workloads touch at most a few
// distinct neighbors per iteration, so a modest window suffices.
const MaxLoopWindow = 32

// Compress folds repeated message patterns in a single process's event
// stream into nested loops. The algorithm scans left to right; at each
// position it looks for the window w ≤ MaxLoopWindow whose immediate
// repetition covers the most events, folds it into a loop (compressing the
// body recursively), and continues. Identical adjacent events become
// repeated leaves. Events compare by (Dst, Bytes, Tag) — the source is
// fixed within one process stream.
func Compress(events []Event) *Compressed {
	return &Compressed{Items: compressSeq(events, 0), RawLen: len(events)}
}

func eventsEqual(a, b Event) bool {
	return a.Dst == b.Dst && a.Bytes == b.Bytes && a.Tag == b.Tag
}

// compressSeq compresses one sequence. depth guards against pathological
// recursion (bodies are strictly shorter, but be explicit).
func compressSeq(events []Event, depth int) []Item {
	var items []Item
	i := 0
	for i < len(events) {
		bestW, bestReps := 0, 0
		maxW := MaxLoopWindow
		if rem := (len(events) - i) / 2; rem < maxW {
			maxW = rem
		}
		for w := 1; w <= maxW; w++ {
			reps := 1
			for {
				start := i + reps*w
				if start+w > len(events) {
					break
				}
				match := true
				for k := 0; k < w; k++ {
					if !eventsEqual(events[i+k], events[start+k]) {
						match = false
						break
					}
				}
				if !match {
					break
				}
				reps++
			}
			if reps > 1 && reps*w > bestReps*bestW {
				bestW, bestReps = w, reps
			}
		}
		if bestW == 0 {
			// No repetition here; emit a leaf.
			e := events[i]
			items = append(items, Item{Repeat: 1, Event: &e})
			i++
			continue
		}
		if bestW == 1 {
			e := events[i]
			items = append(items, Item{Repeat: bestReps, Event: &e})
		} else {
			var body []Item
			if depth < 8 {
				body = compressSeq(events[i:i+bestW], depth+1)
			} else {
				body = leafItems(events[i : i+bestW])
			}
			items = append(items, Item{Repeat: bestReps, Body: body})
		}
		i += bestW * bestReps
	}
	return items
}

func leafItems(events []Event) []Item {
	out := make([]Item, len(events))
	for i := range events {
		e := events[i]
		out[i] = Item{Repeat: 1, Event: &e}
	}
	return out
}

// CompressAll compresses every process's stream of a recorded run and
// returns the per-process results.
func CompressAll(r *Recorder) []*Compressed {
	out := make([]*Compressed, r.N())
	for i := 0; i < r.N(); i++ {
		out[i] = Compress(r.ProcessEvents(i))
	}
	return out
}

// MeanRatio returns the average compression ratio across processes.
func MeanRatio(cs []*Compressed) float64 {
	if len(cs) == 0 {
		return 1
	}
	var s float64
	for _, c := range cs {
		s += c.Ratio()
	}
	return s / float64(len(cs))
}
