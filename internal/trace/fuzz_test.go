package trace

import "testing"

// FuzzCompressRoundTrip drives the loop compressor with arbitrary byte
// strings interpreted as small-alphabet event streams; compression must
// round-trip exactly and never inflate.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{1, 2, 1, 2, 1, 2})
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3, 9})
	f.Add([]byte{5, 5, 2, 5, 5, 2, 5, 5, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		events := make([]Event, len(raw))
		for i, b := range raw {
			events[i] = Event{
				Src:   0,
				Dst:   int(b%5) + 1,
				Bytes: int64(b/5) * 64,
				Tag:   int(b % 3),
			}
		}
		c := Compress(events)
		if c.Size() > len(events) {
			t.Fatalf("compression inflated: %d items for %d events", c.Size(), len(events))
		}
		got := c.Decompress()
		if len(got) != len(events) {
			t.Fatalf("round trip length %d, want %d", len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("event %d mismatch: %v vs %v", i, got[i], events[i])
			}
		}
	})
}
