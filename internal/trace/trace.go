// Package trace records and compresses application communication traces.
//
// It stands in for CYPRESS (Zhai et al., SC'14), which the paper uses to
// obtain the communication pattern matrix CG and message-count matrix AG by
// combining static structure extraction with runtime trace compression.
// Here, workloads from internal/apps emit their message events into a
// Recorder (the "runtime" half), and the Compress function recovers
// loop structure from each process's event stream (the "structure" half),
// storing long iterative traces in a compact nested-loop form. The
// aggregate matrices the optimizer consumes come from Recorder.Graph.
package trace

import (
	"fmt"

	"geoprocmap/internal/comm"
)

// Event is a single point-to-point message: src sent Bytes bytes to Dst.
// Tag carries an application-defined phase label (e.g. iteration kind).
type Event struct {
	Src   int
	Dst   int
	Bytes int64
	Tag   int
}

// Recorder accumulates message events from a virtual-MPI program run.
type Recorder struct {
	n      int
	events []Event
	byProc [][]int // indices into events, per source process
}

// NewRecorder returns a Recorder for an n-process program.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		panic(fmt.Sprintf("trace: invalid process count %d", n)) //geolint:ignore libpanic process count comes from validated World construction
	}
	return &Recorder{n: n, byProc: make([][]int, n)}
}

// N returns the number of processes.
func (r *Recorder) N() int { return r.n }

// Send records a message of size bytes from src to dst with the given tag.
// Self-messages are rejected — the virtual-MPI layer never sends to itself.
func (r *Recorder) Send(src, dst int, bytes int64, tag int) error {
	if src < 0 || src >= r.n || dst < 0 || dst >= r.n {
		return fmt.Errorf("trace: endpoint out of range: %d→%d with %d processes", src, dst, r.n)
	}
	if src == dst {
		return fmt.Errorf("trace: self-message on process %d", src)
	}
	if bytes < 0 {
		return fmt.Errorf("trace: negative message size %d", bytes)
	}
	r.byProc[src] = append(r.byProc[src], len(r.events))
	r.events = append(r.events, Event{Src: src, Dst: dst, Bytes: bytes, Tag: tag})
	return nil
}

// MustSend is Send for program generators whose endpoints are correct by
// construction; it panics on error.
func (r *Recorder) MustSend(src, dst int, bytes int64, tag int) {
	if err := r.Send(src, dst, bytes, tag); err != nil {
		panic(err)
	}
}

// Len returns the total number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns the global event sequence in record order. The returned
// slice is shared; callers must not modify it.
func (r *Recorder) Events() []Event { return r.events }

// ProcessEvents returns the events sent by process src, in order.
func (r *Recorder) ProcessEvents(src int) []Event {
	if src < 0 || src >= r.n {
		panic(fmt.Sprintf("trace: process %d out of range", src)) //geolint:ignore libpanic process bounds mirror slice indexing
	}
	out := make([]Event, len(r.byProc[src]))
	for i, idx := range r.byProc[src] {
		out[i] = r.events[idx]
	}
	return out
}

// Graph aggregates the recorded events into the application's combined
// CG/AG communication pattern.
func (r *Recorder) Graph() *comm.Graph {
	g := comm.NewGraph(r.n)
	for _, e := range r.events {
		g.AddTraffic(e.Src, e.Dst, float64(e.Bytes), 1)
	}
	return g
}

// TotalBytes returns the sum of all message sizes.
func (r *Recorder) TotalBytes() int64 {
	var t int64
	for _, e := range r.events {
		t += e.Bytes
	}
	return t
}
