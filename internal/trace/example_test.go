package trace_test

import (
	"fmt"

	"geoprocmap/internal/trace"
)

// ExampleCompress recovers the loop structure of an iterative
// communication stream, the way CYPRESS keeps long traces compact.
func ExampleCompress() {
	var events []trace.Event
	for iter := 0; iter < 50; iter++ {
		events = append(events,
			trace.Event{Src: 0, Dst: 1, Bytes: 44032},
			trace.Event{Src: 0, Dst: 8, Bytes: 84992},
		)
	}
	c := trace.Compress(events)
	fmt.Printf("%d events -> %d items (%.0fx)\n", c.RawLen, c.Size(), c.Ratio())
	fmt.Println(c)
	// Output:
	// 100 events -> 3 items (33x)
	// 50×[→1 44032B; →8 84992B]
}
