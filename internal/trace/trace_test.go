package trace

import (
	"testing"
	"testing/quick"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(3)
	if err := r.Send(0, 1, 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Send(1, 2, 50, 1); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.N() != 3 {
		t.Errorf("Len/N = %d/%d", r.Len(), r.N())
	}
	if r.TotalBytes() != 150 {
		t.Errorf("TotalBytes = %d, want 150", r.TotalBytes())
	}
	ev := r.Events()
	if ev[0].Dst != 1 || ev[1].Bytes != 50 {
		t.Errorf("Events = %v", ev)
	}
}

func TestRecorderErrors(t *testing.T) {
	r := NewRecorder(2)
	cases := []struct {
		src, dst int
		bytes    int64
	}{
		{-1, 0, 1}, {0, 2, 1}, {0, 0, 1}, {0, 1, -5},
	}
	for _, c := range cases {
		if err := r.Send(c.src, c.dst, c.bytes, 0); err == nil {
			t.Errorf("Send(%d,%d,%d) accepted", c.src, c.dst, c.bytes)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewRecorder(0) did not panic")
		}
	}()
	NewRecorder(0)
}

func TestMustSendPanics(t *testing.T) {
	r := NewRecorder(2)
	defer func() {
		if recover() == nil {
			t.Error("MustSend(self) did not panic")
		}
	}()
	r.MustSend(1, 1, 10, 0)
}

func TestProcessEvents(t *testing.T) {
	r := NewRecorder(3)
	r.MustSend(0, 1, 10, 0)
	r.MustSend(2, 0, 20, 0)
	r.MustSend(0, 2, 30, 0)
	p0 := r.ProcessEvents(0)
	if len(p0) != 2 || p0[0].Dst != 1 || p0[1].Dst != 2 {
		t.Errorf("ProcessEvents(0) = %v", p0)
	}
	if len(r.ProcessEvents(1)) != 0 {
		t.Error("process 1 should have no events")
	}
}

func TestGraphAggregation(t *testing.T) {
	r := NewRecorder(3)
	r.MustSend(0, 1, 100, 0)
	r.MustSend(0, 1, 200, 0)
	r.MustSend(1, 2, 50, 0)
	g := r.Graph()
	if g.Volume(0, 1) != 300 {
		t.Errorf("CG(0,1) = %v, want 300", g.Volume(0, 1))
	}
	if g.Msgs(0, 1) != 2 {
		t.Errorf("AG(0,1) = %v, want 2", g.Msgs(0, 1))
	}
	if g.Msgs(1, 2) != 1 || g.Volume(2, 1) != 0 {
		t.Error("aggregation wrong for other pairs")
	}
}

func TestCompressSimpleRepeat(t *testing.T) {
	events := make([]Event, 0, 10)
	for i := 0; i < 10; i++ {
		events = append(events, Event{Src: 0, Dst: 1, Bytes: 64, Tag: 0})
	}
	c := Compress(events)
	if c.Size() != 1 {
		t.Errorf("10 identical events compressed to %d items, want 1: %s", c.Size(), c)
	}
	if c.Items[0].Repeat != 10 {
		t.Errorf("Repeat = %d, want 10", c.Items[0].Repeat)
	}
}

func TestCompressLoopPattern(t *testing.T) {
	// The LU-style pattern: each iteration sends to two neighbors with two
	// message sizes; 50 iterations.
	var events []Event
	for i := 0; i < 50; i++ {
		events = append(events,
			Event{Src: 0, Dst: 1, Bytes: 43 * 1024, Tag: 0},
			Event{Src: 0, Dst: 8, Bytes: 83 * 1024, Tag: 0},
		)
	}
	c := Compress(events)
	if c.RawLen != 100 {
		t.Fatalf("RawLen = %d", c.RawLen)
	}
	if c.Size() > 3 {
		t.Errorf("loop pattern compressed to %d items, want ≤3: %s", c.Size(), c)
	}
	if c.Ratio() < 30 {
		t.Errorf("compression ratio %v, want ≥30", c.Ratio())
	}
}

func TestCompressNestedLoops(t *testing.T) {
	// Outer loop: {A ×3, B} ×20 — the body itself compresses.
	var events []Event
	for i := 0; i < 20; i++ {
		for j := 0; j < 3; j++ {
			events = append(events, Event{Src: 0, Dst: 1, Bytes: 8, Tag: 0})
		}
		events = append(events, Event{Src: 0, Dst: 2, Bytes: 1024, Tag: 0})
	}
	c := Compress(events)
	got := c.Decompress()
	if len(got) != len(events) {
		t.Fatalf("decompressed %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !eventsEqual(got[i], events[i]) {
			t.Fatalf("event %d mismatch: %v vs %v", i, got[i], events[i])
		}
	}
	if c.Size() > 4 {
		t.Errorf("nested pattern compressed to %d items, want ≤4: %s", c.Size(), c)
	}
}

func TestCompressNoRepetition(t *testing.T) {
	var events []Event
	for i := 0; i < 5; i++ {
		events = append(events, Event{Src: 0, Dst: i + 1, Bytes: int64(i), Tag: 0})
	}
	c := Compress(events)
	if c.Size() != 5 {
		t.Errorf("unique events compressed to %d items, want 5", c.Size())
	}
	if c.Ratio() != 1 {
		t.Errorf("Ratio = %v, want 1", c.Ratio())
	}
}

func TestCompressEmpty(t *testing.T) {
	c := Compress(nil)
	if c.Size() != 0 || len(c.Decompress()) != 0 || c.Ratio() != 1 {
		t.Error("empty trace mishandled")
	}
}

func TestCompressAllAndMeanRatio(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 8; i++ {
		r.MustSend(0, 1, 16, 0)
	}
	r.MustSend(1, 0, 99, 0)
	cs := CompressAll(r)
	if len(cs) != 2 {
		t.Fatalf("CompressAll returned %d traces", len(cs))
	}
	if cs[0].Size() != 1 || cs[1].Size() != 1 {
		t.Errorf("sizes = %d/%d", cs[0].Size(), cs[1].Size())
	}
	if got := MeanRatio(cs); got != (8+1)/2.0 {
		t.Errorf("MeanRatio = %v, want 4.5", got)
	}
	if MeanRatio(nil) != 1 {
		t.Error("MeanRatio(nil) should be 1")
	}
}

func TestCompressedString(t *testing.T) {
	var events []Event
	for i := 0; i < 3; i++ {
		events = append(events, Event{Src: 0, Dst: 7, Bytes: 42, Tag: 0})
	}
	s := Compress(events).String()
	if s != "3×→7 42B" {
		t.Errorf("String = %q", s)
	}
}

// Property: Compress/Decompress round-trips arbitrary event streams.
func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		events := make([]Event, len(raw))
		for i, r := range raw {
			// Small alphabets maximize accidental repetition — the hard case.
			events[i] = Event{Src: 0, Dst: int(r % 4), Bytes: int64(r%3) * 100, Tag: int(r % 2)}
		}
		c := Compress(events)
		got := c.Decompress()
		if len(got) != len(events) {
			return false
		}
		for i := range events {
			if !eventsEqual(got[i], events[i]) {
				return false
			}
		}
		return c.Size() <= len(events) || len(events) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: compression never inflates and periodic streams compress well.
func TestQuickPeriodicCompression(t *testing.T) {
	f := func(periodRaw, repsRaw uint8) bool {
		period := int(periodRaw%6) + 1
		reps := int(repsRaw%20) + 5
		var events []Event
		for r := 0; r < reps; r++ {
			for k := 0; k < period; k++ {
				events = append(events, Event{Src: 0, Dst: k + 1, Bytes: int64(k * 10), Tag: 0})
			}
		}
		c := Compress(events)
		// A periodic stream of `reps` repetitions must compress by at least
		// a factor of reps/2 (the structure may differ from the generator's).
		return c.Ratio() >= float64(reps)/2 && len(c.Decompress()) == len(events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
