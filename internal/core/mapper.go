package core

import (
	"fmt"
	"math/rand"

	"geoprocmap/internal/mat"
)

// Mapper computes a feasible placement for a problem. Implementations
// include the paper's Geo-distributed algorithm (this package) and the
// compared approaches in internal/baselines.
type Mapper interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Map returns a placement satisfying the problem's constraints.
	Map(p *Problem) (Placement, error)
}

// RandomPlacement draws a uniformly random feasible placement: pinned
// processes go to their constrained sites and the remaining processes fill
// the remaining slots in random order. This is the paper's Baseline
// ("random mapping algorithm") and the sampling primitive of its Monte
// Carlo study. The problem must be valid.
func RandomPlacement(p *Problem, rng *rand.Rand) (Placement, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	if p.HasSiteSets() {
		return constrainedRandomPlacement(p, rng)
	}
	n, m := p.N(), p.M()
	pl := mat.NewIntVec(n, Unconstrained)
	avail := p.Capacity.Clone()
	var free []int
	for i, c := range p.Constraint {
		if c != Unconstrained {
			pl[i] = c
			avail[c]--
			if avail[c] < 0 {
				return nil, fmt.Errorf("core: constraints overfill site %d", c)
			}
		} else {
			free = append(free, i)
		}
	}
	// Build the multiset of open slots and shuffle it.
	var slots []int
	for j := 0; j < m; j++ {
		for r := 0; r < avail[j]; r++ {
			slots = append(slots, j)
		}
	}
	if len(slots) < len(free) {
		return nil, fmt.Errorf("core: %d open slots for %d unpinned processes", len(slots), len(free))
	}
	rng.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	for idx, i := range free {
		pl[i] = slots[idx]
	}
	return pl, nil
}
