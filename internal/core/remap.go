package core

import (
	"fmt"
	"sort"

	"geoprocmap/internal/faults"
	"geoprocmap/internal/units"
)

// RemapOptions tunes failure-aware remapping.
type RemapOptions struct {
	// ImageBytes is the per-process migration payload — the checkpoint
	// image restored at the destination site (default 64 MB).
	ImageBytes units.Bytes
	// MoveDegraded also evacuates processes from degraded (but live) sites
	// when the α–β cost saved over HorizonIterations amortizes the move's
	// migration time. Dead-site evacuation is always performed.
	MoveDegraded bool
	// HorizonIterations is the number of future application iterations a
	// degraded-site move's cost saving is credited over (default 100).
	HorizonIterations float64
}

func (o RemapOptions) withDefaults() RemapOptions {
	if o.ImageBytes <= 0 {
		o.ImageBytes = units.Bytes(64 << 20)
	}
	if o.HorizonIterations <= 0 {
		o.HorizonIterations = 100
	}
	return o
}

// RemapResult describes a failure-aware remapping.
type RemapResult struct {
	// Placement is the repaired mapping: identical to the stale one except
	// for the migrated processes.
	Placement Placement
	// Migrated lists the moved processes in migration order.
	Migrated []int
	// MigrationSeconds is the total checkpoint-transfer time of the moves,
	// each at the bandwidth between the old and new site (restores from a
	// dead site read the checkpoint replica at the same region, so the
	// stale BT row still prices the transfer).
	MigrationSeconds units.Seconds
	// CostBefore and CostAfter are the problem's α–β costs of the stale
	// and repaired placements. CostBefore prices dead-site traffic with
	// the pre-fault matrices — an optimistic floor, since that traffic
	// would in reality never complete.
	CostBefore, CostAfter units.Cost
}

// Remap repairs a placement after faults: every process on a dead site is
// migrated to a surviving site, chosen greedily (heaviest communicators
// first, each to the live site minimizing its marginal α–β cost against the
// rest of the placement), honoring the constraint vector, the per-process
// Allowed sets, and the surviving capacities. Constraints pinning a process
// to a dead site are unsatisfiable and are released for the migration.
// With opt.MoveDegraded set, processes on degraded sites (sites touching a
// degraded pair in the report) are also moved when the saving amortizes the
// migration.
//
// The report's DeadSites and DegradedPairs drive the decision; a nil or
// fault-free report returns the placement unchanged.
//
//geolint:deterministic
func Remap(p *Problem, current Placement, rep *faults.Report, opt RemapOptions) (*RemapResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.CheckPlacement(current); err != nil {
		return nil, fmt.Errorf("core: stale placement invalid: %w", err)
	}
	o := opt.withDefaults()
	n, m := p.N(), p.M()
	res := &RemapResult{
		Placement:  append(Placement(nil), current...),
		CostBefore: p.Cost(current),
	}
	if rep == nil || rep.Empty() {
		res.CostAfter = res.CostBefore
		return res, nil
	}
	dead := make([]bool, m)
	liveCap := 0
	for _, k := range rep.DeadSites {
		if k < 0 || k >= m {
			return nil, fmt.Errorf("core: dead site %d out of range [0,%d)", k, m)
		}
		dead[k] = true
	}
	for k := 0; k < m; k++ {
		if !dead[k] {
			liveCap += p.Capacity[k]
		}
	}
	if liveCap < n {
		return nil, fmt.Errorf("core: %d processes exceed surviving capacity %d", n, liveCap)
	}

	// Victims leave their sites; everyone else stays and claims their slot.
	var victims []int
	avail := p.Capacity.Clone()
	for i, s := range res.Placement {
		if dead[s] {
			victims = append(victims, i)
		} else {
			avail[s]--
		}
	}
	for k := 0; k < m; k++ {
		if dead[k] {
			avail[k] = 0
		}
	}
	if len(victims) == 0 && !o.MoveDegraded {
		res.CostAfter = res.CostBefore
		return res, nil
	}
	// Heaviest communicators first: they dominate the cost, so they get
	// first pick of the surviving slots (the same greedy order the
	// baselines use).
	sort.SliceStable(victims, func(a, b int) bool {
		return p.Comm.Quantity(victims[a]) > p.Comm.Quantity(victims[b])
	})
	for _, i := range victims {
		j, err := bestLiveSite(p, res.Placement, i, dead, avail)
		if err != nil {
			return nil, err
		}
		res.MigrationSeconds += o.ImageBytes.Over(p.Bandwidth(res.Placement[i], j))
		res.Placement[i] = j
		avail[j]--
		res.Migrated = append(res.Migrated, i)
	}

	if o.MoveDegraded {
		degradedSite := make([]bool, m)
		for _, pair := range rep.DegradedPairs {
			for _, k := range []int{pair[0], pair[1]} {
				if k >= 0 && k < m && !dead[k] {
					degradedSite[k] = true
				}
			}
		}
		for i := 0; i < n; i++ {
			s := res.Placement[i]
			if !degradedSite[s] || p.Constraint[i] == s {
				continue
			}
			oldDelta := marginalCost(p, res.Placement, i, s)
			j, err := bestLiveSite(p, res.Placement, i, dead, avail)
			if err != nil || j == s {
				continue
			}
			saving := oldDelta - marginalCost(p, res.Placement, i, j)
			migration := o.ImageBytes.Over(p.Bandwidth(s, j))
			// The per-iteration α–β saving is credited over the horizon and
			// weighed against the one-off migration time — an explicit
			// Cost→Seconds crossing, since both sides are durations here.
			if saving.Scale(o.HorizonIterations).AsSeconds() <= migration {
				continue
			}
			res.MigrationSeconds += migration
			avail[s]++
			avail[j]--
			res.Placement[i] = j
			res.Migrated = append(res.Migrated, i)
		}
	}

	// The repaired placement must satisfy everything except pins to dead
	// sites, which no placement can satisfy.
	if err := checkIgnoringDeadPins(p, res.Placement, dead); err != nil {
		return nil, fmt.Errorf("core: remap produced invalid placement: %w", err)
	}
	res.CostAfter = p.Cost(res.Placement)
	return res, nil
}

// bestLiveSite returns the surviving site with free capacity that minimizes
// process i's marginal α–β cost against the current placement, honoring its
// pin (unless pinned to a dead site) and Allowed set.
func bestLiveSite(p *Problem, pl Placement, i int, dead []bool, avail []int) (int, error) {
	if c := p.Constraint[i]; c != Unconstrained && !dead[c] {
		if avail[c] <= 0 && pl[i] != c {
			return 0, fmt.Errorf("core: process %d pinned to full site %d", i, c)
		}
		return c, nil
	}
	best, bestCost := -1, units.Cost(0)
	for j := 0; j < p.M(); j++ {
		if dead[j] || (avail[j] <= 0 && pl[i] != j) || !allowedIgnoringDeadPin(p, i, j, dead) {
			continue
		}
		c := marginalCost(p, pl, i, j)
		if best == -1 || c < bestCost {
			best, bestCost = j, c
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("core: no surviving site admits process %d", i)
	}
	return best, nil
}

// allowedIgnoringDeadPin is AllowedOn with a pin to a dead site treated as
// released: the Allowed set still applies, only the unsatisfiable pin is
// waived.
func allowedIgnoringDeadPin(p *Problem, i, j int, dead []bool) bool {
	if c := p.Constraint[i]; c != Unconstrained && c != j && !dead[c] {
		return false
	}
	if len(p.Allowed) == 0 || len(p.Allowed[i]) == 0 {
		return true
	}
	for _, a := range p.Allowed[i] {
		if a == j {
			return true
		}
	}
	return false
}

// marginalCost is the α–β cost process i contributes when placed at site j,
// with every other process at its current site (dead-site peers included —
// they are priced like any other until their own migration fixes them).
func marginalCost(p *Problem, pl Placement, i, j int) units.Cost {
	var cost units.Cost
	for _, e := range p.Comm.Outgoing(i) {
		if e.Peer == i {
			continue
		}
		sj := pl[e.Peer]
		cost += (p.Latency(j, sj).Scale(e.Msgs) + units.Bytes(e.Volume).Over(p.Bandwidth(j, sj))).AsCost()
	}
	for _, e := range p.Comm.Incoming(i) {
		if e.Peer == i {
			continue
		}
		si := pl[e.Peer]
		cost += (p.Latency(si, j).Scale(e.Msgs) + units.Bytes(e.Volume).Over(p.Bandwidth(si, j))).AsCost()
	}
	return cost
}

// checkIgnoringDeadPins is CheckPlacement with constraints whose target
// site is dead treated as released.
func checkIgnoringDeadPins(p *Problem, pl Placement, dead []bool) error {
	relaxed := *p
	relaxed.Constraint = p.Constraint.Clone()
	for i, c := range relaxed.Constraint {
		if c != Unconstrained && dead[c] {
			relaxed.Constraint[i] = Unconstrained
		}
	}
	if err := relaxed.CheckPlacement(pl); err != nil {
		return err
	}
	for i, s := range pl {
		if dead[s] {
			return fmt.Errorf("process %d still on dead site %d", i, s)
		}
	}
	return nil
}
