package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"geoprocmap/internal/stats"
)

func TestProblemJSONRoundTrip(t *testing.T) {
	p := clusteredProblem(16, 3, 5)
	p.Constraint[3] = 2
	p.Allowed = make([][]int, 16)
	p.Allowed[0] = []int{0, 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != p.N() || got.M() != p.M() {
		t.Fatalf("dimensions changed: %d×%d vs %d×%d", got.N(), got.M(), p.N(), p.M())
	}
	if !got.LT.Equal(p.LT, 0) || !got.BT.Equal(p.BT, 0) {
		t.Error("network matrices changed")
	}
	if !got.Constraint.Equal(p.Constraint) {
		t.Error("constraints changed")
	}
	if len(got.Allowed[0]) != 2 {
		t.Error("allowed sets changed")
	}
	// Totals accumulate in a different edge order after the round trip, so
	// compare within floating-point slack; individual edges are exact.
	if math.Abs(got.Comm.TotalVolume()-p.Comm.TotalVolume()) > 1e-6 ||
		math.Abs(got.Comm.TotalMsgs()-p.Comm.TotalMsgs()) > 1e-9 {
		t.Error("communication pattern changed")
	}
	if got.Comm.Volume(0, 1) != p.Comm.Volume(0, 1) || got.Comm.Msgs(0, 1) != p.Comm.Msgs(0, 1) {
		t.Error("edge (0,1) changed")
	}
	// Costs agree on an arbitrary placement.
	pl := Placement{0, 1, 2, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 0}
	if a, b := p.Cost(pl), got.Cost(pl); a != b {
		t.Errorf("cost changed across round trip: %v vs %v", a, b)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"n":0,"m":2}`,
		`{"n":2,"m":1,"edges":[{"src":0,"dst":5,"volume":1,"msgs":1}],"lt":[[1]],"bt":[[1]],"pc":[{}],"capacity":[2],"constraint":[-1,-1]}`,
		`{"n":2,"m":1,"edges":[{"src":0,"dst":1,"volume":-1,"msgs":1}],"lt":[[1]],"bt":[[1]],"pc":[{}],"capacity":[2],"constraint":[-1,-1]}`,
		`{"n":2,"m":1,"edges":[],"lt":[[1],[2]],"bt":[[1]],"pc":[{}],"capacity":[2],"constraint":[-1,-1]}`,
		// Valid JSON but invalid problem (capacity too small).
		`{"n":2,"m":1,"edges":[],"lt":[[1]],"bt":[[1]],"pc":[{}],"capacity":[1],"constraint":[-1,-1]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPlacementJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pl := Placement{0, 1, 2, 1}
	if err := WritePlacementJSON(&buf, "Geo-distributed", 12.5, pl); err != nil {
		t.Fatal(err)
	}
	algo, cost, got, err := ReadPlacementJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if algo != "Geo-distributed" || cost != 12.5 || !got.Equal(pl) {
		t.Errorf("round trip mismatch: %s %v %v", algo, cost, got)
	}
	if _, _, _, err := ReadPlacementJSON(strings.NewReader("nope")); err == nil {
		t.Error("bad placement JSON accepted")
	}
}

// Property: serialization round-trips random problems with identical costs.
func TestQuickProblemJSONRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 4
		m := int(mRaw%3) + 2
		p := clusteredProblem(n, m, seed)
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		pl, err := RandomPlacement(p, stats.NewRand(seed))
		if err != nil {
			return false
		}
		return p.Cost(pl) == got.Cost(pl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
