package core

import (
	"fmt"

	"geoprocmap/internal/geo"
	"geoprocmap/internal/kmeans"
	"geoprocmap/internal/stats"
)

// GroupSites clusters the M sites into at most kappa groups by K-means over
// their physical coordinates (latitude, longitude) with Euclidean distance
// and Forgy initialization, exactly as the paper's grouping optimization
// prescribes. Empty clusters are dropped, so the result may have fewer than
// kappa groups; each group is a non-empty slice of site indices and every
// site appears in exactly one group.
func GroupSites(pc []geo.LatLon, kappa int, seed int64) ([][]int, error) {
	m := len(pc)
	if m == 0 {
		return nil, fmt.Errorf("core: no sites to group")
	}
	if kappa < 1 {
		return nil, fmt.Errorf("core: kappa = %d, want >= 1", kappa)
	}
	if kappa > m {
		kappa = m
	}
	points := make([]kmeans.Point, m)
	for i, c := range pc {
		points[i] = kmeans.Point{c.Lat, c.Lon}
	}
	res, err := kmeans.Cluster(points, kappa, 100, stats.NewRand(seed))
	if err != nil {
		return nil, fmt.Errorf("core: grouping sites: %w", err)
	}
	var groups [][]int
	for _, g := range kmeans.Groups(res.Assignment, kappa) {
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	return groups, nil
}
