package core

import (
	"testing"
	"testing/quick"

	"geoprocmap/internal/stats"
)

func TestHierarchicalSmallFallsBackToFlat(t *testing.T) {
	p := clusteredProblem(16, 4, 3)
	h := &HierarchicalGeoMapper{Kappa: 4, Seed: 1}
	pl, err := h.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalManySites(t *testing.T) {
	// 12 sites on a line: too many for an ungrouped order search, handled
	// hierarchically.
	p := clusteredProblem(48, 12, 5)
	h := &HierarchicalGeoMapper{Kappa: 3, Seed: 2, LeafSites: 4}
	pl, err := h.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
	// It must clearly beat random and be competitive with the flat mapper.
	rng := stats.NewRand(7)
	var rc []float64
	for i := 0; i < 30; i++ {
		rp, err := RandomPlacement(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		rc = append(rc, p.Cost(rp).Float())
	}
	if p.Cost(pl).Float() > stats.Mean(rc)*0.7 {
		t.Errorf("hierarchical cost %v not clearly below random mean %v", p.Cost(pl), stats.Mean(rc))
	}
	flatPl, err := (&GeoMapper{Kappa: 3, Seed: 2}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost(pl) > p.Cost(flatPl)*1.15 {
		t.Errorf("hierarchical cost %v clearly above flat %v", p.Cost(pl), p.Cost(flatPl))
	}
}

func TestHierarchicalHonorsConstraints(t *testing.T) {
	p := clusteredProblem(36, 9, 7)
	p.Constraint[0] = 8
	p.Constraint[7] = 2
	h := &HierarchicalGeoMapper{Kappa: 3, Seed: 3, LeafSites: 3}
	pl, err := h.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl[0] != 8 || pl[7] != 2 {
		t.Errorf("pins violated: %v", pl)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalWithSiteSets(t *testing.T) {
	p := clusteredProblem(24, 6, 11)
	p.Allowed = make([][]int, 24)
	for i := 0; i < 8; i++ {
		p.Allowed[i] = []int{0, 1, 2}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	h := &HierarchicalGeoMapper{Kappa: 3, Seed: 4, LeafSites: 3}
	pl, err := h.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatalf("site sets violated: %v", err)
	}
}

func TestHierarchicalArgValidation(t *testing.T) {
	p := clusteredProblem(16, 4, 1)
	if _, err := (&HierarchicalGeoMapper{Kappa: 1}).Map(p); err == nil {
		t.Error("kappa=1 accepted")
	}
	if _, err := (&HierarchicalGeoMapper{Kappa: MaxKappa + 1}).Map(p); err == nil {
		t.Error("kappa above MaxKappa accepted")
	}
	if _, err := (&HierarchicalGeoMapper{LeafSites: -1}).Map(p); err == nil {
		t.Error("negative LeafSites accepted")
	}
	bad := clusteredProblem(16, 4, 1)
	bad.Capacity[0] = 0
	if _, err := (&HierarchicalGeoMapper{}).Map(bad); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestHierarchicalDeterminism(t *testing.T) {
	p := clusteredProblem(40, 10, 13)
	h := &HierarchicalGeoMapper{Kappa: 3, Seed: 9, LeafSites: 4}
	a, err := h.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different hierarchical placements")
	}
}

// Property: hierarchical placements are always feasible on random
// many-site instances with pins.
func TestQuickHierarchicalFeasible(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%32) + 12
		m := int(mRaw%8) + 6 // 6..13 sites
		p := clusteredProblem(n, m, seed)
		for i := 0; i < n/6; i++ {
			p.Constraint[(i*11)%n] = i % m
		}
		if p.Validate() != nil {
			return true
		}
		h := &HierarchicalGeoMapper{Kappa: 3, Seed: seed, LeafSites: 4}
		pl, err := h.Map(p)
		if err != nil {
			return false
		}
		return p.CheckPlacement(pl) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
