package core

import (
	"testing"
	"testing/quick"

	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
)

// withSiteSets attaches multi-site restrictions to a clustered problem:
// the first third may only use sites {0, 1}, the second third only
// {m-1}, the rest unrestricted.
func withSiteSets(n, m int, seed int64) *Problem {
	p := clusteredProblem(n, m, seed)
	p.Allowed = make([][]int, n)
	for i := 0; i < n/3; i++ {
		p.Allowed[i] = []int{0, 1 % m}
	}
	for i := n / 3; i < 2*n/3; i++ {
		p.Allowed[i] = []int{m - 1}
	}
	return p
}

func TestAllowedOn(t *testing.T) {
	p := twoSiteProblem()
	p.Allowed = [][]int{{1}, nil, {0, 1}, nil}
	if p.AllowedOn(0, 0) || !p.AllowedOn(0, 1) {
		t.Error("singleton allowed set misapplied")
	}
	if !p.AllowedOn(1, 0) || !p.AllowedOn(1, 1) {
		t.Error("empty set should allow everything")
	}
	p.Constraint[1] = 0
	if p.AllowedOn(1, 1) {
		t.Error("pin must dominate an empty allowed set")
	}
}

func TestValidateAllowed(t *testing.T) {
	base := func() *Problem { return twoSiteProblem() }

	p := base()
	p.Allowed = [][]int{{0}, {0}, nil, nil}
	if err := p.Validate(); err != nil {
		t.Errorf("feasible site sets rejected: %v", err)
	}

	cases := []struct {
		name string
		fn   func(p *Problem)
	}{
		{"wrong length", func(p *Problem) { p.Allowed = [][]int{{0}} }},
		{"out of range", func(p *Problem) { p.Allowed = [][]int{{5}, nil, nil, nil} }},
		{"duplicate site", func(p *Problem) { p.Allowed = [][]int{{0, 0}, nil, nil, nil} }},
		{"pin outside set", func(p *Problem) {
			p.Constraint[0] = 1
			p.Allowed = [][]int{{0}, nil, nil, nil}
		}},
		{"hall violation", func(p *Problem) {
			// Three processes restricted to site 0, capacity 2.
			p.Allowed = [][]int{{0}, {0}, {0}, nil}
		}},
	}
	for _, tc := range cases {
		p := base()
		tc.fn(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCheckPlacementAllowed(t *testing.T) {
	p := twoSiteProblem()
	p.Allowed = [][]int{{1}, nil, nil, nil}
	if err := p.CheckPlacement(Placement{1, 0, 0, 1}); err != nil {
		t.Errorf("admissible placement rejected: %v", err)
	}
	if err := p.CheckPlacement(Placement{0, 1, 0, 1}); err == nil {
		t.Error("inadmissible placement accepted")
	}
}

func TestConstrainedRandomPlacement(t *testing.T) {
	p := withSiteSets(18, 3, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(1)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		pl, err := RandomPlacement(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckPlacement(pl); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		key := ""
		for _, s := range pl {
			key += string(rune('0' + s))
		}
		seen[key] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct constrained placements in 50 draws; sampler not random", len(seen))
	}
}

func TestConstrainedRandomPlacementTight(t *testing.T) {
	// Fully determined instance: two sites with capacity 2 each, all four
	// processes restricted to exactly one site.
	p := twoSiteProblem()
	p.Allowed = [][]int{{0}, {0}, {1}, {1}}
	pl, err := RandomPlacement(p, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Equal(mat.IntVec{0, 0, 1, 1}) {
		t.Errorf("tight placement = %v, want [0 0 1 1]", pl)
	}
}

func TestConstrainedRandomPlacementNeedsAugmenting(t *testing.T) {
	// Site 0 has capacity 2; processes 0,1 allow {0,1} and processes 2,3
	// allow only {0}. A naive greedy that parks 0 and 1 on site 0 first
	// must relocate them via augmenting paths.
	p := twoSiteProblem()
	p.Allowed = [][]int{{0, 1}, {0, 1}, {0}, {0}}
	for seed := int64(0); seed < 20; seed++ {
		pl, err := RandomPlacement(p, stats.NewRand(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if pl[2] != 0 || pl[3] != 0 {
			t.Fatalf("seed %d: restricted processes misplaced: %v", seed, pl)
		}
		if err := p.CheckPlacement(pl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGeoMapperWithSiteSets(t *testing.T) {
	p := withSiteSets(24, 3, 7)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pl, err := (&GeoMapper{Kappa: 3, Seed: 1}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatalf("geo placement violates site sets: %v", err)
	}
}

func TestGeoMapperSiteSetsStillOptimize(t *testing.T) {
	p := withSiteSets(24, 3, 9)
	pl, err := (&GeoMapper{Kappa: 3, Seed: 1}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(5)
	var costs []float64
	for i := 0; i < 30; i++ {
		rp, err := RandomPlacement(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, p.Cost(rp).Float())
	}
	if p.Cost(pl).Float() > stats.Mean(costs) {
		t.Errorf("geo cost %v not below random mean %v under site sets", p.Cost(pl), stats.Mean(costs))
	}
}

func TestRepairLeftovers(t *testing.T) {
	p := twoSiteProblem()
	p.Allowed = [][]int{{0, 1}, {0, 1}, {0}, {0}}
	// Pathological partial placement: 0 and 1 occupy site 0; 2 and 3 are
	// unplaced and only admissible on site 0.
	pl := Placement{0, 0, Unconstrained, Unconstrained}
	if err := RepairLeftovers(p, pl); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatalf("repair produced infeasible placement: %v", err)
	}
	if pl[2] != 0 || pl[3] != 0 {
		t.Errorf("restricted processes not at site 0: %v", pl)
	}
}

func TestRepairLeftoversInfeasible(t *testing.T) {
	p := twoSiteProblem()
	p.Allowed = [][]int{{0}, {0}, {0}, nil}
	// Three processes needing site 0 (capacity 2): repair must fail.
	pl := Placement{0, 0, Unconstrained, 1}
	if err := RepairLeftovers(p, pl); err == nil {
		t.Error("infeasible repair succeeded")
	}
}

// Property: on random feasible site-set instances, RandomPlacement and
// GeoMapper always produce admissible placements.
func TestQuickSiteSetsFeasible(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8, masks []uint8) bool {
		n := int(nRaw%16) + 4
		m := int(mRaw%3) + 2
		p := clusteredProblem(n, m, seed)
		p.Allowed = make([][]int, n)
		for i := 0; i < n && i < len(masks); i++ {
			for s := 0; s < m; s++ {
				if masks[i]&(1<<uint(s)) != 0 {
					p.Allowed[i] = append(p.Allowed[i], s)
				}
			}
		}
		if p.Validate() != nil {
			return true // infeasible mask draw; skip
		}
		pl, err := RandomPlacement(p, stats.NewRand(seed))
		if err != nil || p.CheckPlacement(pl) != nil {
			return false
		}
		gp, err := (&GeoMapper{Kappa: 3, Seed: seed}).Map(p)
		if err != nil || p.CheckPlacement(gp) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Regression: a tight instance (all capacities exactly filled, overlapping
// small allowed sets) on which RepairLeftovers once mis-iterated its
// occupant list and reported false infeasibility.
func TestGeoMapperTightSiteSetsRegression(t *testing.T) {
	masks := []byte{0xae, 0x23, 0xb6, 0x41, 0xe3, 0x3e, 0x5c, 0x53}
	p := clusteredProblem(8, 4, -5635030028237787357)
	p.Allowed = make([][]int, 8)
	for i := range p.Allowed {
		for s := 0; s < 4; s++ {
			if masks[i]&(1<<uint(s)) != 0 {
				p.Allowed[i] = append(p.Allowed[i], s)
			}
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pl, err := (&GeoMapper{Kappa: 3, Seed: -5635030028237787357}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
}
