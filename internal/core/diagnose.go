package core

import (
	"fmt"
	"sort"
	"strings"

	"geoprocmap/internal/mat"
	"geoprocmap/internal/units"
)

// PlacementStats summarizes where a placement puts traffic — the
// diagnostics the geomap tool prints so an operator can see *why* a
// mapping is good or bad.
type PlacementStats struct {
	// Load[j] is the number of processes at site j.
	Load mat.IntVec
	// SiteTraffic(k, l) is the volume in bytes flowing from site k to
	// site l under the placement (diagonal = intra-site volume).
	SiteTraffic *mat.Matrix
	// IntraVolume and CrossVolume split the total traffic.
	IntraVolume units.Bytes
	CrossVolume units.Bytes
	// CrossMsgs counts messages crossing site boundaries.
	CrossMsgs float64
	// Cost is the placement's Formula 4 cost.
	Cost units.Cost
}

// Diagnose computes placement statistics. The placement must be feasible.
func (p *Problem) Diagnose(pl Placement) (*PlacementStats, error) {
	if err := p.CheckPlacement(pl); err != nil {
		return nil, err
	}
	m := p.M()
	st := &PlacementStats{
		Load:        mat.NewIntVec(m, 0),
		SiteTraffic: mat.NewSquare(m),
		Cost:        p.Cost(pl),
	}
	for _, s := range pl {
		st.Load[s]++
	}
	for i := 0; i < p.N(); i++ {
		si := pl[i]
		for _, e := range p.Comm.Outgoing(i) {
			sj := pl[e.Peer]
			st.SiteTraffic.Add(si, sj, e.Volume)
			if si == sj {
				st.IntraVolume += units.Bytes(e.Volume)
			} else {
				st.CrossVolume += units.Bytes(e.Volume)
				st.CrossMsgs += e.Msgs
			}
		}
	}
	return st, nil
}

// CrossFraction returns the share of traffic volume crossing the WAN.
func (s *PlacementStats) CrossFraction() float64 {
	total := s.IntraVolume + s.CrossVolume
	if total == 0 { //geolint:ignore floatcmp exact-zero guard against division by zero on summed non-negative volumes
		return 0
	}
	return s.CrossVolume.Float() / total.Float()
}

// TopWANFlows returns the k heaviest inter-site flows as (from, to,
// volume) triples, heaviest first.
func (s *PlacementStats) TopWANFlows(k int) [][3]float64 {
	type flow struct {
		from, to int
		vol      float64
	}
	var flows []flow
	m := s.SiteTraffic.Rows()
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if a == b {
				continue
			}
			if v := s.SiteTraffic.At(a, b); v > 0 {
				flows = append(flows, flow{a, b, v})
			}
		}
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].vol != flows[j].vol { //geolint:ignore floatcmp sort comparator tie-break; exact equality only collapses identical sums
			return flows[i].vol > flows[j].vol
		}
		if flows[i].from != flows[j].from {
			return flows[i].from < flows[j].from
		}
		return flows[i].to < flows[j].to
	})
	if k > len(flows) {
		k = len(flows)
	}
	out := make([][3]float64, 0, k)
	for _, f := range flows[:k] {
		out = append(out, [3]float64{float64(f.from), float64(f.to), f.vol})
	}
	return out
}

// String renders a compact diagnostic block.
func (s *PlacementStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost %.4f, cross-WAN volume %.1f%% (%.2f MB over %d messages)\n",
		s.Cost.Float(), 100*s.CrossFraction(), s.CrossVolume.Float()/1e6, int(s.CrossMsgs))
	fmt.Fprintf(&b, "site loads: %v\n", s.Load)
	for _, f := range s.TopWANFlows(3) {
		fmt.Fprintf(&b, "  WAN flow site %d → site %d: %.2f MB\n", int(f[0]), int(f[1]), f[2]/1e6)
	}
	return b.String()
}
