package core

import (
	"math"
	"testing"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
)

// twoSiteProblem builds a tiny hand-checkable instance: 4 processes, 2
// sites with capacity 2 each. Site 0 and 1 have intra latency 0.001 s and
// bandwidth 100 MB/s; the cross link has latency 0.1 s and bandwidth
// 10 MB/s (symmetric, no jitter, for exact arithmetic).
func twoSiteProblem() *Problem {
	g := comm.NewGraph(4)
	g.AddTraffic(0, 1, 1e6, 10) // heavy pair A
	g.AddTraffic(2, 3, 1e6, 10) // heavy pair B
	g.AddTraffic(0, 2, 1e3, 1)  // light cross traffic
	lt := mat.MustFrom([][]float64{{0.001, 0.1}, {0.1, 0.001}})
	bt := mat.MustFrom([][]float64{{100e6, 10e6}, {10e6, 100e6}})
	return &Problem{
		Comm:       g,
		LT:         lt,
		BT:         bt,
		PC:         []geo.LatLon{{Lat: 0, Lon: 0}, {Lat: 0, Lon: 100}},
		Capacity:   mat.IntVec{2, 2},
		Constraint: mat.NewIntVec(4, Unconstrained),
	}
}

func TestValidateOK(t *testing.T) {
	if err := twoSiteProblem().Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestValidateFailures(t *testing.T) {
	mutations := []struct {
		name string
		fn   func(p *Problem)
	}{
		{"nil comm", func(p *Problem) { p.Comm = nil }},
		{"no processes", func(p *Problem) { p.Comm = comm.NewGraph(0) }},
		{"no sites", func(p *Problem) { p.Capacity = nil }},
		{"nil LT", func(p *Problem) { p.LT = nil }},
		{"LT size", func(p *Problem) { p.LT = mat.NewSquare(3) }},
		{"BT size", func(p *Problem) { p.BT = mat.New(2, 3) }},
		{"PC size", func(p *Problem) { p.PC = p.PC[:1] }},
		{"zero bandwidth", func(p *Problem) { p.BT.Set(0, 1, 0) }},
		{"negative latency", func(p *Problem) { p.LT.Set(1, 0, -1) }},
		{"zero capacity", func(p *Problem) { p.Capacity[0] = 0 }},
		{"insufficient capacity", func(p *Problem) { p.Capacity = mat.IntVec{1, 2} }},
		{"constraint length", func(p *Problem) { p.Constraint = p.Constraint[:2] }},
		{"constraint range", func(p *Problem) { p.Constraint[0] = 5 }},
		{"constraint negative", func(p *Problem) { p.Constraint[0] = -2 }},
		{"constraint overflow", func(p *Problem) {
			p.Constraint[0], p.Constraint[1], p.Constraint[2] = 0, 0, 0
		}},
	}
	for _, m := range mutations {
		p := twoSiteProblem()
		m.fn(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken problem", m.name)
		}
	}
}

func TestCheckPlacement(t *testing.T) {
	p := twoSiteProblem()
	if err := p.CheckPlacement(Placement{0, 0, 1, 1}); err != nil {
		t.Errorf("feasible placement rejected: %v", err)
	}
	cases := []struct {
		name string
		pl   Placement
	}{
		{"short", Placement{0, 0, 1}},
		{"range", Placement{0, 0, 1, 2}},
		{"negative", Placement{0, 0, 1, -1}},
		{"overfull", Placement{0, 0, 0, 1}},
	}
	for _, tc := range cases {
		if err := p.CheckPlacement(tc.pl); err == nil {
			t.Errorf("%s: infeasible placement accepted", tc.name)
		}
	}
	p.Constraint[3] = 0
	if err := p.CheckPlacement(Placement{1, 1, 0, 0}); err != nil {
		t.Errorf("placement honoring constraint rejected: %v", err)
	}
	if err := p.CheckPlacement(Placement{0, 0, 1, 1}); err == nil {
		t.Error("constraint-violating placement accepted")
	}
}

func TestCostHandComputed(t *testing.T) {
	p := twoSiteProblem()
	// Colocated pairs: edges (0,1) and (2,3) intra, (0,2) cross.
	colocated := Placement{0, 0, 1, 1}
	wantIntra := 10*0.001 + 1e6/100e6 // per heavy pair
	wantCross := 1*0.1 + 1e3/10e6
	want := 2*wantIntra + wantCross
	if got := p.Cost(colocated).Float(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost(colocated) = %v, want %v", got, want)
	}
	// Split pairs: heavy edges cross, light edge (0,2) intra.
	split := Placement{0, 1, 0, 1}
	wantHeavyCross := 10*0.1 + 1e6/10e6
	wantLightIntra := 1*0.001 + 1e3/100e6
	wantSplit := 2*wantHeavyCross + wantLightIntra
	if got := p.Cost(split).Float(); math.Abs(got-wantSplit) > 1e-9 {
		t.Errorf("Cost(split) = %v, want %v", got, wantSplit)
	}
	if p.Cost(colocated) >= p.Cost(split) {
		t.Error("colocating heavy pairs should be cheaper")
	}
}

func TestCostParts(t *testing.T) {
	p := twoSiteProblem()
	pl := Placement{0, 1, 0, 1}
	lat, bw := p.CostParts(pl)
	if lat <= 0 || bw <= 0 {
		t.Errorf("CostParts = %v, %v; want both positive", lat, bw)
	}
	if math.Abs((lat + bw - p.Cost(pl)).Float()) > 1e-12 {
		t.Error("CostParts does not sum to Cost")
	}
}

func TestReferenceWeightsSingleSite(t *testing.T) {
	g := comm.NewGraph(2)
	g.AddTraffic(0, 1, 100, 1)
	p := &Problem{
		Comm:       g,
		LT:         mat.MustFrom([][]float64{{0.5}}),
		BT:         mat.MustFrom([][]float64{{2e6}}),
		PC:         []geo.LatLon{{}},
		Capacity:   mat.IntVec{2},
		Constraint: mat.NewIntVec(2, Unconstrained),
	}
	lat, bw := p.referenceWeights()
	if lat != 0.5 || bw != 2e6 {
		t.Errorf("referenceWeights = %v, %v; want intra values", lat, bw)
	}
}

func TestNM(t *testing.T) {
	p := twoSiteProblem()
	if p.N() != 4 || p.M() != 2 {
		t.Errorf("N/M = %d/%d, want 4/2", p.N(), p.M())
	}
}
