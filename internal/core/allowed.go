package core

import (
	"fmt"
	"math/rand"

	"geoprocmap/internal/flow"
)

// This file implements the multi-site data-movement constraint extension.
// The paper's model pins a process to exactly one site (the C vector) and
// explicitly defers the generalization: "we only consider the data
// movement constraint on individual sites and leave the extension to
// multiple site constraints in our future work" (Section 3.1). Here a
// process may instead carry a *set* of admissible sites — e.g. "any EU
// region" under data-residency law — via Problem.Allowed. Feasibility
// becomes a bipartite b-matching question, decided with max-flow
// (internal/flow); every mapper in this library honors the sets.

// AllowedOn reports whether process i may be placed on site s under both
// the pin vector and the allowed-site sets.
func (p *Problem) AllowedOn(i, s int) bool {
	if c := p.Constraint[i]; c != Unconstrained && c != s {
		return false
	}
	if len(p.Allowed) == 0 || len(p.Allowed[i]) == 0 {
		return true
	}
	for _, a := range p.Allowed[i] {
		if a == s {
			return true
		}
	}
	return false
}

// HasSiteSets reports whether any process carries a multi-site restriction.
func (p *Problem) HasSiteSets() bool {
	for _, a := range p.Allowed {
		if len(a) > 0 {
			return true
		}
	}
	return false
}

// validateAllowed checks the allowed-site sets' structural invariants and
// overall feasibility (Hall's condition via max-flow).
func (p *Problem) validateAllowed() error {
	if len(p.Allowed) == 0 {
		return nil
	}
	n, m := p.N(), p.M()
	if len(p.Allowed) != n {
		return fmt.Errorf("core: allowed-site sets have length %d, want %d", len(p.Allowed), n)
	}
	for i, sites := range p.Allowed {
		seen := map[int]bool{}
		for _, s := range sites {
			if s < 0 || s >= m {
				return fmt.Errorf("core: process %d allows site %d out of range [0,%d)", i, s, m)
			}
			if seen[s] {
				return fmt.Errorf("core: process %d lists site %d twice", i, s)
			}
			seen[s] = true
		}
		if c := p.Constraint[i]; c != Unconstrained && len(sites) > 0 && !seen[c] {
			return fmt.Errorf("core: process %d is pinned to site %d but allows only %v", i, c, sites)
		}
	}
	if _, err := p.feasibleAssignment(); err != nil {
		return err
	}
	return nil
}

// feasibleAssignment returns some placement satisfying pins, allowed sets
// and capacities, or an error when none exists.
func (p *Problem) feasibleAssignment() ([]int, error) {
	n := p.N()
	allowed := make([][]int, n)
	for i := 0; i < n; i++ {
		switch {
		case p.Constraint[i] != Unconstrained:
			allowed[i] = []int{p.Constraint[i]}
		case len(p.Allowed) > 0:
			allowed[i] = p.Allowed[i]
		}
	}
	a := &flow.AssignmentProblem{Items: n, Capacity: p.Capacity, Allowed: allowed}
	sol, err := a.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: constraints are infeasible: %w", err)
	}
	return sol, nil
}

// constrainedRandomPlacement samples a feasible placement under
// multi-site restrictions: processes are visited in random order, each
// takes a random admissible site with free capacity, and augmenting paths
// relocate earlier processes when a site is full. The walk always succeeds
// on validated (feasible) problems.
func constrainedRandomPlacement(p *Problem, rng *rand.Rand) (Placement, error) {
	n, m := p.N(), p.M()
	pl := make(Placement, n)
	for i := range pl {
		pl[i] = Unconstrained
	}
	load := make([]int, m)
	members := make([][]int, m)

	sitesOf := func(i int) []int {
		if c := p.Constraint[i]; c != Unconstrained {
			return []int{c}
		}
		if len(p.Allowed) > 0 && len(p.Allowed[i]) > 0 {
			out := append([]int(nil), p.Allowed[i]...)
			rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
			return out
		}
		out := rng.Perm(m)
		return out
	}

	place := func(i, s int) {
		pl[i] = s
		load[s]++
		members[s] = append(members[s], i)
	}
	unplace := func(i int) {
		s := pl[i]
		load[s]--
		mem := members[s]
		for idx, j := range mem {
			if j == i {
				mem[idx] = mem[len(mem)-1]
				members[s] = mem[:len(mem)-1]
				break
			}
		}
		pl[i] = Unconstrained
	}

	var augment func(i int, visited []bool) bool
	augment = func(i int, visited []bool) bool {
		for _, s := range sitesOf(i) {
			if visited[s] {
				continue
			}
			visited[s] = true
			if load[s] < p.Capacity[s] {
				place(i, s)
				return true
			}
			// Try relocating one current occupant of s elsewhere.
			occupants := append([]int(nil), members[s]...)
			rng.Shuffle(len(occupants), func(a, b int) { occupants[a], occupants[b] = occupants[b], occupants[a] })
			for _, j := range occupants {
				if p.Constraint[j] != Unconstrained {
					continue // pinned occupants cannot move
				}
				unplace(j)
				if augment(j, visited) {
					place(i, s)
					return true
				}
				place(j, s) // restore
			}
		}
		return false
	}

	for _, i := range rng.Perm(n) {
		visited := make([]bool, m)
		if !augment(i, visited) {
			return nil, fmt.Errorf("core: could not place process %d under the site restrictions", i)
		}
	}
	return pl, nil
}

// RepairLeftovers places any still-unassigned processes (marked
// Unconstrained in pl) onto admissible sites using augmenting paths,
// relocating only unpinned processes. It is the fallback the heuristic
// mappers use when greedy packing strands a restricted process.
func RepairLeftovers(p *Problem, pl Placement) error {
	m := p.M()
	load := make([]int, m)
	members := make([][]int, m)
	var leftovers []int
	for i, s := range pl {
		if s == Unconstrained {
			leftovers = append(leftovers, i)
			continue
		}
		load[s]++
		members[s] = append(members[s], i)
	}
	if len(leftovers) == 0 {
		return nil
	}
	place := func(i, s int) {
		pl[i] = s
		load[s]++
		members[s] = append(members[s], i)
	}
	unplace := func(i int) {
		s := pl[i]
		load[s]--
		mem := members[s]
		for idx, j := range mem {
			if j == i {
				mem[idx] = mem[len(mem)-1]
				members[s] = mem[:len(mem)-1]
				break
			}
		}
		pl[i] = Unconstrained
	}
	var augment func(i int, visited []bool) bool
	augment = func(i int, visited []bool) bool {
		for s := 0; s < m; s++ {
			if visited[s] || !p.AllowedOn(i, s) {
				continue
			}
			visited[s] = true
			if load[s] < p.Capacity[s] {
				place(i, s)
				return true
			}
			// Iterate a snapshot: relocations mutate members[s].
			occupants := append([]int(nil), members[s]...)
			for _, j := range occupants {
				if p.Constraint[j] != Unconstrained {
					continue
				}
				unplace(j)
				if augment(j, visited) {
					place(i, s)
					return true
				}
				place(j, s) // restore
			}
		}
		return false
	}
	for _, i := range leftovers {
		visited := make([]bool, m)
		if !augment(i, visited) {
			return fmt.Errorf("core: cannot repair placement: process %d has no admissible slot", i)
		}
	}
	return nil
}
