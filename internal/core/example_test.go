package core_test

import (
	"fmt"
	"log"

	"geoprocmap/internal/apps"
	"geoprocmap/internal/core"
	"geoprocmap/internal/netmodel"
)

// ExampleGeoMapper_Map shows the minimal path from a workload and a cloud
// to a placement: profile the pattern, assemble the problem with the
// cloud's ground-truth matrices, and run Algorithm 1.
func ExampleGeoMapper_Map() {
	cloud, err := netmodel.PaperCloud(1)
	if err != nil {
		log.Fatal(err)
	}
	pattern, err := apps.Graph(apps.NewLU(), 64, 1)
	if err != nil {
		log.Fatal(err)
	}
	constraint := make(core.Placement, 64)
	for i := range constraint {
		constraint[i] = core.Unconstrained
	}
	problem := &core.Problem{
		Comm:       pattern,
		LT:         cloud.LT,
		BT:         cloud.BT,
		PC:         cloud.Coordinates(),
		Capacity:   cloud.Capacity(),
		Constraint: constraint,
	}
	placement, err := (&core.GeoMapper{Kappa: 4, Seed: 1}).Map(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", problem.CheckPlacement(placement) == nil)
	fmt.Println("sites used:", placement.Histogram(4))
	// Output:
	// feasible: true
	// sites used: [16 16 16 16]
}

// ExampleProblem_Diagnose inspects where a placement puts its traffic.
func ExampleProblem_Diagnose() {
	cloud, err := netmodel.PaperCloud(1)
	if err != nil {
		log.Fatal(err)
	}
	pattern, err := apps.Graph(apps.NewLU(), 64, 1)
	if err != nil {
		log.Fatal(err)
	}
	constraint := make(core.Placement, 64)
	for i := range constraint {
		constraint[i] = core.Unconstrained
	}
	problem := &core.Problem{
		Comm: pattern, LT: cloud.LT, BT: cloud.BT,
		PC: cloud.Coordinates(), Capacity: cloud.Capacity(), Constraint: constraint,
	}
	// A block placement keeps LU's grid rows together.
	block := make(core.Placement, 64)
	for i := range block {
		block[i] = i / 16
	}
	st, err := problem.Diagnose(block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-WAN share: %.0f%%\n", 100*st.CrossFraction())
	// Output:
	// cross-WAN share: 28%
}
