package core

import (
	"encoding/json"
	"fmt"
	"io"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
)

// problemJSON is the stable on-disk form of a Problem. The communication
// pattern is stored as an edge list (the matrices are sparse at scale);
// LT/BT are dense M×M row-major slices.
type problemJSON struct {
	N          int          `json:"n"`
	M          int          `json:"m"`
	Edges      []edgeJSON   `json:"edges"`
	LT         [][]float64  `json:"lt"`
	BT         [][]float64  `json:"bt"`
	PC         []geo.LatLon `json:"pc"`
	Capacity   []int        `json:"capacity"`
	Constraint []int        `json:"constraint"`
	Allowed    [][]int      `json:"allowed,omitempty"`
}

type edgeJSON struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Volume float64 `json:"volume"`
	Msgs   float64 `json:"msgs"`
}

// WriteJSON serializes the problem. The instance should be valid; no
// validation is performed here.
func (p *Problem) WriteJSON(w io.Writer) error {
	n, m := p.N(), p.M()
	out := problemJSON{
		N:          n,
		M:          m,
		PC:         p.PC,
		Capacity:   p.Capacity,
		Constraint: p.Constraint,
		Allowed:    p.Allowed,
	}
	for i := 0; i < n; i++ {
		for _, e := range p.Comm.Outgoing(i) {
			out.Edges = append(out.Edges, edgeJSON{Src: i, Dst: e.Peer, Volume: e.Volume, Msgs: e.Msgs})
		}
	}
	out.LT = make([][]float64, m)
	out.BT = make([][]float64, m)
	for k := 0; k < m; k++ {
		out.LT[k] = p.LT.Row(k)
		out.BT[k] = p.BT.Row(k)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON parses a problem previously written with WriteJSON and
// validates it.
func ReadJSON(r io.Reader) (*Problem, error) {
	var in problemJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding problem: %w", err)
	}
	if in.N <= 0 || in.M <= 0 {
		return nil, fmt.Errorf("core: problem has n=%d, m=%d", in.N, in.M)
	}
	g := comm.NewGraph(in.N)
	for i, e := range in.Edges {
		if e.Src < 0 || e.Src >= in.N || e.Dst < 0 || e.Dst >= in.N {
			return nil, fmt.Errorf("core: edge %d endpoint out of range", i)
		}
		if e.Volume < 0 || e.Msgs < 0 {
			return nil, fmt.Errorf("core: edge %d has negative traffic", i)
		}
		g.AddTraffic(e.Src, e.Dst, e.Volume, e.Msgs)
	}
	lt, err := mat.From(in.LT)
	if err != nil {
		return nil, fmt.Errorf("core: LT: %w", err)
	}
	bt, err := mat.From(in.BT)
	if err != nil {
		return nil, fmt.Errorf("core: BT: %w", err)
	}
	p := &Problem{
		Comm:       g,
		LT:         lt,
		BT:         bt,
		PC:         in.PC,
		Capacity:   in.Capacity,
		Constraint: in.Constraint,
		Allowed:    in.Allowed,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// placementJSON is the stable on-disk form of a placement result.
type placementJSON struct {
	Algorithm string  `json:"algorithm"`
	Cost      float64 `json:"cost"`
	Placement []int   `json:"placement"`
}

// WritePlacementJSON serializes a placement with its provenance.
func WritePlacementJSON(w io.Writer, algorithm string, cost float64, pl Placement) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(placementJSON{Algorithm: algorithm, Cost: cost, Placement: pl})
}

// ReadPlacementJSON parses a placement written with WritePlacementJSON.
func ReadPlacementJSON(r io.Reader) (algorithm string, cost float64, pl Placement, err error) {
	var in placementJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return "", 0, nil, fmt.Errorf("core: decoding placement: %w", err)
	}
	return in.Algorithm, in.Cost, in.Placement, nil
}
