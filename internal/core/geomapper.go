package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// GeoMapper implements the paper's Geo-distributed process-mapping
// algorithm (Algorithm 1):
//
//  1. cluster the M sites into κ groups with K-means over their physical
//     coordinates (grouping optimization, Section 4.2);
//  2. for every order θ of the κ groups, greedily build a placement: pin
//     constrained processes first, then walk groups in order and fill each
//     group's sites — largest remaining capacity first — starting from the
//     globally heaviest-communicating unselected process and repeatedly
//     adding the unselected process with the heaviest communication to the
//     processes already in the site;
//  3. keep the order whose placement has the minimum cost (Formula 4).
//
// The complexity is O(κ!·N²); the grouping step keeps κ small (the paper
// recommends κ ≤ 5) so the order search stays tractable for large M.
type GeoMapper struct {
	// Kappa is the number of K-means site groups κ. Zero selects the
	// default of min(M, 4). Values above MaxKappa are rejected to keep the
	// κ! order enumeration bounded.
	Kappa int
	// Seed drives the K-means initialization.
	Seed int64
	// MaxOrders, when positive, caps the number of group orders examined.
	// Zero examines all κ! orders, as in the paper.
	MaxOrders int
	// DisableGrouping skips the K-means step and treats every site as its
	// own group (used by the ablation study). The order search then
	// enumerates M! site orders, so it is only usable for small M.
	DisableGrouping bool
	// SingleOrder, when true, evaluates only the identity group order
	// instead of searching all κ! orders (used by the ablation study).
	SingleOrder bool
	// RefinePasses, when positive, polishes the best placement with that
	// many sweeps of first-improvement pairwise exchanges on the true
	// cost function. This is an extension beyond the paper's Algorithm 1
	// (which returns the packing result directly); each sweep is O(N²·deg)
	// so it trades overhead for solution quality, quantified by
	// BenchmarkAblationRefinement.
	RefinePasses int
	// Workers is the number of goroutines evaluating group orders. The κ!
	// orders are embarrassingly parallel (each evaluation owns its own
	// heuristicState) and the reduction — minimum cost, ties broken by
	// lowest lexicographic permutation rank — is deterministic, so the
	// result is byte-identical for every worker count. Zero selects
	// GOMAXPROCS; 1 runs the search serially on the calling goroutine.
	Workers int
}

// MaxKappa bounds the group count so κ! stays tractable.
const MaxKappa = 8

// Name implements Mapper.
func (g *GeoMapper) Name() string { return "Geo-distributed" }

// Map implements Mapper. It returns the best placement found across all
// examined group orders. The result is byte-identical for identical
// problems at any worker count — the contract TestSeedDeterminism and the
// serve-smoke digest gate enforce.
//
//geolint:deterministic
func (g *GeoMapper) Map(p *Problem) (Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kappa := g.Kappa
	if kappa == 0 {
		kappa = 4
	}
	if kappa < 1 {
		return nil, fmt.Errorf("core: kappa = %d, want >= 1", kappa)
	}
	if kappa > MaxKappa {
		return nil, fmt.Errorf("core: kappa = %d exceeds MaxKappa = %d; the κ! order search would be intractable", kappa, MaxKappa)
	}

	var groups [][]int
	if g.DisableGrouping {
		if p.M() > MaxKappa {
			return nil, fmt.Errorf("core: grouping disabled with M = %d sites; order search over M! orders is intractable (max %d)", p.M(), MaxKappa)
		}
		for j := 0; j < p.M(); j++ {
			groups = append(groups, []int{j})
		}
	} else {
		var err error
		groups, err = GroupSites(p.PC, kappa, g.Seed)
		if err != nil {
			return nil, err
		}
	}

	best, bestCost, err := g.searchOrders(p, groups)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < g.RefinePasses; pass++ {
		if !refinePass(p, best, &bestCost) {
			break
		}
		// refinePass maintains the cost incrementally; FP drift compounds
		// across sweeps, so re-sync against the true objective before the
		// next sweep's improvement comparisons (and before anything
		// downstream trusts bestCost).
		bestCost = p.Cost(best)
	}
	return best, nil
}

// repairPlacement relocates stranded processes of a site-set placement; a
// package variable so the MaxOrders-starvation regression test can inject
// repair failures (on validated problems the augmenting-path repair itself
// cannot fail, but the budget accounting must not assume that).
var repairPlacement = RepairLeftovers

// searchOrders runs the κ! group-order search and returns the best
// feasible placement with its cost. The search space is the lexicographic
// rank order of group permutations; the winner is the minimum-cost
// placement with ties broken by lowest rank, so every worker count —
// including the serial path — selects the same order, byte for byte.
func (g *GeoMapper) searchOrders(p *Problem, groups [][]int) (Placement, units.Cost, error) {
	if g.SingleOrder {
		perm := make([]int, len(groups))
		for i := range perm {
			perm[i] = i
		}
		res := newOrderSearch(p, groups, g.MaxOrders).run(perm, 0)
		if res.best == nil {
			return nil, 0, fmt.Errorf("core: no placement produced")
		}
		return res.best, res.bestCost, nil
	}

	total := stats.FactorialInt(len(groups))
	workers := g.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //geolint:detsource worker count only; the rank-range reduction makes the result identical at any count
	}
	if workers > total {
		workers = total
	}
	if workers == 1 {
		// Serial path: one range covering the whole rank space, evaluated
		// on the calling goroutine exactly as the pre-parallel code did.
		res := newOrderSearch(p, groups, g.MaxOrders).runRange(0, total)
		if res.best == nil {
			return nil, 0, fmt.Errorf("core: no placement produced")
		}
		return res.best, res.bestCost, nil
	}

	// Split [0, κ!) into contiguous rank ranges, one per worker. Each
	// worker owns a private heuristicState (the fill buffers are per-state,
	// so nothing is shared beyond the read-only problem and groups). The
	// comm graph's adjacency cache builds lazily on first use — force it
	// now so the workers' Neighbors traversals are pure reads.
	p.Comm.Prewarm()
	results := make([]rangeResult, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * total / workers
			hi := (w + 1) * total / workers
			results[w] = newOrderSearch(p, groups, g.MaxOrders).runRange(lo, hi)
		}(w)
	}
	wg.Wait()

	if g.MaxOrders > 0 {
		return g.reduceCapped(p, groups, results)
	}
	// Deterministic reduction: minimum cost; on an exact cost tie the
	// lowest rank wins, matching the serial loop's keep-first behavior.
	bestIdx := -1
	for w := range results {
		r := &results[w]
		if r.best == nil {
			continue
		}
		if bestIdx < 0 || r.bestCost < results[bestIdx].bestCost ||
			(r.bestCost == results[bestIdx].bestCost && r.bestRank < results[bestIdx].bestRank) { //geolint:ignore floatcmp exact tie-break: equal costs must fall through to the rank comparison or the winner would depend on worker scheduling
			bestIdx = w
		}
	}
	if bestIdx < 0 {
		return nil, 0, fmt.Errorf("core: no placement produced")
	}
	return results[bestIdx].best, results[bestIdx].bestCost, nil
}

// reduceCapped merges per-range results under a MaxOrders budget. The
// budget counts feasible orders in ascending rank order, so the counted
// set is the global first-MaxOrders feasible ranks — each worker recorded
// (rank, cost) for at most MaxOrders feasible orders of its own range,
// which is guaranteed to cover that prefix. The winning order is then
// re-evaluated for its placement: a worker's retained best placement may
// belong to a rank beyond the global budget.
func (g *GeoMapper) reduceCapped(p *Problem, groups [][]int, results []rangeResult) (Placement, units.Cost, error) {
	counted := 0
	bestRank := -1
	bestCost := units.Cost(math.Inf(1))
	for w := range results {
		for _, fc := range results[w].feasible {
			if counted == g.MaxOrders {
				break
			}
			counted++
			if fc.cost < bestCost {
				bestCost = fc.cost
				bestRank = fc.rank
			}
		}
		if counted == g.MaxOrders {
			break
		}
	}
	if bestRank < 0 {
		return nil, 0, fmt.Errorf("core: no placement produced")
	}
	for w := range results {
		if results[w].best != nil && results[w].bestRank == bestRank {
			return results[w].best, results[w].bestCost, nil
		}
	}
	res := newOrderSearch(p, groups, 0).run(stats.PermutationUnrank(len(groups), bestRank), bestRank)
	if res.best == nil {
		// The winning rank was feasible when first evaluated; the search is
		// deterministic, so it cannot become infeasible on re-evaluation.
		return nil, 0, fmt.Errorf("core: order %d infeasible on re-evaluation", bestRank)
	}
	return res.best, res.bestCost, nil
}

// rankCost records one feasible order's objective for the capped reduction.
type rankCost struct {
	rank int
	cost units.Cost
}

// rangeResult summarizes one contiguous rank range: the best feasible
// placement found (nil when the range produced none) and, under a
// MaxOrders budget, the first feasible (rank, cost) pairs.
type rangeResult struct {
	best     Placement
	bestCost units.Cost
	bestRank int
	feasible []rankCost
}

// orderSearch evaluates group orders on one goroutine with a private
// heuristicState.
type orderSearch struct {
	p       *Problem
	groups  [][]int
	cap     int // MaxOrders budget of feasible orders; 0 = unbounded
	h       *heuristicState
	ordered [][]int
	res     rangeResult
}

func newOrderSearch(p *Problem, groups [][]int, maxOrders int) *orderSearch {
	return &orderSearch{
		p:       p,
		groups:  groups,
		cap:     maxOrders,
		h:       newHeuristicState(p),
		ordered: make([][]int, len(groups)),
		res:     rangeResult{bestCost: units.Cost(math.Inf(1)), bestRank: -1},
	}
}

// runRange evaluates every order with rank in [lo, hi), stopping early
// once the budget of feasible orders is exhausted.
func (s *orderSearch) runRange(lo, hi int) rangeResult {
	stats.PermutationRange(len(s.groups), lo, hi, s.tryOrder)
	return s.res
}

// run evaluates the single given order.
func (s *orderSearch) run(perm []int, rank int) rangeResult {
	s.tryOrder(rank, perm)
	return s.res
}

// tryOrder is the per-order body of Algorithm 1's outer loop: greedy fill,
// site-set repair, cost comparison. Orders whose repair fails are
// infeasible and do not consume the MaxOrders budget — a constrained
// problem with a small cap must not starve on infeasible orders while
// uncounted later orders would succeed.
func (s *orderSearch) tryOrder(rank int, perm []int) bool {
	for i, gi := range perm {
		s.ordered[i] = s.groups[gi]
	}
	pl := s.h.fill(s.ordered)
	if s.p.HasSiteSets() {
		// Multi-site restrictions can strand processes the greedy
		// packing could not fit; relocate via augmenting paths.
		if err := repairPlacement(s.p, pl); err != nil {
			return true
		}
	}
	c := s.p.Cost(pl)
	if s.cap > 0 {
		s.res.feasible = append(s.res.feasible, rankCost{rank: rank, cost: c})
	}
	if c < s.res.bestCost {
		s.res.bestCost = c
		s.res.bestRank = rank
		s.res.best = append(s.res.best[:0], pl...)
	}
	return s.cap <= 0 || len(s.res.feasible) < s.cap
}

// refinePass applies one sweep of first-improvement pairwise exchanges of
// unpinned, mutually-admissible processes, updating pl and cost in place.
// The incremental cost drifts from the true objective as swaps accumulate;
// callers running multiple passes must re-sync it via Problem.Cost.
//
//geolint:allocfree
func refinePass(p *Problem, pl Placement, cost *units.Cost) bool {
	n := p.N()
	improved := false
	for a := 0; a < n; a++ {
		if p.Constraint[a] != Unconstrained {
			continue
		}
		for b := a + 1; b < n; b++ {
			if p.Constraint[b] != Unconstrained || pl[a] == pl[b] {
				continue
			}
			if !p.AllowedOn(a, pl[b]) || !p.AllowedOn(b, pl[a]) {
				continue
			}
			delta := exchangeDelta(p, pl, a, b)
			if delta < -refineTol(*cost) {
				pl[a], pl[b] = pl[b], pl[a]
				*cost += delta
				improved = true
			}
		}
	}
	return improved
}

// refineTol is the minimum improvement a refinement exchange must deliver,
// relative to the current objective: an absolute threshold is vacuous
// against costs orders of magnitude above 1 (every FP-noise "improvement"
// passes, and the pass loop can churn without converging) and needlessly
// strict near zero. The floor of 1 keeps the threshold meaningful for
// near-zero objectives.
func refineTol(c units.Cost) units.Cost {
	m := math.Abs(c.Float())
	if m < 1 {
		m = 1
	}
	return units.Cost(m).Scale(1e-12)
}

// exchangeDelta is the cost change of swapping the sites of processes a
// and b, computed locally over their incident edges. It runs O(N²) times
// per refinement sweep; the site/edge closures below are called directly
// and never escape, so they stay on the stack.
//
//geolint:allocfree
func exchangeDelta(p *Problem, pl Placement, a, b int) units.Cost {
	sa, sb := pl[a], pl[b]
	site := func(j int) int {
		switch j {
		case a:
			return sb
		case b:
			return sa
		default:
			return pl[j]
		}
	}
	var delta units.Cost
	edge := func(i, j int, vol, msgs float64) {
		oldSi, oldSj := pl[i], pl[j]
		newSi, newSj := site(i), site(j)
		delta -= (p.Latency(oldSi, oldSj).Scale(msgs) + units.Bytes(vol).Over(p.Bandwidth(oldSi, oldSj))).AsCost()
		delta += (p.Latency(newSi, newSj).Scale(msgs) + units.Bytes(vol).Over(p.Bandwidth(newSi, newSj))).AsCost()
	}
	for _, e := range p.Comm.Outgoing(a) {
		edge(a, e.Peer, e.Volume, e.Msgs)
	}
	for _, e := range p.Comm.Incoming(a) {
		edge(e.Peer, a, e.Volume, e.Msgs)
	}
	for _, e := range p.Comm.Outgoing(b) {
		if e.Peer != a {
			edge(b, e.Peer, e.Volume, e.Msgs)
		}
	}
	for _, e := range p.Comm.Incoming(b) {
		if e.Peer != a {
			edge(e.Peer, b, e.Volume, e.Msgs)
		}
	}
	return delta
}

// heuristicState carries the reusable buffers of the per-order greedy fill,
// so the κ! order evaluations do not reallocate.
type heuristicState struct {
	p        *Problem
	quantity []units.Cost // static per-process communication quantity
	refLat   units.Seconds
	refBW    units.BytesPerSec

	selected  []bool
	affinity  []units.Cost
	avail     mat.IntVec
	members   [][]int // processes currently placed per site
	pl        Placement
	groupDone []bool // scratch for fill's site-selection loop, len M
}

func newHeuristicState(p *Problem) *heuristicState {
	n := p.N()
	refLat, refBW := p.referenceWeights()
	h := &heuristicState{
		p:        p,
		quantity: make([]units.Cost, n),
		refLat:   refLat,
		refBW:    refBW,
		selected:  make([]bool, n),
		affinity:  make([]units.Cost, n),
		avail:     make(mat.IntVec, p.M()),
		members:   make([][]int, p.M()),
		pl:        make(Placement, n),
		groupDone: make([]bool, p.M()),
	}
	for i := 0; i < n; i++ {
		var q units.Cost
		p.Comm.Neighbors(i, func(_ int, vol, msgs float64) {
			q += h.weight(vol, msgs)
		})
		h.quantity[i] = q
	}
	return h
}

// weight converts a (volume, msgs) pair into a scalar commensurate with
// the α–β cost on an average inter-site link, so "heaviest communication
// quantity" accounts for both the bandwidth and the latency term.
func (h *heuristicState) weight(vol, msgs float64) units.Cost {
	return (h.refLat.Scale(msgs) + units.Bytes(vol).Over(h.refBW)).AsCost()
}

// fill runs the greedy body of Algorithm 1 (lines 3–15) for one ordered
// group sequence and returns the resulting placement. The returned slice is
// reused by subsequent calls; callers must clone it to retain it. Every
// buffer fill touches lives on the state, so the thousands of per-order
// evaluations a worker runs do not allocate.
//
//geolint:allocfree
func (h *heuristicState) fill(orderedGroups [][]int) Placement {
	p := h.p
	n := p.N()
	for i := range h.selected {
		h.selected[i] = false
		h.pl[i] = Unconstrained
	}
	copy(h.avail, p.Capacity)
	for j := range h.members {
		h.members[j] = h.members[j][:0]
	}
	remaining := n

	// Lines 4–6: pin constrained processes and reduce availability.
	for i, c := range p.Constraint {
		if c == Unconstrained {
			continue
		}
		h.pl[i] = c
		h.selected[i] = true
		h.avail[c]--
		h.members[c] = append(h.members[c], i)
		remaining--
	}

	// Lines 7–15: walk groups in order, filling sites one at a time.
	for _, group := range orderedGroups {
		if remaining == 0 {
			break
		}
		// Each iteration picks the unselected site in the group with the
		// most available nodes (line 10). The scratch buffer lives on the
		// state: each worker runs thousands of orders through fill, which
		// must not allocate per order.
		groupDone := h.groupDone[:len(group)]
		for i := range groupDone {
			groupDone[i] = false
		}
		for j := 0; j < len(group); j++ {
			site, bestAvail, bestIdx := -1, -1, -1
			for idx, s := range group {
				if !groupDone[idx] && h.avail[s] > bestAvail {
					site, bestAvail, bestIdx = s, h.avail[s], idx
				}
			}
			if site == -1 {
				break
			}
			groupDone[bestIdx] = true
			if h.avail[site] == 0 {
				continue
			}
			if remaining == 0 {
				break
			}

			// Line 9: seed with the globally heaviest unselected process
			// admissible on this site.
			seed := -1
			bestQ := units.Cost(math.Inf(-1))
			for i := 0; i < n; i++ {
				if !h.selected[i] && h.quantity[i] > bestQ && p.AllowedOn(i, site) {
					seed, bestQ = i, h.quantity[i]
				}
			}
			if seed == -1 {
				continue // no admissible process for this site
			}
			h.place(seed, site)
			remaining--

			// Lines 12–14: fill the rest of the site with the processes
			// most attached to what is already there.
			h.rebuildAffinity(site)
			for h.avail[site] > 0 && remaining > 0 {
				next := -1
				bestA := units.Cost(math.Inf(-1))
				for i := 0; i < n; i++ {
					if h.selected[i] || !p.AllowedOn(i, site) {
						continue
					}
					a := h.affinity[i]
					if a > bestA || (a == bestA && next >= 0 && h.quantity[i] > h.quantity[next]) { //geolint:ignore floatcmp exact tie-break: equal affinities are identical sums (commonly both 0); an epsilon would perturb the mapping
						next, bestA = i, a
					}
				}
				if next == -1 {
					break // remaining processes are inadmissible here
				}
				h.place(next, site)
				remaining--
				h.addAffinity(next)
			}
		}
	}
	return h.pl
}

// place assigns process i to site and updates capacity bookkeeping.
func (h *heuristicState) place(i, site int) {
	h.pl[i] = site
	h.selected[i] = true
	h.avail[site]--
	//geolint:allocsite amortized: members is reset to [:0] per fill, so growth converges to the per-site high-water mark
	h.members[site] = append(h.members[site], i)
}

// rebuildAffinity recomputes, for every process, its total communication
// weight with the processes already placed at site.
func (h *heuristicState) rebuildAffinity(site int) {
	for i := range h.affinity {
		h.affinity[i] = 0
	}
	for _, s := range h.members[site] {
		h.addAffinity(s)
	}
}

// addAffinity adds process s's traffic into the affinity array after s has
// been placed at the site currently being filled.
func (h *heuristicState) addAffinity(s int) {
	h.p.Comm.Neighbors(s, func(j int, vol, msgs float64) {
		h.affinity[j] += h.weight(vol, msgs)
	})
}
