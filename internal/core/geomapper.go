package core

import (
	"fmt"
	"math"

	"geoprocmap/internal/mat"
	"geoprocmap/internal/stats"
	"geoprocmap/internal/units"
)

// GeoMapper implements the paper's Geo-distributed process-mapping
// algorithm (Algorithm 1):
//
//  1. cluster the M sites into κ groups with K-means over their physical
//     coordinates (grouping optimization, Section 4.2);
//  2. for every order θ of the κ groups, greedily build a placement: pin
//     constrained processes first, then walk groups in order and fill each
//     group's sites — largest remaining capacity first — starting from the
//     globally heaviest-communicating unselected process and repeatedly
//     adding the unselected process with the heaviest communication to the
//     processes already in the site;
//  3. keep the order whose placement has the minimum cost (Formula 4).
//
// The complexity is O(κ!·N²); the grouping step keeps κ small (the paper
// recommends κ ≤ 5) so the order search stays tractable for large M.
type GeoMapper struct {
	// Kappa is the number of K-means site groups κ. Zero selects the
	// default of min(M, 4). Values above MaxKappa are rejected to keep the
	// κ! order enumeration bounded.
	Kappa int
	// Seed drives the K-means initialization.
	Seed int64
	// MaxOrders, when positive, caps the number of group orders examined.
	// Zero examines all κ! orders, as in the paper.
	MaxOrders int
	// DisableGrouping skips the K-means step and treats every site as its
	// own group (used by the ablation study). The order search then
	// enumerates M! site orders, so it is only usable for small M.
	DisableGrouping bool
	// SingleOrder, when true, evaluates only the identity group order
	// instead of searching all κ! orders (used by the ablation study).
	SingleOrder bool
	// RefinePasses, when positive, polishes the best placement with that
	// many sweeps of first-improvement pairwise exchanges on the true
	// cost function. This is an extension beyond the paper's Algorithm 1
	// (which returns the packing result directly); each sweep is O(N²·deg)
	// so it trades overhead for solution quality, quantified by
	// BenchmarkAblationRefinement.
	RefinePasses int
}

// MaxKappa bounds the group count so κ! stays tractable.
const MaxKappa = 8

// Name implements Mapper.
func (g *GeoMapper) Name() string { return "Geo-distributed" }

// Map implements Mapper. It returns the best placement found across all
// examined group orders.
func (g *GeoMapper) Map(p *Problem) (Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kappa := g.Kappa
	if kappa == 0 {
		kappa = 4
	}
	if kappa < 1 {
		return nil, fmt.Errorf("core: kappa = %d, want >= 1", kappa)
	}
	if kappa > MaxKappa {
		return nil, fmt.Errorf("core: kappa = %d exceeds MaxKappa = %d; the κ! order search would be intractable", kappa, MaxKappa)
	}

	var groups [][]int
	if g.DisableGrouping {
		if p.M() > MaxKappa {
			return nil, fmt.Errorf("core: grouping disabled with M = %d sites; order search over M! orders is intractable (max %d)", p.M(), MaxKappa)
		}
		for j := 0; j < p.M(); j++ {
			groups = append(groups, []int{j})
		}
	} else {
		var err error
		groups, err = GroupSites(p.PC, kappa, g.Seed)
		if err != nil {
			return nil, err
		}
	}

	h := newHeuristicState(p)
	var best Placement
	bestCost := units.Cost(math.Inf(1))
	orders := 0
	tryOrder := func(perm []int) bool {
		ordered := make([][]int, len(perm))
		for i, gi := range perm {
			ordered[i] = groups[gi]
		}
		pl := h.fill(ordered)
		if p.HasSiteSets() {
			// Multi-site restrictions can strand processes the greedy
			// packing could not fit; relocate via augmenting paths.
			if err := RepairLeftovers(p, pl); err != nil {
				orders++
				return g.MaxOrders <= 0 || orders < g.MaxOrders
			}
		}
		if c := p.Cost(pl); c < bestCost {
			bestCost = c
			best = pl.Clone()
		}
		orders++
		return g.MaxOrders <= 0 || orders < g.MaxOrders
	}
	if g.SingleOrder {
		perm := make([]int, len(groups))
		for i := range perm {
			perm[i] = i
		}
		tryOrder(perm)
	} else {
		stats.Permutations(len(groups), tryOrder)
	}
	if best == nil {
		return nil, fmt.Errorf("core: no placement produced")
	}
	for pass := 0; pass < g.RefinePasses; pass++ {
		if !refinePass(p, best, &bestCost) {
			break
		}
	}
	return best, nil
}

// refinePass applies one sweep of first-improvement pairwise exchanges of
// unpinned, mutually-admissible processes, updating pl and cost in place.
func refinePass(p *Problem, pl Placement, cost *units.Cost) bool {
	n := p.N()
	improved := false
	for a := 0; a < n; a++ {
		if p.Constraint[a] != Unconstrained {
			continue
		}
		for b := a + 1; b < n; b++ {
			if p.Constraint[b] != Unconstrained || pl[a] == pl[b] {
				continue
			}
			if !p.AllowedOn(a, pl[b]) || !p.AllowedOn(b, pl[a]) {
				continue
			}
			delta := exchangeDelta(p, pl, a, b)
			if delta < units.Cost(-1e-12) {
				pl[a], pl[b] = pl[b], pl[a]
				*cost += delta
				improved = true
			}
		}
	}
	return improved
}

// exchangeDelta is the cost change of swapping the sites of processes a
// and b, computed locally over their incident edges.
func exchangeDelta(p *Problem, pl Placement, a, b int) units.Cost {
	sa, sb := pl[a], pl[b]
	site := func(j int) int {
		switch j {
		case a:
			return sb
		case b:
			return sa
		default:
			return pl[j]
		}
	}
	var delta units.Cost
	edge := func(i, j int, vol, msgs float64) {
		oldSi, oldSj := pl[i], pl[j]
		newSi, newSj := site(i), site(j)
		delta -= (p.Latency(oldSi, oldSj).Scale(msgs) + units.Bytes(vol).Over(p.Bandwidth(oldSi, oldSj))).AsCost()
		delta += (p.Latency(newSi, newSj).Scale(msgs) + units.Bytes(vol).Over(p.Bandwidth(newSi, newSj))).AsCost()
	}
	for _, e := range p.Comm.Outgoing(a) {
		edge(a, e.Peer, e.Volume, e.Msgs)
	}
	for _, e := range p.Comm.Incoming(a) {
		edge(e.Peer, a, e.Volume, e.Msgs)
	}
	for _, e := range p.Comm.Outgoing(b) {
		if e.Peer != a {
			edge(b, e.Peer, e.Volume, e.Msgs)
		}
	}
	for _, e := range p.Comm.Incoming(b) {
		if e.Peer != a {
			edge(e.Peer, b, e.Volume, e.Msgs)
		}
	}
	return delta
}

// heuristicState carries the reusable buffers of the per-order greedy fill,
// so the κ! order evaluations do not reallocate.
type heuristicState struct {
	p        *Problem
	quantity []units.Cost // static per-process communication quantity
	refLat   units.Seconds
	refBW    units.BytesPerSec

	selected []bool
	affinity []units.Cost
	avail    mat.IntVec
	members  [][]int // processes currently placed per site
	pl       Placement
}

func newHeuristicState(p *Problem) *heuristicState {
	n := p.N()
	refLat, refBW := p.referenceWeights()
	h := &heuristicState{
		p:        p,
		quantity: make([]units.Cost, n),
		refLat:   refLat,
		refBW:    refBW,
		selected: make([]bool, n),
		affinity: make([]units.Cost, n),
		avail:    make(mat.IntVec, p.M()),
		members:  make([][]int, p.M()),
		pl:       make(Placement, n),
	}
	for i := 0; i < n; i++ {
		var q units.Cost
		p.Comm.Neighbors(i, func(_ int, vol, msgs float64) {
			q += h.weight(vol, msgs)
		})
		h.quantity[i] = q
	}
	return h
}

// weight converts a (volume, msgs) pair into a scalar commensurate with
// the α–β cost on an average inter-site link, so "heaviest communication
// quantity" accounts for both the bandwidth and the latency term.
func (h *heuristicState) weight(vol, msgs float64) units.Cost {
	return (h.refLat.Scale(msgs) + units.Bytes(vol).Over(h.refBW)).AsCost()
}

// fill runs the greedy body of Algorithm 1 (lines 3–15) for one ordered
// group sequence and returns the resulting placement. The returned slice is
// reused by subsequent calls; callers must clone it to retain it.
func (h *heuristicState) fill(orderedGroups [][]int) Placement {
	p := h.p
	n := p.N()
	for i := range h.selected {
		h.selected[i] = false
		h.pl[i] = Unconstrained
	}
	copy(h.avail, p.Capacity)
	for j := range h.members {
		h.members[j] = h.members[j][:0]
	}
	remaining := n

	// Lines 4–6: pin constrained processes and reduce availability.
	for i, c := range p.Constraint {
		if c == Unconstrained {
			continue
		}
		h.pl[i] = c
		h.selected[i] = true
		h.avail[c]--
		h.members[c] = append(h.members[c], i)
		remaining--
	}

	// Lines 7–15: walk groups in order, filling sites one at a time.
	for _, group := range orderedGroups {
		if remaining == 0 {
			break
		}
		// Each iteration picks the unselected site in the group with the
		// most available nodes (line 10).
		groupDone := make([]bool, len(group))
		for j := 0; j < len(group); j++ {
			site, bestAvail, bestIdx := -1, -1, -1
			for idx, s := range group {
				if !groupDone[idx] && h.avail[s] > bestAvail {
					site, bestAvail, bestIdx = s, h.avail[s], idx
				}
			}
			if site == -1 {
				break
			}
			groupDone[bestIdx] = true
			if h.avail[site] == 0 {
				continue
			}
			if remaining == 0 {
				break
			}

			// Line 9: seed with the globally heaviest unselected process
			// admissible on this site.
			seed := -1
			bestQ := units.Cost(math.Inf(-1))
			for i := 0; i < n; i++ {
				if !h.selected[i] && h.quantity[i] > bestQ && p.AllowedOn(i, site) {
					seed, bestQ = i, h.quantity[i]
				}
			}
			if seed == -1 {
				continue // no admissible process for this site
			}
			h.place(seed, site)
			remaining--

			// Lines 12–14: fill the rest of the site with the processes
			// most attached to what is already there.
			h.rebuildAffinity(site)
			for h.avail[site] > 0 && remaining > 0 {
				next := -1
				bestA := units.Cost(math.Inf(-1))
				for i := 0; i < n; i++ {
					if h.selected[i] || !p.AllowedOn(i, site) {
						continue
					}
					a := h.affinity[i]
					if a > bestA || (a == bestA && next >= 0 && h.quantity[i] > h.quantity[next]) { //geolint:ignore floatcmp exact tie-break: equal affinities are identical sums (commonly both 0); an epsilon would perturb the mapping
						next, bestA = i, a
					}
				}
				if next == -1 {
					break // remaining processes are inadmissible here
				}
				h.place(next, site)
				remaining--
				h.addAffinity(next)
			}
		}
	}
	return h.pl
}

// place assigns process i to site and updates capacity bookkeeping.
func (h *heuristicState) place(i, site int) {
	h.pl[i] = site
	h.selected[i] = true
	h.avail[site]--
	h.members[site] = append(h.members[site], i)
}

// rebuildAffinity recomputes, for every process, its total communication
// weight with the processes already placed at site.
func (h *heuristicState) rebuildAffinity(site int) {
	for i := range h.affinity {
		h.affinity[i] = 0
	}
	for _, s := range h.members[site] {
		h.addAffinity(s)
	}
}

// addAffinity adds process s's traffic into the affinity array after s has
// been placed at the site currently being filled.
func (h *heuristicState) addAffinity(s int) {
	h.p.Comm.Neighbors(s, func(j int, vol, msgs float64) {
		h.affinity[j] += h.weight(vol, msgs)
	})
}
