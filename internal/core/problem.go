// Package core implements the paper's primary contribution: the
// geo-distributed process-mapping problem formulation (Section 3) and the
// Geo-distributed mapping algorithm (Section 4, Algorithm 1).
//
// A Problem instance carries the notation of the paper's Table 4:
//
//	N          number of processes (Comm.N())
//	M          number of sites (LT/BT dimension)
//	CG, AG     communication pattern and message-count matrices (Comm)
//	LT, BT     inter/intra-site latency and bandwidth matrices
//	PC         physical coordinates of each site
//	I          number of physical nodes per site (Capacity)
//	C          constraint vector (Constraint)
//	P          a placement: process → site (Placement)
//
// The optimization objective is Formula 4: minimize Cost(P) subject to the
// data-movement constraints and per-site capacities of Formula 5, where the
// cost of a process pair follows the α–β model of Formula 3:
//
//	f(w_ij, d_kl) = AG(i,j)·LT(k,l) + CG(i,j)/BT(k,l)
package core

import (
	"fmt"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
	"geoprocmap/internal/units"
)

// Unconstrained marks a process free to be mapped anywhere. (The paper
// encodes "no constraint" as 0 with 1-based site numbers; this library uses
// 0-based site indices, so the sentinel is -1.)
const Unconstrained = -1

// Placement maps each process to a site index. It is the paper's vector P.
type Placement = mat.IntVec

// Problem is a geo-distributed process-mapping problem instance.
type Problem struct {
	// Comm is the application communication pattern (CG and AG).
	Comm *comm.Graph
	// LT and BT are the M×M inter/intra-site latency (seconds) and
	// bandwidth (bytes/second) matrices.
	LT, BT *mat.Matrix
	// PC holds the physical coordinates of each site.
	PC []geo.LatLon
	// Capacity is the paper's vector I: physical nodes per site.
	Capacity mat.IntVec
	// Constraint is the paper's vector C: Constraint[i] is the site that
	// process i must be mapped to, or Unconstrained.
	Constraint mat.IntVec
	// Allowed optionally restricts each process to a *set* of admissible
	// sites — the multi-site constraint extension the paper leaves as
	// future work. nil, or an empty set for a process, means no
	// restriction. A pinned process's site must be within its set.
	Allowed [][]int
}

// N returns the number of processes.
func (p *Problem) N() int { return p.Comm.N() }

// M returns the number of sites.
func (p *Problem) M() int { return len(p.Capacity) }

// Validate checks the structural invariants of the problem instance:
// matching dimensions, positive capacities and bandwidths, a feasible
// constraint vector, and total capacity at least N.
func (p *Problem) Validate() error {
	if p.Comm == nil {
		return fmt.Errorf("core: nil communication pattern")
	}
	n, m := p.N(), p.M()
	if n == 0 {
		return fmt.Errorf("core: no processes")
	}
	if m == 0 {
		return fmt.Errorf("core: no sites")
	}
	if p.LT == nil || p.BT == nil {
		return fmt.Errorf("core: nil LT/BT matrix")
	}
	if !p.LT.IsSquare() || p.LT.Rows() != m {
		return fmt.Errorf("core: LT is %d×%d, want %d×%d", p.LT.Rows(), p.LT.Cols(), m, m)
	}
	if !p.BT.IsSquare() || p.BT.Rows() != m {
		return fmt.Errorf("core: BT is %d×%d, want %d×%d", p.BT.Rows(), p.BT.Cols(), m, m)
	}
	if len(p.PC) != m {
		return fmt.Errorf("core: PC has %d coordinates, want %d", len(p.PC), m)
	}
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if p.BT.At(k, l) <= 0 {
				return fmt.Errorf("core: BT(%d,%d) = %g, want > 0", k, l, p.BT.At(k, l))
			}
			if p.LT.At(k, l) < 0 {
				return fmt.Errorf("core: LT(%d,%d) = %g, want >= 0", k, l, p.LT.At(k, l))
			}
		}
	}
	total := 0
	for j, c := range p.Capacity {
		if c <= 0 {
			return fmt.Errorf("core: capacity of site %d is %d, want > 0", j, c)
		}
		total += c
	}
	if total < n {
		return fmt.Errorf("core: total capacity %d < %d processes", total, n)
	}
	if len(p.Constraint) != n {
		return fmt.Errorf("core: constraint vector has length %d, want %d", len(p.Constraint), n)
	}
	pinned := make([]int, m)
	for i, c := range p.Constraint {
		if c == Unconstrained {
			continue
		}
		if c < 0 || c >= m {
			return fmt.Errorf("core: constraint[%d] = %d out of range [0,%d)", i, c, m)
		}
		pinned[c]++
		if pinned[c] > p.Capacity[c] {
			return fmt.Errorf("core: %d processes pinned to site %d exceed capacity %d", pinned[c], c, p.Capacity[c])
		}
	}
	return p.validateAllowed()
}

// CheckPlacement verifies Formula 5 for a candidate placement: every
// process is mapped to a valid site, pinned processes are at their required
// sites ((P−C)∘C = 0), and no site exceeds its capacity
// (count(j, P) ≤ I_j).
func (p *Problem) CheckPlacement(pl Placement) error {
	n, m := p.N(), p.M()
	if len(pl) != n {
		return fmt.Errorf("core: placement has length %d, want %d", len(pl), n)
	}
	load := make([]int, m)
	for i, s := range pl {
		if s < 0 || s >= m {
			return fmt.Errorf("core: placement[%d] = %d out of range [0,%d)", i, s, m)
		}
		load[s]++
	}
	for j := 0; j < m; j++ {
		if load[j] > p.Capacity[j] {
			return fmt.Errorf("core: site %d holds %d processes, capacity %d", j, load[j], p.Capacity[j])
		}
	}
	for i, c := range p.Constraint {
		if c != Unconstrained && pl[i] != c {
			return fmt.Errorf("core: process %d placed at site %d, constrained to %d", i, pl[i], c)
		}
	}
	if len(p.Allowed) > 0 {
		for i := range pl {
			if !p.AllowedOn(i, pl[i]) {
				return fmt.Errorf("core: process %d placed at site %d, allowed only %v", i, pl[i], p.Allowed[i])
			}
		}
	}
	return nil
}

// Latency returns the one-way latency between sites k and l — the typed
// view of the LT matrix entry.
func (p *Problem) Latency(k, l int) units.Seconds { return units.Seconds(p.LT.At(k, l)) }

// Bandwidth returns the bandwidth between sites k and l — the typed view
// of the BT matrix entry.
func (p *Problem) Bandwidth(k, l int) units.BytesPerSec { return units.BytesPerSec(p.BT.At(k, l)) }

// Cost evaluates the paper's Formula 4: the total α–β communication cost of
// a placement. The placement is not re-validated; call CheckPlacement first
// when the placement comes from outside the library. Cost runs once per
// examined order in the κ! search, so it must not allocate.
//
//geolint:allocfree
func (p *Problem) Cost(pl Placement) units.Cost {
	lat, bw := p.CostParts(pl)
	return lat + bw
}

// CostParts splits the cost into its latency term (ΣAG·LT) and bandwidth
// term (ΣCG/BT), which the ablation benchmarks compare.
//
//geolint:allocfree
func (p *Problem) CostParts(pl Placement) (latency, bandwidth units.Cost) {
	n := p.N()
	for i := 0; i < n; i++ {
		si := pl[i]
		for _, e := range p.Comm.Outgoing(i) {
			sj := pl[e.Peer]
			latency += p.Latency(si, sj).Scale(e.Msgs).AsCost()
			bandwidth += units.Bytes(e.Volume).Over(p.Bandwidth(si, sj)).AsCost()
		}
	}
	return latency, bandwidth
}

// referenceWeights returns the mean inter-site latency and bandwidth, used
// by the heuristic to turn (volume, msgs) pairs into a single scalar
// "communication quantity" that is commensurate with the cost function.
// For a single-site problem the intra-site values are used.
func (p *Problem) referenceWeights() (refLat units.Seconds, refBW units.BytesPerSec) {
	m := p.M()
	var latSum, bwSum float64
	pairs := 0
	for k := 0; k < m; k++ {
		for l := 0; l < m; l++ {
			if k == l {
				continue
			}
			latSum += p.LT.At(k, l)
			bwSum += p.BT.At(k, l)
			pairs++
		}
	}
	if pairs == 0 {
		return p.Latency(0, 0), p.Bandwidth(0, 0)
	}
	return units.Seconds(latSum / float64(pairs)), units.BytesPerSec(bwSum / float64(pairs))
}
