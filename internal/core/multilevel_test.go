package core

import (
	"math"
	"runtime"
	"testing"

	"geoprocmap/internal/stats"
)

// TestMultilevelMapperFeasible runs the multilevel mapper over the same
// problem shapes the flat heuristic is tested on: plain clustered traffic,
// pinned processes, and per-process allowed site sets.
func TestMultilevelMapperFeasible(t *testing.T) {
	cases := []struct {
		name string
		prob *Problem
	}{
		{"plain", clusteredProblem(96, 6, 11)},
		{"pinned", func() *Problem {
			p := clusteredProblem(96, 6, 12)
			for i := 0; i < 12; i++ {
				p.Constraint[i*8] = i % 6
			}
			return p
		}()},
		{"sitesets", siteSetProblem(84, 6, 13)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mm := &MultilevelGeoMapper{Kappa: 4, Seed: 7}
			pl, err := mm.Map(tc.prob)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.prob.CheckPlacement(pl); err != nil {
				t.Fatalf("infeasible placement: %v", err)
			}
			for i, c := range tc.prob.Constraint {
				if c != Unconstrained && pl[i] != c {
					t.Fatalf("process %d pinned to %d but placed on %d", i, c, pl[i])
				}
			}
		})
	}
}

// TestMultilevelSeedDeterminism is the digest gate the mapper's doc comment
// promises: identical problems and seeds yield byte-identical placements and
// bit-identical costs at every worker count, including GOMAXPROCS.
func TestMultilevelSeedDeterminism(t *testing.T) {
	probs := map[string]func() *Problem{
		"plain":    func() *Problem { return clusteredProblem(128, 8, 3) },
		"sitesets": func() *Problem { return siteSetProblem(112, 8, 4) },
	}
	for name, mk := range probs {
		t.Run(name, func(t *testing.T) {
			ref, err := (&MultilevelGeoMapper{Kappa: 4, Seed: 9, Workers: 1}).Map(mk())
			if err != nil {
				t.Fatal(err)
			}
			refCost := mk().Cost(ref).Float()
			for _, w := range []int{2, 3, 5, runtime.GOMAXPROCS(0)} {
				pl, err := (&MultilevelGeoMapper{Kappa: 4, Seed: 9, Workers: w}).Map(mk())
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				for i := range ref {
					if pl[i] != ref[i] {
						t.Fatalf("workers=%d: placement diverges at %d: %d vs %d", w, i, pl[i], ref[i])
					}
				}
				if c := mk().Cost(pl).Float(); math.Float64bits(c) != math.Float64bits(refCost) {
					t.Fatalf("workers=%d: cost %v, want bit-identical %v", w, c, refCost)
				}
			}
		})
	}
}

// TestMultilevelQuality checks the multilevel pipeline lands in the same
// cost regime as the flat paper heuristic on a clustered workload — the
// coarsening must not destroy the clique structure the cost model rewards —
// and comfortably beats a feasible random placement.
func TestMultilevelQuality(t *testing.T) {
	p := clusteredProblem(128, 6, 21)
	ml, err := (&MultilevelGeoMapper{Kappa: 4, Seed: 21}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := (&GeoMapper{Kappa: 4, Seed: 21}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	mlCost := p.Cost(ml).Float()
	geoCost := p.Cost(geo).Float()
	if mlCost > 1.25*geoCost {
		t.Errorf("multilevel cost %v vs flat heuristic %v (> 1.25x)", mlCost, geoCost)
	}
	rnd, err := RandomPlacement(p, stats.NewRand(21))
	if err != nil {
		t.Fatal(err)
	}
	if rc := p.Cost(rnd).Float(); mlCost > 0.8*rc {
		t.Errorf("multilevel cost %v not clearly better than random %v", mlCost, rc)
	}
}

// TestMultilevelKappaValidation mirrors the flat mapper's guard rails.
func TestMultilevelKappaValidation(t *testing.T) {
	p := clusteredProblem(24, 4, 1)
	if _, err := (&MultilevelGeoMapper{Kappa: MaxKappa + 1}).Map(p); err == nil {
		t.Error("kappa > MaxKappa accepted")
	}
	if _, err := (&MultilevelGeoMapper{Kappa: -2}).Map(p); err == nil {
		t.Error("negative kappa accepted")
	}
	if _, err := (&MultilevelGeoMapper{}).Map(p); err != nil {
		t.Errorf("default kappa rejected: %v", err)
	}
}

// TestMultilevelTightSiteSets replays the flat mapper's tight-packing
// regression: capacities exactly filled under overlapping small allowed
// sets. Whether the greedy fill or the repair fallback produces it, the
// placement must be feasible.
func TestMultilevelTightSiteSets(t *testing.T) {
	masks := []byte{0xae, 0x23, 0xb6, 0x41, 0xe3, 0x3e, 0x5c, 0x53}
	p := clusteredProblem(8, 4, -5635030028237787357)
	p.Allowed = make([][]int, 8)
	for i := range p.Allowed {
		for s := 0; s < 4; s++ {
			if masks[i]&(1<<uint(s)) != 0 {
				p.Allowed[i] = append(p.Allowed[i], s)
			}
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pl, err := (&MultilevelGeoMapper{Kappa: 3, Seed: -5635030028237787357}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatalf("infeasible placement: %v", err)
	}
}

// TestMultilevelQuickFeasible fuzzes random allowed-set masks, mirroring
// TestQuickSiteSetsFeasible for the multilevel path.
func TestMultilevelQuickFeasible(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := stats.NewRand(seed)
		n := 4 + rng.Intn(16)
		m := 2 + rng.Intn(3)
		p := clusteredProblem(n, m, seed)
		p.Allowed = make([][]int, n)
		for i := 0; i < n; i++ {
			mask := rng.Intn(1 << uint(m))
			for s := 0; s < m; s++ {
				if mask&(1<<uint(s)) != 0 {
					p.Allowed[i] = append(p.Allowed[i], s)
				}
			}
		}
		if p.Validate() != nil {
			continue // infeasible mask draw; skip
		}
		pl, err := (&MultilevelGeoMapper{Kappa: 3, Seed: seed}).Map(p)
		if err != nil {
			t.Fatalf("seed %d (n=%d m=%d): %v", seed, n, m, err)
		}
		if err := p.CheckPlacement(pl); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
	}
}
