package core

import (
	"errors"
	"fmt"

	"geoprocmap/internal/mat"
	"geoprocmap/internal/multilevel"
)

// MultilevelGeoMapper solves the mapping problem with the multilevel
// scheme of internal/multilevel: coarsen the communication graph by
// heavy-edge matching, run the paper's group-order heuristic on the
// coarsest graph (generalized to weighted super-vertices), then uncoarsen
// level by level under a parallel deterministic move/swap local search.
//
// Against GeoMapper the asymptotics change, not just the constants: the κ!
// order search only ever sees a few×M super-vertices, so the end-to-end
// cost is dominated by the O(E·M) refinement sweeps — κ = 32 sites and
// N = 100k processes solve in seconds where the flat heuristic's O(κ!·N²)
// is out of reach (the `geobench -exp multilevel` Pareto experiment
// quantifies both axes).
type MultilevelGeoMapper struct {
	// Kappa is the K-means site-group count for the coarsest-level order
	// search; zero selects the GeoMapper default of min(M, 4). Values
	// above MaxKappa are rejected, exactly as for GeoMapper.
	Kappa int
	// Seed drives the K-means grouping.
	Seed int64
	// Workers is the refinement (and proposal-phase) parallelism. Zero
	// selects GOMAXPROCS; any value yields byte-identical placements.
	Workers int
	// RefinePasses bounds the local-search sweeps per level (0 = default).
	RefinePasses int
	// CoarsestVertices is the coarsening target (0 = default: max(32, 4·M)).
	CoarsestVertices int
	// MaxOrders caps the coarsest-level order enumeration (0 = default 720).
	MaxOrders int
}

// Name implements Mapper.
func (m *MultilevelGeoMapper) Name() string { return "Multilevel" }

// Map implements Mapper. The result is byte-identical for identical
// problems at any worker count — the same contract GeoMapper honors, which
// TestMultilevelSeedDeterminism and the multilevel-smoke digest gate
// enforce.
//
//geolint:deterministic
func (m *MultilevelGeoMapper) Map(p *Problem) (Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kappa := m.Kappa
	if kappa == 0 {
		kappa = 4
	}
	if kappa < 1 {
		return nil, fmt.Errorf("core: kappa = %d, want >= 1", kappa)
	}
	if kappa > MaxKappa {
		return nil, fmt.Errorf("core: kappa = %d exceeds MaxKappa = %d; the coarsest-level order search would be intractable", kappa, MaxKappa)
	}
	groups, err := GroupSites(p.PC, kappa, m.Seed)
	if err != nil {
		return nil, err
	}
	inst := &multilevel.Instance{
		G:        multilevel.FromComm(p.Comm),
		LT:       p.LT,
		BT:       p.BT,
		Capacity: p.Capacity,
		Pin:      p.Constraint,
		Allowed:  p.Allowed,
		Groups:   groups,
	}
	opt := multilevel.Options{
		Workers:          m.Workers,
		RefinePasses:     m.RefinePasses,
		CoarsestVertices: m.CoarsestVertices,
		MaxOrders:        m.MaxOrders,
	}
	pl, _, err := multilevel.Solve(inst, opt)
	if errors.Is(err, multilevel.ErrInfeasible) {
		// Degenerate packings (tight capacities under multi-site
		// restrictions) can defeat the greedy fill at every level; the
		// augmenting-path repair is complete on validated problems, so
		// seed from it and let the refiner recover the quality.
		pl, err = m.repairFallback(p, inst, opt)
	}
	if err != nil {
		return nil, err
	}
	out := Placement(pl)
	if err := p.CheckPlacement(out); err != nil {
		return nil, err
	}
	return out, nil
}

// repairFallback builds a feasible placement with pins plus the
// augmenting-path leftover repair, then polishes it with the flat
// multilevel refiner.
func (m *MultilevelGeoMapper) repairFallback(p *Problem, inst *multilevel.Instance, opt multilevel.Options) ([]int, error) {
	pl := mat.NewIntVec(p.N(), Unconstrained)
	for i, c := range p.Constraint {
		if c != Unconstrained {
			pl[i] = c
		}
	}
	if err := repairPlacement(p, pl); err != nil {
		return nil, err
	}
	if err := multilevel.Refine(inst, pl, opt); err != nil {
		return nil, err
	}
	return pl, nil
}
