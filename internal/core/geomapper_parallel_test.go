package core

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

// siteSetProblem derives a clustered problem with multi-site Allowed
// restrictions: every third process is confined to two sites and every
// seventh to one, so greedy fills routinely strand processes and the
// repair path runs.
func siteSetProblem(n, m int, seed int64) *Problem {
	p := clusteredProblem(n, m, seed)
	p.Allowed = make([][]int, n)
	for i := 0; i < n; i++ {
		switch {
		case i%7 == 0:
			p.Allowed[i] = []int{i % m}
		case i%3 == 0:
			p.Allowed[i] = []int{i % m, (i + 1) % m}
		}
	}
	return p
}

// TestOrderSearchSerialParallelEquivalence is the cross-check the
// deterministic reduction promises: for every problem shape in the sweep,
// Workers=1 and Workers>1 must return byte-identical placements and
// bit-identical costs — the winning order may not depend on scheduling.
func TestOrderSearchSerialParallelEquivalence(t *testing.T) {
	type variant struct {
		name string
		prob func(seed int64) *Problem
		gm   GeoMapper
	}
	variants := []variant{
		{"plain-k3", func(s int64) *Problem { return clusteredProblem(24, 4, s) }, GeoMapper{Kappa: 3}},
		{"plain-k5", func(s int64) *Problem { return clusteredProblem(30, 6, s) }, GeoMapper{Kappa: 5}},
		{"pinned-k4", func(s int64) *Problem {
			p := clusteredProblem(24, 4, s)
			for i := 0; i < 5; i++ {
				p.Constraint[i*4] = i % 4
			}
			return p
		}, GeoMapper{Kappa: 4}},
		{"sitesets-k4", func(s int64) *Problem { return siteSetProblem(28, 4, s) }, GeoMapper{Kappa: 4}},
		{"ungrouped-m6", func(s int64) *Problem { return clusteredProblem(24, 6, s) }, GeoMapper{Kappa: 6, DisableGrouping: true}},
		{"maxorders-k5", func(s int64) *Problem { return clusteredProblem(30, 6, s) }, GeoMapper{Kappa: 5, MaxOrders: 7}},
		{"sitesets-maxorders", func(s int64) *Problem { return siteSetProblem(28, 4, s) }, GeoMapper{Kappa: 4, MaxOrders: 3}},
		{"refined-k4", func(s int64) *Problem { return clusteredProblem(24, 4, s) }, GeoMapper{Kappa: 4, RefinePasses: 5}},
	}
	workerCounts := []int{2, 3, 8, runtime.GOMAXPROCS(0)}
	for _, v := range variants {
		for seed := int64(1); seed <= 3; seed++ {
			p := v.prob(seed)
			if err := p.Validate(); err != nil {
				t.Fatalf("%s seed %d: invalid sweep problem: %v", v.name, seed, err)
			}
			serial := v.gm
			serial.Seed = seed
			serial.Workers = 1
			wantPl, err := serial.Map(p)
			if err != nil {
				t.Fatalf("%s seed %d serial: %v", v.name, seed, err)
			}
			wantCost := p.Cost(wantPl)
			for _, w := range workerCounts {
				par := v.gm
				par.Seed = seed
				par.Workers = w
				gotPl, err := par.Map(p)
				if err != nil {
					t.Fatalf("%s seed %d workers=%d: %v", v.name, seed, w, err)
				}
				if !gotPl.Equal(wantPl) {
					t.Errorf("%s seed %d workers=%d: placement differs\n serial:   %v\n parallel: %v", v.name, seed, w, wantPl, gotPl)
				}
				if got := p.Cost(gotPl); math.Float64bits(got.Float()) != math.Float64bits(wantCost.Float()) {
					t.Errorf("%s seed %d workers=%d: cost %v != serial %v (bitwise)", v.name, seed, w, got, wantCost)
				}
			}
		}
	}
}

// TestHierarchicalWorkersEquivalence extends the cross-check to the
// recursive mapper, which forwards Workers to every level's flat solver.
func TestHierarchicalWorkersEquivalence(t *testing.T) {
	p := clusteredProblem(48, 8, 5)
	serial, err := (&HierarchicalGeoMapper{Kappa: 3, Seed: 5, LeafSites: 3, Workers: 1}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		par, err := (&HierarchicalGeoMapper{Kappa: 3, Seed: 5, LeafSites: 3, Workers: w}).Map(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !par.Equal(serial) {
			t.Errorf("workers=%d: hierarchical placement differs from serial", w)
		}
	}
}

// TestGeoMapperMaxOrdersSkipsInfeasibleOrders is the starvation
// regression: an order whose repair fails must not consume the MaxOrders
// budget. The augmenting-path repair cannot fail on validated problems, so
// failures are injected through the repairPlacement seam: with the first
// three orders forced infeasible and a budget of one, the search must
// still reach the first feasible order instead of returning
// "no placement produced".
func TestGeoMapperMaxOrdersSkipsInfeasibleOrders(t *testing.T) {
	p := siteSetProblem(16, 4, 2)
	orig := repairPlacement
	defer func() { repairPlacement = orig }()

	calls := 0
	repairPlacement = func(p *Problem, pl Placement) error {
		calls++
		if calls <= 3 {
			return fmt.Errorf("injected repair failure %d", calls)
		}
		return orig(p, pl)
	}
	gm := &GeoMapper{Kappa: 4, Seed: 2, MaxOrders: 1, Workers: 1}
	pl, err := gm.Map(p)
	if err != nil {
		t.Fatalf("budget starved on infeasible orders: %v", err)
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
	if calls < 4 {
		t.Errorf("search stopped after %d orders; infeasible orders consumed the budget", calls)
	}

	// The budget still bounds feasible work: with every order feasible, a
	// cap of one examines exactly one order.
	calls = 0
	repairPlacement = func(p *Problem, pl Placement) error {
		calls++
		return orig(p, pl)
	}
	if _, err := gm.Map(p); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("MaxOrders=1 examined %d feasible orders, want 1", calls)
	}
}

// TestGeoMapperWorkersInvalidAndDefault covers the Workers knob's edge
// values: negative and zero both resolve to a usable worker count.
func TestGeoMapperWorkersInvalidAndDefault(t *testing.T) {
	p := clusteredProblem(16, 4, 3)
	want, err := (&GeoMapper{Kappa: 4, Seed: 3, Workers: 1}).Map(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, -2, 1000} { // 1000 > κ! clamps to one rank per worker
		got, err := (&GeoMapper{Kappa: 4, Seed: 3, Workers: w}).Map(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !got.Equal(want) {
			t.Errorf("workers=%d: placement differs from serial", w)
		}
	}
}

// TestFillDoesNotAllocatePerOrder locks in heuristicState's
// no-reallocation contract across the κ! loop (the groupDone scratch used
// to be allocated inside fill on every order).
func TestFillDoesNotAllocatePerOrder(t *testing.T) {
	p := clusteredProblem(32, 4, 9)
	groups, err := GroupSites(p.PC, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	h := newHeuristicState(p)
	ordered := make([][]int, len(groups))
	for i := range groups {
		ordered[i] = groups[i]
	}
	h.fill(ordered) // warm up: members slices grow to their high-water mark
	if allocs := testing.AllocsPerRun(50, func() { h.fill(ordered) }); allocs != 0 {
		t.Errorf("fill allocates %.0f objects per order, want 0", allocs)
	}
}

// TestRefinementCostResync is the cost-drift regression: the cost the
// refinement loop carries must match the true objective of the returned
// placement (the incremental deltas alone drift across passes).
func TestRefinementCostResync(t *testing.T) {
	p := clusteredProblem(40, 4, 21)
	gm := &GeoMapper{Kappa: 4, Seed: 21, RefinePasses: 50, Workers: 1}
	pl, err := gm.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the search-phase winner and drive the refinement loop
	// the way Map does, checking the carried cost against the truth after
	// every pass.
	search := &GeoMapper{Kappa: 4, Seed: 21, Workers: 1}
	base, err := search.Map(p)
	if err != nil {
		t.Fatal(err)
	}
	cost := p.Cost(base)
	for pass := 0; pass < 50; pass++ {
		if !refinePass(p, base, &cost) {
			break
		}
		cost = p.Cost(base)
		if got := p.Cost(base); math.Float64bits(cost.Float()) != math.Float64bits(got.Float()) {
			t.Fatalf("pass %d: carried cost %v != true cost %v", pass, cost, got)
		}
	}
	if !base.Equal(pl) {
		t.Errorf("reconstructed refinement differs from Map's result")
	}
	if err := p.CheckPlacement(pl); err != nil {
		t.Fatal(err)
	}
}

// TestGeoMapperParallelSiteSetConstraintsSweep exercises the repair path
// under parallel search with capacities at their Hall-condition edge.
func TestGeoMapperParallelSiteSetConstraintsSweep(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := siteSetProblem(24, 4, seed)
		for j := range p.Capacity {
			p.Capacity[j] = 24/4 + 1
		}
		p.Constraint[1] = 2
		if p.Validate() != nil {
			continue
		}
		serial, err := (&GeoMapper{Kappa: 4, Seed: seed, Workers: 1}).Map(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		par, err := (&GeoMapper{Kappa: 4, Seed: seed, Workers: 6}).Map(p)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !par.Equal(serial) {
			t.Errorf("seed %d: parallel differs from serial under site sets", seed)
		}
		if err := p.CheckPlacement(par); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
