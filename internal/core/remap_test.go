package core

import (
	"testing"

	"geoprocmap/internal/comm"
	"geoprocmap/internal/faults"
	"geoprocmap/internal/geo"
	"geoprocmap/internal/mat"
)

// threeSiteProblem: 4 processes, 3 sites with capacity 2 each, so one site
// can die and the survivors still hold everyone. Site 2 is "farther" from
// site 0 than site 1 is.
func threeSiteProblem() *Problem {
	g := comm.NewGraph(4)
	g.AddTraffic(0, 1, 1e6, 10)
	g.AddTraffic(2, 3, 1e6, 10)
	g.AddTraffic(0, 2, 1e3, 1)
	lt := mat.MustFrom([][]float64{
		{0.001, 0.1, 0.2},
		{0.1, 0.001, 0.1},
		{0.2, 0.1, 0.001},
	})
	bt := mat.MustFrom([][]float64{
		{100e6, 10e6, 5e6},
		{10e6, 100e6, 10e6},
		{5e6, 10e6, 100e6},
	})
	return &Problem{
		Comm:       g,
		LT:         lt,
		BT:         bt,
		PC:         []geo.LatLon{{Lat: 0, Lon: 0}, {Lat: 0, Lon: 50}, {Lat: 0, Lon: 100}},
		Capacity:   mat.IntVec{2, 2, 2},
		Constraint: mat.NewIntVec(4, Unconstrained),
	}
}

func TestRemapNoFaultsIsNoop(t *testing.T) {
	p := threeSiteProblem()
	stale := Placement{0, 0, 1, 1}
	for _, rep := range []*faults.Report{nil, {}} {
		res, err := Remap(p, stale, rep, RemapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Migrated) != 0 || res.MigrationSeconds != 0 {
			t.Errorf("fault-free remap migrated %v", res.Migrated)
		}
		if res.CostAfter != res.CostBefore {
			t.Errorf("fault-free remap changed cost %v → %v", res.CostBefore, res.CostAfter)
		}
	}
}

func TestRemapEvacuatesDeadSite(t *testing.T) {
	p := threeSiteProblem()
	stale := Placement{0, 0, 1, 1}
	rep := &faults.Report{Dropped: 1, DeadSites: []int{1}}
	res, err := Remap(p, stale, rep, RemapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Placement {
		if s == 1 {
			t.Errorf("process %d still on dead site 1", i)
		}
	}
	// Site 0 is full, so both victims must land on site 2 — together,
	// keeping the heavy 2↔3 pair intra-site.
	if res.Placement[2] != 2 || res.Placement[3] != 2 {
		t.Errorf("victims placed at %v, want both on site 2", res.Placement)
	}
	if len(res.Migrated) != 2 || res.MigrationSeconds <= 0 {
		t.Errorf("migrated %v in %v s", res.Migrated, res.MigrationSeconds)
	}
	if err := p.CheckPlacement(res.Placement); err != nil {
		t.Errorf("remapped placement invalid: %v", err)
	}
	// Untouched processes stay put.
	if res.Placement[0] != 0 || res.Placement[1] != 0 {
		t.Errorf("survivors moved: %v", res.Placement)
	}
}

func TestRemapReleasesDeadPinsKeepsLiveOnes(t *testing.T) {
	p := threeSiteProblem()
	p.Constraint[2] = 1 // pinned to the site that dies
	p.Constraint[0] = 0 // pinned to a surviving site
	stale := Placement{0, 0, 1, 1}
	rep := &faults.Report{Dropped: 1, DeadSites: []int{1}}
	res, err := Remap(p, stale, rep, RemapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement[2] == 1 {
		t.Error("dead-pinned process left on dead site")
	}
	if res.Placement[0] != 0 {
		t.Errorf("live pin violated: process 0 at %d", res.Placement[0])
	}
}

func TestRemapFailsWithoutHeadroom(t *testing.T) {
	p := twoSiteProblem() // 4 processes, 2+2 slots: a dead site is fatal
	stale := Placement{0, 0, 1, 1}
	rep := &faults.Report{Dropped: 1, DeadSites: []int{1}}
	if _, err := Remap(p, stale, rep, RemapOptions{}); err == nil {
		t.Error("remap succeeded with fewer surviving slots than processes")
	}
	rep = &faults.Report{Dropped: 1, DeadSites: []int{9}}
	if _, err := Remap(p, stale, rep, RemapOptions{}); err == nil {
		t.Error("out-of-range dead site accepted")
	}
}

func TestRemapMoveDegraded(t *testing.T) {
	p := threeSiteProblem()
	// The heavy 0↔1 pair is split across the degraded 0–1 link.
	stale := Placement{0, 1, 2, 2}
	rep := &faults.Report{Retries: 5, DegradedPairs: [][2]int{{0, 1}}}
	stay, err := Remap(p, stale, rep, RemapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stay.Migrated) != 0 {
		t.Errorf("remap without MoveDegraded migrated %v", stay.Migrated)
	}
	res, err := Remap(p, stale, rep, RemapOptions{MoveDegraded: true, HorizonIterations: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrated) == 0 {
		t.Fatal("no degraded-site move despite a huge horizon")
	}
	if res.CostAfter >= res.CostBefore {
		t.Errorf("degraded move raised cost %v → %v", res.CostBefore, res.CostAfter)
	}
	if err := p.CheckPlacement(res.Placement); err != nil {
		t.Errorf("remapped placement invalid: %v", err)
	}
	// A tiny horizon cannot amortize any migration: nothing moves.
	small, err := Remap(p, stale, rep, RemapOptions{MoveDegraded: true, HorizonIterations: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Migrated) != 0 {
		t.Errorf("tiny horizon still migrated %v", small.Migrated)
	}
}

func TestRemapRejectsInvalidInputs(t *testing.T) {
	p := threeSiteProblem()
	rep := &faults.Report{Dropped: 1, DeadSites: []int{1}}
	if _, err := Remap(p, Placement{0, 0, 1}, rep, RemapOptions{}); err == nil {
		t.Error("short placement accepted")
	}
	bad := threeSiteProblem()
	bad.Capacity[0] = 0
	if _, err := Remap(bad, Placement{0, 0, 1, 1}, rep, RemapOptions{}); err == nil {
		t.Error("invalid problem accepted")
	}
}
